// Command bench_compare reports benchstat-style deltas between two of the
// CI perf artifacts (BENCH_tensor.json / BENCH_engine.json, produced by
// scripts/bench_to_json.awk from `go test -bench` output) and fails when a
// gated metric regresses beyond a threshold — the guard that keeps the
// committed perf trajectory honest.
//
// Usage:
//
//	go run ./scripts -baseline BENCH_engine.json -current /tmp/new.json \
//	    [-threshold 10] [-gate seqs_per_s] [-gate-rows '^BenchmarkMatMul']
//
// Metrics are compared by direction: ns_per_op, bytes_per_op and
// allocs_per_op regress when they grow; seqs_per_s, mb_per_s (throughput)
// and poolchunks_per_op (effective per-op worker fan-out) regress when they
// shrink. Only the metrics named by -gate (comma list, or "all") cause a
// non-zero exit, and only on rows whose benchmark name matches -gate-rows
// (a regexp; default every row); everything else is reported
// informationally. The default gate is seqs_per_s — steady-state executor
// throughput — because wall-clock nanoseconds on shared CI runners are too
// noisy to gate on by default.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
)

// metric describes one comparable benchmark column.
type metric struct {
	key          string
	label        string
	higherBetter bool
}

var metrics = []metric{
	{"ns_per_op", "ns/op", false},
	{"bytes_per_op", "B/op", false},
	{"allocs_per_op", "allocs/op", false},
	{"mb_per_s", "MB/s", true},
	{"seqs_per_s", "seqs/s", true},
	{"poolchunks_per_op", "poolchunks/op", true},
}

func loadBench(path string) (map[string]map[string]float64, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var rows []map[string]any
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]map[string]float64, len(rows))
	var order []string
	for _, row := range rows {
		name, _ := row["name"].(string)
		if name == "" {
			continue
		}
		vals := make(map[string]float64)
		for _, m := range metrics {
			if v, ok := row[m.key].(float64); ok {
				vals[m.key] = v
			}
		}
		out[name] = vals
		order = append(order, name)
	}
	return out, order, nil
}

func main() {
	baselinePath := flag.String("baseline", "", "committed baseline JSON (required)")
	currentPath := flag.String("current", "", "freshly measured JSON (required)")
	threshold := flag.Float64("threshold", 10, "regression threshold in percent on gated metrics")
	gate := flag.String("gate", "seqs_per_s", "comma-separated metrics that fail the run on regression, or \"all\"")
	gateRows := flag.String("gate-rows", "", "regexp restricting the gate to matching benchmark names (empty = every row)")
	goneOK := flag.String("gone-ok", "", "regexp of benchmark names whose absence from the current run is tolerated — for baseline rows committed ahead of a narrower -bench regex, or rows only some hosts produce")
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(os.Stderr, "bench_compare: -baseline and -current are required")
		flag.Usage()
		os.Exit(2)
	}
	base, _, err := loadBench(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_compare:", err)
		os.Exit(2)
	}
	cur, order, err := loadBench(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_compare:", err)
		os.Exit(2)
	}
	gated := make(map[string]bool)
	for _, g := range strings.Split(*gate, ",") {
		if g = strings.TrimSpace(g); g != "" {
			gated[g] = true
		}
	}
	rowRe := regexp.MustCompile("")
	if *gateRows != "" {
		rowRe, err = regexp.Compile(*gateRows)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench_compare: -gate-rows:", err)
			os.Exit(2)
		}
	}
	var goneRe *regexp.Regexp
	if *goneOK != "" {
		goneRe, err = regexp.Compile(*goneOK)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench_compare: -gone-ok:", err)
			os.Exit(2)
		}
	}

	fmt.Printf("%-55s %-10s %14s %14s %9s\n", "benchmark", "metric", "old", "new", "delta")
	var regressions []string
	for _, name := range order {
		old, ok := base[name]
		if !ok {
			fmt.Printf("%-55s %-10s %14s %14s %9s\n", name, "-", "(new)", "-", "-")
			continue
		}
		for _, m := range metrics {
			nv, haveNew := cur[name][m.key]
			ov, haveOld := old[m.key]
			if !haveNew || !haveOld {
				continue
			}
			if ov == 0 {
				// A percent delta from zero is undefined, but a zero
				// baseline on a lower-is-better metric is a guarantee
				// (alloc-free / byte-free steady state): any growth from
				// it is a gated regression, not a silent skip.
				if nv != 0 && !m.higherBetter {
					mark := ""
					if (gated["all"] || gated[m.key]) && rowRe.MatchString(name) {
						mark = "  REGRESSION"
						regressions = append(regressions, fmt.Sprintf("%s %s grew from a zero baseline to %.2f", name, m.label, nv))
					}
					fmt.Printf("%-55s %-10s %14.2f %14.2f %9s%s\n", name, m.label, ov, nv, "+inf", mark)
				}
				continue
			}
			delta := 100 * (nv - ov) / ov
			mark := ""
			regressed := (m.higherBetter && delta < -*threshold) || (!m.higherBetter && delta > *threshold)
			if regressed && (gated["all"] || gated[m.key]) && rowRe.MatchString(name) {
				mark = "  REGRESSION"
				regressions = append(regressions, fmt.Sprintf("%s %s %+.1f%% (threshold %.0f%%)", name, m.label, delta, *threshold))
			}
			fmt.Printf("%-55s %-10s %14.2f %14.2f %+8.1f%%%s\n", name, m.label, ov, nv, delta, mark)
		}
	}
	var gone []string
	for name := range base {
		if _, ok := cur[name]; !ok {
			gone = append(gone, name)
		}
	}
	sort.Strings(gone)
	for _, name := range gone {
		if goneRe != nil && goneRe.MatchString(name) {
			fmt.Printf("%-55s %-10s %14s %14s %9s\n", name, "-", "-", "(gone, ok)", "-")
			continue
		}
		fmt.Printf("%-55s %-10s %14s %14s %9s\n", name, "-", "-", "(gone)", "-")
		// A vanished benchmark whose baseline row carried a gated metric
		// would otherwise disable the gate silently (renamed b.Run names,
		// a changed -bench regex): treat it as a failure, not a skip.
		if !rowRe.MatchString(name) {
			continue
		}
		for _, m := range metrics {
			if _, ok := base[name][m.key]; ok && (gated["all"] || gated[m.key]) {
				regressions = append(regressions, fmt.Sprintf("%s %s missing from current run (baseline row has a gated metric)", name, m.label))
			}
		}
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "\nbench_compare: %d regression(s) beyond %.0f%%:\n", len(regressions), *threshold)
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
	fmt.Printf("\nno gated regressions beyond %.0f%% (gate: %s)\n", *threshold, *gate)
}
