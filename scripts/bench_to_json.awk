# Distills `go test -bench` output into a JSON array for the CI perf
# artifacts (BENCH_tensor.json, BENCH_engine.json). Standard columns map to
# ns_per_op/bytes_per_op/allocs_per_op; the custom metrics in use (MB/s
# from the kernel benchmarks, seqs/s from the engine benchmarks,
# poolchunks/op — effective per-op fan-out — from the worker-scaling
# benchmark) are each keyed independently, so any mix of columns parses.
BEGIN { print "["; first=1 }
/^Benchmark/ {
  if (!first) printf ",\n"; first=0
  name=$1; sub(/-[0-9]+$/, "", name)
  printf "  {\"name\":\"%s\",\"iters\":%s,\"ns_per_op\":%s", name, $2, $3
  for (i=4; i<=NF; i++) {
    if ($i == "B/op") printf ",\"bytes_per_op\":%s", $(i-1)
    if ($i == "allocs/op") printf ",\"allocs_per_op\":%s", $(i-1)
    if ($i == "MB/s") printf ",\"mb_per_s\":%s", $(i-1)
    if ($i == "seqs/s") printf ",\"seqs_per_s\":%s", $(i-1)
    if ($i == "poolchunks/op") printf ",\"poolchunks_per_op\":%s", $(i-1)
  }
  printf "}"
}
END { print "\n]" }
