// Package repro is a from-scratch Go reproduction of "PipeFisher:
// Efficient Training of Large Language Models Using Pipelining and Fisher
// Information Matrices" (Osawa, Li, Hoefler — MLSys 2023).
//
// # Architecture
//
// The library is layered so that the timing simulator and the real
// training executor share one schedule representation (one op-list form,
// two interpreters):
//
//	tensor    dense float64 matrices: packed-panel matmul kernels with
//	          runtime CPU dispatch and a float32 compute mode, Cholesky,
//	          eigen, RNG
//	nn        layers and autograd: Dense (with K-FAC stat capture),
//	          LayerNorm, attention, TransformerBlock, losses
//	models    internal/bert (encoder, MLM+NSP) and internal/gpt
//	          (decoder, next-token); both implement pipemodel.Model
//	pipemodel the stageable-model contract: embedding / blocks / head,
//	          with globally-scaled micro-batch losses
//	kfac      Kronecker-factored curvature: EMA factors, factored
//	          damping, per-factor inversion, preconditioning
//	hardware  device & interconnect cost models (P100, V100, RTX3090)
//	arch      transformer shape algebra (FLOPs, bytes, factor dims)
//	pipeline  the schedule form: Op lists with per-device orders and
//	          dependency edges; builders for GPipe, 1F1B, Chimera; a
//	          discrete-event simulator producing timelines and bubbles
//	schedule  PipeFisher's work assignment (§3.1): packs curvature and
//	          inversion into the bubbles; Executable emits the packed
//	          op list with real dependency edges — over a K-step
//	          refresh round (Config.RefreshSteps) when the refresh
//	          should spread across several steps' bubbles
//	engine    the schedule-driven executor: per-device goroutines walk
//	          the op lists and train a pipemodel.Model for real —
//	          GPipe/1F1B/Chimera on a (replica, stage) device topology
//	          (Config.Replicas = W data-parallel replicas with
//	          replicated parameters and in-process collectives), with
//	          K-FAC running in its packed bubble slots, multi-step
//	          refresh rounds executed atomically (TrainRound), and
//	          measured (executed) timelines out
//	trace     ASCII/SVG/CSV rendering of timelines, simulated or
//	          executed, in the style of the paper's profile figures
//	optim     Adam, LAMB, Shampoo-style extra work; LR schedules
//	data      synthetic Zipf corpus with BERT masking
//	perfmodel fitted step-time models and configuration search
//
// Simulation answers "how long would this schedule take on that
// hardware" (Figures 1, 3, 4); execution answers "does this schedule
// compute the right thing" — the engine's tests assert that every
// schedule produces gradients identical to a single-device step. Both
// consume the same pipeline.Schedule, so a schedule validated by one is
// valid for the other.
//
// # Kernel layer
//
// The matmul family dispatches at runtime across three kernel variants
// (tensor.SetKernel / ActiveKernel, the -kernel flag on both CLIs):
//
//   - scalar — the cache-blocked scalar loops, kept as the parity
//     reference every other variant is tested against.
//   - tiled — GotoBLAS-style packed panels (A packed into mr-row panels,
//     B into nr-column panels, MC x KC cache blocking) driven through 4x2
//     register-tiled pure-Go micro-kernels. Portable to every GOARCH and
//     bit-identical to scalar on float64: both reduce each output element
//     with one multiply-rounding and one add-rounding per k step,
//     ascending k.
//   - fma — the same packed driver calling hand-written amd64 AVX2
//     assembly micro-kernels (8x4 float64, 8x8 float32) with fused
//     multiply-add, selected only when CPUID reports AVX2+FMA with OS
//     XSAVE support (never under the purego build tag). Fusing collapses
//     the two roundings into one, so fma results differ from scalar/tiled
//     by the fused-rounding delta — but within the variant every
//     bit-identity contract below still holds, because the per-element
//     reduction order stays fixed ascending k.
//
// The default is the best available variant. Float32 compute mode
// (tensor.SetF32, the -f32 flag) is orthogonal: float64 stays the API
// currency, but the packed driver narrows its panels to float32,
// accumulates in float32 and widens on write-back — halving panel memory
// traffic — and the engine's K-FAC statistics snapshots narrow at capture
// (tensor.Snap), halving the paper's Msave_err resident cost. Accumulating
// entry points (TMatMulAddInto) add the widened float32 product to the
// float64 accumulator rather than narrowing it, and
// factorization-sensitive code (Cholesky, eigen, damping) never routes
// through GEMM and stays float64 in either mode.
//
// The kernels are goroutine-parallel behind a shared worker pool:
// tensor.SetParallelism sizes the process-wide intra-op worker budget
// (default GOMAXPROCS, the -workers flag on cmd/pipefisher and
// examples/pipelinetrain), and the engine caps each device goroutine's
// kernels to its fair share of that budget (engine.Config.Workers /
// devices) via tensor.SetOpParallelism, so concurrent stages split the
// cores instead of oversubscribing them. The packed driver splits work at
// micro-panel granularity on a grid that depends only on the operand
// shapes, and the executed Timeline records both parallelism values for
// honest real-vs-simulated comparisons. Every kernel variant reduces each
// output element in the same serial order regardless of worker count, so
// results — and therefore gradients — are bit-identical across parallelism
// settings within a variant (and across W, schedules and decompositions,
// per the collectives contract below).
//
// Hot paths are allocation-free in steady state: layers hold retained
// output/gradient buffers (tensor.Reuse), gradient accumulation is fused
// (tensor.TMatMulAddInto), and per-micro-batch temporaries — cross-stage
// activation hand-offs, K-FAC statistics snapshots and partial curvature
// products, Cholesky/eigen work buffers — cycle through a pooled workspace
// (tensor.Get / tensor.Put). Pooling contract: whoever Gets a matrix owns
// it until Put, and must drop every reference afterwards; matrices returned
// by layer Forward/Backward are owned by the layer and valid only until its
// next call, so anything that must outlive the producing op is cloned
// (tensor.GetClone) by the engine.
//
// # Replica topology and collectives
//
// Data parallelism multiplies the pipeline: engine.Config.Replicas = W
// gives every stage W replicas (devices stage*W+r for GPipe/1F1B; W whole
// bidirectional pairs for Chimera), each holding its own parameter copy
// (pipemodel.Model.Replicate, re-broadcast from the primary at every
// step) and processing its own MicroBatches micro-batches of the global
// batch. The simulator's SyncGrad/SyncCurvature collectives execute for
// real as in-process reductions (internal/engine/collective.go) under a
// strict contract:
//
//   - Reduction order is fixed at micro-batch granularity: each backward
//     snapshots its micro-batch's gradient contribution into pooled delta
//     buffers, and the stage's SyncGrad folds carried state plus every
//     delta in ascending *global* micro-batch order. The order depends on
//     neither the schedule, W, nor the kernel worker count, so reduced
//     gradients are bit-identical across all of them (the engine's
//     data-parallel tests assert exact equality, not closeness). K-FAC
//     curvature partials fold the same way, so factors, inverses, and
//     preconditioned gradients inherit the guarantee.
//   - Buffer ownership: the run state owns the carried and delta buffers.
//     The reduction consumes the deltas (reduceGrads Puts each and nils
//     its slot); the carried pre-step accumulators survive until the whole
//     step commits, so an aborted step can roll every stage back — folded
//     or not — to the caller's pre-step gradient state. The steady-state
//     collective path is allocation-free.
//   - Any participant of a stage's collective may perform the reduction;
//     the per-stage once-guard blocks latecomers until it completed (the
//     rendezvous), and the reduced result lands in the primary replica's
//     accumulators — the only ones the caller's optimizer reads.
//   - InversionParallel shards each stage's K-FAC inversion units
//     round-robin across the stage's replica group; the shared per-stage
//     preconditioner makes the post-inversion broadcast implicit, and
//     per-layer locks let different factors invert concurrently.
//
// # Collective transport contract
//
// internal/transport generalizes those in-process reductions across OS
// processes: a transport.Group runs reduce-scatter / all-gather /
// all-reduce / broadcast over *named* buffers for a group of ranks, and
// engine.Config.Transport plugs one into every reduction the engine
// performs. A nil Transport is the loopback: the existing in-process fold,
// CI-gated at exactly zero extra allocations and <2% throughput against
// the transport-free executor rows — choosing a transport costs the
// single-process configuration nothing. DialRing connects a chain of
// Unix-domain or TCP sockets (cmd/pipefisher -transport ring -group,
// or -group spawn:N to have the CLI fork N single-rank processes itself),
// and the contract makes the choice between them a pure deployment
// decision:
//
//   - Fold order is THE invariant. Rank g of a W_g-rank group running R
//     local replicas owns global micro-batches [g*R*M, (g+1)*R*M): it
//     folds its local deltas in ascending global-micro order exactly as
//     the loopback would, and the cross-rank reduction folds the per-rank
//     partials in ascending rank order — the same total order as one
//     process running W_g*R replicas. Gradients, K-FAC factors, inverses
//     and preconditioned updates are therefore bit-identical between a
//     2-process ring and a single loopback process at equal global width
//     (CI's multiproc job diffs the per-step losses for exact equality).
//     Every rank materializes the global batch from the shared corpus
//     seed, so data placement is a pure function of rank.
//   - Buffer ownership across the wire: callers hand the Group dst and
//     part slices that remain caller-owned; the transport never retains
//     them past the call. On the receive side each Ring owns its reader
//     scratch, interns buffer names, and recycles payload buffers through
//     a pool — the steady-state chunk path allocates nothing, and stale
//     frames from an aborted round are drained back into the pool, not
//     leaked.
//   - Chunking: payloads split at DefaultChunkFloats (64 KiB) so the fold
//     of chunk k overlaps the transfer of chunk k+1 along the chain.
//     The win needs cores to overlap on — hardware.ChainAllReduceCost
//     models it (>=1.3x over the single-message chain at gradient-bucket
//     sizes, pinned by test on every ring width), pipeline.CostConfig.
//     Transport prices simulated schedules with the same model, and
//     BenchmarkAllReduce measures the real wire (on a single-core host
//     the fixed per-frame cost makes chunked ~= unchunked; the model is
//     the acceptance bar, the bench is the honest measurement).
//   - Failure semantics ride the round protocol: BeginRound tags every
//     collective with an epoch, and a rank that aborts mid-round sends an
//     abort frame around the ring, so a dropped or failed remote
//     collective surfaces on every rank as the same attributed abort the
//     fault layer already handles — checkpoint/replay then rewinds all
//     ranks together (CI's chaos job injects a collective drop into a
//     real 2-process ring and asserts replay completes). Epoch 0 is
//     exempt so initialization collectives can never be killed by a
//     stale abort, and a startup barrier keeps a fast rank's round abort
//     from racing a slow rank's init.
//   - Sharded parameters (engine.Config.ShardParams) compose with any
//     transport: each stage's parameters partition greedily across the
//     local replica axis, secondary replicas detach storage they do not
//     own and gather-on-use into pooled buffers for the duration of one
//     op — resident parameter bytes on secondaries drop to roughly 1/R
//     of the full copy (engine.ShardStats reports the exact counts) while
//     the fold order, and therefore the math, is unchanged.
//
// # Elastic membership contract
//
// A ring group is elastic: rank death is a first-class, attributed event
// the survivors train through, and a restarted rank can rejoin a running
// group. The state machine is detect -> regroup -> (optionally) rejoin:
//
//   - Failure detection. Every ring connection runs under wire deadlines
//     (RingOptions.WireTimeout bounds each read/write; DialTimeout bounds
//     dial, accept and the hello exchange, so a group that never fully
//     forms fails fast instead of hanging), heartbeat frames flow to the
//     next rank every HeartbeatInterval and are forwarded around the ring
//     (RankStats exposes per-rank liveness, age, and self-reported round
//     pace), and CollectiveTimeout bounds how long a collective may sit
//     waiting for frames. Every liveness breach surfaces as the same typed
//     error: transport.RankFailure{Rank, Cause}, attributed to the peer
//     that actually died — a rank that dies mid-collective is reported by
//     its ring neighbor and the attribution is forwarded, so all survivors
//     name the same culprit (transport.AsRankFailure unwraps it). Frames
//     that already arrived are served before any failure check, so a dead
//     peer fails only the collectives still missing wire data.
//   - Regroup (shrink). Survivors each call transport.Reform with the
//     ORIGINAL address list, the ascending original ranks still alive, and
//     an incremented membership view (the hello exchange validates all
//     members agree on it); survivors renumber contiguously, which IS the
//     engine's re-shard — rank g of the smaller width recomputes its global
//     micro-batch slice from the new Size/Rank. The failed group is closed
//     only AFTER Reform returns (a survivor can still owe forwarding
//     writes into the old ring). engine.Reconnect swaps the engine onto
//     the new group and reprices the schedule; engine.RegroupRestore then
//     rewinds the survivors together: step commits are not atomic across
//     ranks, so the survivors gather each rank's checkpointed step over
//     the new group, agree on the maximum (a committed step is causally
//     complete on its committer), and the lowest-ranked owner broadcasts
//     state to ranks that were behind — in the common all-equal case every
//     rank restores purely locally.
//   - Determinism across the shrink. Batch sizing stays keyed to the
//     ORIGINAL width, so the shrunken group consumes the same global data
//     stream. Post-shrink training is bit-identical to a fresh run at the
//     surviving width restored from the same checkpoint (identity-tested),
//     because the fold order is a function of global micro index only.
//   - Rejoin (width restore). The spawn:N runner is a supervisor: a child
//     that exits with the kill code was murdered by the fault plan, and
//     with -supervise it is relaunched with -rejoin (and without the fault
//     plan — the fault already happened). The rejoiner builds its engine
//     on the loopback, requests admission via a file in the group's socket
//     directory, and at the next round boundary the shrunken group's rank
//     0 broadcasts the admission ("member/cmd"), so every member re-forms
//     the full-width ring between the same two rounds. Everyone then calls
//     engine.Reconnect(g, true): parameters, optimizer state and step
//     counters re-broadcast from the current rank 0, and K-FAC
//     preconditioners reset symmetrically on every rank with a forced
//     refresh — the group re-derives identical curvature together rather
//     than shipping factor EMAs to the newcomer (§3.1's staleness
//     discipline applied to membership).
//   - Straggler feedback. Heartbeats carry each rank's last round wall
//     time; engine.RankSlowness distills the worst ratio and the autotuner
//     feeds it to hardware.Fit as a collective-cost scale, so re-planning
//     routes refresh work around a slow rank instead of pretending the
//     ring is uniform. Timelines stamp every event with the membership
//     view and mark the change with a Membership span (CSV "membership"
//     column, orange marker in SVG).
//
// When no failure occurs the elastic machinery is free: the heartbeat
// path costs zero extra allocations and <2% throughput on the ring
// executor benchmarks (CI-gated).
//
// # Refresh rounds
//
// The paper's K-FAC refreshes fit into the bubbles of *several consecutive
// pipeline steps* (2-4-step refresh windows). The round is the first-class
// executable form of that window: schedule.Executable with RefreshSteps =
// K emits ONE op list spanning K steps — each op carries its step index,
// curvature ops (fed by the window's first-step statistics) land in the
// bubbles of steps 0..K-1 wherever the PipeFisher packer placed them,
// inversions follow in later steps' bubbles, and the engine executes the
// whole round without goroutine teardown: cross-step dependency edges
// (optimizer-step to next forward, curvature fold to a later step's
// inversion) use the same completion channels as intra-step ones. Round
// contract:
//
//   - Factor ownership across step boundaries: the window's first step
//     snapshots the per-micro-batch statistics into pooled buffers owned
//     by the run state; the scheduled Curvature ops consume them in
//     whichever step's bubble the packer chose; the first Inversion op of
//     a layer folds every replica's partials into the per-stage
//     preconditioner's EMA (ascending global-micro order, under the
//     per-layer lock) and each Inversion op then swaps one cached inverse.
//     One round always completes exactly one refresh.
//   - Staleness semantics: the Precondition op of step j depends exactly
//     on the inversions the packer assigned to steps <= j, so each step
//     preconditions with the freshest completed inverses — and with the
//     previous refresh's inverses for factors still in flight, the
//     stale-but-cheap discipline of §3.1. FrontLoadRefresh pins the whole
//     refresh to the window's first step instead: the legacy skip cadence
//     expressed as a round, bit-identical to a RefreshSteps = 1 engine at
//     the same refresh interval (the round-vs-skip identity tests run on
//     this; refreshEvery must be a multiple of K either way).
//   - Step commits: every step's OptStep ops rendezvous at a barrier; the
//     last arriver fires the caller's optimizer callback (SetOptimizer),
//     zeroes the primary's accumulators, and re-broadcasts parameters to
//     the replicas while every device is parked — so collectives and the
//     update still happen exactly once per step, with the bit-identical
//     fixed reduction order. On failure the round aborts at round
//     granularity: committed steps stand, the failing step's gradient
//     state rolls back, and the step counter advances only past the
//     committed steps.
//
// # Overlapped rounds and generations
//
// Serialized rounds leave a gap at window boundaries: refresh work that
// does not fit a window's bubbles executes before the window's tail while
// the NEXT window's early bubbles — unusable for its own refresh, whose
// statistics do not exist yet — go idle. Overlapped rounds
// (engine.Config.OverlapRounds / schedule.Config.Overlap) close the gap by
// giving every refresh op a *generation*:
//
//   - Op.Generation 0 is the window's own statistics generation; 1 marks
//     work *carried* from the previous window — the spill, recomputed as a
//     fixed point so the steady-state window is self-consistent (what
//     spills out of a window is exactly what the next window absorbs).
//     Carried ops are ready the moment the round starts and pack FIRST,
//     into the early bubbles; the window's own curvature collection fills
//     what is left. When everything fits, the overlap schedule — and the
//     executed math — is identical to the serialized one.
//   - The engine double-buffers generation-tagged statistics pools
//     (kfacGenPool): a collect round snapshots and reduces into one pool
//     while the carried generation folds and inverts out of the other, so
//     a new window's snapshots never clobber factors still in flight. The
//     fold happens at first inversion touch of a layer per generation,
//     under the per-layer lock, scaled by the generation's own statistics
//     batch; cross-generation dependency edges order a layer's carried
//     fold before the newer generation's, keeping the EMA sequential.
//   - Preconditions keep §3.1's freshest-completed rule across the window
//     boundary: step j depends on the inversions of BOTH generations
//     assigned to steps <= j, so a factor whose inversion carried is
//     served stale for at most one extra window. An abort discards any
//     half-collected or half-delivered generation and forces the next
//     round to refresh from scratch.
//
// Adaptive round length: engine.Config.RefreshSteps =
// engine.AdaptiveRefreshSteps derives K at EnableKFAC time from measured
// work (schedule.AdaptiveRoundLength = Assign's refresh window) instead of
// a hand-picked flag. trace.BubbleUtilization / RenderBubbleSummary /
// WriteBubbleCSV quantify the result: per-device busy, refresh-filled and
// idle fractions (per step of the round in the CSV), with the
// refresh-filled share of the bubble budget as the headline number.
//
// # Fault tolerance contract
//
// The executor survives injected and real faults without ever trading
// away determinism. internal/faults builds seeded, reproducible fault
// plans — fail / stall / drop / corrupt actions pinned to named
// (step, device, op-kind, micro, generation) injection points, with
// optional firing counts (faults.Parse for the CLI spec grammar on the
// -faults flag, faults.Random for seeded soak plans). The plan hooks into
// the engine via engine.Config.FaultPlan; together with Config.OpTimeout
// and Config.OpRetries it switches the device loops onto the resilient
// dispatch path. When all three are unset the loops branch straight to the
// plain path — byte-identical behavior to an engine without the fault
// layer, CI-gated at exactly zero extra allocations and <2% throughput on
// the executor benchmarks.
//
// Resilience is layered, in escalation order:
//
//   - Watchdog: Config.OpTimeout arms a per-op deadline. An op that
//     exceeds it is converted into an attributed abort ("watchdog:
//     ... stalled") rather than a silent hang; parked devices unpark on
//     abort so a stalled collective cannot wedge the round.
//   - Retry with backoff: failed side-path ops (curvature, inversion,
//     sync-curvature) retry up to Config.OpRetries times with doubling
//     backoff from Config.RetryBackoff. The executed Timeline records the
//     retry count on the succeeding attempt's event (CSV "retries"
//     column).
//   - Degraded K-FAC: a side-path op that exhausts its retries does NOT
//     abort the round. The refresh is marked failed, SetFactors is never
//     reached, and every step preconditions with the previous
//     generation's cached inverses — §3.1's stale-but-cheap rule extended
//     to failure: stale beats absent, absent beats dead. If no generation
//     exists yet (first refresh fails), layers without inverses fall back
//     to the unpreconditioned gradient, bit-identical to a no-K-FAC
//     engine. A degraded round commits its steps normally, is flagged on
//     StepResult (Degraded/DegradedReason with the root-cause device and
//     op) and carries a Degraded marker span in the Timeline; the next
//     refresh round starts from scratch, and the factor EMA is never
//     touched by a failed or corrupt refresh (NaN/Inf partials are caught
//     before the fold). schedule.ValidateDegradedSafety proves the
//     licensing precondition on every rebuild: no base-path op may depend
//     on refresh output except Precondition-on-Inversion, the one edge
//     with a defined fallback.
//   - Checkpoint/replay: base-path faults (forward, backward, sync-grad,
//     precondition, opt-step) still abort, with the existing
//     round-granularity rollback and a root-cause error naming the
//     device, op, and — for injected faults — the injection point. With
//     Config.Checkpoint the engine snapshots parameters, gradient
//     accumulators, K-FAC state, step counters and (via
//     AttachOptimizerState) optimizer moments at every round start;
//     RestoreCheckpoint rewinds an aborted round so TrainRound can replay
//     the same batches. Replay after an injected abort reproduces the
//     fault-free parameters bit-identically — the identity tests assert
//     exact equality for BERT and GPT at W in {1, 2} under all three
//     schedules. Corruption (NaN/Inf) in base-path outputs is caught at
//     the step commit barrier before parameters update, so a corrupted
//     step can never commit.
//
// Abort hygiene holds at every injection point: the per-op-kind abort
// sweep asserts the root cause survives barrier aborts for every kind in
// the schedule, and the pool audit (tensor.SetPoolAudit / PoolLive)
// asserts the workspace pool returns to its steady-state live count after
// an abort at every (step, op-kind) — aborted and degraded rounds leak
// nothing.
//
// # Closed-loop tuning contract
//
// internal/autotune turns the offline configuration choice into a
// controller: the tuner refits the packing cost model from the engine's
// *executed* timelines, re-ranks the schedule candidate space under the
// fitted costs, and hot-swaps the engine to the predicted-best executable
// at a round boundary. Because predictions and execution share one
// schedule form (schedule.Executable), a ranking is a statement about
// exactly the op lists the engine would run; because the engine's
// micro-batch reduction order is fixed, a swap never changes the math —
// only the time it takes. The contract:
//
//   - Measurement hygiene: hardware.Fit ingests per-op durations from the
//     executed Timeline and estimates each op class by median over a
//     bounded ring. It must not trust what measurement cannot: whole
//     warm-up rounds are dropped, retried executions (duration includes
//     backoff) and Degraded placeholder spans are skipped, and aborted
//     rounds are never observed (their timelines are partial).
//   - Candidate space: schedule.Enumerate covers schedule family x round
//     length K x serialized/overlapped (x carry depth > 2) x inversion
//     sharding on the engine's fixed topology — the knobs a running
//     engine can swap at a round boundary. Stages, micro-batches and
//     data-parallel width are the machine; they are not searched.
//   - Ranking: schedule.Predict builds each candidate's executable
//     against the fitted costs and simulates one full refresh round; the
//     key is StepTime = RoundMakespan / K, which makes different round
//     lengths comparable. Ties break toward the serialized, shallower,
//     smaller configuration, so measurement noise can only ever flip a
//     decision toward simplicity (the committed K2 overlap-vs-serialized
//     benchmark gap is exactly such noise — the op lists are identical).
//   - Swap safety: engine.Reconfigure rebuilds the executable in place
//     between rounds. Parameters, optimizer state and step counters are
//     never touched. A swap whose packing tuple is unchanged preserves
//     in-flight carried generations and is bit-identical to not swapping
//     (identity-tested across schedules, models and W); a changed shape
//     scrubs pending generations and forces the next refresh from
//     scratch — the same discipline as an abort. Config.MinRelGain exists
//     because of that scrub: marginal predicted gains do not pay for
//     discarded refresh state, so the tuner holds below the threshold.
//   - Convergence artifact: every round appends a trace.TuneRecord with
//     the shape-normalized modeled-vs-measured error (each class as a
//     ratio to its side's Forward cost — modeled units are abstract,
//     measured ones are wall-clock, the *shape* is what packs). The error
//     shrinks once fitted costs are installed; trace.WriteTuneCSV /
//     RenderTuneLog are the match-the-model artifact, and the CI smoke
//     job asserts the bad-start run ends on a choice that beats its
//     starting configuration.
//
// The benchmark harness in bench_test.go regenerates the paper's tables
// and figures, and cmd/ plus examples/ provide runnable entry points
// (cmd/pipefisher -execute runs the sim/exec comparison end to end;
// -replicas executes the hybrid pipeline x data-parallel configuration,
// -refresh-steps the multi-step refresh rounds — 0 sizes them adaptively —
// -overlap the overlapped windows, -autotune the closed-loop tuner,
// with its per-round records written by -tune-csv, and -transport ring
// -group spawn:N the real multi-process socket ring, with -shard-params
// for ZeRO-style sharded parameters). The committed BENCH_tensor.json /
// BENCH_engine.json files are the perf-trajectory baseline;
// scripts/bench_compare.go reports benchstat-style deltas against them and
// CI fails on steady-state throughput regressions beyond 10%.
package repro
