// Package repro is a from-scratch Go reproduction of "PipeFisher:
// Efficient Training of Large Language Models Using Pipelining and Fisher
// Information Matrices" (Osawa, Li, Hoefler — MLSys 2023).
//
// The library lives under internal/ (see DESIGN.md for the module map);
// the benchmark harness in bench_test.go regenerates every table and
// figure of the paper's evaluation, and cmd/ plus examples/ provide
// runnable entry points.
package repro
