// Command perfmodel regenerates the paper's performance-model figures
// (Figures 5, 6 and 9-16) as CSV tables on stdout.
//
// Examples:
//
//	perfmodel -figure 5          # Chimera + BERT-Base time/memory/throughput/ratio grid
//	perfmodel -figure 6          # BERT-Base scaling over B_micro, D, N_micro, hardware
//	perfmodel -figure 10         # GPipe/1F1B vs Chimera for BERT-Large
//	perfmodel -arch T5-Base -method chimera   # custom sweep
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/hardware"
	"repro/internal/perfmodel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("perfmodel: ")
	var (
		figure     = flag.Int("figure", 0, "paper figure to regenerate: 5, 6, 9-16 (0 = custom sweep)")
		archName   = flag.String("arch", "BERT-Base", "architecture for custom sweeps")
		methodName = flag.String("method", "chimera", "pipeline scheme: chimera or gpipe/1f1b")
	)
	flag.Parse()

	switch *figure {
	case 0:
		a, err := arch.ByName(*archName)
		if err != nil {
			log.Fatal(err)
		}
		method := perfmodel.Chimera
		if *methodName != "chimera" {
			method = perfmodel.GPipe1F1B
		}
		sweepFigure(a, method)
	case 5:
		gridFigure(arch.BERTBase, perfmodel.Chimera)
	case 6, 11:
		sweepFigure(arch.BERTBase, perfmodel.Chimera)
	case 9:
		gridFigure(arch.BERTBase, perfmodel.GPipe1F1B)
		gridFigure(arch.BERTBase, perfmodel.Chimera)
	case 10:
		gridFigure(arch.BERTLarge, perfmodel.GPipe1F1B)
		gridFigure(arch.BERTLarge, perfmodel.Chimera)
	case 12:
		sweepFigure(arch.BERTLarge, perfmodel.Chimera)
	case 13:
		sweepFigure(arch.T5Base, perfmodel.Chimera)
	case 14:
		sweepFigure(arch.T5Large, perfmodel.Chimera)
	case 15:
		sweepFigure(arch.OPT125M, perfmodel.Chimera)
	case 16:
		sweepFigure(arch.OPT350M, perfmodel.Chimera)
	default:
		log.Fatalf("unknown figure %d", *figure)
	}
}

// gridFigure prints the Figure 5/9/10-style grid: per (BMicro, D) time and
// memory breakdown plus throughput and ratio, with and without activation
// recomputation.
func gridFigure(a arch.Transformer, method perfmodel.Method) {
	fmt.Printf("# %s, %s, N_micro = D, P100 (Figure 5/9/10 grid)\n", a.Name, method)
	fmt.Println("bmicro,d,recompute,tf_ms,tb_ms,tprec_ms,tbubble_ms,tcurv_ms,tinv_ms,throughput_vanilla,throughput_pipefisher,throughput_kfac_skip,throughput_kfac,ratio,mem_act_gb,mem_peak_err_gb,mem_save_err_gb,mem_curv_inv_gb,mem_param_grad_gb")
	for _, b := range []int{8, 16, 32} {
		for _, d := range []int{4, 8, 16} {
			for _, rec := range []bool{false, true} {
				m, err := perfmodel.Evaluate(perfmodel.Input{
					Arch: a, GPU: hardware.P100, Method: method,
					D: d, NMicro: d, BMicro: b, Recompute: rec,
				})
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%d,%d,%t,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.1f,%.1f,%.1f,%.1f,%.2f,%.3f,%.3f,%.3f,%.3f,%.3f\n",
					b, d, rec,
					ms(m.Tf), ms(m.Tb), ms(m.Tprec), ms(m.TBubble),
					ms(m.Tcurv), ms(m.Tinv),
					m.ThroughputVanilla, m.ThroughputPipeFisher,
					m.ThroughputKFACSkip, m.ThroughputKFACNaive,
					m.Ratio,
					gb(m.Memory.Act), gb(m.Memory.PeakErr), gb(m.Memory.SaveErr),
					gb(m.Memory.CurvInv), gb(m.Memory.ParamGrad))
			}
		}
	}
	fmt.Println()
}

// sweepFigure prints the Figure 6/11-16-style sweep: throughput, ratio and
// speedup-vs-skip over B_micro for each (D, N_micro, GPU).
func sweepFigure(a arch.Transformer, method perfmodel.Method) {
	fmt.Printf("# %s, %s sweep (Figure 6/11-16 style)\n", a.Name, method)
	fmt.Println("gpu,d,nmicro,bmicro,throughput_seqs_per_s,ratio,speedup_vs_skip")
	bmicros := []int{1, 2, 4, 8, 16, 32, 64}
	if a.SeqLen >= 2048 {
		bmicros = []int{1, 2, 4, 8} // OPT figures stop at B=8
	}
	pts, err := perfmodel.Sweep(a, method, []int{4, 8, 16, 32}, bmicros, []int{1, 2, 3}, hardware.All())
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pts {
		fmt.Printf("%s,%d,%d,%d,%.1f,%.2f,%.3f\n",
			p.GPU, p.D, p.NMicro, p.BMicro,
			p.Model.ThroughputPipeFisher, p.Model.Ratio, p.Model.SpeedupVsSkip())
	}
	fmt.Println()
}

func ms(us hardware.Microseconds) float64 { return float64(us) / 1000 }
func gb(bytes float64) float64            { return bytes / 1e9 }
