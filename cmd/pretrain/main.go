// Command pretrain reproduces the paper's convergence experiment
// (Figure 7 and Table 2) at laptop scale: it pretrains a tiny BERT on the
// synthetic corpus with NVLAMB and with K-FAC, reports steps-to-target, and
// converts steps to simulated wall-clock time using the pipeline
// simulator's measured step times — exactly the paper's methodology
// ("we simulate the time by multiplying the measured time per step by the
// total number of steps", §5).
//
// Examples:
//
//	pretrain -steps 300 -batch 16            # run both optimizers, print Figure 7 summary
//	pretrain -optimizer kfac -steps 200      # single run with the loss curve
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/bert"
	"repro/internal/data"
	"repro/internal/hardware"
	"repro/internal/pipeline"
	"repro/internal/schedule"
	"repro/internal/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pretrain: ")
	var (
		optName = flag.String("optimizer", "both", "nvlamb, kfac, or both")
		steps   = flag.Int("steps", 300, "training steps")
		batch   = flag.Int("batch", 16, "mini-batch size (sequences)")
		seed    = flag.Uint64("seed", 100, "model seed")
		dataSd  = flag.Uint64("dataseed", 200, "corpus seed")
		curve   = flag.Bool("curve", false, "print per-step losses")
		trans   = flag.String("transport", "loopback", "collective transport priced into the simulated wall-clock conversion: loopback or ring")
		dp      = flag.Int("dp", 1, "data-parallel width W priced into the simulated wall-clock conversion")
	)
	flag.Parse()
	if *trans == "ring" {
		// The convergence runs here are single-process; the ring is priced
		// into the wall-clock conversion only. State the liveness contract a
		// live ring of this width would run under (pipefisher -execute runs
		// it for real, including rank-failure survival).
		fmt.Printf("transport: ring priced at W=%d, heartbeat every %v on live groups (elastic membership view 0)\n",
			*dp, transport.DefaultHeartbeatInterval)
	}

	switch *optName {
	case "both":
		nv := run(bert.OptNVLAMB, *steps, *batch, *seed, *dataSd, *curve)
		kf := run(bert.OptKFAC, *steps, *batch, *seed, *dataSd, *curve)
		summarize(nv, kf, *steps, *trans, *dp)
	case "nvlamb":
		run(bert.OptNVLAMB, *steps, *batch, *seed, *dataSd, true)
	case "kfac":
		run(bert.OptKFAC, *steps, *batch, *seed, *dataSd, true)
	default:
		log.Fatalf("unknown optimizer %q", *optName)
	}
}

func run(kind bert.OptimizerKind, steps, batch int, seed, dataSeed uint64, curve bool) *bert.TrainResult {
	model, err := bert.New(bert.TinyConfig(), seed)
	if err != nil {
		log.Fatal(err)
	}
	corpus, err := data.NewCorpus(bert.TinyConfig().VocabSize, 1.0, dataSeed)
	if err != nil {
		log.Fatal(err)
	}
	res, err := bert.Pretrain(model, corpus, bert.TrainConfig{
		Optimizer: kind, Steps: steps, BatchSize: batch,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: final loss %.4f (%d curvature, %d inverse refreshes)\n",
		kind, res.FinalLoss, res.CurvatureRefreshes, res.InverseRefreshes)
	if curve {
		for t := 0; t < len(res.Losses); t += 10 {
			fmt.Printf("  step %4d  loss %.4f\n", t, res.Losses[t])
		}
	}
	return res
}

// summarize prints the Figure 7-style comparison: steps-to-target plus the
// simulated wall-clock times using Chimera step times from the simulator
// (BERT-Base, 4 stages, the §4 setup). The transport and data-parallel
// width select the collective cost model the step times are priced with.
func summarize(nv, kf *bert.TrainResult, steps int, trans string, dp int) {
	kSteps := kf.StepsToReach(nv.FinalLoss)
	fmt.Println()
	fmt.Printf("NVLAMB final loss:  %.4f after %d steps\n", nv.FinalLoss, steps)
	if kSteps < 0 {
		fmt.Println("K-FAC did not reach the NVLAMB final loss")
		return
	}
	fmt.Printf("K-FAC reaches it at step %d (%.1f%% of steps; paper: 42.0%%)\n",
		kSteps, 100*float64(kSteps)/float64(steps))

	costs, err := pipeline.CostsFor(pipeline.CostConfig{
		Arch: arch.BERTBase, BlocksPerStage: 3, MicroBatch: 32, GPU: hardware.P100,
		DataParallelWidth: dp, Transport: trans,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := schedule.Assign(schedule.Config{
		Method: "chimera", Stages: 4, MicroBatches: 4, Costs: costs, InversionParallel: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	nvTime := float64(res.VanillaStepTime) / 1e6 * float64(steps)
	kfTime := float64(res.StepTime) / 1e6 * float64(kSteps)
	fmt.Printf("\nsimulated wall-clock (Chimera step times, BERT-Base, 4 stages, P100):\n")
	fmt.Printf("  NVLAMB by Chimera:            %.1f ms/step x %d = %.1f s\n",
		float64(res.VanillaStepTime)/1000, steps, nvTime)
	fmt.Printf("  K-FAC by Chimera+PipeFisher:  %.1f ms/step x %d = %.1f s (%.1f%% of NVLAMB; paper: 48.7%%)\n",
		float64(res.StepTime)/1000, kSteps, kfTime, 100*kfTime/nvTime)
	fmt.Printf("  GPU utilization: %.1f%% -> %.1f%% (paper: 75.9%% -> 93.2%%)\n",
		100*res.VanillaUtilization, 100*res.Utilization)
}
