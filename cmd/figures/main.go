// Command figures regenerates every figure artifact of the reproduction in
// one run: timeline CSVs and SVGs for the profile figures (1, 3, 4) and
// CSV series for the performance-model figures (5, 6, 9-16), written to an
// output directory.
//
// Usage:
//
//	figures -out ./out
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/arch"
	"repro/internal/hardware"
	"repro/internal/perfmodel"
	"repro/internal/pipeline"
	"repro/internal/schedule"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	out := flag.String("out", "figures-out", "output directory")
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	profileFigures(*out)
	modelFigures(*out)
	fmt.Printf("all figure artifacts written to %s\n", *out)
}

// profileFigures regenerates the timeline-based figures.
func profileFigures(dir string) {
	cases := []struct {
		name   string
		a      arch.Transformer
		method string
		stages int
		blocks int
		nmicro int
		dp     int
		invPar bool
	}{
		{"figure1_gpipe_schematic", arch.BERTBase, "gpipe", 4, 1, 4, 1, false},
		{"figure3_gpipe_bertbase", arch.BERTBase, "gpipe", 4, 3, 4, 1, false},
		{"figure3_1f1b_bertbase", arch.BERTBase, "1f1b", 4, 3, 4, 1, false},
		{"figure3_gpipe_data_inv_parallel", arch.BERTBase, "gpipe", 4, 3, 4, 2, true},
		{"figure4_chimera_bertlarge", arch.BERTLarge, "chimera", 8, 3, 8, 2, true},
	}
	for _, c := range cases {
		dpCost := c.dp
		dpSched := c.dp
		if c.method == "chimera" {
			dpSched = 1 // Chimera's pair replication is built in
		}
		costs, err := pipeline.CostsFor(pipeline.CostConfig{
			Arch: c.a, BlocksPerStage: c.blocks, MicroBatch: 32,
			GPU: hardware.P100, DataParallelWidth: dpCost,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := schedule.Assign(schedule.Config{
			Method: c.method, Stages: c.stages, MicroBatches: c.nmicro, Costs: costs,
			DataParallelWidth: dpSched, InversionParallel: c.invPar,
		})
		if err != nil {
			log.Fatal(err)
		}
		writeTimeline(dir, c.name+"_vanilla", res.VanillaTimeline)
		writeTimeline(dir, c.name+"_pipefisher", res.Timeline)
		fmt.Printf("%-36s util %.1f%% -> %.1f%%, refresh %d step(s)\n",
			c.name, 100*res.VanillaUtilization, 100*res.Utilization, res.RefreshSteps)
	}
}

func writeTimeline(dir, name string, tl *pipeline.Timeline) {
	csvF, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		log.Fatal(err)
	}
	defer csvF.Close()
	if err := trace.WriteCSV(csvF, tl); err != nil {
		log.Fatal(err)
	}
	svgF, err := os.Create(filepath.Join(dir, name+".svg"))
	if err != nil {
		log.Fatal(err)
	}
	defer svgF.Close()
	if err := trace.RenderSVG(svgF, tl, 1200); err != nil {
		log.Fatal(err)
	}
}

// modelFigures regenerates the performance-model CSV series.
func modelFigures(dir string) {
	sweeps := []struct {
		name string
		a    arch.Transformer
	}{
		{"figure6_11_bertbase", arch.BERTBase},
		{"figure12_bertlarge", arch.BERTLarge},
		{"figure13_t5base", arch.T5Base},
		{"figure14_t5large", arch.T5Large},
		{"figure15_opt125m", arch.OPT125M},
		{"figure16_opt350m", arch.OPT350M},
	}
	for _, s := range sweeps {
		f, err := os.Create(filepath.Join(dir, s.name+".csv"))
		if err != nil {
			log.Fatal(err)
		}
		bmicros := []int{1, 2, 4, 8, 16, 32, 64}
		if s.a.SeqLen >= 2048 {
			bmicros = []int{1, 2, 4, 8}
		}
		pts, err := perfmodel.Sweep(s.a, perfmodel.Chimera, []int{4, 8, 16, 32}, bmicros, []int{1, 2, 3}, hardware.All())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(f, "gpu,d,nmicro,bmicro,throughput_seqs_per_s,ratio,speedup_vs_skip")
		for _, p := range pts {
			fmt.Fprintf(f, "%s,%d,%d,%d,%.1f,%.2f,%.3f\n",
				p.GPU, p.D, p.NMicro, p.BMicro,
				p.Model.ThroughputPipeFisher, p.Model.Ratio, p.Model.SpeedupVsSkip())
		}
		f.Close()
		fmt.Printf("%-36s %d sweep points\n", s.name, len(pts))
	}
	// Figure 5/9/10 grids.
	for _, g := range []struct {
		name   string
		a      arch.Transformer
		method perfmodel.Method
	}{
		{"figure5_9_chimera_bertbase_grid", arch.BERTBase, perfmodel.Chimera},
		{"figure9_gpipe_bertbase_grid", arch.BERTBase, perfmodel.GPipe1F1B},
		{"figure10_chimera_bertlarge_grid", arch.BERTLarge, perfmodel.Chimera},
		{"figure10_gpipe_bertlarge_grid", arch.BERTLarge, perfmodel.GPipe1F1B},
	} {
		f, err := os.Create(filepath.Join(dir, g.name+".csv"))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(f, "bmicro,d,recompute,tbubble_ms,throughput_pipefisher,ratio,mem_total_gb")
		for _, bm := range []int{8, 16, 32} {
			for _, d := range []int{4, 8, 16} {
				for _, rec := range []bool{false, true} {
					m, err := perfmodel.Evaluate(perfmodel.Input{
						Arch: g.a, GPU: hardware.P100, Method: g.method,
						D: d, NMicro: d, BMicro: bm, Recompute: rec,
					})
					if err != nil {
						log.Fatal(err)
					}
					fmt.Fprintf(f, "%d,%d,%t,%.2f,%.1f,%.2f,%.3f\n",
						bm, d, rec, float64(m.TBubble)/1000,
						m.ThroughputPipeFisher, m.Ratio, m.Memory.Total()/1e9)
				}
			}
		}
		f.Close()
		fmt.Printf("%-36s grid written\n", g.name)
	}
}
