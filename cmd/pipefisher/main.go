// Command pipefisher runs a pipeline schedule with PipeFisher's automatic
// K-FAC work assignment and renders the resulting timeline, reproducing the
// profiles of Figures 1, 3 and 4.
//
// Examples:
//
//	pipefisher -method gpipe -arch BERT-Base -stages 4 -blocks 3 -nmicro 4 -bmicro 32
//	pipefisher -method chimera -arch BERT-Large -stages 8 -blocks 3 -nmicro 8 -bmicro 32 -invparallel
//	pipefisher -method gpipe -stages 4 -nmicro 4 -bmicro 32 -dp 2 -invparallel -csv out.csv
//
// With -execute it additionally *runs* the schedule for real: a small BERT
// (one block per stage) trains through the schedule-driven engine with
// K-FAC work executing in the bubbles, and the executed timeline is
// rendered (and written as SVG next to -svg) for comparison against the
// simulated one — the sim/exec round trip the shared schedule form enables.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/autotune"
	"repro/internal/bert"
	"repro/internal/data"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/hardware"
	"repro/internal/kfac"
	"repro/internal/optim"
	"repro/internal/pipeline"
	"repro/internal/schedule"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pipefisher: ")
	var (
		method       = flag.String("method", "gpipe", "pipeline schedule: gpipe, 1f1b, chimera")
		archName     = flag.String("arch", "BERT-Base", "architecture (Table 3 name)")
		gpuName      = flag.String("gpu", "P100", "GPU profile: P100, V100, RTX3090")
		stages       = flag.Int("stages", 4, "number of pipeline stages D")
		blocks       = flag.Int("blocks", 3, "transformer blocks per stage")
		nmicro       = flag.Int("nmicro", 4, "micro-batches per device per step")
		bmicro       = flag.Int("bmicro", 32, "micro-batch size")
		dp           = flag.Int("dp", 1, "data-parallel width W (gpipe/1f1b)")
		invParallel  = flag.Bool("invparallel", false, "split inversion work across the stage's devices")
		recompute    = flag.Bool("recompute", false, "activation recomputation")
		width        = flag.Int("width", 120, "ASCII timeline width")
		csvPath      = flag.String("csv", "", "write the augmented timeline as CSV to this file")
		svgPath      = flag.String("svg", "", "write the augmented timeline as SVG to this file")
		vanilla      = flag.Bool("vanilla", false, "also render the vanilla (no K-FAC) timeline")
		execute      = flag.Bool("execute", false, "really train a small model under this schedule and render the executed timeline")
		execSteps    = flag.Int("execsteps", 5, "training steps to execute with -execute (rounded up to whole refresh rounds)")
		workers      = flag.Int("workers", 0, "intra-op kernel worker budget for real execution (0 = GOMAXPROCS); device goroutines share it")
		replicas     = flag.Int("replicas", 1, "data-parallel width W for real execution with -execute (replicated stage parameters, in-process sync-grad collectives)")
		refreshSteps = flag.Int("refresh-steps", 1, "round length K for real execution with -execute: one K-FAC refresh spreads over the bubbles of K consecutive steps (1 = classic skip cadence, 0 = adaptive: derive K from the measured refresh work at EnableKFAC time)")
		overlap      = flag.Bool("overlap", false, "overlap consecutive refresh windows with -execute: refresh work that spills out of its window carries into the next round's bubbles as generation-lagged ops")
		kernelName   = flag.String("kernel", "", "matmul kernel variant: scalar, tiled, or fma (default: best available)")
		f32          = flag.Bool("f32", false, "float32 compute mode: packed matmul panels and K-FAC statistics snapshots narrow to float32 (inverses and optimizer state stay float64)")
		faultSpec    = flag.String("faults", "", "deterministic fault plan for -execute, e.g. 'fail:step=2,op=curvature;stall:op=forward,delay=5ms,count=1' (kinds: fail, stall, drop, corrupt)")
		opTimeout    = flag.Duration("op-timeout", 0, "watchdog deadline per executed op with -execute; 0 disables the watchdog")
		opRetries    = flag.Int("op-retries", 0, "retry budget for failed side-path ops (curvature, inversion, sync-curvature) before degrading, with -execute")
		retryBackoff = flag.Duration("retry-backoff", 2*time.Millisecond, "base backoff between retries (doubles per attempt)")
		checkpoint   = flag.Bool("checkpoint", false, "round checkpoint/replay with -execute: snapshot state at every round start and replay aborted rounds (up to 3 attempts)")
		carryDepth   = flag.Int("carry-depth", 0, "overlap carry depth for real execution with -execute: refresh work may lag up to carry-depth-1 rounds behind its statistics (0 = the overlap default of 2; >2 needs -overlap)")
		autotuneOn   = flag.Bool("autotune", false, "closed-loop tuning with -execute: refit packing costs from the executed rounds, re-rank the schedule candidate space, and hot-swap the engine at round boundaries")
		tuneInterval = flag.Int("autotune-interval", 4, "rounds between tuner decisions with -autotune (observation continues every round)")
		tuneCSV      = flag.String("tune-csv", "", "write the tuner's per-round model-error and decision records as CSV to this file, with -autotune")
		transName    = flag.String("transport", "loopback", "collective transport: loopback (in-process) or ring (chunked socket chain) — prices the simulated collectives, and with -execute + -group really runs them")
		groupSpec    = flag.String("group", "", "ring membership: comma-separated listen addresses (unix:PATH or tcp:HOST:PORT, one per rank), or spawn:N to launch N local ranks over unix sockets")
		rankFlag     = flag.Int("rank", 0, "this process's rank within -group")
		chunkFl      = flag.Int("chunk", 0, "ring all-reduce chunk size in float64 elements (0 = transport default)")
		shardParams  = flag.Bool("shard-params", false, "ZeRO-style parameter sharding across the replica axis with -execute (needs -replicas >= 2)")
		heartbeat    = flag.Duration("heartbeat", 0, "ring heartbeat interval for liveness and straggler detection (0 = transport default, negative disables)")
		supervise    = flag.Bool("supervise", false, "with -group spawn:N: restart ranks killed by a fault plan and rejoin them at the next round boundary")
		rejoin       = flag.Bool("rejoin", false, "internal: this process is a restarted rank rejoining a running elastic group (set by the spawn supervisor)")
	)
	flag.Parse()
	if n, ok := spawnCount(*groupSpec); ok {
		os.Exit(spawnRanks(n, *supervise))
	}
	if *workers < 0 {
		*workers = 0 // negative means "default", like 0
	}
	if *replicas < 1 {
		*replicas = 1
	}
	if *refreshSteps < 0 {
		*refreshSteps = 0 // negative means "adaptive", like 0
	}
	tensor.SetParallelism(*workers)
	if *kernelName != "" {
		k, err := tensor.ParseKernel(*kernelName)
		if err != nil {
			log.Fatal(err)
		}
		if err := tensor.SetKernel(k); err != nil {
			log.Fatal(err)
		}
	}
	tensor.SetF32(*f32)
	kDesc := fmt.Sprint(*refreshSteps)
	if *refreshSteps == 0 {
		kDesc = "adaptive"
	}
	fmt.Printf("%s on %s: %d stages x %d micro-batches, simulated W=%d, executed replicas=%d, refresh round K=%s, overlap=%v, intra-op workers %d, kernel %s, f32=%v\n",
		*archName, *gpuName, *stages, *nmicro, *dp, *replicas, kDesc, *overlap, tensor.Parallelism(), tensor.ActiveKernel(), tensor.F32())

	a, err := arch.ByName(*archName)
	if err != nil {
		log.Fatal(err)
	}
	g, err := hardware.ByName(*gpuName)
	if err != nil {
		log.Fatal(err)
	}
	costs, err := pipeline.CostsFor(pipeline.CostConfig{
		Arch: a, BlocksPerStage: *blocks, MicroBatch: *bmicro, GPU: g,
		DataParallelWidth: *dp, Recompute: *recompute, Transport: *transName,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := schedule.Assign(schedule.Config{
		Method: *method, Stages: *stages, MicroBatches: *nmicro, Costs: costs,
		DataParallelWidth: *dp, InversionParallel: *invParallel,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *vanilla {
		if err := trace.RenderASCII(os.Stdout, res.VanillaTimeline, *width); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if err := trace.RenderASCII(os.Stdout, res.Timeline, *width); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("GPU utilization:   %.1f%% -> %.1f%% with PipeFisher\n",
		100*res.VanillaUtilization, 100*res.Utilization)
	fmt.Printf("step time:         %.1f ms -> %.1f ms (+%.1f%% precondition overhead)\n",
		float64(res.VanillaStepTime)/1000, float64(res.StepTime)/1000,
		100*float64(res.StepTime-res.VanillaStepTime)/float64(res.VanillaStepTime))
	fmt.Printf("curvature+inverse refreshed every %d step(s); per-stage: %v\n",
		res.RefreshSteps, res.RefreshStepsPerStage)
	if res.Unassigned > 0 {
		fmt.Printf("WARNING: %d K-FAC work items did not fit in the simulated window\n", res.Unassigned)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := trace.WriteCSV(f, res.Timeline); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("timeline CSV written to %s\n", *csvPath)
	}
	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := trace.RenderSVG(f, res.Timeline, 1200); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("timeline SVG written to %s\n", *svgPath)
	}

	if *execute {
		var plan *faults.Plan
		if *faultSpec != "" {
			plan, err = faults.Parse(*faultSpec)
			if err != nil {
				log.Fatal(err)
			}
		}
		ft := faultConfig{
			plan: plan, opTimeout: *opTimeout, opRetries: *opRetries,
			retryBackoff: *retryBackoff, checkpoint: *checkpoint,
		}
		tn := tuneConfig{
			enabled: *autotuneOn, interval: *tuneInterval, csvPath: *tuneCSV,
		}
		tr := transportConfig{shard: *shardParams}
		switch *transName {
		case "loopback":
			if *groupSpec != "" {
				log.Fatal("-group needs -transport ring")
			}
		case "ring":
			addrs := strings.Split(*groupSpec, ",")
			if len(addrs) < 2 {
				log.Fatal("-transport ring needs a -group with at least 2 addresses (or spawn:N)")
			}
			tr.addrs, tr.self = addrs, *rankFlag
			tr.opts = transport.RingOptions{
				ChunkFloats: *chunkFl, DialTimeout: 30 * time.Second,
				HeartbeatInterval: *heartbeat,
			}
			if *rejoin {
				// A restarted rank builds its engine on the loopback first;
				// the ring forms during the rejoin handshake and Reconnect
				// initializes its state from the survivors.
				tr.rejoin = true
			} else {
				for i := range addrs {
					tr.alive = append(tr.alive, i)
				}
				g, err := transport.DialRing(addrs, *rankFlag, tr.opts)
				if err != nil {
					log.Fatal(err)
				}
				tr.group = g
			}
		default:
			log.Fatalf("unknown -transport %q (want loopback or ring)", *transName)
		}
		defer func() {
			if tr.group != nil {
				tr.group.Close()
			}
		}()
		executeSchedule(*method, *stages, *nmicro, *replicas, *invParallel, *execSteps, *refreshSteps, *carryDepth, *width, *workers, *overlap, *svgPath, ft, tn, &tr)
	}
}

// spawnCount parses a "spawn:N" -group spec.
func spawnCount(spec string) (int, bool) {
	rest, ok := strings.CutPrefix(spec, "spawn:")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 2 {
		log.Fatalf("-group %s: spawn needs an integer rank count >= 2", spec)
	}
	return n, true
}

// spawnRanks launches n copies of this binary as a local ring group over
// Unix-domain sockets in a temp directory, forwarding every flag except
// -group (replaced by the socket list) and -rank (assigned per child). Rank
// 0's stdout passes through — its step losses are the group's, so a spawned
// run's output is comparable line-for-line with a single-process run of the
// same global batch — while the other ranks' stdout is discarded and all
// stderr is shared.
//
// As supervisor, it watches for children that exit with killExitCode — a
// fault-plan kill, not a crash. Without -supervise the death is accepted:
// the survivors shrink the ring and finish at reduced width, and the run
// counts as a success. With -supervise the dead rank is relaunched with
// -rejoin so it re-enters the group at the next round boundary, restoring
// full width. Returns the exit code for the parent.
func spawnRanks(n int, supervise bool) int {
	exe, err := os.Executable()
	if err != nil {
		log.Print(err)
		return 1
	}
	dir, err := os.MkdirTemp("", "pipefisher-ring-")
	if err != nil {
		log.Print(err)
		return 1
	}
	defer os.RemoveAll(dir)
	specs := make([]string, n)
	for i := range specs {
		specs[i] = "unix:" + filepath.Join(dir, fmt.Sprintf("rank%d.sock", i))
	}
	base := stripFlags(os.Args[1:], "group", "rank", "supervise", "csv", "svg", "tune-csv")
	zero := stripFlags(os.Args[1:], "group", "rank", "supervise")
	start := func(i int, rejoin bool) (*exec.Cmd, error) {
		args := zero
		if i > 0 {
			args = base // secondary ranks must not race rank 0 on output files
		}
		args = append(append([]string{}, args...),
			"-transport", "ring", "-group", strings.Join(specs, ","), "-rank", strconv.Itoa(i))
		if rejoin {
			// The fault plan already did its job — it crashed the original
			// process. Its replacement runs clean, or a rank-targeted kill
			// would re-fire on every incarnation and the run would never end.
			args = append(stripFlags(args, "faults"), "-rejoin")
		}
		c := exec.Command(exe, args...)
		c.Stdout = io.Discard
		if i == 0 {
			c.Stdout = os.Stdout
		}
		c.Stderr = os.Stderr
		return c, c.Start()
	}
	cmds := make([]*exec.Cmd, n)
	for i := range cmds {
		c, err := start(i, false)
		if err != nil {
			log.Print(err)
			return 1
		}
		cmds[i] = c
	}
	var wg sync.WaitGroup
	var failed atomic.Bool
	for i := range cmds {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := cmds[i]
			for {
				err := c.Wait()
				if err == nil {
					return
				}
				var ee *exec.ExitError
				if errors.As(err, &ee) && ee.ExitCode() == killExitCode {
					if !supervise {
						log.Printf("rank %d killed by fault plan; survivors continue at reduced width", i)
						return
					}
					log.Printf("rank %d killed by fault plan; supervisor restarting it for rejoin", i)
					nc, serr := start(i, true)
					if serr != nil {
						log.Printf("rank %d restart: %v", i, serr)
						failed.Store(true)
						return
					}
					c = nc
					continue
				}
				log.Printf("rank %d: %v", i, err)
				failed.Store(true)
				return
			}
		}(i)
	}
	wg.Wait()
	if failed.Load() {
		return 1
	}
	return 0
}

// stripFlags removes the named flags (and their values) from an argument
// list, accepting the -name value, -name=value, and --name forms.
func stripFlags(args []string, names ...string) []string {
	drop := make(map[string]bool, len(names))
	for _, n := range names {
		drop[n] = true
	}
	var out []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		name, hasValue := strings.TrimLeft(a, "-"), false
		if eq := strings.IndexByte(name, '='); eq >= 0 {
			name, hasValue = name[:eq], true
		}
		if strings.HasPrefix(a, "-") && drop[name] {
			if !hasValue && i+1 < len(args) && !strings.HasPrefix(args[i+1], "-") {
				i++ // skip the separate value
			}
			continue
		}
		out = append(out, a)
	}
	return out
}

// tuneConfig bundles the closed-loop tuning flags for real execution.
type tuneConfig struct {
	enabled  bool
	interval int
	csvPath  string
}

// faultConfig bundles the fault-tolerance flags for real execution.
type faultConfig struct {
	plan         *faults.Plan
	opTimeout    time.Duration
	opRetries    int
	retryBackoff time.Duration
	checkpoint   bool
}

// transportConfig bundles the collective-transport flags for real
// execution. A nil group means the in-process loopback transport (or, with
// rejoin set, a ring that forms during the rejoin handshake). For elastic
// multi-process rings, addrs/self/alive/view track the ORIGINAL membership
// so the group can be re-formed after rank failures and rejoins.
type transportConfig struct {
	group  transport.Group
	shard  bool
	addrs  []string // full original ring address list ("" transport: none)
	self   int      // this process's original rank within addrs
	alive  []int    // current members, as original ranks (ascending)
	view   int64    // membership view of the current group
	opts   transport.RingOptions
	rejoin bool // this process rejoins a running group instead of dialing
}

// executeSchedule trains a small BERT (one block per stage) for real under
// the selected schedule with K-FAC packed into the bubbles — replicated
// W-fold when -replicas is set, with the in-process gradient and curvature
// collectives, in K-step refresh rounds when -refresh-steps asks for
// multi-step windows (or sizes them adaptively with 0), and with
// overlapped windows when -overlap is set — then renders the executed
// timeline of the last round (step boundaries marked on the ruler) and its
// bubble-utilization summary. With -autotune the closed-loop tuner
// observes every executed round and may hot-swap the engine to a
// predicted-faster configuration at a round boundary; its decision log and
// final choice are printed after training.
func executeSchedule(method string, stages, nmicro, replicas int, invParallel bool, steps, refreshSteps, carryDepth, width, workers int, overlap bool, svgPath string, ft faultConfig, tc tuneConfig, tr *transportConfig) {
	cfg := bert.TinyConfig()
	cfg.Blocks = stages
	model, err := bert.New(cfg, 7)
	if err != nil {
		log.Fatal(err)
	}
	corpus, err := data.NewCorpus(cfg.VocabSize, 1.0, 11)
	if err != nil {
		log.Fatal(err)
	}
	// The ORIGINAL group width sizes the global batch, so a shrunken group
	// keeps consuming the same data stream (survivors re-shard the same
	// micro-batches) and losses stay comparable across membership changes.
	groupSize := 1
	if tr.elastic() {
		groupSize = len(tr.addrs)
	} else if tr.group != nil {
		groupSize = tr.group.Size()
	}
	adaptive := refreshSteps == 0
	if adaptive {
		refreshSteps = engine.AdaptiveRefreshSteps
	}
	eng, err := engine.NewWithConfig(model, engine.Config{
		Method: method, Stages: stages, MicroBatches: nmicro,
		Replicas: replicas, InversionParallel: invParallel, Workers: workers,
		RefreshSteps: refreshSteps, OverlapRounds: overlap, CarryDepth: carryDepth,
		FaultPlan: ft.plan, OpTimeout: ft.opTimeout,
		OpRetries: ft.opRetries, RetryBackoff: ft.retryBackoff,
		Checkpoint: ft.checkpoint,
		Transport:  tr.group, ShardParams: tr.shard,
	})
	if err != nil {
		log.Fatal(err)
	}
	if tr.elastic() {
		// A fault-plan kill must look like a real rank death to the peers:
		// exit the process so every survivor sees the wire drop. The exit
		// code tells the spawn supervisor this was deliberate.
		eng.SetKillHook(func() { os.Exit(killExitCode) })
	}
	// With explicit one-step rounds keep the classic every-2-steps skip
	// cadence; multi-step (or adaptively sized) windows ARE the cadence.
	every := 0
	if refreshSteps == 1 {
		every = 2
	}
	if err := eng.EnableKFAC(kfac.Options{Damping: 1e-2, StatDecay: 0.95, UsePiDamping: true}, every); err != nil {
		log.Fatal(err)
	}
	k := eng.RoundSteps()
	kDesc := fmt.Sprintf("K=%d", k)
	if adaptive {
		kDesc = fmt.Sprintf("K=%d (adaptive, from measured refresh work)", k)
	}
	params := model.Params()
	opt := optim.NewLAMB(params, 0.01)
	eng.SetOptimizer(func(step int) error {
		opt.Step(3e-3)
		return nil
	})
	if ft.checkpoint {
		eng.AttachOptimizerState(opt)
	}
	var tn *autotune.Tuner
	var startCand schedule.Candidate
	if tc.enabled {
		tn, err = autotune.New(eng, autotune.Config{Interval: tc.interval})
		if err != nil {
			log.Fatal(err)
		}
		startCand = tn.CurrentCandidate()
	}
	fmt.Printf("\n--- real execution: %s, %d stages, %d micro-batches, %d replica(s), refresh round %s, overlap=%v, %d intra-op workers ---\n",
		method, stages, nmicro, replicas, kDesc, overlap, tensor.Parallelism())
	if tr.group != nil {
		fmt.Printf("transport: ring rank %d of %d, global data-parallel width %d\n",
			tr.group.Rank(), tr.group.Size(), groupSize*replicas)
	} else if tr.rejoin {
		fmt.Printf("transport: ring rank %d rejoining a %d-wide group\n", tr.self, groupSize)
	}
	if tr.elastic() {
		hb := transport.DefaultHeartbeatInterval
		if h, ok := tr.group.(interface{ HeartbeatInterval() time.Duration }); ok {
			hb = h.HeartbeatInterval()
		} else if tr.opts.HeartbeatInterval != 0 {
			hb = tr.opts.HeartbeatInterval
		}
		if hb > 0 {
			fmt.Printf("elastic: heartbeat every %v, membership view %d, rank failures survive with -checkpoint\n",
				hb, tr.view)
		} else {
			fmt.Printf("elastic: heartbeats disabled, membership view %d\n", tr.view)
		}
	}
	if full, resident, ok := eng.ShardStats(); ok {
		fmt.Printf("shard-params: secondary replicas keep %d of %d parameter bytes resident (%.0f%%)\n",
			resident, full, 100*float64(resident)/float64(full))
	}
	if ft.plan != nil || ft.opTimeout > 0 || ft.opRetries > 0 || ft.checkpoint {
		fmt.Printf("fault tolerance: plan=%v op-timeout=%v op-retries=%d checkpoint=%v\n",
			ft.plan, ft.opTimeout, ft.opRetries, ft.checkpoint)
	}
	if tn != nil {
		fmt.Printf("autotune: on, starting from %s (decision every %d rounds)\n", startCand, tc.interval)
	}
	done := 0
	if tr.rejoin {
		step, err := rejoinHandshake(eng, tr)
		if err != nil {
			log.Fatal(err)
		}
		done = step
	}
	for done < steps {
		// Round boundaries are where membership changes land: a shrunken
		// group checks for (and admits) restarted ranks here, so every
		// member switches groups between the same two rounds.
		if err := memberSync(eng, tr); err != nil {
			log.Fatal("membership sync: ", err)
		}
		// A tuner swap can change the round length between rounds, so the
		// batch shape is re-derived from the engine every iteration.
		k = eng.RoundSteps()
		batches := make([]*data.Batch, k)
		for j := range batches {
			// Every rank materializes the full global batch from the shared
			// corpus seed and trains its own contiguous slice, so a W-rank run
			// and a single-process run of the same global width see identical
			// data — and print identical losses.
			batches[j] = corpus.MakeBatch(4*nmicro*replicas*groupSize, data.DefaultBatchConfig(cfg.SeqLen))
		}
		res, err := eng.TrainRound(batches)
		// Restore-and-replay: an aborted round rewinds to its start
		// checkpoint and re-runs the same batches. Count-limited faults
		// stay consumed across the rewind, so a transient fault's replay
		// goes through; a persistent one exhausts the attempts and dies.
		// A rank failure is different: local replay cannot outrun a dead
		// peer, so the survivors regroup onto a smaller ring instead.
		for attempt := 1; err != nil && ft.checkpoint && attempt <= 3; attempt++ {
			if _, isRF := transport.AsRankFailure(err); isRF {
				break
			}
			fmt.Printf("round aborted: %v\n  restoring checkpoint and replaying (attempt %d/3)\n", err, attempt)
			if _, rerr := eng.RestoreCheckpoint(); rerr != nil {
				log.Fatal(rerr)
			}
			res, err = eng.TrainRound(batches)
		}
		if err != nil {
			if rf, ok := transport.AsRankFailure(err); ok && tr.elastic() {
				if eng.StepsDone() >= steps {
					// Every step this run needed has committed — the "dead"
					// peer finished first and tore down while this rank was
					// draining its final round. Nothing is left to regroup
					// for; finish like everyone else.
					fmt.Printf("membership: peer closed after final commit (%v)\n", rf.Cause)
					break
				}
				step, serr := surviveFailure(eng, tr, ft, rf)
				if serr != nil {
					log.Fatal(serr)
				}
				done = step
				continue
			}
			log.Fatal(err)
		}
		for j, r := range res {
			deg := ""
			if r.Degraded && j == 0 {
				deg = fmt.Sprintf("  DEGRADED (%s)", r.DegradedReason)
			}
			fmt.Printf("step %d  loss %.4f  refreshed=%v%s\n", done+j, r.Loss.Total, r.Refreshed, deg)
		}
		done += k
		if tn != nil {
			d, derr := tn.Observe()
			if derr != nil {
				// A failed swap leaves the engine on its current schedule;
				// report it and train on.
				fmt.Printf("autotune: %v\n", derr)
			}
			if d != nil {
				fmt.Printf("autotune round %d: %s -> %s (predicted %d -> %d us/step): %s\n",
					d.Round, d.Current, d.Choice, d.CurrentStep, d.ChoiceStep, d.Reason)
			}
		}
	}
	if tn != nil {
		fmt.Println()
		if err := trace.RenderTuneLog(os.Stdout, tn.Records()); err != nil {
			log.Fatal(err)
		}
		final := tn.CurrentCandidate()
		if final == startCand {
			fmt.Printf("autotune: held starting configuration %s\n", startCand)
		} else {
			fmt.Printf("autotune: final choice %s beats starting configuration %s\n", final, startCand)
		}
		if tc.csvPath != "" {
			f, err := os.Create(tc.csvPath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			if err := trace.WriteTuneCSV(f, tn.Records()); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("tuner records CSV written to %s\n", tc.csvPath)
		}
	}
	if tr.group != nil {
		fmt.Printf("transport: rank %d sent %d bytes on the wire\n", tr.group.Rank(), tr.group.BytesOnWire())
	}
	fmt.Println()
	real := eng.LastTimeline()
	if err := trace.RenderASCII(os.Stdout, real, width); err != nil {
		log.Fatal(err)
	}
	if err := trace.RenderBubbleSummary(os.Stdout, real); err != nil {
		log.Fatal(err)
	}
	if svgPath != "" {
		execPath := svgPath + ".executed.svg"
		f, err := os.Create(execPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := trace.RenderSVG(f, real, 1200); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("executed-timeline SVG written to %s\n", execPath)
	}
}
