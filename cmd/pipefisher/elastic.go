package main

// Elastic membership driver: the CLI-side protocol that keeps a multi-process
// ring run alive through rank deaths and brings restarted ranks back.
//
//   - Shrink: when a round fails with an attributed transport.RankFailure,
//     every survivor maps the dead member back to its original rank, reforms
//     the ring over the survivors (transport.Reform), swaps the engine onto
//     it (engine.Reconnect), and rewinds to the reconciled round checkpoint
//     (engine.RegroupRestore). Training continues at reduced width. Requires
//     -checkpoint — without a round checkpoint there is nothing consistent to
//     rewind to.
//
//   - Rejoin: a restarted rank (relaunched by the spawn supervisor with
//     -rejoin after a kill-fault death) announces itself through a request
//     file in the group's socket directory. At every round boundary of a
//     shrunken group the current rank 0 polls for requests and broadcasts a
//     membership command to the group ("member/cmd"), so all survivors agree
//     on the SAME boundary; rank 0 then writes a go-file carrying the new
//     view and member list, everyone (rejoiner included) re-forms the
//     full-width ring, and engine.Reconnect(g, true) re-broadcasts
//     parameters, optimizer state, and step counters from the current rank 0.
//     The rejoiner builds its engine on the in-process loopback first — the
//     resync IS its initialization — so the collective sequence is identical
//     on every rank.
//
// File signaling needs unix: addresses (the spawn runner's default); over
// tcp: the run still survives shrinks but restarted ranks cannot rejoin.

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/transport"
)

// killExitCode is how a rank killed by a fault plan announces "I was
// murdered on purpose" to the spawn supervisor — distinguishable from a
// genuine crash, and the trigger for a -supervise restart.
const killExitCode = 3

// Membership commands broadcast at round boundaries of a shrunken group.
const (
	cmdNone   = 0
	cmdRejoin = 1
)

// elastic reports whether this run knows the full ring membership and can
// survive rank failures (multi-process ring runs only).
func (tr *transportConfig) elastic() bool { return len(tr.addrs) >= 2 }

// rejoinDir returns the directory used for rejoin signaling files, derived
// from the group's first address ("" when the group is not unix-socketed).
func rejoinDir(addrs []string) string {
	if p, ok := strings.CutPrefix(addrs[0], "unix:"); ok {
		return filepath.Dir(p)
	}
	return ""
}

// deadRanks lists the original ranks currently missing from the group.
func deadRanks(tr *transportConfig) []int {
	in := make(map[int]bool, len(tr.alive))
	for _, a := range tr.alive {
		in[a] = true
	}
	var out []int
	for r := range tr.addrs {
		if !in[r] {
			out = append(out, r)
		}
	}
	return out
}

// surviveFailure regroups after an attributed rank failure: reform the ring
// over the survivors, reconnect the engine, and rewind to the reconciled
// checkpoint. Returns the step training resumes from.
func surviveFailure(eng *engine.Engine, tr *transportConfig, ft faultConfig, rf *transport.RankFailure) (int, error) {
	if !ft.checkpoint {
		return 0, fmt.Errorf("rank failure without -checkpoint: no round checkpoint to rewind the survivors to (%v)", rf)
	}
	if rf.Rank < 0 || rf.Rank >= len(tr.alive) {
		return 0, fmt.Errorf("rank failure without an attributable rank: %v", rf)
	}
	dead := tr.alive[rf.Rank] // rf names a rank of the CURRENT group
	fmt.Printf("membership: rank %d failed: %v\n", dead, rf.Cause)
	alive := make([]int, 0, len(tr.alive)-1)
	for _, a := range tr.alive {
		if a != dead {
			alive = append(alive, a)
		}
	}
	if len(alive) < 2 {
		return 0, fmt.Errorf("only %d rank(s) left after rank %d failed: below the 2-rank ring minimum", len(alive), dead)
	}
	view := tr.view + 1
	g, err := transport.Reform(tr.addrs, alive, tr.self, view, tr.opts)
	if err != nil {
		return 0, fmt.Errorf("reforming the survivor ring: %w", err)
	}
	// Close the failed group only now: with the survivor ring formed, every
	// survivor has observed the failure and no one is mid-write into it.
	old := tr.group
	tr.group, tr.alive, tr.view = g, alive, view
	old.Close()
	if err := eng.Reconnect(g, false); err != nil {
		return 0, err
	}
	step, err := eng.RegroupRestore()
	if err != nil {
		return 0, err
	}
	fmt.Printf("membership: regrouped to W=%d (view %d), resuming at step %d\n", len(alive), view, step)
	return step, nil
}

// memberSync is the per-round membership exchange of a shrunken group: the
// current rank 0 polls for rejoin requests and broadcasts its decision, so
// every survivor admits the returning rank at the same round boundary. A
// full-width group skips the exchange entirely.
func memberSync(eng *engine.Engine, tr *transportConfig) error {
	if tr.group == nil || !tr.elastic() || len(tr.alive) == len(tr.addrs) {
		return nil
	}
	dir := rejoinDir(tr.addrs)
	buf := make([]float64, 2) // [command, rejoining rank]
	if tr.group.Rank() == 0 && dir != "" {
		for _, d := range deadRanks(tr) {
			if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("rejoin.%d", d))); err == nil {
				buf[0], buf[1] = cmdRejoin, float64(d)
				break
			}
		}
	}
	if _, err := tr.group.Broadcast("member/cmd", 0, buf); err != nil {
		return err
	}
	if int(buf[0]) != cmdRejoin {
		return nil
	}
	d := int(buf[1])
	alive := make([]int, 0, len(tr.alive)+1)
	for _, a := range tr.alive {
		if a < d {
			alive = append(alive, a)
		}
	}
	alive = append(alive, d)
	for _, a := range tr.alive {
		if a > d {
			alive = append(alive, a)
		}
	}
	view := tr.view + 1
	if tr.group.Rank() == 0 && dir != "" {
		os.Remove(filepath.Join(dir, fmt.Sprintf("rejoin.%d", d)))
		body := fmt.Sprintf("%d;%s", view, joinInts(alive))
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("rejoin-go.%d", d)), []byte(body), 0o644); err != nil {
			return fmt.Errorf("writing rejoin go-file: %w", err)
		}
	}
	g, err := transport.Reform(tr.addrs, alive, tr.self, view, tr.opts)
	if err != nil {
		return fmt.Errorf("reforming the full ring for rejoin: %w", err)
	}
	old := tr.group
	tr.group, tr.alive, tr.view = g, alive, view
	old.Close()
	if err := eng.Reconnect(g, true); err != nil {
		return err
	}
	fmt.Printf("membership: rank %d rejoined, W=%d (view %d)\n", d, len(alive), view)
	return nil
}

// rejoinHandshake is the restarted rank's side of the rejoin protocol: drop
// a request file, wait for the group's go-file naming the view and member
// list, dial the full ring with everyone, and resync training state over
// it. Returns the step training resumes from.
func rejoinHandshake(eng *engine.Engine, tr *transportConfig) (int, error) {
	dir := rejoinDir(tr.addrs)
	if dir == "" {
		return 0, fmt.Errorf("-rejoin needs unix: group addresses for file signaling")
	}
	req := filepath.Join(dir, fmt.Sprintf("rejoin.%d", tr.self))
	goFile := filepath.Join(dir, fmt.Sprintf("rejoin-go.%d", tr.self))
	os.Remove(goFile)
	if err := os.WriteFile(req, []byte("rejoin\n"), 0o644); err != nil {
		return 0, fmt.Errorf("writing rejoin request: %w", err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	var body []byte
	for {
		var err error
		if body, err = os.ReadFile(goFile); err == nil {
			break
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("no rejoin go-ahead within 2m (is the group still running with a free slot?)")
		}
		time.Sleep(50 * time.Millisecond)
	}
	os.Remove(goFile)
	view, alive, err := parseGoFile(string(body))
	if err != nil {
		return 0, err
	}
	g, err := transport.Reform(tr.addrs, alive, tr.self, view, tr.opts)
	if err != nil {
		return 0, fmt.Errorf("dialing the full ring for rejoin: %w", err)
	}
	tr.group, tr.alive, tr.view = g, alive, view
	if err := eng.Reconnect(g, true); err != nil {
		return 0, err
	}
	step := eng.StepsDone()
	fmt.Printf("membership: rejoined as rank %d of %d (view %d), resuming at step %d\n",
		g.Rank(), g.Size(), view, step)
	return step, nil
}

// joinInts renders ranks as "0,1,2".
func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}

// parseGoFile parses "view;rank,rank,...".
func parseGoFile(s string) (int64, []int, error) {
	s = strings.TrimSpace(s)
	vs, rs, ok := strings.Cut(s, ";")
	if !ok {
		return 0, nil, fmt.Errorf("malformed rejoin go-file %q", s)
	}
	view, err := strconv.ParseInt(vs, 10, 64)
	if err != nil {
		return 0, nil, fmt.Errorf("malformed rejoin view in %q", s)
	}
	var alive []int
	for _, f := range strings.Split(rs, ",") {
		r, err := strconv.Atoi(f)
		if err != nil {
			return 0, nil, fmt.Errorf("malformed rejoin member list in %q", s)
		}
		alive = append(alive, r)
	}
	return view, alive, nil
}
