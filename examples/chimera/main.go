// Chimera example: the Figure 4 experiment — BERT-Large on a bidirectional
// Chimera pipeline with 8 stages, with PipeFisher's K-FAC work assignment
// combined with data AND inversion parallelism (§3.2). Each stage lives on
// two devices (one per pipeline direction); curvature is computed where the
// data lives, inversion work is split across the pair, and sync-curvature
// collectives run inside bubbles too.
//
// It then executes a Chimera schedule for real: a tiny BERT trains through
// the schedule-driven engine with both pipeline directions sharing each
// stage's parameters, K-FAC work running in the bubbles, and the executed
// timeline rendered below the simulated ones.
//
// Run: go run ./examples/chimera
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/arch"
	"repro/internal/bert"
	"repro/internal/data"
	"repro/internal/engine"
	"repro/internal/hardware"
	"repro/internal/kfac"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/pipeline"
	"repro/internal/schedule"
	"repro/internal/trace"
)

func main() {
	costs, err := pipeline.CostsFor(pipeline.CostConfig{
		Arch:              arch.BERTLarge,
		BlocksPerStage:    3, // 24 blocks over 8 stages
		MicroBatch:        32,
		GPU:               hardware.P100,
		DataParallelWidth: 2, // sizes the sync-grad / sync-curvature collectives
	})
	if err != nil {
		log.Fatal(err)
	}

	// Without inversion parallelism: one device of each pair inverts all
	// of the stage's Kronecker factors.
	solo, err := schedule.Assign(schedule.Config{
		Method: "chimera", Stages: 8, MicroBatches: 8, Costs: costs,
	})
	if err != nil {
		log.Fatal(err)
	}
	// With it: factors split across the pair, amortizing the largest
	// non-GEMM work (Figure 4 bottom).
	pair, err := schedule.Assign(schedule.Config{
		Method: "chimera", Stages: 8, MicroBatches: 8, Costs: costs,
		InversionParallel: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := trace.RenderASCII(os.Stdout, pair.VanillaTimeline, 110); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := trace.RenderASCII(os.Stdout, pair.Timeline, 110); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	fmt.Printf("Chimera (vanilla):                    util %.1f%%, step %.1f ms\n",
		100*pair.VanillaUtilization, float64(pair.VanillaStepTime)/1000)
	fmt.Printf("w/ PipeFisher:                        util %.1f%%, step %.1f ms, refresh %d step(s)\n",
		100*solo.Utilization, float64(solo.StepTime)/1000, solo.RefreshSteps)
	fmt.Printf("w/ PipeFisher + inversion parallel:   util %.1f%%, step %.1f ms, refresh %d step(s)\n",
		100*pair.Utilization, float64(pair.StepTime)/1000, pair.RefreshSteps)
	fmt.Println("\npaper (Figure 4): utilization 59.8% -> 97.6%, refresh 2-4 steps")
	fmt.Println(trace.Summarize(pair.Timeline))

	// Real execution: the same schedule family actually training a model.
	fmt.Println("--- real Chimera execution (tiny BERT, 2 stages, K-FAC in bubbles) ---")
	model, err := bert.New(bert.TinyConfig(), 7)
	if err != nil {
		log.Fatal(err)
	}
	corpus, err := data.NewCorpus(bert.TinyConfig().VocabSize, 1.0, 11)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := engine.NewWithConfig(model, engine.Config{Method: "chimera", Stages: 2, MicroBatches: 4})
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.EnableKFAC(kfac.Options{Damping: 1e-2, StatDecay: 0.95, UsePiDamping: true}, 2); err != nil {
		log.Fatal(err)
	}
	params := model.Params()
	opt := optim.NewLAMB(params, 0.01)
	for step := 0; step < 21; step++ {
		batch := corpus.MakeBatch(16, data.DefaultBatchConfig(model.Config.SeqLen))
		nn.ZeroGrads(params)
		res, err := eng.TrainStep(batch)
		if err != nil {
			log.Fatal(err)
		}
		opt.Step(3e-3)
		if step%5 == 0 {
			fmt.Printf("step %2d  loss %.4f  refreshed=%v\n", step, res.Loss.Total, res.Refreshed)
		}
	}
	fmt.Println()
	if err := trace.RenderASCII(os.Stdout, eng.LastTimeline(), 110); err != nil {
		log.Fatal(err)
	}
}
