// Perfsweep example: the Figure 6 scaling study. For BERT-Base blocks on
// Chimera, sweep the micro-batch size, pipeline depth, micro-batch count
// and hardware, and print how the (curvature+inversion)/bubble ratio — the
// number of pipeline steps PipeFisher needs per curvature refresh — moves
// with each axis, plus the throughput advantage over naive K-FAC with
// update skipping.
//
// Run: go run ./examples/perfsweep
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/hardware"
	"repro/internal/perfmodel"
)

func main() {
	fmt.Println("BERT-Base on Chimera: (curv+inv)/bubble ratio by micro-batch size")
	fmt.Println("(paper Figure 6: ratio falls with B_micro and D, rises with N_micro)")
	fmt.Println()

	for _, gpu := range hardware.All() {
		fmt.Printf("--- %s ---\n", gpu.Name)
		fmt.Printf("%-22s", "config \\ B_micro")
		bmicros := []int{1, 2, 4, 8, 16, 32, 64}
		for _, b := range bmicros {
			fmt.Printf("%8d", b)
		}
		fmt.Println()
		for _, d := range []int{4, 8, 16, 32} {
			for _, factor := range []int{1, 3} {
				fmt.Printf("D=%-3d N_micro=%-4d ratio", d, factor*d)
				for _, b := range bmicros {
					m, err := perfmodel.Evaluate(perfmodel.Input{
						Arch: arch.BERTBase, GPU: gpu, Method: perfmodel.Chimera,
						D: d, NMicro: factor * d, BMicro: b,
					})
					if err != nil {
						log.Fatal(err)
					}
					fmt.Printf("%8.2f", m.Ratio)
				}
				fmt.Println()
			}
		}
		// Speedup vs K-FAC+skip at N_micro = D (the favourable regime).
		fmt.Printf("%-22s", "speedup vs skip (N=D)")
		for _, b := range bmicros {
			m, err := perfmodel.Evaluate(perfmodel.Input{
				Arch: arch.BERTBase, GPU: gpu, Method: perfmodel.Chimera,
				D: 8, NMicro: 8, BMicro: b,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%7.2fx", m.SpeedupVsSkip())
		}
		fmt.Println()
		fmt.Println()
	}
}
