// Extrawork example: §5 of the paper suggests the "filling bubbles" idea
// generalizes beyond K-FAC. This example fills the same GPipe bubbles with
// three different kinds of extra work and compares what fits:
//
//   - K-FAC (the paper's PipeFisher): curvature + Cholesky inversions.
//   - Shampoo: same Kronecker-factor shapes, but eigendecompositions that
//     cost an order of magnitude more — the packer splits each one across
//     several bubbles, as §5 prescribes.
//   - SAM: a full second forward/backward pass per micro-batch for
//     sharpness estimation — potentially double the work of SGD.
//
// Run: go run ./examples/extrawork
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/hardware"
	"repro/internal/pipeline"
	"repro/internal/schedule"
)

func main() {
	costs, err := pipeline.CostsFor(pipeline.CostConfig{
		Arch: arch.BERTBase, BlocksPerStage: 3, MicroBatch: 32, GPU: hardware.P100,
	})
	if err != nil {
		log.Fatal(err)
	}
	base := schedule.Config{Method: "gpipe", Stages: 4, MicroBatches: 4, Costs: costs}

	kfac, err := schedule.Assign(base)
	if err != nil {
		log.Fatal(err)
	}
	shampoo, err := schedule.AssignShampoo(base)
	if err != nil {
		log.Fatal(err)
	}
	sam, err := schedule.AssignSAM(base)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("GPipe, BERT-Base, 4 stages x 3 blocks, N=4, B=32, P100\n")
	fmt.Printf("vanilla utilization: %.1f%%\n\n", 100*kfac.VanillaUtilization)
	fmt.Printf("%-28s %12s %16s\n", "extra work", "utilization", "refresh/hidden")
	fmt.Printf("%-28s %11.1f%% %13d steps\n", "K-FAC (PipeFisher)", 100*kfac.Utilization, kfac.RefreshSteps)
	fmt.Printf("%-28s %11.1f%% %13d steps\n",
		fmt.Sprintf("Shampoo (eigen %dx)", schedule.ShampooEigenCostFactor),
		100*shampoo.Utilization, shampoo.RefreshSteps)
	fmt.Printf("%-28s %11.1f%% %14.0f%% hidden\n", "SAM (2nd fwd+bwd pass)", 100*sam.Utilization, 100*sam.HiddenFraction)

	fmt.Println("\nShampoo refreshes less often (eigendecompositions are bigger work),")
	fmt.Println("SAM hides part of its doubled compute in the bubbles — both exactly")
	fmt.Println("the trade-offs §5 predicts.")
}
