// BERT pretraining example: the Figure 7 convergence comparison at laptop
// scale. A tiny BERT (2 blocks, d_model 32) pretrains on a synthetic
// Zipf-distributed corpus with the paper's joint masked-LM +
// next-sentence-prediction objective, once with NVLAMB and once with
// K-FAC-preconditioned NVLAMB using PipeFisher's refresh cadence (curvature
// and inverses every 2 steps, precondition every step).
//
// Run: go run ./examples/bertpretrain
package main

import (
	"fmt"
	"log"

	"repro/internal/bert"
	"repro/internal/data"
)

func main() {
	// 300 steps gives the loss curves room to separate before the
	// synthetic task's entropy floor; the steps-to-target fraction then
	// lands near the paper's 42-49% regime.
	const (
		steps = 300
		batch = 16
	)
	nv := pretrain(bert.OptNVLAMB, steps, batch)
	kf := pretrain(bert.OptKFAC, steps, batch)

	fmt.Println("step   NVLAMB   K-FAC")
	for t := 0; t < steps; t += 20 {
		fmt.Printf("%4d   %.4f   %.4f\n", t, nv.Losses[t], kf.Losses[t])
	}
	fmt.Printf("\nNVLAMB final loss %.4f; K-FAC final loss %.4f\n", nv.FinalLoss, kf.FinalLoss)
	if at := kf.StepsToReach(nv.FinalLoss); at >= 0 {
		fmt.Printf("K-FAC reaches NVLAMB's final loss at step %d of %d (%.1f%%; paper: 42.0%%)\n",
			at, steps, 100*float64(at)/steps)
	}
	fmt.Printf("K-FAC refreshed curvature %dx and inverses %dx (PipeFisher cadence: every few steps)\n",
		kf.CurvatureRefreshes, kf.InverseRefreshes)
}

func pretrain(kind bert.OptimizerKind, steps, batch int) *bert.TrainResult {
	model, err := bert.New(bert.TinyConfig(), 100)
	if err != nil {
		log.Fatal(err)
	}
	corpus, err := data.NewCorpus(bert.TinyConfig().VocabSize, 1.0, 200)
	if err != nil {
		log.Fatal(err)
	}
	res, err := bert.Pretrain(model, corpus, bert.TrainConfig{
		Optimizer: kind, Steps: steps, BatchSize: batch,
		CurvatureEvery: 2, InversionEvery: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}
