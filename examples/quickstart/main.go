// Quickstart: fill GPipe's pipeline bubbles with K-FAC work.
//
// This example walks the core PipeFisher flow end to end in ~40 lines:
// model the per-stage costs of a BERT-Base pipeline stage, run the paper's
// automatic work assignment, and inspect how much of the idle bubble time
// now performs second-order-optimizer work.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/arch"
	"repro/internal/hardware"
	"repro/internal/pipeline"
	"repro/internal/schedule"
	"repro/internal/trace"
)

func main() {
	// 1. Model the work durations of one pipeline stage: 3 BERT-Base
	//    blocks per stage, micro-batches of 32 sequences, on a P100 —
	//    the exact Figure 3 configuration.
	costs, err := pipeline.CostsFor(pipeline.CostConfig{
		Arch:           arch.BERTBase,
		BlocksPerStage: 3,
		MicroBatch:     32,
		GPU:            hardware.P100,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Run PipeFisher's automatic work assignment on a 4-stage GPipe
	//    schedule with 4 micro-batches per step.
	res, err := schedule.Assign(schedule.Config{
		Method:       "gpipe",
		Stages:       4,
		MicroBatches: 4,
		Costs:        costs,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Render both timelines: vanilla GPipe (top) and GPipe with the
	//    K-FAC work packed into the bubbles (bottom).
	if err := trace.RenderASCII(os.Stdout, res.VanillaTimeline, 110); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := trace.RenderASCII(os.Stdout, res.Timeline, 110); err != nil {
		log.Fatal(err)
	}

	// 4. The headline numbers of Figure 3.
	fmt.Println()
	fmt.Printf("utilization %.1f%% -> %.1f%% | refresh every %d step(s) | step overhead +%.1f%%\n",
		100*res.VanillaUtilization, 100*res.Utilization, res.RefreshSteps,
		100*float64(res.StepTime-res.VanillaStepTime)/float64(res.VanillaStepTime))
}
