// Pipelinetrain example: real pipeline-parallel training through the
// schedule-driven executor. Unlike the simulator-based examples (which
// model *time*), this one executes the *math* of PipeFisher end to end: a
// tiny BERT is partitioned into pipeline stages, each device goroutine
// walks its op list from the shared executable schedule, micro-batch
// activations flow along the schedule's dependency edges, backward uses
// activation recomputation, and the K-FAC curvature/inversion work runs in
// the very bubble slots the PipeFisher packer assigned (§3.1), with
// per-stage factors (§3(i)) and factor-granular inversion (§3(ii)).
//
// With -refresh-steps K > 1 the engine executes the paper's multi-step
// refresh windows for real: one K-FAC refresh spreads over the bubbles of
// K consecutive steps (one executable round), the optimizer fires at the
// round-internal step barriers, and each step preconditions with the
// freshest inverses completed by that step. -refresh-steps 0 sizes the
// window adaptively from the measured refresh work (the default stays at
// K = 2 so the loss trace is comparable across schedule methods), and
// -overlap lets consecutive windows overlap: refresh work that spills out
// of its window carries into the next round's bubbles as generation-lagged
// ops.
//
// After training it renders the *executed* timeline of the last round next
// to a *simulated* timeline calibrated with the measured op durations —
// the sim/exec comparison the shared schedule form makes possible — plus
// the round's bubble-utilization summary.
//
// Run: go run ./examples/pipelinetrain [-method gpipe|1f1b|chimera] [-refresh-steps K] [-overlap]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/autotune"
	"repro/internal/bert"
	"repro/internal/data"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/kfac"
	"repro/internal/optim"
	"repro/internal/pipeline"
	"repro/internal/schedule"
	"repro/internal/tensor"
	"repro/internal/trace"
)

func main() {
	method := flag.String("method", "1f1b", "pipeline schedule: gpipe, 1f1b, chimera")
	workers := flag.Int("workers", 0, "intra-op kernel worker budget (0 = GOMAXPROCS); device goroutines share it")
	replicas := flag.Int("replicas", 1, "data-parallel width W (replicated stage parameters, in-process sync collectives)")
	refreshSteps := flag.Int("refresh-steps", 2, "round length K: one K-FAC refresh spreads over the bubbles of K consecutive steps (0 = adaptive: derive K from the measured refresh work)")
	overlap := flag.Bool("overlap", false, "overlap consecutive refresh windows: spilled refresh work carries into the next round's bubbles as generation-lagged ops")
	kernelName := flag.String("kernel", "", "matmul kernel variant: scalar, tiled, or fma (default: best available)")
	f32 := flag.Bool("f32", false, "float32 compute mode: packed matmul panels and K-FAC statistics snapshots narrow to float32 (inverses and optimizer state stay float64)")
	faultSpec := flag.String("faults", "", "deterministic fault plan, e.g. 'fail:step=2,op=curvature;stall:op=forward,delay=5ms,count=1' (kinds: fail, stall, drop, corrupt)")
	opTimeout := flag.Duration("op-timeout", 0, "watchdog deadline per op; 0 disables the watchdog")
	opRetries := flag.Int("op-retries", 0, "retry budget for failed side-path ops (curvature, inversion, sync-curvature) before degrading")
	retryBackoff := flag.Duration("retry-backoff", 2*time.Millisecond, "base backoff between retries (doubles per attempt)")
	checkpoint := flag.Bool("checkpoint", false, "round checkpoint/replay: snapshot state at every round start and replay aborted rounds (up to 3 attempts)")
	autotuneOn := flag.Bool("autotune", false, "closed-loop tuning: refit packing costs from the executed rounds, re-rank the schedule candidate space, and hot-swap the engine at round boundaries")
	tuneInterval := flag.Int("autotune-interval", 4, "rounds between tuner decisions with -autotune (observation continues every round)")
	flag.Parse()
	if *workers < 0 {
		*workers = 0 // negative means "default", like 0
	}
	if *replicas < 1 {
		*replicas = 1
	}
	if *refreshSteps < 0 {
		*refreshSteps = 0 // negative means "adaptive", like 0
	}
	adaptive := *refreshSteps == 0
	tensor.SetParallelism(*workers)
	if *kernelName != "" {
		k, err := tensor.ParseKernel(*kernelName)
		if err != nil {
			log.Fatal(err)
		}
		if err := tensor.SetKernel(k); err != nil {
			log.Fatal(err)
		}
	}
	tensor.SetF32(*f32)

	model, err := bert.New(bert.TinyConfig(), 7)
	if err != nil {
		log.Fatal(err)
	}
	corpus, err := data.NewCorpus(bert.TinyConfig().VocabSize, 1.0, 11)
	if err != nil {
		log.Fatal(err)
	}
	// 2 stages (1 transformer block each), 4 micro-batches per replica per
	// step; W > 1 replicates the stages and all-reduces gradients (and
	// K-FAC inversion work shards round-robin across the replica group).
	engRefresh := *refreshSteps
	if adaptive {
		engRefresh = engine.AdaptiveRefreshSteps
	}
	var plan *faults.Plan
	if *faultSpec != "" {
		plan, err = faults.Parse(*faultSpec)
		if err != nil {
			log.Fatal(err)
		}
	}
	eng, err := engine.NewWithConfig(model, engine.Config{
		Method: *method, Stages: 2, MicroBatches: 4,
		Replicas: *replicas, InversionParallel: *replicas > 1, Workers: *workers,
		RefreshSteps: engRefresh, OverlapRounds: *overlap,
		FaultPlan: plan, OpTimeout: *opTimeout,
		OpRetries: *opRetries, RetryBackoff: *retryBackoff,
		Checkpoint: *checkpoint,
	})
	if err != nil {
		log.Fatal(err)
	}
	// PipeFisher cadence: curvature+inverse ops execute in the bubbles of
	// each refresh window; preconditioning runs every step with the cached
	// inverses. Explicit one-step rounds keep the classic skip-based
	// every-2-steps interval; multi-step (or adaptive) windows ARE the
	// cadence (refreshEvery 0 = every round).
	every := 0
	if *refreshSteps == 1 {
		every = 2
	}
	if err := eng.EnableKFAC(kfac.Options{Damping: 1e-2, StatDecay: 0.95, UsePiDamping: true}, every); err != nil {
		log.Fatal(err)
	}
	k := eng.RoundSteps()
	kDesc := fmt.Sprintf("K=%d", k)
	if adaptive {
		kDesc = fmt.Sprintf("K=%d (adaptive, from measured refresh work)", k)
	}
	fmt.Printf("pipelinetrain: %s schedule, %d replica(s), refresh round %s, overlap=%v, %d intra-op workers, kernel %s, f32=%v\n",
		*method, *replicas, kDesc, *overlap, tensor.Parallelism(), tensor.ActiveKernel(), tensor.F32())
	if plan != nil || *opTimeout > 0 || *opRetries > 0 || *checkpoint {
		fmt.Printf("fault tolerance: plan=%v op-timeout=%v op-retries=%d checkpoint=%v\n",
			plan, *opTimeout, *opRetries, *checkpoint)
	}
	var tn *autotune.Tuner
	var startCand schedule.Candidate
	if *autotuneOn {
		tn, err = autotune.New(eng, autotune.Config{Interval: *tuneInterval})
		if err != nil {
			log.Fatal(err)
		}
		startCand = tn.CurrentCandidate()
		fmt.Printf("autotune: on, starting from %s (decision every %d rounds)\n", startCand, *tuneInterval)
	}

	params := model.Params()
	opt := optim.NewLAMB(params, 0.01)
	lrs := optim.PolyDecaySchedule{BaseLR: 5e-3, WarmupSteps: 8, TotalSteps: 100, Power: 0.5}
	// The engine owns the per-step optimizer firing: inside a round the
	// update runs at the step barrier, between the round's steps.
	eng.SetOptimizer(func(step int) error {
		opt.Step(lrs.LR(step))
		return nil
	})
	if *checkpoint {
		eng.AttachOptimizerState(opt)
	}

	const steps = 100
	for start := 0; start < steps; {
		// A tuner swap can change the round length between rounds, so the
		// batch shape is re-derived from the engine every iteration.
		k = eng.RoundSteps()
		batches := make([]*data.Batch, k)
		for j := range batches {
			batches[j] = corpus.MakeBatch(8**replicas, data.DefaultBatchConfig(model.Config.SeqLen))
		}
		res, err := eng.TrainRound(batches)
		// Restore-and-replay: an aborted round rewinds to its start
		// checkpoint and re-runs the same batches. Count-limited faults stay
		// consumed across the rewind, so a transient fault's replay goes
		// through; a persistent one exhausts the attempts and dies.
		for attempt := 1; err != nil && *checkpoint && attempt <= 3; attempt++ {
			fmt.Printf("round aborted: %v\n  restoring checkpoint and replaying (attempt %d/3)\n", err, attempt)
			if _, rerr := eng.RestoreCheckpoint(); rerr != nil {
				log.Fatal(rerr)
			}
			res, err = eng.TrainRound(batches)
		}
		if err != nil {
			log.Fatal(err)
		}
		for j, r := range res {
			step := start + j
			if r.Degraded && j == 0 {
				fmt.Printf("step %3d  DEGRADED refresh round (%s): serving stale/absent inverses\n", step, r.DegradedReason)
			}
			if step%10 == 0 {
				fmt.Printf("step %3d  loss %.4f (MLM %.4f, NSP %.4f)  refreshed=%v  device busy: %.0f / %.0f ms\n",
					step, r.Loss.Total, r.Loss.Components["mlm"], r.Loss.Components["nsp"],
					r.Refreshed, r.DeviceBusy[0]*1000, r.DeviceBusy[1]*1000)
			}
		}
		start += k
		if tn != nil {
			d, derr := tn.Observe()
			if derr != nil {
				// A failed swap leaves the engine on its current schedule;
				// report it and train on.
				fmt.Printf("autotune: %v\n", derr)
			}
			if d != nil && d.Swapped {
				fmt.Printf("autotune round %d: %s -> %s (predicted %d -> %d us/step): %s\n",
					d.Round, d.Current, d.Choice, d.CurrentStep, d.ChoiceStep, d.Reason)
			}
		}
	}
	if tn != nil {
		fmt.Println()
		if err := trace.RenderTuneLog(os.Stdout, tn.Records()); err != nil {
			log.Fatal(err)
		}
		final := tn.CurrentCandidate()
		if final == startCand {
			fmt.Printf("autotune: held starting configuration %s\n", startCand)
		} else {
			fmt.Printf("autotune: final choice %s beats starting configuration %s\n", final, startCand)
		}
	}
	heldOut := corpus.MakeBatch(64, data.DefaultBatchConfig(model.Config.SeqLen))
	eval, err := model.Evaluate(heldOut)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nheld-out: loss %.4f, MLM accuracy %.1f%%, perplexity %.1f, NSP accuracy %.1f%%\n\n",
		eval.Loss.Total, 100*eval.MLMAccuracy, eval.MLMPerplexity, 100*eval.NSPAccuracy)

	// Real-vs-simulated: the executed timeline of the last round (its K
	// steps separated by the ruler's boundary markers), then the same
	// round simulated with the measured op durations.
	real := eng.LastTimeline()
	if err := trace.RenderASCII(os.Stdout, real, 110); err != nil {
		log.Fatal(err)
	}
	// Bubble-utilization accounting of the executed round: how much of the
	// bubble budget the refresh work actually absorbed (the refresh-filled
	// fraction rises when -overlap carries spilled work into the round).
	if err := trace.RenderBubbleSummary(os.Stdout, real); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	costs := engine.MeasuredCosts(real, 2*len(eng.StageLayers(0)))
	// The simulated side mirrors the engine's *final* configuration — with
	// -autotune that can differ from the flags the run started with.
	simSched, err := schedule.Executable(schedule.Config{
		Method: eng.Method(), Stages: 2, MicroBatches: 4, Costs: costs,
		DataParallelWidth: *replicas, InversionParallel: eng.InversionParallel(),
		RefreshSteps: eng.RoundSteps(), Overlap: eng.Overlapped(), CarryDepth: eng.CarryDepth(),
	})
	if err != nil {
		log.Fatal(err)
	}
	sim, err := pipeline.Run(simSched)
	if err != nil {
		log.Fatal(err)
	}
	sim.Name = simSched.Name + " (simulated, measured costs)"
	if err := trace.RenderASCII(os.Stdout, sim, 110); err != nil {
		log.Fatal(err)
	}
	if *replicas > 1 {
		// Real vs simulated collective costs, side by side: the executed
		// timeline's measured sync times against the simulated schedule
		// built from them.
		rs, ss := trace.Summarize(real), trace.Summarize(sim)
		fmt.Printf("\ncollectives (total device-time): sync-grad %.2f ms executed vs %.2f ms simulated, sync-curvature %.2f ms vs %.2f ms\n",
			float64(rs.PerKind[pipeline.SyncGrad])/1000, float64(ss.PerKind[pipeline.SyncGrad])/1000,
			float64(rs.PerKind[pipeline.SyncCurvature])/1000, float64(ss.PerKind[pipeline.SyncCurvature])/1000)
	}
}
