// Pipelinetrain example: real pipeline-parallel training. Unlike the
// simulator-based examples (which model *time*), this one executes the
// *math* of PipeFisher end to end: a tiny BERT is partitioned into two
// pipeline stages that run as concurrent workers, micro-batch activations
// flow through channels, backward uses activation recomputation, each
// stage keeps K-FAC factors only for its own layers, and inversion work
// runs stage-parallel — the layout of §3 (advantages (i) and (ii)).
//
// Run: go run ./examples/pipelinetrain
package main

import (
	"fmt"
	"log"

	"repro/internal/bert"
	"repro/internal/data"
	"repro/internal/engine"
	"repro/internal/kfac"
	"repro/internal/nn"
	"repro/internal/optim"
)

func main() {
	model, err := bert.New(bert.TinyConfig(), 7)
	if err != nil {
		log.Fatal(err)
	}
	corpus, err := data.NewCorpus(bert.TinyConfig().VocabSize, 1.0, 11)
	if err != nil {
		log.Fatal(err)
	}
	// 2 stages (1 transformer block each), 4 micro-batches per step.
	eng, err := engine.New(model, 2, 4)
	if err != nil {
		log.Fatal(err)
	}
	eng.EnableKFAC(kfac.Options{Damping: 1e-2, StatDecay: 0.95, UsePiDamping: true})

	params := model.Params()
	opt := optim.NewLAMB(params, 0.01)
	sched := optim.PolyDecaySchedule{BaseLR: 5e-3, WarmupSteps: 8, TotalSteps: 100, Power: 0.5}

	const steps = 100
	for step := 0; step < steps; step++ {
		batch := corpus.MakeBatch(16, data.DefaultBatchConfig(model.Config.SeqLen))
		nn.ZeroGrads(params)
		res, err := eng.TrainStep(batch)
		if err != nil {
			log.Fatal(err)
		}
		// PipeFisher cadence: refresh curvature+inverses every 2 steps
		// (stage-parallel), precondition every step.
		if step%2 == 0 {
			if err := eng.KFACRefresh(float64(res.Loss.MaskedCount + batch.BatchSize)); err != nil {
				log.Fatal(err)
			}
		}
		eng.KFACPrecondition()
		opt.Step(sched.LR(step))
		if step%10 == 0 {
			fmt.Printf("step %3d  loss %.4f (MLM %.4f, NSP %.4f)  stage busy: %.0f ms / %.0f ms\n",
				step, res.Loss.Total, res.Loss.MLM, res.Loss.NSP,
				res.StageBusy[0]*1000, res.StageBusy[1]*1000)
		}
	}
	heldOut := corpus.MakeBatch(64, data.DefaultBatchConfig(model.Config.SeqLen))
	eval, err := model.Evaluate(heldOut)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nheld-out: loss %.4f, MLM accuracy %.1f%%, perplexity %.1f, NSP accuracy %.1f%%\n",
		eval.Loss.Total, 100*eval.MLMAccuracy, eval.MLMPerplexity, 100*eval.NSPAccuracy)
}
