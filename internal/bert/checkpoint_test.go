package bert

import (
	"bytes"
	"testing"

	"repro/internal/data"
)

func TestCheckpointRoundTrip(t *testing.T) {
	m := tinyModel(t, 50)
	// Train a few steps so the parameters are non-trivial.
	c := tinyCorpus(t, 51)
	if _, err := Pretrain(m, c, TrainConfig{Optimizer: OptNVLAMB, Steps: 5, BatchSize: 4}); err != nil {
		t.Fatal(err)
	}
	want := m.ParamsChecksum()

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Load into a fresh model with different initialization.
	fresh := tinyModel(t, 99)
	if fresh.ParamsChecksum() == want {
		t.Fatal("fresh model should differ before loading")
	}
	if err := fresh.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if got := fresh.ParamsChecksum(); got != want {
		t.Fatalf("checksum after load %g, want %g", got, want)
	}
	// The loaded model must produce identical losses.
	batch := tinyCorpus(t, 52).MakeBatch(4, data.DefaultBatchConfig(m.Config.SeqLen))
	l1, err := m.Step(batch)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := fresh.Step(batch)
	if err != nil {
		t.Fatal(err)
	}
	if l1.Total != l2.Total {
		t.Fatalf("loaded model loss %g != original %g", l2.Total, l1.Total)
	}
}

func TestCheckpointConfigMismatch(t *testing.T) {
	m := tinyModel(t, 60)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	cfg := TinyConfig()
	cfg.Blocks = 3
	other, err := New(cfg, 61)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Load(&buf); err == nil {
		t.Fatal("expected error loading into a differently-shaped model")
	}
}

func TestCheckpointGarbageInput(t *testing.T) {
	m := tinyModel(t, 70)
	if err := m.Load(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("expected error for garbage input")
	}
}

func TestLoadFailureLeavesModelIntact(t *testing.T) {
	m := tinyModel(t, 80)
	before := m.ParamsChecksum()
	if err := m.Load(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("expected decode error")
	}
	if m.ParamsChecksum() != before {
		t.Fatal("failed load must not modify the model")
	}
}
