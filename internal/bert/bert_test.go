package bert

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/nn"
)

func tinyModel(t *testing.T, seed uint64) *Model {
	t.Helper()
	m, err := New(TinyConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func tinyCorpus(t *testing.T, seed uint64) *data.Corpus {
	t.Helper()
	c, err := data.NewCorpus(TinyConfig().VocabSize, 1.0, seed)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{VocabSize: 2, DModel: 32, DFF: 64, Heads: 4, Blocks: 2, SeqLen: 16},
		{VocabSize: 96, DModel: 0, DFF: 64, Heads: 4, Blocks: 2, SeqLen: 16},
		{VocabSize: 96, DModel: 30, DFF: 64, Heads: 4, Blocks: 2, SeqLen: 16},
	}
	for i, cfg := range bad {
		if _, err := New(cfg, 1); err == nil {
			t.Fatalf("case %d: expected error for %+v", i, cfg)
		}
	}
}

func TestModelStructure(t *testing.T) {
	m := tinyModel(t, 1)
	if len(m.Blocks) != 2 {
		t.Fatalf("expected 2 blocks, got %d", len(m.Blocks))
	}
	// 6 K-FAC layers per block; heads excluded.
	layers := m.KFACLayers()
	if len(layers) != 12 {
		t.Fatalf("expected 12 K-FAC layers, got %d", len(layers))
	}
	for _, l := range layers {
		if l == m.MLMHead || l == m.NSPHead {
			t.Fatal("classification heads must be excluded from K-FAC (§4)")
		}
	}
	if nn.NumParameters(m.Params()) < 10000 {
		t.Fatalf("model suspiciously small: %d params", nn.NumParameters(m.Params()))
	}
}

func TestStepProducesFiniteLossAndGrads(t *testing.T) {
	m := tinyModel(t, 2)
	c := tinyCorpus(t, 3)
	batch := c.MakeBatch(4, data.DefaultBatchConfig(m.Config.SeqLen))
	nn.ZeroGrads(m.Params())
	loss, err := m.Step(batch)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(loss.Total) || loss.Total <= 0 {
		t.Fatalf("bad loss %v", loss)
	}
	// Initial MLM loss should be near log(vocab) for a random model.
	wantMLM := math.Log(float64(m.Config.VocabSize))
	if math.Abs(loss.MLM-wantMLM) > 1.0 {
		t.Fatalf("initial MLM loss %.3f far from log V = %.3f", loss.MLM, wantMLM)
	}
	// NSP loss near log 2.
	if math.Abs(loss.NSP-math.Ln2) > 0.5 {
		t.Fatalf("initial NSP loss %.3f far from ln 2", loss.NSP)
	}
	if gn := nn.GradNorm(m.Params()); gn <= 0 || math.IsNaN(gn) {
		t.Fatalf("bad grad norm %g", gn)
	}
}

func TestStepShapeValidation(t *testing.T) {
	m := tinyModel(t, 4)
	c, _ := data.NewCorpus(m.Config.VocabSize, 1.0, 5)
	batch := c.MakeBatch(2, data.DefaultBatchConfig(8)) // wrong seq len
	if _, err := m.Step(batch); err == nil {
		t.Fatal("expected error for mismatched sequence length")
	}
}

func TestPretrainLossDecreases(t *testing.T) {
	m := tinyModel(t, 6)
	c := tinyCorpus(t, 7)
	res, err := Pretrain(m, c, TrainConfig{Optimizer: OptNVLAMB, Steps: 60, BatchSize: 8, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Losses) != 60 {
		t.Fatalf("expected 60 losses, got %d", len(res.Losses))
	}
	first := mean(res.Losses[:10])
	last := mean(res.Losses[50:])
	if last >= first-0.3 {
		t.Fatalf("loss did not decrease: %.3f -> %.3f", first, last)
	}
}

func TestPretrainKFACRuns(t *testing.T) {
	m := tinyModel(t, 9)
	c := tinyCorpus(t, 10)
	res, err := Pretrain(m, c, TrainConfig{
		Optimizer: OptKFAC, Steps: 40, BatchSize: 8,
		CurvatureEvery: 2, InversionEvery: 4, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CurvatureRefreshes == 0 || res.InverseRefreshes == 0 {
		t.Fatalf("K-FAC work not performed: %d curvature, %d inverse",
			res.CurvatureRefreshes, res.InverseRefreshes)
	}
	// The refresh cadence must follow the configured interval.
	if res.CurvatureRefreshes != 20 {
		t.Fatalf("curvature refreshes %d, want 20 (every 2 of 40)", res.CurvatureRefreshes)
	}
	if math.IsNaN(res.FinalLoss) {
		t.Fatal("NaN final loss")
	}
	first := mean(res.Losses[:5])
	last := mean(res.Losses[35:])
	if last >= first {
		t.Fatalf("K-FAC loss did not decrease: %.3f -> %.3f", first, last)
	}
}

func TestStepsToReach(t *testing.T) {
	r := &TrainResult{Losses: []float64{5, 4, 3, 2, 1}}
	if got := r.StepsToReach(10); got != 0 {
		t.Fatalf("StepsToReach(10) = %d, want 0", got)
	}
	if got := r.StepsToReach(0.5); got != -1 {
		t.Fatalf("StepsToReach(0.5) = %d, want -1", got)
	}
	if got := r.StepsToReach(3.0); got <= 0 {
		t.Fatalf("StepsToReach(3.0) = %d, want positive", got)
	}
}

func TestUnknownOptimizer(t *testing.T) {
	m := tinyModel(t, 12)
	c := tinyCorpus(t, 13)
	if _, err := Pretrain(m, c, TrainConfig{Optimizer: "adamw", Steps: 2}); err == nil {
		t.Fatal("expected error for unknown optimizer")
	}
}

func TestDeterministicTraining(t *testing.T) {
	run := func() float64 {
		m := tinyModel(t, 20)
		c := tinyCorpus(t, 21)
		res, err := Pretrain(m, c, TrainConfig{Optimizer: OptNVLAMB, Steps: 10, BatchSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res.Losses[9]
	}
	if run() != run() {
		t.Fatal("training must be bit-deterministic for fixed seeds")
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
