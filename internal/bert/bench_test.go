package bert

import (
	"testing"

	"repro/internal/data"
	"repro/internal/nn"
)

func BenchmarkModelStep(b *testing.B) {
	m, err := New(TinyConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	c, err := data.NewCorpus(TinyConfig().VocabSize, 1.0, 2)
	if err != nil {
		b.Fatal(err)
	}
	batch := c.MakeBatch(16, data.DefaultBatchConfig(m.Config.SeqLen))
	params := m.Params()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.ZeroGrads(params)
		if _, err := m.Step(batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPretrainStepNVLAMBvsKFAC(b *testing.B) {
	for _, kind := range []OptimizerKind{OptNVLAMB, OptKFAC} {
		b.Run(string(kind), func(b *testing.B) {
			m, err := New(TinyConfig(), 1)
			if err != nil {
				b.Fatal(err)
			}
			c, err := data.NewCorpus(TinyConfig().VocabSize, 1.0, 2)
			if err != nil {
				b.Fatal(err)
			}
			steps := b.N
			if steps < 2 {
				steps = 2
			}
			b.ResetTimer()
			if _, err := Pretrain(m, c, TrainConfig{Optimizer: kind, Steps: steps, BatchSize: 8}); err != nil {
				b.Fatal(err)
			}
		})
	}
}
