// Package bert assembles a trainable BERT-style masked-language model from
// the nn substrate and provides the pretraining loop used to reproduce the
// paper's convergence comparison (Figure 7): NVLAMB versus K-FAC on the
// joint masked-LM + next-sentence-prediction objective.
//
// The model here is a faithful but scaled-down BERT: token + position
// embeddings, post-LN encoder blocks, an MLM head over the vocabulary and
// an NSP head over the [CLS] representation. K-FAC applies to every
// fully-connected layer inside the blocks and not to the final
// classification heads, exactly as §4 prescribes.
package bert

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Config sizes the model.
type Config struct {
	VocabSize int
	DModel    int
	DFF       int
	Heads     int
	Blocks    int
	SeqLen    int
}

// TinyConfig returns a laptop-scale configuration used by the convergence
// experiments and examples.
func TinyConfig() Config {
	return Config{VocabSize: 96, DModel: 32, DFF: 64, Heads: 4, Blocks: 2, SeqLen: 16}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.VocabSize <= data.FirstWordID {
		return fmt.Errorf("bert: vocab %d too small", c.VocabSize)
	}
	if c.DModel <= 0 || c.DFF <= 0 || c.Blocks <= 0 || c.SeqLen <= 0 {
		return fmt.Errorf("bert: non-positive dimension in %+v", c)
	}
	if c.Heads <= 0 || c.DModel%c.Heads != 0 {
		return fmt.Errorf("bert: DModel %d not divisible by Heads %d", c.DModel, c.Heads)
	}
	return nil
}

// Model is the trainable network.
type Model struct {
	Config Config

	TokEmb  *nn.Embedding
	PosEmb  *nn.Embedding
	EmbNorm *nn.LayerNorm
	Blocks  []*nn.TransformerBlock
	MLMHead *nn.Dense // d -> vocab; excluded from K-FAC (§4)
	NSPHead *nn.Dense // d -> 2 on [CLS]

	posIDs     []int // scratch: position ids for the current batch shape
	pipePosIDs []int // scratch for EmbedForward's micro-batch shape

	// Retained pipeline-adapter buffers (see pipeline.go): the summed
	// token+position embeddings and the gathered [CLS] rows are reused
	// across micro-batches instead of being freshly allocated.
	pipeEmbBuf *tensor.Matrix
	pipeClsBuf *tensor.Matrix
}

// New builds a model with the given configuration and seed.
func New(cfg Config, seed uint64) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(seed)
	m := &Model{
		Config:  cfg,
		TokEmb:  nn.NewEmbedding("tok_emb", cfg.VocabSize, cfg.DModel, rng),
		PosEmb:  nn.NewEmbedding("pos_emb", cfg.SeqLen, cfg.DModel, rng),
		EmbNorm: nn.NewLayerNorm("emb_norm", cfg.DModel),
		MLMHead: nn.NewDense("mlm_head", cfg.DModel, cfg.VocabSize, rng),
		NSPHead: nn.NewDense("nsp_head", cfg.DModel, 2, rng),
	}
	for b := 0; b < cfg.Blocks; b++ {
		m.Blocks = append(m.Blocks, nn.NewTransformerBlock(fmt.Sprintf("block%d", b), cfg.DModel, cfg.DFF, cfg.Heads, rng))
	}
	return m, nil
}

// Params returns all trainable parameters.
func (m *Model) Params() []*nn.Param {
	var out []*nn.Param
	out = append(out, m.TokEmb.Params()...)
	out = append(out, m.PosEmb.Params()...)
	out = append(out, m.EmbNorm.Params()...)
	for _, b := range m.Blocks {
		out = append(out, b.Params()...)
	}
	out = append(out, m.MLMHead.Params()...)
	out = append(out, m.NSPHead.Params()...)
	return out
}

// KFACLayers returns the fully-connected layers K-FAC preconditions: the
// six layers of every block, excluding the classification heads.
func (m *Model) KFACLayers() []*nn.Dense {
	var out []*nn.Dense
	for _, b := range m.Blocks {
		out = append(out, b.DenseLayers()...)
	}
	return out
}

// LossBreakdown carries the components of one forward/backward pass.
type LossBreakdown struct {
	// Total = MLM + NSP (the paper's Phase-1 objective).
	Total float64
	// MLM is the masked-LM loss; MaskedCount its averaging denominator.
	MLM         float64
	MaskedCount int
	// NSP is the next-sentence loss over the batch.
	NSP float64
}

// Step runs one forward+backward over the batch, accumulating gradients
// into the model parameters. Callers zero gradients, then invoke Step, then
// apply an optimizer.
func (m *Model) Step(batch *data.Batch) (LossBreakdown, error) {
	if batch.SeqLen != m.Config.SeqLen {
		return LossBreakdown{}, fmt.Errorf("bert: batch seq len %d != model %d", batch.SeqLen, m.Config.SeqLen)
	}
	bs, sl := batch.BatchSize, batch.SeqLen
	n := bs * sl
	if len(batch.Tokens) != n {
		return LossBreakdown{}, fmt.Errorf("bert: batch has %d tokens, want %d", len(batch.Tokens), n)
	}

	// Embedding: token + position, then LayerNorm.
	if len(m.posIDs) != n {
		m.posIDs = make([]int, n)
		for i := 0; i < n; i++ {
			m.posIDs[i] = i % sl
		}
	}
	tok := m.TokEmb.Lookup(batch.Tokens)
	pos := m.PosEmb.Lookup(m.posIDs)
	x := m.EmbNorm.Forward(tok.Add(pos))

	for _, b := range m.Blocks {
		b.SetShape(bs, sl)
		x = b.Forward(x)
	}

	// MLM loss over all positions (ignored where target = -1).
	mlmLogits := m.MLMHead.Forward(x)
	mlmLoss, mlmGrad, maskedCount := nn.CrossEntropy(mlmLogits, batch.Targets)

	// NSP loss on the [CLS] rows.
	cls := tensor.Zeros(bs, m.Config.DModel)
	for i := 0; i < bs; i++ {
		copy(cls.Row(i), x.Row(i*sl))
	}
	nspLogits := m.NSPHead.Forward(cls)
	nspTargets := make([]int, bs)
	for i, isNext := range batch.IsNext {
		if isNext {
			nspTargets[i] = 1
		}
	}
	nspLoss, nspGrad, _ := nn.CrossEntropy(nspLogits, nspTargets)

	// Backward: both heads contribute to dX.
	dx := m.MLMHead.Backward(mlmGrad)
	dCls := m.NSPHead.Backward(nspGrad)
	for i := 0; i < bs; i++ {
		row := dx.Row(i * sl)
		add := dCls.Row(i)
		for j := range row {
			row[j] += add[j]
		}
	}
	for i := len(m.Blocks) - 1; i >= 0; i-- {
		dx = m.Blocks[i].Backward(dx)
	}
	dEmb := m.EmbNorm.Backward(dx)
	m.TokEmb.BackwardIDs(dEmb)
	m.PosEmb.BackwardIDs(dEmb)

	return LossBreakdown{
		Total:       mlmLoss + nspLoss,
		MLM:         mlmLoss,
		MaskedCount: maskedCount,
		NSP:         nspLoss,
	}, nil
}
