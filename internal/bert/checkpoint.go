package bert

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Checkpointing serializes model parameters so long pretraining runs (the
// paper's Phase 1 is 7038 steps) can stop and resume. Only parameter
// values are stored; optimizer state and K-FAC factors are rebuilt within
// a few steps, matching PipeFisher's frequent-refresh design.

// checkpointFile is the on-disk format: the config for shape validation
// plus the flattened parameter tensors in Params() order.
type checkpointFile struct {
	Config Config
	Names  []string
	Shapes [][2]int
	Data   [][]float64
}

// Save writes the model's parameters to w in gob format.
func (m *Model) Save(w io.Writer) error {
	params := m.Params()
	cf := checkpointFile{Config: m.Config}
	for _, p := range params {
		cf.Names = append(cf.Names, p.Name)
		cf.Shapes = append(cf.Shapes, [2]int{p.Value.Rows, p.Value.Cols})
		cf.Data = append(cf.Data, append([]float64(nil), p.Value.Data...))
	}
	return gob.NewEncoder(w).Encode(cf)
}

// Load restores parameters previously written by Save into the model. The
// model must have been built with the same Config; mismatches are
// rejected.
func (m *Model) Load(r io.Reader) error {
	var cf checkpointFile
	if err := gob.NewDecoder(r).Decode(&cf); err != nil {
		return fmt.Errorf("bert: decoding checkpoint: %w", err)
	}
	if cf.Config != m.Config {
		return fmt.Errorf("bert: checkpoint config %+v does not match model %+v", cf.Config, m.Config)
	}
	params := m.Params()
	if len(cf.Names) != len(params) {
		return fmt.Errorf("bert: checkpoint has %d params, model has %d", len(cf.Names), len(params))
	}
	for i, p := range params {
		if cf.Names[i] != p.Name {
			return fmt.Errorf("bert: checkpoint param %d is %q, model expects %q", i, cf.Names[i], p.Name)
		}
		if cf.Shapes[i] != [2]int{p.Value.Rows, p.Value.Cols} {
			return fmt.Errorf("bert: checkpoint param %q has shape %v, model expects %dx%d",
				p.Name, cf.Shapes[i], p.Value.Rows, p.Value.Cols)
		}
		if len(cf.Data[i]) != len(p.Value.Data) {
			return fmt.Errorf("bert: checkpoint param %q has %d values, want %d",
				p.Name, len(cf.Data[i]), len(p.Value.Data))
		}
	}
	// Validate everything first, then commit, so a bad checkpoint never
	// leaves the model half-loaded.
	for i, p := range params {
		copy(p.Value.Data, cf.Data[i])
	}
	return nil
}

// ParamsChecksum returns a cheap fingerprint of the parameters, useful for
// asserting save/load round-trips and training determinism.
func (m *Model) ParamsChecksum() float64 {
	var sum float64
	for _, p := range m.Params() {
		sum += p.Value.FrobeniusNorm()
	}
	return sum
}
