package bert

import (
	"math"
	"testing"

	"repro/internal/data"
)

func TestEvaluateUntrainedModel(t *testing.T) {
	m := tinyModel(t, 1)
	c := tinyCorpus(t, 2)
	batch := c.MakeBatch(16, data.DefaultBatchConfig(m.Config.SeqLen))
	res, err := m.Evaluate(batch)
	if err != nil {
		t.Fatal(err)
	}
	// Untrained: MLM accuracy near chance (<< 50%), perplexity near vocab
	// size, NSP near 50%.
	if res.MLMAccuracy > 0.3 {
		t.Fatalf("untrained MLM accuracy %.3f suspiciously high", res.MLMAccuracy)
	}
	if res.MLMPerplexity < 20 || res.MLMPerplexity > 500 {
		t.Fatalf("untrained perplexity %.1f outside plausible range for vocab 96", res.MLMPerplexity)
	}
	if res.NSPAccuracy < 0.1 || res.NSPAccuracy > 0.9 {
		t.Fatalf("untrained NSP accuracy %.3f far from chance", res.NSPAccuracy)
	}
	if math.Abs(math.Log(res.MLMPerplexity)-res.Loss.MLM) > 1e-9 {
		t.Fatal("perplexity must be exp(MLM loss)")
	}
}

func TestEvaluateImprovesWithTraining(t *testing.T) {
	m := tinyModel(t, 3)
	c := tinyCorpus(t, 4)
	heldOut := c.MakeBatch(32, data.DefaultBatchConfig(m.Config.SeqLen))
	before, err := m.Evaluate(heldOut)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Pretrain(m, c, TrainConfig{Optimizer: OptNVLAMB, Steps: 80, BatchSize: 16}); err != nil {
		t.Fatal(err)
	}
	after, err := m.Evaluate(heldOut)
	if err != nil {
		t.Fatal(err)
	}
	if after.Loss.MLM >= before.Loss.MLM {
		t.Fatalf("held-out MLM loss did not improve: %.3f -> %.3f", before.Loss.MLM, after.Loss.MLM)
	}
	if after.MLMAccuracy <= before.MLMAccuracy {
		t.Fatalf("held-out MLM accuracy did not improve: %.3f -> %.3f", before.MLMAccuracy, after.MLMAccuracy)
	}
	if after.MLMPerplexity >= before.MLMPerplexity {
		t.Fatal("perplexity did not improve")
	}
}

func TestEvaluateDoesNotTouchGradients(t *testing.T) {
	m := tinyModel(t, 5)
	c := tinyCorpus(t, 6)
	batch := c.MakeBatch(4, data.DefaultBatchConfig(m.Config.SeqLen))
	for _, p := range m.Params() {
		p.Grad.Zero()
	}
	if _, err := m.Evaluate(batch); err != nil {
		t.Fatal(err)
	}
	for _, p := range m.Params() {
		if p.Grad.Sum() != 0 {
			t.Fatalf("Evaluate modified gradient of %s", p.Name)
		}
	}
}

func TestEvaluateShapeValidation(t *testing.T) {
	m := tinyModel(t, 7)
	c, _ := data.NewCorpus(m.Config.VocabSize, 1.0, 8)
	if _, err := m.Evaluate(c.MakeBatch(2, data.DefaultBatchConfig(8))); err == nil {
		t.Fatal("expected error for wrong sequence length")
	}
}
