package bert

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/pipemodel"
	"repro/internal/tensor"
)

// The model is stageable: the engine partitions Blocks into stages, keeps
// the embedding on stage 0 and the MLM/NSP heads on the last stage.
var _ pipemodel.Model = (*Model)(nil)

// PipelineBlocks returns the encoder blocks the engine partitions.
func (m *Model) PipelineBlocks() []*nn.TransformerBlock { return m.Blocks }

// SeqLen returns the model's fixed sequence length.
func (m *Model) SeqLen() int { return m.Config.SeqLen }

// EmbedForward runs the stage-0 path for a micro-batch: token + position
// embeddings (summed in a retained buffer, no per-micro-batch allocation)
// followed by the embedding LayerNorm. The returned matrix is owned by the
// model and valid until the next EmbedForward; the engine recomputes the
// embedding before the micro-batch's backward, so nothing else retains it.
func (m *Model) EmbedForward(mb *data.Batch) *tensor.Matrix {
	n := mb.BatchSize * mb.SeqLen
	if len(m.pipePosIDs) != n {
		m.pipePosIDs = make([]int, n)
		for i := range m.pipePosIDs {
			m.pipePosIDs[i] = i % mb.SeqLen
		}
	}
	m.pipeEmbBuf = tensor.Reuse(m.pipeEmbBuf, n, m.Config.DModel)
	m.TokEmb.LookupInto(m.pipeEmbBuf, mb.Tokens)
	m.PosEmb.LookupAddInto(m.pipeEmbBuf, m.pipePosIDs)
	return m.EmbNorm.Forward(m.pipeEmbBuf)
}

// EmbedBackward backpropagates into the embedding tables from the caches of
// the immediately preceding EmbedForward.
func (m *Model) EmbedBackward(grad *tensor.Matrix) {
	dEmb := m.EmbNorm.Backward(grad)
	m.TokEmb.BackwardIDs(dEmb)
	m.PosEmb.BackwardIDs(dEmb)
}

// BatchTokenCount returns the number of masked (loss-bearing) positions.
func (m *Model) BatchTokenCount(mb *data.Batch) int { return mb.MaskedCount() }

// EmbedParams returns the stage-0 embedding-path parameters (token and
// position tables plus the embedding LayerNorm).
func (m *Model) EmbedParams() []*nn.Param {
	var out []*nn.Param
	out = append(out, m.TokEmb.Params()...)
	out = append(out, m.PosEmb.Params()...)
	out = append(out, m.EmbNorm.Params()...)
	return out
}

// HeadParams returns the last-stage head parameters (MLM and NSP heads).
func (m *Model) HeadParams() []*nn.Param {
	var out []*nn.Param
	out = append(out, m.MLMHead.Params()...)
	out = append(out, m.NSPHead.Params()...)
	return out
}

// Replicate builds an independent copy of the model with the same
// configuration and parameter values — the per-replica weights of a
// data-parallel group.
func (m *Model) Replicate() (pipemodel.Model, error) {
	r, err := New(m.Config, 1)
	if err != nil {
		return nil, err
	}
	if err := nn.CopyParams(r.Params(), m.Params()); err != nil {
		return nil, err
	}
	return r, nil
}

// KFACLossScale is the averaging count the K-FAC B factors rescale by: both
// objectives contribute to the captured error signals, so it combines the
// MLM denominator (masked tokens) with the NSP denominator (sequences).
func (m *Model) KFACLossScale(t pipemodel.Totals) float64 {
	return float64(t.Tokens + t.Seqs)
}

// HeadLoss evaluates the MLM and NSP losses of one micro-batch with the same
// weighting a full-batch step uses: MLM weighted by the micro-batch's share
// of masked positions, NSP by its share of sequences.
func (m *Model) HeadLoss(mb *data.Batch, y *tensor.Matrix, t pipemodel.Totals) (pipemodel.Loss, error) {
	if err := m.checkHeadInput(mb, y, t); err != nil {
		return pipemodel.Loss{}, err
	}
	mlmLogits := m.MLMHead.Forward(y)
	mlmLoss, _, masked := nn.CrossEntropy(mlmLogits, mb.Targets)
	cls := m.clsRows(y, mb.BatchSize, mb.SeqLen)
	nspLogits := m.NSPHead.Forward(cls)
	nspLoss, _, _ := nn.CrossEntropy(nspLogits, nspTargets(mb))

	var mlm float64
	if t.Tokens > 0 {
		mlm = mlmLoss * float64(masked) / float64(t.Tokens)
	}
	nsp := nspLoss * float64(mb.BatchSize) / float64(t.Seqs)
	return pipemodel.Loss{
		Total:      mlm + nsp,
		Components: map[string]float64{"mlm": mlm, "nsp": nsp},
		Tokens:     masked,
	}, nil
}

// HeadGradient computes the globally-scaled loss gradient w.r.t. the last
// stage's block output: micro-batch CE gradients are means over local
// counts, so rescaling by local/global count reproduces the full-batch mean
// exactly. Head-parameter gradients accumulate as a side effect.
func (m *Model) HeadGradient(mb *data.Batch, y *tensor.Matrix, t pipemodel.Totals) (*tensor.Matrix, error) {
	if err := m.checkHeadInput(mb, y, t); err != nil {
		return nil, err
	}
	mlmLogits := m.MLMHead.Forward(y)
	_, mlmGrad, masked := nn.CrossEntropy(mlmLogits, mb.Targets)
	if t.Tokens > 0 && masked > 0 {
		mlmGrad.ScaleInPlace(float64(masked) / float64(t.Tokens))
	}
	dx := m.MLMHead.Backward(mlmGrad)

	cls := m.clsRows(y, mb.BatchSize, mb.SeqLen)
	nspLogits := m.NSPHead.Forward(cls)
	_, nspGrad, _ := nn.CrossEntropy(nspLogits, nspTargets(mb))
	nspGrad.ScaleInPlace(float64(mb.BatchSize) / float64(t.Seqs))
	dCls := m.NSPHead.Backward(nspGrad)
	for i := 0; i < mb.BatchSize; i++ {
		row := dx.Row(i * mb.SeqLen)
		add := dCls.Row(i)
		for j := range row {
			row[j] += add[j]
		}
	}
	return dx, nil
}

func (m *Model) checkHeadInput(mb *data.Batch, y *tensor.Matrix, t pipemodel.Totals) error {
	if y == nil {
		return fmt.Errorf("bert: nil head input")
	}
	if y.Rows != mb.BatchSize*mb.SeqLen || y.Cols != m.Config.DModel {
		return fmt.Errorf("bert: head input %dx%d, want %dx%d",
			y.Rows, y.Cols, mb.BatchSize*mb.SeqLen, m.Config.DModel)
	}
	if t.Seqs <= 0 {
		return fmt.Errorf("bert: non-positive sequence total %d", t.Seqs)
	}
	return nil
}

// clsRows gathers the [CLS] (first) row of each sequence into a retained
// buffer (valid until the next call).
func (m *Model) clsRows(y *tensor.Matrix, batch, seqLen int) *tensor.Matrix {
	cls := tensor.Reuse(m.pipeClsBuf, batch, m.Config.DModel)
	m.pipeClsBuf = cls
	for i := 0; i < batch; i++ {
		copy(cls.Row(i), y.Row(i*seqLen))
	}
	return cls
}

func nspTargets(mb *data.Batch) []int {
	out := make([]int, mb.BatchSize)
	for i, isNext := range mb.IsNext {
		if isNext {
			out[i] = 1
		}
	}
	return out
}
