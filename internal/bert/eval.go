package bert

import (
	"fmt"
	"math"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// EvalResult summarizes forward-only evaluation on a batch.
type EvalResult struct {
	// Loss components as in training.
	Loss LossBreakdown
	// MLMAccuracy is the fraction of masked positions predicted exactly.
	MLMAccuracy float64
	// MLMPerplexity is exp(MLM loss).
	MLMPerplexity float64
	// NSPAccuracy is the next-sentence classification accuracy.
	NSPAccuracy float64
}

// Evaluate runs a forward-only pass and computes accuracy metrics. It does
// not touch gradients.
func (m *Model) Evaluate(batch *data.Batch) (*EvalResult, error) {
	if batch.SeqLen != m.Config.SeqLen {
		return nil, fmt.Errorf("bert: batch seq len %d != model %d", batch.SeqLen, m.Config.SeqLen)
	}
	bs, sl := batch.BatchSize, batch.SeqLen
	n := bs * sl
	posIDs := make([]int, n)
	for i := range posIDs {
		posIDs[i] = i % sl
	}
	tok := m.TokEmb.Lookup(batch.Tokens)
	pos := m.PosEmb.Lookup(posIDs)
	x := m.EmbNorm.Forward(tok.Add(pos))
	for _, b := range m.Blocks {
		b.SetShape(bs, sl)
		x = b.Forward(x)
	}
	mlmLogits := m.MLMHead.Forward(x)
	mlmLoss, _, masked := nn.CrossEntropy(mlmLogits, batch.Targets)

	var mlmCorrect int
	for i, tgt := range batch.Targets {
		if tgt < 0 {
			continue
		}
		if argmaxRow(mlmLogits, i) == tgt {
			mlmCorrect++
		}
	}

	cls := tensor.Zeros(bs, m.Config.DModel)
	for i := 0; i < bs; i++ {
		copy(cls.Row(i), x.Row(i*sl))
	}
	nspLogits := m.NSPHead.Forward(cls)
	nspTargets := make([]int, bs)
	var nspCorrect int
	for i, isNext := range batch.IsNext {
		if isNext {
			nspTargets[i] = 1
		}
		if argmaxRow(nspLogits, i) == nspTargets[i] {
			nspCorrect++
		}
	}
	nspLoss, _, _ := nn.CrossEntropy(nspLogits, nspTargets)

	res := &EvalResult{
		Loss: LossBreakdown{
			Total: mlmLoss + nspLoss, MLM: mlmLoss, NSP: nspLoss, MaskedCount: masked,
		},
		MLMPerplexity: math.Exp(mlmLoss),
		NSPAccuracy:   float64(nspCorrect) / float64(bs),
	}
	if masked > 0 {
		res.MLMAccuracy = float64(mlmCorrect) / float64(masked)
	}
	return res, nil
}

func argmaxRow(m *tensor.Matrix, row int) int {
	r := m.Row(row)
	best, bestV := 0, r[0]
	for j, v := range r {
		if v > bestV {
			best, bestV = j, v
		}
	}
	return best
}
