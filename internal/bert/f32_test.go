package bert

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// Float32 compute mode through the single-device K-FAC loop: the packed
// matmul kernels narrow their panels, Dense captures its output-gradient
// statistics in a float32 buffer, and KFACStats widens on demand for the
// float64 factor EMA — training must still converge.
func TestPretrainKFACFloat32Mode(t *testing.T) {
	tensor.SetF32(true)
	defer tensor.SetF32(false)
	m := tinyModel(t, 9)
	c := tinyCorpus(t, 10)
	res, err := Pretrain(m, c, TrainConfig{
		Optimizer: OptKFAC, Steps: 40, BatchSize: 8,
		CurvatureEvery: 2, InversionEvery: 4, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CurvatureRefreshes == 0 || res.InverseRefreshes == 0 {
		t.Fatalf("K-FAC work not performed: %d curvature, %d inverse",
			res.CurvatureRefreshes, res.InverseRefreshes)
	}
	if math.IsNaN(res.FinalLoss) {
		t.Fatal("NaN final loss")
	}
	first := mean(res.Losses[:5])
	last := mean(res.Losses[35:])
	if last >= first {
		t.Fatalf("float32-mode K-FAC loss did not decrease: %.3f -> %.3f", first, last)
	}
}
