package bert

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/kfac"
	"repro/internal/nn"
	"repro/internal/optim"
)

// OptimizerKind selects the training configuration of §4.
type OptimizerKind string

// Optimizer kinds for TrainConfig.
const (
	// OptNVLAMB is the paper's baseline.
	OptNVLAMB OptimizerKind = "nvlamb"
	// OptKFAC is NVLAMB with K-FAC preconditioning of the block layers
	// (and a shorter warmup, as in §4).
	OptKFAC OptimizerKind = "kfac"
)

// TrainConfig drives Pretrain.
type TrainConfig struct {
	// Optimizer selects NVLAMB or K-FAC.
	Optimizer OptimizerKind
	// Steps is the number of optimization steps.
	Steps int
	// BatchSize is the mini-batch size (sequences).
	BatchSize int
	// Schedule is the LR schedule; zero value selects the paper's
	// schedule for the chosen optimizer, scaled to Steps.
	Schedule optim.Schedule
	// BaseLR overrides the schedule's base learning rate (0 = default).
	BaseLR float64
	// WeightDecay for the base optimizer (paper: 0.01).
	WeightDecay float64
	// KFAC options.
	Damping float64
	// CurvatureEvery and InversionEvery control the refresh cadence in
	// steps. PipeFisher refreshes every few steps (§3.1); distributed
	// K-FAC baselines use much larger intervals.
	CurvatureEvery int
	InversionEvery int
	// Seed controls data and initialization.
	Seed uint64
}

// normalize fills defaults mirroring §4 / Appendix B.2, scaled down.
func (c TrainConfig) normalize() TrainConfig {
	if c.Steps <= 0 {
		c.Steps = 200
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.WeightDecay == 0 {
		c.WeightDecay = 0.01
	}
	if c.BaseLR == 0 {
		c.BaseLR = 1e-2
	}
	if c.Damping == 0 {
		c.Damping = 1e-2
	}
	if c.CurvatureEvery <= 0 {
		c.CurvatureEvery = 2
	}
	if c.InversionEvery <= 0 {
		c.InversionEvery = 2
	}
	if c.Schedule == nil {
		// The paper's schedule shape: warmup 2000/7038 for NVLAMB,
		// 600/7038 for K-FAC (Figure 8), rescaled to c.Steps.
		warmupFrac := 2000.0 / 7038.0
		if c.Optimizer == OptKFAC {
			warmupFrac = 600.0 / 7038.0
		}
		c.Schedule = optim.PolyDecaySchedule{
			BaseLR:      c.BaseLR,
			WarmupSteps: int(warmupFrac * float64(c.Steps)),
			TotalSteps:  c.Steps,
			Power:       0.5,
		}
	}
	return c
}

// TrainResult records a pretraining run.
type TrainResult struct {
	// Losses[t] is the total loss at step t.
	Losses []float64
	// MLMLosses and NSPLosses break the objective down.
	MLMLosses []float64
	NSPLosses []float64
	// FinalLoss is the smoothed final loss (mean of the last 10% steps).
	FinalLoss float64
	// CurvatureRefreshes and InverseRefreshes count K-FAC work performed.
	CurvatureRefreshes int
	InverseRefreshes   int
}

// StepsToReach returns the first step whose smoothed loss is at or below
// target, or -1 if never reached. Smoothing is a trailing window mean,
// standing in for the paper's Butterworth filtfilt.
func (r *TrainResult) StepsToReach(target float64) int {
	const window = 10
	for t := range r.Losses {
		lo := t - window + 1
		if lo < 0 {
			lo = 0
		}
		var s float64
		for i := lo; i <= t; i++ {
			s += r.Losses[i]
		}
		if s/float64(t-lo+1) <= target {
			return t
		}
	}
	return -1
}

// Pretrain runs the Phase-1-style pretraining loop: masked-LM + NSP on the
// synthetic corpus, with NVLAMB or K-FAC-preconditioned NVLAMB.
func Pretrain(model *Model, corpus *data.Corpus, cfg TrainConfig) (*TrainResult, error) {
	cfg = cfg.normalize()
	params := model.Params()
	lamb := optim.NewLAMB(params, cfg.WeightDecay)

	var pre *kfac.Preconditioner
	if cfg.Optimizer == OptKFAC {
		pre = kfac.NewPreconditioner(model.KFACLayers(), kfac.Options{
			Damping:      cfg.Damping,
			StatDecay:    0.95,
			UsePiDamping: true,
		})
	} else if cfg.Optimizer != OptNVLAMB {
		return nil, fmt.Errorf("bert: unknown optimizer %q", cfg.Optimizer)
	}

	batchCfg := data.DefaultBatchConfig(model.Config.SeqLen)
	res := &TrainResult{}
	for step := 0; step < cfg.Steps; step++ {
		batch := corpus.MakeBatch(cfg.BatchSize, batchCfg)
		nn.ZeroGrads(params)
		loss, err := model.Step(batch)
		if err != nil {
			return nil, err
		}
		if pre != nil {
			// PipeFisher's cadence: curvature and inverses refreshed every
			// few steps using bubble time; preconditioning every step with
			// the freshest available inverses (§3.1).
			if step%cfg.CurvatureEvery == 0 {
				scale := float64(loss.MaskedCount + cfg.BatchSize)
				if err := pre.UpdateCurvature(scale); err != nil {
					return nil, err
				}
				res.CurvatureRefreshes++
			}
			if step%cfg.InversionEvery == 0 && step > 0 || step == 0 {
				if err := pre.UpdateInverses(); err != nil {
					return nil, err
				}
				res.InverseRefreshes++
			}
			pre.Precondition()
		}
		lamb.Step(cfg.Schedule.LR(step))
		res.Losses = append(res.Losses, loss.Total)
		res.MLMLosses = append(res.MLMLosses, loss.MLM)
		res.NSPLosses = append(res.NSPLosses, loss.NSP)
	}
	tail := len(res.Losses) / 10
	if tail < 1 {
		tail = 1
	}
	var s float64
	for _, l := range res.Losses[len(res.Losses)-tail:] {
		s += l
	}
	res.FinalLoss = s / float64(tail)
	return res, nil
}
