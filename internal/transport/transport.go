// Package transport provides the collective-communication substrate behind
// the engine's data-parallel axis: reduce-scatter, all-gather, all-reduce
// and broadcast over named float64 buffers, with a deterministic fold order
// that makes the reduced values bit-identical no matter which transport
// carries them.
//
// # Fold order
//
// Every reducing collective folds its inputs in one fixed sequence: the
// base vector first (significant on rank 0 only), then rank 0's parts in
// ascending part order, then rank 1's parts, and so on through rank
// Size()-1. Each element of the result is produced by exactly that chain of
// float64 additions — no tree reductions, no per-rank reordering — so a
// reduction over W ranks with k parts each is bit-identical to the same
// W*k parts folded on a single rank in ascending global order. The engine
// maps micro-batch gradient deltas onto parts with rank r holding the
// globally contiguous micro-batches [r*k, (r+1)*k), which is how the
// ascending-global-micro-batch determinism contract of the in-process
// collective survives the move onto a wire unchanged.
//
// # Buffer ownership
//
// Collectives only read base and parts during the call and never retain
// them; dst is fully written before a call returns successfully. Callers
// keep ownership of every buffer (pooled matrices may be passed directly
// and recycled as soon as the call returns). Implementations must not
// alias dst with any part (base may alias dst).
//
// # Names and concurrency
//
// Collectives rendezvous by name. Calls with *different* names may run
// concurrently on one group (different pipeline stages fold their
// gradients in parallel); calls with the *same* name must be issued in the
// same order by every rank, one at a time — the engine's schedule barriers
// guarantee this for its per-parameter gradient names and per-factor
// curvature names.
package transport

import (
	"errors"
	"fmt"
)

// Group is one rank's membership in a collective group of Size() peers.
// Implementations: Loopback (the in-process degenerate group, Size 1) and
// Ring (a chunked chain/ring transport over TCP or Unix-domain sockets).
type Group interface {
	// Rank is this member's index in [0, Size).
	Rank() int
	// Size is the number of ranks in the group.
	Size() int

	// AllReduce folds base (rank 0's; nil means zeros) and every rank's
	// parts in the package's fixed fold order and writes the result to dst
	// on every rank. All parts and base must have len(dst). Returns the
	// bytes this rank put on the wire.
	AllReduce(name string, dst, base []float64, parts [][]float64) (int64, error)

	// ReduceScatter is AllReduce with a weaker delivery guarantee: only
	// dst[ShardRange(len(dst), Rank(), Size())] is guaranteed to hold the
	// reduced values on return (implementations may deliver more). The
	// fold order is identical to AllReduce.
	ReduceScatter(name string, dst, base []float64, parts [][]float64) (int64, error)

	// AllGather completes buf on every rank from the per-rank shards: on
	// entry rank r's buf holds valid data in ShardRange(len(buf), r,
	// Size()); on return the whole buf is populated on every rank.
	AllGather(name string, buf []float64) (int64, error)

	// Broadcast copies root's buf into every rank's buf.
	Broadcast(name string, root int, buf []float64) (int64, error)

	// BeginRound advances the group's round epoch. Frames from earlier
	// epochs still in flight are discarded on receipt, and an abort from an
	// earlier epoch is cleared — the hook checkpoint/replay uses to re-run
	// a round after a fault without tripping over the aborted round's
	// stragglers. Every rank must call BeginRound the same number of times
	// (the engine calls it once per TrainRound, replays included).
	BeginRound()

	// Abort poisons the group's current epoch: every blocked or future
	// collective call of this epoch fails promptly — locally and, for wire
	// transports, on every peer (an abort frame carries the reason around
	// the ring) — instead of waiting for a rank that will never arrive.
	// BeginRound on a later epoch clears the abort.
	Abort(reason error)

	// BytesOnWire reports the total bytes this rank has sent since the
	// group was created (0 for in-process transports).
	BytesOnWire() int64

	// Close releases the group's connections. Collectives must not be in
	// flight.
	Close() error
}

// RankFailure is the typed liveness error of a wire transport: a specific
// peer is believed dead or unreachable — its connection closed, its wire
// deadline expired, or a collective timed out waiting on it. It is
// distinguishable from an ordinary Abort (a software fault a checkpoint
// replay at the same membership recovers from) precisely so callers can
// regroup instead: shrink the ring around Rank, re-shard, rewind, and
// continue at reduced width. Rank is numbered in the failing group's own
// rank space (a shrunken ring renumbers survivors contiguously).
type RankFailure struct {
	Rank  int   // the rank believed dead (-1 when unattributable)
	Cause error // what was observed
}

func (f *RankFailure) Error() string {
	if f.Rank < 0 {
		return fmt.Sprintf("transport: rank failure: %v", f.Cause)
	}
	return fmt.Sprintf("transport: rank %d failed: %v", f.Rank, f.Cause)
}

func (f *RankFailure) Unwrap() error { return f.Cause }

// AsRankFailure extracts a RankFailure from an error chain, so callers can
// tell "peer died, regroup" from "round aborted, replay" however many
// layers of wrapping the engine added.
func AsRankFailure(err error) (*RankFailure, bool) {
	var rf *RankFailure
	if errors.As(err, &rf) {
		return rf, true
	}
	return nil, false
}

// ShardRange returns rank's contiguous shard [lo, hi) of an n-element
// buffer under the group's canonical partition: near-equal shards with the
// remainder spread over the leading ranks (hi-lo is n/size or n/size+1).
func ShardRange(n, rank, size int) (lo, hi int) {
	return rank * n / size, (rank + 1) * n / size
}

// checkReduceArgs validates the shared AllReduce/ReduceScatter contract.
func checkReduceArgs(dst, base []float64, parts [][]float64) error {
	if base != nil && len(base) != len(dst) {
		return fmt.Errorf("transport: base length %d != dst length %d", len(base), len(dst))
	}
	for i, p := range parts {
		if len(p) != len(dst) {
			return fmt.Errorf("transport: part %d length %d != dst length %d", i, len(p), len(dst))
		}
	}
	return nil
}

// foldInto performs the local share of the fold on one chunk: dst = base
// (or zeros) + every part in ascending order, all restricted to [lo, hi).
func foldInto(dst, base []float64, parts [][]float64, lo, hi int) {
	d := dst[lo:hi]
	if base == nil {
		for i := range d {
			d[i] = 0
		}
	} else {
		copy(d, base[lo:hi])
	}
	for _, p := range parts {
		for i, v := range p[lo:hi] {
			d[i] += v
		}
	}
}

// addParts adds every part (ascending) into dst over [lo, hi).
func addParts(dst []float64, parts [][]float64, lo, hi int) {
	d := dst[lo:hi]
	for _, p := range parts {
		for i, v := range p[lo:hi] {
			d[i] += v
		}
	}
}
