package transport

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// NewLocalRing spins up a complete in-process ring group over Unix-domain
// sockets in a fresh temp directory and returns one *Ring per rank. It
// exists for tests and benchmarks: the resulting groups exercise the full
// wire path (frames, chunking, reader goroutines) without needing separate
// processes. Close every returned ring when done; the socket directory is
// removed when the last one closes.
func NewLocalRing(size, chunkFloats int) ([]*Ring, error) {
	rings, _, cleanup, err := NewLocalRingOpts(size, RingOptions{ChunkFloats: chunkFloats})
	if err != nil {
		return nil, err
	}
	// Tie directory cleanup to the rings going away.
	for _, r := range rings {
		r.onClose = cleanup
	}
	return rings, nil
}

// NewLocalRingOpts is NewLocalRing with full RingOptions control. It also
// returns the per-rank addresses and the socket-directory cleanup func so
// elastic-membership tests can Reform subgroups on the same addresses
// after closing (some of) the original rings: cleanup is NOT tied to ring
// Close here — the caller decides when the address space dies.
func NewLocalRingOpts(size int, opts RingOptions) ([]*Ring, []string, func(), error) {
	if size < 2 {
		return nil, nil, nil, fmt.Errorf("transport: local ring needs at least 2 ranks, got %d", size)
	}
	dir, err := os.MkdirTemp("", "ring")
	if err != nil {
		return nil, nil, nil, err
	}
	addrs := make([]string, size)
	for i := range addrs {
		addrs[i] = "unix:" + filepath.Join(dir, fmt.Sprintf("r%d.sock", i))
	}
	rings := make([]*Ring, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for i := 0; i < size; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rings[i], errs[i] = DialRing(addrs, i, opts)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, r := range rings {
				if r != nil {
					r.Close()
				}
			}
			os.RemoveAll(dir)
			return nil, nil, nil, err
		}
	}
	var once sync.Once
	cleanup := func() { once.Do(func() { os.RemoveAll(dir) }) }
	return rings, addrs, cleanup, nil
}
