package transport

import (
	"fmt"
	"time"
)

// RankStat is one peer's liveness as observed through the ring's forwarded
// heartbeats (this rank's own entry is synthesized locally).
type RankStat struct {
	Rank        int
	Alive       bool          // at least one heartbeat seen (always true for self)
	Age         time.Duration // time since the last heartbeat (0 for self)
	Epoch       int64         // the rank's round epoch at its last heartbeat
	RoundMicros uint32        // the rank's self-reported last round wall time (µs)
}

// RankStats reports every rank's heartbeat-derived liveness and pace. A
// rank whose RoundMicros is far above its peers' is a straggler — the
// autotuner uses the ratio to inflate communication cost estimates when
// re-planning. Before the first heartbeat interval elapses peers show
// Alive == false; that means "not heard yet", not "dead".
func (r *Ring) RankStats() []RankStat {
	now := time.Now()
	out := make([]RankStat, r.size)
	r.mu.Lock()
	for i := range out {
		h := r.health[i]
		out[i] = RankStat{Rank: i, Alive: !h.last.IsZero(), Epoch: h.epoch, RoundMicros: h.micros}
		if out[i].Alive {
			out[i].Age = now.Sub(h.last)
		}
	}
	r.mu.Unlock()
	out[r.rank] = RankStat{Rank: r.rank, Alive: true, Epoch: r.epoch.Load(), RoundMicros: r.roundUS.Load()}
	return out
}

// ObserveRoundDuration records this rank's last training-round wall time;
// subsequent heartbeats carry it to every peer (see RankStats). The engine
// calls this after each committed round.
func (r *Ring) ObserveRoundDuration(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	if us > int64(^uint32(0)) {
		us = int64(^uint32(0))
	}
	r.roundUS.Store(uint32(us))
}

// View returns the membership view number this ring was formed under: 0
// for an initial group, incremented by the caller at every regroup
// (shrink) and rejoin (restore). The hello exchange guarantees all members
// agree on it.
func (r *Ring) View() int64 { return r.view }

// HeartbeatInterval returns the effective heartbeat period (<= 0 when
// liveness is disabled).
func (r *Ring) HeartbeatInterval() time.Duration { return r.hbInterval }

// Reform dials a replacement ring after a membership change: addrs is the
// ORIGINAL full address list, alive the strictly-ascending original ranks
// still participating, and self this member's original rank. Survivors are
// renumbered contiguously (original rank alive[i] becomes rank i of
// len(alive)), which is exactly the re-shard the engine needs: rank g of
// W_g recomputed over the survivors. view tags the new group's membership
// view — every member must pass the same value (validated by the hello
// exchange) and callers increment it once per membership change.
//
// Reform can run while the failed group is still open: each rank
// re-listens on its original address (DialRing releases its listener once
// the group forms, so the address is free) and the new connections replace
// the old ring's. Survivors should close the failed group only AFTER
// Reform returns — a survivor can still owe forwarding writes into the old
// ring even after a peer completed the same collective, and closing early
// turns that peer's in-flight work into a misattributed broken pipe. Once
// the new ring is formed, every survivor has observed the failure and the
// old connections are guaranteed idle.
func Reform(addrs []string, alive []int, self int, view int64, opts RingOptions) (*Ring, error) {
	if len(alive) < 2 {
		return nil, fmt.Errorf("transport: regroup needs at least 2 surviving ranks, got %d (use Loopback for 1)", len(alive))
	}
	sub := make([]string, len(alive))
	newRank := -1
	for i, a := range alive {
		if a < 0 || a >= len(addrs) {
			return nil, fmt.Errorf("transport: surviving rank %d out of range for %d addresses", a, len(addrs))
		}
		if i > 0 && a <= alive[i-1] {
			return nil, fmt.Errorf("transport: surviving ranks must be strictly ascending, got %v", alive)
		}
		if a == self {
			newRank = i
		}
		sub[i] = addrs[a]
	}
	if newRank < 0 {
		return nil, fmt.Errorf("transport: rank %d is not among the survivors %v", self, alive)
	}
	opts.View = view
	return DialRing(sub, newRank, opts)
}
