package transport

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// refFold computes the contract's reference result on one rank: base (or
// zeros), then every rank's parts folded in ascending (rank, part) order.
func refFold(n int, base []float64, partsByRank [][][]float64) []float64 {
	out := make([]float64, n)
	if base != nil {
		copy(out, base)
	}
	for _, parts := range partsByRank {
		for _, p := range parts {
			for i, v := range p {
				out[i] += v
			}
		}
	}
	return out
}

// fill produces a deterministic, addition-order-sensitive test vector.
func fill(n int, seed float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		// Mix magnitudes so float addition order matters: bit-identity
		// tests would pass vacuously on uniform values.
		v[i] = seed + float64(i)*1.25e-7 + math.Mod(seed*float64(i+1), 3.0)*1e3
	}
	return v
}

func bitEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func closeAll(t *testing.T, rings []*Ring) {
	t.Helper()
	for _, r := range rings {
		if err := r.Close(); err != nil {
			t.Errorf("close rank %d: %v", r.Rank(), err)
		}
	}
}

func TestShardRange(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 1023, 4096} {
		for _, size := range []int{1, 2, 3, 4, 7} {
			prev := 0
			total := 0
			for rank := 0; rank < size; rank++ {
				lo, hi := ShardRange(n, rank, size)
				if lo != prev {
					t.Fatalf("n=%d size=%d rank=%d: lo=%d, want %d (gap/overlap)", n, size, rank, lo, prev)
				}
				if hi < lo {
					t.Fatalf("n=%d size=%d rank=%d: hi=%d < lo=%d", n, size, rank, hi, lo)
				}
				if d := hi - lo; d != n/size && d != n/size+1 {
					t.Fatalf("n=%d size=%d rank=%d: shard size %d, want %d or %d", n, size, rank, d, n/size, n/size+1)
				}
				prev = hi
				total += hi - lo
			}
			if prev != n || total != n {
				t.Fatalf("n=%d size=%d: shards cover %d elements ending at %d", n, size, total, prev)
			}
		}
	}
}

func TestLoopbackAllReduceMatchesReference(t *testing.T) {
	n := 1023
	base := fill(n, 0.5)
	parts := [][]float64{fill(n, 1.0), fill(n, 2.0), fill(n, 3.0)}
	want := refFold(n, base, [][][]float64{parts})
	dst := make([]float64, n)
	lb := Loopback{}
	if _, err := lb.AllReduce("g", dst, base, parts); err != nil {
		t.Fatal(err)
	}
	if !bitEqual(dst, want) {
		t.Fatal("loopback all-reduce != reference fold")
	}
	// nil base means zeros.
	want0 := refFold(n, nil, [][][]float64{parts})
	if _, err := lb.AllReduce("g", dst, nil, parts); err != nil {
		t.Fatal(err)
	}
	if !bitEqual(dst, want0) {
		t.Fatal("loopback all-reduce with nil base != zero-based fold")
	}
	if _, err := lb.AllReduce("g", dst, base[:n-1], parts); err == nil {
		t.Fatal("short base accepted")
	}
	if _, err := lb.AllReduce("g", dst, base, [][]float64{parts[0][:n-1]}); err == nil {
		t.Fatal("short part accepted")
	}
}

// runRingCollective runs fn concurrently on every rank of a fresh local
// ring and fails the test on any error.
func runRingCollective(t *testing.T, size, chunk int, fn func(r *Ring) error) {
	t.Helper()
	rings, err := NewLocalRing(size, chunk)
	if err != nil {
		t.Fatal(err)
	}
	defer closeAll(t, rings)
	var wg sync.WaitGroup
	errs := make([]error, size)
	for i, r := range rings {
		wg.Add(1)
		go func(i int, r *Ring) {
			defer wg.Done()
			errs[i] = fn(r)
		}(i, r)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
}

func TestRingAllReduceBitIdenticalToLoopback(t *testing.T) {
	for _, size := range []int{2, 3, 4} {
		for _, n := range []int{1, 3, 1023, 4097} {
			for _, chunk := range []int{1, 7, 1024, 1 << 20} {
				if chunk == 1 && n > 1100 {
					continue // 4097 one-float frames per link is just slow
				}
				t.Run(fmt.Sprintf("W%d_n%d_c%d", size, n, chunk), func(t *testing.T) {
					base := fill(n, 0.25)
					partsByRank := make([][][]float64, size)
					for r := 0; r < size; r++ {
						partsByRank[r] = [][]float64{fill(n, float64(r)+1.0), fill(n, float64(r)+1.5)}
					}
					want := refFold(n, base, partsByRank)
					dsts := make([][]float64, size)
					runRingCollective(t, size, chunk, func(r *Ring) error {
						dst := make([]float64, n)
						b := base
						if r.Rank() != 0 {
							b = fill(n, 99.0) // base must be ignored off rank 0
						}
						if _, err := r.AllReduce("g", dst, b, partsByRank[r.Rank()]); err != nil {
							return err
						}
						dsts[r.Rank()] = dst
						return nil
					})
					for rk, dst := range dsts {
						if !bitEqual(dst, want) {
							t.Fatalf("rank %d all-reduce differs from reference fold", rk)
						}
					}
				})
			}
		}
	}
}

func TestRingReduceScatterDeliversShard(t *testing.T) {
	size, n, chunk := 3, 1007, 64
	partsByRank := make([][][]float64, size)
	for r := 0; r < size; r++ {
		partsByRank[r] = [][]float64{fill(n, float64(r)*2.0)}
	}
	want := refFold(n, nil, partsByRank)
	runRingCollective(t, size, chunk, func(r *Ring) error {
		dst := make([]float64, n)
		if _, err := r.ReduceScatter("rs", dst, nil, partsByRank[r.Rank()]); err != nil {
			return err
		}
		lo, hi := ShardRange(n, r.Rank(), r.Size())
		if !bitEqual(dst[lo:hi], want[lo:hi]) {
			return fmt.Errorf("shard [%d,%d) differs from reference fold", lo, hi)
		}
		return nil
	})
}

func TestRingAllGather(t *testing.T) {
	for _, size := range []int{2, 3, 4} {
		for _, n := range []int{5, 1023, 4097} {
			t.Run(fmt.Sprintf("W%d_n%d", size, n), func(t *testing.T) {
				full := fill(n, 7.0)
				runRingCollective(t, size, 100, func(r *Ring) error {
					buf := make([]float64, n)
					lo, hi := ShardRange(n, r.Rank(), r.Size())
					copy(buf[lo:hi], full[lo:hi])
					if _, err := r.AllGather("ag", buf); err != nil {
						return err
					}
					if !bitEqual(buf, full) {
						return errors.New("all-gather did not reassemble the full buffer")
					}
					return nil
				})
			})
		}
	}
}

func TestRingBroadcast(t *testing.T) {
	size, n := 3, 2049
	for root := 0; root < size; root++ {
		t.Run(fmt.Sprintf("root%d", root), func(t *testing.T) {
			want := fill(n, float64(root)+0.125)
			runRingCollective(t, size, 300, func(r *Ring) error {
				buf := make([]float64, n)
				if r.Rank() == root {
					copy(buf, want)
				}
				if _, err := r.Broadcast("b", root, buf); err != nil {
					return err
				}
				if !bitEqual(buf, want) {
					return errors.New("broadcast result differs from root's buffer")
				}
				return nil
			})
		})
	}
}

// TestRingConcurrentNames runs several differently-named collectives at
// once per rank — the shape of the engine folding multiple pipeline stages
// in parallel. Run under -race this also exercises the demux paths.
func TestRingConcurrentNames(t *testing.T) {
	const size, n, names = 3, 513, 6
	partsByName := make([][][][]float64, names) // name -> rank -> parts
	wants := make([][]float64, names)
	for k := 0; k < names; k++ {
		partsByName[k] = make([][][]float64, size)
		for r := 0; r < size; r++ {
			partsByName[k][r] = [][]float64{fill(n, float64(k*10+r))}
		}
		wants[k] = refFold(n, nil, partsByName[k])
	}
	runRingCollective(t, size, 128, func(r *Ring) error {
		var wg sync.WaitGroup
		errs := make([]error, names)
		for k := 0; k < names; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				dst := make([]float64, n)
				if _, err := r.AllReduce(fmt.Sprintf("name/%d", k), dst, nil, partsByName[k][r.Rank()]); err != nil {
					errs[k] = err
					return
				}
				if !bitEqual(dst, wants[k]) {
					errs[k] = fmt.Errorf("name %d result differs from reference", k)
				}
			}(k)
		}
		wg.Wait()
		return errors.Join(errs...)
	})
}

// TestRingSameNameSequential reuses one collective name across sequential
// steps, the engine's per-parameter naming pattern across training steps.
func TestRingSameNameSequential(t *testing.T) {
	const size, n, steps = 2, 257, 5
	runRingCollective(t, size, 64, func(r *Ring) error {
		for s := 0; s < steps; s++ {
			parts := [][]float64{fill(n, float64(s)+float64(r.Rank())*0.5)}
			all := make([][][]float64, size)
			for rk := 0; rk < size; rk++ {
				all[rk] = [][]float64{fill(n, float64(s)+float64(rk)*0.5)}
			}
			want := refFold(n, nil, all)
			dst := make([]float64, n)
			if _, err := r.AllReduce("g", dst, nil, parts); err != nil {
				return fmt.Errorf("step %d: %w", s, err)
			}
			if !bitEqual(dst, want) {
				return fmt.Errorf("step %d: result differs from reference", s)
			}
		}
		return nil
	})
}

func TestRingAbortUnblocksPeers(t *testing.T) {
	rings, err := NewLocalRing(2, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer closeAll(t, rings)
	for _, r := range rings {
		r.BeginRound()
	}
	// Rank 1 blocks in a collective rank 0 never joins; rank 0 aborts.
	done := make(chan error, 1)
	go func() {
		dst := make([]float64, 100)
		_, err := rings[1].AllReduce("g", dst, nil, [][]float64{make([]float64, 100)})
		done <- err
	}()
	rings[0].Abort(errors.New("injected fault"))
	if err := <-done; err == nil {
		t.Fatal("blocked collective survived a peer abort")
	} else if want := "injected fault"; !contains(err.Error(), want) {
		t.Fatalf("abort reason not attributed: %v", err)
	}
	// Local collectives on the aborting rank fail fast too.
	if _, err := rings[0].AllReduce("g", make([]float64, 4), nil, nil); err == nil {
		t.Fatal("collective on aborted rank succeeded")
	}
	// BeginRound on every rank clears the abort; collectives work again and
	// stale frames from the aborted epoch don't corrupt the new round.
	for _, r := range rings {
		r.BeginRound()
	}
	parts := [][][]float64{{fill(100, 1.0)}, {fill(100, 2.0)}}
	want := refFold(100, nil, parts)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	dsts := make([][]float64, 2)
	for i, r := range rings {
		wg.Add(1)
		go func(i int, r *Ring) {
			defer wg.Done()
			dsts[i] = make([]float64, 100)
			_, errs[i] = r.AllReduce("g", dsts[i], nil, parts[i])
		}(i, r)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d after replay: %v", i, err)
		}
		if !bitEqual(dsts[i], want) {
			t.Fatalf("rank %d replay result differs from reference", i)
		}
	}
}

func TestRingCloseFailsBlockedCollective(t *testing.T) {
	rings, err := NewLocalRing(2, 64)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		dst := make([]float64, 10)
		_, err := rings[1].AllReduce("g", dst, nil, [][]float64{make([]float64, 10)})
		done <- err
	}()
	rings[0].Close()
	if err := <-done; err == nil {
		t.Fatal("blocked collective survived peer connection loss")
	}
	rings[1].Close()
}

func TestRingBytesOnWire(t *testing.T) {
	const n = 1000
	var counts [2]int64
	runRingCollective(t, 2, 100, func(r *Ring) error {
		dst := make([]float64, n)
		nb, err := r.AllReduce("g", dst, nil, [][]float64{fill(n, 1.0)})
		if err != nil {
			return err
		}
		counts[r.Rank()] = nb
		if r.BytesOnWire() < nb {
			return fmt.Errorf("BytesOnWire %d < collective's reported %d", r.BytesOnWire(), nb)
		}
		return nil
	})
	// Every rank both reduces and distributes n floats: payload alone is
	// 8n bytes per rank, plus framing.
	for rk, c := range counts {
		if c < 8*n {
			t.Fatalf("rank %d reported %d bytes on wire, want >= %d", rk, c, 8*n)
		}
	}
}

func TestDialRingValidation(t *testing.T) {
	if _, err := DialRing([]string{"unix:/tmp/x"}, 0, RingOptions{}); err == nil {
		t.Fatal("single-rank ring accepted")
	}
	if _, err := DialRing([]string{"unix:/tmp/a", "unix:/tmp/b"}, 2, RingOptions{}); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if _, _, err := splitAddr("bogus"); err == nil {
		t.Fatal("unprefixed address accepted")
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
