package transport

import (
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestDialRingAcceptTimeout: a group that never fully forms must fail fast
// with an attributed error on every started rank, not hang in Accept. Rank
// 0 of 3 successfully dials rank 1 but rank 2 never starts, so rank 0 dies
// on the accept path and rank 1 on the dial path.
func TestDialRingAcceptTimeout(t *testing.T) {
	dir := t.TempDir()
	addrs := []string{
		"unix:" + filepath.Join(dir, "r0.sock"),
		"unix:" + filepath.Join(dir, "r1.sock"),
		"unix:" + filepath.Join(dir, "r2.sock"),
	}
	opts := RingOptions{DialTimeout: 300 * time.Millisecond}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := DialRing(addrs, i, opts)
			if r != nil {
				r.Close()
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("DialRing took %v; the accept path is not honoring DialTimeout", elapsed)
	}
	if errs[0] == nil || !contains(errs[0].Error(), "waiting for rank 2") {
		t.Fatalf("rank 0 error = %v, want attributed accept timeout naming rank 2", errs[0])
	}
	if errs[1] == nil {
		t.Fatalf("rank 1 unexpectedly formed a ring")
	}
}

// TestDialRingHelloTimeout: a peer that connects but never sends its hello
// must not hang the handshake — the read side of the hello exchange runs
// under the dial deadline too.
func TestDialRingHelloTimeout(t *testing.T) {
	dir := t.TempDir()
	a0 := filepath.Join(dir, "r0.sock")
	a1 := filepath.Join(dir, "r1.sock")
	addrs := []string{"unix:" + a0, "unix:" + a1}

	ln1, err := net.Listen("unix", a1)
	if err != nil {
		t.Fatal(err)
	}
	defer ln1.Close()
	done := make(chan struct{})
	defer close(done)
	go func() {
		// Impersonate rank 1: accept rank 0's dial, connect back to rank
		// 0's listener, then go silent — no hello, no close.
		c, err := ln1.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		var c2 net.Conn
		for i := 0; i < 100; i++ {
			if c2, err = net.Dial("unix", a0); err == nil {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if c2 != nil {
			defer c2.Close()
		}
		<-done
	}()

	start := time.Now()
	r, err := DialRing(addrs, 0, RingOptions{DialTimeout: 300 * time.Millisecond})
	if r != nil {
		r.Close()
		t.Fatal("DialRing succeeded against a mute peer")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("DialRing hung %v on a mute peer", time.Since(start))
	}
	if err == nil || !contains(err.Error(), "never spoke") {
		t.Fatalf("error = %v, want attributed hello timeout", err)
	}
}

// TestRingAbortWhileClosing: Abort's best-effort poison-frame send racing
// Close's connection teardown must be silent and race-free (regression for
// the Close/Abort hardening; meaningful under -race).
func TestRingAbortWhileClosing(t *testing.T) {
	rings, err := NewLocalRing(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, r := range rings {
		wg.Add(1)
		go func(r *Ring) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					r.Abort(errors.New("chaos"))
				}
			}
		}(r)
	}
	time.Sleep(10 * time.Millisecond)
	closeAll(t, rings)
	close(stop)
	wg.Wait()
	// After Close, Abort must remain a silent no-op.
	rings[0].Abort(errors.New("late abort"))
	rings[1].Abort(errors.New("late abort"))
}

// TestPopFutureEpoch: a queued frame from an epoch ahead of the caller's
// is a protocol error (some rank ran BeginRound more often), surfaced with
// both epochs attributed.
func TestPopFutureEpoch(t *testing.T) {
	rings, err := NewLocalRing(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer closeAll(t, rings)
	r := rings[0]
	r.mu.Lock()
	r.queues["x"] = []*frame{{kind: frameData, epoch: 5, payload: r.getPayload(4)}}
	r.mu.Unlock()
	_, err = r.pop("x", 2)
	if err == nil || !contains(err.Error(), "future epoch 5 (local 2)") {
		t.Fatalf("pop error = %v, want future-epoch protocol error", err)
	}
}

// TestPopStaleFrameRecycled: stale frames (aborted-round stragglers) are
// discarded on dequeue and their payloads returned to the recycle pool —
// the replay must not leak a buffer per straggler.
func TestPopStaleFrameRecycled(t *testing.T) {
	rings, err := NewLocalRing(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer closeAll(t, rings)
	r := rings[0]
	stale := r.getPayload(8)
	fresh := r.getPayload(8)
	r.mu.Lock()
	r.queues["x"] = []*frame{
		{kind: frameData, epoch: 1, payload: stale},
		{kind: frameData, epoch: 2, payload: fresh},
	}
	r.mu.Unlock()
	f, err := r.pop("x", 2)
	if err != nil {
		t.Fatal(err)
	}
	if &f.payload[0] != &fresh[0] {
		t.Fatal("pop did not deliver the current-epoch frame")
	}
	got := r.getPayload(8)
	if &got[0] != &stale[0] {
		t.Fatal("stale frame's payload was not recycled through the pool")
	}
}

// TestRingFailurePropagationAndReform is the transport half of the elastic
// membership story: rank 2 of 3 dies mid-life, both survivors' collectives
// fail with a RankFailure attributing rank 2 (EOF on the direct link for
// rank 0, the propagated failure frame for rank 1), and the survivors
// reform a 2-rank ring on the same addresses and complete a collective
// with the deterministic fold intact.
func TestRingFailurePropagationAndReform(t *testing.T) {
	rings, addrs, cleanup, err := NewLocalRingOpts(3, RingOptions{HeartbeatInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()

	// Survivors enter a collective that can never complete without rank 2.
	errC := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			dst := make([]float64, 64)
			_, err := rings[i].AllReduce("g", dst, nil, [][]float64{fill(64, float64(i))})
			errC <- err
		}(i)
	}
	time.Sleep(30 * time.Millisecond)
	rings[2].Close() // rank 2 "dies": its connections drop

	for i := 0; i < 2; i++ {
		select {
		case err := <-errC:
			rf, ok := AsRankFailure(err)
			if !ok {
				t.Fatalf("survivor error = %v, want RankFailure", err)
			}
			if rf.Rank != 2 {
				t.Fatalf("RankFailure.Rank = %d, want 2 (got: %v)", rf.Rank, err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("survivor still blocked after rank death")
		}
	}
	// The failure is sticky: new rounds on the broken group fail too.
	rings[0].BeginRound()
	if _, err := rings[0].AllReduce("g2", make([]float64, 4), nil, nil); err == nil {
		t.Fatal("collective on a failed group succeeded")
	}

	// Regroup: close the broken rings, re-dial a 2-rank ring on the
	// original addresses under membership view 1.
	rings[0].Close()
	rings[1].Close()
	survivors := []int{0, 1}
	nr := make([]*Ring, 2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, orig := range survivors {
		wg.Add(1)
		go func(i, orig int) {
			defer wg.Done()
			nr[i], errs[i] = Reform(addrs, survivors, orig, 1, RingOptions{})
		}(i, orig)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("Reform rank %d: %v", i, err)
		}
	}
	defer closeAll(t, nr)
	for i, r := range nr {
		if r.Rank() != i || r.Size() != 2 || r.View() != 1 {
			t.Fatalf("reformed ring %d: rank %d size %d view %d", i, r.Rank(), r.Size(), r.View())
		}
	}
	parts := [][][]float64{{fill(100, 3)}, {fill(100, 7)}}
	want := refFold(100, nil, parts)
	out := make([][]float64, 2)
	for i := range nr {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = make([]float64, 100)
			_, errs[i] = nr[i].AllReduce("h", out[i], nil, parts[i])
		}(i)
	}
	wg.Wait()
	for i := range nr {
		if errs[i] != nil {
			t.Fatalf("reformed AllReduce rank %d: %v", i, errs[i])
		}
		if !bitEqual(out[i], want) {
			t.Fatalf("reformed AllReduce rank %d: fold mismatch", i)
		}
	}
}

// TestReformViewMismatch: members joining under different membership views
// must fail the hello exchange, not form a cross-view group.
func TestReformViewMismatch(t *testing.T) {
	dir := t.TempDir()
	addrs := []string{
		"unix:" + filepath.Join(dir, "r0.sock"),
		"unix:" + filepath.Join(dir, "r1.sock"),
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := DialRing(addrs, i, RingOptions{View: int64(1 + i), DialTimeout: 2 * time.Second})
			if r != nil {
				r.Close()
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil || !contains(err.Error(), "membership view mismatch") {
			t.Fatalf("rank %d error = %v, want membership view mismatch", i, err)
		}
	}
}

// TestRingHeartbeatStats: heartbeats carry liveness and the self-reported
// round pace to every rank, surfaced through RankStats.
func TestRingHeartbeatStats(t *testing.T) {
	rings, _, cleanup, err := NewLocalRingOpts(3, RingOptions{HeartbeatInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	defer closeAll(t, rings)
	rings[1].ObserveRoundDuration(5 * time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for {
		stats := rings[0].RankStats()
		if !stats[0].Alive {
			t.Fatal("own rank not alive in RankStats")
		}
		if stats[1].Alive && stats[2].Alive && stats[1].RoundMicros == 5000 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("heartbeat stats never converged: %+v", stats)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRingCollectiveTimeout: a frame that never arrives — the peer process
// is alive (heartbeats flow) but stuck — fails the collective after the
// configured timeout with a RankFailure attributed to the stalest peer.
func TestRingCollectiveTimeout(t *testing.T) {
	rings, _, cleanup, err := NewLocalRingOpts(2, RingOptions{
		HeartbeatInterval: 20 * time.Millisecond,
		CollectiveTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	defer closeAll(t, rings)
	// Rank 1 waits for the reduce pass; rank 0 never starts the collective.
	dst := make([]float64, 16)
	start := time.Now()
	_, err = rings[1].AllReduce("g", dst, nil, [][]float64{fill(16, 1)})
	rf, ok := AsRankFailure(err)
	if !ok || !contains(err.Error(), "collective timeout") {
		t.Fatalf("error = %v, want collective-timeout RankFailure", err)
	}
	if rf.Rank != 0 {
		t.Fatalf("RankFailure.Rank = %d, want 0", rf.Rank)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("collective timeout took %v", elapsed)
	}
	// Sticky: the next collective on this group fails immediately.
	if _, err := rings[1].AllReduce("g2", dst, nil, nil); err == nil {
		t.Fatal("collective after rank failure succeeded")
	}
}

// TestRankFailureFormatting pins the error surface the engine and CLIs
// match on.
func TestRankFailureFormatting(t *testing.T) {
	rf := &RankFailure{Rank: 2, Cause: errors.New("boom")}
	if got := rf.Error(); got != "transport: rank 2 failed: boom" {
		t.Fatalf("Error() = %q", got)
	}
	wrapped := fmt.Errorf("round 3: %w", rf)
	got, ok := AsRankFailure(wrapped)
	if !ok || got.Rank != 2 {
		t.Fatalf("AsRankFailure(wrapped) = %v, %v", got, ok)
	}
	if _, ok := AsRankFailure(errors.New("plain")); ok {
		t.Fatal("AsRankFailure matched a plain error")
	}
	if (&RankFailure{Rank: -1, Cause: errors.New("x")}).Error() != "transport: rank failure: x" {
		t.Fatal("unattributed RankFailure formatting changed")
	}
}
