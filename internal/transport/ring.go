package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultChunkFloats is the default pipelining granularity of the ring
// transport: collectives are cut into chunks of this many float64 values,
// so while one rank folds chunk c its neighbor is already receiving chunk
// c+1 — the link/fold overlap that makes the chunked chain all-reduce beat
// a single-message exchange.
const DefaultChunkFloats = 8192

// RingOptions configures DialRing.
type RingOptions struct {
	// ChunkFloats is the pipelining chunk size in float64 elements
	// (DefaultChunkFloats when <= 0). A value at least as large as every
	// collective disables pipelining — the un-chunked single-message mode
	// the benchmarks compare against.
	ChunkFloats int
	// DialTimeout bounds how long DialRing retries connecting to the next
	// rank (10s when 0) — group members start in arbitrary order.
	DialTimeout time.Duration
}

// Ring is one rank of a socket ring group. Collectives run as chunked
// chain operations over the ring's directed links (rank r sends only to
// r+1 mod W and receives only from r-1 mod W):
//
//   - Reduce pass: for each chunk, rank 0 folds base + its own parts
//     (ascending) and sends the partial to rank 1; every following rank
//     adds its own parts in ascending order and passes the partial on.
//     Rank W-1 completes the chunk — having folded base, then every
//     rank's parts in ascending (rank, part) order, the package's fold
//     contract realized on a wire.
//   - Distribution pass: the completed chunk continues around the ring
//     (W-1 -> 0 -> 1 -> ... -> W-2), each rank copying it into dst.
//
// Chunks pipeline through both passes: in steady state every link carries
// a different chunk while every rank folds another, which is where the
// chunked mode's speedup over one monolithic message comes from.
//
// Frames are demultiplexed by collective name into per-name FIFO queues,
// so collectives with different names may run concurrently from different
// goroutines (the engine folds different pipeline stages in parallel).
// Frames carry the sender's round epoch: BeginRound advances it and stale
// frames — stragglers of an aborted, replayed round — are discarded on
// dequeue instead of corrupting the replay.
type Ring struct {
	rank, size int
	chunk      int

	next  net.Conn
	prev  net.Conn
	wmu   sync.Mutex // serializes frames onto next
	wbuf  *bufio.Writer
	wscr  []byte // frame-encoding scratch, guarded by wmu
	bytes atomic.Int64
	epoch atomic.Int64

	mu         sync.Mutex
	cond       *sync.Cond
	queues     map[string][]*frame
	aborted    error // non-nil: collectives of abortEpoch fail
	abortEpoch int64
	readErr    error // reader terminated (EOF/protocol error)
	closed     bool

	// Receive-path reuse: rscr is the reader's decode scratch and names
	// interns collective names (both owned by the single reader goroutine);
	// payloads recycles decoded frame payloads — the reader draws decode
	// targets from it and the collective loops return them once copied out —
	// so steady-state chunk traffic does not allocate.
	rscr     []byte
	names    map[string]string
	payloads sync.Pool

	onClose func() // optional cleanup hook (NewLocalRing temp dir)
}

// getPayload returns a recycled payload buffer of length n, or a fresh one.
func (r *Ring) getPayload(n int) []float64 {
	if v, _ := r.payloads.Get().(*[]float64); v != nil && cap(*v) >= n {
		return (*v)[:n]
	}
	return make([]float64, n)
}

// putPayload returns a consumed frame's payload to the recycle pool.
func (r *Ring) putPayload(p []float64) {
	if cap(p) == 0 {
		return
	}
	p = p[:0]
	r.payloads.Put(&p)
}

// Frame kinds on the wire.
const (
	frameHello byte = iota
	frameData
	frameAbort
)

// Data-frame passes (assertion only; arrival order already disambiguates).
const (
	passReduce byte = iota
	passFinal
	passGather
	passBcast
)

type frame struct {
	kind    byte
	origin  byte // sender rank (abort/hello) or shard owner (all-gather)
	pass    byte
	epoch   int64
	chunk   uint32
	name    string
	payload []float64
	reason  string // abort frames
}

var errClosed = errors.New("transport: ring closed")

// DialRing joins a ring group: addrs lists one listen address per rank
// ("unix:/path/sock" or "tcp:host:port"), and rank selects this member's.
// Each rank listens on its own address, dials the next rank's (with retry
// — members start in arbitrary order), and accepts the previous rank's
// connection; a hello exchange validates the wiring. The group needs at
// least 2 ranks (use Loopback for 1).
func DialRing(addrs []string, rank int, opts RingOptions) (*Ring, error) {
	if len(addrs) < 2 {
		return nil, fmt.Errorf("transport: ring needs at least 2 ranks, got %d (use Loopback for 1)", len(addrs))
	}
	if rank < 0 || rank >= len(addrs) {
		return nil, fmt.Errorf("transport: rank %d out of range for %d addresses", rank, len(addrs))
	}
	chunk := opts.ChunkFloats
	if chunk <= 0 {
		chunk = DefaultChunkFloats
	}
	timeout := opts.DialTimeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	network, addr, err := splitAddr(addrs[rank])
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("transport: rank %d listen %s: %w", rank, addrs[rank], err)
	}
	defer ln.Close()
	next, err := dialRetry(addrs[(rank+1)%len(addrs)], timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: rank %d dialing next rank: %w", rank, err)
	}
	type acceptResult struct {
		conn net.Conn
		err  error
	}
	acceptC := make(chan acceptResult, 1)
	go func() {
		c, err := ln.Accept()
		acceptC <- acceptResult{c, err}
	}()
	var prev net.Conn
	select {
	case r := <-acceptC:
		if r.err != nil {
			next.Close()
			return nil, fmt.Errorf("transport: rank %d accepting previous rank: %w", rank, r.err)
		}
		prev = r.conn
	case <-time.After(timeout):
		next.Close()
		return nil, fmt.Errorf("transport: rank %d timed out waiting for previous rank on %s", rank, addrs[rank])
	}
	r := &Ring{
		rank: rank, size: len(addrs), chunk: chunk,
		next: next, prev: prev,
		wbuf:   bufio.NewWriterSize(next, 64*1024),
		queues: make(map[string][]*frame),
		names:  make(map[string]string),
	}
	r.cond = sync.NewCond(&r.mu)
	// Hello handshake: tell the next rank who we are, check the previous
	// rank and group size match — a miswired -group spec fails here with an
	// attributed error instead of a hung collective.
	if err := r.sendFrame(&frame{kind: frameHello, origin: byte(rank), chunk: uint32(len(addrs))}); err != nil {
		r.closeConns()
		return nil, err
	}
	br := bufio.NewReaderSize(prev, 64*1024)
	hello, err := r.readFrame(br)
	if err != nil {
		r.closeConns()
		return nil, fmt.Errorf("transport: rank %d reading hello: %w", rank, err)
	}
	wantPrev := (rank - 1 + len(addrs)) % len(addrs)
	if hello.kind != frameHello || int(hello.origin) != wantPrev || int(hello.chunk) != len(addrs) {
		r.closeConns()
		return nil, fmt.Errorf("transport: rank %d miswired ring: hello from rank %d size %d, want rank %d size %d",
			rank, hello.origin, hello.chunk, wantPrev, len(addrs))
	}
	go r.readLoop(br)
	return r, nil
}

func splitAddr(spec string) (network, addr string, err error) {
	switch {
	case strings.HasPrefix(spec, "unix:"):
		return "unix", spec[len("unix:"):], nil
	case strings.HasPrefix(spec, "tcp:"):
		return "tcp", spec[len("tcp:"):], nil
	}
	return "", "", fmt.Errorf("transport: address %q must be unix:PATH or tcp:HOST:PORT", spec)
}

func dialRetry(spec string, timeout time.Duration) (net.Conn, error) {
	network, addr, err := splitAddr(spec)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(timeout)
	for {
		c, err := net.DialTimeout(network, addr, timeout)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("dial %s: %w", spec, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Rank returns this member's index.
func (r *Ring) Rank() int { return r.rank }

// Size returns the group size.
func (r *Ring) Size() int { return r.size }

// BytesOnWire returns the bytes this rank has sent.
func (r *Ring) BytesOnWire() int64 { return r.bytes.Load() }

// BeginRound advances the epoch and clears any abort from earlier epochs.
func (r *Ring) BeginRound() {
	e := r.epoch.Add(1)
	r.mu.Lock()
	if r.aborted != nil && r.abortEpoch < e {
		r.aborted = nil
	}
	r.mu.Unlock()
}

// Abort poisons the current epoch locally and sends an abort frame around
// the ring so every peer's blocked collectives fail promptly too.
func (r *Ring) Abort(reason error) {
	if reason == nil {
		reason = errors.New("aborted")
	}
	e := r.epoch.Load()
	r.mu.Lock()
	if r.aborted == nil || r.abortEpoch < e {
		r.aborted = fmt.Errorf("transport: rank %d aborted: %w", r.rank, reason)
		r.abortEpoch = e
	}
	r.mu.Unlock()
	r.cond.Broadcast()
	// Best-effort: a concurrently closed ring cannot deliver the abort.
	_ = r.sendFrame(&frame{kind: frameAbort, origin: byte(r.rank), epoch: e, reason: reason.Error()})
}

// Close shuts the ring's connections down. In-flight collectives fail.
func (r *Ring) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	r.cond.Broadcast()
	err1 := r.next.Close()
	err2 := r.prev.Close()
	if r.onClose != nil {
		r.onClose()
	}
	if err1 != nil {
		return err1
	}
	return err2
}

func (r *Ring) closeConns() {
	r.next.Close()
	r.prev.Close()
}

// readLoop demultiplexes incoming frames into per-name queues and handles
// abort propagation. It exits on connection close or a protocol error,
// failing every blocked collective.
func (r *Ring) readLoop(br *bufio.Reader) {
	for {
		f, err := r.readFrame(br)
		if err != nil {
			r.mu.Lock()
			if r.readErr == nil {
				if r.closed || errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
					r.readErr = errClosed
				} else {
					r.readErr = fmt.Errorf("transport: rank %d reader: %w", r.rank, err)
				}
			}
			r.mu.Unlock()
			r.cond.Broadcast()
			return
		}
		switch f.kind {
		case frameData:
			r.mu.Lock()
			r.queues[f.name] = append(r.queues[f.name], f)
			r.mu.Unlock()
			r.cond.Broadcast()
		case frameAbort:
			r.mu.Lock()
			if r.aborted == nil || r.abortEpoch < f.epoch {
				r.aborted = fmt.Errorf("transport: aborted by rank %d: %s", f.origin, f.reason)
				r.abortEpoch = f.epoch
			}
			r.mu.Unlock()
			r.cond.Broadcast()
			// Forward around the ring until the frame would return to its
			// originator.
			if int(f.origin) != (r.rank+1)%r.size {
				_ = r.sendFrame(f)
			}
		default:
			r.mu.Lock()
			r.readErr = fmt.Errorf("transport: rank %d unexpected frame kind %d", r.rank, f.kind)
			r.mu.Unlock()
			r.cond.Broadcast()
			return
		}
	}
}

// pop dequeues the next frame for name at the given epoch, discarding
// stale frames from earlier epochs (aborted-round stragglers) and failing
// fast on abort, reader death, or close.
func (r *Ring) pop(name string, epoch int64) (*frame, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		q := r.queues[name]
		for len(q) > 0 && q[0].epoch < epoch {
			r.putPayload(q[0].payload) // aborted-round straggler
			q = q[1:]
		}
		if len(q) > 0 && q[0].epoch > epoch {
			return nil, fmt.Errorf("transport: rank %d received %q frame from future epoch %d (local %d)",
				r.rank, name, q[0].epoch, epoch)
		}
		if len(q) > 0 {
			f := q[0]
			r.queues[name] = q[1:]
			return f, nil
		}
		r.queues[name] = q
		// An abort poisons its own epoch and every earlier *round* epoch,
		// but never the pre-round epoch 0: initialization collectives
		// (parameter broadcast, startup barrier) are fully sent before any
		// rank can start a round, so a faster rank's round abort must not
		// fail a slower rank still joining.
		if r.aborted != nil && r.abortEpoch >= epoch && epoch > 0 {
			return nil, r.aborted
		}
		if r.closed {
			return nil, errClosed
		}
		if r.readErr != nil {
			return nil, r.readErr
		}
		r.cond.Wait()
	}
}

// abortErr returns the poisoning error if the given epoch is aborted (see
// pop for the epoch-0 exemption).
func (r *Ring) abortErr(epoch int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.aborted != nil && r.abortEpoch >= epoch && epoch > 0 {
		return r.aborted
	}
	return nil
}

// sendData writes one data frame to the next rank and returns its wire
// size.
func (r *Ring) sendData(name string, pass byte, origin byte, epoch int64, chunk uint32, payload []float64) (int64, error) {
	f := &frame{kind: frameData, origin: origin, pass: pass, epoch: epoch, chunk: chunk, name: name, payload: payload}
	if err := r.sendFrame(f); err != nil {
		return 0, err
	}
	return frameWireSize(f), nil
}

// expect dequeues a data frame and validates its identity — any mismatch
// is a protocol bug surfaced as an attributed error, not silent corruption.
func (r *Ring) expect(name string, epoch int64, pass byte, chunk uint32, n int) (*frame, error) {
	f, err := r.pop(name, epoch)
	if err != nil {
		return nil, err
	}
	if f.pass != pass || f.chunk != chunk || len(f.payload) != n {
		return nil, fmt.Errorf("transport: rank %d %q frame mismatch: got pass %d chunk %d len %d, want pass %d chunk %d len %d",
			r.rank, name, f.pass, f.chunk, len(f.payload), pass, chunk, n)
	}
	return f, nil
}

// AllReduce implements the chunked chain all-reduce described on Ring.
func (r *Ring) AllReduce(name string, dst, base []float64, parts [][]float64) (int64, error) {
	if err := checkReduceArgs(dst, base, parts); err != nil {
		return 0, err
	}
	epoch := r.epoch.Load()
	if err := r.abortErr(epoch); err != nil {
		return 0, err
	}
	n := len(dst)
	var sent int64
	last := r.rank == r.size-1
	// Reduce pass: partials flow rank 0 -> 1 -> ... -> W-1, each rank
	// folding its own parts in ascending order. Rank W-1 owns the
	// completed chunk and starts the distribution pass.
	for lo, idx := 0, uint32(0); lo < n || n == 0; lo, idx = lo+r.chunk, idx+1 {
		hi := lo + r.chunk
		if hi > n {
			hi = n
		}
		if r.rank == 0 {
			foldInto(dst, base, parts, lo, hi)
			nb, err := r.sendData(name, passReduce, 0, epoch, idx, dst[lo:hi])
			if err != nil {
				return sent, err
			}
			sent += nb
		} else {
			f, err := r.expect(name, epoch, passReduce, idx, hi-lo)
			if err != nil {
				return sent, err
			}
			copy(dst[lo:hi], f.payload)
			addParts(dst, parts, lo, hi)
			r.putPayload(f.payload)
			pass := passReduce
			if last {
				pass = passFinal // chunk complete; start the distribution pass
			}
			nb, err := r.sendData(name, pass, byte(r.rank), epoch, idx, dst[lo:hi])
			if err != nil {
				return sent, err
			}
			sent += nb
		}
		if n == 0 {
			break
		}
	}
	if last {
		return sent, nil // dst completed during the reduce pass
	}
	// Distribution pass: completed chunks flow W-1 -> 0 -> ... -> W-2;
	// every rank copies them into dst and forwards until the rank before
	// the originator.
	forward := r.rank != r.size-2
	for lo, idx := 0, uint32(0); lo < n || n == 0; lo, idx = lo+r.chunk, idx+1 {
		hi := lo + r.chunk
		if hi > n {
			hi = n
		}
		f, err := r.expect(name, epoch, passFinal, idx, hi-lo)
		if err != nil {
			return sent, err
		}
		copy(dst[lo:hi], f.payload)
		if forward {
			nb, err := r.sendData(name, passFinal, f.origin, epoch, idx, f.payload)
			if err != nil {
				return sent, err
			}
			sent += nb
		}
		r.putPayload(f.payload)
		if n == 0 {
			break
		}
	}
	return sent, nil
}

// ReduceScatter shares AllReduce's chain implementation: the whole reduced
// vector is delivered, of which the caller's shard is the guaranteed part.
// The full chain keeps the deterministic fold-order contract — a
// bandwidth-optimal rotated reduce-scatter would fold each chunk in a
// different rank order and break bit-identity across transports.
func (r *Ring) ReduceScatter(name string, dst, base []float64, parts [][]float64) (int64, error) {
	return r.AllReduce(name, dst, base, parts)
}

// AllGather rotates shards around the ring: every rank sends its own shard
// first, then forwards each received shard until the rank before its
// owner; after Size-1 steps every rank holds every shard.
func (r *Ring) AllGather(name string, buf []float64) (int64, error) {
	epoch := r.epoch.Load()
	if err := r.abortErr(epoch); err != nil {
		return 0, err
	}
	n := len(buf)
	var sent int64
	// Send own shard, chunked.
	olo, ohi := ShardRange(n, r.rank, r.size)
	for lo, idx := olo, uint32(0); lo < ohi; lo, idx = lo+r.chunk, idx+1 {
		hi := lo + r.chunk
		if hi > ohi {
			hi = ohi
		}
		nb, err := r.sendData(name, passGather, byte(r.rank), epoch, idx, buf[lo:hi])
		if err != nil {
			return sent, err
		}
		sent += nb
	}
	// Receive the other Size-1 shards in deterministic arrival order:
	// prev's own shard first, then the shards prev forwarded, each one
	// ring-step older.
	for s := 1; s < r.size; s++ {
		owner := (r.rank - s + r.size) % r.size
		slo, shi := ShardRange(n, owner, r.size)
		forward := (r.rank+1)%r.size != owner
		for lo, idx := slo, uint32(0); lo < shi; lo, idx = lo+r.chunk, idx+1 {
			hi := lo + r.chunk
			if hi > shi {
				hi = shi
			}
			f, err := r.expect(name, epoch, passGather, idx, hi-lo)
			if err != nil {
				return sent, err
			}
			if int(f.origin) != owner {
				return sent, fmt.Errorf("transport: rank %d all-gather %q: got shard of rank %d, want rank %d",
					r.rank, name, f.origin, owner)
			}
			copy(buf[lo:hi], f.payload)
			if forward {
				nb, err := r.sendData(name, passGather, f.origin, epoch, idx, f.payload)
				if err != nil {
					return sent, err
				}
				sent += nb
			}
			r.putPayload(f.payload)
		}
	}
	return sent, nil
}

// Broadcast sends root's buf around the ring; every other rank copies and
// forwards until the rank before root.
func (r *Ring) Broadcast(name string, root int, buf []float64) (int64, error) {
	if root < 0 || root >= r.size {
		return 0, fmt.Errorf("transport: broadcast root %d out of range for %d ranks", root, r.size)
	}
	epoch := r.epoch.Load()
	if err := r.abortErr(epoch); err != nil {
		return 0, err
	}
	n := len(buf)
	var sent int64
	if r.rank == root {
		for lo, idx := 0, uint32(0); lo < n; lo, idx = lo+r.chunk, idx+1 {
			hi := lo + r.chunk
			if hi > n {
				hi = n
			}
			nb, err := r.sendData(name, passBcast, byte(root), epoch, idx, buf[lo:hi])
			if err != nil {
				return sent, err
			}
			sent += nb
		}
		return sent, nil
	}
	forward := (r.rank+1)%r.size != root
	for lo, idx := 0, uint32(0); lo < n; lo, idx = lo+r.chunk, idx+1 {
		hi := lo + r.chunk
		if hi > n {
			hi = n
		}
		f, err := r.expect(name, epoch, passBcast, idx, hi-lo)
		if err != nil {
			return sent, err
		}
		copy(buf[lo:hi], f.payload)
		if forward {
			nb, err := r.sendData(name, passBcast, f.origin, epoch, idx, f.payload)
			if err != nil {
				return sent, err
			}
			sent += nb
		}
		r.putPayload(f.payload)
	}
	return sent, nil
}

// Wire format (little-endian):
//
//	u8 kind | u8 origin | u8 pass | u8 reserved | u64 epoch | u32 chunk |
//	u32 count | u16 nameLen | name | payload
//
// payload is count float64 values for data frames, a count-byte reason
// string for abort frames, absent for hello frames.
const frameHeaderSize = 1 + 1 + 1 + 1 + 8 + 4 + 4 + 2

func frameWireSize(f *frame) int64 {
	n := int64(frameHeaderSize) + int64(len(f.name))
	if f.kind == frameData {
		n += int64(len(f.payload)) * 8
	} else if f.kind == frameAbort {
		n += int64(len(f.reason))
	}
	return n
}

func (r *Ring) sendFrame(f *frame) error {
	size := frameWireSize(f)
	r.wmu.Lock()
	defer r.wmu.Unlock()
	if cap(r.wscr) < int(size) {
		r.wscr = make([]byte, size)
	}
	b := r.wscr[:size]
	b[0], b[1], b[2], b[3] = f.kind, f.origin, f.pass, 0
	binary.LittleEndian.PutUint64(b[4:], uint64(f.epoch))
	binary.LittleEndian.PutUint32(b[12:], f.chunk)
	off := frameHeaderSize + len(f.name)
	copy(b[frameHeaderSize:], f.name)
	switch f.kind {
	case frameData:
		binary.LittleEndian.PutUint32(b[16:], uint32(len(f.payload)))
		binary.LittleEndian.PutUint16(b[20:], uint16(len(f.name)))
		for _, v := range f.payload {
			binary.LittleEndian.PutUint64(b[off:], math.Float64bits(v))
			off += 8
		}
	case frameAbort:
		binary.LittleEndian.PutUint32(b[16:], uint32(len(f.reason)))
		binary.LittleEndian.PutUint16(b[20:], uint16(len(f.name)))
		copy(b[off:], f.reason)
	default:
		binary.LittleEndian.PutUint32(b[16:], 0)
		binary.LittleEndian.PutUint16(b[20:], uint16(len(f.name)))
	}
	if _, err := r.wbuf.Write(b); err != nil {
		return fmt.Errorf("transport: rank %d send: %w", r.rank, err)
	}
	// Flush per frame: chunk pipelining depends on partials reaching the
	// next rank as soon as they are folded, not when a buffer fills.
	if err := r.wbuf.Flush(); err != nil {
		return fmt.Errorf("transport: rank %d send: %w", r.rank, err)
	}
	r.bytes.Add(size)
	return nil
}

// readFrame decodes one frame off the wire. Only the reader goroutine (and
// DialRing's hello exchange, which precedes it) may call this: the decode
// scratch and the name-intern map are single-owner state.
func (r *Ring) readFrame(br *bufio.Reader) (*frame, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	f := &frame{
		kind:   hdr[0],
		origin: hdr[1],
		pass:   hdr[2],
		epoch:  int64(binary.LittleEndian.Uint64(hdr[4:])),
		chunk:  binary.LittleEndian.Uint32(hdr[12:]),
	}
	count := binary.LittleEndian.Uint32(hdr[16:])
	nameLen := binary.LittleEndian.Uint16(hdr[20:])
	if nameLen > 0 {
		if cap(r.rscr) < int(nameLen) {
			r.rscr = make([]byte, nameLen)
		}
		nb := r.rscr[:nameLen]
		if _, err := io.ReadFull(br, nb); err != nil {
			return nil, err
		}
		// Intern: the same collective names recur every step, and a
		// map[string] lookup keyed by string(bytes) does not allocate.
		s, ok := r.names[string(nb)]
		if !ok {
			s = string(nb)
			r.names[s] = s
		}
		f.name = s
	}
	switch f.kind {
	case frameData:
		if count > (1 << 28) {
			return nil, fmt.Errorf("transport: oversized frame (%d floats)", count)
		}
		need := int(count) * 8
		if cap(r.rscr) < need {
			r.rscr = make([]byte, need)
		}
		raw := r.rscr[:need]
		if _, err := io.ReadFull(br, raw); err != nil {
			return nil, err
		}
		f.payload = r.getPayload(int(count))
		for i := range f.payload {
			f.payload[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		}
	case frameAbort:
		if count > (1 << 20) {
			return nil, fmt.Errorf("transport: oversized abort reason (%d bytes)", count)
		}
		raw := make([]byte, count)
		if _, err := io.ReadFull(br, raw); err != nil {
			return nil, err
		}
		f.reason = string(raw)
	}
	return f, nil
}
