package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// DefaultChunkFloats is the default pipelining granularity of the ring
// transport: collectives are cut into chunks of this many float64 values,
// so while one rank folds chunk c its neighbor is already receiving chunk
// c+1 — the link/fold overlap that makes the chunked chain all-reduce beat
// a single-message exchange.
const DefaultChunkFloats = 8192

// Liveness defaults. A heartbeat every 500ms against a 10s wire deadline
// gives ~20 missed beats of slack — far above scheduler jitter, far below
// the "hung forever" a dead peer used to cost.
const (
	DefaultHeartbeatInterval = 500 * time.Millisecond
	DefaultWireTimeout       = 10 * time.Second
)

// RingOptions configures DialRing.
type RingOptions struct {
	// ChunkFloats is the pipelining chunk size in float64 elements
	// (DefaultChunkFloats when <= 0). A value at least as large as every
	// collective disables pipelining — the un-chunked single-message mode
	// the benchmarks compare against.
	ChunkFloats int
	// DialTimeout bounds how long DialRing retries connecting to the next
	// rank (10s when 0) — group members start in arbitrary order. The same
	// deadline bounds the accept and hello exchange, so a group that never
	// fully forms fails fast with an attributed error.
	DialTimeout time.Duration
	// HeartbeatInterval is the period of the liveness heartbeat each rank
	// sends to its next neighbor (DefaultHeartbeatInterval when 0; negative
	// disables heartbeats and with them the read-side wire deadline).
	// Heartbeats are forwarded around the ring, so every rank sees every
	// peer's liveness and self-reported round pace.
	HeartbeatInterval time.Duration
	// WireTimeout bounds every wire operation (DefaultWireTimeout when 0;
	// negative disables). Writes always carry it; reads carry it only while
	// heartbeats are enabled (heartbeat traffic is what guarantees a healthy
	// idle link still delivers bytes before the deadline). It is clamped to
	// at least 4x the heartbeat interval.
	WireTimeout time.Duration
	// CollectiveTimeout bounds how long a collective waits for any single
	// frame (0 disables). Unlike WireTimeout it fires even when the peer
	// process is alive but stuck — the frame simply never arrives — and the
	// resulting RankFailure is attributed to the rank with the stalest
	// heartbeat.
	CollectiveTimeout time.Duration
	// View is the membership view number this ring is formed under. The
	// hello exchange validates that all members agree — a rank rejoining
	// with a stale view fails the handshake instead of silently joining a
	// differently-shaped group. Ring.View reports it.
	View int64
}

// Ring is one rank of a socket ring group. Collectives run as chunked
// chain operations over the ring's directed links (rank r sends only to
// r+1 mod W and receives only from r-1 mod W):
//
//   - Reduce pass: for each chunk, rank 0 folds base + its own parts
//     (ascending) and sends the partial to rank 1; every following rank
//     adds its own parts in ascending order and passes the partial on.
//     Rank W-1 completes the chunk — having folded base, then every
//     rank's parts in ascending (rank, part) order, the package's fold
//     contract realized on a wire.
//   - Distribution pass: the completed chunk continues around the ring
//     (W-1 -> 0 -> 1 -> ... -> W-2), each rank copying it into dst.
//
// Chunks pipeline through both passes: in steady state every link carries
// a different chunk while every rank folds another, which is where the
// chunked mode's speedup over one monolithic message comes from.
//
// Frames are demultiplexed by collective name into per-name FIFO queues,
// so collectives with different names may run concurrently from different
// goroutines (the engine folds different pipeline stages in parallel).
// Frames carry the sender's round epoch: BeginRound advances it and stale
// frames — stragglers of an aborted, replayed round — are discarded on
// dequeue instead of corrupting the replay.
type Ring struct {
	rank, size int
	chunk      int
	view       int64

	hbInterval  time.Duration // <= 0: heartbeats off
	wireTimeout time.Duration // <= 0: wire deadlines off
	collTimeout time.Duration // <= 0: collective frame waits unbounded

	next     net.Conn
	prev     net.Conn
	wmu      sync.Mutex // serializes frames onto next
	wbuf     *bufio.Writer
	wscr     []byte    // frame-encoding scratch, guarded by wmu
	wdeadArm time.Time // next write-deadline re-arm point, guarded by wmu
	bytes    atomic.Int64
	epoch    atomic.Int64

	// closing is set (before any connection teardown) the moment Close
	// starts. Writers check it so a best-effort send racing Close — an
	// Abort's poison frame, a heartbeat tick — declines silently instead of
	// surfacing the teardown as a spurious peer failure.
	closing atomic.Bool
	stopC   chan struct{} // closed by Close; stops the liveness goroutines

	roundUS atomic.Uint32 // this rank's last round wall time (µs), carried in heartbeats

	mu         sync.Mutex
	cond       *sync.Cond
	queues     map[string][]*frame
	aborted    error // non-nil: collectives of abortEpoch fail
	abortEpoch int64
	readErr    error        // reader terminated (protocol error/local close)
	failure    error        // sticky *RankFailure: a peer is believed dead
	health     []rankHealth // per-rank liveness from forwarded heartbeats
	closed     bool

	hbSend frame // heartbeat encode scratch, owned by the heartbeat goroutine
	hbRecv frame // heartbeat decode scratch, owned by the reader goroutine

	// Receive-path reuse: rscr is the reader's decode scratch and names
	// interns collective names (both owned by the single reader goroutine);
	// payloads recycles decoded frame payloads — the reader draws decode
	// targets from it and the collective loops return them once copied out —
	// so steady-state chunk traffic does not allocate.
	rscr     []byte
	names    map[string]string
	payloads sync.Pool

	onClose func() // optional cleanup hook (NewLocalRing temp dir)
}

// getPayload returns a recycled payload buffer of length n, or a fresh one.
func (r *Ring) getPayload(n int) []float64 {
	if v, _ := r.payloads.Get().(*[]float64); v != nil && cap(*v) >= n {
		return (*v)[:n]
	}
	return make([]float64, n)
}

// putPayload returns a consumed frame's payload to the recycle pool.
func (r *Ring) putPayload(p []float64) {
	if cap(p) == 0 {
		return
	}
	p = p[:0]
	r.payloads.Put(&p)
}

// Frame kinds on the wire.
const (
	frameHello byte = iota
	frameData
	frameAbort
	// frameHeartbeat is a periodic liveness beacon: origin is the sender,
	// epoch its current round epoch, chunk its last round's wall time in
	// microseconds. Heartbeats are consumed inline by the reader (never
	// queued) and forwarded around the ring, and both directions reuse
	// Ring-owned scratch frames — liveness costs zero allocations.
	frameHeartbeat
	// frameFailure announces a dead peer: chunk carries the failed rank,
	// reason what the detector observed. It propagates around the ring like
	// an abort so every survivor's collectives fail with the attributed
	// rank instead of a cascade of secondary timeouts.
	frameFailure
)

// Data-frame passes (assertion only; arrival order already disambiguates).
const (
	passReduce byte = iota
	passFinal
	passGather
	passBcast
)

type frame struct {
	kind    byte
	origin  byte // sender rank (abort/hello/heartbeat/failure) or shard owner (all-gather)
	pass    byte
	epoch   int64
	chunk   uint32 // chunk index (data), group size (hello), round µs (heartbeat), dead rank (failure)
	name    string
	payload []float64
	reason  string // abort/failure frames
}

// rankHealth is one peer's liveness as last heard via heartbeat.
type rankHealth struct {
	last   time.Time // when the last heartbeat arrived (zero: never)
	epoch  int64     // the peer's round epoch at that heartbeat
	micros uint32    // the peer's self-reported last round wall time (µs)
}

var errClosed = errors.New("transport: ring closed")

// DialRing joins a ring group: addrs lists one listen address per rank
// ("unix:/path/sock" or "tcp:host:port"), and rank selects this member's.
// Each rank listens on its own address, dials the next rank's (with retry
// — members start in arbitrary order), and accepts the previous rank's
// connection; a hello exchange validates the wiring and the membership
// view. Every step — dial, accept, hello — is bounded by DialTimeout, so a
// group that never fully forms fails fast with an attributed error instead
// of hanging. The group needs at least 2 ranks (use Loopback for 1).
func DialRing(addrs []string, rank int, opts RingOptions) (*Ring, error) {
	if len(addrs) < 2 {
		return nil, fmt.Errorf("transport: ring needs at least 2 ranks, got %d (use Loopback for 1)", len(addrs))
	}
	if rank < 0 || rank >= len(addrs) {
		return nil, fmt.Errorf("transport: rank %d out of range for %d addresses", rank, len(addrs))
	}
	chunk := opts.ChunkFloats
	if chunk <= 0 {
		chunk = DefaultChunkFloats
	}
	timeout := opts.DialTimeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	hb := opts.HeartbeatInterval
	if hb == 0 {
		hb = DefaultHeartbeatInterval
	}
	wire := opts.WireTimeout
	if wire == 0 {
		wire = DefaultWireTimeout
	}
	if wire > 0 && hb > 0 && wire < 4*hb {
		wire = 4 * hb // a deadline tighter than a few beats is all false positives
	}
	network, addr, err := splitAddr(addrs[rank])
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("transport: rank %d listen %s: %w", rank, addrs[rank], err)
	}
	defer ln.Close()
	next, err := dialRetry(addrs[(rank+1)%len(addrs)], timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: rank %d dialing next rank: %w", rank, err)
	}
	// Bound the accept with the listener's own deadline — both net.TCPListener
	// and net.UnixListener implement SetDeadline.
	if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
		_ = d.SetDeadline(time.Now().Add(timeout))
	}
	wantPrev := (rank - 1 + len(addrs)) % len(addrs)
	prev, err := ln.Accept()
	if err != nil {
		next.Close()
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			return nil, fmt.Errorf("transport: rank %d timed out after %v waiting for rank %d to connect on %s (group never fully formed)",
				rank, timeout, wantPrev, addrs[rank])
		}
		return nil, fmt.Errorf("transport: rank %d accepting previous rank: %w", rank, err)
	}
	r := &Ring{
		rank: rank, size: len(addrs), chunk: chunk,
		view: opts.View, hbInterval: hb, wireTimeout: wire, collTimeout: opts.CollectiveTimeout,
		next: next, prev: prev,
		wbuf:   bufio.NewWriterSize(next, 64*1024),
		queues: make(map[string][]*frame),
		names:  make(map[string]string),
		health: make([]rankHealth, len(addrs)),
		stopC:  make(chan struct{}),
	}
	r.cond = sync.NewCond(&r.mu)
	// Hello handshake: tell the next rank who we are and which membership
	// view we joined under, check the previous rank agrees — a miswired
	// -group spec or a stale rejoin fails here with an attributed error
	// instead of a hung or cross-view collective. The exchange itself runs
	// under the dial deadline: a peer that connects but never speaks must
	// not hang the group either.
	_ = next.SetWriteDeadline(time.Now().Add(timeout))
	_ = prev.SetReadDeadline(time.Now().Add(timeout))
	if err := r.sendFrame(&frame{kind: frameHello, origin: byte(rank), epoch: opts.View, chunk: uint32(len(addrs))}); err != nil {
		r.closeConns()
		return nil, fmt.Errorf("transport: rank %d sending hello: %w", rank, err)
	}
	br := bufio.NewReaderSize(prev, 64*1024)
	hello, err := r.readFrame(br)
	if err != nil {
		r.closeConns()
		if ne, ok := errAs[net.Error](err); ok && ne.Timeout() {
			return nil, fmt.Errorf("transport: rank %d timed out after %v waiting for rank %d's hello on %s (peer connected but never spoke)",
				rank, timeout, wantPrev, addrs[rank])
		}
		return nil, fmt.Errorf("transport: rank %d reading hello: %w", rank, err)
	}
	if hello.kind != frameHello || int(hello.origin) != wantPrev || int(hello.chunk) != len(addrs) {
		r.closeConns()
		return nil, fmt.Errorf("transport: rank %d miswired ring: hello from rank %d size %d, want rank %d size %d",
			rank, hello.origin, hello.chunk, wantPrev, len(addrs))
	}
	if hello.epoch != opts.View {
		r.closeConns()
		return nil, fmt.Errorf("transport: rank %d membership view mismatch: rank %d is at view %d, this rank at view %d",
			rank, wantPrev, hello.epoch, opts.View)
	}
	// Handshake deadlines off; steady-state wire deadlines are re-armed
	// per operation by sendFrame and readLoop.
	_ = next.SetWriteDeadline(time.Time{})
	_ = prev.SetReadDeadline(time.Time{})
	r.wdeadArm = time.Time{}
	go r.readLoop(br)
	if r.hbInterval > 0 {
		go r.heartbeatLoop()
	}
	if r.collTimeout > 0 {
		go r.timeoutLoop()
	}
	return r, nil
}

// errAs is errors.As for interface targets.
func errAs[T any](err error) (T, bool) {
	var t T
	ok := errors.As(err, &t)
	return t, ok
}

func splitAddr(spec string) (network, addr string, err error) {
	switch {
	case strings.HasPrefix(spec, "unix:"):
		return "unix", spec[len("unix:"):], nil
	case strings.HasPrefix(spec, "tcp:"):
		return "tcp", spec[len("tcp:"):], nil
	}
	return "", "", fmt.Errorf("transport: address %q must be unix:PATH or tcp:HOST:PORT", spec)
}

func dialRetry(spec string, timeout time.Duration) (net.Conn, error) {
	network, addr, err := splitAddr(spec)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(timeout)
	for {
		c, err := net.DialTimeout(network, addr, timeout)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("dial %s: %w", spec, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Rank returns this member's index.
func (r *Ring) Rank() int { return r.rank }

// Size returns the group size.
func (r *Ring) Size() int { return r.size }

// BytesOnWire returns the bytes this rank has sent.
func (r *Ring) BytesOnWire() int64 { return r.bytes.Load() }

// BeginRound advances the epoch and clears any abort from earlier epochs.
func (r *Ring) BeginRound() {
	e := r.epoch.Add(1)
	r.mu.Lock()
	if r.aborted != nil && r.abortEpoch < e {
		r.aborted = nil
	}
	r.mu.Unlock()
}

// Abort poisons the current epoch locally and sends an abort frame around
// the ring so every peer's blocked collectives fail promptly too.
func (r *Ring) Abort(reason error) {
	if reason == nil {
		reason = errors.New("aborted")
	}
	e := r.epoch.Load()
	r.mu.Lock()
	if r.aborted == nil || r.abortEpoch < e {
		r.aborted = fmt.Errorf("transport: rank %d aborted: %w", r.rank, reason)
		r.abortEpoch = e
	}
	r.mu.Unlock()
	r.cond.Broadcast()
	// Best-effort: a concurrently closed ring cannot deliver the abort.
	// sendFrame checks the closing flag under the writer lock, so this
	// races Close's connection teardown safely and silently.
	_ = r.sendFrame(&frame{kind: frameAbort, origin: byte(r.rank), epoch: e, reason: reason.Error()})
}

// Close shuts the ring's connections down. In-flight collectives fail. The
// closing flag is raised before any teardown so concurrent best-effort
// sends (Abort, heartbeats) decline silently instead of misreading their
// own ring's teardown as a peer failure.
func (r *Ring) Close() error {
	if r.closing.Swap(true) {
		return nil
	}
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.cond.Broadcast()
	close(r.stopC)
	err1 := r.next.Close()
	err2 := r.prev.Close()
	if r.onClose != nil {
		r.onClose()
	}
	if err1 != nil {
		return err1
	}
	return err2
}

func (r *Ring) closeConns() {
	r.next.Close()
	r.prev.Close()
}

// readLoop demultiplexes incoming frames into per-name queues and handles
// abort, heartbeat, and failure propagation. It exits on connection close
// or a protocol error, failing every blocked collective; a dead previous
// rank (EOF, reset, or wire-deadline expiry) is recorded as a RankFailure
// and announced around the ring.
func (r *Ring) readLoop(br *bufio.Reader) {
	prevRank := (r.rank - 1 + r.size) % r.size
	// Read-side wire deadline: only sound while heartbeats guarantee the
	// link carries traffic at least every interval. Re-armed at half-life
	// rather than per frame to keep the hot path to one time.Now call.
	armReads := r.wireTimeout > 0 && r.hbInterval > 0
	var rearm time.Time
	for {
		if armReads {
			if now := time.Now(); now.After(rearm) {
				_ = r.prev.SetReadDeadline(now.Add(r.wireTimeout))
				rearm = now.Add(r.wireTimeout / 2)
			}
		}
		f, err := r.readFrame(br)
		if err != nil {
			var rf *RankFailure
			var re error
			switch ne, isNet := errAs[net.Error](err); {
			case r.closing.Load():
				re = errClosed // our own teardown, not a peer failure
			case isNet && ne.Timeout():
				rf = &RankFailure{Rank: prevRank, Cause: fmt.Errorf(
					"rank %d heard nothing from rank %d for %v (wire deadline)", r.rank, prevRank, r.wireTimeout)}
			case errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) || errors.Is(err, syscall.ECONNRESET):
				rf = &RankFailure{Rank: prevRank, Cause: fmt.Errorf(
					"rank %d lost the connection from rank %d: %v", r.rank, prevRank, err)}
			default:
				re = fmt.Errorf("transport: rank %d reader: %w", r.rank, err)
			}
			r.mu.Lock()
			if rf != nil {
				if r.failure == nil {
					r.failure = rf
				}
			} else if r.readErr == nil {
				r.readErr = re
			}
			r.mu.Unlock()
			r.cond.Broadcast()
			if rf != nil {
				// Announce the failure around the ring so every survivor's
				// collectives fail with the attributed rank, not a cascade
				// of secondary timeouts.
				_ = r.sendFrame(&frame{kind: frameFailure, origin: byte(r.rank), chunk: uint32(rf.Rank), reason: rf.Cause.Error()})
			}
			return
		}
		switch f.kind {
		case frameData:
			r.mu.Lock()
			r.queues[f.name] = append(r.queues[f.name], f)
			r.mu.Unlock()
			r.cond.Broadcast()
		case frameAbort:
			r.mu.Lock()
			if r.aborted == nil || r.abortEpoch < f.epoch {
				r.aborted = fmt.Errorf("transport: aborted by rank %d: %s", f.origin, f.reason)
				r.abortEpoch = f.epoch
			}
			r.mu.Unlock()
			r.cond.Broadcast()
			// Forward around the ring until the frame would return to its
			// originator.
			if int(f.origin) != (r.rank+1)%r.size {
				_ = r.sendFrame(f)
			}
		case frameHeartbeat:
			// f is the reader-owned hbRecv scratch: record liveness and
			// forward before the next readFrame overwrites it (sendFrame
			// serializes synchronously, so the reuse is safe).
			r.mu.Lock()
			if int(f.origin) < len(r.health) && int(f.origin) != r.rank {
				h := &r.health[f.origin]
				h.last = time.Now()
				h.epoch = f.epoch
				h.micros = f.chunk
			}
			r.mu.Unlock()
			if int(f.origin) != (r.rank+1)%r.size && int(f.origin) != r.rank {
				_ = r.sendFrame(f)
			}
		case frameFailure:
			r.mu.Lock()
			if r.failure == nil {
				r.failure = &RankFailure{Rank: int(f.chunk), Cause: fmt.Errorf(
					"rank %d reported: %s", f.origin, f.reason)}
			}
			r.mu.Unlock()
			r.cond.Broadcast()
			if int(f.origin) != (r.rank+1)%r.size {
				_ = r.sendFrame(f)
			}
		default:
			r.mu.Lock()
			r.readErr = fmt.Errorf("transport: rank %d unexpected frame kind %d", r.rank, f.kind)
			r.mu.Unlock()
			r.cond.Broadcast()
			return
		}
	}
}

// pop dequeues the next frame for name at the given epoch, discarding
// stale frames from earlier epochs (aborted-round stragglers) and failing
// fast on rank failure, abort, reader death, close, or — when a collective
// timeout is configured — on waiting too long for a frame that will never
// arrive.
func (r *Ring) pop(name string, epoch int64) (*frame, error) {
	var deadline time.Time
	if r.collTimeout > 0 {
		deadline = time.Now().Add(r.collTimeout)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		q := r.queues[name]
		for len(q) > 0 && q[0].epoch < epoch {
			r.putPayload(q[0].payload) // aborted-round straggler
			q = q[1:]
		}
		r.queues[name] = q
		// Frames that already arrived are served before any failure check: a
		// dead peer fails only collectives still missing data on the wire.
		// A rank that finished its sends and died (or closed during
		// teardown) must not poison a round whose frames fully landed — the
		// survivors' last committed step would otherwise depend on how fast
		// each rank drained its queue.
		if len(q) > 0 && q[0].epoch == epoch {
			r.queues[name] = q[1:]
			return q[0], nil
		}
		// A rank failure is sticky and poisons every epoch, the pre-round
		// epoch 0 included: the missing frame can never arrive on a ring
		// with a dead member, and the caller must regroup, not replay.
		if r.failure != nil {
			return nil, r.failure
		}
		if len(q) > 0 { // q[0].epoch > epoch
			return nil, fmt.Errorf("transport: rank %d received %q frame from future epoch %d (local %d)",
				r.rank, name, q[0].epoch, epoch)
		}
		// An abort poisons its own epoch and every earlier *round* epoch,
		// but never the pre-round epoch 0: initialization collectives
		// (parameter broadcast, startup barrier) are fully sent before any
		// rank can start a round, so a faster rank's round abort must not
		// fail a slower rank still joining.
		if r.aborted != nil && r.abortEpoch >= epoch && epoch > 0 {
			return nil, r.aborted
		}
		if r.closed {
			return nil, errClosed
		}
		if r.readErr != nil {
			return nil, r.readErr
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			// The frame never came although the connection is healthy: a
			// peer process is alive but stuck. Attribute the failure to the
			// rank with the stalest heartbeat — the best liveness signal we
			// have — and record it sticky so every other collective on this
			// ring fails the same way.
			rf := &RankFailure{Rank: r.suspectLocked(), Cause: fmt.Errorf(
				"rank %d waited %v for a %q frame (collective timeout)", r.rank, r.collTimeout, name)}
			r.failure = rf
			return nil, rf
		}
		r.cond.Wait()
	}
}

// suspectLocked picks the rank with the stalest heartbeat (r.mu held).
// Returns -1 when heartbeats are off — there is nothing to attribute with.
func (r *Ring) suspectLocked() int {
	if r.hbInterval <= 0 {
		return -1
	}
	suspect, oldest := -1, time.Time{}
	for i := range r.health {
		if i == r.rank {
			continue
		}
		if suspect < 0 || r.health[i].last.Before(oldest) {
			suspect, oldest = i, r.health[i].last
		}
	}
	return suspect
}

// abortErr returns the poisoning error if the given epoch is aborted (see
// pop for the epoch-0 exemption) or a rank failure is recorded (which
// poisons every epoch).
func (r *Ring) abortErr(epoch int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failure != nil {
		return r.failure
	}
	if r.aborted != nil && r.abortEpoch >= epoch && epoch > 0 {
		return r.aborted
	}
	return nil
}

// sendData writes one data frame to the next rank and returns its wire
// size.
func (r *Ring) sendData(name string, pass byte, origin byte, epoch int64, chunk uint32, payload []float64) (int64, error) {
	f := &frame{kind: frameData, origin: origin, pass: pass, epoch: epoch, chunk: chunk, name: name, payload: payload}
	if err := r.sendFrame(f); err != nil {
		return 0, err
	}
	return frameWireSize(f), nil
}

// expect dequeues a data frame and validates its identity — any mismatch
// is a protocol bug surfaced as an attributed error, not silent corruption.
func (r *Ring) expect(name string, epoch int64, pass byte, chunk uint32, n int) (*frame, error) {
	f, err := r.pop(name, epoch)
	if err != nil {
		return nil, err
	}
	if f.pass != pass || f.chunk != chunk || len(f.payload) != n {
		return nil, fmt.Errorf("transport: rank %d %q frame mismatch: got pass %d chunk %d len %d, want pass %d chunk %d len %d",
			r.rank, name, f.pass, f.chunk, len(f.payload), pass, chunk, n)
	}
	return f, nil
}

// AllReduce implements the chunked chain all-reduce described on Ring.
func (r *Ring) AllReduce(name string, dst, base []float64, parts [][]float64) (int64, error) {
	if err := checkReduceArgs(dst, base, parts); err != nil {
		return 0, err
	}
	epoch := r.epoch.Load()
	if err := r.abortErr(epoch); err != nil {
		return 0, err
	}
	n := len(dst)
	var sent int64
	last := r.rank == r.size-1
	// Reduce pass: partials flow rank 0 -> 1 -> ... -> W-1, each rank
	// folding its own parts in ascending order. Rank W-1 owns the
	// completed chunk and starts the distribution pass.
	for lo, idx := 0, uint32(0); lo < n || n == 0; lo, idx = lo+r.chunk, idx+1 {
		hi := lo + r.chunk
		if hi > n {
			hi = n
		}
		if r.rank == 0 {
			foldInto(dst, base, parts, lo, hi)
			nb, err := r.sendData(name, passReduce, 0, epoch, idx, dst[lo:hi])
			if err != nil {
				return sent, err
			}
			sent += nb
		} else {
			f, err := r.expect(name, epoch, passReduce, idx, hi-lo)
			if err != nil {
				return sent, err
			}
			copy(dst[lo:hi], f.payload)
			addParts(dst, parts, lo, hi)
			r.putPayload(f.payload)
			pass := passReduce
			if last {
				pass = passFinal // chunk complete; start the distribution pass
			}
			nb, err := r.sendData(name, pass, byte(r.rank), epoch, idx, dst[lo:hi])
			if err != nil {
				return sent, err
			}
			sent += nb
		}
		if n == 0 {
			break
		}
	}
	if last {
		return sent, nil // dst completed during the reduce pass
	}
	// Distribution pass: completed chunks flow W-1 -> 0 -> ... -> W-2;
	// every rank copies them into dst and forwards until the rank before
	// the originator.
	forward := r.rank != r.size-2
	for lo, idx := 0, uint32(0); lo < n || n == 0; lo, idx = lo+r.chunk, idx+1 {
		hi := lo + r.chunk
		if hi > n {
			hi = n
		}
		f, err := r.expect(name, epoch, passFinal, idx, hi-lo)
		if err != nil {
			return sent, err
		}
		copy(dst[lo:hi], f.payload)
		if forward {
			nb, err := r.sendData(name, passFinal, f.origin, epoch, idx, f.payload)
			if err != nil {
				return sent, err
			}
			sent += nb
		}
		r.putPayload(f.payload)
		if n == 0 {
			break
		}
	}
	return sent, nil
}

// ReduceScatter shares AllReduce's chain implementation: the whole reduced
// vector is delivered, of which the caller's shard is the guaranteed part.
// The full chain keeps the deterministic fold-order contract — a
// bandwidth-optimal rotated reduce-scatter would fold each chunk in a
// different rank order and break bit-identity across transports.
func (r *Ring) ReduceScatter(name string, dst, base []float64, parts [][]float64) (int64, error) {
	return r.AllReduce(name, dst, base, parts)
}

// AllGather rotates shards around the ring: every rank sends its own shard
// first, then forwards each received shard until the rank before its
// owner; after Size-1 steps every rank holds every shard.
func (r *Ring) AllGather(name string, buf []float64) (int64, error) {
	epoch := r.epoch.Load()
	if err := r.abortErr(epoch); err != nil {
		return 0, err
	}
	n := len(buf)
	var sent int64
	// Send own shard, chunked.
	olo, ohi := ShardRange(n, r.rank, r.size)
	for lo, idx := olo, uint32(0); lo < ohi; lo, idx = lo+r.chunk, idx+1 {
		hi := lo + r.chunk
		if hi > ohi {
			hi = ohi
		}
		nb, err := r.sendData(name, passGather, byte(r.rank), epoch, idx, buf[lo:hi])
		if err != nil {
			return sent, err
		}
		sent += nb
	}
	// Receive the other Size-1 shards in deterministic arrival order:
	// prev's own shard first, then the shards prev forwarded, each one
	// ring-step older.
	for s := 1; s < r.size; s++ {
		owner := (r.rank - s + r.size) % r.size
		slo, shi := ShardRange(n, owner, r.size)
		forward := (r.rank+1)%r.size != owner
		for lo, idx := slo, uint32(0); lo < shi; lo, idx = lo+r.chunk, idx+1 {
			hi := lo + r.chunk
			if hi > shi {
				hi = shi
			}
			f, err := r.expect(name, epoch, passGather, idx, hi-lo)
			if err != nil {
				return sent, err
			}
			if int(f.origin) != owner {
				return sent, fmt.Errorf("transport: rank %d all-gather %q: got shard of rank %d, want rank %d",
					r.rank, name, f.origin, owner)
			}
			copy(buf[lo:hi], f.payload)
			if forward {
				nb, err := r.sendData(name, passGather, f.origin, epoch, idx, f.payload)
				if err != nil {
					return sent, err
				}
				sent += nb
			}
			r.putPayload(f.payload)
		}
	}
	return sent, nil
}

// Broadcast sends root's buf around the ring; every other rank copies and
// forwards until the rank before root.
func (r *Ring) Broadcast(name string, root int, buf []float64) (int64, error) {
	if root < 0 || root >= r.size {
		return 0, fmt.Errorf("transport: broadcast root %d out of range for %d ranks", root, r.size)
	}
	epoch := r.epoch.Load()
	if err := r.abortErr(epoch); err != nil {
		return 0, err
	}
	n := len(buf)
	var sent int64
	if r.rank == root {
		for lo, idx := 0, uint32(0); lo < n; lo, idx = lo+r.chunk, idx+1 {
			hi := lo + r.chunk
			if hi > n {
				hi = n
			}
			nb, err := r.sendData(name, passBcast, byte(root), epoch, idx, buf[lo:hi])
			if err != nil {
				return sent, err
			}
			sent += nb
		}
		return sent, nil
	}
	forward := (r.rank+1)%r.size != root
	for lo, idx := 0, uint32(0); lo < n; lo, idx = lo+r.chunk, idx+1 {
		hi := lo + r.chunk
		if hi > n {
			hi = n
		}
		f, err := r.expect(name, epoch, passBcast, idx, hi-lo)
		if err != nil {
			return sent, err
		}
		copy(buf[lo:hi], f.payload)
		if forward {
			nb, err := r.sendData(name, passBcast, f.origin, epoch, idx, f.payload)
			if err != nil {
				return sent, err
			}
			sent += nb
		}
		r.putPayload(f.payload)
	}
	return sent, nil
}

// Wire format (little-endian):
//
//	u8 kind | u8 origin | u8 pass | u8 reserved | u64 epoch | u32 chunk |
//	u32 count | u16 nameLen | name | payload
//
// payload is count float64 values for data frames, a count-byte reason
// string for abort and failure frames, absent for hello and heartbeat
// frames.
const frameHeaderSize = 1 + 1 + 1 + 1 + 8 + 4 + 4 + 2

func frameWireSize(f *frame) int64 {
	n := int64(frameHeaderSize) + int64(len(f.name))
	if f.kind == frameData {
		n += int64(len(f.payload)) * 8
	} else if f.kind == frameAbort || f.kind == frameFailure {
		n += int64(len(f.reason))
	}
	return n
}

func (r *Ring) sendFrame(f *frame) error {
	size := frameWireSize(f)
	r.wmu.Lock()
	defer r.wmu.Unlock()
	if r.closing.Load() {
		return errClosed // racing our own Close: decline silently
	}
	if r.wireTimeout > 0 {
		// Write-side wire deadline, re-armed at half-life so the hot path
		// pays one time.Now and the occasional SetWriteDeadline. A write
		// stuck longer than ~1.5x the timeout means the peer stopped
		// draining — its reader is gone.
		if now := time.Now(); now.After(r.wdeadArm) {
			_ = r.next.SetWriteDeadline(now.Add(r.wireTimeout))
			r.wdeadArm = now.Add(r.wireTimeout / 2)
		}
	}
	if cap(r.wscr) < int(size) {
		r.wscr = make([]byte, size)
	}
	b := r.wscr[:size]
	b[0], b[1], b[2], b[3] = f.kind, f.origin, f.pass, 0
	binary.LittleEndian.PutUint64(b[4:], uint64(f.epoch))
	binary.LittleEndian.PutUint32(b[12:], f.chunk)
	off := frameHeaderSize + len(f.name)
	copy(b[frameHeaderSize:], f.name)
	switch f.kind {
	case frameData:
		binary.LittleEndian.PutUint32(b[16:], uint32(len(f.payload)))
		binary.LittleEndian.PutUint16(b[20:], uint16(len(f.name)))
		for _, v := range f.payload {
			binary.LittleEndian.PutUint64(b[off:], math.Float64bits(v))
			off += 8
		}
	case frameAbort, frameFailure:
		binary.LittleEndian.PutUint32(b[16:], uint32(len(f.reason)))
		binary.LittleEndian.PutUint16(b[20:], uint16(len(f.name)))
		copy(b[off:], f.reason)
	default:
		binary.LittleEndian.PutUint32(b[16:], 0)
		binary.LittleEndian.PutUint16(b[20:], uint16(len(f.name)))
	}
	if _, err := r.wbuf.Write(b); err != nil {
		return r.sendErr(err)
	}
	// Flush per frame: chunk pipelining depends on partials reaching the
	// next rank as soon as they are folded, not when a buffer fills.
	if err := r.wbuf.Flush(); err != nil {
		return r.sendErr(err)
	}
	r.bytes.Add(size)
	return nil
}

// sendErr classifies a wire-write error (wmu held). A write can only fail
// when our own ring is tearing down (silent errClosed) or the next rank
// stopped draining its connection — a peer failure, recorded sticky and
// attributed. A failure already recorded wins over fabricating a new one:
// when a third rank died first, the next rank may have torn down in
// *response* (it regrouped before we finished writing), and attributing
// the broken pipe to it would misname the root cause.
func (r *Ring) sendErr(err error) error {
	if r.closing.Load() {
		return errClosed
	}
	nextRank := (r.rank + 1) % r.size
	r.mu.Lock()
	if r.failure == nil {
		r.failure = &RankFailure{Rank: nextRank, Cause: fmt.Errorf("rank %d writing to rank %d: %v", r.rank, nextRank, err)}
	}
	rf := r.failure
	r.mu.Unlock()
	r.cond.Broadcast()
	return rf
}

// readFrame decodes one frame off the wire. Only the reader goroutine (and
// DialRing's hello exchange, which precedes it) may call this: the decode
// scratch and the name-intern map are single-owner state.
func (r *Ring) readFrame(br *bufio.Reader) (*frame, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	var f *frame
	if hdr[0] == frameHeartbeat {
		// Heartbeats are consumed inline by the reader and never queued, so
		// they decode into the reader-owned scratch frame — steady-state
		// liveness traffic costs zero allocations.
		f = &r.hbRecv
		*f = frame{}
	} else {
		f = &frame{}
	}
	f.kind = hdr[0]
	f.origin = hdr[1]
	f.pass = hdr[2]
	f.epoch = int64(binary.LittleEndian.Uint64(hdr[4:]))
	f.chunk = binary.LittleEndian.Uint32(hdr[12:])
	count := binary.LittleEndian.Uint32(hdr[16:])
	nameLen := binary.LittleEndian.Uint16(hdr[20:])
	if nameLen > 0 {
		if cap(r.rscr) < int(nameLen) {
			r.rscr = make([]byte, nameLen)
		}
		nb := r.rscr[:nameLen]
		if _, err := io.ReadFull(br, nb); err != nil {
			return nil, err
		}
		// Intern: the same collective names recur every step, and a
		// map[string] lookup keyed by string(bytes) does not allocate.
		s, ok := r.names[string(nb)]
		if !ok {
			s = string(nb)
			r.names[s] = s
		}
		f.name = s
	}
	switch f.kind {
	case frameData:
		if count > (1 << 28) {
			return nil, fmt.Errorf("transport: oversized frame (%d floats)", count)
		}
		need := int(count) * 8
		if cap(r.rscr) < need {
			r.rscr = make([]byte, need)
		}
		raw := r.rscr[:need]
		if _, err := io.ReadFull(br, raw); err != nil {
			return nil, err
		}
		f.payload = r.getPayload(int(count))
		for i := range f.payload {
			f.payload[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		}
	case frameAbort, frameFailure:
		if count > (1 << 20) {
			return nil, fmt.Errorf("transport: oversized abort reason (%d bytes)", count)
		}
		raw := make([]byte, count)
		if _, err := io.ReadFull(br, raw); err != nil {
			return nil, err
		}
		f.reason = string(raw)
	}
	return f, nil
}

// heartbeatLoop sends this rank's liveness beacon to the next rank every
// interval, carrying the current epoch and the last round's wall time. It
// reuses the sender-owned scratch frame — heartbeats allocate nothing.
func (r *Ring) heartbeatLoop() {
	t := time.NewTicker(r.hbInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stopC:
			return
		case <-t.C:
		}
		f := &r.hbSend
		*f = frame{kind: frameHeartbeat, origin: byte(r.rank), epoch: r.epoch.Load(), chunk: r.roundUS.Load()}
		if r.sendFrame(f) != nil {
			return // closed, or the failure path owns liveness now
		}
	}
}

// timeoutLoop periodically wakes blocked pop calls so they can notice an
// expired collective deadline — sync.Cond has no timed wait. Only runs
// when a collective timeout is configured.
func (r *Ring) timeoutLoop() {
	period := r.collTimeout / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-r.stopC:
			return
		case <-t.C:
			r.cond.Broadcast()
		}
	}
}
