package transport

import "fmt"

// Loopback is the degenerate single-rank group: the refactor of the
// engine's original in-process pooled-buffer collective into the Group
// interface, and the parity reference every wire transport is tested
// against. AllReduce is exactly the historical reduceGrads fold — copy the
// base, add each part in ascending order — so routing the engine's
// collectives through a Loopback group is bit-identical to (and as
// allocation-free as) the pre-transport code path.
type Loopback struct{}

// Rank returns 0 — a loopback group has one member.
func (Loopback) Rank() int { return 0 }

// Size returns 1.
func (Loopback) Size() int { return 1 }

// AllReduce folds base and parts into dst in the fixed ascending order.
func (Loopback) AllReduce(name string, dst, base []float64, parts [][]float64) (int64, error) {
	if err := checkReduceArgs(dst, base, parts); err != nil {
		return 0, err
	}
	foldInto(dst, base, parts, 0, len(dst))
	return 0, nil
}

// ReduceScatter is AllReduce: with one rank the shard is the whole buffer.
func (l Loopback) ReduceScatter(name string, dst, base []float64, parts [][]float64) (int64, error) {
	return l.AllReduce(name, dst, base, parts)
}

// AllGather is a no-op: the single rank's shard is already the whole buffer.
func (Loopback) AllGather(name string, buf []float64) (int64, error) { return 0, nil }

// Broadcast is a no-op for root 0 (the only valid root).
func (Loopback) Broadcast(name string, root int, buf []float64) (int64, error) {
	if root != 0 {
		return 0, fmt.Errorf("transport: loopback broadcast root %d out of range", root)
	}
	return 0, nil
}

// BeginRound is a no-op: nothing is in flight in-process.
func (Loopback) BeginRound() {}

// Abort is a no-op: there are no peers to unblock.
func (Loopback) Abort(reason error) {}

// BytesOnWire returns 0: loopback collectives never touch a wire.
func (Loopback) BytesOnWire() int64 { return 0 }

// Close is a no-op.
func (Loopback) Close() error { return nil }
