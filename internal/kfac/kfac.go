// Package kfac implements Kronecker-Factored Approximate Curvature
// (Martens & Grosse, 2015) as described in §2.3 of the PipeFisher paper:
// per-layer Kronecker factors A_l = ⟨a a^T⟩ and B_l = ⟨e e^T⟩ estimated from
// mini-batch activations and error signals, Cholesky-based inversion with
// factored Tikhonov damping, and gradient preconditioning
// ĝ_l = B_l⁻¹ G_l A_l⁻¹ via the (A ⊗ B)⁻¹ vec identity.
//
// The package deliberately separates the three kinds of K-FAC work the
// paper schedules independently (curvature, inversion, precondition) so the
// pipeline scheduler can interleave them with forward/backward work, and so
// stale inverses can precondition fresh gradients exactly as in §3.1.
package kfac

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// ErrNoStats is returned when curvature work is requested for a layer that
// has not captured activation/error statistics.
var ErrNoStats = errors.New("kfac: layer has no captured statistics (enable CaptureKFAC and run forward+backward)")

// LayerState holds the K-FAC state of a single fully-connected layer.
type LayerState struct {
	// Layer is the underlying dense layer whose gradients are
	// preconditioned.
	Layer *nn.Dense
	// A and B are the exponential moving averages of the Kronecker
	// factors: A is din x din, B is dout x dout.
	A, B *tensor.Matrix
	// AInv and BInv are the cached inverses used for preconditioning; they
	// may be stale relative to A and B (the paper refreshes them every few
	// pipeline steps).
	AInv, BInv *tensor.Matrix
	// CurvatureUpdates counts curvature refreshes; InverseUpdates counts
	// inversion refreshes. InverseAge counts preconditioning steps since
	// the inverses were last refreshed (the "staleness" of §3.1).
	CurvatureUpdates int
	InverseUpdates   int
	InverseAge       int

	// preTmp is the retained B⁻¹G intermediate of Precondition, so the
	// per-step preconditioning allocates nothing in steady state.
	preTmp *tensor.Matrix
}

// HasInverses reports whether the layer has usable cached inverses.
func (s *LayerState) HasInverses() bool { return s.AInv != nil && s.BInv != nil }

// Options configure a Preconditioner.
type Options struct {
	// Damping is the Tikhonov damping λ added (in factored form) before
	// inversion. Typical values 1e-3..1e-1.
	Damping float64
	// StatDecay is the EMA decay for the Kronecker factors; 0 replaces the
	// factors entirely at each curvature refresh.
	StatDecay float64
	// UsePiDamping enables the factored damping split of Martens & Grosse:
	// A gets π·sqrt(λ) and B gets sqrt(λ)/π with π = sqrt((tr A/din)/(tr B/dout)).
	UsePiDamping bool
}

// DefaultOptions mirror common K-FAC practice for transformer pretraining.
func DefaultOptions() Options {
	return Options{Damping: 1e-2, StatDecay: 0.95, UsePiDamping: true}
}

// Preconditioner manages the K-FAC state of a set of dense layers.
type Preconditioner struct {
	opts   Options
	states []*LayerState
}

// NewPreconditioner registers the given layers for K-FAC and enables their
// statistics capture.
func NewPreconditioner(layers []*nn.Dense, opts Options) *Preconditioner {
	if opts.Damping < 0 {
		panic(fmt.Sprintf("kfac: negative damping %g", opts.Damping))
	}
	if opts.StatDecay < 0 || opts.StatDecay >= 1 {
		panic(fmt.Sprintf("kfac: StatDecay must be in [0,1), got %g", opts.StatDecay))
	}
	p := &Preconditioner{opts: opts}
	for _, l := range layers {
		l.CaptureKFAC = true
		p.states = append(p.states, &LayerState{Layer: l})
	}
	return p
}

// States exposes the per-layer K-FAC state (read-mostly; used by tests and
// the scheduler).
func (p *Preconditioner) States() []*LayerState { return p.states }

// NumLayers returns the number of registered layers.
func (p *Preconditioner) NumLayers() int { return len(p.states) }

// UpdateCurvature computes fresh Kronecker factors for every registered
// layer from the statistics captured during the latest forward/backward.
//
// lossScale is the number of terms the training loss averaged over (e.g.
// the count of masked tokens): with a mean-reduced loss the captured output
// gradients are dL/dy_i = (1/M) dl_i/dy_i, so the per-example errors of the
// empirical Fisher (§2.2) are e_i = M·(dL/dy_i) and
// B_l = (1/N) Σ e e^T = (M²/N) · Ḡ^T Ḡ where Ḡ stacks the captured rows.
func (p *Preconditioner) UpdateCurvature(lossScale float64) error {
	for _, s := range p.states {
		if err := p.updateLayerCurvature(s, lossScale); err != nil {
			return fmt.Errorf("layer %q: %w", s.Layer.Name, err)
		}
	}
	return nil
}

// UpdateCurvatureLayer refreshes the factors of a single registered layer
// (identified by index), used by schedules that spread curvature work.
func (p *Preconditioner) UpdateCurvatureLayer(index int, lossScale float64) error {
	if index < 0 || index >= len(p.states) {
		return fmt.Errorf("kfac: layer index %d out of range [0,%d)", index, len(p.states))
	}
	return p.updateLayerCurvature(p.states[index], lossScale)
}

func (p *Preconditioner) updateLayerCurvature(s *LayerState, lossScale float64) error {
	acts, grads, ok := s.Layer.KFACStats()
	if !ok {
		return ErrNoStats
	}
	n := float64(acts.Rows)
	if n == 0 {
		return ErrNoStats
	}
	// A = (1/N) X^T X ; B = (M²/N) Ḡ^T Ḡ  (see UpdateCurvature). The
	// products are pooled temporaries: foldFactors copies them into the
	// retained EMA state, so they go straight back to the workspace pool.
	newA := tensor.TMatMul(acts, acts)
	newA.ScaleInPlace(1 / n)
	newB := tensor.TMatMul(grads, grads)
	newB.ScaleInPlace(lossScale * lossScale / n)
	p.foldFactors(s, newA, newB)
	tensor.Put(newA)
	tensor.Put(newB)
	return nil
}

// foldFactors applies one curvature refresh to the layer's EMA state: the
// factors are replaced outright on the first refresh (or with zero decay)
// and decay-blended otherwise. Both curvature entry points —
// UpdateCurvature's capture-buffer path and the executor's SetFactors —
// fold through here so their semantics cannot diverge. newA and newB are
// never retained — they are copied into layer-owned EMA buffers, so
// callers passing pooled matrices may Put them immediately after.
func (p *Preconditioner) foldFactors(s *LayerState, newA, newB *tensor.Matrix) {
	decay := p.opts.StatDecay
	switch {
	case s.A == nil:
		s.A, s.B = newA.Clone(), newB.Clone()
	case decay == 0:
		s.A.CopyFrom(newA)
		s.B.CopyFrom(newB)
	default:
		s.A.ScaleInPlace(decay)
		s.A.AddScaledInPlace(1-decay, newA)
		s.B.ScaleInPlace(decay)
		s.B.AddScaledInPlace(1-decay, newB)
	}
	s.CurvatureUpdates++
}

// SetFactors applies one curvature refresh to the layer at index from
// externally accumulated full-batch factors: newA = (1/N) Σ a a^T and
// newB = (M²/N) Σ ē ē^T, exactly the quantities UpdateCurvature derives from
// the capture buffers. The pipeline execution engine uses this entry point
// because it accumulates the per-micro-batch partial products inside the
// scheduled Curvature ops (bubble work) and only folds them into the EMA
// here, once every micro-batch's contribution is in. The factors remain
// owned by the caller (pooled callers may Put them right after).
func (p *Preconditioner) SetFactors(index int, newA, newB *tensor.Matrix) error {
	if index < 0 || index >= len(p.states) {
		return fmt.Errorf("kfac: layer index %d out of range [0,%d)", index, len(p.states))
	}
	if newA == nil || newB == nil {
		return fmt.Errorf("kfac: SetFactors requires both factors, got A=%v B=%v", newA != nil, newB != nil)
	}
	s := p.states[index]
	if newA.Rows != s.Layer.DIn() || newB.Rows != s.Layer.DOut() {
		return fmt.Errorf("kfac: layer %q factor shapes %dx%d/%dx%d do not match din=%d dout=%d",
			s.Layer.Name, newA.Rows, newA.Cols, newB.Rows, newB.Cols, s.Layer.DIn(), s.Layer.DOut())
	}
	p.foldFactors(s, newA, newB)
	return nil
}

// InvertFactor refreshes a single cached inverse (B when factorB is set,
// A otherwise) of the layer at index — the atomic unit of the paper's
// inversion work, one scheduled Inversion op per Kronecker factor. Both
// factors must hold curvature (the engine orders inversion after the
// layer's full curvature refresh, since the factored damping couples the
// pair through their traces). InverseUpdates counts once per refreshed
// pair, on the B factor.
func (p *Preconditioner) InvertFactor(index int, factorB bool) error {
	if index < 0 || index >= len(p.states) {
		return fmt.Errorf("kfac: layer index %d out of range [0,%d)", index, len(p.states))
	}
	s := p.states[index]
	if s.A == nil || s.B == nil {
		return fmt.Errorf("kfac: no curvature for layer %q yet", s.Layer.Name)
	}
	dampA, dampB := p.factoredDamping(s)
	if factorB {
		binv, err := dampedInverse(s.B, dampB)
		if err != nil {
			return fmt.Errorf("inverting B of %q: %w", s.Layer.Name, err)
		}
		s.BInv = binv
		s.InverseUpdates++
	} else {
		ainv, err := dampedInverse(s.A, dampA)
		if err != nil {
			return fmt.Errorf("inverting A of %q: %w", s.Layer.Name, err)
		}
		s.AInv = ainv
	}
	s.InverseAge = 0
	return nil
}

// dampedInverse computes (m + damp*I)⁻¹ with the damped copy cycling
// through the tensor workspace pool instead of being freshly allocated at
// every inversion refresh.
func dampedInverse(m *tensor.Matrix, damp float64) (*tensor.Matrix, error) {
	work := tensor.GetClone(m)
	defer tensor.Put(work)
	work.AddDiagonalInPlace(damp)
	return tensor.SPDInverse(work, 0)
}

// UpdateInverses refreshes the cached inverses of every registered layer.
func (p *Preconditioner) UpdateInverses() error {
	return p.UpdateInversesFor(nil)
}

// UpdateInversesFor refreshes the inverses of the layers with the given
// indices (nil means all). This is the unit of "inversion parallelism"
// (§2.3.2, Figure 2(ii,b)): different devices invert different layers.
func (p *Preconditioner) UpdateInversesFor(indices []int) error {
	if indices == nil {
		indices = make([]int, len(p.states))
		for i := range indices {
			indices[i] = i
		}
	}
	for _, i := range indices {
		if i < 0 || i >= len(p.states) {
			return fmt.Errorf("kfac: layer index %d out of range [0,%d)", i, len(p.states))
		}
		if err := p.invertLayer(p.states[i]); err != nil {
			return fmt.Errorf("layer %q: %w", p.states[i].Layer.Name, err)
		}
	}
	return nil
}

func (p *Preconditioner) invertLayer(s *LayerState) error {
	if s.A == nil || s.B == nil {
		return fmt.Errorf("kfac: no curvature for layer %q yet", s.Layer.Name)
	}
	dampA, dampB := p.factoredDamping(s)
	ainv, err := dampedInverse(s.A, dampA)
	if err != nil {
		return fmt.Errorf("inverting A: %w", err)
	}
	binv, err := dampedInverse(s.B, dampB)
	if err != nil {
		return fmt.Errorf("inverting B: %w", err)
	}
	s.AInv, s.BInv = ainv, binv
	s.InverseUpdates++
	s.InverseAge = 0
	return nil
}

// factoredDamping splits the damping λ between the two factors. With
// UsePiDamping the split follows Martens & Grosse's π heuristic; otherwise
// each factor receives sqrt(λ) so that the implied damping on A ⊗ B is λ
// (plus cross terms).
func (p *Preconditioner) factoredDamping(s *LayerState) (dampA, dampB float64) {
	lambda := p.opts.Damping
	root := math.Sqrt(lambda)
	if !p.opts.UsePiDamping {
		return root, root
	}
	trA := s.A.Trace() / float64(s.A.Rows)
	trB := s.B.Trace() / float64(s.B.Rows)
	if trA <= 0 || trB <= 0 {
		return root, root
	}
	pi := math.Sqrt(trA / trB)
	return root * pi, root / pi
}

// Precondition replaces each registered layer's weight gradient G_l with
// B_l⁻¹ G_l A_l⁻¹ using the cached (possibly stale) inverses, and
// increments their staleness counters. Layers without cached inverses are
// left untouched — exactly the paper's rule that the first preconditioning
// uses whatever inverses exist ("the first precondition ... is performed
// with the stale inverse matrices calculated at previous steps", Figure 1).
// It returns the number of layers that were preconditioned.
func (p *Preconditioner) Precondition() int {
	var done int
	for _, s := range p.states {
		if !s.HasInverses() {
			continue
		}
		g := s.Layer.GW // dout x din
		// B⁻¹ G into the retained intermediate, then (B⁻¹G) A⁻¹ straight
		// back into G — no per-step allocation.
		s.preTmp = tensor.Reuse(s.preTmp, g.Rows, g.Cols)
		tensor.MatMulInto(s.preTmp, s.BInv, g)
		tensor.MatMulInto(g, s.preTmp, s.AInv)
		s.InverseAge++
		done++
	}
	return done
}

// PreconditionedGradient returns B⁻¹ G A⁻¹ for the layer at index without
// mutating its gradient (reference computation for tests).
func (p *Preconditioner) PreconditionedGradient(index int) (*tensor.Matrix, error) {
	if index < 0 || index >= len(p.states) {
		return nil, fmt.Errorf("kfac: layer index %d out of range", index)
	}
	s := p.states[index]
	if !s.HasInverses() {
		return nil, fmt.Errorf("kfac: layer %q has no inverses", s.Layer.Name)
	}
	tmp := tensor.MatMul(s.BInv, s.Layer.GW)
	out := tensor.MatMul(tmp, s.AInv)
	tensor.Put(tmp)
	return out, nil
}

// MaxInverseAge returns the largest staleness among layers that have
// inverses (0 if none do).
func (p *Preconditioner) MaxInverseAge() int {
	var mx int
	for _, s := range p.states {
		if s.HasInverses() && s.InverseAge > mx {
			mx = s.InverseAge
		}
	}
	return mx
}
