package kfac

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// The factor-granular path the pipeline executor uses — SetFactors with
// externally accumulated products followed by per-factor InvertFactor —
// must reproduce the monolithic UpdateCurvature + UpdateInverses path
// exactly.
func TestGranularPathMatchesMonolithic(t *testing.T) {
	rng := tensor.NewRNG(42)
	build := func() *nn.Dense { return nn.NewDense("probe", 6, 4, tensor.NewRNG(1)) }
	runLayer := func(l *nn.Dense) {
		x := tensor.RandN(rng, 8, 6, 1)
		y := l.Forward(x)
		g := tensor.RandN(rng, y.Rows, y.Cols, 0.1)
		l.Backward(g)
	}
	opts := Options{Damping: 1e-2, StatDecay: 0.9, UsePiDamping: true}
	const lossScale = 5.0

	// Monolithic reference.
	l1 := build()
	p1 := NewPreconditioner([]*nn.Dense{l1}, opts)
	rng = tensor.NewRNG(42)
	runLayer(l1)
	if err := p1.UpdateCurvature(lossScale); err != nil {
		t.Fatal(err)
	}
	if err := p1.UpdateInverses(); err != nil {
		t.Fatal(err)
	}

	// Granular path over identical statistics.
	l2 := build()
	p2 := NewPreconditioner([]*nn.Dense{l2}, opts)
	rng = tensor.NewRNG(42)
	runLayer(l2)
	acts, grads, ok := l2.KFACStats()
	if !ok {
		t.Fatal("no stats captured")
	}
	n := float64(acts.Rows)
	newA := tensor.TMatMul(acts, acts)
	newA.ScaleInPlace(1 / n)
	newB := tensor.TMatMul(grads, grads)
	newB.ScaleInPlace(lossScale * lossScale / n)
	if err := p2.SetFactors(0, newA, newB); err != nil {
		t.Fatal(err)
	}
	if err := p2.InvertFactor(0, false); err != nil {
		t.Fatal(err)
	}
	if err := p2.InvertFactor(0, true); err != nil {
		t.Fatal(err)
	}

	s1, s2 := p1.States()[0], p2.States()[0]
	for _, pair := range []struct {
		name string
		a, b *tensor.Matrix
	}{
		{"A", s1.A, s2.A}, {"B", s1.B, s2.B},
		{"AInv", s1.AInv, s2.AInv}, {"BInv", s1.BInv, s2.BInv},
	} {
		if !pair.a.AllClose(pair.b, 1e-12) {
			t.Fatalf("%s differs between granular and monolithic paths (max diff %g)",
				pair.name, pair.a.Sub(pair.b).MaxAbs())
		}
	}
	if s2.CurvatureUpdates != 1 || s2.InverseUpdates != 1 {
		t.Fatalf("granular counters: curvature %d, inverses %d, want 1/1",
			s2.CurvatureUpdates, s2.InverseUpdates)
	}
}

func TestSetFactorsValidation(t *testing.T) {
	l := nn.NewDense("probe", 3, 2, tensor.NewRNG(1))
	p := NewPreconditioner([]*nn.Dense{l}, DefaultOptions())
	if err := p.SetFactors(1, tensor.Zeros(3, 3), tensor.Zeros(2, 2)); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if err := p.SetFactors(0, nil, tensor.Zeros(2, 2)); err == nil {
		t.Fatal("expected nil-factor error")
	}
	if err := p.SetFactors(0, tensor.Zeros(2, 2), tensor.Zeros(2, 2)); err == nil {
		t.Fatal("expected shape error")
	}
	if err := p.InvertFactor(0, false); err == nil {
		t.Fatal("expected no-curvature error")
	}
	if err := p.InvertFactor(2, true); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

// InvertFactor must reset staleness just like a full refresh.
func TestInvertFactorResetsAge(t *testing.T) {
	l := nn.NewDense("probe", 3, 2, tensor.NewRNG(1))
	p := NewPreconditioner([]*nn.Dense{l}, Options{Damping: 1e-2})
	a := tensor.Zeros(3, 3).AddDiagonal(1)
	b := tensor.Zeros(2, 2).AddDiagonal(1)
	if err := p.SetFactors(0, a, b); err != nil {
		t.Fatal(err)
	}
	if err := p.InvertFactor(0, false); err != nil {
		t.Fatal(err)
	}
	if err := p.InvertFactor(0, true); err != nil {
		t.Fatal(err)
	}
	x := tensor.RandN(tensor.NewRNG(3), 4, 3, 1)
	y := l.Forward(x)
	l.Backward(tensor.RandN(tensor.NewRNG(4), y.Rows, y.Cols, 1))
	if n := p.Precondition(); n != 1 {
		t.Fatalf("preconditioned %d layers, want 1", n)
	}
	if p.MaxInverseAge() != 1 {
		t.Fatalf("age %d, want 1", p.MaxInverseAge())
	}
	if err := p.InvertFactor(0, true); err != nil {
		t.Fatal(err)
	}
	if p.MaxInverseAge() != 0 {
		t.Fatalf("age %d after refresh, want 0", p.MaxInverseAge())
	}
	if math.IsNaN(p.States()[0].BInv.Data[0]) {
		t.Fatal("NaN inverse")
	}
}
