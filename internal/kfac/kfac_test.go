package kfac

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// buildLayer runs one forward/backward through a Dense layer with capture
// enabled and returns the layer plus the upstream gradient used.
func buildLayer(t *testing.T, rng *tensor.RNG, n, din, dout int) *nn.Dense {
	t.Helper()
	layer := nn.NewDense("fc", din, dout, rng)
	layer.CaptureKFAC = true
	x := tensor.RandN(rng, n, din, 1)
	y := layer.Forward(x)
	grad := tensor.RandN(rng, n, dout, 0.5)
	_ = y
	layer.Backward(grad)
	return layer
}

func TestNewPreconditionerEnablesCapture(t *testing.T) {
	rng := tensor.NewRNG(1)
	layer := nn.NewDense("fc", 3, 2, rng)
	if layer.CaptureKFAC {
		t.Fatal("capture should start disabled")
	}
	NewPreconditioner([]*nn.Dense{layer}, DefaultOptions())
	if !layer.CaptureKFAC {
		t.Fatal("NewPreconditioner must enable capture")
	}
}

func TestOptionsValidation(t *testing.T) {
	rng := tensor.NewRNG(2)
	layer := nn.NewDense("fc", 2, 2, rng)
	for _, opts := range []Options{{Damping: -1}, {StatDecay: 1}, {StatDecay: -0.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for options %+v", opts)
				}
			}()
			NewPreconditioner([]*nn.Dense{layer}, opts)
		}()
	}
}

func TestUpdateCurvatureWithoutStats(t *testing.T) {
	rng := tensor.NewRNG(3)
	layer := nn.NewDense("fc", 3, 2, rng)
	p := NewPreconditioner([]*nn.Dense{layer}, DefaultOptions())
	if err := p.UpdateCurvature(1); !errors.Is(err, ErrNoStats) {
		t.Fatalf("expected ErrNoStats, got %v", err)
	}
}

func TestCurvatureFactorShapesAndSymmetry(t *testing.T) {
	rng := tensor.NewRNG(4)
	layer := buildLayer(t, rng, 16, 5, 3)
	p := NewPreconditioner([]*nn.Dense{layer}, Options{Damping: 1e-2})
	if err := p.UpdateCurvature(16); err != nil {
		t.Fatal(err)
	}
	s := p.States()[0]
	if s.A.Rows != 5 || s.A.Cols != 5 || s.B.Rows != 3 || s.B.Cols != 3 {
		t.Fatalf("factor shapes wrong: A %dx%d B %dx%d", s.A.Rows, s.A.Cols, s.B.Rows, s.B.Cols)
	}
	if !s.A.IsSymmetric(1e-12) || !s.B.IsSymmetric(1e-12) {
		t.Fatal("Kronecker factors must be symmetric")
	}
	if s.CurvatureUpdates != 1 {
		t.Fatalf("CurvatureUpdates = %d, want 1", s.CurvatureUpdates)
	}
}

// With a single example, the Kronecker approximation is exact:
// A ⊗ B == vec(G) vec(G)^T where G = e a^T is the per-example weight
// gradient (the identity underlying §2.3).
func TestKroneckerExactForSingleExample(t *testing.T) {
	rng := tensor.NewRNG(5)
	const din, dout = 4, 3
	layer := nn.NewDense("fc", din, dout, rng)
	layer.CaptureKFAC = true
	x := tensor.RandN(rng, 1, din, 1)
	layer.Forward(x)
	g := tensor.RandN(rng, 1, dout, 1)
	layer.Backward(g)

	p := NewPreconditioner([]*nn.Dense{layer}, Options{})
	if err := p.UpdateCurvature(1); err != nil {
		t.Fatal(err)
	}
	s := p.States()[0]
	// Per-example gradient G = e a^T (dout x din); vec is column-major.
	G := tensor.Outer(g.Row(0), x.Row(0))
	v := tensor.VecColMajor(G)
	outer := tensor.Outer(v, v)
	kron := tensor.Kron(s.A, s.B)
	if !kron.AllClose(outer, 1e-10) {
		t.Fatalf("A ⊗ B != vec(G) vec(G)^T for a single example (max diff %g)",
			kron.Sub(outer).MaxAbs())
	}
}

func TestLossScaleEntersQuadratically(t *testing.T) {
	rng := tensor.NewRNG(6)
	layer := buildLayer(t, rng, 8, 4, 3)
	p1 := NewPreconditioner([]*nn.Dense{layer}, Options{})
	if err := p1.UpdateCurvature(1); err != nil {
		t.Fatal(err)
	}
	b1 := p1.States()[0].B.Clone()
	p2 := NewPreconditioner([]*nn.Dense{layer}, Options{})
	if err := p2.UpdateCurvature(10); err != nil {
		t.Fatal(err)
	}
	b100 := p2.States()[0].B
	if !b100.AllClose(b1.Scale(100), 1e-9) {
		t.Fatal("B must scale with lossScale²")
	}
}

func TestEMADecay(t *testing.T) {
	rng := tensor.NewRNG(7)
	layer := buildLayer(t, rng, 8, 4, 3)
	p := NewPreconditioner([]*nn.Dense{layer}, Options{StatDecay: 0.5})
	if err := p.UpdateCurvature(8); err != nil {
		t.Fatal(err)
	}
	first := p.States()[0].A.Clone()
	// Second update with identical stats: EMA of a constant is constant.
	if err := p.UpdateCurvature(8); err != nil {
		t.Fatal(err)
	}
	second := p.States()[0].A
	if !second.AllClose(first, 1e-10) {
		t.Fatal("EMA of constant statistics must not move")
	}
}

func TestInversionAndPrecondition(t *testing.T) {
	rng := tensor.NewRNG(8)
	layer := buildLayer(t, rng, 32, 6, 4)
	p := NewPreconditioner([]*nn.Dense{layer}, Options{Damping: 1e-2, UsePiDamping: true})
	if err := p.UpdateCurvature(32); err != nil {
		t.Fatal(err)
	}
	if n := p.Precondition(); n != 0 {
		t.Fatalf("preconditioning before inversion must be a no-op, preconditioned %d", n)
	}
	if err := p.UpdateInverses(); err != nil {
		t.Fatal(err)
	}
	s := p.States()[0]
	if !s.HasInverses() || s.InverseUpdates != 1 {
		t.Fatal("inverses not installed")
	}
	gBefore := layer.GW.Clone()
	want := tensor.MatMul(tensor.MatMul(s.BInv, gBefore), s.AInv)
	if n := p.Precondition(); n != 1 {
		t.Fatalf("expected 1 layer preconditioned, got %d", n)
	}
	if !layer.GW.AllClose(want, 1e-10) {
		t.Fatal("Precondition must compute B⁻¹ G A⁻¹")
	}
	if s.InverseAge != 1 {
		t.Fatalf("InverseAge = %d, want 1", s.InverseAge)
	}
}

func TestPreconditionEqualsKroneckerInverseVec(t *testing.T) {
	// ĝ = (A ⊗ B)⁻¹ vec(G) must equal vec(B⁻¹ G A⁻¹): the identity that
	// makes K-FAC tractable (§2.3.1). Verified through the public API.
	rng := tensor.NewRNG(9)
	layer := buildLayer(t, rng, 64, 5, 4)
	p := NewPreconditioner([]*nn.Dense{layer}, Options{Damping: 1e-1})
	if err := p.UpdateCurvature(64); err != nil {
		t.Fatal(err)
	}
	if err := p.UpdateInverses(); err != nil {
		t.Fatal(err)
	}
	s := p.States()[0]
	g := layer.GW.Clone()
	pre, err := p.PreconditionedGradient(0)
	if err != nil {
		t.Fatal(err)
	}
	// Explicit Kronecker path using the same damped inverses.
	kronInv := tensor.Kron(s.AInv, s.BInv)
	explicit := tensor.MatVec(kronInv, tensor.VecColMajor(g))
	fast := tensor.VecColMajor(pre)
	for i := range explicit {
		if math.Abs(explicit[i]-fast[i]) > 1e-9 {
			t.Fatalf("mismatch at %d: %g vs %g", i, explicit[i], fast[i])
		}
	}
}

func TestInversionParallelSubsets(t *testing.T) {
	rng := tensor.NewRNG(10)
	l1 := buildLayer(t, rng, 16, 4, 4)
	l2 := buildLayer(t, rng, 16, 4, 4)
	p := NewPreconditioner([]*nn.Dense{l1, l2}, Options{Damping: 1e-2})
	if err := p.UpdateCurvature(16); err != nil {
		t.Fatal(err)
	}
	// Invert only layer 0 (as a device in inversion parallelism would).
	if err := p.UpdateInversesFor([]int{0}); err != nil {
		t.Fatal(err)
	}
	if !p.States()[0].HasInverses() || p.States()[1].HasInverses() {
		t.Fatal("only layer 0 should have inverses")
	}
	if n := p.Precondition(); n != 1 {
		t.Fatalf("expected exactly the inverted layer preconditioned, got %d", n)
	}
	if err := p.UpdateInversesFor([]int{5}); err == nil {
		t.Fatal("expected error for out-of-range index")
	}
}

func TestInvertBeforeCurvatureFails(t *testing.T) {
	rng := tensor.NewRNG(11)
	layer := nn.NewDense("fc", 3, 2, rng)
	p := NewPreconditioner([]*nn.Dense{layer}, DefaultOptions())
	if err := p.UpdateInverses(); err == nil {
		t.Fatal("expected error when inverting before any curvature update")
	}
}

func TestRankDeficientFactorsAreRescued(t *testing.T) {
	// Micro-batch (1 token) smaller than layer width: factors are rank-1
	// and need damping to invert — the failure-injection case.
	rng := tensor.NewRNG(12)
	layer := buildLayer(t, rng, 1, 8, 8)
	p := NewPreconditioner([]*nn.Dense{layer}, Options{Damping: 1e-3})
	if err := p.UpdateCurvature(1); err != nil {
		t.Fatal(err)
	}
	if err := p.UpdateInverses(); err != nil {
		t.Fatalf("damped inversion must succeed on rank-deficient factors: %v", err)
	}
	if p.States()[0].AInv.HasNaN() || p.States()[0].BInv.HasNaN() {
		t.Fatal("NaN in damped inverses")
	}
}

func TestMaxInverseAge(t *testing.T) {
	rng := tensor.NewRNG(13)
	layer := buildLayer(t, rng, 16, 4, 4)
	p := NewPreconditioner([]*nn.Dense{layer}, Options{Damping: 1e-2})
	if p.MaxInverseAge() != 0 {
		t.Fatal("age must be 0 before any inverses exist")
	}
	if err := p.UpdateCurvature(16); err != nil {
		t.Fatal(err)
	}
	if err := p.UpdateInverses(); err != nil {
		t.Fatal(err)
	}
	p.Precondition()
	p.Precondition()
	if got := p.MaxInverseAge(); got != 2 {
		t.Fatalf("MaxInverseAge = %d, want 2", got)
	}
	if err := p.UpdateInverses(); err != nil {
		t.Fatal(err)
	}
	if got := p.MaxInverseAge(); got != 0 {
		t.Fatalf("refresh must reset age, got %d", got)
	}
}

func TestUpdateCurvatureLayerIndexValidation(t *testing.T) {
	rng := tensor.NewRNG(14)
	layer := buildLayer(t, rng, 8, 3, 3)
	p := NewPreconditioner([]*nn.Dense{layer}, Options{})
	if err := p.UpdateCurvatureLayer(1, 8); err == nil {
		t.Fatal("expected error for bad index")
	}
	if err := p.UpdateCurvatureLayer(0, 8); err != nil {
		t.Fatal(err)
	}
}

// Property: preconditioning with identity-like curvature (huge damping)
// approaches a plain scaled gradient — K-FAC degrades gracefully to SGD.
func TestLargeDampingApproachesIdentityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		din := 2 + rng.Intn(4)
		dout := 2 + rng.Intn(4)
		layer := nn.NewDense("fc", din, dout, rng)
		layer.CaptureKFAC = true
		x := tensor.RandN(rng, 8, din, 1)
		layer.Forward(x)
		layer.Backward(tensor.RandN(rng, 8, dout, 1))
		const lambda = 1e8
		p := NewPreconditioner([]*nn.Dense{layer}, Options{Damping: lambda})
		if err := p.UpdateCurvature(8); err != nil {
			return false
		}
		if err := p.UpdateInverses(); err != nil {
			return false
		}
		g := layer.GW.Clone()
		pre, err := p.PreconditionedGradient(0)
		if err != nil {
			return false
		}
		// With damping λ >> ||A||, B⁻¹GA⁻¹ ≈ G/λ (sqrt(λ) per factor).
		want := g.Scale(1 / lambda)
		return pre.AllClose(want, want.MaxAbs()*0.05+1e-15)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
