package kfac

import (
	"fmt"

	"repro/internal/tensor"
)

// Snapshot captures a Preconditioner's full numeric state — Kronecker-factor
// EMAs, cached inverses, and refresh counters for every layer — so the
// engine's round checkpoint/replay can rewind K-FAC exactly. Buffers are
// retained and reused across Save calls (plain allocations, never pooled),
// so steady-state checkpointing allocates nothing once shapes stabilize.
type Snapshot struct {
	layers []layerSnapshot
}

type layerSnapshot struct {
	a, b, ainv, binv                *tensor.Matrix
	hasA, hasB, hasAInv, hasBInv    bool
	curvUpdates, invUpdates, invAge int
}

// copyInto copies src into a retained buffer (reusing dst when shapes
// match), returning the buffer and whether src was present.
func copyInto(dst, src *tensor.Matrix) (*tensor.Matrix, bool) {
	if src == nil {
		return dst, false
	}
	dst = tensor.Reuse(dst, src.Rows, src.Cols)
	copy(dst.Data, src.Data)
	return dst, true
}

// restoreFrom copies a retained buffer into the live matrix, reusing the
// live allocation when shapes match. Absent buffers restore to nil.
func restoreFrom(live, saved *tensor.Matrix, present bool) *tensor.Matrix {
	if !present {
		return nil
	}
	live = tensor.Reuse(live, saved.Rows, saved.Cols)
	copy(live.Data, saved.Data)
	return live
}

// Save records p's current state into the snapshot, reusing retained
// buffers from previous saves.
func (s *Snapshot) Save(p *Preconditioner) {
	if len(s.layers) != len(p.states) {
		s.layers = make([]layerSnapshot, len(p.states))
	}
	for i, st := range p.states {
		ls := &s.layers[i]
		ls.a, ls.hasA = copyInto(ls.a, st.A)
		ls.b, ls.hasB = copyInto(ls.b, st.B)
		ls.ainv, ls.hasAInv = copyInto(ls.ainv, st.AInv)
		ls.binv, ls.hasBInv = copyInto(ls.binv, st.BInv)
		ls.curvUpdates = st.CurvatureUpdates
		ls.invUpdates = st.InverseUpdates
		ls.invAge = st.InverseAge
	}
}

// Restore rewinds p to the snapshot's state. The snapshot must have been
// saved from a Preconditioner with the same layer set.
func (s *Snapshot) Restore(p *Preconditioner) error {
	if len(s.layers) != len(p.states) {
		return fmt.Errorf("kfac: snapshot has %d layers, preconditioner has %d", len(s.layers), len(p.states))
	}
	for i, st := range p.states {
		ls := &s.layers[i]
		st.A = restoreFrom(st.A, ls.a, ls.hasA)
		st.B = restoreFrom(st.B, ls.b, ls.hasB)
		st.AInv = restoreFrom(st.AInv, ls.ainv, ls.hasAInv)
		st.BInv = restoreFrom(st.BInv, ls.binv, ls.hasBInv)
		st.CurvatureUpdates = ls.curvUpdates
		st.InverseUpdates = ls.invUpdates
		st.InverseAge = ls.invAge
	}
	return nil
}
