package kfac

import (
	"fmt"

	"repro/internal/tensor"
)

// Appendix A.2 of the paper proposes approximating each Kronecker factor of
// very large Transformers (d_model, d_ff beyond ~8k) by a K-block-diagonal
// matrix: "an inversion work of size 16,384 will be split into four
// inversion work of size 4,096 when K = 4". This cuts the inversion FLOPs
// by K² and the factor memory by K while keeping the
// (curvature+inversion)/bubble ratio unchanged after width scaling.
//
// BlockDiagonalInverse implements that approximation: it zeroes the
// cross-block interactions of an SPD matrix and inverts each diagonal block
// independently (with the same damping rescue as SPDInverse).

// BlockDiagonalInverse returns the block-diagonal approximate inverse of m
// using numBlocks equal blocks (the last block absorbs any remainder).
// With numBlocks = 1 it degenerates to a full SPD inversion.
func BlockDiagonalInverse(m *tensor.Matrix, numBlocks int, damping float64) (*tensor.Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("kfac: BlockDiagonalInverse needs a square matrix, got %dx%d", m.Rows, m.Cols)
	}
	if numBlocks <= 0 {
		return nil, fmt.Errorf("kfac: numBlocks must be positive, got %d", numBlocks)
	}
	n := m.Rows
	if numBlocks > n {
		numBlocks = n
	}
	if numBlocks == 1 {
		return tensor.SPDInverse(m, damping)
	}
	out := tensor.Zeros(n, n)
	blockSize := n / numBlocks
	for b := 0; b < numBlocks; b++ {
		lo := b * blockSize
		hi := lo + blockSize
		if b == numBlocks-1 {
			hi = n
		}
		size := hi - lo
		block := tensor.Zeros(size, size)
		for i := 0; i < size; i++ {
			copy(block.Row(i), m.Data[(lo+i)*n+lo:(lo+i)*n+hi])
		}
		inv, err := tensor.SPDInverse(block, damping)
		if err != nil {
			return nil, fmt.Errorf("kfac: inverting block %d: %w", b, err)
		}
		for i := 0; i < size; i++ {
			copy(out.Data[(lo+i)*n+lo:(lo+i)*n+hi], inv.Row(i))
		}
	}
	return out, nil
}

// BlockDiagonalOptions extends Options with the Appendix A.2 block count.
type BlockDiagonalOptions struct {
	Options
	// NumBlocks is K: each Kronecker factor is approximated by K diagonal
	// blocks before inversion. 1 disables the approximation.
	NumBlocks int
}

// UpdateInversesBlockDiagonal refreshes every registered layer's inverses
// using the K-block-diagonal approximation instead of the full Cholesky
// inversion.
func (p *Preconditioner) UpdateInversesBlockDiagonal(numBlocks int) error {
	if numBlocks <= 0 {
		return fmt.Errorf("kfac: numBlocks must be positive, got %d", numBlocks)
	}
	for _, s := range p.states {
		if s.A == nil || s.B == nil {
			return fmt.Errorf("kfac: no curvature for layer %q yet", s.Layer.Name)
		}
		dampA, dampB := p.factoredDamping(s)
		ainv, err := BlockDiagonalInverse(s.A.AddDiagonal(dampA), numBlocks, 0)
		if err != nil {
			return fmt.Errorf("layer %q A: %w", s.Layer.Name, err)
		}
		binv, err := BlockDiagonalInverse(s.B.AddDiagonal(dampB), numBlocks, 0)
		if err != nil {
			return fmt.Errorf("layer %q B: %w", s.Layer.Name, err)
		}
		s.AInv, s.BInv = ainv, binv
		s.InverseUpdates++
		s.InverseAge = 0
	}
	return nil
}
