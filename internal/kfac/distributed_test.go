package kfac

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// These tests verify the distributed K-FAC semantics of Figure 2: data
// parallelism with synchronized (averaged) gradients and Kronecker factors
// must produce exactly the same preconditioned update as a single device
// processing the full mini-batch, and inversion parallelism (different
// devices inverting different layers) must change nothing numerically.

// cloneDense deep-copies a layer's parameters into a fresh layer.
func cloneDense(src *nn.Dense) *nn.Dense {
	return &nn.Dense{
		Name: src.Name,
		W:    src.W.Clone(),
		B:    src.B.Clone(),
		GW:   tensor.Zeros(src.GW.Rows, src.GW.Cols),
		GB:   tensor.Zeros(src.GB.Rows, src.GB.Cols),
	}
}

func TestDataParallelKFACMatchesSingleDevice(t *testing.T) {
	rng := tensor.NewRNG(42)
	const n, din, dout = 16, 5, 4
	x := tensor.RandN(rng, n, din, 1)
	upstream := tensor.RandN(rng, n, dout, 0.25)

	// Reference: one device sees the full batch.
	ref := nn.NewDense("fc", din, dout, rng)
	refP := NewPreconditioner([]*nn.Dense{ref}, Options{Damping: 1e-2, UsePiDamping: false})
	ref.Forward(x)
	ref.GW.Zero()
	ref.Backward(upstream.Scale(1.0 / n)) // mean-reduced loss gradient
	if err := refP.UpdateCurvature(n); err != nil {
		t.Fatal(err)
	}
	if err := refP.UpdateInverses(); err != nil {
		t.Fatal(err)
	}
	refGrad := ref.GW.Clone()
	refPre, err := refP.PreconditionedGradient(0)
	if err != nil {
		t.Fatal(err)
	}

	// Two data-parallel replicas, each with half the batch. Per-replica
	// losses are means over their own halves; all-reduce averages both
	// the gradients (sync-grad) and the Kronecker factors
	// (sync-curvature), as in Figure 2(ii,b).
	half := n / 2
	rep := make([]*nn.Dense, 2)
	pres := make([]*Preconditioner, 2)
	for i := range rep {
		rep[i] = cloneDense(ref)
		pres[i] = NewPreconditioner([]*nn.Dense{rep[i]}, Options{Damping: 1e-2, UsePiDamping: false})
		lo, hi := i*half, (i+1)*half
		xi := tensor.New(half, din, append([]float64(nil), x.Data[lo*din:hi*din]...))
		gi := tensor.New(half, dout, append([]float64(nil), upstream.Data[lo*dout:hi*dout]...))
		rep[i].Forward(xi)
		rep[i].GW.Zero()
		rep[i].Backward(gi.Scale(1.0 / float64(half)))
		if err := pres[i].UpdateCurvature(float64(half)); err != nil {
			t.Fatal(err)
		}
	}
	// sync-grad: average the replicas' gradients.
	avgGrad := rep[0].GW.Add(rep[1].GW).Scale(0.5)
	if !avgGrad.AllClose(refGrad, 1e-10) {
		t.Fatalf("averaged DP gradient differs from full-batch gradient (max %g)",
			avgGrad.Sub(refGrad).MaxAbs())
	}
	// sync-curvature: average the factors, install on replica 0, invert.
	s0, s1 := pres[0].States()[0], pres[1].States()[0]
	s0.A = s0.A.Add(s1.A).Scale(0.5)
	s0.B = s0.B.Add(s1.B).Scale(0.5)
	refState := refP.States()[0]
	if !s0.A.AllClose(refState.A, 1e-10) || !s0.B.AllClose(refState.B, 1e-10) {
		t.Fatal("averaged DP Kronecker factors differ from full-batch factors")
	}
	if err := pres[0].UpdateInverses(); err != nil {
		t.Fatal(err)
	}
	rep[0].GW.CopyFrom(avgGrad)
	dpPre, err := pres[0].PreconditionedGradient(0)
	if err != nil {
		t.Fatal(err)
	}
	if !dpPre.AllClose(refPre, 1e-8) {
		t.Fatalf("DP preconditioned update differs from single device (max %g)",
			dpPre.Sub(refPre).MaxAbs())
	}
}

func TestInversionParallelismIsExact(t *testing.T) {
	// Splitting inversion work across devices (§2.3.2) is a pure
	// parallelization: every layer's inverse is computed somewhere, then
	// broadcast, so preconditioning all layers after UpdateInversesFor on
	// complementary subsets equals UpdateInverses on everything.
	rng := tensor.NewRNG(7)
	mk := func() (*Preconditioner, []*nn.Dense) {
		r := tensor.NewRNG(7) // identical init
		l1 := nn.NewDense("a", 4, 4, r)
		l2 := nn.NewDense("b", 4, 4, r)
		p := NewPreconditioner([]*nn.Dense{l1, l2}, Options{Damping: 1e-2})
		x := tensor.RandN(tensor.NewRNG(9), 8, 4, 1)
		g := tensor.RandN(tensor.NewRNG(11), 8, 4, 1)
		for _, l := range []*nn.Dense{l1, l2} {
			l.Forward(x)
			l.Backward(g)
		}
		if err := p.UpdateCurvature(8); err != nil {
			t.Fatal(err)
		}
		return p, []*nn.Dense{l1, l2}
	}
	_ = rng

	pAll, layersAll := mk()
	if err := pAll.UpdateInverses(); err != nil {
		t.Fatal(err)
	}
	pAll.Precondition()

	pSplit, layersSplit := mk()
	if err := pSplit.UpdateInversesFor([]int{0}); err != nil { // device 1 inverts layer 0
		t.Fatal(err)
	}
	if err := pSplit.UpdateInversesFor([]int{1}); err != nil { // device 2 inverts layer 1
		t.Fatal(err)
	}
	pSplit.Precondition()

	for i := range layersAll {
		if !layersAll[i].GW.AllClose(layersSplit[i].GW, 1e-12) {
			t.Fatalf("layer %d: inversion parallelism changed the update", i)
		}
	}
}
