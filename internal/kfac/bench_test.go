package kfac

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// benchPreconditioner builds a 64->64 layer with captured stats — the
// per-layer shape of the tiny-BERT experiments.
func benchPreconditioner(b *testing.B) *Preconditioner {
	b.Helper()
	rng := tensor.NewRNG(1)
	layer := nn.NewDense("fc", 64, 64, rng)
	layer.CaptureKFAC = true
	x := tensor.RandN(rng, 512, 64, 1)
	layer.Forward(x)
	layer.Backward(tensor.RandN(rng, 512, 64, 0.5))
	return NewPreconditioner([]*nn.Dense{layer}, DefaultOptions())
}

func BenchmarkUpdateCurvature(b *testing.B) {
	p := benchPreconditioner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.UpdateCurvature(512); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUpdateInverses(b *testing.B) {
	p := benchPreconditioner(b)
	if err := p.UpdateCurvature(512); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.UpdateInverses(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUpdateInversesBlockDiagonal(b *testing.B) {
	p := benchPreconditioner(b)
	if err := p.UpdateCurvature(512); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.UpdateInversesBlockDiagonal(4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrecondition(b *testing.B) {
	p := benchPreconditioner(b)
	if err := p.UpdateCurvature(512); err != nil {
		b.Fatal(err)
	}
	if err := p.UpdateInverses(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Precondition()
	}
}

// BenchmarkKFACRefreshAndPrecondition covers one full K-FAC cycle —
// curvature refresh, factor inversion, gradient preconditioning — the
// per-refresh cost the PipeFisher packer hides in pipeline bubbles. The
// KFAC-named benchmark also anchors the CI bench job's
// 'MatMul|Dense|KFAC' pattern in this package.
func BenchmarkKFACRefreshAndPrecondition(b *testing.B) {
	p := benchPreconditioner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.UpdateCurvature(512); err != nil {
			b.Fatal(err)
		}
		if err := p.UpdateInverses(); err != nil {
			b.Fatal(err)
		}
		p.Precondition()
	}
}
