package kfac

import (
	"testing"
	"testing/quick"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestBlockDiagonalInverseValidation(t *testing.T) {
	if _, err := BlockDiagonalInverse(tensor.Zeros(2, 3), 2, 0); err == nil {
		t.Fatal("expected error for rectangular input")
	}
	if _, err := BlockDiagonalInverse(tensor.Eye(4), 0, 0); err == nil {
		t.Fatal("expected error for zero blocks")
	}
}

func TestBlockDiagonalInverseOneBlockIsFullInverse(t *testing.T) {
	rng := tensor.NewRNG(1)
	m := tensor.RandSPD(rng, 6, 1)
	full, err := tensor.SPDInverse(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	one, err := BlockDiagonalInverse(m, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !one.AllClose(full, 1e-10) {
		t.Fatal("numBlocks=1 must equal the full inverse")
	}
}

func TestBlockDiagonalExactWhenMatrixIsBlockDiagonal(t *testing.T) {
	// If the true matrix is exactly block diagonal, the approximation is
	// exact — the Appendix A.2 best case.
	rng := tensor.NewRNG(2)
	a := tensor.RandSPD(rng, 4, 1)
	b := tensor.RandSPD(rng, 4, 1)
	m := tensor.Zeros(8, 8)
	for i := 0; i < 4; i++ {
		copy(m.Data[i*8:i*8+4], a.Row(i))
		copy(m.Data[(4+i)*8+4:(4+i)*8+8], b.Row(i))
	}
	full, err := tensor.SPDInverse(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := BlockDiagonalInverse(m, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx.AllClose(full, 1e-8) {
		t.Fatal("block-diagonal inverse must be exact for block-diagonal input")
	}
}

func TestBlockDiagonalInverseZeroesOffBlocks(t *testing.T) {
	rng := tensor.NewRNG(3)
	m := tensor.RandSPD(rng, 8, 2)
	inv, err := BlockDiagonalInverse(m, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	// With 4 blocks of size 2, entries outside the 2x2 diagonal blocks
	// must be zero.
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i/2 != j/2 && inv.At(i, j) != 0 {
				t.Fatalf("off-block entry (%d,%d) = %g, want 0", i, j, inv.At(i, j))
			}
		}
	}
}

func TestBlockDiagonalMoreBlocksThanRowsClamps(t *testing.T) {
	rng := tensor.NewRNG(4)
	m := tensor.RandSPD(rng, 3, 1)
	inv, err := BlockDiagonalInverse(m, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Clamped to 3 blocks of size 1: a diagonal approximation.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i != j && inv.At(i, j) != 0 {
				t.Fatal("diagonal approximation must be diagonal")
			}
		}
	}
}

func TestUpdateInversesBlockDiagonal(t *testing.T) {
	rng := tensor.NewRNG(5)
	layer := buildLayer(t, rng, 32, 8, 8)
	p := NewPreconditioner([]*nn.Dense{layer}, Options{Damping: 1e-2})
	if err := p.UpdateInversesBlockDiagonal(2); err == nil {
		t.Fatal("expected error before curvature exists")
	}
	if err := p.UpdateCurvature(32); err != nil {
		t.Fatal(err)
	}
	if err := p.UpdateInversesBlockDiagonal(0); err == nil {
		t.Fatal("expected error for zero blocks")
	}
	if err := p.UpdateInversesBlockDiagonal(2); err != nil {
		t.Fatal(err)
	}
	s := p.States()[0]
	if !s.HasInverses() {
		t.Fatal("block-diagonal inverses not installed")
	}
	// Preconditioning still works and is finite.
	if n := p.Precondition(); n != 1 {
		t.Fatalf("preconditioned %d layers, want 1", n)
	}
	if layer.GW.HasNaN() {
		t.Fatal("NaN in block-diagonally preconditioned gradient")
	}
}

// Property: the block-diagonal inverse of an SPD matrix is itself SPD
// (each block inverse is SPD; the direct sum preserves it).
func TestBlockDiagonalInverseSPDProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 2 + rng.Intn(8)
		k := 1 + rng.Intn(4)
		m := tensor.RandSPD(rng, n, 1)
		inv, err := BlockDiagonalInverse(m, k, 0)
		if err != nil {
			return false
		}
		if !inv.IsSymmetric(1e-9) {
			return false
		}
		_, err = tensor.Cholesky(inv.Symmetrize())
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
