package trace

import (
	"strings"
	"testing"

	"repro/internal/hardware"
	"repro/internal/pipeline"
)

func sampleTimeline(t *testing.T) *pipeline.Timeline {
	t.Helper()
	costs := pipeline.StageCosts{Forward: 10, Backward: 20, OptStep: 2}
	s, err := pipeline.BuildGPipe(pipeline.BuildConfig{
		Stages: 4, MicroBatches: 4, Steps: 1, Costs: costs, IncludeOptimizerWork: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tl, err := pipeline.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

func TestRenderASCII(t *testing.T) {
	tl := sampleTimeline(t)
	var sb strings.Builder
	if err := RenderASCII(&sb, tl, 80); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "GPU util.") {
		t.Fatal("missing utilization header")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + 4 devices + legend.
	if len(lines) != 6 {
		t.Fatalf("expected 6 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "F") || !strings.Contains(out, "B") {
		t.Fatal("rows must contain forward/backward cells")
	}
	if !strings.Contains(out, ".") {
		t.Fatal("GPipe timeline must show idle bubbles")
	}
	// Device 4 (last stage) starts late: its row must begin with idle.
	last := lines[4]
	cells := last[strings.Index(last, "|")+1:]
	if cells[0] != '.' {
		t.Fatalf("last stage must start idle, row: %s", last)
	}
}

func TestRenderASCIIEmptyAndDefaults(t *testing.T) {
	var sb strings.Builder
	empty := &pipeline.Timeline{Name: "empty", Devices: 0}
	if err := RenderASCII(&sb, empty, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "empty timeline") {
		t.Fatal("empty timeline not reported")
	}
}

func TestWriteCSV(t *testing.T) {
	tl := sampleTimeline(t)
	var sb strings.Builder
	if err := WriteCSV(&sb, tl); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	// Header + 8 F/B per device * 4 + 4 opt ops.
	wantRows := 1 + 4*8 + 4
	if len(lines) != wantRows {
		t.Fatalf("expected %d CSV rows, got %d", wantRows, len(lines))
	}
	if lines[0] != "device,kind,stage,replica,micro_batch,step,start_us,end_us" {
		t.Fatalf("bad header: %s", lines[0])
	}
	if !strings.Contains(sb.String(), "forward") || !strings.Contains(sb.String(), "backward") {
		t.Fatal("CSV must name work kinds")
	}
}

func TestSummarize(t *testing.T) {
	tl := sampleTimeline(t)
	s := Summarize(tl)
	if s.Utilization <= 0 || s.Utilization > 1 {
		t.Fatalf("utilization %.3f out of range", s.Utilization)
	}
	// 4 devices x 4 micro-batches x 10us forward.
	if got := s.PerKind[pipeline.Forward]; got != hardware.Microseconds(160) {
		t.Fatalf("forward time %d, want 160", got)
	}
	if got := s.PerKind[pipeline.Backward]; got != hardware.Microseconds(320) {
		t.Fatalf("backward time %d, want 320", got)
	}
	str := s.String()
	if !strings.Contains(str, "forward") || !strings.Contains(str, "GPU util.") {
		t.Fatalf("summary string incomplete: %s", str)
	}
}
