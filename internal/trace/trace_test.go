package trace

import (
	"strings"
	"testing"

	"repro/internal/hardware"
	"repro/internal/pipeline"
)

func sampleTimeline(t *testing.T) *pipeline.Timeline {
	t.Helper()
	costs := pipeline.StageCosts{Forward: 10, Backward: 20, OptStep: 2}
	s, err := pipeline.BuildGPipe(pipeline.BuildConfig{
		Stages: 4, MicroBatches: 4, Steps: 1, Costs: costs, IncludeOptimizerWork: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tl, err := pipeline.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

func TestRenderASCII(t *testing.T) {
	tl := sampleTimeline(t)
	var sb strings.Builder
	if err := RenderASCII(&sb, tl, 80); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "GPU util.") {
		t.Fatal("missing utilization header")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + 4 devices + legend.
	if len(lines) != 6 {
		t.Fatalf("expected 6 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "F") || !strings.Contains(out, "B") {
		t.Fatal("rows must contain forward/backward cells")
	}
	if !strings.Contains(out, ".") {
		t.Fatal("GPipe timeline must show idle bubbles")
	}
	// Device 4 (last stage) starts late: its row must begin with idle.
	last := lines[4]
	cells := last[strings.Index(last, "|")+1:]
	if cells[0] != '.' {
		t.Fatalf("last stage must start idle, row: %s", last)
	}
}

// Multi-step timelines (refresh rounds) render a ruler row with a vertical
// marker at every step boundary, and the CSV step column carries each op's
// step so round structure survives export.
func TestRenderStepBoundaries(t *testing.T) {
	costs := pipeline.StageCosts{Forward: 10, Backward: 20, OptStep: 2}
	s, err := pipeline.BuildGPipe(pipeline.BuildConfig{
		Stages: 2, MicroBatches: 2, Steps: 3, Costs: costs, IncludeOptimizerWork: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tl, err := pipeline.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := RenderASCII(&sb, tl, 90); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + ruler + 2 devices + legend.
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines (with step ruler), got %d:\n%s", len(lines), out)
	}
	ruler := lines[1]
	if !strings.HasPrefix(ruler, "steps") {
		t.Fatalf("second line must be the step ruler, got %q", ruler)
	}
	if got := strings.Count(ruler, "|"); got != 2+len(tl.StepEnd) {
		t.Fatalf("ruler has %d markers, want %d (frame + one per step boundary)", got, 2+len(tl.StepEnd))
	}
	if !strings.Contains(ruler, "s0") || !strings.Contains(ruler, "s1") {
		t.Fatalf("ruler missing step labels: %q", ruler)
	}
	// Device rows keep their layout (same prefix width as the ruler).
	if idx := strings.Index(lines[2], "|"); idx != strings.Index(ruler, "|") {
		t.Fatalf("ruler not aligned with device rows: %q vs %q", ruler, lines[2])
	}

	// CSV: every step index appears in the step column.
	sb.Reset()
	if err := WriteCSV(&sb, tl); err != nil {
		t.Fatal(err)
	}
	steps := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(sb.String()), "\n")[1:] {
		cols := strings.Split(line, ",")
		if len(cols) != 12 {
			t.Fatalf("CSV row has %d columns, want 12: %q", len(cols), line)
		}
		steps[cols[5]] = true
	}
	for _, want := range []string{"0", "1", "2"} {
		if !steps[want] {
			t.Fatalf("CSV step column missing step %s (got %v)", want, steps)
		}
	}

	// SVG: dashed step-boundary markers present.
	sb.Reset()
	if err := RenderSVG(&sb, tl, 600); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "stroke-dasharray"); got != len(tl.StepEnd) {
		t.Fatalf("SVG has %d step-boundary lines, want %d", got, len(tl.StepEnd))
	}
}

func TestRenderASCIIEmptyAndDefaults(t *testing.T) {
	var sb strings.Builder
	empty := &pipeline.Timeline{Name: "empty", Devices: 0}
	if err := RenderASCII(&sb, empty, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "empty timeline") {
		t.Fatal("empty timeline not reported")
	}
}

func TestWriteCSV(t *testing.T) {
	tl := sampleTimeline(t)
	var sb strings.Builder
	if err := WriteCSV(&sb, tl); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	// Header + 8 F/B per device * 4 + 4 opt ops.
	wantRows := 1 + 4*8 + 4
	if len(lines) != wantRows {
		t.Fatalf("expected %d CSV rows, got %d", wantRows, len(lines))
	}
	if lines[0] != "device,kind,stage,replica,micro_batch,step,generation,retries,membership,start_us,end_us,bytes_on_wire" {
		t.Fatalf("bad header: %s", lines[0])
	}
	if !strings.Contains(sb.String(), "forward") || !strings.Contains(sb.String(), "backward") {
		t.Fatal("CSV must name work kinds")
	}
}

func TestSummarize(t *testing.T) {
	tl := sampleTimeline(t)
	s := Summarize(tl)
	if s.Utilization <= 0 || s.Utilization > 1 {
		t.Fatalf("utilization %.3f out of range", s.Utilization)
	}
	// 4 devices x 4 micro-batches x 10us forward.
	if got := s.PerKind[pipeline.Forward]; got != hardware.Microseconds(160) {
		t.Fatalf("forward time %d, want 160", got)
	}
	if got := s.PerKind[pipeline.Backward]; got != hardware.Microseconds(320) {
		t.Fatalf("backward time %d, want 320", got)
	}
	str := s.String()
	if !strings.Contains(str, "forward") || !strings.Contains(str, "GPU util.") {
		t.Fatalf("summary string incomplete: %s", str)
	}
}
