package trace

import (
	"math"
	"strings"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/schedule"
)

func packedTimelines(t *testing.T, overlap bool) (vanilla, packed *pipeline.Timeline) {
	t.Helper()
	costs := pipeline.StageCosts{Forward: 100, Backward: 200, Precondition: 25, OptStep: 10}
	// Heavy refresh work so a K = 1 window cannot hold it: the overlap
	// schedule carries, the serialized one defers to the pre-tail block.
	for i := 0; i < 4; i++ {
		costs.CurvatureUnits = append(costs.CurvatureUnits, 60)
		costs.CurvaturePerMicroBatch += 60
		costs.InversionUnits = append(costs.InversionUnits, 80)
	}
	base, err := pipeline.BuildGPipe(pipeline.BuildConfig{
		Stages: 4, MicroBatches: 4, Steps: 1, Costs: costs,
		IncludeOptimizerWork: true, IncludePrecondition: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	vtl, err := pipeline.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedule.Executable(schedule.Config{
		Method: "gpipe", Stages: 4, MicroBatches: 4, Costs: costs, Overlap: overlap,
	})
	if err != nil {
		t.Fatal(err)
	}
	ptl, err := pipeline.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	return vtl, ptl
}

// The three fractions partition each device's window, a vanilla timeline
// has zero refresh-filled time, and packing K-FAC work into the bubbles
// raises the filled fraction above zero.
func TestBubbleUtilizationAccounting(t *testing.T) {
	vanilla, packed := packedTimelines(t, false)
	for _, u := range BubbleUtilization(vanilla) {
		if math.Abs(u.Busy+u.RefreshFilled+u.Idle-1) > 1e-9 {
			t.Fatalf("device %d fractions do not sum to 1: %+v", u.Device, u)
		}
		if u.RefreshFilled != 0 {
			t.Fatalf("vanilla timeline has refresh-filled time on device %d: %+v", u.Device, u)
		}
		if u.FilledFraction() != 0 {
			t.Fatalf("vanilla filled fraction must be 0, got %g", u.FilledFraction())
		}
	}
	var filled bool
	for _, u := range BubbleUtilization(packed) {
		if math.Abs(u.Busy+u.RefreshFilled+u.Idle-1) > 1e-9 {
			t.Fatalf("device %d fractions do not sum to 1: %+v", u.Device, u)
		}
		if u.RefreshFilled > 0 {
			filled = true
			if f := u.FilledFraction(); f <= 0 || f > 1 {
				t.Fatalf("device %d filled fraction %g out of range", u.Device, f)
			}
		}
	}
	if !filled {
		t.Fatal("packed timeline shows no refresh-filled bubble time")
	}
}

// The acceptance property of overlapped rounds at the modeled level: the
// steady-state window's refresh-filled bubble fraction (averaged over
// devices) is at least the serialized window's — the carried work lands in
// bubbles the serialized schedule leaves idle while its spill stretches
// the pre-tail.
func TestBubbleFilledFractionRisesWithOverlap(t *testing.T) {
	_, serial := packedTimelines(t, false)
	_, overlapped := packedTimelines(t, true)
	avg := func(tl *pipeline.Timeline) float64 {
		var f float64
		us := BubbleUtilization(tl)
		for _, u := range us {
			f += u.FilledFraction()
		}
		return f / float64(len(us))
	}
	fs, fo := avg(serial), avg(overlapped)
	if fo < fs {
		t.Fatalf("overlap lowered the refresh-filled bubble fraction: %.3f -> %.3f", fs, fo)
	}
	if overlapped.Makespan > serial.Makespan {
		t.Fatalf("overlapped window longer than serialized: %d vs %d", overlapped.Makespan, serial.Makespan)
	}
}

func TestRenderBubbleSummaryAndCSV(t *testing.T) {
	_, packed := packedTimelines(t, false)
	var sb strings.Builder
	if err := RenderBubbleSummary(&sb, packed); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "bubble utilization") || !strings.Contains(out, "total") {
		t.Fatalf("summary incomplete:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + one row per device + total.
	if want := 2 + packed.Devices + 1; len(lines) != want {
		t.Fatalf("summary has %d lines, want %d:\n%s", len(lines), want, out)
	}

	sb.Reset()
	if err := WriteBubbleCSV(&sb, packed); err != nil {
		t.Fatal(err)
	}
	csv := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if csv[0] != "device,step,busy_frac,refresh_frac,idle_frac,bubble_filled_frac" {
		t.Fatalf("bad CSV header: %s", csv[0])
	}
	// One row per (device, step) + one "all" row per device.
	if want := 1 + packed.Devices*(len(packed.StepEnd)+1); len(csv) != want {
		t.Fatalf("CSV has %d rows, want %d", len(csv), want)
	}
	if !strings.Contains(sb.String(), ",all,") {
		t.Fatal("CSV missing the whole-timeline rows")
	}

	sb.Reset()
	empty := &pipeline.Timeline{Name: "empty"}
	if err := RenderBubbleSummary(&sb, empty); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "empty timeline") {
		t.Fatal("empty timeline not reported")
	}
}
