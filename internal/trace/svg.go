package trace

import (
	"fmt"
	"io"

	"repro/internal/pipeline"
)

// kindColor maps work kinds to the approximate colors of the paper's
// profile figures.
func kindColor(k pipeline.WorkKind) string {
	switch k {
	case pipeline.Forward:
		return "#4c8bf5" // blue
	case pipeline.Backward:
		return "#8ab4f8" // light blue
	case pipeline.Curvature:
		return "#f5a623" // orange
	case pipeline.Inversion:
		return "#d0021b" // red
	case pipeline.Precondition:
		return "#7ed321" // green
	case pipeline.SyncGrad:
		return "#9b9b9b" // grey
	case pipeline.SyncCurvature:
		return "#b8860b" // dark gold
	case pipeline.OptStep:
		return "#4a4a4a" // dark grey
	case pipeline.Recompute:
		return "#bcd4fb" // pale blue, between forward and backward
	case pipeline.Degraded:
		return "#c71585" // magenta: degraded-mode marker spans
	case pipeline.Membership:
		return "#ff8c00" // orange: elastic membership-change marker spans
	}
	return "#000000"
}

// RenderSVG writes the timeline as a standalone SVG Gantt chart: one row
// per device, one colored rectangle per event — a vector version of the
// paper's Figures 3 and 4 suitable for embedding in reports.
func RenderSVG(w io.Writer, tl *pipeline.Timeline, width int) error {
	if width <= 0 {
		width = 1000
	}
	const (
		rowHeight = 26
		rowGap    = 6
		leftPad   = 70
		topPad    = 34
	)
	if tl.Makespan == 0 {
		_, err := fmt.Fprint(w, `<svg xmlns="http://www.w3.org/2000/svg" width="200" height="40"><text x="4" y="20">(empty timeline)</text></svg>`)
		return err
	}
	height := topPad + tl.Devices*(rowHeight+rowGap) + 30
	scale := float64(width) / float64(tl.Makespan)
	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`,
		width+leftPad+10, height); err != nil {
		return err
	}
	fmt.Fprintf(w, `<text x="%d" y="18">%s [GPU util. %.1f%%]</text>`, leftPad, tl.Name, 100*tl.Utilization())
	for d := 0; d < tl.Devices; d++ {
		y := topPad + d*(rowHeight+rowGap)
		fmt.Fprintf(w, `<text x="4" y="%d">GPU %d</text>`, y+rowHeight-8, d+1)
		// Row background marks idle time.
		fmt.Fprintf(w, `<rect x="%d" y="%d" width="%d" height="%d" fill="#f0f0f0"/>`,
			leftPad, y, width, rowHeight)
		for _, e := range tl.Events[d] {
			x := leftPad + int(float64(e.Start)*scale)
			wPx := int(float64(e.End-e.Start) * scale)
			if wPx < 1 {
				wPx = 1
			}
			fmt.Fprintf(w, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"><title>%s [%d,%d)us</title></rect>`,
				x, y, wPx, rowHeight, kindColor(e.Op.Kind), e.Op.Kind, e.Start, e.End)
		}
	}
	// Step boundaries: one dashed vertical marker per step end, so the
	// round's internal step structure shows on multi-step timelines.
	if len(tl.StepEnd) > 1 {
		y0 := topPad - 4
		y1 := topPad + tl.Devices*(rowHeight+rowGap) - rowGap + 4
		for k, end := range tl.StepEnd {
			x := leftPad + int(float64(end)*scale)
			fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#555" stroke-dasharray="4,3"><title>end of step %d</title></line>`,
				x, y0, x, y1, k)
			fmt.Fprintf(w, `<text x="%d" y="%d" fill="#555">s%d</text>`, x-22, y0+10, k)
		}
	}
	// Legend.
	lx := leftPad
	ly := topPad + tl.Devices*(rowHeight+rowGap) + 6
	for _, k := range []pipeline.WorkKind{
		pipeline.Forward, pipeline.Backward, pipeline.Recompute, pipeline.Curvature,
		pipeline.Inversion, pipeline.Precondition, pipeline.SyncGrad,
		pipeline.SyncCurvature, pipeline.OptStep, pipeline.Degraded,
		pipeline.Membership,
	} {
		fmt.Fprintf(w, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`, lx, ly, kindColor(k))
		fmt.Fprintf(w, `<text x="%d" y="%d">%s</text>`, lx+16, ly+11, k)
		lx += 16 + 9*len(k.String()) + 14
	}
	_, err := fmt.Fprint(w, `</svg>`)
	return err
}
