package trace

import (
	"fmt"
	"io"

	"repro/internal/hardware"
)

// TuneRecord is one round's closed-loop tuning state: how far the packing
// cost model is from the executed timeline (shape-normalized relative
// error — it shrinks toward zero as the auto-tuner refits and installs
// measured costs) and, on decision rounds, which schedule configuration
// the tuner chose and why. The Current/Choice strings are the candidate
// renderings the run headers print (e.g. "1f1b/K2+overlap").
type TuneRecord struct {
	// Round is the engine round the record was taken after (1-based).
	Round int
	// ModelError is the shape-normalized modeled-vs-measured cost error
	// at this round (see autotune.Tuner.ModelError); negative when no
	// estimate exists yet (warm-up).
	ModelError float64
	// Decision marks rounds where the tuner ranked the candidate space.
	Decision bool
	// Current and Choice are candidate strings; Choice is empty on
	// non-decision rounds.
	Current string
	Choice  string
	// CurrentStep/ChoiceStep are the predicted per-step times of the
	// current and chosen configurations under the fitted cost model.
	CurrentStep hardware.Microseconds
	ChoiceStep  hardware.Microseconds
	// Swapped reports whether the engine was reconfigured this round.
	Swapped bool
	// Reason explains the decision ("keep: already best", "swap: 12.3%
	// predicted gain", "hold: gain below threshold", ...).
	Reason string
}

// WriteTuneCSV exports tuning records as CSV: one row per round with the
// model-error convergence curve and the tuner's decisions, ready for
// plotting the closed loop (error shrinking, step-time predictions, swap
// points).
func WriteTuneCSV(w io.Writer, recs []TuneRecord) error {
	if _, err := fmt.Fprintln(w, "round,model_error,decision,current,choice,current_step_us,choice_step_us,swapped,reason"); err != nil {
		return err
	}
	for _, r := range recs {
		if _, err := fmt.Fprintf(w, "%d,%.6f,%v,%s,%s,%d,%d,%v,%q\n",
			r.Round, r.ModelError, r.Decision, r.Current, r.Choice,
			r.CurrentStep, r.ChoiceStep, r.Swapped, r.Reason); err != nil {
			return err
		}
	}
	return nil
}

// RenderTuneLog writes a human-readable tuner log: one line per decision
// round plus the model-error trajectory endpoints, the form the CLIs print
// under their run headers.
func RenderTuneLog(w io.Writer, recs []TuneRecord) error {
	var first, last *TuneRecord
	for i := range recs {
		if recs[i].ModelError >= 0 {
			if first == nil {
				first = &recs[i]
			}
			last = &recs[i]
		}
	}
	if first != nil && last != nil {
		if _, err := fmt.Fprintf(w, "model error: %.3f (round %d) -> %.3f (round %d)\n",
			first.ModelError, first.Round, last.ModelError, last.Round); err != nil {
			return err
		}
	}
	for _, r := range recs {
		if !r.Decision {
			continue
		}
		verb := "hold"
		if r.Swapped {
			verb = "swap"
		}
		if _, err := fmt.Fprintf(w, "round %d: %s %s -> %s (predicted %d -> %d us/step): %s\n",
			r.Round, verb, r.Current, r.Choice, r.CurrentStep, r.ChoiceStep, r.Reason); err != nil {
			return err
		}
	}
	return nil
}
