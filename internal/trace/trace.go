// Package trace renders simulated pipeline timelines in the style of the
// paper's Nsight profiles (Figures 1, 3 and 4): one row per device, colored
// (lettered) boxes per work kind, plus utilization summaries and CSV export
// for plotting.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/hardware"
	"repro/internal/pipeline"
)

// kindRune maps work kinds to single-character cells for ASCII rendering.
func kindRune(k pipeline.WorkKind) byte {
	switch k {
	case pipeline.Forward:
		return 'F'
	case pipeline.Backward:
		return 'B'
	case pipeline.Curvature:
		return 'C'
	case pipeline.Inversion:
		return 'I'
	case pipeline.Precondition:
		return 'P'
	case pipeline.SyncGrad:
		return 'g'
	case pipeline.SyncCurvature:
		return 'c'
	case pipeline.OptStep:
		return 'o'
	case pipeline.Recompute:
		return 'R'
	case pipeline.Degraded:
		return 'D'
	case pipeline.Membership:
		return 'M'
	}
	return '?'
}

// RenderASCII draws the timeline as one text row per device, width columns
// wide. Idle time renders as '.', work as the kind's letter. Multi-step
// timelines (refresh rounds, multi-step simulations) get a ruler row with a
// vertical marker at every step boundary, so the round's internal step
// structure — and which step's bubbles hold which refresh work — reads off
// the trace directly. The output mirrors the layout of the paper's profile
// figures closely enough to eyeball bubble filling.
func RenderASCII(w io.Writer, tl *pipeline.Timeline, width int) error {
	if width <= 0 {
		width = 100
	}
	if tl.Makespan == 0 {
		_, err := fmt.Fprintln(w, "(empty timeline)")
		return err
	}
	scale := float64(width) / float64(tl.Makespan)
	par := ""
	if tl.Parallelism > 0 {
		par = fmt.Sprintf("  [intra-op: %d workers, %d/op]", tl.Parallelism, tl.OpParallelism)
	}
	if _, err := fmt.Fprintf(w, "%s  [GPU util. %.1f%%]%s\n", tl.Name, 100*tl.Utilization(), par); err != nil {
		return err
	}
	// Data-parallel timelines get replica lanes: each device row is
	// annotated with the replica it belongs to, so the W>1 topology — and
	// how collectives line up across a stage's replica group — reads off
	// the trace directly.
	replicated := false
	repOf := make([]int, tl.Devices)
	for d := 0; d < tl.Devices; d++ {
		for _, e := range tl.Events[d] {
			repOf[d] = e.Op.Replica
			if e.Op.Replica > 0 {
				replicated = true
			}
			break
		}
	}
	if len(tl.StepEnd) > 1 {
		ruler := make([]byte, width)
		for i := range ruler {
			ruler[i] = ' '
		}
		prev := 0
		for k, end := range tl.StepEnd {
			col := int(float64(end) * scale)
			if col >= width {
				col = width - 1
			}
			label := fmt.Sprintf("s%d", k)
			if col-prev > len(label) {
				copy(ruler[prev:], label)
			}
			ruler[col] = '|'
			prev = col + 1
		}
		prefix := "GPU 0  "
		if replicated {
			prefix = "GPU 0  r0 "
		}
		if _, err := fmt.Fprintf(w, "%-*s|%s|\n", len(prefix), "steps", ruler); err != nil {
			return err
		}
	}
	for d := 0; d < tl.Devices; d++ {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, e := range tl.Events[d] {
			lo := int(float64(e.Start) * scale)
			hi := int(float64(e.End) * scale)
			if hi <= lo {
				hi = lo + 1
			}
			if hi > width {
				hi = width
			}
			ch := kindRune(e.Op.Kind)
			for i := lo; i < hi; i++ {
				row[i] = ch
			}
		}
		if replicated {
			if _, err := fmt.Fprintf(w, "GPU %-2d r%d |%s|\n", d+1, repOf[d], row); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "GPU %-2d |%s|\n", d+1, row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "legend: F=forward B=backward R=recompute C=curvature I=inverse P=precondition g=sync-grad c=sync-curv o=opt D=degraded M=membership .=idle")
	return err
}

// WriteCSV exports the timeline events as CSV rows
// (device,kind,stage,replica,micro,step,generation,retries,membership,
// start_us,end_us,bytes_on_wire) for external plotting. Generation marks
// carried refresh ops of overlapped rounds; retries counts the failed
// attempts a fault-tolerant execution needed before the op succeeded (0 in
// simulated timelines and fault-free runs); membership is the elastic
// membership view the op ran under (0 until a rank failure or rejoin
// changes the group); bytes_on_wire is what the op's collective put on a
// wire transport (0 for compute ops, simulated timelines, and in-process
// collectives).
func WriteCSV(w io.Writer, tl *pipeline.Timeline) error {
	if _, err := fmt.Fprintln(w, "device,kind,stage,replica,micro_batch,step,generation,retries,membership,start_us,end_us,bytes_on_wire"); err != nil {
		return err
	}
	for d := 0; d < tl.Devices; d++ {
		for _, e := range tl.Events[d] {
			if _, err := fmt.Fprintf(w, "%d,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
				d, e.Op.Kind, e.Op.Stage, e.Op.Replica, e.Op.MicroBatch, e.Op.Step, e.Op.Generation, e.Retries, e.Membership, e.Start, e.End, e.Bytes); err != nil {
				return err
			}
		}
	}
	return nil
}

// Summary aggregates per-kind busy time across a timeline.
type Summary struct {
	// Name echoes the timeline name.
	Name string
	// Utilization is busy/(devices*makespan).
	Utilization float64
	// Makespan is the timeline end.
	Makespan hardware.Microseconds
	// PerKind maps each work kind to its total device-time.
	PerKind map[pipeline.WorkKind]hardware.Microseconds
}

// Summarize computes a Summary for a timeline.
func Summarize(tl *pipeline.Timeline) Summary {
	s := Summary{
		Name:        tl.Name,
		Utilization: tl.Utilization(),
		Makespan:    tl.Makespan,
		PerKind:     make(map[pipeline.WorkKind]hardware.Microseconds),
	}
	for d := 0; d < tl.Devices; d++ {
		for _, e := range tl.Events[d] {
			s.PerKind[e.Op.Kind] += e.Duration()
		}
	}
	return s
}

// String renders the summary as a compact table.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: makespan %.1f ms, GPU util. %.1f%%\n", s.Name, float64(s.Makespan)/1000, 100*s.Utilization)
	kinds := make([]pipeline.WorkKind, 0, len(s.PerKind))
	for k := range s.PerKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %-14s %10.1f ms\n", k.String(), float64(s.PerKind[k])/1000)
	}
	return b.String()
}
