package trace

import (
	"strings"
	"testing"

	"repro/internal/pipeline"
)

func TestRenderSVG(t *testing.T) {
	tl := sampleTimeline(t)
	var sb strings.Builder
	if err := RenderSVG(&sb, tl, 800); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(out, "</svg>") {
		t.Fatal("output is not a complete SVG document")
	}
	// One label per device.
	for _, label := range []string{"GPU 1", "GPU 2", "GPU 3", "GPU 4"} {
		if !strings.Contains(out, label) {
			t.Fatalf("missing device label %q", label)
		}
	}
	if !strings.Contains(out, "GPU util.") {
		t.Fatal("missing utilization header")
	}
	// Forward and backward rectangles with their legend colors.
	if !strings.Contains(out, kindColor(pipeline.Forward)) ||
		!strings.Contains(out, kindColor(pipeline.Backward)) {
		t.Fatal("missing work rectangles")
	}
	// Tooltips carry timing metadata.
	if !strings.Contains(out, "<title>forward") {
		t.Fatal("missing event tooltips")
	}
}

func TestRenderSVGEmpty(t *testing.T) {
	var sb strings.Builder
	if err := RenderSVG(&sb, &pipeline.Timeline{Name: "x"}, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "empty timeline") {
		t.Fatal("empty timeline not handled")
	}
}

func TestKindColorsDistinct(t *testing.T) {
	kinds := []pipeline.WorkKind{
		pipeline.Forward, pipeline.Backward, pipeline.Curvature, pipeline.Inversion,
		pipeline.Precondition, pipeline.SyncGrad, pipeline.SyncCurvature, pipeline.OptStep,
	}
	seen := map[string]pipeline.WorkKind{}
	for _, k := range kinds {
		c := kindColor(k)
		if other, dup := seen[c]; dup {
			t.Fatalf("kinds %s and %s share color %s", k, other, c)
		}
		seen[c] = k
	}
}
