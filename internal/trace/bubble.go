package trace

import (
	"fmt"
	"io"

	"repro/internal/hardware"
	"repro/internal/pipeline"
)

// This file implements bubble-utilization accounting: the quantitative
// counterpart of eyeballing a rendered timeline. PipeFisher's claim is that
// pipeline bubbles are free compute for the K-FAC refresh; these summaries
// measure how much of the bubble budget the refresh actually absorbed —
// per device, and per step of a refresh round — so schedule changes
// (refresh rounds, overlapped windows) can be judged by utilization
// numbers instead of vibes.

// refreshKind reports whether a work kind is K-FAC refresh work — the work
// that occupies time a vanilla schedule would idle through.
func refreshKind(k pipeline.WorkKind) bool {
	switch k {
	case pipeline.Curvature, pipeline.Inversion, pipeline.SyncCurvature:
		return true
	}
	return false
}

// BubbleUtil reports one device's time accounting over a window: Busy is
// the base training work (forward/backward/recompute, collectives, tails),
// RefreshFilled the K-FAC refresh work (curvature / inversion /
// sync-curvature) that executes in what would otherwise be bubble, and
// Idle the remaining bubble. The three fractions sum to 1 (of the window).
type BubbleUtil struct {
	Device        int
	Busy          float64
	RefreshFilled float64
	Idle          float64
}

// FilledFraction returns the share of the device's bubble budget (bubble =
// refresh-filled + idle, i.e. everything that is not base training work)
// absorbed by refresh work — the headline number for "how much idle time
// did the packing eliminate". 0 when the device has no bubble at all.
func (u BubbleUtil) FilledFraction() float64 {
	bubble := u.RefreshFilled + u.Idle
	if bubble <= 0 {
		return 0
	}
	return u.RefreshFilled / bubble
}

// bubbleOver accounts one device over [from, to).
func bubbleOver(tl *pipeline.Timeline, d int, from, to hardware.Microseconds) BubbleUtil {
	u := BubbleUtil{Device: d}
	if to <= from {
		return u
	}
	var busy, refresh hardware.Microseconds
	for _, e := range tl.Events[d] {
		s, en := e.Start, e.End
		if s < from {
			s = from
		}
		if en > to {
			en = to
		}
		if en <= s {
			continue
		}
		if refreshKind(e.Op.Kind) {
			refresh += en - s
		} else {
			busy += en - s
		}
	}
	total := float64(to - from)
	u.Busy = float64(busy) / total
	u.RefreshFilled = float64(refresh) / total
	u.Idle = 1 - u.Busy - u.RefreshFilled
	if u.Idle < 0 {
		u.Idle = 0 // overlapping events (never produced by sim or engine) would over-count
	}
	return u
}

// BubbleUtilization accounts every device over the whole timeline
// [0, Makespan].
func BubbleUtilization(tl *pipeline.Timeline) []BubbleUtil {
	out := make([]BubbleUtil, tl.Devices)
	for d := 0; d < tl.Devices; d++ {
		out[d] = bubbleOver(tl, d, 0, tl.Makespan)
	}
	return out
}

// RenderBubbleSummary writes the per-device accounting as an ASCII table —
// busy / refresh-filled / idle fractions of each device's time plus the
// filled share of its bubble — with an all-device total row.
func RenderBubbleSummary(w io.Writer, tl *pipeline.Timeline) error {
	if tl.Makespan == 0 || tl.Devices == 0 {
		_, err := fmt.Fprintln(w, "(empty timeline)")
		return err
	}
	if _, err := fmt.Fprintf(w, "%s — bubble utilization\n", tl.Name); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "device   busy%   refresh%   idle%   bubble-filled%"); err != nil {
		return err
	}
	var tot BubbleUtil
	utils := BubbleUtilization(tl)
	for _, u := range utils {
		if _, err := fmt.Fprintf(w, "GPU %-3d %6.1f %9.1f %7.1f %12.1f\n",
			u.Device+1, 100*u.Busy, 100*u.RefreshFilled, 100*u.Idle, 100*u.FilledFraction()); err != nil {
			return err
		}
		tot.Busy += u.Busy
		tot.RefreshFilled += u.RefreshFilled
		tot.Idle += u.Idle
	}
	n := float64(len(utils))
	tot.Busy /= n
	tot.RefreshFilled /= n
	tot.Idle /= n
	_, err := fmt.Fprintf(w, "total   %6.1f %9.1f %7.1f %12.1f\n",
		100*tot.Busy, 100*tot.RefreshFilled, 100*tot.Idle, 100*tot.FilledFraction())
	return err
}

// WriteBubbleCSV exports the accounting as CSV with one row per (device,
// step) — step boundaries from the timeline's StepEnd, so refresh rounds
// break down per step of the window — followed by per-device "all" rows
// over the whole timeline. Columns are fractions of the row's window.
func WriteBubbleCSV(w io.Writer, tl *pipeline.Timeline) error {
	if _, err := fmt.Fprintln(w, "device,step,busy_frac,refresh_frac,idle_frac,bubble_filled_frac"); err != nil {
		return err
	}
	row := func(d int, step string, u BubbleUtil) error {
		_, err := fmt.Fprintf(w, "%d,%s,%.4f,%.4f,%.4f,%.4f\n",
			d, step, u.Busy, u.RefreshFilled, u.Idle, u.FilledFraction())
		return err
	}
	for d := 0; d < tl.Devices; d++ {
		var from hardware.Microseconds
		for k, end := range tl.StepEnd {
			if err := row(d, fmt.Sprint(k), bubbleOver(tl, d, from, end)); err != nil {
				return err
			}
			from = end
		}
		if err := row(d, "all", bubbleOver(tl, d, 0, tl.Makespan)); err != nil {
			return err
		}
	}
	return nil
}
