// Package gpt implements a decoder-only causal language model in the style
// of the OPT models the paper's performance study covers (Table 3,
// Figures 15/16): token + position embeddings, causally-masked transformer
// blocks, a final layer norm, and a next-token prediction head. It shares
// the nn substrate with the BERT encoder, so K-FAC applies to its block
// layers unchanged — demonstrating that the PipeFisher machinery is
// architecture-agnostic across the families the paper evaluates.
package gpt

import (
	"fmt"
	"math"

	"repro/internal/data"
	"repro/internal/kfac"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
)

// Config sizes the decoder model.
type Config struct {
	VocabSize int
	DModel    int
	DFF       int
	Heads     int
	Blocks    int
	SeqLen    int
}

// TinyConfig returns a laptop-scale OPT-like configuration.
func TinyConfig() Config {
	return Config{VocabSize: 96, DModel: 32, DFF: 64, Heads: 4, Blocks: 2, SeqLen: 16}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.VocabSize <= data.FirstWordID {
		return fmt.Errorf("gpt: vocab %d too small", c.VocabSize)
	}
	if c.DModel <= 0 || c.DFF <= 0 || c.Blocks <= 0 || c.SeqLen <= 1 {
		return fmt.Errorf("gpt: bad dimensions in %+v", c)
	}
	if c.Heads <= 0 || c.DModel%c.Heads != 0 {
		return fmt.Errorf("gpt: DModel %d not divisible by Heads %d", c.DModel, c.Heads)
	}
	return nil
}

// Model is the trainable decoder.
type Model struct {
	Config Config

	TokEmb    *nn.Embedding
	PosEmb    *nn.Embedding
	Blocks    []*nn.TransformerBlock
	FinalNorm *nn.LayerNorm
	LMHead    *nn.Dense // excluded from K-FAC, like BERT's MLM head

	posIDs     []int
	pipePosIDs []int // scratch for EmbedForward's micro-batch shape

	// pipeEmbBuf is the retained token+position embedding sum of the
	// pipeline adapter (see pipeline.go), reused across micro-batches.
	pipeEmbBuf *tensor.Matrix
}

// New builds a decoder model; every block's attention is causal.
func New(cfg Config, seed uint64) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(seed)
	m := &Model{
		Config:    cfg,
		TokEmb:    nn.NewEmbedding("tok_emb", cfg.VocabSize, cfg.DModel, rng),
		PosEmb:    nn.NewEmbedding("pos_emb", cfg.SeqLen, cfg.DModel, rng),
		FinalNorm: nn.NewLayerNorm("final_norm", cfg.DModel),
		LMHead:    nn.NewDense("lm_head", cfg.DModel, cfg.VocabSize, rng),
	}
	for b := 0; b < cfg.Blocks; b++ {
		blk := nn.NewTransformerBlock(fmt.Sprintf("block%d", b), cfg.DModel, cfg.DFF, cfg.Heads, rng)
		blk.Attn.Causal = true
		m.Blocks = append(m.Blocks, blk)
	}
	return m, nil
}

// Params returns all trainable parameters.
func (m *Model) Params() []*nn.Param {
	var out []*nn.Param
	out = append(out, m.TokEmb.Params()...)
	out = append(out, m.PosEmb.Params()...)
	for _, b := range m.Blocks {
		out = append(out, b.Params()...)
	}
	out = append(out, m.FinalNorm.Params()...)
	out = append(out, m.LMHead.Params()...)
	return out
}

// KFACLayers returns the block layers eligible for K-FAC (heads excluded).
func (m *Model) KFACLayers() []*nn.Dense {
	var out []*nn.Dense
	for _, b := range m.Blocks {
		out = append(out, b.DenseLayers()...)
	}
	return out
}

// Step runs one forward+backward over a batch of token sequences (flattened
// batch-major, batchSize*SeqLen ids) with the next-token objective: the
// model predicts token t+1 at position t; the last position has no target.
// It returns the mean loss and the number of predicted positions.
func (m *Model) Step(tokens []int, batchSize int) (float64, int, error) {
	sl := m.Config.SeqLen
	if len(tokens) != batchSize*sl {
		return 0, 0, fmt.Errorf("gpt: got %d tokens, want %d", len(tokens), batchSize*sl)
	}
	x := m.forwardTrunk(tokens, batchSize)
	logits := m.LMHead.Forward(x)

	targets := nextTokenTargets(tokens, batchSize, sl)
	loss, grad, count := nn.CrossEntropy(logits, targets)

	dx := m.LMHead.Backward(grad)
	dx = m.FinalNorm.Backward(dx)
	for i := len(m.Blocks) - 1; i >= 0; i-- {
		dx = m.Blocks[i].Backward(dx)
	}
	m.TokEmb.BackwardIDs(dx)
	m.PosEmb.BackwardIDs(dx)
	return loss, count, nil
}

// Perplexity evaluates forward-only mean next-token perplexity.
func (m *Model) Perplexity(tokens []int, batchSize int) (float64, error) {
	sl := m.Config.SeqLen
	if len(tokens) != batchSize*sl {
		return 0, fmt.Errorf("gpt: got %d tokens, want %d", len(tokens), batchSize*sl)
	}
	x := m.forwardTrunk(tokens, batchSize)
	logits := m.LMHead.Forward(x)
	loss, _, _ := nn.CrossEntropy(logits, nextTokenTargets(tokens, batchSize, sl))
	return math.Exp(loss), nil
}

func (m *Model) forwardTrunk(tokens []int, batchSize int) *tensor.Matrix {
	sl := m.Config.SeqLen
	n := batchSize * sl
	if len(m.posIDs) != n {
		m.posIDs = make([]int, n)
		for i := range m.posIDs {
			m.posIDs[i] = i % sl
		}
	}
	tok := m.TokEmb.Lookup(tokens)
	pos := m.PosEmb.Lookup(m.posIDs)
	x := tok.Add(pos)
	for _, b := range m.Blocks {
		b.SetShape(batchSize, sl)
		x = b.Forward(x)
	}
	return m.FinalNorm.Forward(x)
}

// nextTokenTargets shifts tokens left by one within each sequence; the last
// position of each sequence gets IgnoreIndex.
func nextTokenTargets(tokens []int, batchSize, seqLen int) []int {
	targets := make([]int, len(tokens))
	for b := 0; b < batchSize; b++ {
		base := b * seqLen
		for t := 0; t < seqLen-1; t++ {
			targets[base+t] = tokens[base+t+1]
		}
		targets[base+seqLen-1] = nn.IgnoreIndex
	}
	return targets
}

// SampleBatch draws a batch of training sequences from the corpus.
func SampleBatch(c *data.Corpus, batchSize, seqLen int) []int {
	out := make([]int, 0, batchSize*seqLen)
	for i := 0; i < batchSize; i++ {
		out = append(out, c.Sentence(seqLen)...)
	}
	return out
}

// TrainConfig drives Pretrain.
type TrainConfig struct {
	// UseKFAC preconditions the block layers with K-FAC.
	UseKFAC bool
	// Steps, BatchSize and LR control the loop.
	Steps     int
	BatchSize int
	LR        float64
	// Damping and RefreshEvery configure K-FAC.
	Damping      float64
	RefreshEvery int
}

// Pretrain trains the decoder with Adam (optionally K-FAC-preconditioned)
// and returns the per-step losses.
func Pretrain(m *Model, c *data.Corpus, cfg TrainConfig) ([]float64, error) {
	if cfg.Steps <= 0 {
		cfg.Steps = 100
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.LR == 0 {
		cfg.LR = 3e-3
	}
	if cfg.Damping == 0 {
		cfg.Damping = 1e-2
	}
	if cfg.RefreshEvery <= 0 {
		cfg.RefreshEvery = 2
	}
	params := m.Params()
	opt := optim.NewAdam(params, 0.01)
	var pre *kfac.Preconditioner
	if cfg.UseKFAC {
		pre = kfac.NewPreconditioner(m.KFACLayers(), kfac.Options{
			Damping: cfg.Damping, StatDecay: 0.95, UsePiDamping: true,
		})
	}
	losses := make([]float64, 0, cfg.Steps)
	for step := 0; step < cfg.Steps; step++ {
		batch := SampleBatch(c, cfg.BatchSize, m.Config.SeqLen)
		nn.ZeroGrads(params)
		loss, count, err := m.Step(batch, cfg.BatchSize)
		if err != nil {
			return nil, err
		}
		if pre != nil {
			if step%cfg.RefreshEvery == 0 {
				if err := pre.UpdateCurvature(float64(count)); err != nil {
					return nil, err
				}
				if err := pre.UpdateInverses(); err != nil {
					return nil, err
				}
			}
			pre.Precondition()
		}
		opt.Step(cfg.LR)
		losses = append(losses, loss)
	}
	return losses, nil
}
