package gpt

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/nn"
)

func newModelAndCorpus(t *testing.T, seed uint64) (*Model, *data.Corpus) {
	t.Helper()
	m, err := New(TinyConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	c, err := data.NewCorpus(TinyConfig().VocabSize, 1.0, seed+1000)
	if err != nil {
		t.Fatal(err)
	}
	return m, c
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{VocabSize: 2, DModel: 32, DFF: 64, Heads: 4, Blocks: 2, SeqLen: 16},
		{VocabSize: 96, DModel: 30, DFF: 64, Heads: 4, Blocks: 2, SeqLen: 16},
		{VocabSize: 96, DModel: 32, DFF: 64, Heads: 4, Blocks: 2, SeqLen: 1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg, 1); err == nil {
			t.Fatalf("case %d: expected error for %+v", i, cfg)
		}
	}
}

func TestAllBlocksAreCausal(t *testing.T) {
	m, _ := newModelAndCorpus(t, 1)
	for i, b := range m.Blocks {
		if !b.Attn.Causal {
			t.Fatalf("block %d is not causal", i)
		}
	}
	// Heads excluded from K-FAC.
	for _, l := range m.KFACLayers() {
		if l == m.LMHead {
			t.Fatal("LM head must be excluded from K-FAC")
		}
	}
	if len(m.KFACLayers()) != 12 {
		t.Fatalf("expected 12 K-FAC layers, got %d", len(m.KFACLayers()))
	}
}

func TestStepInitialLossNearLogVocab(t *testing.T) {
	m, c := newModelAndCorpus(t, 2)
	batch := SampleBatch(c, 8, m.Config.SeqLen)
	nn.ZeroGrads(m.Params())
	loss, count, err := m.Step(batch, 8)
	if err != nil {
		t.Fatal(err)
	}
	if count != 8*(m.Config.SeqLen-1) {
		t.Fatalf("predicted positions %d, want %d", count, 8*(m.Config.SeqLen-1))
	}
	if math.Abs(loss-math.Log(float64(m.Config.VocabSize))) > 1.0 {
		t.Fatalf("initial loss %.3f far from log V", loss)
	}
	if gn := nn.GradNorm(m.Params()); gn <= 0 || math.IsNaN(gn) {
		t.Fatalf("bad grad norm %g", gn)
	}
}

func TestStepValidation(t *testing.T) {
	m, _ := newModelAndCorpus(t, 3)
	if _, _, err := m.Step(make([]int, 7), 2); err == nil {
		t.Fatal("expected error for wrong token count")
	}
}

func TestNextTokenTargets(t *testing.T) {
	tokens := []int{10, 11, 12, 20, 21, 22}
	targets := nextTokenTargets(tokens, 2, 3)
	want := []int{11, 12, nn.IgnoreIndex, 21, 22, nn.IgnoreIndex}
	for i := range want {
		if targets[i] != want[i] {
			t.Fatalf("targets %v, want %v", targets, want)
		}
	}
}

func TestPretrainAdamConverges(t *testing.T) {
	m, c := newModelAndCorpus(t, 4)
	losses, err := Pretrain(m, c, TrainConfig{Steps: 80, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	first := mean(losses[:10])
	last := mean(losses[70:])
	if last >= first-0.3 {
		t.Fatalf("decoder LM did not converge: %.3f -> %.3f", first, last)
	}
}

func TestPretrainKFACConverges(t *testing.T) {
	m, c := newModelAndCorpus(t, 5)
	losses, err := Pretrain(m, c, TrainConfig{UseKFAC: true, Steps: 60, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	first := mean(losses[:10])
	last := mean(losses[50:])
	if last >= first-0.2 {
		t.Fatalf("K-FAC decoder training did not converge: %.3f -> %.3f", first, last)
	}
}

func TestPerplexityImprovesWithTraining(t *testing.T) {
	m, c := newModelAndCorpus(t, 6)
	heldOut := SampleBatch(c, 16, m.Config.SeqLen)
	before, err := m.Perplexity(heldOut, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Pretrain(m, c, TrainConfig{Steps: 80, BatchSize: 8}); err != nil {
		t.Fatal(err)
	}
	after, err := m.Perplexity(heldOut, 16)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("perplexity did not improve: %.1f -> %.1f", before, after)
	}
	// Untrained perplexity should be near vocab size (~96).
	if before < 30 || before > 300 {
		t.Fatalf("untrained perplexity %.1f outside plausible range", before)
	}
}

func TestPerplexityValidation(t *testing.T) {
	m, _ := newModelAndCorpus(t, 7)
	if _, err := m.Perplexity(make([]int, 5), 2); err == nil {
		t.Fatal("expected error for wrong token count")
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
