package gpt

import (
	"testing"

	"repro/internal/tensor"
)

// Float32 compute mode through the decoder's K-FAC loop — the narrow
// capture/widen-on-demand path must hold up on the causal-attention
// adapter too.
func TestPretrainKFACFloat32Mode(t *testing.T) {
	tensor.SetF32(true)
	defer tensor.SetF32(false)
	m, c := newModelAndCorpus(t, 5)
	losses, err := Pretrain(m, c, TrainConfig{UseKFAC: true, Steps: 60, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	first := mean(losses[:10])
	last := mean(losses[50:])
	if last >= first-0.2 {
		t.Fatalf("float32-mode K-FAC decoder training did not converge: %.3f -> %.3f", first, last)
	}
}
