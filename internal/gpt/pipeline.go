package gpt

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/pipemodel"
	"repro/internal/tensor"
)

// The decoder is stageable through the same engine as BERT: embedding on
// stage 0, causally-masked blocks partitioned into stages, and the final
// layer norm + LM head + next-token loss on the last stage.
var _ pipemodel.Model = (*Model)(nil)

// MakeBatch draws a batch of training sequences from the corpus in the
// engine's batch currency: Tokens holds the flattened sequences, Targets
// the next-token labels (IgnoreIndex at each sequence's last position), and
// IsNext is unused padding so data.Batch splitting applies uniformly.
func MakeBatch(c *data.Corpus, batchSize, seqLen int) *data.Batch {
	tokens := SampleBatch(c, batchSize, seqLen)
	return &data.Batch{
		BatchSize: batchSize,
		SeqLen:    seqLen,
		Tokens:    tokens,
		Targets:   nextTokenTargets(tokens, batchSize, seqLen),
		IsNext:    make([]bool, batchSize),
	}
}

// PipelineBlocks returns the decoder blocks the engine partitions.
func (m *Model) PipelineBlocks() []*nn.TransformerBlock { return m.Blocks }

// SeqLen returns the model's fixed sequence length.
func (m *Model) SeqLen() int { return m.Config.SeqLen }

// EmbedForward runs the stage-0 path: token + position embeddings summed in
// a retained buffer (the decoder has no embedding norm; the final norm
// lives in the head). The returned matrix is owned by the model and valid
// until the next EmbedForward; the engine recomputes the embedding before
// each micro-batch's backward, so nothing else retains it.
func (m *Model) EmbedForward(mb *data.Batch) *tensor.Matrix {
	n := mb.BatchSize * mb.SeqLen
	if len(m.pipePosIDs) != n {
		m.pipePosIDs = make([]int, n)
		for i := range m.pipePosIDs {
			m.pipePosIDs[i] = i % mb.SeqLen
		}
	}
	m.pipeEmbBuf = tensor.Reuse(m.pipeEmbBuf, n, m.Config.DModel)
	m.TokEmb.LookupInto(m.pipeEmbBuf, mb.Tokens)
	m.PosEmb.LookupAddInto(m.pipeEmbBuf, m.pipePosIDs)
	return m.pipeEmbBuf
}

// EmbedBackward backpropagates into the embedding tables from the caches of
// the immediately preceding EmbedForward.
func (m *Model) EmbedBackward(grad *tensor.Matrix) {
	m.TokEmb.BackwardIDs(grad)
	m.PosEmb.BackwardIDs(grad)
}

// BatchTokenCount returns the number of predicted positions.
func (m *Model) BatchTokenCount(mb *data.Batch) int {
	var n int
	for _, t := range mb.Targets {
		if t != nn.IgnoreIndex {
			n++
		}
	}
	return n
}

// KFACLossScale is the next-token loss's averaging count.
func (m *Model) KFACLossScale(t pipemodel.Totals) float64 { return float64(t.Tokens) }

// EmbedParams returns the stage-0 embedding-path parameters (token and
// position tables; the decoder has no embedding norm).
func (m *Model) EmbedParams() []*nn.Param {
	var out []*nn.Param
	out = append(out, m.TokEmb.Params()...)
	out = append(out, m.PosEmb.Params()...)
	return out
}

// HeadParams returns the last-stage head parameters (final norm and LM
// head).
func (m *Model) HeadParams() []*nn.Param {
	var out []*nn.Param
	out = append(out, m.FinalNorm.Params()...)
	out = append(out, m.LMHead.Params()...)
	return out
}

// Replicate builds an independent copy of the model with the same
// configuration and parameter values — the per-replica weights of a
// data-parallel group.
func (m *Model) Replicate() (pipemodel.Model, error) {
	r, err := New(m.Config, 1)
	if err != nil {
		return nil, err
	}
	if err := nn.CopyParams(r.Params(), m.Params()); err != nil {
		return nil, err
	}
	return r, nil
}

// HeadLoss evaluates the final norm, LM head and next-token loss, weighted
// by the micro-batch's share of predicted positions.
func (m *Model) HeadLoss(mb *data.Batch, y *tensor.Matrix, t pipemodel.Totals) (pipemodel.Loss, error) {
	if err := m.checkHeadInput(mb, y, t); err != nil {
		return pipemodel.Loss{}, err
	}
	logits := m.LMHead.Forward(m.FinalNorm.Forward(y))
	loss, _, count := nn.CrossEntropy(logits, mb.Targets)
	var lm float64
	if t.Tokens > 0 {
		lm = loss * float64(count) / float64(t.Tokens)
	}
	return pipemodel.Loss{
		Total:      lm,
		Components: map[string]float64{"lm": lm},
		Tokens:     count,
	}, nil
}

// HeadGradient computes the globally-scaled next-token loss gradient w.r.t.
// the last block's output, accumulating head gradients as a side effect.
func (m *Model) HeadGradient(mb *data.Batch, y *tensor.Matrix, t pipemodel.Totals) (*tensor.Matrix, error) {
	if err := m.checkHeadInput(mb, y, t); err != nil {
		return nil, err
	}
	logits := m.LMHead.Forward(m.FinalNorm.Forward(y))
	_, grad, count := nn.CrossEntropy(logits, mb.Targets)
	if t.Tokens > 0 && count > 0 {
		grad.ScaleInPlace(float64(count) / float64(t.Tokens))
	}
	return m.FinalNorm.Backward(m.LMHead.Backward(grad)), nil
}

func (m *Model) checkHeadInput(mb *data.Batch, y *tensor.Matrix, t pipemodel.Totals) error {
	if y == nil {
		return fmt.Errorf("gpt: nil head input")
	}
	if y.Rows != mb.BatchSize*mb.SeqLen || y.Cols != m.Config.DModel {
		return fmt.Errorf("gpt: head input %dx%d, want %dx%d",
			y.Rows, y.Cols, mb.BatchSize*mb.SeqLen, m.Config.DModel)
	}
	if len(mb.Targets) != mb.BatchSize*mb.SeqLen {
		return fmt.Errorf("gpt: batch has %d targets, want %d (use gpt.MakeBatch)",
			len(mb.Targets), mb.BatchSize*mb.SeqLen)
	}
	return nil
}
