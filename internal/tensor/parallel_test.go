package tensor

import (
	"fmt"
	"sync"
	"testing"
)

// Scalar reference implementations: the naive triple loops the blocked
// parallel kernels must match bit for bit (each output element is reduced
// in the same serial order).

func refMatMul(a, b *Matrix) *Matrix {
	out := Zeros(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for kk := 0; kk < a.Cols; kk++ {
			av := a.Data[i*a.Cols+kk]
			for j := 0; j < b.Cols; j++ {
				out.Data[i*b.Cols+j] += av * b.Data[kk*b.Cols+j]
			}
		}
	}
	return out
}

func refMatMulT(a, b *Matrix) *Matrix {
	out := Zeros(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			var s float64
			for t := 0; t < a.Cols; t++ {
				s += a.Data[i*a.Cols+t] * b.Data[j*a.Cols+t]
			}
			out.Data[i*b.Rows+j] = s
		}
	}
	return out
}

func refTMatMul(a, b *Matrix) *Matrix {
	out := Zeros(a.Cols, b.Cols)
	refTMatMulAdd(out, a, b)
	return out
}

func refTMatMulAdd(dst, a, b *Matrix) {
	for r := 0; r < a.Rows; r++ {
		for i := 0; i < a.Cols; i++ {
			av := a.Data[r*a.Cols+i]
			for j := 0; j < b.Cols; j++ {
				dst.Data[i*b.Cols+j] += av * b.Data[r*b.Cols+j]
			}
		}
	}
}

// parityShapes covers the awkward cases: 1x1, single row/col, tall, wide,
// dimensions that are not multiples of the k-block or the unroll width, and
// shapes around the serial/parallel threshold.
var parityShapes = []struct{ n, k, p int }{
	{1, 1, 1},
	{1, 7, 3},
	{7, 1, 5},
	{2, 3, 1},
	{129, 3, 65},
	{3, 129, 2},
	{65, 63, 67},
	{130, 131, 5},
	{256, 64, 32},
	{64, 200, 64},
}

// withParallelism runs f under each parallelism/per-op-cap configuration,
// restoring the defaults afterwards.
func withParallelism(t *testing.T, f func(t *testing.T)) {
	t.Helper()
	defer SetParallelism(0)
	defer SetOpParallelism(0)
	for _, cfg := range []struct{ workers, cap int }{
		{1, 0}, {4, 0}, {4, 2}, {8, 3},
	} {
		SetParallelism(cfg.workers)
		SetOpParallelism(cfg.cap)
		t.Run(fmt.Sprintf("workers=%d cap=%d", cfg.workers, cfg.cap), f)
	}
}

func TestBlockedKernelsMatchScalarReference(t *testing.T) {
	withKernels(t, func(t *testing.T, exact bool) {
		withParallelism(t, func(t *testing.T) {
			for _, sh := range parityShapes {
				rng := NewRNG(uint64(7*sh.n + 13*sh.k + sh.p))
				a := RandN(rng, sh.n, sh.k, 1)
				b := RandN(rng, sh.k, sh.p, 1)
				bt := RandN(rng, sh.p, sh.k, 1) // for a * bt^T
				c := RandN(rng, sh.n, sh.p, 1)  // for a^T * c

				checkMat(t, fmt.Sprintf("MatMul %dx%dx%d", sh.n, sh.k, sh.p),
					MatMul(a, b), refMatMul(a, b), exact)
				got := Full(sh.n, sh.p, 42) // stale contents must be overwritten
				MatMulInto(got, a, b)
				checkMat(t, fmt.Sprintf("MatMulInto %dx%dx%d", sh.n, sh.k, sh.p),
					got, refMatMul(a, b), exact)

				checkMat(t, fmt.Sprintf("MatMulT %dx%dx%d", sh.n, sh.k, sh.p),
					MatMulT(a, bt), refMatMulT(a, bt), exact)
				got = Full(sh.n, sh.p, 42)
				MatMulTInto(got, a, bt)
				checkMat(t, fmt.Sprintf("MatMulTInto %dx%dx%d", sh.n, sh.k, sh.p),
					got, refMatMulT(a, bt), exact)

				checkMat(t, fmt.Sprintf("TMatMul %dx%dx%d", sh.n, sh.k, sh.p),
					TMatMul(a, c), refTMatMul(a, c), exact)
				got = Full(sh.k, sh.p, 42)
				TMatMulInto(got, a, c)
				checkMat(t, fmt.Sprintf("TMatMulInto %dx%dx%d", sh.n, sh.k, sh.p),
					got, refTMatMul(a, c), exact)

				// Fused accumulation: dst += a^T c on a non-trivial dst.
				acc := RandN(rng, sh.k, sh.p, 1)
				want := acc.Clone()
				refTMatMulAdd(want, a, c)
				TMatMulAddInto(acc, a, c)
				checkMat(t, fmt.Sprintf("TMatMulAddInto %dx%dx%d", sh.n, sh.k, sh.p),
					acc, want, exact)
			}
		})
	})
}

func TestKernelsZeroInnerDimension(t *testing.T) {
	withParallelism(t, func(t *testing.T) {
		a := Zeros(3, 0)
		b := Zeros(0, 4)
		got := Full(3, 4, 9)
		MatMulInto(got, a, b)
		if !got.Equal(Zeros(3, 4)) {
			t.Fatal("MatMulInto with k=0 must produce zeros")
		}
		c := Zeros(0, 3)
		d := Zeros(0, 5)
		got = Full(3, 5, 9)
		TMatMulInto(got, c, d)
		if !got.Equal(Zeros(3, 5)) {
			t.Fatal("TMatMulInto with no rows must produce zeros")
		}
		acc := Full(3, 5, 2)
		TMatMulAddInto(acc, c, d)
		if !acc.Equal(Full(3, 5, 2)) {
			t.Fatal("TMatMulAddInto with no rows must leave dst untouched")
		}
	})
}

func TestGramProductAliasing(t *testing.T) {
	// The K-FAC curvature kernel computes U^T U with a aliasing b.
	withKernels(t, func(t *testing.T, exact bool) {
		withParallelism(t, func(t *testing.T) {
			rng := NewRNG(5)
			u := RandN(rng, 37, 19, 1)
			got := Get(19, 19)
			defer Put(got)
			TMatMulInto(got, u, u)
			checkMat(t, "TMatMulInto(U, U)", got, refTMatMul(u, u), exact)
		})
	})
}

func TestResultsIdenticalAcrossParallelism(t *testing.T) {
	// Bit-identity across worker counts must hold for every kernel
	// variant, including FMA (the reduction order is fixed per variant).
	withKernels(t, func(t *testing.T, exact bool) {
		defer SetParallelism(0)
		defer SetOpParallelism(0)
		rng := NewRNG(11)
		a := RandN(rng, 150, 90, 1)
		b := RandN(rng, 90, 110, 1)
		SetParallelism(1)
		serial := MatMul(a, b)
		SetParallelism(6)
		SetOpParallelism(3)
		parallel := MatMul(a, b)
		if !serial.Equal(parallel) {
			t.Fatal("parallel MatMul is not bit-identical to serial")
		}
	})
}

func TestConcurrentKernelInvocations(t *testing.T) {
	// Device goroutines issue kernels concurrently against the shared
	// pool; every result must still match the reference.
	defer SetParallelism(0)
	defer SetOpParallelism(0)
	SetParallelism(4)
	SetOpParallelism(2)
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := NewRNG(uint64(100 + g))
			a := RandN(rng, 80, 70, 1)
			b := RandN(rng, 70, 60, 1)
			// The active variant is its own reference: concurrent
			// invocations must reproduce it bit for bit.
			want := MatMul(a, b)
			out := Zeros(80, 60)
			for iter := 0; iter < 10; iter++ {
				MatMulInto(out, a, b)
				if !out.Equal(want) {
					errs[g] = fmt.Errorf("goroutine %d iter %d: mismatch", g, iter)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestParallelismKnobs(t *testing.T) {
	defer SetParallelism(0)
	defer SetOpParallelism(0)
	SetParallelism(5)
	if Parallelism() != 5 {
		t.Fatalf("Parallelism() = %d after SetParallelism(5)", Parallelism())
	}
	SetOpParallelism(2)
	if OpParallelism() != 2 {
		t.Fatalf("OpParallelism() = %d after SetOpParallelism(2)", OpParallelism())
	}
	SetOpParallelism(-1)
	if OpParallelism() != 0 {
		t.Fatalf("OpParallelism() = %d, want 0 (uncapped)", OpParallelism())
	}
	SetParallelism(0)
	if Parallelism() < 1 {
		t.Fatalf("Parallelism() = %d after reset, want >= 1", Parallelism())
	}
}

func TestWorkspacePool(t *testing.T) {
	m := Get(4, 5)
	if m.Rows != 4 || m.Cols != 5 || len(m.Data) != 20 {
		t.Fatalf("Get(4,5) returned %dx%d with %d data", m.Rows, m.Cols, len(m.Data))
	}
	for i := range m.Data {
		m.Data[i] = float64(i)
	}
	Put(m)
	// A second Get of a compatible size must be well-formed regardless of
	// whether it reuses the recycled buffer.
	m2 := Get(3, 6)
	if m2.Rows != 3 || m2.Cols != 6 || len(m2.Data) != 18 {
		t.Fatalf("Get(3,6) returned %dx%d with %d data", m2.Rows, m2.Cols, len(m2.Data))
	}
	Put(m2)

	src := FromRows([][]float64{{1, 2}, {3, 4}})
	c := GetClone(src)
	if !c.Equal(src) {
		t.Fatal("GetClone does not copy contents")
	}
	Put(c)

	e := Get(0, 7)
	if e.Rows != 0 || e.Cols != 7 || len(e.Data) != 0 {
		t.Fatalf("Get(0,7) returned %dx%d with %d data", e.Rows, e.Cols, len(e.Data))
	}
	Put(e)
	Put(nil) // must not panic
}

func TestReuse(t *testing.T) {
	a := Zeros(3, 4)
	if Reuse(a, 3, 4) != a {
		t.Fatal("Reuse must return the buffer when the shape matches")
	}
	b := Reuse(a, 2, 4)
	if b == a || b.Rows != 2 || b.Cols != 4 {
		t.Fatal("Reuse must allocate on shape change")
	}
	if c := Reuse(nil, 1, 1); c == nil || c.Rows != 1 {
		t.Fatal("Reuse(nil) must allocate")
	}
}
