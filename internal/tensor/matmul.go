package tensor

import (
	"fmt"
	"math"
)

// MatMul returns a*b. It panics if the inner dimensions disagree.
//
// The loop nest is (i, k, j) so the innermost loop walks both the output row
// and the b row contiguously, which is the standard cache-friendly ordering
// for row-major data.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch: %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := Zeros(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a*b, overwriting dst. dst must already have
// shape a.Rows x b.Cols and must not alias a or b.
func MatMulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulInto inner dimension mismatch: %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulInto dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	n, k, p := a.Rows, a.Cols, b.Cols
	dst.Zero()
	for i := 0; i < n; i++ {
		arow := a.Data[i*k : (i+1)*k]
		drow := dst.Data[i*p : (i+1)*p]
		for kk, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[kk*p : (kk+1)*p]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulT returns a * b^T without materializing the transpose.
func MatMulT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulT dimension mismatch: %dx%d * (%dx%d)^T", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := Zeros(a.Rows, b.Rows)
	k := a.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*b.Rows : (i+1)*b.Rows]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var s float64
			for t, av := range arow {
				s += av * brow[t]
			}
			orow[j] = s
		}
	}
	return out
}

// TMatMul returns a^T * b without materializing the transpose.
func TMatMul(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: TMatMul dimension mismatch: (%dx%d)^T * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := Zeros(a.Cols, b.Cols)
	for r := 0; r < a.Rows; r++ {
		arow := a.Data[r*a.Cols : (r+1)*a.Cols]
		brow := b.Data[r*b.Cols : (r+1)*b.Cols]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*b.Cols : (i+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatVec returns the matrix-vector product a*x as a new slice.
func MatVec(a *Matrix, x []float64) []float64 {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("tensor: MatVec dimension mismatch: %dx%d * vec(%d)", a.Rows, a.Cols, len(x)))
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// VecMat returns x^T * a as a new slice (length a.Cols).
func VecMat(x []float64, a *Matrix) []float64 {
	if a.Rows != len(x) {
		panic(fmt.Sprintf("tensor: VecMat dimension mismatch: vec(%d)^T * %dx%d", len(x), a.Rows, a.Cols))
	}
	out := make([]float64, a.Cols)
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j, v := range row {
			out[j] += xv * v
		}
	}
	return out
}

// Outer returns the outer product x y^T as a len(x) x len(y) matrix.
func Outer(x, y []float64) *Matrix {
	out := Zeros(len(x), len(y))
	for i, xv := range x {
		row := out.Data[i*len(y) : (i+1)*len(y)]
		for j, yv := range y {
			row[j] = xv * yv
		}
	}
	return out
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Dot length mismatch: %d vs %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	return math.Sqrt(Dot(x, x))
}
