package tensor

import (
	"fmt"
	"math"
)

// The matmul entry points dispatch on the active kernel variant (see
// dispatch.go): KernelTiled and KernelFMA — and every variant in float32
// mode — route through the packed-panel GEMM driver in gemm.go, while
// KernelScalar runs the cache-blocked scalar chunk loops below, kept as
// the parity reference. Either way output rows are split across the
// shared worker pool (parallel.go) with a serial fallback below
// serialWorkLimit, and every output element is reduced in the same
// ascending contraction order regardless of chunking, so results are
// bit-for-bit identical across parallelism settings per variant. The
// *Into variants write into caller-provided buffers and allocate nothing
// in steady state; dst must never alias a or b (a and b may alias each
// other, as in Gram products). The non-Into variants return matrices from
// the workspace pool — callers may Put them when done.

// kBlock is the panel height of the k-blocked MatMul inner loops: a
// kBlock x Cols panel of b stays hot in cache while a chunk of output rows
// sweeps over it.
const kBlock = 128

// MatMul returns a*b in a pooled matrix (the caller may Put it). It
// panics if the inner dimensions disagree.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch: %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := Get(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a*b, overwriting dst. dst must already have
// shape a.Rows x b.Cols and must not alias a or b.
func MatMulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulInto inner dimension mismatch: %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulInto dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	if a.Cols == 0 {
		dst.Zero()
		return
	}
	if kern := ActiveKernel(); kern != KernelScalar || F32() {
		gemmPacked(dst, a, b, false, false, false, kern)
		return
	}
	parRun(matMulChunk, dst, a, b, a.Rows, a.Rows*a.Cols*b.Cols)
}

// matMulChunk computes dst rows [i0, i1) of dst = a*b with k-blocked ikj
// loops. The first k iteration stores instead of accumulating, so dst needs
// no pre-zeroing.
func matMulChunk(dst, a, b *Matrix, i0, i1 int) {
	k, p := a.Cols, b.Cols
	for kk0 := 0; kk0 < k; kk0 += kBlock {
		kk1 := kk0 + kBlock
		if kk1 > k {
			kk1 = k
		}
		for i := i0; i < i1; i++ {
			arow := a.Data[i*k : (i+1)*k]
			drow := dst.Data[i*p : (i+1)*p]
			kk := kk0
			if kk0 == 0 {
				scaleStore(drow, arow[0], b.Data[:p])
				kk = 1
			}
			for ; kk+2 <= kk1; kk += 2 {
				axpy2(drow, arow[kk], b.Data[kk*p:(kk+1)*p], arow[kk+1], b.Data[(kk+1)*p:(kk+2)*p])
			}
			if kk < kk1 {
				axpy(drow, arow[kk], b.Data[kk*p:(kk+1)*p])
			}
		}
	}
}

// MatMulT returns a * b^T without materializing the transpose, in a
// pooled matrix (the caller may Put it).
func MatMulT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulT dimension mismatch: %dx%d * (%dx%d)^T", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := Get(a.Rows, b.Rows)
	MatMulTInto(out, a, b)
	return out
}

// MatMulTInto computes dst = a * b^T, overwriting dst. dst must have shape
// a.Rows x b.Rows and must not alias a or b.
func MatMulTInto(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTInto dimension mismatch: %dx%d * (%dx%d)^T", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTInto dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	if kern := ActiveKernel(); kern != KernelScalar || F32() {
		gemmPacked(dst, a, b, false, true, false, kern)
		return
	}
	parRun(matMulTChunk, dst, a, b, a.Rows, a.Rows*a.Cols*b.Rows)
}

// matMulTChunk computes dst rows [i0, i1) of dst = a * b^T as dot products,
// four b rows at a time so each pass over a's row feeds four independent
// accumulators.
func matMulTChunk(dst, a, b *Matrix, i0, i1 int) {
	k, br := a.Cols, b.Rows
	for i := i0; i < i1; i++ {
		arow := a.Data[i*k : (i+1)*k]
		drow := dst.Data[i*br : (i+1)*br]
		j := 0
		for ; j+4 <= br; j += 4 {
			b0 := b.Data[j*k : j*k+k]
			b1 := b.Data[(j+1)*k : (j+1)*k+k]
			b2 := b.Data[(j+2)*k : (j+2)*k+k]
			b3 := b.Data[(j+3)*k : (j+3)*k+k]
			var s0, s1, s2, s3 float64
			for t, av := range arow {
				s0 += av * b0[t]
				s1 += av * b1[t]
				s2 += av * b2[t]
				s3 += av * b3[t]
			}
			drow[j], drow[j+1], drow[j+2], drow[j+3] = s0, s1, s2, s3
		}
		for ; j < br; j++ {
			brow := b.Data[j*k : j*k+k]
			var s float64
			for t, av := range arow {
				s += av * brow[t]
			}
			drow[j] = s
		}
	}
}

// TMatMul returns a^T * b without materializing the transpose, in a
// pooled matrix (the caller may Put it).
func TMatMul(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: TMatMul dimension mismatch: (%dx%d)^T * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := Get(a.Cols, b.Cols)
	TMatMulInto(out, a, b)
	return out
}

// TMatMulInto computes dst = a^T * b, overwriting dst. dst must have shape
// a.Cols x b.Cols and must not alias a or b (a may alias b, as in the Gram
// products U^T U of the K-FAC curvature kernels).
func TMatMulInto(dst, a, b *Matrix) {
	checkTMatMul(dst, a, b, "TMatMulInto")
	if a.Rows == 0 {
		dst.Zero()
		return
	}
	if kern := ActiveKernel(); kern != KernelScalar || F32() {
		gemmPacked(dst, a, b, true, false, false, kern)
		return
	}
	parRun(tMatMulZeroChunk, dst, a, b, a.Cols, a.Rows*a.Cols*b.Cols)
}

// TMatMulAddInto computes dst += a^T * b — the fused form of the
// gradient-accumulation pattern dst.AddInPlace(TMatMul(a, b)), with no
// temporary. dst must have shape a.Cols x b.Cols and must not alias a or b.
func TMatMulAddInto(dst, a, b *Matrix) {
	checkTMatMul(dst, a, b, "TMatMulAddInto")
	if a.Rows == 0 {
		return
	}
	if kern := ActiveKernel(); kern != KernelScalar || F32() {
		gemmPacked(dst, a, b, true, false, true, kern)
		return
	}
	parRun(tMatMulChunk, dst, a, b, a.Cols, a.Rows*a.Cols*b.Cols)
}

func checkTMatMul(dst, a, b *Matrix, op string) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: %s dimension mismatch: (%dx%d)^T * %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s dst shape %dx%d, want %dx%d", op, dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
}

// tMatMulChunk accumulates dst rows [i0, i1) of dst += a^T * b: for each
// input row r, column i of a scales row r of b into output row i. Summation
// runs in r order for every element, matching the scalar reference exactly.
func tMatMulChunk(dst, a, b *Matrix, i0, i1 int) {
	k, p := a.Cols, b.Cols
	r := 0
	for ; r+2 <= a.Rows; r += 2 {
		a0 := a.Data[r*k : (r+1)*k]
		a1 := a.Data[(r+1)*k : (r+2)*k]
		b0 := b.Data[r*p : (r+1)*p]
		b1 := b.Data[(r+1)*p : (r+2)*p]
		for i := i0; i < i1; i++ {
			axpy2(dst.Data[i*p:(i+1)*p], a0[i], b0, a1[i], b1)
		}
	}
	if r < a.Rows {
		arow := a.Data[r*k : (r+1)*k]
		brow := b.Data[r*p : (r+1)*p]
		for i := i0; i < i1; i++ {
			axpy(dst.Data[i*p:(i+1)*p], arow[i], brow)
		}
	}
}

// tMatMulZeroChunk is tMatMulChunk with the r = 0 pass storing instead of
// accumulating, so dst needs no pre-zeroing.
func tMatMulZeroChunk(dst, a, b *Matrix, i0, i1 int) {
	k, p := a.Cols, b.Cols
	for i := i0; i < i1; i++ {
		scaleStore(dst.Data[i*p:(i+1)*p], a.Data[i], b.Data[:p])
	}
	r := 1
	for ; r+2 <= a.Rows; r += 2 {
		a0 := a.Data[r*k : (r+1)*k]
		a1 := a.Data[(r+1)*k : (r+2)*k]
		b0 := b.Data[r*p : (r+1)*p]
		b1 := b.Data[(r+1)*p : (r+2)*p]
		for i := i0; i < i1; i++ {
			axpy2(dst.Data[i*p:(i+1)*p], a0[i], b0, a1[i], b1)
		}
	}
	if r < a.Rows {
		arow := a.Data[r*k : (r+1)*k]
		brow := b.Data[r*p : (r+1)*p]
		for i := i0; i < i1; i++ {
			axpy(dst.Data[i*p:(i+1)*p], arow[i], brow)
		}
	}
}

// axpy computes dst += a*x element-wise. The reslice lets the compiler
// eliminate both bounds checks in the loop body.
func axpy(dst []float64, a float64, x []float64) {
	dst = dst[:len(x)]
	for j, v := range x {
		dst[j] += a * v
	}
}

// axpy2 computes dst += a1*x1 followed by dst += a2*x2 in one pass, with a
// single load/store of each dst element. The two updates stay sequential
// per element (t is rounded before x2's term is added), so the result is
// bit-identical to two separate axpy calls — the property the parity and
// cross-schedule identity tests rely on.
func axpy2(dst []float64, a1 float64, x1 []float64, a2 float64, x2 []float64) {
	dst = dst[:len(x1)]
	x2 = x2[:len(x1)]
	for j, v := range x1 {
		t := dst[j] + a1*v
		dst[j] = t + a2*x2[j]
	}
}

// scaleStore computes dst = a*x element-wise (bounds-check free, as axpy).
func scaleStore(dst []float64, a float64, x []float64) {
	dst = dst[:len(x)]
	for j, v := range x {
		dst[j] = a * v
	}
}

// MatVec returns the matrix-vector product a*x as a new slice.
func MatVec(a *Matrix, x []float64) []float64 {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("tensor: MatVec dimension mismatch: %dx%d * vec(%d)", a.Rows, a.Cols, len(x)))
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// VecMat returns x^T * a as a new slice (length a.Cols).
func VecMat(x []float64, a *Matrix) []float64 {
	if a.Rows != len(x) {
		panic(fmt.Sprintf("tensor: VecMat dimension mismatch: vec(%d)^T * %dx%d", len(x), a.Rows, a.Cols))
	}
	out := make([]float64, a.Cols)
	for i, xv := range x {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		axpy(out, xv, row)
	}
	return out
}

// Outer returns the outer product x y^T as a len(x) x len(y) matrix.
func Outer(x, y []float64) *Matrix {
	out := Zeros(len(x), len(y))
	for i, xv := range x {
		row := out.Data[i*len(y) : (i+1)*len(y)]
		for j, yv := range y {
			row[j] = xv * yv
		}
	}
	return out
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Dot length mismatch: %d vs %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	return math.Sqrt(Dot(x, x))
}
