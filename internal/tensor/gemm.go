package tensor

import "sync"

// The packed-panel GEMM driver: the shared implementation behind the
// MatMul*/TMatMul* entry points for KernelTiled and KernelFMA (and for
// every kernel in float32 mode). The structure is GotoBLAS-style:
//
//	pack B once per call (nr-column panels, shared read-only)
//	split M into mr-row panels, fan panel ranges out to pool workers
//	per worker: MC-row blocks x KC-deep slices of packed A,
//	            micro-kernel over the tile grid
//
// Determinism: the tile grid and block boundaries depend only on the
// operand shapes and the kernel's (mr, nr) — never on the worker count —
// and workers own disjoint row-panel ranges, so results are bit-identical
// across parallelism settings per variant. KC blocking is bit-transparent
// because the micro-kernels resume each block from the stored C values
// (one continuous ascending-k reduction per element, no per-block
// subtotals). All pack, staging and context buffers come from the
// workspace pools; steady-state calls allocate nothing.

const (
	// gemmMC is the row-block height: one packed A block is at most
	// gemmMC x gemmKC (256 KiB float64), sized for L2 residency. It must
	// be a multiple of every kernel's mr so worker-chunk row panels stay
	// aligned with the shape-global panel grid.
	gemmMC = 128
	// gemmKC is the contraction-block depth: one packed B panel slice is
	// gemmKC x nr (8 KiB float64 at nr=4), sized for L1 residency.
	gemmKC = 256
)

type microF64 func(c []float64, ldc int, ap, bp []float64, kc int)
type microF32 func(c []float32, ldc int, ap, bp []float32, kc int)

// gemmCtx is the per-call state shared by all workers of one packed GEMM.
// Contexts are pooled so steady-state calls allocate nothing.
type gemmCtx struct {
	dst, a, b *Matrix
	m, n, k   int
	aT, bT    bool
	acc       bool
	f32       bool
	mr, nr    int
	nPanB     int
	bp        *Matrix   // packed B, float64 path
	bp32      *Matrix32 // packed B, float32 path
	k64       microF64
	k32       microF32
}

var gemmCtxPool = sync.Pool{New: func() any { return new(gemmCtx) }}

// gemmPacked computes dst = op(a)*op(b) (or dst += with acc) through the
// packed-panel pipeline. op is transpose when aT/bT is set. kern selects
// the micro-kernel family; KernelScalar callers only arrive here in
// float32 mode, where the tiled Go kernel doubles as the scalar
// reference. dst must not alias a or b (a may alias b).
func gemmPacked(dst, a, b *Matrix, aT, bT, acc bool, kern Kernel) {
	m, n := dst.Rows, dst.Cols
	k := a.Cols
	if aT {
		k = a.Rows
	}
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		if !acc {
			dst.Zero()
		}
		return
	}
	g := gemmCtxPool.Get().(*gemmCtx)
	g.dst, g.a, g.b = dst, a, b
	g.m, g.n, g.k = m, n, k
	g.aT, g.bT, g.acc = aT, bT, acc
	g.f32 = F32()
	if g.f32 {
		if kern == KernelFMA {
			g.mr, g.nr, g.k32 = 8, 8, fma8x8f32
		} else {
			g.mr, g.nr, g.k32 = 4, 2, mk4x2f32
		}
	} else {
		if kern == KernelFMA {
			g.mr, g.nr, g.k64 = 8, 4, fma8x4f64
		} else {
			g.mr, g.nr, g.k64 = 4, 2, mk4x2f64
		}
	}
	g.nPanB = (n + g.nr - 1) / g.nr
	if g.f32 {
		g.bp32 = Get32(1, g.nPanB*g.nr*k)
		packBF32(g.bp32.Data, b, bT, n, k, g.nr)
	} else {
		g.bp = Get(1, g.nPanB*g.nr*k)
		packBF64(g.bp.Data, b, bT, n, k, g.nr)
	}

	nPanA := (m + g.mr - 1) / g.mr
	parRunGemm(g, nPanA, m*n*k)

	if g.f32 {
		Put32(g.bp32)
	} else {
		Put(g.bp)
	}
	*g = gemmCtx{}
	gemmCtxPool.Put(g)
}

// parRunGemm fans row-panel ranges [0, nPan) out to the worker pool with
// the same work-conserving handoff as parRun: parked workers take chunks,
// the caller runs the rest inline. work gates the serial fallback.
func parRunGemm(g *gemmCtx, nPan, work int) {
	w := opWorkers()
	if w > nPan {
		w = nPan
	}
	if w <= 1 || work < serialWorkLimit {
		gemmRange(g, 0, nPan)
		return
	}
	chunk := (nPan + w - 1) / w
	wg := wgPool.Get().(*sync.WaitGroup)
	p := curPool.Load()
	for lo := chunk; lo < nPan; lo += chunk {
		hi := lo + chunk
		if hi > nPan {
			hi = nPan
		}
		wg.Add(1)
		t := task{g: g, lo: lo, hi: hi, wg: wg}
		select {
		case p.ch <- t:
		default:
			gemmRange(g, lo, hi)
			wg.Done()
		}
	}
	gemmRange(g, 0, chunk)
	wg.Wait()
	wgPool.Put(wg)
}

// gemmRange computes the output row panels [p0, p1) of one packed GEMM.
// Runs on pool workers; each invocation owns its row range exclusively.
func gemmRange(g *gemmCtx, p0, p1 int) {
	if g.f32 {
		gemmRange32(g, p0, p1)
		return
	}
	mr, nr, n := g.mr, g.nr, g.n
	i0 := p0 * mr
	iEnd := p1 * mr
	if iEnd > g.m {
		iEnd = g.m
	}
	kcMax := g.k
	if kcMax > gemmKC {
		kcMax = gemmKC
	}
	mcMax := iEnd - i0
	if mcMax > gemmMC {
		mcMax = gemmMC
	}
	mcPad := (mcMax + mr - 1) / mr * mr
	// One pooled buffer holds the packed A block plus the edge-tile
	// scratch (its stale contents only ever land in discarded lanes).
	ap := Get(1, mcPad*kcMax+mr*nr)
	apData := ap.Data[:mcPad*kcMax]
	tile := ap.Data[mcPad*kcMax : mcPad*kcMax+mr*nr]
	for ib := i0; ib < iEnd; ib += gemmMC {
		ic := iEnd - ib
		if ic > gemmMC {
			ic = gemmMC
		}
		if !g.acc {
			z := g.dst.Data[ib*n : (ib+ic)*n]
			for i := range z {
				z[i] = 0
			}
		}
		for kk := 0; kk < g.k; kk += gemmKC {
			kc := g.k - kk
			if kc > gemmKC {
				kc = gemmKC
			}
			packAF64(apData, g.a, g.aT, ib, ic, kk, kc, mr)
			nPanA := (ic + mr - 1) / mr
			for jp := 0; jp < g.nPanB; jp++ {
				jc := n - jp*nr
				if jc > nr {
					jc = nr
				}
				bpan := g.bp.Data[jp*nr*g.k+kk*nr : jp*nr*g.k+(kk+kc)*nr]
				for ip := 0; ip < nPanA; ip++ {
					row := ib + ip*mr
					rows := ic - ip*mr
					if rows > mr {
						rows = mr
					}
					apan := apData[ip*mr*kc : (ip+1)*mr*kc]
					if rows == mr && jc == nr {
						g.k64(g.dst.Data[row*n+jp*nr:], n, apan, bpan, kc)
					} else {
						for r := 0; r < rows; r++ {
							copy(tile[r*nr:r*nr+jc], g.dst.Data[(row+r)*n+jp*nr:(row+r)*n+jp*nr+jc])
						}
						g.k64(tile, nr, apan, bpan, kc)
						for r := 0; r < rows; r++ {
							copy(g.dst.Data[(row+r)*n+jp*nr:(row+r)*n+jp*nr+jc], tile[r*nr:r*nr+jc])
						}
					}
				}
			}
		}
	}
	Put(ap)
}

// gemmRange32 is the float32-mode worker body: panels are packed as
// float32, the product accumulates in a padded float32 staging block
// (every tile full, so no edge handling), and the valid region widens
// into the float64 dst on write-back — store for overwrite semantics,
// add-in-float64 for accumulate semantics, preserving the float64
// precision of gradient accumulators.
func gemmRange32(g *gemmCtx, p0, p1 int) {
	mr, nr, n := g.mr, g.nr, g.n
	i0 := p0 * mr
	iEnd := p1 * mr
	if iEnd > g.m {
		iEnd = g.m
	}
	kcMax := g.k
	if kcMax > gemmKC {
		kcMax = gemmKC
	}
	mcMax := iEnd - i0
	if mcMax > gemmMC {
		mcMax = gemmMC
	}
	mcPad := (mcMax + mr - 1) / mr * mr
	nPad := g.nPanB * nr
	ap := Get32(1, mcPad*kcMax)
	stg := Get32(1, mcPad*nPad)
	for ib := i0; ib < iEnd; ib += gemmMC {
		ic := iEnd - ib
		if ic > gemmMC {
			ic = gemmMC
		}
		icPad := (ic + mr - 1) / mr * mr
		sd := stg.Data[:icPad*nPad]
		for i := range sd {
			sd[i] = 0
		}
		for kk := 0; kk < g.k; kk += gemmKC {
			kc := g.k - kk
			if kc > gemmKC {
				kc = gemmKC
			}
			packAF32(ap.Data, g.a, g.aT, ib, ic, kk, kc, mr)
			nPanA := icPad / mr
			for jp := 0; jp < g.nPanB; jp++ {
				bpan := g.bp32.Data[jp*nr*g.k+kk*nr : jp*nr*g.k+(kk+kc)*nr]
				for ip := 0; ip < nPanA; ip++ {
					g.k32(sd[ip*mr*nPad+jp*nr:], nPad, ap.Data[ip*mr*kc:(ip+1)*mr*kc], bpan, kc)
				}
			}
		}
		if g.acc {
			for r := 0; r < ic; r++ {
				srow := sd[r*nPad : r*nPad+n]
				drow := g.dst.Data[(ib+r)*n : (ib+r)*n+n]
				for j, v := range srow {
					drow[j] += float64(v)
				}
			}
		} else {
			for r := 0; r < ic; r++ {
				srow := sd[r*nPad : r*nPad+n]
				drow := g.dst.Data[(ib+r)*n : (ib+r)*n+n]
				for j, v := range srow {
					drow[j] = float64(v)
				}
			}
		}
	}
	Put32(ap)
	Put32(stg)
}
