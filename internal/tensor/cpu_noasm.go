//go:build !amd64 || purego

package tensor

// Non-amd64 targets and purego builds have no assembly micro-kernels; the
// packed driver uses the portable tiled Go kernels only.
const haveFMAKernels = false
