package tensor

// Panel packing for the GotoBLAS-style GEMM driver (gemm.go). A panels are
// mr-row, k-major (lane r of step t at t*mr+r); B panels are nr-column,
// k-major (lane j of step t at t*nr+j). Transposed operands are absorbed
// here — the micro-kernels only ever see packed panels. Partial panels at
// the M/N edges are zero-padded so edge tiles run the same kernel as full
// tiles (the padded lanes' results are discarded); the k dimension is
// never padded, keeping per-element reduction length exact. The float32
// packers narrow while packing, which is the only float64→float32
// conversion on the compute path.

// packAF64 packs rows [ib, ib+ic) of the (possibly transposed) A operand,
// k slice [kk, kk+kc), into mr-row panels in buf. With aT, the logical
// A(row, t) is a.Data[t*a.Cols+row].
func packAF64(buf []float64, a *Matrix, aT bool, ib, ic, kk, kc, mr int) {
	nPan := (ic + mr - 1) / mr
	ac := a.Cols
	for p := 0; p < nPan; p++ {
		dst := buf[p*mr*kc : (p+1)*mr*kc]
		base := ib + p*mr
		rows := ic - p*mr
		if rows > mr {
			rows = mr
		}
		if aT {
			for t := 0; t < kc; t++ {
				src := a.Data[(kk+t)*ac+base : (kk+t)*ac+base+rows]
				o := t * mr
				for r, v := range src {
					dst[o+r] = v
				}
				for r := rows; r < mr; r++ {
					dst[o+r] = 0
				}
			}
		} else {
			for r := 0; r < rows; r++ {
				src := a.Data[(base+r)*ac+kk : (base+r)*ac+kk+kc]
				for t, v := range src {
					dst[t*mr+r] = v
				}
			}
			for r := rows; r < mr; r++ {
				for t := 0; t < kc; t++ {
					dst[t*mr+r] = 0
				}
			}
		}
	}
}

// packBF64 packs the full k range of the (possibly transposed) B operand
// into nr-column panels in buf — done once per GEMM, shared read-only by
// every worker. With bT, the logical B(t, j) is b.Data[j*b.Cols+t].
func packBF64(buf []float64, b *Matrix, bT bool, n, k, nr int) {
	nPan := (n + nr - 1) / nr
	bc := b.Cols
	for jp := 0; jp < nPan; jp++ {
		dst := buf[jp*nr*k : (jp+1)*nr*k]
		j0 := jp * nr
		cols := n - j0
		if cols > nr {
			cols = nr
		}
		if bT {
			for j := 0; j < cols; j++ {
				src := b.Data[(j0+j)*bc : (j0+j)*bc+k]
				for t, v := range src {
					dst[t*nr+j] = v
				}
			}
			for j := cols; j < nr; j++ {
				for t := 0; t < k; t++ {
					dst[t*nr+j] = 0
				}
			}
		} else {
			for t := 0; t < k; t++ {
				src := b.Data[t*bc+j0 : t*bc+j0+cols]
				o := t * nr
				for j, v := range src {
					dst[o+j] = v
				}
				for j := cols; j < nr; j++ {
					dst[o+j] = 0
				}
			}
		}
	}
}

// packAF32 is packAF64 narrowing to float32.
func packAF32(buf []float32, a *Matrix, aT bool, ib, ic, kk, kc, mr int) {
	nPan := (ic + mr - 1) / mr
	ac := a.Cols
	for p := 0; p < nPan; p++ {
		dst := buf[p*mr*kc : (p+1)*mr*kc]
		base := ib + p*mr
		rows := ic - p*mr
		if rows > mr {
			rows = mr
		}
		if aT {
			for t := 0; t < kc; t++ {
				src := a.Data[(kk+t)*ac+base : (kk+t)*ac+base+rows]
				o := t * mr
				for r, v := range src {
					dst[o+r] = float32(v)
				}
				for r := rows; r < mr; r++ {
					dst[o+r] = 0
				}
			}
		} else {
			for r := 0; r < rows; r++ {
				src := a.Data[(base+r)*ac+kk : (base+r)*ac+kk+kc]
				for t, v := range src {
					dst[t*mr+r] = float32(v)
				}
			}
			for r := rows; r < mr; r++ {
				for t := 0; t < kc; t++ {
					dst[t*mr+r] = 0
				}
			}
		}
	}
}

// packBF32 is packBF64 narrowing to float32.
func packBF32(buf []float32, b *Matrix, bT bool, n, k, nr int) {
	nPan := (n + nr - 1) / nr
	bc := b.Cols
	for jp := 0; jp < nPan; jp++ {
		dst := buf[jp*nr*k : (jp+1)*nr*k]
		j0 := jp * nr
		cols := n - j0
		if cols > nr {
			cols = nr
		}
		if bT {
			for j := 0; j < cols; j++ {
				src := b.Data[(j0+j)*bc : (j0+j)*bc+k]
				for t, v := range src {
					dst[t*nr+j] = float32(v)
				}
			}
			for j := cols; j < nr; j++ {
				for t := 0; t < k; t++ {
					dst[t*nr+j] = 0
				}
			}
		} else {
			for t := 0; t < k; t++ {
				src := b.Data[t*bc+j0 : t*bc+j0+cols]
				o := t * nr
				for j, v := range src {
					dst[o+j] = float32(v)
				}
				for j := cols; j < nr; j++ {
					dst[o+j] = 0
				}
			}
		}
	}
}
