//go:build amd64 && !purego

package tensor

// Runtime CPU-feature detection for the FMA assembly micro-kernels. The
// checks follow the Intel SDM procedure: AVX2+FMA instructions are safe to
// execute only when CPUID reports them AND the OS has enabled saving the
// YMM state via XSETBV (OSXSAVE + XCR0 bits 1:2).

// cpuid executes the CPUID instruction (implemented in cpu_amd64.s).
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register XCR0 (implemented in cpu_amd64.s).
func xgetbv() (eax, edx uint32)

// haveFMAKernels reports whether the AVX2+FMA assembly micro-kernels can
// run on this CPU.
var haveFMAKernels = detectFMA()

func detectFMA() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		bitFMA     = 1 << 12
		bitOSXSAVE = 1 << 27
		bitAVX     = 1 << 28
	)
	if ecx1&bitFMA == 0 || ecx1&bitOSXSAVE == 0 || ecx1&bitAVX == 0 {
		return false
	}
	// OS must have enabled XMM (bit 1) and YMM (bit 2) state saving.
	xcr0, _ := xgetbv()
	if xcr0&6 != 6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const bitAVX2 = 1 << 5
	return ebx7&bitAVX2 != 0
}
