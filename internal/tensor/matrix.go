// Package tensor provides the dense linear-algebra substrate used by the
// PipeFisher reproduction: row-major float64 matrices, matrix products,
// Cholesky factorization and inversion, Kronecker-product identities, and a
// deterministic random number source.
//
// Everything is implemented from scratch on the standard library. The
// matrix-product kernels are cache-blocked and goroutine-parallel behind a
// shared worker pool (SetParallelism sizes the total budget,
// SetOpParallelism caps what one kernel invocation may recruit — the
// pipeline engine uses the latter to give each device goroutine a fair
// share of the cores), with a serial fallback below a work threshold.
// Results are bit-for-bit identical across parallelism settings. A pooled
// matrix workspace (Get/Put/GetClone) backs the zero-alloc hot paths; see
// pool.go for the ownership contract.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64 values.
//
// The zero value is an empty (0x0) matrix. Use New, Zeros, Eye or one of the
// random constructors to build a matrix with a shape.
type Matrix struct {
	Rows int
	Cols int
	// Data holds the entries in row-major order: element (i, j) lives at
	// Data[i*Cols+j]. len(Data) == Rows*Cols always holds for matrices
	// built through this package's constructors.
	Data []float64
}

// New builds a Rows x Cols matrix backed by the provided data slice. The
// slice is used directly (not copied). It panics if len(data) != rows*cols.
func New(rows, cols int, data []float64) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d does not match %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Zeros returns a rows x cols matrix of zeros.
func Zeros(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Eye returns the n x n identity matrix.
func Eye(n int) *Matrix {
	m := Zeros(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Full returns a rows x cols matrix with every entry set to v.
func Full(rows, cols int, v float64) *Matrix {
	m := Zeros(rows, cols)
	for i := range m.Data {
		m.Data[i] = v
	}
	return m
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return Zeros(0, 0)
	}
	cols := len(rows[0])
	m := Zeros(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("tensor: ragged rows: row 0 has %d cols, row %d has %d", cols, i, len(r)))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// At returns element (i, j). It panics on out-of-range indices.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns element (i, j) = v. It panics on out-of-range indices.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("tensor: index (%d,%d) out of range for %dx%d matrix", i, j, m.Rows, m.Cols))
	}
}

// Row returns a view (not a copy) of row i as a slice of length Cols.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("tensor: row %d out of range for %dx%d matrix", i, m.Rows, m.Cols))
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("tensor: col %d out of range for %dx%d matrix", j, m.Rows, m.Cols))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := Zeros(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom copies src into m. Shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	m.mustSameShape(src, "CopyFrom")
	copy(m.Data, src.Data)
}

// Zero resets every element of m to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := Zeros(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// Add returns m + other as a new matrix.
func (m *Matrix) Add(other *Matrix) *Matrix {
	m.mustSameShape(other, "Add")
	out := m.Clone()
	for i, v := range other.Data {
		out.Data[i] += v
	}
	return out
}

// AddInPlace sets m += other.
func (m *Matrix) AddInPlace(other *Matrix) {
	m.mustSameShape(other, "AddInPlace")
	for i, v := range other.Data {
		m.Data[i] += v
	}
}

// AddScaledInPlace sets m += alpha*other (a fused axpy).
func (m *Matrix) AddScaledInPlace(alpha float64, other *Matrix) {
	m.mustSameShape(other, "AddScaledInPlace")
	for i, v := range other.Data {
		m.Data[i] += alpha * v
	}
}

// Sub returns m - other as a new matrix.
func (m *Matrix) Sub(other *Matrix) *Matrix {
	m.mustSameShape(other, "Sub")
	out := m.Clone()
	for i, v := range other.Data {
		out.Data[i] -= v
	}
	return out
}

// Scale returns alpha*m as a new matrix.
func (m *Matrix) Scale(alpha float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= alpha
	}
	return out
}

// ScaleInPlace sets m *= alpha.
func (m *Matrix) ScaleInPlace(alpha float64) {
	for i := range m.Data {
		m.Data[i] *= alpha
	}
}

// Hadamard returns the element-wise product m ⊙ other.
func (m *Matrix) Hadamard(other *Matrix) *Matrix {
	m.mustSameShape(other, "Hadamard")
	out := m.Clone()
	for i, v := range other.Data {
		out.Data[i] *= v
	}
	return out
}

// AddDiagonal returns m + d*I. m must be square.
func (m *Matrix) AddDiagonal(d float64) *Matrix {
	m.mustSquare("AddDiagonal")
	out := m.Clone()
	for i := 0; i < m.Rows; i++ {
		out.Data[i*m.Cols+i] += d
	}
	return out
}

// AddDiagonalInPlace sets m += d*I. m must be square.
func (m *Matrix) AddDiagonalInPlace(d float64) {
	m.mustSquare("AddDiagonalInPlace")
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] += d
	}
}

// Trace returns the sum of diagonal entries. m must be square.
func (m *Matrix) Trace() float64 {
	m.mustSquare("Trace")
	var t float64
	for i := 0; i < m.Rows; i++ {
		t += m.Data[i*m.Cols+i]
	}
	return t
}

// Diagonal returns a copy of the main diagonal. m must be square.
func (m *Matrix) Diagonal() []float64 {
	m.mustSquare("Diagonal")
	d := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		d[i] = m.Data[i*m.Cols+i]
	}
	return d
}

// FrobeniusNorm returns sqrt(sum m_ij^2).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns max_ij |m_ij| (0 for an empty matrix).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Sum returns the sum of all entries.
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.Data {
		s += v
	}
	return s
}

// Mean returns the mean of all entries (0 for an empty matrix).
func (m *Matrix) Mean() float64 {
	if len(m.Data) == 0 {
		return 0
	}
	return m.Sum() / float64(len(m.Data))
}

// Equal reports whether m and other have the same shape and identical
// entries.
func (m *Matrix) Equal(other *Matrix) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		if v != other.Data[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether m and other have the same shape and all entries
// within tol of each other (absolute difference).
func (m *Matrix) AllClose(other *Matrix, tol float64) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-other.Data[i]) > tol {
			return false
		}
	}
	return true
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.Data[i*m.Cols+j]-m.Data[j*m.Cols+i]) > tol {
				return false
			}
		}
	}
	return true
}

// Symmetrize returns (m + m^T)/2. m must be square.
func (m *Matrix) Symmetrize() *Matrix {
	m.mustSquare("Symmetrize")
	out := Zeros(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[i*m.Cols+j] = 0.5 * (m.Data[i*m.Cols+j] + m.Data[j*m.Cols+i])
		}
	}
	return out
}

// HasNaN reports whether any entry is NaN or Inf.
func (m *Matrix) HasNaN() bool {
	for _, v := range m.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// Reshape returns a matrix with the same backing data but a new shape.
// rows*cols must equal the current element count.
func (m *Matrix) Reshape(rows, cols int) *Matrix {
	if rows*cols != len(m.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %dx%d to %dx%d", m.Rows, m.Cols, rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: m.Data}
}

// String renders the matrix for debugging; large matrices are elided.
func (m *Matrix) String() string {
	const maxShow = 8
	var b strings.Builder
	fmt.Fprintf(&b, "Matrix(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows && i < maxShow; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := 0; j < m.Cols && j < maxShow; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%.4g", m.Data[i*m.Cols+j])
		}
		if m.Cols > maxShow {
			b.WriteString(" …")
		}
	}
	if m.Rows > maxShow {
		b.WriteString("; …")
	}
	b.WriteString("]")
	return b.String()
}

func (m *Matrix) mustSameShape(other *Matrix, op string) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch: %dx%d vs %dx%d", op, m.Rows, m.Cols, other.Rows, other.Cols))
	}
}

func (m *Matrix) mustSquare(op string) {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("tensor: %s requires a square matrix, got %dx%d", op, m.Rows, m.Cols))
	}
}
