//go:build amd64 && !purego

package tensor

// AVX2+FMA micro-kernels (microkernel_amd64.s). Same tile contract as the
// Go kernels in microkernel.go, but each element's per-step update is a
// single fused multiply-add (one rounding instead of two), so KernelFMA
// results differ from KernelScalar/KernelTiled by at most the fused-
// rounding delta. The reduction order stays ascending k per element, so
// all worker-count and decomposition bit-identity contracts hold within
// the variant. Only called when haveFMAKernels is true.

// fma8x4f64 updates an 8x4 float64 tile: 8 YMM accumulators of 4 doubles.
//
//go:noescape
func fma8x4f64(c []float64, ldc int, ap, bp []float64, kc int)

// fma8x8f32 updates an 8x8 float32 tile: 8 YMM accumulators of 8 floats.
//
//go:noescape
func fma8x8f32(c []float32, ldc int, ap, bp []float32, kc int)
