package tensor

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSymEigenKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	m := New(2, 2, []float64{2, 1, 1, 2})
	values, _, err := SymEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	sort.Float64s(values)
	if math.Abs(values[0]-1) > 1e-10 || math.Abs(values[1]-3) > 1e-10 {
		t.Fatalf("eigenvalues %v, want [1 3]", values)
	}
}

func TestSymEigenRejectsRectangular(t *testing.T) {
	if _, _, err := SymEigen(Zeros(2, 3)); err == nil {
		t.Fatal("expected error for rectangular input")
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	r := NewRNG(1)
	for n := 1; n <= 12; n += 3 {
		m := RandSPD(r, n, 0.5)
		values, vectors, err := SymEigen(m)
		if err != nil {
			t.Fatal(err)
		}
		// Reconstruct V diag(λ) V^T.
		lam := Zeros(n, n)
		for i, v := range values {
			lam.Data[i*n+i] = v
		}
		recon := MatMulT(MatMul(vectors, lam), vectors)
		if !recon.AllClose(m, 1e-8) {
			t.Fatalf("n=%d: reconstruction error %g", n, recon.Sub(m).MaxAbs())
		}
	}
}

func TestSymEigenOrthogonality(t *testing.T) {
	r := NewRNG(2)
	m := RandSPD(r, 8, 1)
	_, v, err := SymEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	if !TMatMul(v, v).AllClose(Eye(8), 1e-9) {
		t.Fatal("eigenvectors not orthonormal")
	}
}

func TestSymEigenTraceAndDetInvariants(t *testing.T) {
	r := NewRNG(3)
	m := RandSPD(r, 6, 1)
	values, _, err := SymEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	if math.Abs(sum-m.Trace()) > 1e-8 {
		t.Fatalf("eigenvalue sum %g != trace %g", sum, m.Trace())
	}
	for _, v := range values {
		if v <= 0 {
			t.Fatalf("SPD matrix produced non-positive eigenvalue %g", v)
		}
	}
}

func TestMatrixPowerIdentity(t *testing.T) {
	r := NewRNG(4)
	m := RandSPD(r, 5, 1)
	p1, err := MatrixPower(m, 1, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !p1.AllClose(m, 1e-8) {
		t.Fatal("m^1 != m")
	}
}

func TestMatrixPowerInverse(t *testing.T) {
	r := NewRNG(5)
	m := RandSPD(r, 5, 1)
	inv, err := MatrixPower(m, -1, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !MatMul(m, inv).AllClose(Eye(5), 1e-7) {
		t.Fatal("m * m^-1 != I via eigendecomposition")
	}
}

func TestMatrixPowerFourthRoot(t *testing.T) {
	// The Shampoo exponent: (m^{-1/4})^4 * m == I.
	r := NewRNG(6)
	m := RandSPD(r, 4, 1)
	root, err := MatrixPower(m, -0.25, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	fourth := MatMul(MatMul(root, root), MatMul(root, root))
	if !MatMul(fourth, m).AllClose(Eye(4), 1e-6) {
		t.Fatal("(m^{-1/4})^4 m != I")
	}
}

func TestMatrixPowerEpsilonClamp(t *testing.T) {
	// Singular matrix: eigenvalue 0 must clamp to epsilon, not blow up.
	m := New(2, 2, []float64{1, 0, 0, 0})
	inv, err := MatrixPower(m, -0.5, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if inv.HasNaN() {
		t.Fatal("NaN from clamped power")
	}
	// The zero eigenvalue becomes epsilon^{-1/2} = 100.
	if math.Abs(inv.At(1, 1)-100) > 1e-6 {
		t.Fatalf("clamped eigenvalue power = %g, want 100", inv.At(1, 1))
	}
}

// Property: eigendecomposition round-trips for random SPD matrices.
func TestSymEigenProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(8)
		m := RandSPD(r, n, 1)
		values, vectors, err := SymEigen(m)
		if err != nil {
			return false
		}
		lam := Zeros(n, n)
		for i, v := range values {
			lam.Data[i*n+i] = v
		}
		recon := MatMulT(MatMul(vectors, lam), vectors)
		return recon.AllClose(m, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
