package tensor

import "math"

// RNG is a small deterministic pseudo-random generator (SplitMix64 for the
// stream, Box-Muller for Gaussians). It is used everywhere in the repo so
// experiments are bit-reproducible across runs and machines without pulling
// in math/rand's global state.
type RNG struct {
	state uint64
	// cached second Gaussian from Box-Muller
	gauss    float64
	hasGauss bool
}

// NewRNG returns a generator seeded with seed. Two RNGs with the same seed
// produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits (SplitMix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal sample via Box-Muller.
func (r *RNG) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v float64
	for {
		u = r.Float64()
		if u > 0 {
			break
		}
	}
	v = r.Float64()
	radius := math.Sqrt(-2 * math.Log(u))
	theta := 2 * math.Pi * v
	r.gauss = radius * math.Sin(theta)
	r.hasGauss = true
	return radius * math.Cos(theta)
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// RandN returns a rows x cols matrix of N(0, std^2) samples.
func RandN(r *RNG, rows, cols int, std float64) *Matrix {
	m := Zeros(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64() * std
	}
	return m
}

// RandUniform returns a rows x cols matrix of Uniform(lo, hi) samples.
func RandUniform(r *RNG, rows, cols int, lo, hi float64) *Matrix {
	m := Zeros(rows, cols)
	for i := range m.Data {
		m.Data[i] = lo + (hi-lo)*r.Float64()
	}
	return m
}

// XavierInit returns a fanOut x fanIn weight matrix initialized with the
// Glorot/Xavier uniform scheme, the default for transformer linear layers.
func XavierInit(r *RNG, fanOut, fanIn int) *Matrix {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return RandUniform(r, fanOut, fanIn, -limit, limit)
}

// RandSPD returns a random n x n symmetric positive definite matrix
// M = Q Q^T + jitter*I where Q has N(0,1) entries. Useful for tests.
func RandSPD(r *RNG, n int, jitter float64) *Matrix {
	q := RandN(r, n, n, 1)
	m := MatMulT(q, q)
	m.AddDiagonalInPlace(jitter)
	return m
}
