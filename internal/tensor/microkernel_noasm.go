//go:build !amd64 || purego

package tensor

// Stubs for the assembly micro-kernels on builds without them. KernelFMA
// is never selectable when haveFMAKernels is false, so these are
// unreachable; they exist only to keep gemm.go's dispatch table compiling.

func fma8x4f64(c []float64, ldc int, ap, bp []float64, kc int) {
	panic("tensor: FMA micro-kernel unavailable in this build")
}

func fma8x8f32(c []float32, ldc int, ap, bp []float32, kc int) {
	panic("tensor: FMA micro-kernel unavailable in this build")
}
