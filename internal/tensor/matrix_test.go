package tensor

import (
	"math"
	"testing"
)

func TestNewAndAt(t *testing.T) {
	m := New(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if m.At(0, 0) != 1 || m.At(0, 2) != 3 || m.At(1, 0) != 4 || m.At(1, 2) != 6 {
		t.Fatalf("At returned wrong values: %v", m)
	}
}

func TestNewPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	New(2, 2, []float64{1, 2, 3})
}

func TestSetAndGet(t *testing.T) {
	m := Zeros(3, 3)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("Set/At: got %g, want 7.5", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	m := Zeros(2, 2)
	for _, idx := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for index %v", idx)
				}
			}()
			m.At(idx[0], idx[1])
		}()
	}
}

func TestEye(t *testing.T) {
	m := Eye(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			if m.At(i, j) != want {
				t.Fatalf("Eye(4)[%d,%d] = %g, want %g", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestFull(t *testing.T) {
	m := Full(2, 3, 4.2)
	for _, v := range m.Data {
		if v != 4.2 {
			t.Fatalf("Full: got %g, want 4.2", v)
		}
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	want := New(2, 2, []float64{1, 2, 3, 4})
	if !m.Equal(want) {
		t.Fatalf("FromRows: got %v, want %v", m, want)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestTranspose(t *testing.T) {
	m := New(2, 3, []float64{1, 2, 3, 4, 5, 6})
	mt := m.T()
	if mt.Rows != 3 || mt.Cols != 2 {
		t.Fatalf("T shape: got %dx%d, want 3x2", mt.Rows, mt.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := NewRNG(1)
	m := RandN(r, 5, 7, 1)
	if !m.T().T().Equal(m) {
		t.Fatal("T(T(m)) != m")
	}
}

func TestAddSubScale(t *testing.T) {
	a := New(2, 2, []float64{1, 2, 3, 4})
	b := New(2, 2, []float64{10, 20, 30, 40})
	if got := a.Add(b); !got.Equal(New(2, 2, []float64{11, 22, 33, 44})) {
		t.Fatalf("Add: got %v", got)
	}
	if got := b.Sub(a); !got.Equal(New(2, 2, []float64{9, 18, 27, 36})) {
		t.Fatalf("Sub: got %v", got)
	}
	if got := a.Scale(2); !got.Equal(New(2, 2, []float64{2, 4, 6, 8})) {
		t.Fatalf("Scale: got %v", got)
	}
}

func TestAddInPlaceAndScaled(t *testing.T) {
	a := New(1, 3, []float64{1, 2, 3})
	b := New(1, 3, []float64{1, 1, 1})
	a.AddInPlace(b)
	if !a.Equal(New(1, 3, []float64{2, 3, 4})) {
		t.Fatalf("AddInPlace: got %v", a)
	}
	a.AddScaledInPlace(-2, b)
	if !a.Equal(New(1, 3, []float64{0, 1, 2})) {
		t.Fatalf("AddScaledInPlace: got %v", a)
	}
}

func TestHadamard(t *testing.T) {
	a := New(2, 2, []float64{1, 2, 3, 4})
	b := New(2, 2, []float64{5, 6, 7, 8})
	if got := a.Hadamard(b); !got.Equal(New(2, 2, []float64{5, 12, 21, 32})) {
		t.Fatalf("Hadamard: got %v", got)
	}
}

func TestAddDiagonalAndTrace(t *testing.T) {
	m := Zeros(3, 3)
	d := m.AddDiagonal(2.5)
	if got := d.Trace(); got != 7.5 {
		t.Fatalf("Trace after AddDiagonal: got %g, want 7.5", got)
	}
	if m.Trace() != 0 {
		t.Fatal("AddDiagonal must not mutate the receiver")
	}
	m.AddDiagonalInPlace(1)
	if m.Trace() != 3 {
		t.Fatalf("AddDiagonalInPlace: trace %g, want 3", m.Trace())
	}
}

func TestDiagonal(t *testing.T) {
	m := New(2, 2, []float64{1, 2, 3, 4})
	d := m.Diagonal()
	if d[0] != 1 || d[1] != 4 {
		t.Fatalf("Diagonal: got %v", d)
	}
}

func TestFrobeniusNormAndMaxAbs(t *testing.T) {
	m := New(1, 2, []float64{3, -4})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("FrobeniusNorm: got %g, want 5", got)
	}
	if got := m.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs: got %g, want 4", got)
	}
}

func TestSumMean(t *testing.T) {
	m := New(2, 2, []float64{1, 2, 3, 4})
	if m.Sum() != 10 {
		t.Fatalf("Sum: got %g", m.Sum())
	}
	if m.Mean() != 2.5 {
		t.Fatalf("Mean: got %g", m.Mean())
	}
	empty := Zeros(0, 0)
	if empty.Mean() != 0 {
		t.Fatal("Mean of empty matrix should be 0")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(1, 2, []float64{1, 2})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone must not share backing data")
	}
}

func TestCopyFrom(t *testing.T) {
	a := Zeros(2, 2)
	b := New(2, 2, []float64{1, 2, 3, 4})
	a.CopyFrom(b)
	if !a.Equal(b) {
		t.Fatal("CopyFrom did not copy")
	}
}

func TestZero(t *testing.T) {
	m := Full(2, 2, 3)
	m.Zero()
	if m.Sum() != 0 {
		t.Fatal("Zero did not clear the matrix")
	}
}

func TestAllClose(t *testing.T) {
	a := New(1, 2, []float64{1, 2})
	b := New(1, 2, []float64{1.0000001, 2})
	if !a.AllClose(b, 1e-6) {
		t.Fatal("AllClose should accept within tolerance")
	}
	if a.AllClose(b, 1e-9) {
		t.Fatal("AllClose should reject beyond tolerance")
	}
	c := Zeros(2, 1)
	if a.AllClose(c, 1) {
		t.Fatal("AllClose must reject shape mismatch")
	}
}

func TestIsSymmetricAndSymmetrize(t *testing.T) {
	s := New(2, 2, []float64{1, 2, 2, 5})
	if !s.IsSymmetric(0) {
		t.Fatal("expected symmetric")
	}
	a := New(2, 2, []float64{1, 2, 4, 5})
	if a.IsSymmetric(1e-12) {
		t.Fatal("expected asymmetric")
	}
	sym := a.Symmetrize()
	if !sym.IsSymmetric(0) {
		t.Fatal("Symmetrize result must be symmetric")
	}
	if sym.At(0, 1) != 3 {
		t.Fatalf("Symmetrize: got %g, want 3", sym.At(0, 1))
	}
	rect := Zeros(2, 3)
	if rect.IsSymmetric(1) {
		t.Fatal("rectangular matrix cannot be symmetric")
	}
}

func TestHasNaN(t *testing.T) {
	m := Zeros(2, 2)
	if m.HasNaN() {
		t.Fatal("zeros should not report NaN")
	}
	m.Set(0, 1, math.NaN())
	if !m.HasNaN() {
		t.Fatal("HasNaN missed NaN")
	}
	m.Set(0, 1, math.Inf(1))
	if !m.HasNaN() {
		t.Fatal("HasNaN missed Inf")
	}
}

func TestReshape(t *testing.T) {
	m := New(2, 3, []float64{1, 2, 3, 4, 5, 6})
	r := m.Reshape(3, 2)
	if r.At(0, 0) != 1 || r.At(2, 1) != 6 {
		t.Fatalf("Reshape values wrong: %v", r)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid reshape")
		}
	}()
	m.Reshape(4, 2)
}

func TestRowColViews(t *testing.T) {
	m := New(2, 3, []float64{1, 2, 3, 4, 5, 6})
	row := m.Row(1)
	if row[0] != 4 || row[2] != 6 {
		t.Fatalf("Row: got %v", row)
	}
	row[0] = 99
	if m.At(1, 0) != 99 {
		t.Fatal("Row must be a view")
	}
	col := m.Col(2)
	if col[0] != 3 || col[1] != 6 {
		t.Fatalf("Col: got %v", col)
	}
	col[0] = -1
	if m.At(0, 2) == -1 {
		t.Fatal("Col must be a copy")
	}
}

func TestStringElision(t *testing.T) {
	small := Eye(2)
	if s := small.String(); s == "" {
		t.Fatal("String produced empty output")
	}
	big := Zeros(20, 20)
	if s := big.String(); s == "" {
		t.Fatal("String on large matrix produced empty output")
	}
}
