package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the kernel-layer parallelism substrate: a shared pool
// of worker goroutines that the blocked matmul kernels fan their row chunks
// out to. Two knobs control it:
//
//   - SetParallelism(n) sizes the pool — the total intra-op worker budget
//     for the whole process (default GOMAXPROCS).
//   - SetOpParallelism(k) caps how many of those workers a single kernel
//     invocation may recruit. The execution engine sets this to its
//     per-device share (budget / devices) so that concurrent device
//     goroutines split the cores fairly instead of each oversubscribing
//     the whole pool.
//
// The pool is deliberately work-conserving and deadlock-free: tasks are
// handed off only to workers that are parked at that instant (an unbuffered
// channel send with a default branch), and the caller always executes the
// chunks nobody picked up — so a saturated pool degrades to the serial
// kernel instead of queueing, and a kernel running inside a worker can never
// wait on the pool it occupies.
//
// Every kernel computes each output element with the same serial reduction
// order regardless of the worker count or chunk boundaries, so results are
// bit-for-bit identical across parallelism settings.

// kernelFunc is the shape of a parallelizable kernel body: compute output
// rows [lo, hi) of dst from a and b. Bodies are package-level functions (not
// closures) so dispatching them through the pool allocates nothing.
type kernelFunc func(dst, a, b *Matrix, lo, hi int)

// task is one row-chunk handed to a pool worker: either a scalar kernel
// chunk (fn set) or a packed-GEMM panel range (g set, see gemm.go).
type task struct {
	fn        kernelFunc
	dst, a, b *Matrix
	g         *gemmCtx
	lo, hi    int
	wg        *sync.WaitGroup
}

// workerPool is one generation of workers. SetParallelism replaces the
// whole generation; old workers drain via quit.
type workerPool struct {
	ch   chan task
	quit chan struct{}
}

var (
	poolMu  sync.Mutex
	curPool atomic.Pointer[workerPool]
	budget  atomic.Int64 // total worker budget (including the calling goroutine)
	opCap   atomic.Int64 // per-invocation cap; 0 means "use the full budget"

	// poolTasks counts chunks executed by pool workers (not the caller) —
	// the observable record of effective per-op fan-out. Benchmarks report
	// the per-op delta so a regression to serial execution (a kernel that
	// stops splitting, a pool that stops accepting) is visible even on
	// hosts where wall-clock scaling is core-bound.
	poolTasks atomic.Uint64

	wgPool = sync.Pool{New: func() any { return new(sync.WaitGroup) }}
)

// PoolTasksExecuted returns the cumulative number of kernel chunks
// executed by pool workers since process start.
func PoolTasksExecuted() uint64 { return poolTasks.Load() }

// serialWorkLimit is the kernel work size (multiply-adds) below which
// fanning out to the pool costs more than it saves; smaller products run on
// the calling goroutine. 64x64x64 sits right at the limit and runs serial.
const serialWorkLimit = 1 << 18

func init() {
	SetParallelism(0)
}

// SetParallelism sizes the shared kernel worker pool to n goroutines in
// total (the calling goroutine counts as one, so n-1 workers are spawned);
// n <= 0 resets to runtime.GOMAXPROCS(0). It must not be called while
// kernels are executing — configure parallelism at startup, or between
// training steps.
func SetParallelism(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	poolMu.Lock()
	defer poolMu.Unlock()
	if int(budget.Load()) == n && curPool.Load() != nil {
		return
	}
	next := &workerPool{ch: make(chan task), quit: make(chan struct{})}
	for i := 0; i < n-1; i++ {
		go worker(next)
	}
	old := curPool.Swap(next)
	budget.Store(int64(n))
	if old != nil {
		close(old.quit)
	}
}

// Parallelism returns the configured total worker budget.
func Parallelism() int { return int(budget.Load()) }

// SetOpParallelism caps the number of pool workers a single kernel
// invocation may recruit; k <= 0 removes the cap (each kernel may use the
// full budget). The pipeline engine sets this to budget/devices so its
// device goroutines share the pool fairly.
func SetOpParallelism(k int) {
	if k <= 0 {
		k = 0
	}
	opCap.Store(int64(k))
}

// OpParallelism returns the per-invocation worker cap (0 = uncapped).
func OpParallelism() int { return int(opCap.Load()) }

func worker(p *workerPool) {
	for {
		select {
		case t := <-p.ch:
			if t.g != nil {
				gemmRange(t.g, t.lo, t.hi)
			} else {
				t.fn(t.dst, t.a, t.b, t.lo, t.hi)
			}
			poolTasks.Add(1)
			t.wg.Done()
		case <-p.quit:
			return
		}
	}
}

// opWorkers resolves the effective worker count for one kernel invocation.
func opWorkers() int {
	w := int(budget.Load())
	if c := int(opCap.Load()); c > 0 && c < w {
		w = c
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parRun executes fn over the n output rows of dst, splitting them into up
// to opWorkers() chunks: one runs on the calling goroutine, the rest are
// offered to parked pool workers (and run inline when none are free). work
// is the kernel's total multiply-add count; below serialWorkLimit the whole
// range runs serial. parRun allocates nothing in steady state.
func parRun(fn kernelFunc, dst, a, b *Matrix, n, work int) {
	w := opWorkers()
	if w > n {
		w = n
	}
	if w <= 1 || work < serialWorkLimit {
		fn(dst, a, b, 0, n)
		return
	}
	chunk := (n + w - 1) / w
	wg := wgPool.Get().(*sync.WaitGroup)
	p := curPool.Load()
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		t := task{fn: fn, dst: dst, a: a, b: b, lo: lo, hi: hi, wg: wg}
		select {
		case p.ch <- t:
		default:
			fn(dst, a, b, lo, hi)
			wg.Done()
		}
	}
	fn(dst, a, b, 0, chunk)
	wg.Wait()
	wgPool.Put(wg)
}
