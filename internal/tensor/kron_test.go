package tensor

import (
	"testing"
	"testing/quick"
)

func TestKronKnown(t *testing.T) {
	a := New(2, 2, []float64{1, 2, 3, 4})
	b := New(2, 2, []float64{0, 5, 6, 7})
	got := Kron(a, b)
	want := New(4, 4, []float64{
		0, 5, 0, 10,
		6, 7, 12, 14,
		0, 15, 0, 20,
		18, 21, 24, 28,
	})
	if !got.Equal(want) {
		t.Fatalf("Kron: got %v, want %v", got, want)
	}
}

func TestKronIdentity(t *testing.T) {
	r := NewRNG(23)
	m := RandN(r, 3, 3, 1)
	// I1 ⊗ m == m.
	if !Kron(Eye(1), m).AllClose(m, 0) {
		t.Fatal("I1 ⊗ m != m")
	}
}

func TestVecUnvecRoundTrip(t *testing.T) {
	m := New(2, 3, []float64{1, 2, 3, 4, 5, 6})
	v := VecColMajor(m)
	// Column-major stacking: columns in order.
	want := []float64{1, 4, 2, 5, 3, 6}
	for i := range v {
		if v[i] != want[i] {
			t.Fatalf("VecColMajor: got %v, want %v", v, want)
		}
	}
	back := UnvecColMajor(v, 2, 3)
	if !back.Equal(m) {
		t.Fatal("UnvecColMajor did not invert VecColMajor")
	}
}

func TestUnvecPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	UnvecColMajor([]float64{1, 2, 3}, 2, 2)
}

// The central K-FAC identity (§2.3.1): (A ⊗ B) vec(X) = vec(B X A^T).
// KronMatVec must agree with the explicit Kronecker-product computation.
func TestKronMatVecIdentityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		da := 1 + r.Intn(5) // A is da x da
		db := 1 + r.Intn(5) // B is db x db
		a := RandN(r, da, da, 1)
		b := RandN(r, db, db, 1)
		x := RandN(r, db, da, 1)
		// Explicit: (A ⊗ B) vec(X).
		kron := Kron(a, b)
		explicit := MatVec(kron, VecColMajor(x))
		// Fast path.
		y := KronMatVec(a, b, x)
		fast := VecColMajor(y)
		if len(explicit) != len(fast) {
			return false
		}
		for i := range explicit {
			if diff := explicit[i] - fast[i]; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A ⊗ B)^{-1} == A^{-1} ⊗ B^{-1} for SPD A, B — the property the
// paper exploits to avoid inverting P_l x P_l matrices.
func TestKronInverseProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		da := 1 + r.Intn(4)
		db := 1 + r.Intn(4)
		a := RandSPD(r, da, 1)
		b := RandSPD(r, db, 1)
		ainv, err := SPDInverse(a, 0)
		if err != nil {
			return false
		}
		binv, err := SPDInverse(b, 0)
		if err != nil {
			return false
		}
		left, err := SPDInverse(Kron(a, b).Symmetrize(), 0)
		if err != nil {
			return false
		}
		right := Kron(ainv, binv)
		return left.AllClose(right, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestKronMatVecShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched X shape")
		}
	}()
	KronMatVec(Eye(2), Eye(3), Zeros(2, 2))
}
