//go:build amd64 && !purego

#include "textflag.h"

// func fma8x4f64(c []float64, ldc int, ap, bp []float64, kc int)
//
// 8x4 float64 tile: Y0-Y7 hold one 4-double C row each, loaded up front
// and stored once at the end. Per k step: one B-panel vector load, eight
// A-lane broadcasts, eight VFMADD231PD. ap advances 8 doubles per step,
// bp 4 doubles.
TEXT ·fma8x4f64(SB), NOSPLIT, $0-88
	MOVQ c_base+0(FP), CX
	MOVQ ldc+24(FP), R8
	SHLQ $3, R8              // row stride in bytes
	MOVQ ap_base+32(FP), DI
	MOVQ bp_base+56(FP), SI
	MOVQ kc+80(FP), R10

	// Load the C tile.
	MOVQ CX, DX
	VMOVUPD (DX), Y0
	ADDQ R8, DX
	VMOVUPD (DX), Y1
	ADDQ R8, DX
	VMOVUPD (DX), Y2
	ADDQ R8, DX
	VMOVUPD (DX), Y3
	ADDQ R8, DX
	VMOVUPD (DX), Y4
	ADDQ R8, DX
	VMOVUPD (DX), Y5
	ADDQ R8, DX
	VMOVUPD (DX), Y6
	ADDQ R8, DX
	VMOVUPD (DX), Y7

f64loop:
	VMOVUPD      (SI), Y8
	VBROADCASTSD (DI), Y9
	VFMADD231PD  Y8, Y9, Y0
	VBROADCASTSD 8(DI), Y9
	VFMADD231PD  Y8, Y9, Y1
	VBROADCASTSD 16(DI), Y9
	VFMADD231PD  Y8, Y9, Y2
	VBROADCASTSD 24(DI), Y9
	VFMADD231PD  Y8, Y9, Y3
	VBROADCASTSD 32(DI), Y9
	VFMADD231PD  Y8, Y9, Y4
	VBROADCASTSD 40(DI), Y9
	VFMADD231PD  Y8, Y9, Y5
	VBROADCASTSD 48(DI), Y9
	VFMADD231PD  Y8, Y9, Y6
	VBROADCASTSD 56(DI), Y9
	VFMADD231PD  Y8, Y9, Y7
	ADDQ         $64, DI
	ADDQ         $32, SI
	DECQ         R10
	JNE          f64loop

	// Store the C tile.
	MOVQ CX, DX
	VMOVUPD Y0, (DX)
	ADDQ R8, DX
	VMOVUPD Y1, (DX)
	ADDQ R8, DX
	VMOVUPD Y2, (DX)
	ADDQ R8, DX
	VMOVUPD Y3, (DX)
	ADDQ R8, DX
	VMOVUPD Y4, (DX)
	ADDQ R8, DX
	VMOVUPD Y5, (DX)
	ADDQ R8, DX
	VMOVUPD Y6, (DX)
	ADDQ R8, DX
	VMOVUPD Y7, (DX)
	VZEROUPPER
	RET

// func fma8x8f32(c []float32, ldc int, ap, bp []float32, kc int)
//
// 8x8 float32 tile: Y0-Y7 hold one 8-float C row each. ap and bp both
// advance 8 floats (32 bytes) per k step.
TEXT ·fma8x8f32(SB), NOSPLIT, $0-88
	MOVQ c_base+0(FP), CX
	MOVQ ldc+24(FP), R8
	SHLQ $2, R8              // row stride in bytes
	MOVQ ap_base+32(FP), DI
	MOVQ bp_base+56(FP), SI
	MOVQ kc+80(FP), R10

	// Load the C tile.
	MOVQ CX, DX
	VMOVUPS (DX), Y0
	ADDQ R8, DX
	VMOVUPS (DX), Y1
	ADDQ R8, DX
	VMOVUPS (DX), Y2
	ADDQ R8, DX
	VMOVUPS (DX), Y3
	ADDQ R8, DX
	VMOVUPS (DX), Y4
	ADDQ R8, DX
	VMOVUPS (DX), Y5
	ADDQ R8, DX
	VMOVUPS (DX), Y6
	ADDQ R8, DX
	VMOVUPS (DX), Y7

f32loop:
	VMOVUPS      (SI), Y8
	VBROADCASTSS (DI), Y9
	VFMADD231PS  Y8, Y9, Y0
	VBROADCASTSS 4(DI), Y9
	VFMADD231PS  Y8, Y9, Y1
	VBROADCASTSS 8(DI), Y9
	VFMADD231PS  Y8, Y9, Y2
	VBROADCASTSS 12(DI), Y9
	VFMADD231PS  Y8, Y9, Y3
	VBROADCASTSS 16(DI), Y9
	VFMADD231PS  Y8, Y9, Y4
	VBROADCASTSS 20(DI), Y9
	VFMADD231PS  Y8, Y9, Y5
	VBROADCASTSS 24(DI), Y9
	VFMADD231PS  Y8, Y9, Y6
	VBROADCASTSS 28(DI), Y9
	VFMADD231PS  Y8, Y9, Y7
	ADDQ         $32, DI
	ADDQ         $32, SI
	DECQ         R10
	JNE          f32loop

	// Store the C tile.
	MOVQ CX, DX
	VMOVUPS Y0, (DX)
	ADDQ R8, DX
	VMOVUPS Y1, (DX)
	ADDQ R8, DX
	VMOVUPS Y2, (DX)
	ADDQ R8, DX
	VMOVUPS Y3, (DX)
	ADDQ R8, DX
	VMOVUPS Y4, (DX)
	ADDQ R8, DX
	VMOVUPS Y5, (DX)
	ADDQ R8, DX
	VMOVUPS Y6, (DX)
	ADDQ R8, DX
	VMOVUPS Y7, (DX)
	VZEROUPPER
	RET
