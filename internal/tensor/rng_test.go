package tensor

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce the same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should diverge")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", v)
		}
	}
}

func TestIntnRangeAndPanic(t *testing.T) {
	r := NewRNG(2)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	r.Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(3)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("Gaussian mean too far from 0: %g", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("Gaussian variance too far from 1: %g", variance)
	}
}

func TestPerm(t *testing.T) {
	r := NewRNG(4)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRandConstructors(t *testing.T) {
	r := NewRNG(5)
	m := RandN(r, 10, 10, 2)
	if m.Rows != 10 || m.Cols != 10 {
		t.Fatal("RandN shape wrong")
	}
	u := RandUniform(r, 5, 5, -1, 1)
	for _, v := range u.Data {
		if v < -1 || v >= 1 {
			t.Fatalf("RandUniform out of range: %g", v)
		}
	}
	x := XavierInit(r, 64, 32)
	limit := math.Sqrt(6.0 / 96.0)
	for _, v := range x.Data {
		if v < -limit || v > limit {
			t.Fatalf("Xavier out of range: %g (limit %g)", v, limit)
		}
	}
}

func TestRandSPDIsSPD(t *testing.T) {
	r := NewRNG(6)
	for n := 1; n <= 8; n++ {
		m := RandSPD(r, n, 0.1)
		if !m.IsSymmetric(1e-12) {
			t.Fatalf("RandSPD(%d) not symmetric", n)
		}
		if _, err := Cholesky(m); err != nil {
			t.Fatalf("RandSPD(%d) not positive definite: %v", n, err)
		}
	}
}
