package tensor

import (
	"fmt"
	"math/bits"
	"sync"
)

// This file provides the pooled matrix workspace used by the zero-alloc hot
// paths: per-micro-batch temporaries (engine activation hand-offs, K-FAC
// statistics snapshots and partial curvature products, Cholesky and eigen
// work buffers) are recycled through size-class buckets instead of being
// freshly allocated every step.
//
// Pooling contract: a matrix obtained from Get is owned by the caller until
// it calls Put; after Put the caller must drop every reference (the backing
// array will be handed to a future Get, possibly on another goroutine).
// Only pass matrices to Put whose backing data you own outright — never a
// view, a model parameter, or a matrix another component may still read.
// Holding a pooled matrix across ops is fine as long as exactly one owner
// eventually Puts it (or lets it go to the GC, which is always safe).

// maxPoolClass bounds pooled sizes to 2^26 floats (512 MiB); anything
// larger is allocated and collected normally.
const maxPoolClass = 26

var matPools [maxPoolClass + 1]sync.Pool

// sizeClass returns the smallest c with 1<<c >= n (n > 0).
func sizeClass(n int) int { return bits.Len(uint(n - 1)) }

// Get returns a rows x cols matrix from the workspace pool. The contents
// are unspecified — callers must fully overwrite (or Zero) the matrix
// before reading it. Return it with Put when done.
func Get(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	n := rows * cols
	if n == 0 {
		return &Matrix{Rows: rows, Cols: cols, Data: []float64{}}
	}
	c := sizeClass(n)
	if c > maxPoolClass {
		return Zeros(rows, cols)
	}
	if v := matPools[c].Get(); v != nil {
		m := v.(*Matrix)
		m.Rows, m.Cols = rows, cols
		m.Data = m.Data[:n]
		auditGet(m)
		return m
	}
	m := &Matrix{Rows: rows, Cols: cols, Data: make([]float64, n, 1<<c)}
	auditGet(m)
	return m
}

// GetClone returns a pooled copy of src (shape and contents).
func GetClone(src *Matrix) *Matrix {
	m := Get(src.Rows, src.Cols)
	copy(m.Data, src.Data)
	return m
}

// Put returns a matrix (header and backing array) to the workspace pool.
// The caller must not use m (or any view of its data) afterwards — a later
// Get may hand back the very same object. Put accepts any matrix whose
// backing data the caller owns outright, not only those from Get (but
// never a view such as a Reshape sharing another matrix's data); nil is a
// no-op.
func Put(m *Matrix) {
	if m == nil {
		return
	}
	auditPut(m)
	n := cap(m.Data)
	if n == 0 {
		return
	}
	// Bucket by the largest class fully covered by the capacity, so a
	// future Get from that bucket always fits. Pooling the *Matrix itself
	// keeps Put allocation-free (no boxed slice header).
	c := bits.Len(uint(n)) - 1
	if c > maxPoolClass {
		return
	}
	m.Data = m.Data[:0:n]
	matPools[c].Put(m)
}

// Reuse returns buf when it already has the requested shape (the
// steady-state case for retained per-layer buffers) and a fresh zeroed
// matrix otherwise. Unlike Get, the result is caller-owned and never comes
// from the pool, so it is safe to retain indefinitely.
func Reuse(buf *Matrix, rows, cols int) *Matrix {
	if buf != nil && buf.Rows == rows && buf.Cols == cols {
		return buf
	}
	return Zeros(rows, cols)
}
