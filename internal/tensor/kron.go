package tensor

import "fmt"

// Kron returns the Kronecker product a ⊗ b, a (a.Rows*b.Rows) x
// (a.Cols*b.Cols) matrix. It is used only in tests and small reference
// computations; production K-FAC code always works through the
// (A ⊗ B) vec(X) = vec(B X A^T) identity instead (see KronMatVec), exactly
// as the paper does to avoid materializing P_l x P_l matrices (§2.3.1).
func Kron(a, b *Matrix) *Matrix {
	out := Zeros(a.Rows*b.Rows, a.Cols*b.Cols)
	for ia := 0; ia < a.Rows; ia++ {
		for ja := 0; ja < a.Cols; ja++ {
			av := a.Data[ia*a.Cols+ja]
			if av == 0 {
				continue
			}
			for ib := 0; ib < b.Rows; ib++ {
				dstRow := (ia*b.Rows + ib) * out.Cols
				srcRow := ib * b.Cols
				for jb := 0; jb < b.Cols; jb++ {
					out.Data[dstRow+ja*b.Cols+jb] = av * b.Data[srcRow+jb]
				}
			}
		}
	}
	return out
}

// VecColMajor vectorizes m by stacking its columns (the vec(·) operator of
// the paper). The result has length Rows*Cols.
func VecColMajor(m *Matrix) []float64 {
	out := make([]float64, m.Rows*m.Cols)
	idx := 0
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			out[idx] = m.Data[i*m.Cols+j]
			idx++
		}
	}
	return out
}

// UnvecColMajor is the inverse of VecColMajor: it reshapes v (length
// rows*cols) into a rows x cols matrix assuming column-major stacking.
func UnvecColMajor(v []float64, rows, cols int) *Matrix {
	if len(v) != rows*cols {
		panic(fmt.Sprintf("tensor: UnvecColMajor length %d does not match %dx%d", len(v), rows, cols))
	}
	m := Zeros(rows, cols)
	idx := 0
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			m.Data[i*cols+j] = v[idx]
			idx++
		}
	}
	return m
}

// KronMatVec computes (A ⊗ B) vec(X) = vec(B X A^T) without materializing
// the Kronecker product. X must be b.Cols x a.Cols; the result is returned
// as a b.Rows x a.Rows matrix Y with vec(Y) = (A ⊗ B) vec(X).
//
// With A := A_l^{-1} and B := B_l^{-1} (both symmetric) and X := G_l this is
// exactly the K-FAC preconditioning step B^{-1} G A^{-1} of §2.3.1.
func KronMatVec(a, b, x *Matrix) *Matrix {
	if x.Rows != b.Cols || x.Cols != a.Cols {
		panic(fmt.Sprintf("tensor: KronMatVec shape mismatch: X is %dx%d, want %dx%d", x.Rows, x.Cols, b.Cols, a.Cols))
	}
	bx := MatMul(b, x)    // b.Rows x a.Cols
	return MatMulT(bx, a) // (B X) A^T -> b.Rows x a.Rows
}
