package tensor

import (
	"sync"
	"sync/atomic"
)

// Opt-in pool-ownership audit for leak tests. When enabled, every matrix
// handed out by Get/GetClone is tracked as "live" until Put takes it back;
// PoolLive reports the number of outstanding matrices. The audit counts
// logical ownership (Get minus Put), not pool contents, so it is unaffected
// by sync.Pool's GC-driven eviction and works under the race detector.
//
// The audit is strictly for tests: it takes a mutex on every Get/Put while
// enabled, and the default-off fast path costs one atomic load.

var (
	auditOn   atomic.Bool
	auditMu   sync.Mutex
	auditLive map[*Matrix]struct{}
)

// SetPoolAudit enables or disables pool-ownership tracking. Enabling resets
// the live set, so the caller sees only Gets issued after this call.
func SetPoolAudit(on bool) {
	auditMu.Lock()
	defer auditMu.Unlock()
	if on {
		auditLive = make(map[*Matrix]struct{})
	} else {
		auditLive = nil
	}
	auditOn.Store(on)
}

// PoolLive returns the number of pooled matrices currently checked out
// (Get without a matching Put) since the audit was enabled. Returns 0 when
// the audit is off.
func PoolLive() int {
	auditMu.Lock()
	defer auditMu.Unlock()
	return len(auditLive)
}

func auditGet(m *Matrix) {
	if !auditOn.Load() {
		return
	}
	auditMu.Lock()
	if auditLive != nil {
		auditLive[m] = struct{}{}
	}
	auditMu.Unlock()
}

func auditPut(m *Matrix) {
	if !auditOn.Load() {
		return
	}
	auditMu.Lock()
	if auditLive != nil {
		// Matrices not handed out by Get (Put accepts caller-owned
		// buffers too) simply aren't in the set; delete is a no-op.
		delete(auditLive, m)
	}
	auditMu.Unlock()
}
