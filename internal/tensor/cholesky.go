package tensor

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD is returned when a Cholesky factorization encounters a
// non-positive pivot, i.e. the input is not symmetric positive definite
// (within floating-point tolerance).
var ErrNotSPD = errors.New("tensor: matrix is not symmetric positive definite")

// Cholesky computes the lower-triangular factor L such that m = L L^T.
// m must be square and symmetric positive definite; otherwise ErrNotSPD is
// returned. Only the lower triangle of m is read, mirroring the convention
// of LAPACK's dpotrf and torch.linalg.cholesky, which the paper invokes for
// every Kronecker factor (§2.3.1).
func Cholesky(m *Matrix) (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("tensor: Cholesky requires a square matrix, got %dx%d", m.Rows, m.Cols)
	}
	l := Zeros(m.Rows, m.Rows)
	if err := choleskyInto(l, m); err != nil {
		return nil, err
	}
	return l, nil
}

// choleskyInto factors m into the caller-provided lower-triangular buffer l
// (shape n x n). Only l's lower triangle is written or read, so l may come
// from the workspace pool with unspecified contents; callers that expose l
// beyond the lower triangle must zero it first.
func choleskyInto(l, m *Matrix) error {
	n := m.Rows
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			lrow := l.Data[i*n : i*n+j]
			ljrow := l.Data[j*n : j*n+j]
			for k, v := range lrow {
				s += v * ljrow[k]
			}
			if i == j {
				d := m.Data[i*n+i] - s
				if d <= 0 || math.IsNaN(d) {
					return ErrNotSPD
				}
				l.Data[i*n+j] = math.Sqrt(d)
			} else {
				l.Data[i*n+j] = (m.Data[i*n+j] - s) / l.Data[j*n+j]
			}
		}
	}
	return nil
}

// CholeskySolve solves m x = b given the lower Cholesky factor L of m
// (so m = L L^T), via forward then backward substitution.
func CholeskySolve(l *Matrix, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic(fmt.Sprintf("tensor: CholeskySolve length mismatch: factor %dx%d, b has %d", l.Rows, l.Cols, len(b)))
	}
	// Forward: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Data[i*n : i*n+i]
		for k, v := range row {
			s -= v * y[k]
		}
		y[i] = s / l.Data[i*n+i]
	}
	// Backward: L^T x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.Data[k*n+i] * x[k]
		}
		x[i] = s / l.Data[i*n+i]
	}
	return x
}

// CholeskyInverse returns m^{-1} given the lower Cholesky factor L of m.
// This mirrors torch.linalg.cholesky_inverse: the inverse is assembled from
// L^{-1} as m^{-1} = L^{-T} L^{-1} and is exactly symmetric by construction.
func CholeskyInverse(l *Matrix) *Matrix {
	n := l.Rows
	// Invert the lower-triangular L into a pooled work buffer; only the
	// lower triangle is written and read, so its contents need not be
	// zeroed first.
	linv := Get(n, n)
	defer Put(linv)
	for i := 0; i < n; i++ {
		linv.Data[i*n+i] = 1 / l.Data[i*n+i]
		for j := 0; j < i; j++ {
			var s float64
			for k := j; k < i; k++ {
				s += l.Data[i*n+k] * linv.Data[k*n+j]
			}
			linv.Data[i*n+j] = -s / l.Data[i*n+i]
		}
	}
	// m^{-1} = (L^{-1})^T L^{-1}. Fill the upper triangle and mirror.
	inv := Zeros(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			var s float64
			// linv is lower triangular: row k has nonzeros up to column k.
			for k := j; k < n; k++ {
				s += linv.Data[k*n+i] * linv.Data[k*n+j]
			}
			inv.Data[i*n+j] = s
			inv.Data[j*n+i] = s
		}
	}
	return inv
}

// SPDInverse inverts a symmetric positive definite matrix via Cholesky. If
// the factorization fails, damping*I is added (with exponentially growing
// damping) until it succeeds or the attempt budget is exhausted. This is the
// rescue path used when empirical Kronecker factors are rank deficient,
// which happens whenever the micro-batch size is smaller than the factor
// dimension.
func SPDInverse(m *Matrix, damping float64) (*Matrix, error) {
	if damping < 0 {
		return nil, fmt.Errorf("tensor: SPDInverse damping must be non-negative, got %g", damping)
	}
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("tensor: SPDInverse requires a square matrix, got %dx%d", m.Rows, m.Cols)
	}
	// The damped copy and the Cholesky factor are transient work buffers;
	// both cycle through the workspace pool (choleskyInto touches only l's
	// lower triangle, so the unspecified pool contents are harmless).
	l := Get(m.Rows, m.Rows)
	defer Put(l)
	work := m
	d := damping
	const attempts = 12
	for try := 0; try < attempts; try++ {
		if d > 0 {
			if work == m {
				work = GetClone(m)
				defer Put(work)
			} else {
				work.CopyFrom(m)
			}
			work.AddDiagonalInPlace(d)
		}
		if err := choleskyInto(l, work); err == nil {
			return CholeskyInverse(l), nil
		}
		if d == 0 {
			// Seed the escalation relative to the matrix scale.
			d = 1e-8 * math.Max(1, m.MaxAbs())
		} else {
			d *= 10
		}
	}
	return nil, fmt.Errorf("tensor: SPDInverse failed after %d damping attempts: %w", attempts, ErrNotSPD)
}

// SolveSPD solves m x = b for SPD m with the given damping rescue.
func SolveSPD(m *Matrix, b []float64, damping float64) ([]float64, error) {
	work := m
	if damping > 0 {
		work = m.AddDiagonal(damping)
	}
	l, err := Cholesky(work)
	if err != nil {
		return nil, err
	}
	return CholeskySolve(l, b), nil
}

// LogDetFromCholesky returns log(det m) = 2 * sum(log L_ii) given the lower
// factor of m.
func LogDetFromCholesky(l *Matrix) float64 {
	var s float64
	for i := 0; i < l.Rows; i++ {
		s += math.Log(l.Data[i*l.Cols+i])
	}
	return 2 * s
}
