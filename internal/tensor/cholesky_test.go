package tensor

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestCholeskyKnown(t *testing.T) {
	// m = [[4, 2], [2, 3]] has L = [[2, 0], [1, sqrt(2)]].
	m := New(2, 2, []float64{4, 2, 2, 3})
	l, err := Cholesky(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.At(0, 0)-2) > 1e-12 || math.Abs(l.At(1, 0)-1) > 1e-12 ||
		math.Abs(l.At(1, 1)-math.Sqrt(2)) > 1e-12 || l.At(0, 1) != 0 {
		t.Fatalf("Cholesky factor wrong: %v", l)
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	r := NewRNG(11)
	for n := 1; n <= 10; n++ {
		m := RandSPD(r, n, 0.5)
		l, err := Cholesky(m)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		recon := MatMulT(l, l)
		if !recon.AllClose(m, 1e-8) {
			t.Fatalf("n=%d: L L^T != m (max err %g)", n, recon.Sub(m).MaxAbs())
		}
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	m := New(2, 2, []float64{1, 2, 2, 1}) // indefinite (eigenvalues 3, -1)
	if _, err := Cholesky(m); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("expected ErrNotSPD, got %v", err)
	}
}

func TestCholeskyRejectsRectangular(t *testing.T) {
	if _, err := Cholesky(Zeros(2, 3)); err == nil {
		t.Fatal("expected error for rectangular input")
	}
}

func TestCholeskySolve(t *testing.T) {
	r := NewRNG(13)
	m := RandSPD(r, 6, 1)
	xTrue := make([]float64, 6)
	for i := range xTrue {
		xTrue[i] = r.NormFloat64()
	}
	b := MatVec(m, xTrue)
	l, err := Cholesky(m)
	if err != nil {
		t.Fatal(err)
	}
	x := CholeskySolve(l, b)
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-8 {
			t.Fatalf("solve mismatch at %d: got %g want %g", i, x[i], xTrue[i])
		}
	}
}

func TestCholeskyInverse(t *testing.T) {
	r := NewRNG(17)
	m := RandSPD(r, 8, 1)
	l, err := Cholesky(m)
	if err != nil {
		t.Fatal(err)
	}
	inv := CholeskyInverse(l)
	if !inv.IsSymmetric(1e-12) {
		t.Fatal("CholeskyInverse result must be symmetric")
	}
	prod := MatMul(m, inv)
	if !prod.AllClose(Eye(8), 1e-8) {
		t.Fatalf("m * m^-1 != I (max err %g)", prod.Sub(Eye(8)).MaxAbs())
	}
}

func TestSPDInverseRescuesSingular(t *testing.T) {
	// Rank-1 matrix: needs damping to invert.
	x := []float64{1, 2, 3}
	m := Outer(x, x)
	inv, err := SPDInverse(m, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if inv.HasNaN() {
		t.Fatal("SPDInverse produced NaN")
	}
	// The damped inverse must satisfy (m + dI) inv ≈ I for some d >= 1e-3,
	// which in particular means inv is SPD itself.
	if _, err := Cholesky(inv.Symmetrize()); err != nil {
		t.Fatalf("damped inverse is not SPD: %v", err)
	}
}

func TestSPDInverseZeroDampingEscalates(t *testing.T) {
	m := Zeros(3, 3) // singular; zero damping must escalate internally
	inv, err := SPDInverse(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if inv.HasNaN() {
		t.Fatal("NaN in rescued inverse")
	}
}

func TestSPDInverseNegativeDamping(t *testing.T) {
	if _, err := SPDInverse(Eye(2), -1); err == nil {
		t.Fatal("expected error for negative damping")
	}
}

func TestSolveSPD(t *testing.T) {
	r := NewRNG(19)
	m := RandSPD(r, 5, 1)
	b := []float64{1, 2, 3, 4, 5}
	x, err := SolveSPD(m, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := MatVec(m, x)
	for i := range b {
		if math.Abs(got[i]-b[i]) > 1e-8 {
			t.Fatalf("SolveSPD residual too large at %d", i)
		}
	}
}

func TestSolveSPDPropagatesError(t *testing.T) {
	m := New(2, 2, []float64{0, 0, 0, 0})
	if _, err := SolveSPD(m, []float64{1, 2}, 0); err == nil {
		t.Fatal("expected error for singular matrix with no damping")
	}
}

func TestLogDetFromCholesky(t *testing.T) {
	// det([[4,0],[0,9]]) = 36, log = log(36).
	m := New(2, 2, []float64{4, 0, 0, 9})
	l, err := Cholesky(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := LogDetFromCholesky(l); math.Abs(got-math.Log(36)) > 1e-12 {
		t.Fatalf("LogDet: got %g, want %g", got, math.Log(36))
	}
}

// Property: for random SPD m, inverse round-trips within tolerance.
func TestSPDInverseProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(8)
		m := RandSPD(r, n, 1)
		inv, err := SPDInverse(m, 0)
		if err != nil {
			return false
		}
		return MatMul(m, inv).AllClose(Eye(n), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Cholesky solve agrees with explicit inverse multiplication.
func TestCholeskySolveMatchesInverseProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(6)
		m := RandSPD(r, n, 1)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		l, err := Cholesky(m)
		if err != nil {
			return false
		}
		x1 := CholeskySolve(l, b)
		x2 := MatVec(CholeskyInverse(l), b)
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
