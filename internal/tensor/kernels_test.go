package tensor

import (
	"fmt"
	"math"
	"testing"
)

// Kernel-variant parity suite (runs under -race and under the purego tag,
// where AvailableKernels simply omits KernelFMA):
//
//   - float64: KernelTiled must be bit-identical to KernelScalar (same
//     per-element multiply-round/add-round sequence); KernelFMA must agree
//     to fused-rounding tolerance.
//   - float32 mode: scalar and tiled share the 4x4 Go kernel and must be
//     bit-identical to a naive ascending-k float32 reduction; FMA agrees
//     to float32 tolerance.
//   - every variant x dtype must be worker-count bit-identical.

// fmaTol bounds the scalar-vs-FMA disagreement for float64 operands drawn
// from N(0,1) with k <= a few hundred (per-step fused-rounding delta
// ~1e-16, accumulated).
const fmaTol = 1e-12

// fmaTol32 is the float32-mode analogue (eps ~1.2e-7, accumulated).
const fmaTol32 = 1e-3

// withKernels runs f once per available kernel variant, with exact=true
// for the variants whose float64 results must match the scalar reference
// bit for bit. The default kernel is restored afterwards.
func withKernels(t *testing.T, f func(t *testing.T, exact bool)) {
	t.Helper()
	def := ActiveKernel()
	defer func() {
		if err := SetKernel(def); err != nil {
			t.Fatal(err)
		}
	}()
	for _, k := range AvailableKernels() {
		if err := SetKernel(k); err != nil {
			t.Fatal(err)
		}
		t.Run("kernel="+k.String(), func(t *testing.T) {
			f(t, k != KernelFMA)
		})
	}
}

// checkMat asserts got against want: bit-exact when exact, within fmaTol
// otherwise.
func checkMat(t *testing.T, op string, got, want *Matrix, exact bool) {
	t.Helper()
	if exact {
		if !got.Equal(want) {
			t.Fatalf("%s [%s] differs from scalar reference (max %g)",
				op, ActiveKernel(), got.Sub(want).MaxAbs())
		}
		return
	}
	if !got.AllClose(want, fmaTol) {
		t.Fatalf("%s [%s] outside FMA tolerance %g (max %g)",
			op, ActiveKernel(), fmaTol, got.Sub(want).MaxAbs())
	}
}

// withF32 enables float32 mode for the duration of f.
func withF32(t *testing.T, f func(t *testing.T)) {
	t.Helper()
	SetF32(true)
	defer SetF32(false)
	f(t)
}

// Naive float32 references: narrow the operands once, reduce each output
// element ascending k in float32 (one multiply-rounding and one
// add-rounding per step — the tiled Go kernel's exact sequence), widen the
// total.

func refMatMul32(a, b *Matrix) *Matrix {
	out := Zeros(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float32
			for kk := 0; kk < a.Cols; kk++ {
				s += float32(a.Data[i*a.Cols+kk]) * float32(b.Data[kk*b.Cols+j])
			}
			out.Data[i*b.Cols+j] = float64(s)
		}
	}
	return out
}

func refMatMulT32(a, b *Matrix) *Matrix {
	out := Zeros(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			var s float32
			for kk := 0; kk < a.Cols; kk++ {
				s += float32(a.Data[i*a.Cols+kk]) * float32(b.Data[j*b.Cols+kk])
			}
			out.Data[i*b.Rows+j] = float64(s)
		}
	}
	return out
}

// refTMatMulAdd32 computes dst += widen(f32product(a^T b)) — the float32
// accumulate contract: the product is float32, the accumulator stays
// float64.
func refTMatMulAdd32(dst, a, b *Matrix) {
	for i := 0; i < a.Cols; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float32
			for r := 0; r < a.Rows; r++ {
				s += float32(a.Data[r*a.Cols+i]) * float32(b.Data[r*b.Cols+j])
			}
			dst.Data[i*b.Cols+j] += float64(s)
		}
	}
}

func TestF32KernelsMatchNaiveFloat32Reference(t *testing.T) {
	withKernels(t, func(t *testing.T, exact bool) {
		withF32(t, func(t *testing.T) {
			for _, sh := range parityShapes {
				rng := NewRNG(uint64(3*sh.n + 5*sh.k + 7*sh.p))
				a := RandN(rng, sh.n, sh.k, 1)
				b := RandN(rng, sh.k, sh.p, 1)
				bt := RandN(rng, sh.p, sh.k, 1)
				c := RandN(rng, sh.n, sh.p, 1)

				got := Full(sh.n, sh.p, 42)
				MatMulInto(got, a, b)
				checkMat32(t, fmt.Sprintf("f32 MatMulInto %dx%dx%d", sh.n, sh.k, sh.p),
					got, refMatMul32(a, b), exact)

				got = Full(sh.n, sh.p, 42)
				MatMulTInto(got, a, bt)
				checkMat32(t, fmt.Sprintf("f32 MatMulTInto %dx%dx%d", sh.n, sh.k, sh.p),
					got, refMatMulT32(a, bt), exact)

				// Accumulate path: float64 dst must gain the widened
				// float32 product, not be narrowed itself.
				acc := RandN(rng, sh.k, sh.p, 1)
				want := acc.Clone()
				refTMatMulAdd32(want, a, c)
				TMatMulAddInto(acc, a, c)
				checkMat32(t, fmt.Sprintf("f32 TMatMulAddInto %dx%dx%d", sh.n, sh.k, sh.p),
					acc, want, exact)
			}
		})
	})
}

func checkMat32(t *testing.T, op string, got, want *Matrix, exact bool) {
	t.Helper()
	if exact {
		if !got.Equal(want) {
			t.Fatalf("%s [%s] differs from naive float32 reference (max %g)",
				op, ActiveKernel(), got.Sub(want).MaxAbs())
		}
		return
	}
	if !got.AllClose(want, fmaTol32) {
		t.Fatalf("%s [%s] outside float32 FMA tolerance %g (max %g)",
			op, ActiveKernel(), fmaTol32, got.Sub(want).MaxAbs())
	}
}

func TestF32GramAliasing(t *testing.T) {
	withKernels(t, func(t *testing.T, exact bool) {
		withF32(t, func(t *testing.T) {
			rng := NewRNG(17)
			u := RandN(rng, 41, 23, 1)
			got := Get(23, 23)
			defer Put(got)
			TMatMulInto(got, u, u)
			want := Zeros(23, 23)
			refTMatMulAdd32(want, u, u)
			checkMat32(t, "f32 TMatMulInto(U, U)", got, want, exact)
		})
	})
}

func TestF32WorkerCountBitIdentity(t *testing.T) {
	withKernels(t, func(t *testing.T, exact bool) {
		withF32(t, func(t *testing.T) {
			defer SetParallelism(0)
			defer SetOpParallelism(0)
			rng := NewRNG(29)
			a := RandN(rng, 130, 90, 1)
			b := RandN(rng, 90, 70, 1)
			SetParallelism(1)
			serial := MatMul(a, b)
			SetParallelism(8)
			SetOpParallelism(0)
			parallel := MatMul(a, b)
			if !serial.Equal(parallel) {
				t.Fatalf("[%s] float32 parallel MatMul not bit-identical to serial", ActiveKernel())
			}
			Put(serial)
			Put(parallel)
		})
	})
}

func TestTiledBitIdenticalToScalarFloat64(t *testing.T) {
	// The tiled Go kernel's per-element sequence (multiply-round,
	// add-round, ascending k) is the scalar reference's sequence — the
	// property that lets KernelTiled inherit every bit-identity contract
	// without a tolerance.
	for _, sh := range parityShapes {
		rng := NewRNG(uint64(11*sh.n + sh.k + 3*sh.p))
		a := RandN(rng, sh.n, sh.k, 1)
		b := RandN(rng, sh.k, sh.p, 1)
		if err := SetKernel(KernelScalar); err != nil {
			t.Fatal(err)
		}
		want := MatMul(a, b)
		if err := SetKernel(KernelTiled); err != nil {
			t.Fatal(err)
		}
		got := MatMul(a, b)
		if !got.Equal(want) {
			t.Fatalf("tiled MatMul %dx%dx%d not bit-identical to scalar (max %g)",
				sh.n, sh.k, sh.p, got.Sub(want).MaxAbs())
		}
		Put(want)
		Put(got)
	}
	if err := SetKernel(bestKernel()); err != nil {
		t.Fatal(err)
	}
}

func bestKernel() Kernel {
	ks := AvailableKernels()
	return ks[len(ks)-1]
}

func TestKernelDispatch(t *testing.T) {
	def := ActiveKernel()
	defer SetKernel(def)
	ks := AvailableKernels()
	if len(ks) < 2 || ks[0] != KernelScalar || ks[1] != KernelTiled {
		t.Fatalf("AvailableKernels() = %v, want scalar and tiled always present", ks)
	}
	for _, k := range ks {
		if err := SetKernel(k); err != nil {
			t.Fatalf("SetKernel(%s): %v", k, err)
		}
		if ActiveKernel() != k {
			t.Fatalf("ActiveKernel() = %s after SetKernel(%s)", ActiveKernel(), k)
		}
	}
	if err := SetKernel(Kernel(99)); err == nil {
		t.Fatal("SetKernel(99) must fail")
	}
	if !haveFMAKernels {
		if err := SetKernel(KernelFMA); err == nil {
			t.Fatal("SetKernel(fma) must fail when FMA kernels are unavailable")
		}
	}
	if KernelScalar.String() != "scalar" || KernelTiled.String() != "tiled" || KernelFMA.String() != "fma" {
		t.Fatal("kernel names must be stable (CLI headers and bench rows use them)")
	}
}

func TestKernelsLargeShapeAgreement(t *testing.T) {
	// A shape big enough to exercise multiple KC blocks and MC blocks at
	// once (KC blocking must stay bit-transparent for scalar/tiled).
	rng := NewRNG(41)
	a := RandN(rng, 300, 600, 1)
	b := RandN(rng, 600, 70, 1)
	want := refMatMul(a, b)
	withKernels(t, func(t *testing.T, exact bool) {
		got := MatMul(a, b)
		checkMat(t, "MatMul 300x600x70", got, want, exact)
		Put(got)
	})
}

func TestF32ModeToggle(t *testing.T) {
	if F32() {
		t.Fatal("float32 mode must default to off")
	}
	SetF32(true)
	if !F32() {
		t.Fatal("SetF32(true) not visible")
	}
	SetF32(false)
	if F32() {
		t.Fatal("SetF32(false) not visible")
	}
}

func TestF32NarrowingActuallyHappens(t *testing.T) {
	// Guard against the mode silently running float64: a value whose
	// float32 rounding is far from its float64 value must show the
	// rounding in the product.
	withF32(t, func(t *testing.T) {
		a := FromRows([][]float64{{1 + 1e-12}})
		b := FromRows([][]float64{{1}})
		out := Zeros(1, 1)
		MatMulInto(out, a, b)
		if out.Data[0] != 1 {
			t.Fatalf("float32 mode product = %v, want exactly 1 (1+1e-12 narrows to 1)", out.Data[0])
		}
	})
	a := FromRows([][]float64{{1 + 1e-12}})
	b := FromRows([][]float64{{1}})
	out := Zeros(1, 1)
	MatMulInto(out, a, b)
	if math.Abs(out.Data[0]-(1+1e-12)) > 1e-15 {
		t.Fatalf("float64 mode product = %v, want 1+1e-12", out.Data[0])
	}
}
