package tensor

import (
	"fmt"
	"math/bits"
	"sync"
)

// Float32 storage for the compute-mode pipeline: Matrix32 is the narrow
// counterpart of Matrix, with its own size-class workspace pool (Get32/
// Put32/Reuse32, same ownership contract as pool.go), and Snap is a small
// value-type union over the two precisions used for engine K-FAC snapshots
// — in float32 mode, activation and gradient captures narrow at snapshot
// time, halving resident snapshot memory and the Gram products' input
// traffic.

// Matrix32 is a dense row-major float32 matrix.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix32 returns a zeroed rows x cols float32 matrix.
func NewMatrix32(rows, cols int) *Matrix32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// NarrowFrom overwrites m with src rounded to float32. Shapes must match.
func (m *Matrix32) NarrowFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: NarrowFrom shape %dx%d, want %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	narrow(m.Data, src.Data)
}

// WidenInto overwrites dst with m converted to float64. Shapes must match.
func (m *Matrix32) WidenInto(dst *Matrix) {
	if m.Rows != dst.Rows || m.Cols != dst.Cols {
		panic(fmt.Sprintf("tensor: WidenInto dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, m.Rows, m.Cols))
	}
	widen(dst.Data, m.Data)
}

func narrow(dst []float32, src []float64) {
	dst = dst[:len(src)]
	for i, v := range src {
		dst[i] = float32(v)
	}
}

func widen(dst []float64, src []float32) {
	dst = dst[:len(src)]
	for i, v := range src {
		dst[i] = float64(v)
	}
}

var mat32Pools [maxPoolClass + 1]sync.Pool

// Get32 returns a rows x cols float32 matrix from the workspace pool, with
// unspecified contents — the float32 analogue of Get. Return with Put32.
func Get32(rows, cols int) *Matrix32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	n := rows * cols
	if n == 0 {
		return &Matrix32{Rows: rows, Cols: cols, Data: []float32{}}
	}
	c := sizeClass(n)
	if c > maxPoolClass {
		return NewMatrix32(rows, cols)
	}
	if v := mat32Pools[c].Get(); v != nil {
		m := v.(*Matrix32)
		m.Rows, m.Cols = rows, cols
		m.Data = m.Data[:n]
		return m
	}
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, n, 1<<c)}
}

// Put32 returns a float32 matrix to the workspace pool (same contract as
// Put); nil is a no-op.
func Put32(m *Matrix32) {
	if m == nil {
		return
	}
	n := cap(m.Data)
	if n == 0 {
		return
	}
	c := bits.Len(uint(n)) - 1
	if c > maxPoolClass {
		return
	}
	m.Data = m.Data[:0:n]
	mat32Pools[c].Put(m)
}

// Reuse32 returns buf when it already has the requested shape and a fresh
// zeroed Matrix32 otherwise; the result is caller-owned, never pooled.
func Reuse32(buf *Matrix32, rows, cols int) *Matrix32 {
	if buf != nil && buf.Rows == rows && buf.Cols == cols {
		return buf
	}
	return NewMatrix32(rows, cols)
}

// Snap is a precision-tagged snapshot of a matrix: exactly one of the two
// fields is set. The engine stores its per-micro-batch K-FAC activation and
// gradient snapshots as Snaps so float32 mode halves their footprint
// without forking the executor. The zero Snap is invalid (Valid reports
// false) and Release on it is a no-op.
type Snap struct {
	m64 *Matrix
	m32 *Matrix32
}

// SnapOf wraps an existing float64 matrix without copying. The Snap borrows
// the matrix; Release must not be called on borrowed Snaps' owners' behalf
// unless the caller owns the backing data.
func SnapOf(m *Matrix) Snap { return Snap{m64: m} }

// SnapOf32 wraps an existing float32 matrix without copying.
func SnapOf32(m *Matrix32) Snap { return Snap{m32: m} }

// SnapClone captures a pooled snapshot of src at the precision selected by
// the global mode: a narrowed float32 copy when F32() is on, a float64
// clone otherwise. Release returns the backing buffer to its pool.
func SnapClone(src *Matrix) Snap {
	if F32() {
		m := Get32(src.Rows, src.Cols)
		narrow(m.Data, src.Data)
		return Snap{m32: m}
	}
	return Snap{m64: GetClone(src)}
}

// Valid reports whether the Snap holds a matrix.
func (s Snap) Valid() bool { return s.m64 != nil || s.m32 != nil }

// Rows returns the row count (0 for an invalid Snap).
func (s Snap) Rows() int {
	switch {
	case s.m64 != nil:
		return s.m64.Rows
	case s.m32 != nil:
		return s.m32.Rows
	}
	return 0
}

// Cols returns the column count (0 for an invalid Snap).
func (s Snap) Cols() int {
	switch {
	case s.m64 != nil:
		return s.m64.Cols
	case s.m32 != nil:
		return s.m32.Cols
	}
	return 0
}

// Clone returns a pooled same-precision copy of the Snap.
func (s Snap) Clone() Snap {
	switch {
	case s.m64 != nil:
		return Snap{m64: GetClone(s.m64)}
	case s.m32 != nil:
		m := Get32(s.m32.Rows, s.m32.Cols)
		copy(m.Data, s.m32.Data)
		return Snap{m32: m}
	}
	return Snap{}
}

// Release returns the Snap's backing buffer to the matching pool. Safe on
// the zero Snap. The caller must drop the Snap afterwards.
func (s Snap) Release() {
	switch {
	case s.m64 != nil:
		Put(s.m64)
	case s.m32 != nil:
		Put32(s.m32)
	}
}

// GramInto computes dst = s^T * s (the K-FAC factor partial product). dst
// must have shape Cols x Cols. A float32 Snap widens into a pooled scratch
// first; in float32 mode the product itself then renarrows inside the
// packed driver, and widen-then-narrow is exact, so the result is
// bit-identical to a direct float32 Gram.
func (s Snap) GramInto(dst *Matrix) {
	switch {
	case s.m64 != nil:
		TMatMulInto(dst, s.m64, s.m64)
	case s.m32 != nil:
		w := Get(s.m32.Rows, s.m32.Cols)
		widen(w.Data, s.m32.Data)
		TMatMulInto(dst, w, w)
		Put(w)
	default:
		panic("tensor: GramInto on invalid Snap")
	}
}
