package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMatMulKnown(t *testing.T) {
	a := New(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := New(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := MatMul(a, b)
	want := New(2, 2, []float64{58, 64, 139, 154})
	if !got.Equal(want) {
		t.Fatalf("MatMul: got %v, want %v", got, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := NewRNG(7)
	m := RandN(r, 5, 5, 1)
	if !MatMul(m, Eye(5)).AllClose(m, 1e-12) {
		t.Fatal("m * I != m")
	}
	if !MatMul(Eye(5), m).AllClose(m, 1e-12) {
		t.Fatal("I * m != m")
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inner-dimension mismatch")
		}
	}()
	MatMul(Zeros(2, 3), Zeros(2, 3))
}

func TestMatMulIntoShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong destination shape")
		}
	}()
	MatMulInto(Zeros(3, 3), Zeros(2, 3), Zeros(3, 2))
}

func TestMatMulTMatchesExplicitTranspose(t *testing.T) {
	r := NewRNG(3)
	a := RandN(r, 4, 6, 1)
	b := RandN(r, 5, 6, 1)
	got := MatMulT(a, b)
	want := MatMul(a, b.T())
	if !got.AllClose(want, 1e-12) {
		t.Fatal("MatMulT disagrees with MatMul(a, b.T())")
	}
}

func TestTMatMulMatchesExplicitTranspose(t *testing.T) {
	r := NewRNG(4)
	a := RandN(r, 6, 4, 1)
	b := RandN(r, 6, 5, 1)
	got := TMatMul(a, b)
	want := MatMul(a.T(), b)
	if !got.AllClose(want, 1e-12) {
		t.Fatal("TMatMul disagrees with MatMul(a.T(), b)")
	}
}

func TestMatVecAndVecMat(t *testing.T) {
	a := New(2, 3, []float64{1, 2, 3, 4, 5, 6})
	x := []float64{1, 0, -1}
	got := MatVec(a, x)
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MatVec: got %v", got)
	}
	y := []float64{1, -1}
	got2 := VecMat(y, a)
	if got2[0] != -3 || got2[1] != -3 || got2[2] != -3 {
		t.Fatalf("VecMat: got %v", got2)
	}
}

func TestOuterAndDot(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{3, 4, 5}
	o := Outer(x, y)
	want := New(2, 3, []float64{3, 4, 5, 6, 8, 10})
	if !o.Equal(want) {
		t.Fatalf("Outer: got %v", o)
	}
	if Dot(x, []float64{10, 100}) != 210 {
		t.Fatal("Dot wrong")
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-12 {
		t.Fatal("Norm2 wrong")
	}
}

func TestDotPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

// Property: (AB)C == A(BC) for random small matrices (associativity).
func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(6)
		k := 1 + r.Intn(6)
		p := 1 + r.Intn(6)
		q := 1 + r.Intn(6)
		a := RandN(r, n, k, 1)
		b := RandN(r, k, p, 1)
		c := RandN(r, p, q, 1)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		return left.AllClose(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: (AB)^T == B^T A^T.
func TestMatMulTransposeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(6)
		k := 1 + r.Intn(6)
		p := 1 + r.Intn(6)
		a := RandN(r, n, k, 1)
		b := RandN(r, k, p, 1)
		left := MatMul(a, b).T()
		right := MatMul(b.T(), a.T())
		return left.AllClose(right, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: distributivity A(B+C) == AB + AC.
func TestMatMulDistributivityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(5)
		k := 1 + r.Intn(5)
		p := 1 + r.Intn(5)
		a := RandN(r, n, k, 1)
		b := RandN(r, k, p, 1)
		c := RandN(r, k, p, 1)
		left := MatMul(a, b.Add(c))
		right := MatMul(a, b).Add(MatMul(a, c))
		return left.AllClose(right, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
