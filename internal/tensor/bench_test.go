package tensor

import (
	"fmt"
	"testing"
)

func BenchmarkMatMul(b *testing.B) {
	for _, n := range []int{32, 128, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := NewRNG(1)
			x := RandN(r, n, n, 1)
			y := RandN(r, n, n, 1)
			out := Zeros(n, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulInto(out, x, y)
			}
			b.SetBytes(int64(8 * n * n))
		})
	}
}

// BenchmarkMatMulWorkers measures the same 256x256 product under explicit
// worker budgets — the parallel-speedup trajectory the CI bench job tracks.
// Besides MB/s it reports poolchunks/op, the number of packed-panel chunks
// executed by pool workers per op: the effective per-op fan-out. On hosts
// with few cores the wall-clock rows stay flat, but a kernel that stops
// splitting (or a pool that stops accepting) still shows up as
// poolchunks/op collapsing to zero.
func BenchmarkMatMulWorkers(b *testing.B) {
	defer SetParallelism(0)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			SetParallelism(w)
			r := NewRNG(1)
			x := RandN(r, 256, 256, 1)
			y := RandN(r, 256, 256, 1)
			out := Zeros(256, 256)
			b.ResetTimer()
			start := PoolTasksExecuted()
			for i := 0; i < b.N; i++ {
				MatMulInto(out, x, y)
			}
			b.SetBytes(int64(8 * 256 * 256))
			b.ReportMetric(float64(PoolTasksExecuted()-start)/float64(b.N), "poolchunks/op")
		})
	}
}

// BenchmarkMatMulKernels pins each dispatch variant on the same product so
// the scalar -> tiled -> fma trajectory is tracked per variant.
func BenchmarkMatMulKernels(b *testing.B) {
	def := ActiveKernel()
	defer SetKernel(def)
	for _, k := range AvailableKernels() {
		b.Run(k.String(), func(b *testing.B) {
			if err := SetKernel(k); err != nil {
				b.Fatal(err)
			}
			r := NewRNG(1)
			x := RandN(r, 256, 256, 1)
			y := RandN(r, 256, 256, 1)
			out := Zeros(256, 256)
			// One untimed call so the kernel's lazily grown packing
			// buffers exist before measurement: the steady state is
			// allocation-free and the benchmark must report it that way.
			MatMulInto(out, x, y)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulInto(out, x, y)
			}
			b.SetBytes(int64(8 * 256 * 256))
		})
	}
}

// BenchmarkMatMulF32 is BenchmarkMatMul under float32 compute mode (same
// float64 API; packed panels and accumulation narrow to float32).
func BenchmarkMatMulF32(b *testing.B) {
	SetF32(true)
	defer SetF32(false)
	for _, n := range []int{128, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := NewRNG(1)
			x := RandN(r, n, n, 1)
			y := RandN(r, n, n, 1)
			out := Zeros(n, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulInto(out, x, y)
			}
			b.SetBytes(int64(8 * n * n))
		})
	}
}

func BenchmarkMatMulT(b *testing.B) {
	r := NewRNG(2)
	x := RandN(r, 128, 256, 1)
	y := RandN(r, 128, 256, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Put(MatMulT(x, y)) // pooled result: steady state allocates nothing
	}
}

func BenchmarkMatMulTInto(b *testing.B) {
	r := NewRNG(2)
	x := RandN(r, 128, 256, 1)
	y := RandN(r, 128, 256, 1)
	out := Zeros(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTInto(out, x, y)
	}
}

func BenchmarkTMatMul(b *testing.B) {
	// The curvature kernel shape: U^T U with tall U (tokens x features).
	r := NewRNG(3)
	u := RandN(r, 512, 64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Put(TMatMul(u, u)) // pooled result: steady state allocates nothing
	}
}

func BenchmarkTMatMulAddInto(b *testing.B) {
	// The fused gradient-accumulation kernel of Dense.Backward.
	r := NewRNG(3)
	u := RandN(r, 512, 64, 1)
	acc := Zeros(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TMatMulAddInto(acc, u, u)
	}
}

func BenchmarkCholesky(b *testing.B) {
	for _, n := range []int{32, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := NewRNG(4)
			m := RandSPD(r, n, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Cholesky(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCholeskyInverse(b *testing.B) {
	r := NewRNG(5)
	m := RandSPD(r, 64, 1)
	l, err := Cholesky(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CholeskyInverse(l)
	}
}

func BenchmarkSPDInverse(b *testing.B) {
	r := NewRNG(6)
	m := RandSPD(r, 64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SPDInverse(m, 1e-3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKronMatVec(b *testing.B) {
	// The preconditioning kernel B⁻¹ G A⁻¹ for a 64->64 layer.
	r := NewRNG(7)
	a := RandSPD(r, 64, 1)
	bb := RandSPD(r, 64, 1)
	g := RandN(r, 64, 64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KronMatVec(a, bb, g)
	}
}

func BenchmarkRNGNormFloat64(b *testing.B) {
	r := NewRNG(8)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.NormFloat64()
	}
	_ = sink
}
