package tensor

// Portable register-tiled micro-kernels: the innermost compute of the
// packed GEMM driver (gemm.go). Each call updates one mr x nr tile of C:
//
//	C[r][j] += sum_{t<kc} ap[t*mr+r] * bp[t*nr+j]
//
// with C loaded into locals up front and stored once at the end, so the
// kc-loop runs entirely in registers. The accumulation for every element
// is one multiply-rounding followed by one add-rounding per t, in
// ascending t order — exactly the per-element sequence of the scalar
// reference kernels in matmul.go, which makes the tiled float64 variant
// bit-identical to KernelScalar. The kernels always accumulate into the
// existing C values; the driver zeroes C first for overwrite semantics
// (adding to +0.0 is exact), and KC-blocking stays bit-transparent
// because each block resumes from the stored C instead of introducing a
// second reduction tree.
//
// The tile is 4x2: 8 accumulators plus 6 loop operands stay within
// amd64's 16 float registers (and comfortably within other GOARCHes'),
// which the Go compiler needs to avoid spilling the accumulators — a 4x4
// tile's 16 accumulators alone exhaust the register file and run ~2x
// slower. The k-loop is unrolled by two (with a single-step tail for odd
// kc) to amortize the loop-carried slice advances; the bounds checks
// vanish against the len() loop conditions. Tile shape and unroll never
// affect results: each output element keeps its own ascending-k
// reduction regardless of how elements group into tiles or iterations.
//
// ap is an mr-row packed A panel (k-major: lane r of step t at t*mr+r),
// bp an nr-column packed B panel (lane j of step t at t*nr+j); both are
// zero-padded along rows/columns by the packers, never along k.

// mk4x2f64 is the 4x2 float64 micro-kernel.
func mk4x2f64(c []float64, ldc int, ap, bp []float64, kc int) {
	c0 := c[0:2:2]
	c1 := c[ldc : ldc+2 : ldc+2]
	c2 := c[2*ldc : 2*ldc+2 : 2*ldc+2]
	c3 := c[3*ldc : 3*ldc+2 : 3*ldc+2]
	c00, c01 := c0[0], c0[1]
	c10, c11 := c1[0], c1[1]
	c20, c21 := c2[0], c2[1]
	c30, c31 := c3[0], c3[1]
	ap = ap[: kc*4 : kc*4]
	bp = bp[: kc*2 : kc*2]
	for len(ap) >= 8 && len(bp) >= 4 {
		a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
		b0, b1 := bp[0], bp[1]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[4], ap[5], ap[6], ap[7]
		b0, b1 = bp[2], bp[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		ap = ap[8:]
		bp = bp[4:]
	}
	if len(ap) >= 4 && len(bp) >= 2 {
		a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
		b0, b1 := bp[0], bp[1]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
	}
	c0[0], c0[1] = c00, c01
	c1[0], c1[1] = c10, c11
	c2[0], c2[1] = c20, c21
	c3[0], c3[1] = c30, c31
}

// mk4x2f32 is the 4x2 float32 micro-kernel — the float32-mode compute of
// KernelScalar and KernelTiled. Its per-element sequence (multiply-round,
// add-round, ascending t, all in float32) is bit-identical to a naive
// ascending-k float32 reduction.
func mk4x2f32(c []float32, ldc int, ap, bp []float32, kc int) {
	c0 := c[0:2:2]
	c1 := c[ldc : ldc+2 : ldc+2]
	c2 := c[2*ldc : 2*ldc+2 : 2*ldc+2]
	c3 := c[3*ldc : 3*ldc+2 : 3*ldc+2]
	c00, c01 := c0[0], c0[1]
	c10, c11 := c1[0], c1[1]
	c20, c21 := c2[0], c2[1]
	c30, c31 := c3[0], c3[1]
	ap = ap[: kc*4 : kc*4]
	bp = bp[: kc*2 : kc*2]
	for len(ap) >= 8 && len(bp) >= 4 {
		a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
		b0, b1 := bp[0], bp[1]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[4], ap[5], ap[6], ap[7]
		b0, b1 = bp[2], bp[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		ap = ap[8:]
		bp = bp[4:]
	}
	if len(ap) >= 4 && len(bp) >= 2 {
		a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
		b0, b1 := bp[0], bp[1]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
	}
	c0[0], c0[1] = c00, c01
	c1[0], c1[1] = c10, c11
	c2[0], c2[1] = c20, c21
	c3[0], c3[1] = c30, c31
}
