package tensor

import (
	"fmt"
	"math"
)

// SymEigen computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi method: m = V diag(values) V^T with orthonormal columns in
// V. It exists to support Shampoo-style preconditioners (§5 of the paper),
// which need matrix p-th roots of Kronecker-factored statistics — an
// eigendecomposition per factor, the work PipeFisher would split across
// bubbles.
//
// The input must be symmetric within reasonable tolerance; only the lower
// triangle is trusted. Typical factor sizes (tens to a few thousand) are
// well within Jacobi's comfort zone.
func SymEigen(m *Matrix) (values []float64, vectors *Matrix, err error) {
	if m.Rows != m.Cols {
		return nil, nil, fmt.Errorf("tensor: SymEigen requires a square matrix, got %dx%d", m.Rows, m.Cols)
	}
	n := m.Rows
	// Work on an exactly symmetric pooled copy (every entry is written).
	a := Get(n, n)
	defer Put(a)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Data[i*n+j] = 0.5 * (m.Data[i*n+j] + m.Data[j*n+i])
		}
	}
	v := Eye(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Off-diagonal Frobenius norm.
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += 2 * a.Data[i*n+j] * a.Data[i*n+j]
			}
		}
		if math.Sqrt(off) <= 1e-12*(1+a.FrobeniusNorm()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.Data[p*n+q]
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := a.Data[p*n+p]
				aqq := a.Data[q*n+q]
				// Rotation angle.
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply the rotation to rows/columns p and q.
				for k := 0; k < n; k++ {
					akp := a.Data[k*n+p]
					akq := a.Data[k*n+q]
					a.Data[k*n+p] = c*akp - s*akq
					a.Data[k*n+q] = s*akp + c*akq
				}
				for k := 0; k < n; k++ {
					apk := a.Data[p*n+k]
					aqk := a.Data[q*n+k]
					a.Data[p*n+k] = c*apk - s*aqk
					a.Data[q*n+k] = s*apk + c*aqk
				}
				for k := 0; k < n; k++ {
					vkp := v.Data[k*n+p]
					vkq := v.Data[k*n+q]
					v.Data[k*n+p] = c*vkp - s*vkq
					v.Data[k*n+q] = s*vkp + c*vkq
				}
			}
		}
	}
	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = a.Data[i*n+i]
	}
	return values, v, nil
}

// MatrixPower returns m^p for symmetric positive semi-definite m via
// eigendecomposition, clamping eigenvalues below epsilon to epsilon (the
// standard Shampoo stabilization). p may be fractional or negative (e.g.
// -0.25 for Shampoo's inverse fourth root).
func MatrixPower(m *Matrix, p, epsilon float64) (*Matrix, error) {
	values, vectors, err := SymEigen(m)
	if err != nil {
		return nil, err
	}
	n := m.Rows
	// V diag(λ^p) V^T; the scaled copy of V is a pooled work buffer
	// (every entry is written before use).
	scaled := Get(n, n)
	defer Put(scaled)
	for j := 0; j < n; j++ {
		lam := values[j]
		if lam < epsilon {
			lam = epsilon
		}
		f := math.Pow(lam, p)
		for i := 0; i < n; i++ {
			scaled.Data[i*n+j] = vectors.Data[i*n+j] * f
		}
	}
	return MatMulT(scaled, vectors), nil
}
