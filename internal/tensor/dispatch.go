package tensor

import (
	"fmt"
	"sync/atomic"
)

// This file is the kernel-dispatch layer: a process-wide selection of which
// matmul implementation the MatMul*/TMatMul* entry points run, plus the
// float32 compute-mode switch.
//
// Three kernel variants exist:
//
//   - KernelScalar — the original cache-blocked scalar loops (matmul.go).
//     Kept as the parity reference: the packed kernels are tested against
//     it, and it is the only float64 variant compiled under the purego
//     build tag's assumptions (it uses no assembly either way).
//   - KernelTiled — GotoBLAS-style packed panels driven through 4x2
//     register-tiled pure-Go micro-kernels (gemm.go, microkernel.go).
//     Portable to every GOARCH. Bit-identical to KernelScalar on float64:
//     both reduce each output element with one multiply-rounding and one
//     add-rounding per k step, in ascending k order.
//   - KernelFMA — the same packed driver calling hand-written amd64 AVX2
//     assembly micro-kernels (8x4 float64, 8x8 float32) that use fused
//     multiply-add. Selected only when CPUID reports AVX2+FMA with OS
//     XSAVE support, and never under the purego tag. FMA fuses the
//     multiply and add into a single rounding, so results differ from the
//     scalar/tiled variants by at most the fused-rounding delta — but the
//     reduction order per element is still fixed ascending k, so the
//     worker-count / replica-count / schedule bit-identity contracts hold
//     within the variant.
//
// The default is the best available variant (FMA where supported, tiled
// otherwise). SetKernel must not be called while kernels are executing —
// configure at startup or between training steps, like SetParallelism.
//
// Float32 mode (SetF32) is orthogonal: when enabled, the packed driver
// narrows its panels to float32, accumulates in float32, and widens on
// write-back — halving packed-panel memory traffic. KernelScalar has no
// separate float32 loop; in float32 mode it shares the tiled Go
// micro-kernels, which are themselves bit-identical to a naive ascending-k
// float32 reduction. Factorization-sensitive code (Cholesky, eigen
// decomposition, damping) never routes through GEMM and stays float64
// regardless of the mode.

// Kernel identifies one matmul implementation variant.
type Kernel int32

const (
	// KernelScalar is the cache-blocked scalar reference implementation.
	KernelScalar Kernel = iota
	// KernelTiled is the packed-panel pure-Go register-tiled implementation.
	KernelTiled
	// KernelFMA is the packed-panel amd64 AVX2+FMA assembly implementation.
	KernelFMA
)

// String returns the variant's stable lowercase name (used by CLI headers
// and benchmark row names).
func (k Kernel) String() string {
	switch k {
	case KernelScalar:
		return "scalar"
	case KernelTiled:
		return "tiled"
	case KernelFMA:
		return "fma"
	}
	return fmt.Sprintf("kernel(%d)", int32(k))
}

var (
	activeKernel atomic.Int32
	f32Mode      atomic.Bool
)

func init() {
	k := KernelTiled
	if haveFMAKernels {
		k = KernelFMA
	}
	activeKernel.Store(int32(k))
}

// ActiveKernel returns the currently selected kernel variant.
func ActiveKernel() Kernel { return Kernel(activeKernel.Load()) }

// SetKernel selects the kernel variant used by every subsequent matmul. It
// returns an error if the variant is not available on this CPU or build
// (KernelFMA requires amd64 with AVX2+FMA and a non-purego build). Like
// SetParallelism, it must not be called while kernels are executing.
func SetKernel(k Kernel) error {
	switch k {
	case KernelScalar, KernelTiled:
	case KernelFMA:
		if !haveFMAKernels {
			return fmt.Errorf("tensor: kernel %q not available on this CPU/build", k)
		}
	default:
		return fmt.Errorf("tensor: unknown kernel %d", int32(k))
	}
	activeKernel.Store(int32(k))
	return nil
}

// ParseKernel maps a variant name ("scalar", "tiled", "fma") to its Kernel
// — the inverse of String, for CLI -kernel flags.
func ParseKernel(name string) (Kernel, error) {
	for _, k := range []Kernel{KernelScalar, KernelTiled, KernelFMA} {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("tensor: unknown kernel %q (want scalar, tiled or fma)", name)
}

// AvailableKernels returns every variant that SetKernel would accept on
// this CPU and build, in ascending capability order.
func AvailableKernels() []Kernel {
	ks := []Kernel{KernelScalar, KernelTiled}
	if haveFMAKernels {
		ks = append(ks, KernelFMA)
	}
	return ks
}

// SetF32 toggles float32 compute mode for the packed matmul kernels and
// float32 storage for new Snap captures. Float64 matrices remain the
// API currency either way; the mode only changes internal panel precision
// and snapshot storage. Not safe to flip mid-kernel; set at startup.
func SetF32(on bool) { f32Mode.Store(on) }

// F32 reports whether float32 compute/storage mode is enabled.
func F32() bool { return f32Mode.Load() }
