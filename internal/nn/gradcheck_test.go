package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// scalarLoss reduces a module output to a scalar by a fixed weighted sum, so
// finite differences have a single number to probe. The weights are
// deterministic but non-uniform to exercise all output coordinates.
func scalarLoss(y *tensor.Matrix) (float64, *tensor.Matrix) {
	loss := 0.0
	grad := tensor.Zeros(y.Rows, y.Cols)
	for i := range y.Data {
		w := 0.1 + 0.01*float64(i%13)
		loss += w * y.Data[i]
		grad.Data[i] = w
	}
	return loss, grad
}

// checkParamGradients verifies analytic parameter gradients of run() against
// central finite differences, where run performs a fresh forward pass and
// returns the scalar loss.
func checkParamGradients(t *testing.T, params []*Param, run func() float64, backward func(), tol float64) {
	t.Helper()
	ZeroGrads(params)
	_ = run()
	backward()
	const eps = 1e-6
	for _, p := range params {
		for idx := 0; idx < len(p.Value.Data); idx += 1 + len(p.Value.Data)/17 {
			orig := p.Value.Data[idx]
			p.Value.Data[idx] = orig + eps
			up := run()
			p.Value.Data[idx] = orig - eps
			down := run()
			p.Value.Data[idx] = orig
			numeric := (up - down) / (2 * eps)
			analytic := p.Grad.Data[idx]
			if math.Abs(numeric-analytic) > tol*(1+math.Abs(numeric)) {
				t.Fatalf("param %s[%d]: analytic %g vs numeric %g", p.Name, idx, analytic, numeric)
			}
		}
	}
}

// checkInputGradient verifies the analytic input gradient against finite
// differences.
func checkInputGradient(t *testing.T, x *tensor.Matrix, run func() float64, analytic *tensor.Matrix, tol float64) {
	t.Helper()
	const eps = 1e-6
	for idx := 0; idx < len(x.Data); idx += 1 + len(x.Data)/23 {
		orig := x.Data[idx]
		x.Data[idx] = orig + eps
		up := run()
		x.Data[idx] = orig - eps
		down := run()
		x.Data[idx] = orig
		numeric := (up - down) / (2 * eps)
		if math.Abs(numeric-analytic.Data[idx]) > tol*(1+math.Abs(numeric)) {
			t.Fatalf("input grad[%d]: analytic %g vs numeric %g", idx, analytic.Data[idx], numeric)
		}
	}
}

func TestDenseGradients(t *testing.T) {
	rng := tensor.NewRNG(1)
	layer := NewDense("fc", 5, 4, rng)
	x := tensor.RandN(rng, 6, 5, 1)
	run := func() float64 {
		loss, _ := scalarLoss(layer.Forward(x))
		return loss
	}
	var inGrad *tensor.Matrix
	backward := func() {
		y := layer.Forward(x)
		_, g := scalarLoss(y)
		inGrad = layer.Backward(g)
	}
	checkParamGradients(t, layer.Params(), run, backward, 1e-6)
	checkInputGradient(t, x, run, inGrad, 1e-6)
}

func TestGELUGradients(t *testing.T) {
	rng := tensor.NewRNG(2)
	act := NewGELU()
	x := tensor.RandN(rng, 4, 6, 1)
	run := func() float64 {
		loss, _ := scalarLoss(act.Forward(x))
		return loss
	}
	var inGrad *tensor.Matrix
	y := act.Forward(x)
	_, g := scalarLoss(y)
	inGrad = act.Backward(g)
	checkInputGradient(t, x, run, inGrad, 1e-5)
}

func TestReLUGradients(t *testing.T) {
	rng := tensor.NewRNG(3)
	act := NewReLU()
	// Keep inputs away from the kink at 0.
	x := tensor.RandN(rng, 4, 5, 1)
	for i := range x.Data {
		if math.Abs(x.Data[i]) < 0.05 {
			x.Data[i] = 0.1
		}
	}
	run := func() float64 {
		loss, _ := scalarLoss(act.Forward(x))
		return loss
	}
	y := act.Forward(x)
	_, g := scalarLoss(y)
	inGrad := act.Backward(g)
	checkInputGradient(t, x, run, inGrad, 1e-6)
}

func TestTanhGradients(t *testing.T) {
	rng := tensor.NewRNG(4)
	act := NewTanh()
	x := tensor.RandN(rng, 3, 4, 1)
	run := func() float64 {
		loss, _ := scalarLoss(act.Forward(x))
		return loss
	}
	y := act.Forward(x)
	_, g := scalarLoss(y)
	inGrad := act.Backward(g)
	checkInputGradient(t, x, run, inGrad, 1e-6)
}

func TestLayerNormGradients(t *testing.T) {
	rng := tensor.NewRNG(5)
	ln := NewLayerNorm("ln", 7)
	// Perturb gain/bias away from the identity so the test is non-trivial.
	for i := range ln.Gain.Data {
		ln.Gain.Data[i] = 1 + 0.1*rng.NormFloat64()
		ln.Bias.Data[i] = 0.1 * rng.NormFloat64()
	}
	x := tensor.RandN(rng, 5, 7, 1)
	run := func() float64 {
		loss, _ := scalarLoss(ln.Forward(x))
		return loss
	}
	var inGrad *tensor.Matrix
	backward := func() {
		y := ln.Forward(x)
		_, g := scalarLoss(y)
		inGrad = ln.Backward(g)
	}
	checkParamGradients(t, ln.Params(), run, backward, 1e-5)
	checkInputGradient(t, x, run, inGrad, 1e-5)
}

func TestAttentionGradients(t *testing.T) {
	rng := tensor.NewRNG(6)
	const batch, seq, d, heads = 2, 3, 8, 2
	attn := NewMultiHeadAttention("attn", d, heads, rng)
	attn.SetShape(batch, seq)
	x := tensor.RandN(rng, batch*seq, d, 1)
	run := func() float64 {
		loss, _ := scalarLoss(attn.Forward(x))
		return loss
	}
	var inGrad *tensor.Matrix
	backward := func() {
		y := attn.Forward(x)
		_, g := scalarLoss(y)
		inGrad = attn.Backward(g)
	}
	checkParamGradients(t, attn.Params(), run, backward, 1e-5)
	checkInputGradient(t, x, run, inGrad, 1e-5)
}

func TestTransformerBlockGradients(t *testing.T) {
	rng := tensor.NewRNG(7)
	const batch, seq, d, dff, heads = 2, 3, 8, 16, 2
	blk := NewTransformerBlock("block", d, dff, heads, rng)
	blk.SetShape(batch, seq)
	x := tensor.RandN(rng, batch*seq, d, 1)
	run := func() float64 {
		loss, _ := scalarLoss(blk.Forward(x))
		return loss
	}
	var inGrad *tensor.Matrix
	backward := func() {
		y := blk.Forward(x)
		_, g := scalarLoss(y)
		inGrad = blk.Backward(g)
	}
	checkParamGradients(t, blk.Params(), run, backward, 2e-5)
	checkInputGradient(t, x, run, inGrad, 2e-5)
}

func TestCrossEntropyGradients(t *testing.T) {
	rng := tensor.NewRNG(8)
	logits := tensor.RandN(rng, 6, 9, 1)
	targets := []int{0, 3, IgnoreIndex, 8, 2, IgnoreIndex}
	_, grad, count := CrossEntropy(logits, targets)
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
	const eps = 1e-6
	for idx := range logits.Data {
		orig := logits.Data[idx]
		logits.Data[idx] = orig + eps
		up, _, _ := CrossEntropy(logits, targets)
		logits.Data[idx] = orig - eps
		down, _, _ := CrossEntropy(logits, targets)
		logits.Data[idx] = orig
		numeric := (up - down) / (2 * eps)
		if math.Abs(numeric-grad.Data[idx]) > 1e-6 {
			t.Fatalf("CE grad[%d]: analytic %g vs numeric %g", idx, grad.Data[idx], numeric)
		}
	}
}
