package nn

import (
	"math"

	"repro/internal/tensor"
)

// GELU is the Gaussian Error Linear Unit activation used by BERT:
// gelu(x) = x/2 * (1 + erf(x/sqrt(2))). The backward uses the exact
// derivative. Forward and Backward return retained buffers (valid until the
// module's next call), so the steady-state hot path allocates nothing.
type GELU struct {
	lastInput *tensor.Matrix
	outBuf    *tensor.Matrix
	dxBuf     *tensor.Matrix
}

// NewGELU returns a GELU activation module.
func NewGELU() *GELU { return &GELU{} }

// Forward applies GELU element-wise.
func (g *GELU) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x == g.outBuf {
		g.outBuf = nil
	}
	g.lastInput = x
	y := tensor.Reuse(g.outBuf, x.Rows, x.Cols)
	g.outBuf = y
	for i, v := range x.Data {
		y.Data[i] = 0.5 * v * (1 + math.Erf(v/math.Sqrt2))
	}
	return y
}

// Backward multiplies the upstream gradient by gelu'(x).
func (g *GELU) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if g.lastInput == nil {
		panic("nn: GELU Backward before Forward")
	}
	if grad == g.dxBuf {
		g.dxBuf = nil
	}
	out := tensor.Reuse(g.dxBuf, grad.Rows, grad.Cols)
	g.dxBuf = out
	invSqrt2Pi := 1 / math.Sqrt(2*math.Pi)
	for i, v := range g.lastInput.Data {
		cdf := 0.5 * (1 + math.Erf(v/math.Sqrt2))
		pdf := invSqrt2Pi * math.Exp(-0.5*v*v)
		out.Data[i] = grad.Data[i] * (cdf + v*pdf)
	}
	return out
}

// Params returns nil; GELU has no parameters.
func (g *GELU) Params() []*Param { return nil }

// ReLU is the rectified linear activation, used in ablations.
type ReLU struct {
	lastInput *tensor.Matrix
}

// NewReLU returns a ReLU activation module.
func NewReLU() *ReLU { return &ReLU{} }

// Forward applies max(0, x) element-wise.
func (r *ReLU) Forward(x *tensor.Matrix) *tensor.Matrix {
	r.lastInput = x
	y := tensor.Zeros(x.Rows, x.Cols)
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
		}
	}
	return y
}

// Backward zeroes the gradient where the input was non-positive.
func (r *ReLU) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if r.lastInput == nil {
		panic("nn: ReLU Backward before Forward")
	}
	out := tensor.Zeros(grad.Rows, grad.Cols)
	for i, v := range r.lastInput.Data {
		if v > 0 {
			out.Data[i] = grad.Data[i]
		}
	}
	return out
}

// Params returns nil; ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// Tanh is the hyperbolic-tangent activation (used by the BERT pooler).
type Tanh struct {
	lastOutput *tensor.Matrix
}

// NewTanh returns a Tanh activation module.
func NewTanh() *Tanh { return &Tanh{} }

// Forward applies tanh element-wise.
func (t *Tanh) Forward(x *tensor.Matrix) *tensor.Matrix {
	y := tensor.Zeros(x.Rows, x.Cols)
	for i, v := range x.Data {
		y.Data[i] = math.Tanh(v)
	}
	t.lastOutput = y
	return y
}

// Backward multiplies by 1 - tanh²(x).
func (t *Tanh) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if t.lastOutput == nil {
		panic("nn: Tanh Backward before Forward")
	}
	out := tensor.Zeros(grad.Rows, grad.Cols)
	for i, y := range t.lastOutput.Data {
		out.Data[i] = grad.Data[i] * (1 - y*y)
	}
	return out
}

// Params returns nil; Tanh has no parameters.
func (t *Tanh) Params() []*Param { return nil }
