package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestDenseForwardKnown(t *testing.T) {
	d := &Dense{
		Name: "fc",
		W:    tensor.New(2, 3, []float64{1, 0, 0, 0, 1, 0}),
		B:    tensor.New(1, 2, []float64{10, 20}),
		GW:   tensor.Zeros(2, 3),
		GB:   tensor.Zeros(1, 2),
	}
	x := tensor.New(1, 3, []float64{1, 2, 3})
	y := d.Forward(x)
	if y.At(0, 0) != 11 || y.At(0, 1) != 22 {
		t.Fatalf("Dense forward wrong: %v", y)
	}
}

func TestDenseShapePanics(t *testing.T) {
	rng := tensor.NewRNG(1)
	d := NewDense("fc", 3, 2, rng)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for wrong input width")
			}
		}()
		d.Forward(tensor.Zeros(1, 4))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for Backward before Forward")
			}
		}()
		NewDense("fc2", 3, 2, rng).Backward(tensor.Zeros(1, 2))
	}()
}

func TestDenseKFACCapture(t *testing.T) {
	rng := tensor.NewRNG(2)
	d := NewDense("fc", 4, 3, rng)
	d.CaptureKFAC = true
	x := tensor.RandN(rng, 5, 4, 1)
	y := d.Forward(x)
	if _, _, ok := d.KFACStats(); ok {
		t.Fatal("stats must not be available before backward")
	}
	_, g := func() (float64, *tensor.Matrix) {
		grad := tensor.Full(y.Rows, y.Cols, 0.5)
		return 0, grad
	}()
	d.Backward(g)
	acts, grads, ok := d.KFACStats()
	if !ok {
		t.Fatal("stats should be available after forward+backward")
	}
	if acts.Rows != 5 || acts.Cols != 4 || grads.Rows != 5 || grads.Cols != 3 {
		t.Fatalf("stat shapes wrong: acts %dx%d grads %dx%d", acts.Rows, acts.Cols, grads.Rows, grads.Cols)
	}
	d.ClearCapture()
	if _, _, ok := d.KFACStats(); ok {
		t.Fatal("ClearCapture must drop the stats")
	}
}

func TestDenseNoCaptureByDefault(t *testing.T) {
	rng := tensor.NewRNG(3)
	d := NewDense("fc", 2, 2, rng)
	y := d.Forward(tensor.RandN(rng, 3, 2, 1))
	d.Backward(tensor.Full(y.Rows, y.Cols, 1))
	if _, _, ok := d.KFACStats(); ok {
		t.Fatal("stats must not be captured when CaptureKFAC is false")
	}
}

func TestGradAccumulation(t *testing.T) {
	rng := tensor.NewRNG(4)
	d := NewDense("fc", 3, 2, rng)
	x := tensor.RandN(rng, 4, 3, 1)
	g := tensor.Full(4, 2, 1)
	d.Forward(x)
	d.Backward(g)
	once := d.GW.Clone()
	d.Forward(x)
	d.Backward(g)
	twice := d.GW
	if !twice.AllClose(once.Scale(2), 1e-12) {
		t.Fatal("gradients must accumulate across backward calls")
	}
	ZeroGrads(d.Params())
	if d.GW.Sum() != 0 || d.GB.Sum() != 0 {
		t.Fatal("ZeroGrads must clear gradients")
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := tensor.NewRNG(5)
	x := tensor.RandN(rng, 6, 10, 3)
	p := SoftmaxRows(x)
	for i := 0; i < p.Rows; i++ {
		var s float64
		for _, v := range p.Row(i) {
			if v < 0 {
				t.Fatal("negative probability")
			}
			s += v
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("row %d sums to %g", i, s)
		}
	}
}

func TestSoftmaxStability(t *testing.T) {
	x := tensor.New(1, 3, []float64{1000, 1001, 1002})
	p := SoftmaxRows(x)
	if p.HasNaN() {
		t.Fatal("softmax overflowed on large logits")
	}
}

func TestCrossEntropyAllIgnored(t *testing.T) {
	logits := tensor.Zeros(3, 4)
	loss, grad, count := CrossEntropy(logits, []int{IgnoreIndex, IgnoreIndex, IgnoreIndex})
	if loss != 0 || count != 0 || grad.Sum() != 0 {
		t.Fatal("all-ignored loss must be zero with zero grad")
	}
}

func TestCrossEntropyUniform(t *testing.T) {
	// Uniform logits: loss = log(C).
	logits := tensor.Zeros(2, 8)
	loss, _, _ := CrossEntropy(logits, []int{3, 5})
	if math.Abs(loss-math.Log(8)) > 1e-12 {
		t.Fatalf("uniform CE loss = %g, want log 8 = %g", loss, math.Log(8))
	}
}

func TestCrossEntropyTargetRangePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range target")
		}
	}()
	CrossEntropy(tensor.Zeros(1, 4), []int{7})
}

func TestEmbeddingLookupAndBackward(t *testing.T) {
	rng := tensor.NewRNG(6)
	e := NewEmbedding("emb", 10, 4, rng)
	ids := []int{1, 3, 1}
	out := e.Lookup(ids)
	if out.Rows != 3 || out.Cols != 4 {
		t.Fatalf("Lookup shape wrong: %dx%d", out.Rows, out.Cols)
	}
	for j := 0; j < 4; j++ {
		if out.At(0, j) != out.At(2, j) {
			t.Fatal("same id must produce identical rows")
		}
	}
	grad := tensor.Full(3, 4, 1)
	e.BackwardIDs(grad)
	// Row 1 was used twice: gradient 2 per column; row 3 once.
	for j := 0; j < 4; j++ {
		if e.GTable.At(1, j) != 2 {
			t.Fatalf("GTable[1][%d] = %g, want 2", j, e.GTable.At(1, j))
		}
		if e.GTable.At(3, j) != 1 {
			t.Fatalf("GTable[3][%d] = %g, want 1", j, e.GTable.At(3, j))
		}
		if e.GTable.At(0, j) != 0 {
			t.Fatal("untouched rows must have zero grad")
		}
	}
}

func TestEmbeddingPanics(t *testing.T) {
	rng := tensor.NewRNG(7)
	e := NewEmbedding("emb", 4, 2, rng)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for out-of-range id")
			}
		}()
		e.Lookup([]int{5})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for BackwardIDs before Lookup")
			}
		}()
		NewEmbedding("e2", 4, 2, rng).BackwardIDs(tensor.Zeros(1, 2))
	}()
}

func TestSequential(t *testing.T) {
	rng := tensor.NewRNG(8)
	seq := NewSequential(
		NewDense("a", 4, 8, rng),
		NewGELU(),
		NewDense("b", 8, 3, rng),
	)
	x := tensor.RandN(rng, 5, 4, 1)
	y := seq.Forward(x)
	if y.Rows != 5 || y.Cols != 3 {
		t.Fatalf("Sequential output shape wrong: %dx%d", y.Rows, y.Cols)
	}
	g := seq.Backward(tensor.Full(5, 3, 1))
	if g.Rows != 5 || g.Cols != 4 {
		t.Fatalf("Sequential input grad shape wrong: %dx%d", g.Rows, g.Cols)
	}
	if len(seq.Params()) != 4 {
		t.Fatalf("expected 4 params, got %d", len(seq.Params()))
	}
}

func TestNumParametersAndGradNorm(t *testing.T) {
	rng := tensor.NewRNG(9)
	d := NewDense("fc", 3, 2, rng)
	if got := NumParameters(d.Params()); got != 3*2+2 {
		t.Fatalf("NumParameters = %d, want 8", got)
	}
	d.GW.Set(0, 0, 3)
	d.GB.Set(0, 0, 4)
	if got := GradNorm(d.Params()); math.Abs(got-5) > 1e-12 {
		t.Fatalf("GradNorm = %g, want 5", got)
	}
}

func TestAttentionShapeValidation(t *testing.T) {
	rng := tensor.NewRNG(10)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for indivisible heads")
			}
		}()
		NewMultiHeadAttention("a", 7, 2, rng)
	}()
	attn := NewMultiHeadAttention("a", 8, 2, rng)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for Forward before SetShape")
			}
		}()
		attn.Forward(tensor.Zeros(4, 8))
	}()
	attn.SetShape(2, 3)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for wrong token count")
			}
		}()
		attn.Forward(tensor.Zeros(5, 8))
	}()
}

func TestAttentionSequenceIndependence(t *testing.T) {
	// Attention must not leak across sequence boundaries: changing tokens
	// of sequence 1 must not affect outputs for sequence 0.
	rng := tensor.NewRNG(11)
	const batch, seq, d, heads = 2, 4, 8, 2
	attn := NewMultiHeadAttention("attn", d, heads, rng)
	attn.SetShape(batch, seq)
	x := tensor.RandN(rng, batch*seq, d, 1)
	y1 := attn.Forward(x).Clone()
	x2 := x.Clone()
	for i := seq; i < 2*seq; i++ {
		for j := 0; j < d; j++ {
			x2.Set(i, j, rng.NormFloat64())
		}
	}
	y2 := attn.Forward(x2)
	for i := 0; i < seq; i++ {
		for j := 0; j < d; j++ {
			if math.Abs(y1.At(i, j)-y2.At(i, j)) > 1e-12 {
				t.Fatal("sequence 0 output changed when sequence 1 input changed")
			}
		}
	}
}

func TestTransformerBlockShapePreserved(t *testing.T) {
	rng := tensor.NewRNG(12)
	blk := NewTransformerBlock("b", 8, 16, 2, rng)
	blk.SetShape(2, 3)
	x := tensor.RandN(rng, 6, 8, 1)
	y := blk.Forward(x)
	if y.Rows != 6 || y.Cols != 8 {
		t.Fatalf("block output shape %dx%d, want 6x8", y.Rows, y.Cols)
	}
	if len(blk.DenseLayers()) != 6 {
		t.Fatalf("block must expose 6 K-FAC layers, got %d", len(blk.DenseLayers()))
	}
}

func TestLayerNormNormalizes(t *testing.T) {
	rng := tensor.NewRNG(13)
	ln := NewLayerNorm("ln", 16)
	x := tensor.RandN(rng, 4, 16, 5) // large scale input
	y := ln.Forward(x)
	for i := 0; i < y.Rows; i++ {
		var mean, variance float64
		for _, v := range y.Row(i) {
			mean += v
		}
		mean /= 16
		for _, v := range y.Row(i) {
			variance += (v - mean) * (v - mean)
		}
		variance /= 16
		if math.Abs(mean) > 1e-10 || math.Abs(variance-1) > 1e-3 {
			t.Fatalf("row %d not normalized: mean %g var %g", i, mean, variance)
		}
	}
}
