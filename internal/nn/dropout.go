package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Dropout randomly zeroes activations during training with probability P,
// scaling the survivors by 1/(1-P) (inverted dropout, as BERT uses with
// P = 0.1). In evaluation mode it is the identity. The mask is drawn from
// the module's own deterministic RNG so training remains reproducible.
type Dropout struct {
	// P is the drop probability in [0, 1).
	P float64
	// Training toggles between masking (true) and identity (false).
	Training bool

	rng      *tensor.RNG
	lastMask *tensor.Matrix
}

// NewDropout builds a dropout module with the given probability and seed.
func NewDropout(p float64, seed uint64) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout probability %g outside [0, 1)", p))
	}
	return &Dropout{P: p, Training: true, rng: tensor.NewRNG(seed)}
}

// Forward applies the mask (training) or passes through (eval).
func (d *Dropout) Forward(x *tensor.Matrix) *tensor.Matrix {
	if !d.Training || d.P == 0 {
		d.lastMask = nil
		return x
	}
	keep := 1 - d.P
	scale := 1 / keep
	mask := tensor.Zeros(x.Rows, x.Cols)
	out := tensor.Zeros(x.Rows, x.Cols)
	for i, v := range x.Data {
		if d.rng.Float64() < keep {
			mask.Data[i] = scale
			out.Data[i] = v * scale
		}
	}
	d.lastMask = mask
	return out
}

// Backward applies the same mask to the upstream gradient.
func (d *Dropout) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if d.lastMask == nil {
		return grad
	}
	return grad.Hadamard(d.lastMask)
}

// Params returns nil; dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }
