package nn

import (
	"testing"

	"repro/internal/tensor"
)

func BenchmarkDenseForwardBackward(b *testing.B) {
	rng := tensor.NewRNG(1)
	layer := NewDense("fc", 64, 64, rng)
	x := tensor.RandN(rng, 256, 64, 1)
	grad := tensor.RandN(rng, 256, 64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layer.Forward(x)
		layer.Backward(grad)
	}
}

func BenchmarkDenseWithKFACCapture(b *testing.B) {
	rng := tensor.NewRNG(2)
	layer := NewDense("fc", 64, 64, rng)
	layer.CaptureKFAC = true
	x := tensor.RandN(rng, 256, 64, 1)
	grad := tensor.RandN(rng, 256, 64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layer.Forward(x)
		layer.Backward(grad)
	}
}

func BenchmarkLayerNorm(b *testing.B) {
	rng := tensor.NewRNG(3)
	ln := NewLayerNorm("ln", 64)
	x := tensor.RandN(rng, 256, 64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y := ln.Forward(x)
		ln.Backward(y)
	}
}

func BenchmarkGELU(b *testing.B) {
	rng := tensor.NewRNG(4)
	act := NewGELU()
	x := tensor.RandN(rng, 256, 256, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y := act.Forward(x)
		act.Backward(y)
	}
}

func BenchmarkAttentionForwardBackward(b *testing.B) {
	rng := tensor.NewRNG(5)
	attn := NewMultiHeadAttention("attn", 64, 4, rng)
	attn.SetShape(8, 32)
	x := tensor.RandN(rng, 8*32, 64, 1)
	grad := tensor.RandN(rng, 8*32, 64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attn.Forward(x)
		attn.Backward(grad)
	}
}

func BenchmarkTransformerBlock(b *testing.B) {
	rng := tensor.NewRNG(6)
	blk := NewTransformerBlock("block", 64, 128, 4, rng)
	blk.SetShape(8, 32)
	x := tensor.RandN(rng, 8*32, 64, 1)
	grad := tensor.RandN(rng, 8*32, 64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk.Forward(x)
		blk.Backward(grad)
	}
}

func BenchmarkCrossEntropy(b *testing.B) {
	rng := tensor.NewRNG(7)
	logits := tensor.RandN(rng, 512, 96, 1)
	targets := make([]int, 512)
	for i := range targets {
		if i%4 == 0 {
			targets[i] = rng.Intn(96)
		} else {
			targets[i] = IgnoreIndex
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CrossEntropy(logits, targets)
	}
}
