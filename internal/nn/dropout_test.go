package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestDropoutValidation(t *testing.T) {
	for _, p := range []float64{-0.1, 1.0, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for p=%g", p)
				}
			}()
			NewDropout(p, 1)
		}()
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	rng := tensor.NewRNG(1)
	d := NewDropout(0.5, 2)
	d.Training = false
	x := tensor.RandN(rng, 4, 4, 1)
	y := d.Forward(x)
	if !y.Equal(x) {
		t.Fatal("eval-mode dropout must be identity")
	}
	g := tensor.Full(4, 4, 1)
	if !d.Backward(g).Equal(g) {
		t.Fatal("eval-mode dropout backward must be identity")
	}
}

func TestDropoutRateAndScaling(t *testing.T) {
	d := NewDropout(0.3, 3)
	x := tensor.Full(100, 100, 1)
	y := d.Forward(x)
	var zeros int
	scale := 1 / 0.7
	for _, v := range y.Data {
		switch {
		case v == 0:
			zeros++
		case math.Abs(v-scale) > 1e-12:
			t.Fatalf("survivor value %g, want %g", v, scale)
		}
	}
	rate := float64(zeros) / 10000
	if math.Abs(rate-0.3) > 0.03 {
		t.Fatalf("drop rate %.3f, want ~0.3", rate)
	}
	// Expectation preserved: mean of output ≈ mean of input.
	if math.Abs(y.Mean()-1) > 0.05 {
		t.Fatalf("inverted dropout must preserve expectation, mean %g", y.Mean())
	}
}

func TestDropoutBackwardMatchesMask(t *testing.T) {
	d := NewDropout(0.5, 4)
	x := tensor.Full(10, 10, 2)
	y := d.Forward(x)
	g := tensor.Full(10, 10, 1)
	gx := d.Backward(g)
	for i := range y.Data {
		if (y.Data[i] == 0) != (gx.Data[i] == 0) {
			t.Fatal("backward mask must match forward mask")
		}
	}
}

func TestDropoutZeroProbability(t *testing.T) {
	rng := tensor.NewRNG(5)
	d := NewDropout(0, 6)
	x := tensor.RandN(rng, 3, 3, 1)
	if !d.Forward(x).Equal(x) {
		t.Fatal("p=0 dropout must be identity")
	}
}

func TestDropoutDeterminism(t *testing.T) {
	x := tensor.Full(8, 8, 1)
	a := NewDropout(0.5, 42).Forward(x)
	b := NewDropout(0.5, 42).Forward(x)
	if !a.Equal(b) {
		t.Fatal("same seed must produce the same mask")
	}
}

func TestCausalAttentionNoFutureLeak(t *testing.T) {
	// Changing a future token must not change past outputs.
	rng := tensor.NewRNG(7)
	const batch, seq, d, heads = 1, 6, 8, 2
	attn := NewMultiHeadAttention("attn", d, heads, rng)
	attn.Causal = true
	attn.SetShape(batch, seq)
	x := tensor.RandN(rng, seq, d, 1)
	y1 := attn.Forward(x).Clone()
	x2 := x.Clone()
	for j := 0; j < d; j++ {
		x2.Set(seq-1, j, rng.NormFloat64()) // perturb the last token
	}
	y2 := attn.Forward(x2)
	for i := 0; i < seq-1; i++ {
		for j := 0; j < d; j++ {
			if math.Abs(y1.At(i, j)-y2.At(i, j)) > 1e-12 {
				t.Fatalf("causal attention leaked future information at position %d", i)
			}
		}
	}
	// Non-causal attention, by contrast, must leak.
	attn.Causal = false
	y3 := attn.Forward(x).Clone()
	y4 := attn.Forward(x2)
	var changed bool
	for i := 0; i < seq-1 && !changed; i++ {
		for j := 0; j < d; j++ {
			if math.Abs(y3.At(i, j)-y4.At(i, j)) > 1e-12 {
				changed = true
				break
			}
		}
	}
	if !changed {
		t.Fatal("bidirectional attention should propagate future changes")
	}
}

func TestCausalAttentionGradients(t *testing.T) {
	rng := tensor.NewRNG(8)
	const batch, seq, d, heads = 2, 3, 8, 2
	attn := NewMultiHeadAttention("attn", d, heads, rng)
	attn.Causal = true
	attn.SetShape(batch, seq)
	x := tensor.RandN(rng, batch*seq, d, 1)
	run := func() float64 {
		loss, _ := scalarLoss(attn.Forward(x))
		return loss
	}
	var inGrad *tensor.Matrix
	backward := func() {
		y := attn.Forward(x)
		_, g := scalarLoss(y)
		inGrad = attn.Backward(g)
	}
	checkParamGradients(t, attn.Params(), run, backward, 1e-5)
	checkInputGradient(t, x, run, inGrad, 1e-5)
}

func TestCausalProbabilitiesZeroAboveDiagonal(t *testing.T) {
	rng := tensor.NewRNG(9)
	attn := NewMultiHeadAttention("attn", 8, 2, rng)
	attn.Causal = true
	attn.SetShape(1, 4)
	attn.Forward(tensor.RandN(rng, 4, 8, 1))
	for h := 0; h < 2; h++ {
		probs := attn.lastProbs[h]
		for i := 0; i < 4; i++ {
			var rowSum float64
			for j := 0; j < 4; j++ {
				if j > i && probs.At(i, j) != 0 {
					t.Fatalf("head %d: prob[%d][%d] = %g, want 0", h, i, j, probs.At(i, j))
				}
				rowSum += probs.At(i, j)
			}
			if math.Abs(rowSum-1) > 1e-12 {
				t.Fatalf("head %d row %d sums to %g", h, i, rowSum)
			}
		}
	}
}
