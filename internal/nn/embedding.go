package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Embedding maps integer token ids to d-dimensional vectors. The forward
// pass takes a slice of ids and returns an (len(ids)) x d matrix; gradients
// are scattered back into the table rows.
type Embedding struct {
	// Name labels the layer for parameter naming.
	Name string
	// Table is the vocab x d embedding matrix; GTable its gradient.
	Table, GTable *tensor.Matrix

	lastIDs []int
}

// NewEmbedding builds a vocab x d embedding table with N(0, 0.02²)
// initialization (BERT's initializer range).
func NewEmbedding(name string, vocab, d int, rng *tensor.RNG) *Embedding {
	return &Embedding{
		Name:   name,
		Table:  tensor.RandN(rng, vocab, d, 0.02),
		GTable: tensor.Zeros(vocab, d),
	}
}

// Lookup gathers the embedding rows for ids into a len(ids) x d matrix.
func (e *Embedding) Lookup(ids []int) *tensor.Matrix {
	out := tensor.Zeros(len(ids), e.Table.Cols)
	e.LookupInto(out, ids)
	return out
}

// LookupInto gathers the embedding rows for ids into dst (shape
// len(ids) x d, fully overwritten) without allocating.
func (e *Embedding) LookupInto(dst *tensor.Matrix, ids []int) {
	e.checkLookup(dst, ids)
	for i, id := range ids {
		copy(dst.Row(i), e.Table.Row(id))
	}
	e.lastIDs = ids
}

// LookupAddInto adds the embedding rows for ids onto dst's rows — the
// fused form of dst.AddInPlace(e.Lookup(ids)), used to sum token and
// position embeddings without a temporary.
func (e *Embedding) LookupAddInto(dst *tensor.Matrix, ids []int) {
	e.checkLookup(dst, ids)
	for i, id := range ids {
		drow := dst.Row(i)
		trow := e.Table.Row(id)
		for j, v := range trow {
			drow[j] += v
		}
	}
	e.lastIDs = ids
}

func (e *Embedding) checkLookup(dst *tensor.Matrix, ids []int) {
	if dst.Rows != len(ids) || dst.Cols != e.Table.Cols {
		panic(fmt.Sprintf("nn: Embedding %q dst shape %dx%d, want %dx%d",
			e.Name, dst.Rows, dst.Cols, len(ids), e.Table.Cols))
	}
	for _, id := range ids {
		if id < 0 || id >= e.Table.Rows {
			panic(fmt.Sprintf("nn: Embedding %q id %d out of range [0,%d)", e.Name, id, e.Table.Rows))
		}
	}
}

// BackwardIDs scatters grad rows back into the table gradient using the ids
// from the most recent Lookup.
func (e *Embedding) BackwardIDs(grad *tensor.Matrix) {
	if e.lastIDs == nil {
		panic(fmt.Sprintf("nn: Embedding %q BackwardIDs before Lookup", e.Name))
	}
	if grad.Rows != len(e.lastIDs) || grad.Cols != e.Table.Cols {
		panic(fmt.Sprintf("nn: Embedding %q grad shape %dx%d, want %dx%d",
			e.Name, grad.Rows, grad.Cols, len(e.lastIDs), e.Table.Cols))
	}
	for i, id := range e.lastIDs {
		grow := grad.Row(i)
		trow := e.GTable.Row(id)
		for j, v := range grow {
			trow[j] += v
		}
	}
}

// Params returns the embedding table parameter.
func (e *Embedding) Params() []*Param {
	return []*Param{{Name: e.Name + ".table", Value: e.Table, Grad: e.GTable}}
}
