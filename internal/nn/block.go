package nn

import (
	"repro/internal/tensor"
)

// TransformerBlock is one BERT-style encoder block: post-LN multi-head
// self-attention followed by a post-LN GELU feed-forward sublayer, both
// with residual connections:
//
//	h = LN1(x + Attn(x))
//	y = LN2(h + FFN(h)),   FFN(h) = W2 · gelu(W1 · h)
type TransformerBlock struct {
	// Name labels the block ("block0", ...).
	Name string
	// Attn is the self-attention sublayer.
	Attn *MultiHeadAttention
	// Norm1 and Norm2 are the two post-LN normalizations.
	Norm1, Norm2 *LayerNorm
	// FF1 and FF2 are the feed-forward projections; Act sits between them.
	FF1, FF2 *Dense
	Act      *GELU
}

// NewTransformerBlock builds a block with the given model and feed-forward
// dimensions.
func NewTransformerBlock(name string, d, dff, heads int, rng *tensor.RNG) *TransformerBlock {
	return &TransformerBlock{
		Name:  name,
		Attn:  NewMultiHeadAttention(name+".attn", d, heads, rng),
		Norm1: NewLayerNorm(name+".norm1", d),
		Norm2: NewLayerNorm(name+".norm2", d),
		FF1:   NewDense(name+".ffn.1", d, dff, rng),
		FF2:   NewDense(name+".ffn.2", dff, d, rng),
		Act:   NewGELU(),
	}
}

// SetShape forwards the (batch, seqLen) factorization to the attention
// sublayer.
func (b *TransformerBlock) SetShape(batch, seqLen int) {
	b.Attn.SetShape(batch, seqLen)
}

// Forward runs the block on a token matrix. Residual sums are folded into
// the sublayer output buffers in place, so the block allocates nothing in
// steady state; the returned matrix is owned by Norm2 and valid until the
// block's next Forward.
func (b *TransformerBlock) Forward(x *tensor.Matrix) *tensor.Matrix {
	attnOut := b.Attn.Forward(x)
	attnOut.AddInPlace(x) // residual: x + Attn(x)
	h := b.Norm1.Forward(attnOut)
	ff := b.FF2.Forward(b.Act.Forward(b.FF1.Forward(h)))
	ff.AddInPlace(h) // residual: h + FFN(h)
	return b.Norm2.Forward(ff)
}

// Backward propagates through both sublayers and their residuals, fusing
// the residual gradient sums into the sublayer gradient buffers in place.
// The returned matrix is owned by the attention sublayer and valid until
// the block's next Backward.
func (b *TransformerBlock) Backward(grad *tensor.Matrix) *tensor.Matrix {
	dSum2 := b.Norm2.Backward(grad)
	// Residual: y2 = h + FFN(h); dh gets both branches.
	dFF := b.FF1.Backward(b.Act.Backward(b.FF2.Backward(dSum2)))
	dFF.AddInPlace(dSum2)
	dSum1 := b.Norm1.Backward(dFF)
	dAttn := b.Attn.Backward(dSum1)
	dAttn.AddInPlace(dSum1)
	return dAttn
}

// Params returns every trainable parameter in the block.
func (b *TransformerBlock) Params() []*Param {
	var out []*Param
	out = append(out, b.Attn.Params()...)
	out = append(out, b.Norm1.Params()...)
	out = append(out, b.FF1.Params()...)
	out = append(out, b.FF2.Params()...)
	out = append(out, b.Norm2.Params()...)
	return out
}

// DenseLayers returns the six K-FAC-eligible fully-connected layers of the
// block, matching arch.KFACLayers order: attn.q, attn.k, attn.v, attn.out,
// ffn.1, ffn.2.
func (b *TransformerBlock) DenseLayers() []*Dense {
	out := b.Attn.DenseLayers()
	return append(out, b.FF1, b.FF2)
}
