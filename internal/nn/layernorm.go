package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// LayerNorm normalizes each row (token) of its input to zero mean and unit
// variance, then applies a learned per-feature gain and bias, as in BERT's
// post-LN blocks.
type LayerNorm struct {
	// Name labels the layer for parameter naming.
	Name string
	// Gain and Bias are 1 x d learned parameters.
	Gain, Bias *tensor.Matrix
	// GGain and GBias accumulate their gradients.
	GGain, GBias *tensor.Matrix
	// Eps is the variance floor.
	Eps float64

	lastNormed *tensor.Matrix // x-hat, N x d
	lastInvStd []float64      // per-row 1/sqrt(var+eps)

	// Retained output/gradient buffers (valid until the next call), so
	// the steady-state hot path allocates nothing.
	outBuf *tensor.Matrix
	dxBuf  *tensor.Matrix
}

// NewLayerNorm builds a LayerNorm over d features with gain 1 and bias 0.
func NewLayerNorm(name string, d int) *LayerNorm {
	return &LayerNorm{
		Name:  name,
		Gain:  tensor.Full(1, d, 1),
		Bias:  tensor.Zeros(1, d),
		GGain: tensor.Zeros(1, d),
		GBias: tensor.Zeros(1, d),
		Eps:   1e-5,
	}
}

// Forward normalizes each row and applies gain/bias.
func (l *LayerNorm) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != l.Gain.Cols {
		panic(fmt.Sprintf("nn: LayerNorm %q expects %d features, got %d", l.Name, l.Gain.Cols, x.Cols))
	}
	n, d := x.Rows, x.Cols
	if x == l.outBuf {
		l.outBuf = nil
	}
	y := tensor.Reuse(l.outBuf, n, d)
	l.outBuf = y
	l.lastNormed = tensor.Reuse(l.lastNormed, n, d)
	if len(l.lastInvStd) != n {
		l.lastInvStd = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		row := x.Row(i)
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean /= float64(d)
		var variance float64
		for _, v := range row {
			dv := v - mean
			variance += dv * dv
		}
		variance /= float64(d)
		invStd := 1 / math.Sqrt(variance+l.Eps)
		l.lastInvStd[i] = invStd
		nrow := l.lastNormed.Row(i)
		yrow := y.Row(i)
		for j, v := range row {
			xhat := (v - mean) * invStd
			nrow[j] = xhat
			yrow[j] = xhat*l.Gain.Data[j] + l.Bias.Data[j]
		}
	}
	return y
}

// Backward propagates through the normalization and accumulates gain/bias
// gradients.
func (l *LayerNorm) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if l.lastNormed == nil {
		panic(fmt.Sprintf("nn: LayerNorm %q Backward before Forward", l.Name))
	}
	n, d := grad.Rows, grad.Cols
	if grad == l.dxBuf {
		l.dxBuf = nil
	}
	out := tensor.Reuse(l.dxBuf, n, d)
	l.dxBuf = out
	df := float64(d)
	for i := 0; i < n; i++ {
		grow := grad.Row(i)
		nrow := l.lastNormed.Row(i)
		orow := out.Row(i)
		// Accumulate parameter gradients.
		for j := 0; j < d; j++ {
			l.GGain.Data[j] += grow[j] * nrow[j]
			l.GBias.Data[j] += grow[j]
		}
		// dxhat = grad * gain; then the standard LN backward:
		// dx = invStd/d * (d*dxhat - sum(dxhat) - xhat * sum(dxhat*xhat)).
		var sumDx, sumDxXhat float64
		for j := 0; j < d; j++ {
			dxhat := grow[j] * l.Gain.Data[j]
			sumDx += dxhat
			sumDxXhat += dxhat * nrow[j]
		}
		invStd := l.lastInvStd[i]
		for j := 0; j < d; j++ {
			dxhat := grow[j] * l.Gain.Data[j]
			orow[j] = invStd / df * (df*dxhat - sumDx - nrow[j]*sumDxXhat)
		}
	}
	return out
}

// Params returns the gain and bias parameters.
func (l *LayerNorm) Params() []*Param {
	return []*Param{
		{Name: l.Name + ".gain", Value: l.Gain, Grad: l.GGain},
		{Name: l.Name + ".bias", Value: l.Bias, Grad: l.GBias},
	}
}
