package nn

import (
	"testing"

	"repro/internal/tensor"
)

// The Dense hot path must not allocate in steady state: Forward/Backward
// write into retained buffers and the gradient accumulation is fused
// (TMatMulAddInto), so a micro-batch step costs zero heap churn once the
// buffers exist.
func TestDenseSteadyStateZeroAlloc(t *testing.T) {
	for _, capture := range []bool{false, true} {
		name := "plain"
		if capture {
			name = "kfac-capture"
		}
		t.Run(name, func(t *testing.T) {
			rng := tensor.NewRNG(1)
			layer := NewDense("fc", 64, 64, rng)
			layer.CaptureKFAC = capture
			x := tensor.RandN(rng, 256, 64, 1)
			grad := tensor.RandN(rng, 256, 64, 1)
			// Warm up the retained buffers.
			layer.Forward(x)
			layer.Backward(grad)
			avg := testing.AllocsPerRun(50, func() {
				layer.Forward(x)
				layer.Backward(grad)
			})
			if avg > 0.5 {
				t.Fatalf("Dense Forward+Backward allocates %.1f times per step in steady state, want 0", avg)
			}
		})
	}
}

// The same property under parallel kernels: chunk dispatch through the
// shared worker pool must not allocate either.
func TestDenseZeroAllocWithParallelKernels(t *testing.T) {
	defer tensor.SetParallelism(0)
	tensor.SetParallelism(4)
	rng := tensor.NewRNG(2)
	layer := NewDense("fc", 64, 64, rng)
	x := tensor.RandN(rng, 256, 64, 1)
	grad := tensor.RandN(rng, 256, 64, 1)
	layer.Forward(x)
	layer.Backward(grad)
	avg := testing.AllocsPerRun(50, func() {
		layer.Forward(x)
		layer.Backward(grad)
	})
	if avg > 0.5 {
		t.Fatalf("parallel Dense Forward+Backward allocates %.1f times per step, want 0", avg)
	}
}

// A full transformer block also runs allocation-free in steady state: the
// attention scratch, layer norms, GELU and residual sums all reuse
// retained buffers.
func TestTransformerBlockSteadyStateZeroAlloc(t *testing.T) {
	rng := tensor.NewRNG(3)
	blk := NewTransformerBlock("block", 64, 128, 4, rng)
	blk.SetShape(8, 32)
	x := tensor.RandN(rng, 8*32, 64, 1)
	grad := tensor.RandN(rng, 8*32, 64, 1)
	blk.Forward(x)
	blk.Backward(grad)
	avg := testing.AllocsPerRun(20, func() {
		blk.Forward(x)
		blk.Backward(grad)
	})
	if avg > 0.5 {
		t.Fatalf("TransformerBlock Forward+Backward allocates %.1f times per step in steady state, want 0", avg)
	}
}
