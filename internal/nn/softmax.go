package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// SoftmaxRows applies a numerically-stable softmax to each row of x,
// returning a new matrix.
func SoftmaxRows(x *tensor.Matrix) *tensor.Matrix {
	out := tensor.Zeros(x.Rows, x.Cols)
	SoftmaxRowsInto(out, x)
	return out
}

// SoftmaxRowsInto writes the row-wise softmax of x into dst (same shape,
// fully overwritten; dst may not alias x).
func SoftmaxRowsInto(dst, x *tensor.Matrix) {
	out := dst
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		orow := out.Row(i)
		mx := math.Inf(-1)
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - mx)
			orow[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range orow {
			orow[j] *= inv
		}
	}
}

// SoftmaxBackwardRows computes the gradient through a row-wise softmax:
// given probabilities p and upstream gradient dp, the input gradient is
// ds_j = p_j (dp_j - Σ_k dp_k p_k) per row.
func SoftmaxBackwardRows(probs, grad *tensor.Matrix) *tensor.Matrix {
	out := tensor.Zeros(grad.Rows, grad.Cols)
	SoftmaxBackwardRowsInto(out, probs, grad)
	return out
}

// SoftmaxBackwardRowsInto writes the softmax gradient into dst (same shape,
// fully overwritten; dst may alias grad but not probs).
func SoftmaxBackwardRowsInto(dst, probs, grad *tensor.Matrix) {
	out := dst
	for i := 0; i < grad.Rows; i++ {
		prow := probs.Row(i)
		grow := grad.Row(i)
		orow := out.Row(i)
		var dot float64
		for j := range prow {
			dot += prow[j] * grow[j]
		}
		for j := range prow {
			orow[j] = prow[j] * (grow[j] - dot)
		}
	}
}

// IgnoreIndex marks positions excluded from the loss (non-masked tokens in
// MLM, padding, etc.), mirroring PyTorch's ignore_index convention.
const IgnoreIndex = -1

// CrossEntropy computes the mean negative log-likelihood of targets under a
// row-wise softmax of logits, and the gradient of that mean loss with
// respect to the logits. Rows whose target is IgnoreIndex contribute
// nothing. The mean is taken over the contributing rows, as in BERT's MLM
// loss. It returns the loss, the logits gradient, and the number of rows
// that contributed.
func CrossEntropy(logits *tensor.Matrix, targets []int) (float64, *tensor.Matrix, int) {
	if logits.Rows != len(targets) {
		panic(fmt.Sprintf("nn: CrossEntropy got %d logit rows for %d targets", logits.Rows, len(targets)))
	}
	grad := tensor.Zeros(logits.Rows, logits.Cols)
	var count int
	for _, t := range targets {
		if t != IgnoreIndex {
			count++
		}
	}
	if count == 0 {
		return 0, grad, 0
	}
	var loss float64
	invCount := 1 / float64(count)
	for i, t := range targets {
		if t == IgnoreIndex {
			continue
		}
		if t < 0 || t >= logits.Cols {
			panic(fmt.Sprintf("nn: CrossEntropy target %d out of range [0,%d)", t, logits.Cols))
		}
		row := logits.Row(i)
		mx := math.Inf(-1)
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(v - mx)
		}
		logZ := mx + math.Log(sum)
		loss += logZ - row[t]
		grow := grad.Row(i)
		for j, v := range row {
			p := math.Exp(v - logZ)
			grow[j] = p * invCount
		}
		grow[t] -= invCount
	}
	return loss * invCount, grad, count
}
