package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Dense is a fully-connected layer computing Y = X W^T + b for token
// matrices X (N x din), with W of shape dout x din and bias b of length
// dout.
//
// When CaptureKFAC is set, Forward stores the input activations and
// Backward stores the raw output gradients; the kfac package consumes both
// through KFACStats to build the Kronecker factors A_l and B_l of §2.3.
type Dense struct {
	// Name labels the layer for parameter naming and K-FAC registration.
	Name string
	// W is the dout x din weight matrix; B the 1 x dout bias.
	W, B *tensor.Matrix
	// GW and GB accumulate gradients.
	GW, GB *tensor.Matrix
	// CaptureKFAC enables recording of activations and errors.
	CaptureKFAC bool

	lastInput      *tensor.Matrix // N x din, retained for backward + A_l
	lastOutputGrad *tensor.Matrix // N x dout, retained for B_l

	// Retained output/gradient buffers: in steady state (stable batch
	// shape) Forward and Backward allocate nothing. The returned matrices
	// are owned by the layer and valid only until its next
	// Forward/Backward — callers that need them longer must clone.
	outBuf *tensor.Matrix // Forward result, N x dout
	dxBuf  *tensor.Matrix // Backward result, N x din
	// capBuf holds the float64 capture of the output gradient; in float32
	// storage mode Backward fills capBuf32 instead (half the resident
	// bytes) and capBuf doubles as the widen-on-demand scratch of
	// KFACStats/CapturedOutputGrad. cap32 records which one the latest
	// Backward filled.
	capBuf   *tensor.Matrix
	capBuf32 *tensor.Matrix32
	cap32    bool
}

// NewDense builds a Dense layer with Xavier-initialized weights and zero
// biases.
func NewDense(name string, din, dout int, rng *tensor.RNG) *Dense {
	return &Dense{
		Name: name,
		W:    tensor.XavierInit(rng, dout, din),
		B:    tensor.Zeros(1, dout),
		GW:   tensor.Zeros(dout, din),
		GB:   tensor.Zeros(1, dout),
	}
}

// DIn returns the input dimensionality.
func (d *Dense) DIn() int { return d.W.Cols }

// DOut returns the output dimensionality.
func (d *Dense) DOut() int { return d.W.Rows }

// Forward computes Y = X W^T + b into the layer's retained output buffer
// (zero allocations in steady state) and caches X.
func (d *Dense) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != d.W.Cols {
		panic(fmt.Sprintf("nn: Dense %q expects %d input features, got %d", d.Name, d.W.Cols, x.Cols))
	}
	if x == d.outBuf {
		// Pathological self-feed; fall back to a fresh output.
		d.outBuf = nil
	}
	d.lastInput = x
	y := tensor.Reuse(d.outBuf, x.Rows, d.W.Rows) // N x dout
	d.outBuf = y
	tensor.MatMulTInto(y, x, d.W)
	bias := d.B.Data
	for i := 0; i < y.Rows; i++ {
		row := y.Row(i)
		for j, bv := range bias {
			row[j] += bv
		}
	}
	return y
}

// Backward accumulates dW += dY^T X (fused, no temporary) and
// db += colsum(dY), and returns dX = dY W in the layer's retained gradient
// buffer (zero allocations in steady state).
func (d *Dense) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if d.lastInput == nil {
		panic(fmt.Sprintf("nn: Dense %q Backward before Forward", d.Name))
	}
	if grad.Rows != d.lastInput.Rows || grad.Cols != d.W.Rows {
		panic(fmt.Sprintf("nn: Dense %q Backward got %dx%d grad, want %dx%d",
			d.Name, grad.Rows, grad.Cols, d.lastInput.Rows, d.W.Rows))
	}
	if d.CaptureKFAC {
		if tensor.F32() {
			d.capBuf32 = tensor.Reuse32(d.capBuf32, grad.Rows, grad.Cols)
			d.capBuf32.NarrowFrom(grad)
			d.cap32 = true
			d.lastOutputGrad = nil
		} else {
			d.capBuf = tensor.Reuse(d.capBuf, grad.Rows, grad.Cols)
			d.capBuf.CopyFrom(grad)
			d.cap32 = false
			d.lastOutputGrad = d.capBuf
		}
	}
	tensor.TMatMulAddInto(d.GW, grad, d.lastInput)
	gb := d.GB.Data
	for i := 0; i < grad.Rows; i++ {
		row := grad.Row(i)
		for j, v := range row {
			gb[j] += v
		}
	}
	if grad == d.dxBuf {
		d.dxBuf = nil
	}
	dx := tensor.Reuse(d.dxBuf, grad.Rows, d.W.Cols)
	d.dxBuf = dx
	tensor.MatMulInto(dx, grad, d.W)
	return dx
}

// Params returns the weight and bias parameters.
func (d *Dense) Params() []*Param {
	return []*Param{
		{Name: d.Name + ".weight", Value: d.W, Grad: d.GW},
		{Name: d.Name + ".bias", Value: d.B, Grad: d.GB},
	}
}

// KFACStats returns the cached activations (N x din) and raw output
// gradients (N x dout) from the most recent forward/backward pair. The
// boolean is false until both are available. The output gradients are the
// backprop values dL/dY; the kfac package rescales them into per-example
// errors e_l.
func (d *Dense) KFACStats() (acts, grads *tensor.Matrix, ok bool) {
	if !d.CaptureKFAC || d.lastInput == nil {
		return nil, nil, false
	}
	if d.cap32 {
		if d.capBuf32 == nil {
			return nil, nil, false
		}
		// Float32 storage mode: widen into the float64 scratch on demand.
		d.capBuf = tensor.Reuse(d.capBuf, d.capBuf32.Rows, d.capBuf32.Cols)
		d.capBuf32.WidenInto(d.capBuf)
		return d.lastInput, d.capBuf, true
	}
	if d.lastOutputGrad == nil {
		return nil, nil, false
	}
	return d.lastInput, d.lastOutputGrad, true
}

// CapturedInput returns the input activations cached by the most recent
// Forward (nil before any forward). Unlike KFACStats it does not require a
// backward to have run: the pipeline executor snapshots it right after a
// micro-batch's forward, which is exactly when the paper's rule 1 makes the
// A-factor curvature work of that micro-batch schedulable.
func (d *Dense) CapturedInput() *tensor.Matrix { return d.lastInput }

// CapturedOutputGrad returns the raw output gradients cached by the most
// recent Backward when CaptureKFAC is set (nil otherwise) — the B-factor
// statistics that become schedulable after the micro-batch's backward. In
// float32 storage mode the capture widens into the layer's float64 scratch
// on demand; snapshot consumers should prefer CapturedOutputGradSnap,
// which hands out the narrow buffer without conversion.
func (d *Dense) CapturedOutputGrad() *tensor.Matrix {
	if d.cap32 {
		if d.capBuf32 == nil {
			return nil
		}
		d.capBuf = tensor.Reuse(d.capBuf, d.capBuf32.Rows, d.capBuf32.Cols)
		d.capBuf32.WidenInto(d.capBuf)
		return d.capBuf
	}
	return d.lastOutputGrad
}

// CapturedOutputGradSnap returns the latest output-gradient capture as a
// precision-tagged Snap borrowing the layer's buffer (invalid Snap when
// nothing is captured). Like the matrix accessors, the underlying buffer
// is only valid until the layer's next Backward — clone to retain.
func (d *Dense) CapturedOutputGradSnap() tensor.Snap {
	if d.cap32 {
		if d.capBuf32 == nil {
			return tensor.Snap{}
		}
		return tensor.SnapOf32(d.capBuf32)
	}
	if d.lastOutputGrad == nil {
		return tensor.Snap{}
	}
	return tensor.SnapOf(d.lastOutputGrad)
}

// ClearCapture drops the cached K-FAC statistics (e.g. between curvature
// refreshes, to release memory — the Msave_err term in the paper's memory
// model exists precisely because these buffers are retained).
func (d *Dense) ClearCapture() {
	d.lastOutputGrad = nil
	d.cap32 = false
}
