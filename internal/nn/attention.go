package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// negInf is the masking value for causal attention scores; softmax maps it
// to exactly zero probability.
var negInf = math.Inf(-1)

// MultiHeadAttention implements the standard transformer self-attention
// sublayer: Q/K/V projections, per-head scaled dot-product attention, and
// an output projection. Inputs are token matrices of shape (B·S) x d; the
// module must be told the sequence length so it can respect sequence
// boundaries.
//
// The four projections are Dense layers, so K-FAC applies to them exactly
// as the paper prescribes (all fully-connected layers except the final
// classification head, §4).
type MultiHeadAttention struct {
	// Name labels the sublayer.
	Name string
	// Heads is the number of attention heads; DModel must divide evenly.
	Heads  int
	DModel int
	// Causal masks attention so position i attends only to positions
	// <= i, as in the decoder-only OPT models of Table 3.
	Causal bool
	// Q, K, V, Out are the four projection layers.
	Q, K, V, Out *Dense

	seqLen    int
	batch     int
	lastQ     *tensor.Matrix   // (B·S) x d
	lastK     *tensor.Matrix   // (B·S) x d
	lastV     *tensor.Matrix   // (B·S) x d
	lastProbs []*tensor.Matrix // per (batch, head): S x S attention probabilities

	// Retained scratch buffers so the steady-state hot path allocates
	// nothing: lastProbs entries are reused across calls, the rest are
	// transient within one Forward/Backward.
	scoreBuf            *tensor.Matrix // S x S raw scores
	concatBuf           *tensor.Matrix // (B·S) x d head concatenation
	dpBuf, dsBuf        *tensor.Matrix // S x S backward scratch
	dqBuf, dkBuf, dvBuf *tensor.Matrix // (B·S) x d projection gradients
}

// NewMultiHeadAttention builds the sublayer; d must be divisible by heads.
func NewMultiHeadAttention(name string, d, heads int, rng *tensor.RNG) *MultiHeadAttention {
	if heads <= 0 || d%heads != 0 {
		panic(fmt.Sprintf("nn: attention %q: d_model %d not divisible by %d heads", name, d, heads))
	}
	return &MultiHeadAttention{
		Name:   name,
		Heads:  heads,
		DModel: d,
		Q:      NewDense(name+".q", d, d, rng),
		K:      NewDense(name+".k", d, d, rng),
		V:      NewDense(name+".v", d, d, rng),
		Out:    NewDense(name+".out", d, d, rng),
	}
}

// SetShape tells the module the (batch, seqLen) factorization of upcoming
// token matrices. It must be called before Forward whenever the shape
// changes.
func (m *MultiHeadAttention) SetShape(batch, seqLen int) {
	m.batch = batch
	m.seqLen = seqLen
}

// Forward runs self-attention over each sequence independently.
func (m *MultiHeadAttention) Forward(x *tensor.Matrix) *tensor.Matrix {
	if m.batch == 0 || m.seqLen == 0 {
		panic(fmt.Sprintf("nn: attention %q Forward before SetShape", m.Name))
	}
	if x.Rows != m.batch*m.seqLen {
		panic(fmt.Sprintf("nn: attention %q got %d tokens, want %d*%d", m.Name, x.Rows, m.batch, m.seqLen))
	}
	q := m.Q.Forward(x)
	k := m.K.Forward(x)
	v := m.V.Forward(x)
	m.lastQ, m.lastK, m.lastV = q, k, v

	d := m.DModel
	dk := d / m.Heads
	scale := 1 / math.Sqrt(float64(dk))
	s := m.seqLen
	concat := tensor.Reuse(m.concatBuf, x.Rows, d)
	m.concatBuf = concat
	concat.Zero()
	if len(m.lastProbs) != m.batch*m.Heads {
		m.lastProbs = make([]*tensor.Matrix, m.batch*m.Heads)
	}
	// scores = Qh Kh^T * scale, S x S (future positions masked to -inf for
	// causal attention); one retained scratch matrix serves every head.
	scores := tensor.Reuse(m.scoreBuf, s, s)
	m.scoreBuf = scores

	for b := 0; b < m.batch; b++ {
		base := b * s
		for h := 0; h < m.Heads; h++ {
			off := h * dk
			for i := 0; i < s; i++ {
				qrow := q.Row(base + i)[off : off+dk]
				srow := scores.Row(i)
				for j := 0; j < s; j++ {
					if m.Causal && j > i {
						srow[j] = negInf
						continue
					}
					krow := k.Row(base + j)[off : off+dk]
					var dot float64
					for t := 0; t < dk; t++ {
						dot += qrow[t] * krow[t]
					}
					srow[j] = dot * scale
				}
			}
			probs := tensor.Reuse(m.lastProbs[b*m.Heads+h], s, s)
			m.lastProbs[b*m.Heads+h] = probs
			SoftmaxRowsInto(probs, scores)
			// Oh = probs Vh, written into the concat slice.
			for i := 0; i < s; i++ {
				prow := probs.Row(i)
				orow := concat.Row(base + i)[off : off+dk]
				for j := 0; j < s; j++ {
					p := prow[j]
					if p == 0 {
						continue
					}
					vrow := v.Row(base + j)[off : off+dk]
					for t := 0; t < dk; t++ {
						orow[t] += p * vrow[t]
					}
				}
			}
		}
	}
	return m.Out.Forward(concat)
}

// Backward propagates through the output projection, the per-head
// attention, and the Q/K/V projections.
func (m *MultiHeadAttention) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if m.lastProbs == nil {
		panic(fmt.Sprintf("nn: attention %q Backward before Forward", m.Name))
	}
	dConcat := m.Out.Backward(grad) // (B·S) x d

	d := m.DModel
	dk := d / m.Heads
	scale := 1 / math.Sqrt(float64(dk))
	s := m.seqLen
	dQ := tensor.Reuse(m.dqBuf, dConcat.Rows, d)
	m.dqBuf = dQ
	dQ.Zero()
	dK := tensor.Reuse(m.dkBuf, dConcat.Rows, d)
	m.dkBuf = dK
	dK.Zero()
	dV := tensor.Reuse(m.dvBuf, dConcat.Rows, d)
	m.dvBuf = dV
	dV.Zero()
	dP := tensor.Reuse(m.dpBuf, s, s)
	m.dpBuf = dP
	dScores := tensor.Reuse(m.dsBuf, s, s)
	m.dsBuf = dScores

	for b := 0; b < m.batch; b++ {
		base := b * s
		for h := 0; h < m.Heads; h++ {
			off := h * dk
			probs := m.lastProbs[b*m.Heads+h]
			// dP = dOh Vh^T ; dVh += P^T dOh.
			for i := 0; i < s; i++ {
				dorow := dConcat.Row(base + i)[off : off+dk]
				dprow := dP.Row(i)
				prow := probs.Row(i)
				for j := 0; j < s; j++ {
					vrow := m.lastV.Row(base + j)[off : off+dk]
					var dot float64
					for t := 0; t < dk; t++ {
						dot += dorow[t] * vrow[t]
					}
					dprow[j] = dot
					// dVh[j] += P[i][j] * dOh[i]
					p := prow[j]
					if p != 0 {
						dvrow := dV.Row(base + j)[off : off+dk]
						for t := 0; t < dk; t++ {
							dvrow[t] += p * dorow[t]
						}
					}
				}
			}
			// Softmax backward to get dScores.
			SoftmaxBackwardRowsInto(dScores, probs, dP)
			// dQh = dScores Kh * scale ; dKh = dScores^T Qh * scale.
			for i := 0; i < s; i++ {
				dsrow := dScores.Row(i)
				dqrow := dQ.Row(base + i)[off : off+dk]
				qrow := m.lastQ.Row(base + i)[off : off+dk]
				for j := 0; j < s; j++ {
					ds := dsrow[j] * scale
					if ds == 0 {
						continue
					}
					krow := m.lastK.Row(base + j)[off : off+dk]
					dkrow := dK.Row(base + j)[off : off+dk]
					for t := 0; t < dk; t++ {
						dqrow[t] += ds * krow[t]
						dkrow[t] += ds * qrow[t]
					}
				}
			}
		}
	}

	dx := m.Q.Backward(dQ)
	dx.AddInPlace(m.K.Backward(dK))
	dx.AddInPlace(m.V.Backward(dV))
	return dx
}

// Params returns the parameters of the four projections.
func (m *MultiHeadAttention) Params() []*Param {
	var out []*Param
	out = append(out, m.Q.Params()...)
	out = append(out, m.K.Params()...)
	out = append(out, m.V.Params()...)
	out = append(out, m.Out.Params()...)
	return out
}

// DenseLayers returns the K-FAC-eligible fully-connected layers.
func (m *MultiHeadAttention) DenseLayers() []*Dense {
	return []*Dense{m.Q, m.K, m.V, m.Out}
}
