// Package nn implements the neural-network substrate for the PipeFisher
// reproduction: fully-connected layers, layer normalization, GELU,
// multi-head self-attention, transformer encoder blocks, embeddings, and
// the masked-language-modeling loss — all with hand-written backward passes.
//
// Two design points matter for K-FAC (the paper's §2.3):
//
//   - Inputs are token matrices: a mini-batch of B sequences of length S is
//     an (B·S) x d matrix, so every fully-connected layer sees exactly the
//     per-example activations a_l the Kronecker factor A_l needs.
//   - Dense layers can capture their input activations and output error
//     signals during forward/backward; the kfac package turns those into
//     A_l = ⟨a a^T⟩ and B_l = ⟨e e^T⟩.
package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Param is one named trainable tensor with its gradient accumulator.
// Biases are represented as 1 x n matrices so optimizers handle a single
// type.
type Param struct {
	// Name identifies the parameter (e.g. "block0.attn.q.weight").
	Name string
	// Value is the current parameter value.
	Value *tensor.Matrix
	// Grad is the gradient accumulated by Backward calls since the last
	// ZeroGrad. It always has the same shape as Value.
	Grad *tensor.Matrix
}

// NumElements returns the parameter's element count.
func (p *Param) NumElements() int { return p.Value.Rows * p.Value.Cols }

// Module is a differentiable layer mapping token matrices to token matrices.
type Module interface {
	// Forward consumes an N x din input and returns the N x dout output,
	// caching whatever the backward pass needs.
	Forward(x *tensor.Matrix) *tensor.Matrix
	// Backward consumes dL/d(output) and returns dL/d(input), adding
	// parameter gradients into the Params' Grad fields.
	Backward(grad *tensor.Matrix) *tensor.Matrix
	// Params returns the module's trainable parameters (possibly empty).
	Params() []*Param
}

// ZeroGrads clears the gradient accumulators of all params.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.Grad.Zero()
	}
}

// CopyParams copies the parameter values of src into dst, matched by
// position. The lists must be congruent (same length, same shapes) — the
// case when both models were built from the same configuration. Gradients
// are not copied. This is the weight-broadcast primitive data-parallel
// replicas use to start each step from identical parameters.
func CopyParams(dst, src []*Param) error {
	if len(dst) != len(src) {
		return fmt.Errorf("nn: CopyParams length mismatch: %d vs %d params", len(dst), len(src))
	}
	for i, d := range dst {
		s := src[i]
		if d.Value.Rows != s.Value.Rows || d.Value.Cols != s.Value.Cols {
			return fmt.Errorf("nn: CopyParams shape mismatch at %q: %dx%d vs %dx%d",
				d.Name, d.Value.Rows, d.Value.Cols, s.Value.Rows, s.Value.Cols)
		}
		d.Value.CopyFrom(s.Value)
	}
	return nil
}

// CopyParamsResident copies src parameter values into the dst params that
// currently have storage, skipping dst params whose Value was detached
// (Data == nil) — the broadcast primitive for ZeRO-style sharded replicas,
// which keep only their owned shard resident and gather the rest on use.
func CopyParamsResident(dst, src []*Param) error {
	if len(dst) != len(src) {
		return fmt.Errorf("nn: CopyParamsResident length mismatch: %d vs %d params", len(dst), len(src))
	}
	for i, d := range dst {
		if d.Value.Data == nil {
			continue
		}
		s := src[i]
		if d.Value.Rows != s.Value.Rows || d.Value.Cols != s.Value.Cols {
			return fmt.Errorf("nn: CopyParamsResident shape mismatch at %q: %dx%d vs %dx%d",
				d.Name, d.Value.Rows, d.Value.Cols, s.Value.Rows, s.Value.Cols)
		}
		d.Value.CopyFrom(s.Value)
	}
	return nil
}

// NumParameters sums the element counts of params.
func NumParameters(params []*Param) int {
	var n int
	for _, p := range params {
		n += p.NumElements()
	}
	return n
}

// GradNorm returns the global L2 norm of all gradients in params.
func GradNorm(params []*Param) float64 {
	var s float64
	for _, p := range params {
		for _, v := range p.Grad.Data {
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// Sequential chains modules back to back.
type Sequential struct {
	Modules []Module
}

// NewSequential builds a Sequential from the given modules.
func NewSequential(modules ...Module) *Sequential {
	return &Sequential{Modules: modules}
}

// Forward applies every module in order.
func (s *Sequential) Forward(x *tensor.Matrix) *tensor.Matrix {
	for _, m := range s.Modules {
		x = m.Forward(x)
	}
	return x
}

// Backward applies every module's backward in reverse order.
func (s *Sequential) Backward(grad *tensor.Matrix) *tensor.Matrix {
	for i := len(s.Modules) - 1; i >= 0; i-- {
		grad = s.Modules[i].Backward(grad)
	}
	return grad
}

// Params returns the concatenated parameters of all modules.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, m := range s.Modules {
		out = append(out, m.Params()...)
	}
	return out
}
