package optim

import "fmt"

// Stateful is implemented by optimizers whose internal state (momenta,
// second moments, bias-correction step counters) can be flattened into a
// caller-owned buffer and restored exactly. The engine's round
// checkpoint/replay uses it: SaveState at a round commit, LoadState before
// replaying the round, and the optimizer resumes bit-identically.
//
// StateLen is constant for a given optimizer instance; SaveState and
// LoadState require a buffer of exactly that length. Restoring a buffer
// saved from a differently-shaped optimizer is undefined.
type Stateful interface {
	Optimizer
	// StateLen returns the flattened state length in float64 words.
	StateLen() int
	// SaveState copies the optimizer state into buf (len == StateLen()).
	SaveState(buf []float64)
	// LoadState restores the optimizer state from buf (len == StateLen()).
	LoadState(buf []float64)
}

func checkStateLen(name string, got, want int) {
	if got != want {
		panic(fmt.Sprintf("optim: %s state buffer has %d words, want %d", name, got, want))
	}
}

// flatLen sums the lengths of per-parameter slices.
func flatLen(slices [][]float64) int {
	n := 0
	for _, s := range slices {
		n += len(s)
	}
	return n
}

func saveFlat(buf []float64, slices [][]float64) []float64 {
	for _, s := range slices {
		copy(buf, s)
		buf = buf[len(s):]
	}
	return buf
}

func loadFlat(buf []float64, slices [][]float64) []float64 {
	for _, s := range slices {
		copy(s, buf)
		buf = buf[len(s):]
	}
	return buf
}

// StateLen implements Stateful.
func (s *SGD) StateLen() int { return flatLen(s.velocity) }

// SaveState implements Stateful.
func (s *SGD) SaveState(buf []float64) {
	checkStateLen("SGD", len(buf), s.StateLen())
	saveFlat(buf, s.velocity)
}

// LoadState implements Stateful.
func (s *SGD) LoadState(buf []float64) {
	checkStateLen("SGD", len(buf), s.StateLen())
	loadFlat(buf, s.velocity)
}

// StateLen implements Stateful. The first word holds the bias-correction
// step counter.
func (a *Adam) StateLen() int { return 1 + flatLen(a.m) + flatLen(a.v) }

// SaveState implements Stateful.
func (a *Adam) SaveState(buf []float64) {
	checkStateLen("Adam", len(buf), a.StateLen())
	buf[0] = float64(a.step)
	buf = saveFlat(buf[1:], a.m)
	saveFlat(buf, a.v)
}

// LoadState implements Stateful.
func (a *Adam) LoadState(buf []float64) {
	checkStateLen("Adam", len(buf), a.StateLen())
	a.step = int(buf[0])
	buf = loadFlat(buf[1:], a.m)
	loadFlat(buf, a.v)
}

// StateLen implements Stateful. The first word holds the bias-correction
// step counter.
func (l *LAMB) StateLen() int { return 1 + flatLen(l.m) + flatLen(l.v) }

// SaveState implements Stateful.
func (l *LAMB) SaveState(buf []float64) {
	checkStateLen("LAMB", len(buf), l.StateLen())
	buf[0] = float64(l.step)
	buf = saveFlat(buf[1:], l.m)
	saveFlat(buf, l.v)
}

// LoadState implements Stateful.
func (l *LAMB) LoadState(buf []float64) {
	checkStateLen("LAMB", len(buf), l.StateLen())
	l.step = int(buf[0])
	buf = loadFlat(buf[1:], l.m)
	loadFlat(buf, l.v)
}
