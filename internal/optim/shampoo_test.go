package optim

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func matrixQuadratic(rows, cols int, start float64) []*nn.Param {
	return []*nn.Param{{
		Name:  "w",
		Value: tensor.Full(rows, cols, start),
		Grad:  tensor.Zeros(rows, cols),
	}}
}

func TestShampooConvergesOnMatrixQuadratic(t *testing.T) {
	params := matrixQuadratic(4, 4, 1)
	opt := NewShampoo(params)
	for i := 0; i < 200; i++ {
		refreshQuadraticGrad(params)
		opt.Step(0.05)
	}
	if norm := params[0].Value.FrobeniusNorm(); norm > 0.05 {
		t.Fatalf("Shampoo failed to shrink quadratic: ||w|| = %g", norm)
	}
}

func TestShampooVectorFallback(t *testing.T) {
	// 1 x n parameters (biases) take the AdaGrad path and still converge.
	params := quadraticParams(6, 1)
	opt := NewShampoo(params)
	for i := 0; i < 300; i++ {
		refreshQuadraticGrad(params)
		opt.Step(0.05)
	}
	if norm := params[0].Value.FrobeniusNorm(); norm > 0.1 {
		t.Fatalf("AdaGrad fallback failed: ||w|| = %g", norm)
	}
}

func TestShampooPreconditionsIllConditionedQuadratic(t *testing.T) {
	// Loss 0.5 * sum_ij c_j w_ij² with condition number 10_000 across
	// columns. First-order SGD crawls on the flat directions at any
	// stable LR; Shampoo's R statistic equalizes them.
	const rows, cols = 3, 4
	scales := []float64{1, 0.01, 1e-3, 1e-4}
	mkGrad := func(p *nn.Param) {
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				p.Grad.Set(i, j, scales[j]*p.Value.At(i, j))
			}
		}
	}
	run := func(opt Optimizer, p *nn.Param, lr float64, steps int) float64 {
		for s := 0; s < steps; s++ {
			mkGrad(p)
			opt.Step(lr)
		}
		// Error in the flattest direction.
		var worst float64
		for i := 0; i < rows; i++ {
			if a := math.Abs(p.Value.At(i, cols-1)); a > worst {
				worst = a
			}
		}
		return worst
	}
	sgdParams := matrixQuadratic(rows, cols, 1)
	shampooParams := matrixQuadratic(rows, cols, 1)
	sgdErr := run(NewSGD(sgdParams, 0, 0), sgdParams[0], 1.0, 300)
	shErr := run(NewShampoo(shampooParams), shampooParams[0], 0.05, 300)
	if shErr >= sgdErr {
		t.Fatalf("Shampoo (%g) should beat SGD (%g) on the flat direction", shErr, sgdErr)
	}
}

func TestShampooStaleRootsStillWork(t *testing.T) {
	// Between refreshes the cached roots precondition fresh gradients
	// (the PipeFisher staleness pattern). With UpdateFreq larger than the
	// step count, only the first step's roots are ever used.
	params := matrixQuadratic(4, 4, 1)
	opt := NewShampoo(params)
	opt.UpdateFreq = 1000
	for i := 0; i < 300; i++ {
		refreshQuadraticGrad(params)
		opt.Step(0.01)
	}
	if params[0].Value.HasNaN() {
		t.Fatal("stale-root updates produced NaN")
	}
	if norm := params[0].Value.FrobeniusNorm(); norm > 0.5 {
		t.Fatalf("stale-root Shampoo made no progress: ||w|| = %g", norm)
	}
}

func TestShampooParams(t *testing.T) {
	params := matrixQuadratic(2, 2, 1)
	if got := NewShampoo(params).Params(); len(got) != 1 {
		t.Fatalf("Params() length %d", len(got))
	}
}
