// Package optim provides the optimizers and learning-rate schedules used in
// the paper's evaluation: SGD (with momentum), Adam, LAMB in NVIDIA's
// NVLAMB variant (the paper's baseline, §4), and the warmup + polynomial
// decay schedule of Appendix B.2 (Figure 8). The K-FAC "optimizer" of the
// paper is K-FAC preconditioning (package kfac) composed with one of these
// base optimizers.
package optim

import (
	"fmt"
	"math"

	"repro/internal/nn"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update with the given learning rate.
	Step(lr float64)
	// Params returns the parameters the optimizer manages.
	Params() []*nn.Param
}

// SGD is stochastic gradient descent with optional momentum and decoupled
// weight decay.
type SGD struct {
	params   []*nn.Param
	Momentum float64
	// WeightDecay is the decoupled L2 coefficient applied to weights.
	WeightDecay float64

	velocity [][]float64
}

// NewSGD builds an SGD optimizer over params.
func NewSGD(params []*nn.Param, momentum, weightDecay float64) *SGD {
	s := &SGD{params: params, Momentum: momentum, WeightDecay: weightDecay}
	s.velocity = make([][]float64, len(params))
	for i, p := range params {
		s.velocity[i] = make([]float64, len(p.Value.Data))
	}
	return s
}

// Step applies w -= lr * (v) with v = momentum*v + grad + wd*w.
func (s *SGD) Step(lr float64) {
	for i, p := range s.params {
		v := s.velocity[i]
		for j := range p.Value.Data {
			g := p.Grad.Data[j] + s.WeightDecay*p.Value.Data[j]
			v[j] = s.Momentum*v[j] + g
			p.Value.Data[j] -= lr * v[j]
		}
	}
}

// Params returns the managed parameters.
func (s *SGD) Params() []*nn.Param { return s.params }

// Adam implements Adam with bias correction and decoupled weight decay
// (AdamW-style when WeightDecay > 0).
type Adam struct {
	params      []*nn.Param
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	step int
	m    [][]float64
	v    [][]float64
}

// NewAdam builds an Adam optimizer with the usual defaults
// (β1=0.9, β2=0.999, eps=1e-8).
func NewAdam(params []*nn.Param, weightDecay float64) *Adam {
	a := &Adam{params: params, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: weightDecay}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for i, p := range params {
		a.m[i] = make([]float64, len(p.Value.Data))
		a.v[i] = make([]float64, len(p.Value.Data))
	}
	return a
}

// Step applies one Adam update.
func (a *Adam) Step(lr float64) {
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		for j := range p.Value.Data {
			g := p.Grad.Data[j]
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			mHat := m[j] / bc1
			vHat := v[j] / bc2
			upd := mHat/(math.Sqrt(vHat)+a.Eps) + a.WeightDecay*p.Value.Data[j]
			p.Value.Data[j] -= lr * upd
		}
	}
}

// Params returns the managed parameters.
func (a *Adam) Params() []*nn.Param { return a.params }

// LAMB implements the layer-wise adaptive large-batch optimizer of You et
// al. (2020) in NVIDIA's NVLAMB flavor, the paper's baseline: global
// gradient pre-normalization, Adam statistics, then a per-parameter trust
// ratio ||w|| / ||update|| scaling.
type LAMB struct {
	params      []*nn.Param
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64
	// MaxTrustRatio clips the trust ratio (NVLAMB uses 10).
	MaxTrustRatio float64
	// PreNormalize divides all gradients by the global gradient norm when
	// it exceeds 1 (the "NV" part of NVLAMB).
	PreNormalize bool

	step int
	m    [][]float64
	v    [][]float64
}

// NewLAMB builds an NVLAMB optimizer with the paper's hyperparameters
// (β1=0.9, β2=0.999, eps=1e-6, trust ratio clip 10, pre-normalization on).
func NewLAMB(params []*nn.Param, weightDecay float64) *LAMB {
	l := &LAMB{
		params: params, Beta1: 0.9, Beta2: 0.999, Eps: 1e-6,
		WeightDecay: weightDecay, MaxTrustRatio: 10, PreNormalize: true,
	}
	l.m = make([][]float64, len(params))
	l.v = make([][]float64, len(params))
	for i, p := range params {
		l.m[i] = make([]float64, len(p.Value.Data))
		l.v[i] = make([]float64, len(p.Value.Data))
	}
	return l
}

// Step applies one NVLAMB update.
func (l *LAMB) Step(lr float64) {
	l.step++
	preScale := 1.0
	if l.PreNormalize {
		if gn := nn.GradNorm(l.params); gn > 1 {
			preScale = 1 / gn
		}
	}
	bc1 := 1 - math.Pow(l.Beta1, float64(l.step))
	bc2 := 1 - math.Pow(l.Beta2, float64(l.step))
	for i, p := range l.params {
		m, v := l.m[i], l.v[i]
		var wNorm, uNorm float64
		update := make([]float64, len(p.Value.Data))
		for j := range p.Value.Data {
			g := p.Grad.Data[j] * preScale
			m[j] = l.Beta1*m[j] + (1-l.Beta1)*g
			v[j] = l.Beta2*v[j] + (1-l.Beta2)*g*g
			mHat := m[j] / bc1
			vHat := v[j] / bc2
			u := mHat/(math.Sqrt(vHat)+l.Eps) + l.WeightDecay*p.Value.Data[j]
			update[j] = u
			wNorm += p.Value.Data[j] * p.Value.Data[j]
			uNorm += u * u
		}
		wNorm = math.Sqrt(wNorm)
		uNorm = math.Sqrt(uNorm)
		trust := 1.0
		if wNorm > 0 && uNorm > 0 {
			trust = wNorm / uNorm
			if trust > l.MaxTrustRatio {
				trust = l.MaxTrustRatio
			}
		}
		scale := lr * trust
		for j := range p.Value.Data {
			p.Value.Data[j] -= scale * update[j]
		}
	}
}

// Params returns the managed parameters.
func (l *LAMB) Params() []*nn.Param { return l.params }

// Schedule maps a step index to a learning rate.
type Schedule interface {
	// LR returns the learning rate to use at the given 0-based step.
	LR(step int) float64
}

// PolyDecaySchedule is the NVLAMB schedule of Appendix B.2: linear warmup
// for WarmupSteps, then polynomial decay
// η_t = BaseLR · (1 − t/TotalSteps)^Power. The paper uses Power 0.5,
// TotalSteps 7038, warmup 2000 for NVLAMB and 600 for K-FAC (Figure 8).
type PolyDecaySchedule struct {
	BaseLR      float64
	WarmupSteps int
	TotalSteps  int
	Power       float64
}

// NewNVLAMBSchedule returns the paper's BERT-Base Phase-1 NVLAMB schedule.
func NewNVLAMBSchedule() PolyDecaySchedule {
	return PolyDecaySchedule{BaseLR: 6e-3, WarmupSteps: 2000, TotalSteps: 7038, Power: 0.5}
}

// NewKFACSchedule returns the paper's K-FAC schedule: identical but with
// warmup shortened to 600 steps, "resulting in larger learning rates than
// NVLAMB until the 2,000th step" (§4).
func NewKFACSchedule() PolyDecaySchedule {
	return PolyDecaySchedule{BaseLR: 6e-3, WarmupSteps: 600, TotalSteps: 7038, Power: 0.5}
}

// LR implements Schedule.
func (s PolyDecaySchedule) LR(step int) float64 {
	if step < 0 {
		panic(fmt.Sprintf("optim: negative step %d", step))
	}
	if s.WarmupSteps > 0 && step < s.WarmupSteps {
		return s.BaseLR * float64(step+1) / float64(s.WarmupSteps)
	}
	if step >= s.TotalSteps {
		return 0
	}
	frac := 1 - float64(step)/float64(s.TotalSteps)
	return s.BaseLR * math.Pow(frac, s.Power)
}

// ConstantSchedule always returns the same learning rate.
type ConstantSchedule struct{ Value float64 }

// LR implements Schedule.
func (c ConstantSchedule) LR(int) float64 { return c.Value }
