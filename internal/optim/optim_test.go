package optim

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// quadraticProblem sets up params at value start with gradient = value (the
// gradient of 0.5||w||²), so optimizers should shrink the weights.
func quadraticParams(n int, start float64) []*nn.Param {
	v := tensor.Full(1, n, start)
	g := tensor.Zeros(1, n)
	return []*nn.Param{{Name: "w", Value: v, Grad: g}}
}

func refreshQuadraticGrad(params []*nn.Param) {
	for _, p := range params {
		for i := range p.Grad.Data {
			p.Grad.Data[i] = p.Value.Data[i]
		}
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	params := quadraticParams(4, 1)
	opt := NewSGD(params, 0, 0)
	for i := 0; i < 100; i++ {
		refreshQuadraticGrad(params)
		opt.Step(0.1)
	}
	if norm := params[0].Value.FrobeniusNorm(); norm > 1e-3 {
		t.Fatalf("SGD failed to shrink quadratic: ||w|| = %g", norm)
	}
}

func TestSGDMomentumAcceleratesFirstSteps(t *testing.T) {
	plain := quadraticParams(1, 1)
	mom := quadraticParams(1, 1)
	optP := NewSGD(plain, 0, 0)
	optM := NewSGD(mom, 0.9, 0)
	for i := 0; i < 5; i++ {
		refreshQuadraticGrad(plain)
		optP.Step(0.05)
		refreshQuadraticGrad(mom)
		optM.Step(0.05)
	}
	if mom[0].Value.Data[0] >= plain[0].Value.Data[0] {
		t.Fatal("momentum should make more early progress on a smooth quadratic")
	}
}

func TestSGDWeightDecayShrinksWithoutGradient(t *testing.T) {
	params := quadraticParams(1, 1)
	opt := NewSGD(params, 0, 0.1)
	// Zero gradient: only decay acts.
	opt.Step(1)
	if got := params[0].Value.Data[0]; math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("weight decay step: got %g, want 0.9", got)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	params := quadraticParams(4, 1)
	opt := NewAdam(params, 0)
	for i := 0; i < 300; i++ {
		refreshQuadraticGrad(params)
		opt.Step(0.05)
	}
	if norm := params[0].Value.FrobeniusNorm(); norm > 1e-2 {
		t.Fatalf("Adam failed to shrink quadratic: ||w|| = %g", norm)
	}
}

func TestAdamFirstStepSize(t *testing.T) {
	// With bias correction, the first Adam step is ≈ lr * sign(g).
	params := quadraticParams(1, 1)
	opt := NewAdam(params, 0)
	refreshQuadraticGrad(params)
	opt.Step(0.01)
	got := 1 - params[0].Value.Data[0]
	if math.Abs(got-0.01) > 1e-6 {
		t.Fatalf("first Adam step %g, want ~0.01", got)
	}
}

func TestLAMBConvergesOnQuadratic(t *testing.T) {
	params := quadraticParams(4, 1)
	opt := NewLAMB(params, 0)
	for i := 0; i < 300; i++ {
		refreshQuadraticGrad(params)
		opt.Step(0.01)
	}
	if norm := params[0].Value.FrobeniusNorm(); norm > 0.1 {
		t.Fatalf("LAMB failed to shrink quadratic: ||w|| = %g", norm)
	}
}

func TestLAMBTrustRatioScaling(t *testing.T) {
	// Two identical gradients on parameters of very different magnitude:
	// the larger parameter must receive a proportionally larger update.
	small := []*nn.Param{{Name: "s", Value: tensor.Full(1, 2, 0.01), Grad: tensor.Full(1, 2, 1)}}
	large := []*nn.Param{{Name: "l", Value: tensor.Full(1, 2, 1.0), Grad: tensor.Full(1, 2, 1)}}
	optS := NewLAMB(small, 0)
	optS.PreNormalize = false
	optL := NewLAMB(large, 0)
	optL.PreNormalize = false
	optS.Step(0.1)
	optL.Step(0.1)
	dS := 0.01 - small[0].Value.Data[0]
	dL := 1.0 - large[0].Value.Data[0]
	if dL <= dS {
		t.Fatalf("LAMB trust ratio should scale updates with weight norm: dS=%g dL=%g", dS, dL)
	}
	ratio := dL / dS
	if math.Abs(ratio-100) > 1 {
		t.Fatalf("update ratio %g, want ~100 (weight norm ratio)", ratio)
	}
}

func TestLAMBPreNormalization(t *testing.T) {
	// A gradient with huge norm must be normalized before the Adam stats,
	// making the step insensitive to gradient scale.
	p1 := []*nn.Param{{Name: "a", Value: tensor.Full(1, 2, 1), Grad: tensor.Full(1, 2, 1e6)}}
	p2 := []*nn.Param{{Name: "b", Value: tensor.Full(1, 2, 1), Grad: tensor.Full(1, 2, 1e3)}}
	o1 := NewLAMB(p1, 0)
	o2 := NewLAMB(p2, 0)
	o1.Step(0.1)
	o2.Step(0.1)
	if math.Abs(p1[0].Value.Data[0]-p2[0].Value.Data[0]) > 1e-9 {
		t.Fatal("pre-normalized LAMB steps must match for same gradient direction")
	}
}

func TestLAMBMaxTrustRatioClip(t *testing.T) {
	// Huge weight norm with tiny update norm: trust ratio must clip at 10.
	params := []*nn.Param{{Name: "w", Value: tensor.Full(1, 4, 1e8), Grad: tensor.Full(1, 4, 1e-8)}}
	opt := NewLAMB(params, 0)
	opt.PreNormalize = false
	before := params[0].Value.Data[0]
	opt.Step(1e-3)
	delta := before - params[0].Value.Data[0]
	// Update direction magnitude is ~1 per coordinate after Adam
	// normalization, so delta ≈ lr * trust <= 1e-3 * 10.
	if delta > 1e-2+1e-9 {
		t.Fatalf("trust ratio not clipped: delta %g", delta)
	}
}

func TestPolyDecayScheduleShape(t *testing.T) {
	s := NewNVLAMBSchedule()
	// Warmup is linear and ends at base LR.
	if got := s.LR(0); got <= 0 || got > s.BaseLR/100 {
		t.Fatalf("LR(0) = %g, want small positive", got)
	}
	if got := s.LR(s.WarmupSteps - 1); math.Abs(got-s.BaseLR) > 1e-12 {
		t.Fatalf("end of warmup LR = %g, want %g", got, s.BaseLR)
	}
	// Decay is monotone decreasing after warmup.
	prev := s.LR(s.WarmupSteps)
	for _, step := range []int{3000, 5000, 7000} {
		cur := s.LR(step)
		if cur >= prev {
			t.Fatalf("LR must decay: LR(%d)=%g >= previous %g", step, cur, prev)
		}
		prev = cur
	}
	if s.LR(s.TotalSteps) != 0 {
		t.Fatal("LR at TotalSteps must be 0")
	}
	if s.LR(s.TotalSteps+100) != 0 {
		t.Fatal("LR beyond TotalSteps must be 0")
	}
}

func TestKFACScheduleIsMoreAggressiveEarly(t *testing.T) {
	// The K-FAC schedule reaches larger LRs before step 2000 (§4, Fig 8).
	nv := NewNVLAMBSchedule()
	kf := NewKFACSchedule()
	// (The curves cross around step ~1750 where NVLAMB's warmup nearly
	// completes while K-FAC's poly decay has begun; Figure 8 shows the
	// same near-touch.)
	for _, step := range []int{100, 500, 1000, 1500} {
		if kf.LR(step) <= nv.LR(step) {
			t.Fatalf("K-FAC LR must exceed NVLAMB LR at step %d: %g vs %g",
				step, kf.LR(step), nv.LR(step))
		}
	}
	// And they coincide afterwards.
	for _, step := range []int{2000, 4000, 7000} {
		if math.Abs(kf.LR(step)-nv.LR(step)) > 1e-15 {
			t.Fatalf("schedules must coincide after warmup at step %d", step)
		}
	}
}

func TestScheduleNegativeStepPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative step")
		}
	}()
	NewNVLAMBSchedule().LR(-1)
}

func TestConstantSchedule(t *testing.T) {
	c := ConstantSchedule{Value: 0.123}
	if c.LR(0) != 0.123 || c.LR(10000) != 0.123 {
		t.Fatal("ConstantSchedule must be constant")
	}
}

func TestOptimizersExposeParams(t *testing.T) {
	params := quadraticParams(3, 1)
	for _, opt := range []Optimizer{NewSGD(params, 0.9, 0.01), NewAdam(params, 0.01), NewLAMB(params, 0.01)} {
		if len(opt.Params()) != 1 {
			t.Fatalf("%T.Params() wrong length", opt)
		}
	}
}
