package optim

import (
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Shampoo implements the preconditioned tensor optimizer of Gupta, Koren &
// Singer (2018), the paper's §5 candidate for bubble filling beyond K-FAC:
// for each matrix parameter G (dout x din) it accumulates Kronecker-
// factored second-moment statistics
//
//	L += G G^T (dout x dout),  R += G^T G (din x din)
//
// and preconditions updates as L^{-1/4} G R^{-1/4}. The matrix roots come
// from eigendecompositions (tensor.SymEigen), the work whose bubble
// placement AssignShampoo models. Non-matrix parameters (biases, gains)
// fall back to AdaGrad.
type Shampoo struct {
	params []*nn.Param
	// Epsilon regularizes the statistics and clamps eigenvalues.
	Epsilon float64
	// UpdateFreq recomputes the matrix roots every UpdateFreq steps
	// (between refreshes the stale roots precondition fresh gradients,
	// exactly like PipeFisher's stale inverses).
	UpdateFreq int
	// Momentum applies heavy-ball momentum to the preconditioned update.
	Momentum float64

	step     int
	l, r     []*tensor.Matrix // per-param statistics (nil for vectors)
	lRoot    []*tensor.Matrix // cached inverse fourth roots
	rRoot    []*tensor.Matrix
	adagrad  [][]float64 // fallback accumulator for vector params
	velocity [][]float64
}

// NewShampoo builds a Shampoo optimizer with the usual defaults
// (eps 1e-6, refresh every 20 steps, momentum 0.9).
func NewShampoo(params []*nn.Param) *Shampoo {
	s := &Shampoo{
		params: params, Epsilon: 1e-6, UpdateFreq: 20, Momentum: 0.9,
		l:     make([]*tensor.Matrix, len(params)),
		r:     make([]*tensor.Matrix, len(params)),
		lRoot: make([]*tensor.Matrix, len(params)),
		rRoot: make([]*tensor.Matrix, len(params)),
	}
	s.adagrad = make([][]float64, len(params))
	s.velocity = make([][]float64, len(params))
	for i, p := range params {
		s.velocity[i] = make([]float64, len(p.Value.Data))
		if isMatrixParam(p) {
			s.l[i] = tensor.Zeros(p.Value.Rows, p.Value.Rows)
			s.r[i] = tensor.Zeros(p.Value.Cols, p.Value.Cols)
		} else {
			s.adagrad[i] = make([]float64, len(p.Value.Data))
		}
	}
	return s
}

// isMatrixParam reports whether the parameter is a genuine matrix (both
// dimensions > 1), i.e. eligible for Kronecker-factored preconditioning.
func isMatrixParam(p *nn.Param) bool {
	return p.Value.Rows > 1 && p.Value.Cols > 1
}

// Step applies one Shampoo update.
func (s *Shampoo) Step(lr float64) {
	refresh := s.step%s.UpdateFreq == 0
	s.step++
	for i, p := range s.params {
		v := s.velocity[i]
		if s.l[i] == nil {
			// AdaGrad fallback for vector parameters.
			acc := s.adagrad[i]
			for j := range p.Value.Data {
				g := p.Grad.Data[j]
				acc[j] += g * g
				u := g / (math.Sqrt(acc[j]) + s.Epsilon)
				v[j] = s.Momentum*v[j] + u
				p.Value.Data[j] -= lr * v[j]
			}
			continue
		}
		g := p.Grad
		// Accumulate statistics (the products are pooled temporaries).
		lg := tensor.MatMulT(g, g)
		s.l[i].AddInPlace(lg)
		tensor.Put(lg)
		rg := tensor.TMatMul(g, g)
		s.r[i].AddInPlace(rg)
		tensor.Put(rg)
		if refresh || s.lRoot[i] == nil {
			lStat := s.l[i].AddDiagonal(s.Epsilon)
			rStat := s.r[i].AddDiagonal(s.Epsilon)
			if lr4, err := tensor.MatrixPower(lStat, -0.25, s.Epsilon); err == nil {
				s.lRoot[i] = lr4
			}
			if rr4, err := tensor.MatrixPower(rStat, -0.25, s.Epsilon); err == nil {
				s.rRoot[i] = rr4
			}
		}
		tmp := tensor.MatMul(s.lRoot[i], g)
		pre := tensor.MatMul(tmp, s.rRoot[i])
		tensor.Put(tmp)
		// Graft the step size to the gradient norm so the effective LR is
		// comparable to SGD's (standard Shampoo practice).
		gn := g.FrobeniusNorm()
		pn := pre.FrobeniusNorm()
		scale := 1.0
		if pn > 0 {
			scale = gn / pn
		}
		for j := range p.Value.Data {
			u := pre.Data[j] * scale
			v[j] = s.Momentum*v[j] + u
			p.Value.Data[j] -= lr * v[j]
		}
		tensor.Put(pre)
	}
}

// Params returns the managed parameters.
func (s *Shampoo) Params() []*nn.Param { return s.params }
