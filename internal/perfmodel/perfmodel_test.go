package perfmodel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/hardware"
)

func eval(t *testing.T, in Input) *Model {
	t.Helper()
	m, err := Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCriticalPathCoefficients(t *testing.T) {
	// Table 1: with N = D, Cf = Cb = 2D−1 for GPipe/1F1B and Cf = D,
	// Cb = 2D−2 for Chimera.
	for _, d := range []int{4, 8, 16} {
		g := eval(t, Input{Arch: arch.BERTBase, GPU: hardware.P100, Method: GPipe1F1B, D: d, NMicro: d, BMicro: 8})
		if g.Cf != 2*d-1 || g.Cb != 2*d-1 {
			t.Fatalf("D=%d gpipe: Cf=%d Cb=%d, want %d", d, g.Cf, g.Cb, 2*d-1)
		}
		c := eval(t, Input{Arch: arch.BERTBase, GPU: hardware.P100, Method: Chimera, D: d, NMicro: d, BMicro: 8})
		if c.Cf != d || c.Cb != 2*d-2 {
			t.Fatalf("D=%d chimera: Cf=%d Cb=%d, want %d and %d", d, c.Cf, c.Cb, d, 2*d-2)
		}
	}
}

func TestBubbleIdentity(t *testing.T) {
	m := eval(t, Input{Arch: arch.BERTBase, GPU: hardware.P100, Method: Chimera, D: 8, NMicro: 8, BMicro: 16})
	want := m.TPipe - 8*(m.Tf+m.Tb)
	if m.TBubble != want {
		t.Fatalf("TBubble = %d, want %d", m.TBubble, want)
	}
	if m.TStep != m.TPipe+m.Tprec {
		t.Fatal("TStep must be TPipe + Tprec")
	}
}

func TestChimeraBeatsGPipeThroughput(t *testing.T) {
	// Figures 9/10: Chimera consistently achieves higher throughput
	// (smaller TBubble), but refreshes curvature less frequently (larger
	// ratio).
	for _, d := range []int{4, 8, 16} {
		g := eval(t, Input{Arch: arch.BERTBase, GPU: hardware.P100, Method: GPipe1F1B, D: d, NMicro: d, BMicro: 32})
		c := eval(t, Input{Arch: arch.BERTBase, GPU: hardware.P100, Method: Chimera, D: d, NMicro: d, BMicro: 32})
		if c.ThroughputPipeFisher <= g.ThroughputPipeFisher {
			t.Fatalf("D=%d: Chimera throughput %.0f must beat GPipe %.0f",
				d, c.ThroughputPipeFisher, g.ThroughputPipeFisher)
		}
		if c.Ratio <= g.Ratio {
			t.Fatalf("D=%d: Chimera ratio %.2f must exceed GPipe %.2f (fewer bubbles)",
				d, c.Ratio, g.Ratio)
		}
	}
}

func TestRatioTrends(t *testing.T) {
	base := Input{Arch: arch.BERTBase, GPU: hardware.P100, Method: Chimera, D: 8, NMicro: 8, BMicro: 8}
	m8 := eval(t, base)

	// Larger micro-batch size -> smaller ratio ("as B_micro is increased,
	// the ratio becomes smaller because the inversion work is relatively
	// small").
	big := base
	big.BMicro = 64
	m64 := eval(t, big)
	if m64.Ratio >= m8.Ratio {
		t.Fatalf("ratio must fall with BMicro: %.2f (B=8) vs %.2f (B=64)", m8.Ratio, m64.Ratio)
	}

	// Deeper pipeline -> smaller ratio ("as the pipeline depth D
	// increases, the ratio goes down because the bubble increases").
	deep := base
	deep.D, deep.NMicro = 32, 32
	m32 := eval(t, deep)
	if m32.Ratio >= m8.Ratio {
		t.Fatalf("ratio must fall with D: %.2f (D=8) vs %.2f (D=32)", m8.Ratio, m32.Ratio)
	}

	// More micro-batches -> larger ratio ("as N_micro is increased, the
	// ratio increases because the bubbles become smaller").
	many := base
	many.NMicro = 24
	m24 := eval(t, many)
	if m24.Ratio <= m8.Ratio {
		t.Fatalf("ratio must rise with NMicro: %.2f (N=D) vs %.2f (N=3D)", m8.Ratio, m24.Ratio)
	}
}

func TestLongerSequencesLowerRatio(t *testing.T) {
	// "Transformers with longer sequence lengths have larger bubbles and
	// smaller ratios": T5-Base is BERT-Base at S=512.
	bert := eval(t, Input{Arch: arch.BERTBase, GPU: hardware.P100, Method: Chimera, D: 8, NMicro: 8, BMicro: 8})
	t5 := eval(t, Input{Arch: arch.T5Base, GPU: hardware.P100, Method: Chimera, D: 8, NMicro: 8, BMicro: 8})
	if t5.Ratio >= bert.Ratio {
		t.Fatalf("longer sequences must lower the ratio: BERT %.2f vs T5 %.2f", bert.Ratio, t5.Ratio)
	}
}

func TestPreconditionOverheadSmall(t *testing.T) {
	// "Little difference in throughput is observed between Chimera and
	// Chimera w/ PipeFisher" — precondition under ~10% of the step.
	for _, b := range []int{8, 16, 32} {
		m := eval(t, Input{Arch: arch.BERTBase, GPU: hardware.P100, Method: Chimera, D: 8, NMicro: 8, BMicro: b})
		drop := 1 - m.ThroughputPipeFisher/m.ThroughputVanilla
		if drop < 0 || drop > 0.10 {
			t.Fatalf("B=%d: precondition throughput drop %.3f outside [0, 0.10]", b, drop)
		}
	}
}

func TestPipeFisherBeatsSkipAndNaive(t *testing.T) {
	m := eval(t, Input{Arch: arch.BERTBase, GPU: hardware.P100, Method: Chimera, D: 8, NMicro: 8, BMicro: 64})
	if !(m.ThroughputPipeFisher > m.ThroughputKFACSkip) {
		t.Fatalf("PipeFisher %.0f must beat K-FAC+skip %.0f", m.ThroughputPipeFisher, m.ThroughputKFACSkip)
	}
	if !(m.ThroughputKFACSkip > m.ThroughputKFACNaive) {
		t.Fatalf("K-FAC+skip %.0f must beat naive K-FAC %.0f", m.ThroughputKFACSkip, m.ThroughputKFACNaive)
	}
	// Figure 6: speedup vs skip peaks around 1.1-1.4x.
	sp := m.SpeedupVsSkip()
	if sp < 1.0 || sp > 1.6 {
		t.Fatalf("speedup vs skip %.2f outside [1.0, 1.6]", sp)
	}
}

func TestSpeedupShrinksWithManyMicroBatches(t *testing.T) {
	// "when the number of micro-batches is large (N=3D), speedup by
	// PipeFisher is limited to about 1.1x".
	few := eval(t, Input{Arch: arch.BERTBase, GPU: hardware.P100, Method: Chimera, D: 8, NMicro: 8, BMicro: 64})
	many := eval(t, Input{Arch: arch.BERTBase, GPU: hardware.P100, Method: Chimera, D: 8, NMicro: 24, BMicro: 64})
	if many.SpeedupVsSkip() >= few.SpeedupVsSkip() {
		t.Fatalf("speedup must shrink with NMicro: %.3f (N=D) vs %.3f (N=3D)",
			few.SpeedupVsSkip(), many.SpeedupVsSkip())
	}
}

func TestRecomputeTradesThroughputForMemory(t *testing.T) {
	plain := eval(t, Input{Arch: arch.BERTBase, GPU: hardware.P100, Method: Chimera, D: 16, NMicro: 16, BMicro: 32})
	rec := plain.Input
	rec.Recompute = true
	r := eval(t, rec)
	if r.ThroughputPipeFisher >= plain.ThroughputPipeFisher {
		t.Fatal("recomputation must reduce throughput")
	}
	if r.Memory.Act >= plain.Memory.Act {
		t.Fatal("recomputation must reduce activation memory")
	}
	// "As TBubble is increased by activation recomputation, curvature
	// information is updated at a higher frequency" (smaller ratio).
	if r.Ratio >= plain.Ratio {
		t.Fatalf("recompute must lower the ratio: %.2f vs %.2f", plain.Ratio, r.Ratio)
	}
}

func TestMemoryBreakdownShape(t *testing.T) {
	// Figure 5 bottom: activations and saved errors dominate at large
	// BMicro and NMicro, while curvature memory is constant in both.
	small := eval(t, Input{Arch: arch.BERTBase, GPU: hardware.P100, Method: Chimera, D: 4, NMicro: 4, BMicro: 8})
	large := eval(t, Input{Arch: arch.BERTBase, GPU: hardware.P100, Method: Chimera, D: 16, NMicro: 16, BMicro: 32})
	if small.Memory.CurvInv != large.Memory.CurvInv {
		t.Fatal("curvature memory must be independent of BMicro and NMicro")
	}
	if large.Memory.Act <= small.Memory.Act {
		t.Fatal("activation memory must grow with NMicro and BMicro")
	}
	if large.Memory.Act <= large.Memory.CurvInv {
		t.Fatal("activations should dominate curvature at large sizes")
	}
	// Figure 5's D=16, B=32 configuration sits in the multi-GB regime.
	total := large.Memory.Total()
	if total < 2e9 || total > 20e9 {
		t.Fatalf("total memory %.2g bytes outside the paper's regime", total)
	}
}

func TestFasterGPULowersStepTime(t *testing.T) {
	p := eval(t, Input{Arch: arch.BERTBase, GPU: hardware.P100, Method: Chimera, D: 8, NMicro: 8, BMicro: 32})
	v := eval(t, Input{Arch: arch.BERTBase, GPU: hardware.V100, Method: Chimera, D: 8, NMicro: 8, BMicro: 32})
	r := eval(t, Input{Arch: arch.BERTBase, GPU: hardware.RTX3090, Method: Chimera, D: 8, NMicro: 8, BMicro: 32})
	if v.TStep >= p.TStep {
		t.Fatal("V100 must be faster than P100")
	}
	if r.TStep >= v.TStep {
		t.Fatal("RTX3090 must be faster than V100 on large GEMMs")
	}
}

func TestValidation(t *testing.T) {
	if _, err := Evaluate(Input{Arch: arch.BERTBase, GPU: hardware.P100, D: 0, BMicro: 8}); err == nil {
		t.Fatal("expected error for D=0")
	}
	if _, err := Evaluate(Input{Arch: arch.BERTBase, GPU: hardware.P100, D: 4, BMicro: 0}); err == nil {
		t.Fatal("expected error for BMicro=0")
	}
	if _, err := Evaluate(Input{Arch: arch.BERTBase, GPU: hardware.P100, D: 4, BMicro: 8, Method: "ring"}); err == nil {
		t.Fatal("expected error for unknown method")
	}
}

func TestDefaults(t *testing.T) {
	m := eval(t, Input{Arch: arch.BERTBase, GPU: hardware.P100, D: 4, BMicro: 8})
	if m.Input.NMicro != 4 {
		t.Fatalf("NMicro must default to D, got %d", m.Input.NMicro)
	}
	if m.Input.Method != Chimera {
		t.Fatalf("Method must default to chimera, got %q", m.Input.Method)
	}
	if m.Input.BlocksPerStage != 1 {
		t.Fatalf("BlocksPerStage must default to 1, got %d", m.Input.BlocksPerStage)
	}
}

func TestSweepCoversGrid(t *testing.T) {
	pts, err := Sweep(arch.BERTBase, Chimera, []int{4, 8}, []int{1, 2, 4}, []int{1, 2, 3}, hardware.All())
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * 2 * 3 * 3 // gpus * depths * factors * bmicros
	if len(pts) != want {
		t.Fatalf("sweep size %d, want %d", len(pts), want)
	}
	for _, p := range pts {
		if p.Model.Ratio <= 0 || p.Model.ThroughputPipeFisher <= 0 {
			t.Fatalf("degenerate sweep point %+v", p)
		}
	}
}

func TestFits(t *testing.T) {
	ok := eval(t, Input{Arch: arch.BERTBase, GPU: hardware.P100, Method: Chimera, D: 4, NMicro: 4, BMicro: 8})
	if !ok.Fits() {
		t.Fatal("small configuration must fit a P100")
	}
	huge := eval(t, Input{Arch: arch.OPT350M, GPU: hardware.P100, Method: Chimera, D: 32, NMicro: 96, BMicro: 64})
	if huge.Fits() {
		t.Fatal("a 96x64x2048-token configuration cannot fit a 16 GB P100")
	}
}

// Property: ratios are positive and throughput ordering
// vanilla >= PipeFisher > skip > naive holds across random configs.
func TestOrderingProperty(t *testing.T) {
	f := func(dRaw, bRaw, nRaw uint8) bool {
		d := 2 * (1 + int(dRaw%8))
		b := 1 << (bRaw % 7)
		factor := 1 + int(nRaw%3)
		m, err := Evaluate(Input{
			Arch: arch.BERTBase, GPU: hardware.P100, Method: Chimera,
			D: d, NMicro: factor * d, BMicro: b,
		})
		if err != nil {
			return false
		}
		return m.Ratio > 0 &&
			m.ThroughputVanilla >= m.ThroughputPipeFisher &&
			m.ThroughputPipeFisher > m.ThroughputKFACSkip &&
			m.ThroughputKFACSkip >= m.ThroughputKFACNaive &&
			!math.IsNaN(m.Ratio)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
