package perfmodel

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/hardware"
)

func TestChooseMethodTradeoff(t *testing.T) {
	// Generous refresh budget: Chimera wins on throughput.
	c, err := ChooseMethod(arch.BERTBase, hardware.P100, 8, 8, 32, 100)
	if err != nil {
		t.Fatal(err)
	}
	if c.Recommended != Chimera {
		t.Fatalf("with a loose budget Chimera should win, got %s", c.Recommended)
	}
	if c.ThroughputGain <= 1 {
		t.Fatalf("Chimera throughput gain %.3f should exceed 1", c.ThroughputGain)
	}
	if c.RefreshPenalty < 0 {
		t.Fatalf("Chimera refresh penalty %d should be >= 0 (fewer bubbles)", c.RefreshPenalty)
	}
	// Budget of 1 step: Chimera's refresh (> 1 at these sizes) busts it.
	tight, err := ChooseMethod(arch.BERTBase, hardware.P100, 8, 8, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Chimera.RefreshInterval() > 1 && tight.Recommended != GPipe1F1B {
		t.Fatalf("with a 1-step budget GPipe/1F1B should win, got %s", tight.Recommended)
	}
}

func TestChooseMethodValidation(t *testing.T) {
	if _, err := ChooseMethod(arch.BERTBase, hardware.P100, 8, 8, 32, 0); err == nil {
		t.Fatal("expected error for zero budget")
	}
}
