package perfmodel

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/hardware"
)

// Choice reports the method-selection tradeoff of §3.3's closing remark:
// "Chimera consistently achieves higher throughput than GPipe and 1F1B
// (due to the smaller T_bubble), but instead the curvature information is
// updated less frequently. Therefore, the pipeline method can be selected
// based on the tradeoff between throughput and the frequency of extra
// information updates."
type Choice struct {
	// GPipe1F1B and Chimera are the two evaluated models.
	GPipe1F1B *Model
	Chimera   *Model
	// Recommended is the method picked under the given preference.
	Recommended Method
	// ThroughputGain is Chimera's throughput advantage (ratio >= 1).
	ThroughputGain float64
	// RefreshPenalty is Chimera's refresh-interval disadvantage in steps.
	RefreshPenalty int
}

// ChooseMethod evaluates both pipeline schemes and recommends one.
// maxRefreshSteps is the largest acceptable curvature refresh interval;
// Chimera is chosen when its refresh interval stays within the budget
// (taking its higher throughput), otherwise GPipe/1F1B.
func ChooseMethod(a arch.Transformer, g hardware.GPU, d, nMicro, bMicro, maxRefreshSteps int) (*Choice, error) {
	if maxRefreshSteps <= 0 {
		return nil, fmt.Errorf("perfmodel: maxRefreshSteps must be positive, got %d", maxRefreshSteps)
	}
	gp, err := Evaluate(Input{Arch: a, GPU: g, Method: GPipe1F1B, D: d, NMicro: nMicro, BMicro: bMicro})
	if err != nil {
		return nil, err
	}
	ch, err := Evaluate(Input{Arch: a, GPU: g, Method: Chimera, D: d, NMicro: nMicro, BMicro: bMicro})
	if err != nil {
		return nil, err
	}
	c := &Choice{
		GPipe1F1B:      gp,
		Chimera:        ch,
		ThroughputGain: ch.ThroughputPipeFisher / gp.ThroughputPipeFisher,
		RefreshPenalty: ch.RefreshInterval() - gp.RefreshInterval(),
	}
	if ch.RefreshInterval() <= maxRefreshSteps {
		c.Recommended = Chimera
	} else {
		c.Recommended = GPipe1F1B
	}
	return c, nil
}
