package perfmodel

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/hardware"
)

// MaxMicroBatch returns the largest power-of-two micro-batch size whose
// modeled memory fits the GPU for the given pipeline configuration — the
// calculation behind the paper's choice of B_micro = 32 as "the maximum
// number of powers of 2 that can be placed on a P100 GPU" (§4).
// It returns an error when even B_micro = 1 does not fit.
func MaxMicroBatch(a arch.Transformer, g hardware.GPU, method Method, d, nMicro, blocksPerStage int, recompute bool) (int, error) {
	best := 0
	for b := 1; b <= 1<<14; b *= 2 {
		m, err := Evaluate(Input{
			Arch: a, GPU: g, Method: method,
			D: d, NMicro: nMicro, BMicro: b,
			BlocksPerStage: blocksPerStage, Recompute: recompute,
		})
		if err != nil {
			return 0, err
		}
		if !m.Fits() {
			break
		}
		best = b
	}
	if best == 0 {
		return 0, fmt.Errorf("perfmodel: %s does not fit %s even at B_micro = 1", a.Name, g.Name)
	}
	return best, nil
}

// RefreshInterval converts the (curvature+inversion)/bubble ratio to the
// integer number of pipeline steps between curvature refreshes, as the
// paper quotes ("refreshed within a maximum of 2 steps", "once in 5-10
// steps").
func (m *Model) RefreshInterval() int {
	k := int(m.Ratio)
	if float64(k) < m.Ratio {
		k++
	}
	if k < 1 {
		k = 1
	}
	return k
}
