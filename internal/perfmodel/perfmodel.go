// Package perfmodel implements the closed-form performance model of §3.3:
// pipeline step time T_pipe = C_f·T_f + C_b·T_b, bubble time
// T_bubble = T_pipe − N_micro(T_f + T_b), the per-stage memory model
// M_pipe and M_kfac of Table 1, and the derived quantities the paper plots
// in Figures 5, 6 and 9-16 — throughput, (curvature+inversion)/bubble
// ratio, and the speedup of PipeFisher over naive K-FAC execution with
// update skipping.
package perfmodel

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/hardware"
	"repro/internal/pipeline"
)

// Method selects the pipeline scheme being modeled.
type Method string

// Modeled pipeline schemes. GPipe and 1F1B share one model (identical
// critical path with flush, as Table 1 notes).
const (
	GPipe1F1B Method = "gpipe/1f1b"
	Chimera   Method = "chimera"
)

// Input configures one performance-model evaluation. It mirrors the axes of
// the paper's sweeps: architecture, pipeline depth D (one block per stage,
// as in Figure 5), micro-batch count and size, hardware, and activation
// recomputation.
type Input struct {
	Arch   arch.Transformer
	GPU    hardware.GPU
	Method Method
	// D is the number of pipeline stages (= pipeline depth).
	D int
	// NMicro is the number of micro-batches per device per iteration.
	NMicro int
	// BMicro is the micro-batch size.
	BMicro int
	// BlocksPerStage is the number of transformer blocks per stage
	// (1 in the paper's Figures 5-16; 3 in the Figure 3/4 profiles).
	BlocksPerStage int
	// Recompute enables activation recomputation (the "R" bars).
	Recompute bool
}

func (in Input) normalize() (Input, error) {
	if in.D <= 0 {
		return in, fmt.Errorf("perfmodel: D must be positive, got %d", in.D)
	}
	if in.NMicro <= 0 {
		in.NMicro = in.D
	}
	if in.BMicro <= 0 {
		return in, fmt.Errorf("perfmodel: BMicro must be positive, got %d", in.BMicro)
	}
	if in.BlocksPerStage <= 0 {
		in.BlocksPerStage = 1
	}
	switch in.Method {
	case GPipe1F1B, Chimera:
	case "":
		in.Method = Chimera
	default:
		return in, fmt.Errorf("perfmodel: unknown method %q", in.Method)
	}
	return in, nil
}

// Model holds every quantity of the §3.3 performance model.
type Model struct {
	Input Input

	// Per-stage work times (one micro-batch where applicable).
	Tf    hardware.Microseconds // forward
	Tb    hardware.Microseconds // backward (includes recompute when on)
	Tcurv hardware.Microseconds // curvature for one micro-batch
	Tinv  hardware.Microseconds // inversion of all the stage's factors
	Tprec hardware.Microseconds // precondition per step

	// Cf and Cb are the critical-path pass counts of Table 1.
	Cf, Cb int
	// TPipe = Cf·Tf + Cb·Tb; TBubble = TPipe − NMicro(Tf+Tb).
	TPipe   hardware.Microseconds
	TBubble hardware.Microseconds
	// TStep is the PipeFisher step time TPipe + Tprec.
	TStep hardware.Microseconds

	// Ratio is (NMicro·Tcurv + Tinv) / TBubble: the number of pipeline
	// steps needed to refresh the curvature information.
	Ratio float64

	// Throughput figures in sequences/second for the whole pipeline.
	ThroughputVanilla    float64 // vanilla pipeline (no K-FAC)
	ThroughputPipeFisher float64 // K-FAC with bubble filling
	ThroughputKFACSkip   float64 // naive K-FAC, refreshing every ceil(Ratio) steps
	ThroughputKFACNaive  float64 // naive K-FAC, refreshing every step

	// Memory is the per-device memory breakdown (bytes, worst-case stage).
	Memory MemoryModel
}

// MemoryModel is the per-device memory breakdown of Figure 5 (bottom), in
// bytes.
type MemoryModel struct {
	// Act is NMicro·Mact (activations retained for backward).
	Act float64
	// PeakErr is Mpeak_err (transient backward buffers).
	PeakErr float64
	// SaveErr is NMicro·Msave_err (errors retained for B_l factors).
	SaveErr float64
	// CurvInv is Mcurv + Minv (Kronecker factors and their inverses).
	CurvInv float64
	// ParamGrad is the parameters + gradients (2·stages-per-device·Mθ).
	ParamGrad float64
}

// Total sums the components.
func (m MemoryModel) Total() float64 {
	return m.Act + m.PeakErr + m.SaveErr + m.CurvInv + m.ParamGrad
}

// Evaluate computes the performance model.
func Evaluate(in Input) (*Model, error) {
	in, err := in.normalize()
	if err != nil {
		return nil, err
	}
	costs, err := pipeline.CostsFor(pipeline.CostConfig{
		Arch:           in.Arch,
		BlocksPerStage: in.BlocksPerStage,
		MicroBatch:     in.BMicro,
		GPU:            in.GPU,
		Recompute:      in.Recompute,
	})
	if err != nil {
		return nil, err
	}
	m := &Model{
		Input: in,
		Tf:    costs.Forward,
		Tb:    costs.Backward,
		Tcurv: costs.CurvaturePerMicroBatch,
		Tinv:  costs.InversionTotal(),
		Tprec: costs.Precondition,
	}
	d, n := in.D, in.NMicro
	switch in.Method {
	case GPipe1F1B:
		// With flush: Cf = Cb = NMicro + D − 1 (equals 2D−1 when N = D).
		m.Cf = n + d - 1
		m.Cb = n + d - 1
	case Chimera:
		// Table 1: Cf = D, Cb = 2D−2 when N = D; extra micro-batches
		// beyond D extend the steady phase by one forward and one
		// backward each.
		extra := n - d
		if extra < 0 {
			extra = 0
		}
		m.Cf = d + extra
		m.Cb = 2*d - 2 + extra
	}
	m.TPipe = hardware.Microseconds(m.Cf)*m.Tf + hardware.Microseconds(m.Cb)*m.Tb
	m.TBubble = m.TPipe - hardware.Microseconds(n)*(m.Tf+m.Tb)
	m.TStep = m.TPipe + m.Tprec

	kfacWork := float64(n)*float64(m.Tcurv) + float64(m.Tinv)
	if m.TBubble > 0 {
		m.Ratio = kfacWork / float64(m.TBubble)
	} else {
		m.Ratio = kfacWork // effectively infinite; report the raw work
	}

	seqsPerStep := float64(n * in.BMicro)
	m.ThroughputVanilla = seqsPerStep / (float64(m.TPipe) * 1e-6)
	m.ThroughputPipeFisher = seqsPerStep / (float64(m.TStep) * 1e-6)
	// Naive K-FAC with skipping refreshes every k = ceil(Ratio) steps,
	// paying the full curvature+inversion work outside bubbles then.
	k := int(m.Ratio) + 1
	if k < 1 {
		k = 1
	}
	m.ThroughputKFACSkip = seqsPerStep / ((float64(m.TStep) + kfacWork/float64(k)) * 1e-6)
	m.ThroughputKFACNaive = seqsPerStep / ((float64(m.TStep) + kfacWork) * 1e-6)

	m.Memory = memoryModel(in)
	return m, nil
}

func memoryModel(in Input) MemoryModel {
	a := in.Arch
	blocks := in.BlocksPerStage
	stagesPerDevice := 1.0
	if in.Method == Chimera {
		stagesPerDevice = 2.0 // each device hosts a down and an up stage
	}
	mm := MemoryModel{
		PeakErr:   a.BlockPeakErrorBytes(in.BMicro) * float64(blocks),
		SaveErr:   float64(in.NMicro) * a.BlockSaveErrorBytes(in.BMicro) * float64(blocks),
		CurvInv:   2 * a.BlockCurvatureBytes() * float64(blocks) * stagesPerDevice,
		ParamGrad: 2 * a.BlockParamBytes() * float64(blocks) * stagesPerDevice,
	}
	if in.Recompute {
		// Only the stage-boundary activations are retained per micro-batch
		// plus one in-flight full activation set.
		boundary := float64(in.BMicro) * float64(a.SeqLen) * float64(a.DModel) * 4
		mm.Act = float64(in.NMicro)*boundary + a.BlockActivationBytes(in.BMicro)*float64(blocks)
	} else {
		mm.Act = float64(in.NMicro) * a.BlockActivationBytes(in.BMicro) * float64(blocks)
	}
	return mm
}

// SpeedupVsSkip returns ThroughputPipeFisher / ThroughputKFACSkip — the
// bottom rows of Figures 6 and 11-16 ("up to about 1.4x when NMicro = D and
// BMicro is large").
func (m *Model) SpeedupVsSkip() float64 {
	if m.ThroughputKFACSkip == 0 {
		return 0
	}
	return m.ThroughputPipeFisher / m.ThroughputKFACSkip
}

// Fits reports whether the modeled memory fits the GPU.
func (m *Model) Fits() bool {
	return m.Memory.Total() <= m.Input.GPU.MemBytes
}

// SweepPoint is one point of a Figure 6-style sweep.
type SweepPoint struct {
	D, NMicro, BMicro int
	GPU               string
	Model             *Model
}

// Sweep evaluates the model over the grid the paper uses in Figures 6 and
// 11-16: D in depths, NMicro in {D, 2D, 3D}, BMicro in bmicros, for every
// GPU in gpus.
func Sweep(a arch.Transformer, method Method, depths, bmicros []int, nmicroFactors []int, gpus []hardware.GPU) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, g := range gpus {
		for _, d := range depths {
			for _, factor := range nmicroFactors {
				for _, b := range bmicros {
					m, err := Evaluate(Input{
						Arch: a, GPU: g, Method: method,
						D: d, NMicro: factor * d, BMicro: b,
					})
					if err != nil {
						return nil, err
					}
					out = append(out, SweepPoint{
						D: d, NMicro: factor * d, BMicro: b, GPU: g.Name, Model: m,
					})
				}
			}
		}
	}
	return out, nil
}
