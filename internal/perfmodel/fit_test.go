package perfmodel

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/hardware"
)

func TestMaxMicroBatchBERTLargeP100(t *testing.T) {
	// §4: "the micro-batch size to 32 (maximum number of powers of 2 that
	// can be placed on a P100 GPU)" for BERT-Large with 3 blocks/stage.
	got, err := MaxMicroBatch(arch.BERTLarge, hardware.P100, Chimera, 8, 8, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	// Our memory model is approximate: accept the paper's 32 within one
	// power of two either way.
	if got < 16 || got > 64 {
		t.Fatalf("max micro-batch %d, paper says 32 (accepting 16-64)", got)
	}
	// It must be a power of two.
	if got&(got-1) != 0 {
		t.Fatalf("%d is not a power of two", got)
	}
}

func TestMaxMicroBatchMonotoneInMemory(t *testing.T) {
	p100, err := MaxMicroBatch(arch.BERTBase, hardware.P100, Chimera, 8, 8, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	v100, err := MaxMicroBatch(arch.BERTBase, hardware.V100, Chimera, 8, 8, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if v100 < p100 {
		t.Fatalf("32 GB V100 (%d) must fit at least as much as 16 GB P100 (%d)", v100, p100)
	}
}

func TestMaxMicroBatchRecomputeFitsMore(t *testing.T) {
	plain, err := MaxMicroBatch(arch.OPT350M, hardware.P100, Chimera, 8, 24, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := MaxMicroBatch(arch.OPT350M, hardware.P100, Chimera, 8, 24, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if rec < plain {
		t.Fatalf("recomputation (%d) must fit at least as much as without (%d)", rec, plain)
	}
}

func TestMaxMicroBatchTooBigErrors(t *testing.T) {
	// OPT-350M blocks at S=2048 with 32 retained micro-batches and 8
	// blocks per stage cannot fit a 16 GB card even at B = 1.
	if _, err := MaxMicroBatch(arch.OPT350M, hardware.P100, Chimera, 32, 96, 8, false); err == nil {
		t.Fatal("expected error for an impossible configuration")
	}
}

func TestRefreshInterval(t *testing.T) {
	m := &Model{Ratio: 2.3}
	if got := m.RefreshInterval(); got != 3 {
		t.Fatalf("RefreshInterval(2.3) = %d, want 3", got)
	}
	m.Ratio = 4.0
	if got := m.RefreshInterval(); got != 4 {
		t.Fatalf("RefreshInterval(4.0) = %d, want 4", got)
	}
	m.Ratio = 0.2
	if got := m.RefreshInterval(); got != 1 {
		t.Fatalf("RefreshInterval(0.2) = %d, want 1", got)
	}
}
