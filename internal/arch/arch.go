// Package arch describes the Transformer architectures evaluated by the
// paper (Table 3) and derives the per-block work and memory quantities the
// performance model and pipeline simulator consume: forward/backward FLOPs,
// K-FAC curvature/inversion/precondition costs, and the parameter /
// activation / error / factor memory footprints of §3.3.
package arch

import "fmt"

// Transformer is one architecture configuration, matching Table 3 of the
// paper. A "block" is one encoder/decoder layer: multi-head self-attention
// followed by a feed-forward sublayer.
type Transformer struct {
	// Name identifies the model ("BERT-Base", ...).
	Name string
	// DModel is the encoder dimensionality (d_model).
	DModel int
	// DFF is the intermediate feed-forward dimensionality (d_ff).
	DFF int
	// Heads is the number of attention heads (h).
	Heads int
	// SeqLen is the training sequence length (S).
	SeqLen int
	// Blocks is the total number of transformer blocks (L).
	Blocks int
	// VocabSize is the vocabulary size (for embedding / head sizing).
	VocabSize int
}

// Table 3 configurations. Sequence lengths follow the paper: 128 for BERT
// Phase 1, 512 for T5, 2048 for OPT.
var (
	BERTBase  = Transformer{Name: "BERT-Base", DModel: 768, DFF: 3072, Heads: 12, SeqLen: 128, Blocks: 12, VocabSize: 30522}
	BERTLarge = Transformer{Name: "BERT-Large", DModel: 1024, DFF: 4096, Heads: 16, SeqLen: 128, Blocks: 24, VocabSize: 30522}
	T5Base    = Transformer{Name: "T5-Base", DModel: 768, DFF: 3072, Heads: 12, SeqLen: 512, Blocks: 12, VocabSize: 32128}
	T5Large   = Transformer{Name: "T5-Large", DModel: 1024, DFF: 4096, Heads: 16, SeqLen: 512, Blocks: 24, VocabSize: 32128}
	OPT125M   = Transformer{Name: "OPT-125M", DModel: 768, DFF: 3072, Heads: 12, SeqLen: 2048, Blocks: 12, VocabSize: 50272}
	OPT350M   = Transformer{Name: "OPT-350M", DModel: 1024, DFF: 4096, Heads: 16, SeqLen: 2048, Blocks: 24, VocabSize: 50272}
)

// ByName looks up a predefined architecture.
func ByName(name string) (Transformer, error) {
	for _, t := range All() {
		if t.Name == name {
			return t, nil
		}
	}
	return Transformer{}, fmt.Errorf("arch: unknown architecture %q", name)
}

// All lists the predefined architectures in Table 3 order.
func All() []Transformer {
	return []Transformer{BERTBase, BERTLarge, T5Base, T5Large, OPT125M, OPT350M}
}

// LinearLayer describes one fully-connected layer inside a block to which
// K-FAC is applied: its input and output dimensions (din, dout) determine
// the Kronecker-factor sizes A (din x din) and B (dout x dout).
type LinearLayer struct {
	// Name labels the layer within a block ("attn.q", "ffn.1", ...).
	Name string
	// DIn and DOut are the layer's input and output dimensionalities.
	DIn, DOut int
}

// KFACLayers lists the fully-connected layers of one block that receive
// K-FAC treatment, following Pauloski et al. (2022) as cited in §4: the
// Q/K/V/output projections and the two feed-forward matrices. The final
// classification head (d_out = vocab) is excluded, exactly as in the paper.
func (t Transformer) KFACLayers() []LinearLayer {
	d, ff := t.DModel, t.DFF
	return []LinearLayer{
		{Name: "attn.q", DIn: d, DOut: d},
		{Name: "attn.k", DIn: d, DOut: d},
		{Name: "attn.v", DIn: d, DOut: d},
		{Name: "attn.out", DIn: d, DOut: d},
		{Name: "ffn.1", DIn: d, DOut: ff},
		{Name: "ffn.2", DIn: ff, DOut: d},
	}
}

// BlockParams returns the parameter count of one block (weights + biases +
// the two layer norms).
func (t Transformer) BlockParams() float64 {
	d := float64(t.DModel)
	ff := float64(t.DFF)
	attn := 4 * (d*d + d) // Q, K, V, out projections
	ffn := d*ff + ff + ff*d + d
	norms := 2 * 2 * d
	return attn + ffn + norms
}

// BlockForwardFLOPs returns the forward-pass FLOP count of one block for a
// micro-batch of the given size at the architecture's sequence length.
// Standard transformer accounting: 2 FLOPs per multiply-add, projections
// 4·d², attention score+value matmuls 2·2·S·d, feed-forward 2·d·d_ff per
// token.
func (t Transformer) BlockForwardFLOPs(microBatch int) float64 {
	tokens := float64(microBatch) * float64(t.SeqLen)
	d := float64(t.DModel)
	ff := float64(t.DFF)
	s := float64(t.SeqLen)
	perToken := 2*(4*d*d) + 2*(2*s*d) + 2*(2*d*ff)
	return tokens * perToken
}

// BlockBackwardFLOPs returns the backward-pass FLOP count (the usual 2x the
// forward cost: grads w.r.t. both activations and weights).
func (t Transformer) BlockBackwardFLOPs(microBatch int) float64 {
	return 2 * t.BlockForwardFLOPs(microBatch)
}

// BlockCurvatureFLOPs returns the FLOPs to compute all Kronecker factors of
// one block for one micro-batch: for each K-FAC layer, A_l = U_A U_A^T costs
// 2·din²·T and B_l = U_B U_B^T costs 2·dout²·T where T is the token count
// (§2.3.1).
func (t Transformer) BlockCurvatureFLOPs(microBatch int) float64 {
	tokens := float64(microBatch) * float64(t.SeqLen)
	var flops float64
	for _, l := range t.KFACLayers() {
		din, dout := float64(l.DIn), float64(l.DOut)
		flops += 2 * din * din * tokens
		flops += 2 * dout * dout * tokens
	}
	return flops
}

// BlockInversionFLOPs returns the FLOPs to invert all Kronecker factors of
// one block. Cholesky factorization costs n³/3 and cholesky_inverse 2n³/3,
// so each factor of size n costs about n³. Inversion cost is independent of
// batch size and sequence length — the property that drives the paper's
// (curv+inv)/bubble trends.
func (t Transformer) BlockInversionFLOPs() float64 {
	var flops float64
	for _, l := range t.KFACLayers() {
		din, dout := float64(l.DIn), float64(l.DOut)
		flops += din * din * din
		flops += dout * dout * dout
	}
	return flops
}

// BlockPreconditionFLOPs returns the FLOPs of the per-step preconditioning
// B⁻¹ G A⁻¹ for all K-FAC layers of one block: two GEMMs per layer,
// 2·dout²·din + 2·dout·din².
func (t Transformer) BlockPreconditionFLOPs() float64 {
	var flops float64
	for _, l := range t.KFACLayers() {
		din, dout := float64(l.DIn), float64(l.DOut)
		flops += 2*dout*dout*din + 2*dout*din*din
	}
	return flops
}

// Memory quantities of §3.3 (Table 1), all in bytes, fp32 (4 bytes/value) as
// the paper trains in fp32 (Appendix B.2).

const bytesPerValue = 4

// BlockParamBytes is Mθ for one block: parameters only (gradients and
// optimizer state are accounted separately by callers that need them).
func (t Transformer) BlockParamBytes() float64 {
	return t.BlockParams() * bytesPerValue
}

// BlockActivationBytes is Mact for one block and one micro-batch: the
// activations that must be retained for the backward pass. Accounts for the
// attention input/outputs, score matrices, and FFN intermediates.
func (t Transformer) BlockActivationBytes(microBatch int) float64 {
	tokens := float64(microBatch) * float64(t.SeqLen)
	d := float64(t.DModel)
	ff := float64(t.DFF)
	s := float64(t.SeqLen)
	h := float64(t.Heads)
	// Per token: block input, Q, K, V, attention output, attn-proj output,
	// norm outputs (2), ffn intermediate (d_ff), ffn output, plus the
	// h·S attention probabilities per token.
	perToken := (9*d + ff) + h*s
	return tokens * perToken * bytesPerValue
}

// BlockPeakErrorBytes is Mpeak_err for one block and one micro-batch: the
// transient error (gradient w.r.t. activation) buffers live during the
// backward pass. Roughly two d-sized tensors plus the d_ff intermediate.
func (t Transformer) BlockPeakErrorBytes(microBatch int) float64 {
	tokens := float64(microBatch) * float64(t.SeqLen)
	d := float64(t.DModel)
	ff := float64(t.DFF)
	return tokens * (2*d + ff) * bytesPerValue
}

// BlockSaveErrorBytes is Msave_err for one block and one micro-batch: the
// per-layer output errors e_l that must be kept to build the B_l factors
// (one dout-sized tensor per K-FAC layer per token).
func (t Transformer) BlockSaveErrorBytes(microBatch int) float64 {
	tokens := float64(microBatch) * float64(t.SeqLen)
	var perToken float64
	for _, l := range t.KFACLayers() {
		perToken += float64(l.DOut)
	}
	return tokens * perToken * bytesPerValue
}

// BlockCurvatureBytes is Mcurv (= Minv) for one block: the Kronecker
// factors A_l and B_l of every K-FAC layer.
func (t Transformer) BlockCurvatureBytes() float64 {
	var vals float64
	for _, l := range t.KFACLayers() {
		din, dout := float64(l.DIn), float64(l.DOut)
		vals += din*din + dout*dout
	}
	return vals * bytesPerValue
}

// FactorDims returns the distinct Kronecker-factor dimensions of one block
// in declaration order, one entry per factor (A then B for each layer).
// The schedule package uses this to split inversion work across devices.
func (t Transformer) FactorDims() []int {
	var dims []int
	for _, l := range t.KFACLayers() {
		dims = append(dims, l.DIn, l.DOut)
	}
	return dims
}

// Scale returns a copy of t with DModel and DFF multiplied by k (and heads
// scaled to keep the head dimension constant). Appendix A.2 uses this to
// discuss block-diagonal approximations for larger Transformers.
func (t Transformer) Scale(k int) Transformer {
	s := t
	s.Name = fmt.Sprintf("%s-x%d", t.Name, k)
	s.DModel *= k
	s.DFF *= k
	s.Heads *= k
	return s
}
