package arch

import (
	"testing"
	"testing/quick"
)

func TestByName(t *testing.T) {
	for _, want := range All() {
		got, err := ByName(want.Name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", want.Name, err)
		}
		if got != want {
			t.Fatalf("ByName(%q) = %+v", want.Name, got)
		}
	}
	if _, err := ByName("GPT-5"); err == nil {
		t.Fatal("expected error for unknown architecture")
	}
}

func TestTable3Configurations(t *testing.T) {
	// Spot-check the Table 3 values the rest of the repo depends on.
	cases := []struct {
		a                Transformer
		d, ff, h, s, blk int
	}{
		{BERTBase, 768, 3072, 12, 128, 12},
		{BERTLarge, 1024, 4096, 16, 128, 24},
		{T5Base, 768, 3072, 12, 512, 12},
		{T5Large, 1024, 4096, 16, 512, 24},
		{OPT125M, 768, 3072, 12, 2048, 12},
		{OPT350M, 1024, 4096, 16, 2048, 24},
	}
	for _, c := range cases {
		if c.a.DModel != c.d || c.a.DFF != c.ff || c.a.Heads != c.h || c.a.SeqLen != c.s || c.a.Blocks != c.blk {
			t.Fatalf("%s config mismatch: %+v", c.a.Name, c.a)
		}
	}
}

func TestKFACLayers(t *testing.T) {
	layers := BERTBase.KFACLayers()
	if len(layers) != 6 {
		t.Fatalf("expected 6 K-FAC layers per block, got %d", len(layers))
	}
	// Four d x d attention projections, then d->ff and ff->d.
	for i := 0; i < 4; i++ {
		if layers[i].DIn != 768 || layers[i].DOut != 768 {
			t.Fatalf("attention layer %d dims wrong: %+v", i, layers[i])
		}
	}
	if layers[4].DIn != 768 || layers[4].DOut != 3072 {
		t.Fatalf("ffn.1 dims wrong: %+v", layers[4])
	}
	if layers[5].DIn != 3072 || layers[5].DOut != 768 {
		t.Fatalf("ffn.2 dims wrong: %+v", layers[5])
	}
}

func TestBlockParamsApproxBERTBase(t *testing.T) {
	// A BERT-Base block has about 7.1M parameters; 12 blocks ≈ 85M of the
	// 110M total (the rest is embeddings and heads).
	p := BERTBase.BlockParams()
	if p < 7.0e6 || p > 7.3e6 {
		t.Fatalf("BERT-Base block params = %.3g, want ~7.1M", p)
	}
}

func TestForwardFLOPsScaleLinearlyInBatch(t *testing.T) {
	f1 := BERTBase.BlockForwardFLOPs(1)
	f32 := BERTBase.BlockForwardFLOPs(32)
	if f32 != 32*f1 {
		t.Fatalf("forward FLOPs must be linear in micro-batch: %g vs 32*%g", f32, f1)
	}
}

func TestBackwardIsTwiceForward(t *testing.T) {
	if BERTBase.BlockBackwardFLOPs(8) != 2*BERTBase.BlockForwardFLOPs(8) {
		t.Fatal("backward must cost 2x forward")
	}
}

func TestInversionIndependentOfBatch(t *testing.T) {
	// Inversion cost depends only on factor sizes — the key asymmetry
	// behind the paper's (curv+inv)/bubble trends.
	inv := BERTBase.BlockInversionFLOPs()
	if inv <= 0 {
		t.Fatal("inversion FLOPs must be positive")
	}
	// Curvature, in contrast, grows with the batch.
	c1 := BERTBase.BlockCurvatureFLOPs(1)
	c64 := BERTBase.BlockCurvatureFLOPs(64)
	if c64 != 64*c1 {
		t.Fatal("curvature FLOPs must be linear in micro-batch")
	}
}

func TestLargerModelCostsMore(t *testing.T) {
	if BERTLarge.BlockForwardFLOPs(8) <= BERTBase.BlockForwardFLOPs(8) {
		t.Fatal("BERT-Large block must cost more than BERT-Base")
	}
	if BERTLarge.BlockInversionFLOPs() <= BERTBase.BlockInversionFLOPs() {
		t.Fatal("BERT-Large inversion must cost more")
	}
}

func TestLongerSequenceCostsMore(t *testing.T) {
	// T5-Base = BERT-Base dims at S=512: more tokens per micro-batch.
	if T5Base.BlockForwardFLOPs(8) <= BERTBase.BlockForwardFLOPs(8) {
		t.Fatal("longer sequences must cost more per micro-batch")
	}
	// But inversion cost is identical (same factor dims).
	if T5Base.BlockInversionFLOPs() != BERTBase.BlockInversionFLOPs() {
		t.Fatal("inversion must not depend on sequence length")
	}
}

func TestMemoryQuantitiesPositiveAndOrdered(t *testing.T) {
	for _, a := range All() {
		if a.BlockParamBytes() <= 0 || a.BlockActivationBytes(8) <= 0 ||
			a.BlockPeakErrorBytes(8) <= 0 || a.BlockSaveErrorBytes(8) <= 0 ||
			a.BlockCurvatureBytes() <= 0 {
			t.Fatalf("%s: non-positive memory quantity", a.Name)
		}
		// Activations dominate peak errors for these architectures.
		if a.BlockActivationBytes(8) <= a.BlockPeakErrorBytes(8) {
			t.Fatalf("%s: activations should exceed peak errors", a.Name)
		}
	}
}

func TestActivationMemoryLinearInBatch(t *testing.T) {
	a1 := BERTBase.BlockActivationBytes(1)
	a16 := BERTBase.BlockActivationBytes(16)
	if a16 != 16*a1 {
		t.Fatal("activation memory must be linear in micro-batch size")
	}
}

func TestFactorDims(t *testing.T) {
	dims := BERTBase.FactorDims()
	if len(dims) != 12 {
		t.Fatalf("expected 12 factors (A+B for 6 layers), got %d", len(dims))
	}
	want := []int{768, 768, 768, 768, 768, 768, 768, 768, 768, 3072, 3072, 768}
	for i, d := range dims {
		if d != want[i] {
			t.Fatalf("FactorDims[%d] = %d, want %d", i, d, want[i])
		}
	}
}

func TestScale(t *testing.T) {
	s := BERTBase.Scale(2)
	if s.DModel != 1536 || s.DFF != 6144 || s.Heads != 24 {
		t.Fatalf("Scale(2) wrong: %+v", s)
	}
	if BERTBase.DModel != 768 {
		t.Fatal("Scale must not mutate the receiver")
	}
}

// Property from Appendix A.2: scaling d_model and d_ff by K with a K-block-
// diagonal approximation keeps the (curv+inv)/bubble ratio constant. Here we
// verify the underlying FLOPs scaling: forward scales as K², inversion as K³.
func TestScalingLawsProperty(t *testing.T) {
	f := func(kRaw uint8) bool {
		k := 1 + int(kRaw%3)
		s := BERTBase.Scale(k)
		fwdRatio := s.BlockForwardFLOPs(8) / BERTBase.BlockForwardFLOPs(8)
		invRatio := s.BlockInversionFLOPs() / BERTBase.BlockInversionFLOPs()
		kf := float64(k)
		// Forward has an attention term linear in d, so the ratio is
		// between K and K²·(1+eps); inversion is exactly K³.
		return fwdRatio >= kf && fwdRatio <= kf*kf*1.01 &&
			invRatio > kf*kf*kf*0.99 && invRatio < kf*kf*kf*1.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
