package pipeline

import (
	"testing"
)

func TestPipeDreamRequiresEnoughMicroBatches(t *testing.T) {
	if _, err := BuildPipeDream(BuildConfig{Stages: 4, MicroBatches: 2, Costs: unitCosts()}); err == nil {
		t.Fatal("expected error for fewer micro-batches than stages")
	}
}

func TestPipeDreamNearZeroBubbles(t *testing.T) {
	// Appendix C.1: "pipeline bubbles are almost non-existent in
	// asynchronous pipelines". In steady state (away from warmup and
	// drain), every device alternates F and B back to back. With Tb=2Tf
	// the bound stage is the slowest; measure utilization over the middle
	// half of the run and require it to beat synchronous 1F1B by a wide
	// margin.
	costs := unitCosts()
	const d, n = 4, 32
	async, err := BuildPipeDream(BuildConfig{Stages: d, MicroBatches: n, Costs: costs})
	if err != nil {
		t.Fatal(err)
	}
	asyncTL, err := Run(async)
	if err != nil {
		t.Fatal(err)
	}
	// Synchronous 1F1B processing the same total work, flushing every d
	// micro-batches.
	sync, err := Build1F1B(BuildConfig{Stages: d, MicroBatches: d, Steps: n / d, Costs: costs, IncludeOptimizerWork: false})
	if err != nil {
		t.Fatal(err)
	}
	syncTL, err := Run(sync)
	if err != nil {
		t.Fatal(err)
	}
	if asyncTL.Makespan >= syncTL.Makespan {
		t.Fatalf("async makespan %d must beat synchronous %d", asyncTL.Makespan, syncTL.Makespan)
	}
	mid := asyncTL.UtilizationOver(asyncTL.Makespan/4, 3*asyncTL.Makespan/4)
	if mid < 0.95 {
		t.Fatalf("steady-state async utilization %.3f, want >= 0.95", mid)
	}
	if syncTL.Utilization() > mid {
		t.Fatalf("async steady utilization %.3f must beat sync overall %.3f", mid, syncTL.Utilization())
	}
}

func TestPipeDreamRespectsDependencies(t *testing.T) {
	s, err := BuildPipeDream(BuildConfig{Stages: 4, MicroBatches: 16, Costs: unitCosts()})
	if err != nil {
		t.Fatal(err)
	}
	tl, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	start := make(map[int]int64)
	end := make(map[int]int64)
	for d := 0; d < tl.Devices; d++ {
		for _, e := range tl.Events[d] {
			start[e.Op.ID] = int64(e.Start)
			end[e.Op.ID] = int64(e.End)
		}
	}
	for _, op := range s.Ops {
		for _, dep := range op.Deps {
			if start[op.ID] < end[dep] {
				t.Fatalf("op %d violates dep %d", op.ID, dep)
			}
		}
	}
}

func TestWeightStaleness(t *testing.T) {
	// Appendix C.1: lag m ranges from 0 (last stage) up to D-1 (first).
	const d = 8
	if got := WeightStaleness(d-1, d); got != 0 {
		t.Fatalf("last stage staleness %d, want 0", got)
	}
	if got := WeightStaleness(0, d); got != d-1 {
		t.Fatalf("first stage staleness %d, want %d", got, d-1)
	}
	for s := 1; s < d; s++ {
		if WeightStaleness(s, d) >= WeightStaleness(s-1, d) {
			t.Fatal("staleness must decrease with stage index")
		}
	}
	if WeightStaleness(10, 8) != 0 {
		t.Fatal("out-of-range stage must clamp to 0")
	}
}
