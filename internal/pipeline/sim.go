package pipeline

import (
	"fmt"
	"sort"

	"repro/internal/hardware"
)

// Event is one executed op on the simulated timeline.
type Event struct {
	// Op is the executed op.
	Op *Op
	// Start and End bound the execution interval.
	Start, End hardware.Microseconds
	// Retries counts how many failed attempts preceded this execution.
	// Always 0 in simulated timelines; the execution engine sets it when
	// a side-path op succeeded only after retry-with-backoff.
	Retries int
	// Bytes counts the bytes this op put on the collective transport's
	// wire. Always 0 in simulated timelines and on in-process (loopback)
	// collectives; the execution engine sets it on ops that performed a
	// cross-rank fold over a wire transport.
	Bytes int64
	// Membership is the elastic membership view the op executed under:
	// 0 until the first membership change (always 0 in simulated
	// timelines), incremented by the execution engine at every regroup
	// (rank-failure shrink) and rejoin (width restore).
	Membership int
}

// Duration returns End - Start.
func (e Event) Duration() hardware.Microseconds { return e.End - e.Start }

// Gap is an idle interval on one device — a pipeline bubble.
type Gap struct {
	Device     int
	Start, End hardware.Microseconds
}

// Duration returns End - Start.
func (g Gap) Duration() hardware.Microseconds { return g.End - g.Start }

// Timeline is the result of simulating a schedule: per-device event lists
// plus aggregate statistics.
type Timeline struct {
	// Name is the simulated schedule's name.
	Name string
	// Devices is the device count.
	Devices int
	// Steps is the number of training steps simulated.
	Steps int
	// Events[d] lists device d's events in start order.
	Events [][]Event
	// Makespan is the latest End over all events.
	Makespan hardware.Microseconds
	// StepEnd[k] is the completion time of step k (max End over its ops).
	StepEnd []hardware.Microseconds
	// Parallelism records the intra-op kernel worker budget the executing
	// engine ran with, and OpParallelism the per-device share of it (what
	// one device's kernels could actually recruit). Both are 0 on
	// simulated timelines; recording them on executed timelines keeps
	// real-vs-simulated comparisons honest about the compute resources
	// behind the measured durations.
	Parallelism   int
	OpParallelism int
}

// Run executes a schedule: every device runs its ops in the schedule's
// order, each op starting when the device is free and all dependencies have
// completed. It returns an error if execution stalls (which indicates an
// invalid schedule, e.g. a cross-device ordering cycle).
func Run(s *Schedule) (*Timeline, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	tl := &Timeline{
		Name:    s.Name,
		Devices: s.Devices,
		Steps:   s.Steps,
		Events:  make([][]Event, s.Devices),
		StepEnd: make([]hardware.Microseconds, s.Steps),
	}
	endTime := make([]hardware.Microseconds, len(s.Ops))
	scheduled := make([]bool, len(s.Ops))
	pointer := make([]int, s.Devices)
	devFree := make([]hardware.Microseconds, s.Devices)
	remaining := len(s.Ops)
	for remaining > 0 {
		progressed := false
		for dev := 0; dev < s.Devices; dev++ {
			for pointer[dev] < len(s.Order[dev]) {
				op := s.Ops[s.Order[dev][pointer[dev]]]
				readyAt := hardware.Microseconds(0)
				blocked := false
				for _, dep := range op.Deps {
					if !scheduled[dep] {
						blocked = true
						break
					}
					if endTime[dep] > readyAt {
						readyAt = endTime[dep]
					}
				}
				if blocked {
					break
				}
				start := devFree[dev]
				if readyAt > start {
					start = readyAt
				}
				end := start + op.Duration
				endTime[op.ID] = end
				scheduled[op.ID] = true
				devFree[dev] = end
				tl.Events[dev] = append(tl.Events[dev], Event{Op: op, Start: start, End: end})
				if end > tl.Makespan {
					tl.Makespan = end
				}
				if op.Step >= 0 && op.Step < s.Steps && end > tl.StepEnd[op.Step] {
					tl.StepEnd[op.Step] = end
				}
				pointer[dev]++
				remaining--
				progressed = true
			}
		}
		if !progressed {
			return nil, fmt.Errorf("pipeline: simulation stalled with %d ops remaining (ordering deadlock)", remaining)
		}
	}
	return tl, nil
}

// BusyTime returns the total busy time of a device.
func (t *Timeline) BusyTime(device int) hardware.Microseconds {
	var busy hardware.Microseconds
	for _, e := range t.Events[device] {
		busy += e.Duration()
	}
	return busy
}

// Utilization returns the fraction of device-time covered by work over the
// window [0, Makespan] — the quantity the paper reports as "GPU
// utilization" (Appendix B.4: the percentage of time some kernel executes).
func (t *Timeline) Utilization() float64 {
	if t.Makespan == 0 || t.Devices == 0 {
		return 0
	}
	var busy hardware.Microseconds
	for d := 0; d < t.Devices; d++ {
		busy += t.BusyTime(d)
	}
	return float64(busy) / (float64(t.Makespan) * float64(t.Devices))
}

// UtilizationOver computes utilization over an explicit window, e.g. a
// steady-state step rather than the whole run.
func (t *Timeline) UtilizationOver(from, to hardware.Microseconds) float64 {
	if to <= from || t.Devices == 0 {
		return 0
	}
	var busy hardware.Microseconds
	for d := 0; d < t.Devices; d++ {
		for _, e := range t.Events[d] {
			s, en := e.Start, e.End
			if s < from {
				s = from
			}
			if en > to {
				en = to
			}
			if en > s {
				busy += en - s
			}
		}
	}
	return float64(busy) / (float64(to-from) * float64(t.Devices))
}

// Gaps returns the idle intervals of a device within [from, to], in time
// order. These are the bubbles PipeFisher fills.
func (t *Timeline) Gaps(device int, from, to hardware.Microseconds) []Gap {
	events := t.Events[device]
	var gaps []Gap
	cursor := from
	for _, e := range events {
		if e.End <= from {
			continue
		}
		if e.Start >= to {
			break
		}
		if e.Start > cursor {
			gaps = append(gaps, Gap{Device: device, Start: cursor, End: minUS(e.Start, to)})
		}
		if e.End > cursor {
			cursor = e.End
		}
		if cursor >= to {
			break
		}
	}
	if cursor < to {
		gaps = append(gaps, Gap{Device: device, Start: cursor, End: to})
	}
	return gaps
}

// TotalBubble sums all devices' idle time within [0, Makespan].
func (t *Timeline) TotalBubble() hardware.Microseconds {
	var idle hardware.Microseconds
	for d := 0; d < t.Devices; d++ {
		for _, g := range t.Gaps(d, 0, t.Makespan) {
			idle += g.Duration()
		}
	}
	return idle
}

// StepTime returns the duration of step k (end of step k minus end of step
// k-1, or the start of time for k = 0).
func (t *Timeline) StepTime(k int) hardware.Microseconds {
	if k < 0 || k >= len(t.StepEnd) {
		panic(fmt.Sprintf("pipeline: step %d out of range [0,%d)", k, len(t.StepEnd)))
	}
	if k == 0 {
		return t.StepEnd[0]
	}
	return t.StepEnd[k] - t.StepEnd[k-1]
}

// EventsOfKind returns all events with the given work kind across devices,
// sorted by start time.
func (t *Timeline) EventsOfKind(kind WorkKind) []Event {
	var out []Event
	for d := 0; d < t.Devices; d++ {
		for _, e := range t.Events[d] {
			if e.Op.Kind == kind {
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// FindEvent locates the event executing a specific op (by predicate); it
// returns the zero Event and false when no event matches.
func (t *Timeline) FindEvent(match func(*Op) bool) (Event, bool) {
	for d := 0; d < t.Devices; d++ {
		for _, e := range t.Events[d] {
			if match(e.Op) {
				return e, true
			}
		}
	}
	return Event{}, false
}

func minUS(a, b hardware.Microseconds) hardware.Microseconds {
	if a < b {
		return a
	}
	return b
}
