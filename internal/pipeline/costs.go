package pipeline

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/hardware"
	"repro/internal/transport"
)

// StageCosts models the execution times of all work kinds for one pipeline
// stage, derived from the architecture, the number of transformer blocks
// per stage, the micro-batch size, and the device profile.
type StageCosts struct {
	// Forward and Backward are per micro-batch.
	Forward  hardware.Microseconds
	Backward hardware.Microseconds
	// CurvaturePerMicroBatch is the time to compute all Kronecker factors
	// of the stage for one micro-batch.
	CurvaturePerMicroBatch hardware.Microseconds
	// CurvatureUnits holds the per-factor curvature time for one
	// micro-batch, in the same order as InversionUnits. Factors alternate
	// A, B per K-FAC layer (A ready after forward, B after backward).
	CurvatureUnits []hardware.Microseconds
	// InversionUnits holds the time to invert each Kronecker factor of the
	// stage (the atomic units of inversion work / inversion parallelism).
	InversionUnits []hardware.Microseconds
	// Precondition is the per-step preconditioning time for the stage.
	Precondition hardware.Microseconds
	// OptStep is the per-step optimizer update time for the stage.
	OptStep hardware.Microseconds
	// SyncGrad and SyncCurvature are the per-step collective times when
	// data parallelism is enabled (0 otherwise).
	SyncGrad      hardware.Microseconds
	SyncCurvature hardware.Microseconds
}

// InversionTotal returns the summed inversion time of all factors.
func (c StageCosts) InversionTotal() hardware.Microseconds {
	var t hardware.Microseconds
	for _, u := range c.InversionUnits {
		t += u
	}
	return t
}

// CostConfig selects the workload whose stage costs are being modeled.
type CostConfig struct {
	// Arch is the transformer architecture.
	Arch arch.Transformer
	// BlocksPerStage is the number of transformer blocks per stage.
	BlocksPerStage int
	// MicroBatch is B_micro.
	MicroBatch int
	// GPU is the device profile.
	GPU hardware.GPU
	// DataParallelWidth is W (replicas per stage); 1 disables collectives.
	DataParallelWidth int
	// Interconnect models the collective fabric; zero value uses
	// hardware.DefaultInterconnect.
	Interconnect hardware.Interconnect
	// Transport selects the collective cost model: "" or "loopback" prices
	// sync-grad/sync-curvature with the flat alpha-beta all-reduce, "ring"
	// with the chunked chain model of the socket transport
	// (hardware.ChainAllReduceCost at the transport's default chunk size) —
	// so simulated schedules and the auto-tuner rank transports too.
	Transport string
	// Recompute enables activation recomputation: forward activations are
	// recomputed during backward, making backward cost fwd+bwd.
	Recompute bool
}

// CostsFor derives StageCosts from the configuration.
func CostsFor(cfg CostConfig) (StageCosts, error) {
	if cfg.BlocksPerStage <= 0 {
		return StageCosts{}, fmt.Errorf("pipeline: BlocksPerStage must be positive, got %d", cfg.BlocksPerStage)
	}
	if cfg.MicroBatch <= 0 {
		return StageCosts{}, fmt.Errorf("pipeline: MicroBatch must be positive, got %d", cfg.MicroBatch)
	}
	a, g := cfg.Arch, cfg.GPU
	blocks := float64(cfg.BlocksPerStage)
	ic := cfg.Interconnect
	if ic.Bandwidth == 0 {
		ic = hardware.DefaultInterconnect
	}

	fwdOp := hardware.Op{
		FLOPs:    a.BlockForwardFLOPs(cfg.MicroBatch) * blocks,
		Bytes:    (a.BlockActivationBytes(cfg.MicroBatch) + a.BlockParamBytes()) * blocks,
		Kernels:  8 * cfg.BlocksPerStage,
		GEMMLike: true,
	}
	bwdOp := hardware.Op{
		FLOPs:    a.BlockBackwardFLOPs(cfg.MicroBatch) * blocks,
		Bytes:    2 * (a.BlockActivationBytes(cfg.MicroBatch) + a.BlockParamBytes()) * blocks,
		Kernels:  12 * cfg.BlocksPerStage,
		GEMMLike: true,
	}
	costs := StageCosts{
		Forward:  g.Time(fwdOp),
		Backward: g.Time(bwdOp),
	}
	if cfg.Recompute {
		// Activation recomputation re-runs the forward inside backward.
		costs.Backward += costs.Forward
	}

	// One curvature unit per Kronecker factor per block per micro-batch
	// (U U^T costs 2·d²·tokens), and one inversion unit per factor
	// (Cholesky + cholesky_inverse, ~d³, not large-GEMM efficient).
	tokens := float64(cfg.MicroBatch) * float64(a.SeqLen)
	for b := 0; b < cfg.BlocksPerStage; b++ {
		for _, d := range a.FactorDims() {
			dd := float64(d)
			curvUnit := hardware.Op{
				FLOPs:    2 * dd * dd * tokens,
				Bytes:    (dd*dd + dd*tokens) * 4,
				Kernels:  1,
				GEMMLike: true,
			}
			ct := g.Time(curvUnit)
			costs.CurvatureUnits = append(costs.CurvatureUnits, ct)
			costs.CurvaturePerMicroBatch += ct
			invUnit := hardware.Op{
				FLOPs:    dd * dd * dd,
				Bytes:    3 * dd * dd * 4,
				Kernels:  2,
				GEMMLike: false,
			}
			costs.InversionUnits = append(costs.InversionUnits, g.Time(invUnit))
		}
	}

	precOp := hardware.Op{
		FLOPs:    a.BlockPreconditionFLOPs() * blocks,
		Bytes:    2 * a.BlockCurvatureBytes() * blocks,
		Kernels:  2 * len(a.KFACLayers()) * cfg.BlocksPerStage,
		GEMMLike: true,
	}
	costs.Precondition = g.Time(precOp)

	// Optimizer update: element-wise over parameters and state (~4 reads +
	// 2 writes of the parameter-sized buffers for Adam/LAMB).
	paramBytes := a.BlockParamBytes() * blocks
	costs.OptStep = g.Time(hardware.Op{
		FLOPs:   a.BlockParams() * blocks * 8,
		Bytes:   6 * paramBytes,
		Kernels: 4,
	})

	if cfg.DataParallelWidth > 1 {
		curvBytes := a.BlockCurvatureBytes() * blocks
		switch cfg.Transport {
		case "", "loopback":
			costs.SyncGrad = ic.AllReduceTime(paramBytes, cfg.DataParallelWidth)
			costs.SyncCurvature = ic.AllReduceTime(curvBytes, cfg.DataParallelWidth)
		case "ring":
			costs.SyncGrad = hardware.ChainAllReduceCost(int64(paramBytes), cfg.DataParallelWidth, ringChunks(paramBytes), ic)
			costs.SyncCurvature = hardware.ChainAllReduceCost(int64(curvBytes), cfg.DataParallelWidth, ringChunks(curvBytes), ic)
		default:
			return StageCosts{}, fmt.Errorf("pipeline: unknown collective transport %q (want loopback or ring)", cfg.Transport)
		}
	}
	return costs, nil
}

// ringChunks is the chunk count the ring transport would cut a payload of
// the given size into at its default chunk granularity.
func ringChunks(bytes float64) int {
	c := int(bytes / (8 * transport.DefaultChunkFloats))
	if c < 1 {
		c = 1
	}
	return c
}
