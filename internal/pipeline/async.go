package pipeline

import "fmt"

// BuildPipeDream lays out an asynchronous 1F1B schedule without pipeline
// flushes, in the style of PipeDream / PipeDream-2BW (Appendix C.1): after
// the initial warmup, every device alternates one forward and one backward
// indefinitely and updates its weights as soon as each micro-batch's
// backward completes, using weights up to D steps stale. Bubbles are almost
// non-existent, which is why the paper frames asynchronous pipelining as a
// competing "filling bubbles" approach — the bubbles are filled by forward
// and backward work on stale parameters rather than by K-FAC work.
//
// MicroBatches here is the total number of micro-batches simulated (the
// run's horizon), not a per-step count; Steps is ignored.
func BuildPipeDream(cfg BuildConfig) (*Schedule, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	d, n := cfg.Stages, cfg.MicroBatches
	if n < d {
		return nil, fmt.Errorf("pipeline: PipeDream needs at least D=%d micro-batches, got %d", d, n)
	}
	s := &Schedule{
		Name:         "PipeDream",
		Devices:      d,
		Stages:       d,
		MicroBatches: n,
		Steps:        1,
		Order:        make([][]int, d),
	}
	fid := make(map[[2]int]int) // (stage, micro)
	bid := make(map[[2]int]int)
	// Pass 1: all forwards in stage-ascending order.
	for stage := 0; stage < d; stage++ {
		for m := 0; m < n; m++ {
			op := &Op{
				Kind: Forward, Device: stage, Stage: stage, MicroBatch: m,
				Step: 0, Duration: cfg.Costs.Forward,
			}
			if stage > 0 {
				op.Deps = append(op.Deps, fid[[2]int{stage - 1, m}])
			}
			s.addOpDeferred(op)
			fid[[2]int{stage, m}] = op.ID
		}
	}
	// Pass 2: all backwards in stage-descending order.
	for stage := d - 1; stage >= 0; stage-- {
		for m := 0; m < n; m++ {
			op := &Op{
				Kind: Backward, Device: stage, Stage: stage, MicroBatch: m,
				Step: 0, Duration: cfg.Costs.Backward,
			}
			if stage < d-1 {
				op.Deps = append(op.Deps, bid[[2]int{stage + 1, m}])
			} else {
				op.Deps = append(op.Deps, fid[[2]int{stage, m}])
			}
			s.addOpDeferred(op)
			bid[[2]int{stage, m}] = op.ID
		}
	}
	// Device order: warmup of D-stage forwards, then strict 1F1B with NO
	// flush or cooldown barrier between "steps".
	for stage := 0; stage < d; stage++ {
		warmup := d - stage // one in-flight activation per downstream stage
		if warmup > n {
			warmup = n
		}
		for m := 0; m < warmup; m++ {
			s.Order[stage] = append(s.Order[stage], fid[[2]int{stage, m}])
		}
		fNext, bNext := warmup, 0
		for fNext < n || bNext < n {
			if bNext < n {
				s.Order[stage] = append(s.Order[stage], bid[[2]int{stage, bNext}])
				bNext++
			}
			if fNext < n {
				s.Order[stage] = append(s.Order[stage], fid[[2]int{stage, fNext}])
				fNext++
			}
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// WeightStaleness returns, for an asynchronous schedule, the maximum number
// of optimizer updates that can land between a micro-batch's forward and
// its backward on the given stage — the parameter-version lag m of
// Appendix C.1 (θ_{t+1} = θ_t − η g_{t−m}). For PipeDream's weight
// stashing, this equals the number of other micro-batches in flight at
// that stage; it is largest (D−1) at stage 0 and zero at the last stage.
func WeightStaleness(stage, stages int) int {
	lag := stages - 1 - stage
	if lag < 0 {
		return 0
	}
	return lag
}
