package pipeline

import (
	"fmt"
	"sort"

	"repro/internal/hardware"
)

// BuildConfig configures a schedule builder.
type BuildConfig struct {
	// Stages is the pipeline depth D.
	Stages int
	// MicroBatches is N_micro, the micro-batches per device per step (for
	// Chimera this is the total across both directions).
	MicroBatches int
	// Steps is the number of consecutive training steps to lay out.
	Steps int
	// Costs supplies the per-stage work durations (uniform stages, as the
	// paper assumes in §3.3).
	Costs StageCosts
	// DataParallelWidth is W, the number of data-parallel replicas: per
	// stage for GPipe and 1F1B, and whole bidirectional pipeline pairs
	// for Chimera (each pair carrying its own MicroBatches).
	DataParallelWidth int
	// IncludeOptimizerWork appends sync-grad (when W > 1) and the
	// optimizer update to each step, as in the paper's profiles.
	IncludeOptimizerWork bool
	// IncludePrecondition inserts the per-step K-FAC preconditioning work
	// between gradient synchronization and the optimizer update — "the
	// only computational overhead of PipeFisher over the standard pipeline
	// schemes" (Figure 1). Requires IncludeOptimizerWork.
	IncludePrecondition bool
}

func (c BuildConfig) normalize() (BuildConfig, error) {
	if c.Stages <= 0 {
		return c, fmt.Errorf("pipeline: Stages must be positive, got %d", c.Stages)
	}
	if c.MicroBatches <= 0 {
		return c, fmt.Errorf("pipeline: MicroBatches must be positive, got %d", c.MicroBatches)
	}
	if c.Steps <= 0 {
		c.Steps = 1
	}
	if c.DataParallelWidth <= 0 {
		c.DataParallelWidth = 1
	}
	if c.Costs.Forward <= 0 || c.Costs.Backward <= 0 {
		return c, fmt.Errorf("pipeline: Costs.Forward/Backward must be positive")
	}
	return c, nil
}

// BuildGPipe lays out the GPipe schedule (Huang et al., 2019): all forwards
// for the step's micro-batches, then all backwards in reverse order, with a
// pipeline flush between steps (Figure 1a).
func BuildGPipe(cfg BuildConfig) (*Schedule, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	return buildForwardBackward(cfg, "GPipe", gpipeOrder)
}

// Build1F1B lays out the one-forward-one-backward schedule (Narayanan et
// al., 2019, with flush): a warmup of forwards, a steady 1F1B phase, and a
// cooldown of backwards.
func Build1F1B(cfg BuildConfig) (*Schedule, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	return buildForwardBackward(cfg, "1F1B", oneFOneBOrder)
}

// phase describes one entry of a per-stage op order: forward or backward of
// a micro-batch.
type phase struct {
	kind  WorkKind
	micro int
}

// gpipeOrder returns the GPipe per-stage order: F0..F(N-1), B(N-1)..B0.
func gpipeOrder(stage, stages, n int) []phase {
	out := make([]phase, 0, 2*n)
	for m := 0; m < n; m++ {
		out = append(out, phase{Forward, m})
	}
	for m := n - 1; m >= 0; m-- {
		out = append(out, phase{Backward, m})
	}
	return out
}

// oneFOneBOrder returns the 1F1B per-stage order: warmup forwards, steady
// alternation, cooldown backwards.
func oneFOneBOrder(stage, stages, n int) []phase {
	warmup := stages - 1 - stage
	if warmup > n {
		warmup = n
	}
	out := make([]phase, 0, 2*n)
	for m := 0; m < warmup; m++ {
		out = append(out, phase{Forward, m})
	}
	for i := 0; i < n-warmup; i++ {
		out = append(out, phase{Forward, warmup + i})
		out = append(out, phase{Backward, i})
	}
	for m := n - warmup; m < n; m++ {
		out = append(out, phase{Backward, m})
	}
	return out
}

// buildForwardBackward lays out a unidirectional schedule with one stage
// per device (replicated W times for data parallelism) using the per-stage
// order function. Ops are created in dependency order (all forwards by
// ascending stage, then all backwards by descending stage) and the device
// execution order is assembled afterwards from the phase lists.
func buildForwardBackward(cfg BuildConfig, name string, order func(stage, stages, n int) []phase) (*Schedule, error) {
	d, n, w := cfg.Stages, cfg.MicroBatches, cfg.DataParallelWidth
	s := &Schedule{
		Name:         name,
		Devices:      d * w,
		Stages:       d,
		MicroBatches: n,
		Steps:        cfg.Steps,
		Order:        make([][]int, d*w),
	}
	fid := make(map[[4]int]int) // (step, replica, stage, micro)
	bid := make(map[[4]int]int)
	optID := make(map[[2]int]int)     // (step, device) -> optimizer op
	tailIDs := make(map[[2]int][]int) // (step, device) -> ordered tail ops

	for step := 0; step < cfg.Steps; step++ {
		// Pass 1: forwards, ascending stages (deps already exist).
		for r := 0; r < w; r++ {
			for stage := 0; stage < d; stage++ {
				for m := 0; m < n; m++ {
					op := &Op{
						Kind: Forward, Device: stage*w + r, Stage: stage, Replica: r,
						MicroBatch: m, Factor: -1, Step: step, Duration: cfg.Costs.Forward,
					}
					if stage > 0 {
						op.Deps = append(op.Deps, fid[[4]int{step, r, stage - 1, m}])
					}
					if prev, ok := optID[[2]int{step - 1, stage*w + r}]; ok {
						op.Deps = append(op.Deps, prev)
					}
					s.addOpDeferred(op)
					fid[[4]int{step, r, stage, m}] = op.ID
				}
			}
		}
		// Pass 2: backwards, descending stages.
		for r := 0; r < w; r++ {
			for stage := d - 1; stage >= 0; stage-- {
				for m := 0; m < n; m++ {
					op := &Op{
						Kind: Backward, Device: stage*w + r, Stage: stage, Replica: r,
						MicroBatch: m, Factor: -1, Step: step, Duration: cfg.Costs.Backward,
					}
					if stage < d-1 {
						op.Deps = append(op.Deps, bid[[4]int{step, r, stage + 1, m}])
					} else {
						op.Deps = append(op.Deps, fid[[4]int{step, r, stage, m}])
					}
					s.addOpDeferred(op)
					bid[[4]int{step, r, stage, m}] = op.ID
				}
			}
		}
		// Pass 3: step tail (sync-grad for W > 1, optimizer update).
		if cfg.IncludeOptimizerWork {
			for r := 0; r < w; r++ {
				for stage := 0; stage < d; stage++ {
					dev := stage*w + r
					key := [2]int{step, dev}
					var deps []int
					if w > 1 {
						for rr := 0; rr < w; rr++ {
							for m := 0; m < n; m++ {
								deps = append(deps, bid[[4]int{step, rr, stage, m}])
							}
						}
						sync := &Op{
							Kind: SyncGrad, Device: dev, Stage: stage, Replica: r, MicroBatch: -1,
							Factor: -1, Step: step, Duration: maxDur(cfg.Costs.SyncGrad, 1), Deps: deps,
						}
						s.addOpDeferred(sync)
						tailIDs[key] = append(tailIDs[key], sync.ID)
						deps = []int{sync.ID}
					} else {
						for m := 0; m < n; m++ {
							deps = append(deps, bid[[4]int{step, r, stage, m}])
						}
					}
					if cfg.IncludePrecondition {
						prec := &Op{
							Kind: Precondition, Device: dev, Stage: stage, Replica: r, MicroBatch: -1,
							Factor: -1, Step: step, Duration: maxDur(cfg.Costs.Precondition, 1), Deps: deps,
						}
						s.addOpDeferred(prec)
						tailIDs[key] = append(tailIDs[key], prec.ID)
						deps = []int{prec.ID}
					}
					opt := &Op{
						Kind: OptStep, Device: dev, Stage: stage, Replica: r, MicroBatch: -1,
						Factor: -1, Step: step, Duration: maxDur(cfg.Costs.OptStep, 1), Deps: deps,
					}
					s.addOpDeferred(opt)
					tailIDs[key] = append(tailIDs[key], opt.ID)
					optID[key] = opt.ID
				}
			}
		}
	}
	// Assemble device orders from the phase lists.
	for step := 0; step < cfg.Steps; step++ {
		for r := 0; r < w; r++ {
			for stage := 0; stage < d; stage++ {
				dev := stage*w + r
				for _, ph := range order(stage, d, n) {
					key := [4]int{step, r, stage, ph.micro}
					if ph.kind == Forward {
						s.Order[dev] = append(s.Order[dev], fid[key])
					} else {
						s.Order[dev] = append(s.Order[dev], bid[key])
					}
				}
				if cfg.IncludeOptimizerWork {
					s.Order[dev] = append(s.Order[dev], tailIDs[[2]int{step, dev}]...)
				}
			}
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// BuildChimera lays out the Chimera schedule (Li & Hoefler, 2021) with two
// bidirectional pipelines: the down pipeline maps stage s to device s, the
// up pipeline maps stage s to device D-1-s, and each direction carries N/2
// micro-batches. With DataParallelWidth W > 1 the whole bidirectional pair
// is replicated W times (replica r occupies devices [r*D, (r+1)*D)), each
// replica carrying its own N micro-batches, with a cross-replica sync-grad
// in the step tail. Per-device op orders are derived by critical-path list
// scheduling over the dependency graph, which reproduces Chimera's
// interleaving for uniform stages.
func BuildChimera(cfg BuildConfig) (*Schedule, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	d, n, w := cfg.Stages, cfg.MicroBatches, cfg.DataParallelWidth
	if d%2 != 0 {
		return nil, fmt.Errorf("pipeline: Chimera requires an even number of stages, got %d", d)
	}
	if n%2 != 0 {
		return nil, fmt.Errorf("pipeline: Chimera requires an even number of micro-batches, got %d", n)
	}
	half := n / 2
	s := &Schedule{
		Name:         "Chimera",
		Devices:      d * w,
		Stages:       d,
		MicroBatches: n,
		Steps:        cfg.Steps,
		Order:        make([][]int, d*w),
	}
	deviceOf := func(r, pipe, stage int) int {
		if pipe == 0 {
			return r*d + stage
		}
		return r*d + d - 1 - stage
	}
	fid := make(map[[5]int]int) // (step, replica, pipe, stage, micro index within pipe)
	bid := make(map[[5]int]int)
	// prevTail[dev] is the op every op of the next step on dev must follow
	// (the optimizer update, or the step's last backward without one).
	prevTail := make([]int, d*w)
	for i := range prevTail {
		prevTail[i] = -1
	}

	for step := 0; step < cfg.Steps; step++ {
		for r := 0; r < w; r++ {
			for pipe := 0; pipe < 2; pipe++ {
				for stage := 0; stage < d; stage++ {
					for m := 0; m < half; m++ {
						f := &Op{
							Kind: Forward, Device: deviceOf(r, pipe, stage), Stage: stage, Replica: r,
							MicroBatch: pipe*half + m, Factor: -1, Step: step, Pipeline: pipe,
							Duration: cfg.Costs.Forward,
						}
						if stage > 0 {
							f.Deps = append(f.Deps, fid[[5]int{step, r, pipe, stage - 1, m}])
						}
						if prevTail[f.Device] >= 0 {
							f.Deps = append(f.Deps, prevTail[f.Device])
						}
						s.addOpDeferred(f)
						fid[[5]int{step, r, pipe, stage, m}] = f.ID
					}
				}
				for stage := d - 1; stage >= 0; stage-- {
					for m := 0; m < half; m++ {
						b := &Op{
							Kind: Backward, Device: deviceOf(r, pipe, stage), Stage: stage, Replica: r,
							MicroBatch: pipe*half + m, Factor: -1, Step: step, Pipeline: pipe,
							Duration: cfg.Costs.Backward,
						}
						if stage < d-1 {
							b.Deps = append(b.Deps, bid[[5]int{step, r, pipe, stage + 1, m}])
						} else {
							b.Deps = append(b.Deps, fid[[5]int{step, r, pipe, stage, m}])
						}
						if prevTail[b.Device] >= 0 {
							b.Deps = append(b.Deps, prevTail[b.Device])
						}
						s.addOpDeferred(b)
						bid[[5]int{step, r, pipe, stage, m}] = b.ID
					}
				}
			}
		}
		for dev := 0; dev < d*w; dev++ {
			tailID := chimeraDeviceTail(s, cfg, step, dev, bid)
			prevTail[dev] = tailID
		}
	}
	if err := s.finalizeOrders(); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// chimeraDeviceTail appends the end-of-step work for one device and returns
// the op ID the next step must wait for. Each stage of Chimera is held by a
// device pair (one per direction) in every replica, so with optimizer work
// enabled a sync-grad all-reduce couples the whole group — the pair, times
// the W replicas — before the update (§3.2).
func chimeraDeviceTail(s *Schedule, cfg BuildConfig, step, dev int, bid map[[5]int]int) int {
	d, n, w := cfg.Stages, cfg.MicroBatches, cfg.DataParallelWidth
	half := n / 2
	replica := dev / d
	downStage := dev % d
	upStage := d - 1 - dev%d
	var deps []int
	for r := 0; r < w; r++ {
		for pipe := 0; pipe < 2; pipe++ {
			for _, stage := range []int{downStage, upStage} {
				for m := 0; m < half; m++ {
					if id, ok := bid[[5]int{step, r, pipe, stage, m}]; ok {
						deps = append(deps, id)
					}
				}
			}
		}
	}
	deps = dedup(deps)
	if !cfg.IncludeOptimizerWork {
		// The next step still flushes: wait on this device's own stages'
		// backwards. Return a marker using the last of them.
		last := -1
		for _, id := range deps {
			if s.Ops[id].Device == dev && id > last {
				last = id
			}
		}
		return last
	}
	sync := &Op{
		Kind: SyncGrad, Device: dev, Stage: downStage, Replica: replica, MicroBatch: -1,
		Factor: -1, Step: step, Duration: maxDur(2*cfg.Costs.SyncGrad, 1), Deps: deps,
	}
	s.addOpDeferred(sync)
	optDeps := []int{sync.ID}
	if cfg.IncludePrecondition {
		// The device preconditions both stages it hosts.
		prec := &Op{
			Kind: Precondition, Device: dev, Stage: downStage, Replica: replica, MicroBatch: -1,
			Factor: -1, Step: step, Duration: maxDur(2*cfg.Costs.Precondition, 1), Deps: optDeps,
		}
		s.addOpDeferred(prec)
		optDeps = []int{prec.ID}
	}
	opt := &Op{
		Kind: OptStep, Device: dev, Stage: downStage, Replica: replica, MicroBatch: -1,
		Factor: -1, Step: step, Duration: maxDur(2*cfg.Costs.OptStep, 1), Deps: optDeps,
	}
	s.addOpDeferred(opt)
	return opt.ID
}

// finalizeOrders assigns per-device op orders for schedules built with
// addOpDeferred, using critical-path list scheduling: when a device is
// free, the ready op with the earliest feasible start runs first, breaking
// ties by the longest remaining dependency path.
func (s *Schedule) finalizeOrders() error {
	nOps := len(s.Ops)
	succ := make([][]int, nOps)
	indeg := make([]int, nOps)
	for _, op := range s.Ops {
		op.Deps = dedup(op.Deps)
		for _, dep := range op.Deps {
			succ[dep] = append(succ[dep], op.ID)
			indeg[op.ID]++
		}
	}
	topo := topoOrder(s.Ops, succ, indeg)
	if topo == nil {
		return fmt.Errorf("pipeline: dependency cycle detected")
	}
	prio := make([]int64, nOps)
	for i := len(topo) - 1; i >= 0; i-- {
		id := topo[i]
		var best int64
		for _, nx := range succ[id] {
			if prio[nx] > best {
				best = prio[nx]
			}
		}
		prio[id] = best + int64(s.Ops[id].Duration)
	}
	remaining := make([]int, nOps)
	copy(remaining, indeg)
	ready := make([][]int, s.Devices)
	for _, op := range s.Ops {
		if remaining[op.ID] == 0 {
			ready[op.Device] = append(ready[op.Device], op.ID)
		}
	}
	endTime := make([]int64, nOps)
	devFree := make([]int64, s.Devices)
	scheduled := 0
	for scheduled < nOps {
		progressed := false
		for dev := 0; dev < s.Devices; dev++ {
			if len(ready[dev]) == 0 {
				continue
			}
			sort.SliceStable(ready[dev], func(i, j int) bool {
				a, b := ready[dev][i], ready[dev][j]
				sa := max64(depsEnd(s.Ops[a], endTime), devFree[dev])
				sb := max64(depsEnd(s.Ops[b], endTime), devFree[dev])
				if sa != sb {
					return sa < sb
				}
				if prio[a] != prio[b] {
					return prio[a] > prio[b]
				}
				return a < b
			})
			id := ready[dev][0]
			ready[dev] = ready[dev][1:]
			op := s.Ops[id]
			start := max64(devFree[dev], depsEnd(op, endTime))
			endTime[id] = start + int64(op.Duration)
			devFree[dev] = endTime[id]
			s.Order[dev] = append(s.Order[dev], id)
			scheduled++
			progressed = true
			for _, nx := range succ[id] {
				remaining[nx]--
				if remaining[nx] == 0 {
					ready[s.Ops[nx].Device] = append(ready[s.Ops[nx].Device], nx)
				}
			}
		}
		if !progressed {
			return fmt.Errorf("pipeline: list scheduling stalled (%d/%d ops)", scheduled, nOps)
		}
	}
	return nil
}

// addOpDeferred registers an op whose per-device order is decided later by
// finalizeOrders.
func (s *Schedule) addOpDeferred(op *Op) {
	op.ID = len(s.Ops)
	s.Ops = append(s.Ops, op)
}

func depsEnd(op *Op, endTime []int64) int64 {
	var mx int64
	for _, dep := range op.Deps {
		if endTime[dep] > mx {
			mx = endTime[dep]
		}
	}
	return mx
}

func topoOrder(ops []*Op, succ [][]int, indeg []int) []int {
	deg := make([]int, len(ops))
	copy(deg, indeg)
	var queue, order []int
	for i := range ops {
		if deg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, nx := range succ[id] {
			deg[nx]--
			if deg[nx] == 0 {
				queue = append(queue, nx)
			}
		}
	}
	if len(order) != len(ops) {
		return nil
	}
	return order
}

func dedup(ids []int) []int {
	seen := make(map[int]bool, len(ids))
	var out []int
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func maxDur(a, b hardware.Microseconds) hardware.Microseconds {
	if a > b {
		return a
	}
	return b
}
