package pipeline

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/hardware"
)

// unitCosts returns simple costs: forward 10, backward 20 (the 2x ratio the
// paper's profiles show), everything else small.
func unitCosts() StageCosts {
	return StageCosts{
		Forward:                10,
		Backward:               20,
		CurvaturePerMicroBatch: 5,
		InversionUnits:         []hardware.Microseconds{8, 8},
		Precondition:           3,
		OptStep:                2,
	}
}

func TestBuildGPipeStructure(t *testing.T) {
	s, err := BuildGPipe(BuildConfig{Stages: 4, MicroBatches: 4, Steps: 1, Costs: unitCosts()})
	if err != nil {
		t.Fatal(err)
	}
	if s.Devices != 4 || len(s.Ops) != 4*4*2 {
		t.Fatalf("GPipe: devices %d ops %d, want 4 and 32", s.Devices, len(s.Ops))
	}
	// Device 0 order: F0..F3 then B3..B0.
	order := s.Order[0]
	for i := 0; i < 4; i++ {
		if op := s.Ops[order[i]]; op.Kind != Forward || op.MicroBatch != i {
			t.Fatalf("GPipe device 0 position %d: got %s", i, op.Label())
		}
	}
	for i := 0; i < 4; i++ {
		if op := s.Ops[order[4+i]]; op.Kind != Backward || op.MicroBatch != 3-i {
			t.Fatalf("GPipe device 0 position %d: got %s", 4+i, op.Label())
		}
	}
}

func TestBuild1F1BStructure(t *testing.T) {
	s, err := Build1F1B(BuildConfig{Stages: 4, MicroBatches: 4, Steps: 1, Costs: unitCosts()})
	if err != nil {
		t.Fatal(err)
	}
	// Last stage alternates F,B from the start.
	order := s.Order[3]
	want := []struct {
		kind  WorkKind
		micro int
	}{{Forward, 0}, {Backward, 0}, {Forward, 1}, {Backward, 1}}
	for i, w := range want {
		op := s.Ops[order[i]]
		if op.Kind != w.kind || op.MicroBatch != w.micro {
			t.Fatalf("1F1B last stage position %d: got %s", i, op.Label())
		}
	}
}

func TestGPipeMakespanMatchesTheory(t *testing.T) {
	// With N_micro = D, GPipe's critical path has Cf = Cb = 2D-1 (Table 1):
	// makespan = (2D-1)(Tf + Tb).
	costs := unitCosts()
	for _, d := range []int{2, 4, 8} {
		s, err := BuildGPipe(BuildConfig{Stages: d, MicroBatches: d, Steps: 1, Costs: costs})
		if err != nil {
			t.Fatal(err)
		}
		tl, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		want := hardware.Microseconds(2*d-1) * (costs.Forward + costs.Backward)
		if tl.Makespan != want {
			t.Fatalf("D=%d: GPipe makespan %d, want %d", d, tl.Makespan, want)
		}
	}
}

func Test1F1BMakespanMatchesTheory(t *testing.T) {
	// 1F1B with flush has the same critical path as GPipe when N = D.
	costs := unitCosts()
	for _, d := range []int{2, 4, 8} {
		s, err := Build1F1B(BuildConfig{Stages: d, MicroBatches: d, Steps: 1, Costs: costs})
		if err != nil {
			t.Fatal(err)
		}
		tl, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		want := hardware.Microseconds(2*d-1) * (costs.Forward + costs.Backward)
		if tl.Makespan != want {
			t.Fatalf("D=%d: 1F1B makespan %d, want %d", d, tl.Makespan, want)
		}
	}
}

func TestChimeraMakespanBeatsGPipe(t *testing.T) {
	// Chimera's bidirectional pipelines have Cf = D, Cb = 2D-2 (Table 1):
	// strictly less than GPipe's 2D-1 each, so the step is shorter.
	costs := unitCosts()
	for _, d := range []int{4, 8} {
		g, err := BuildGPipe(BuildConfig{Stages: d, MicroBatches: d, Steps: 1, Costs: costs})
		if err != nil {
			t.Fatal(err)
		}
		c, err := BuildChimera(BuildConfig{Stages: d, MicroBatches: d, Steps: 1, Costs: costs})
		if err != nil {
			t.Fatal(err)
		}
		gt, err := Run(g)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if ct.Makespan >= gt.Makespan {
			t.Fatalf("D=%d: Chimera makespan %d must beat GPipe %d", d, ct.Makespan, gt.Makespan)
		}
		// And it should be within 25%% of the theoretical
		// D*Tf + (2D-2)*Tb critical path.
		theory := hardware.Microseconds(d)*costs.Forward + hardware.Microseconds(2*d-2)*costs.Backward
		if ct.Makespan < theory || float64(ct.Makespan) > 1.25*float64(theory) {
			t.Fatalf("D=%d: Chimera makespan %d outside [%d, 1.25*%d]", d, ct.Makespan, theory, theory)
		}
	}
}

func TestChimeraUtilizationExceedsGPipe(t *testing.T) {
	costs := unitCosts()
	g, _ := BuildGPipe(BuildConfig{Stages: 8, MicroBatches: 8, Steps: 1, Costs: costs})
	c, _ := BuildChimera(BuildConfig{Stages: 8, MicroBatches: 8, Steps: 1, Costs: costs})
	gt, err := Run(g)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Utilization() <= gt.Utilization() {
		t.Fatalf("Chimera util %.3f must exceed GPipe %.3f", ct.Utilization(), gt.Utilization())
	}
}

func TestRunRespectsDependencies(t *testing.T) {
	s, err := BuildGPipe(BuildConfig{Stages: 4, MicroBatches: 4, Steps: 2, Costs: unitCosts()})
	if err != nil {
		t.Fatal(err)
	}
	tl, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	// Check every dependency is respected.
	end := make(map[int]hardware.Microseconds)
	start := make(map[int]hardware.Microseconds)
	for d := 0; d < tl.Devices; d++ {
		for _, e := range tl.Events[d] {
			end[e.Op.ID] = e.End
			start[e.Op.ID] = e.Start
		}
	}
	for _, op := range s.Ops {
		for _, dep := range op.Deps {
			if start[op.ID] < end[dep] {
				t.Fatalf("op %d starts at %d before dep %d ends at %d", op.ID, start[op.ID], dep, end[dep])
			}
		}
	}
}

func TestNoDeviceOverlap(t *testing.T) {
	for _, build := range []func(BuildConfig) (*Schedule, error){BuildGPipe, Build1F1B, BuildChimera} {
		s, err := build(BuildConfig{Stages: 4, MicroBatches: 4, Steps: 2, Costs: unitCosts(), IncludeOptimizerWork: true})
		if err != nil {
			t.Fatal(err)
		}
		tl, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		for d := 0; d < tl.Devices; d++ {
			for i := 1; i < len(tl.Events[d]); i++ {
				if tl.Events[d][i].Start < tl.Events[d][i-1].End {
					t.Fatalf("%s: device %d events overlap", s.Name, d)
				}
			}
		}
	}
}

func TestGapsPartitionTimeline(t *testing.T) {
	s, err := BuildGPipe(BuildConfig{Stages: 4, MicroBatches: 4, Steps: 1, Costs: unitCosts()})
	if err != nil {
		t.Fatal(err)
	}
	tl, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < tl.Devices; d++ {
		var idle hardware.Microseconds
		for _, g := range tl.Gaps(d, 0, tl.Makespan) {
			if g.End <= g.Start {
				t.Fatalf("degenerate gap %+v", g)
			}
			idle += g.Duration()
		}
		if idle+tl.BusyTime(d) != tl.Makespan {
			t.Fatalf("device %d: busy %d + idle %d != makespan %d", d, tl.BusyTime(d), idle, tl.Makespan)
		}
	}
}

func TestGPipeBubbleFraction(t *testing.T) {
	// GPipe bubble fraction with N = D and Tb = 2Tf is
	// (D-1)/(N+D-1) = (D-1)/(2D-1) of each device's window.
	costs := unitCosts()
	d := 4
	s, _ := BuildGPipe(BuildConfig{Stages: d, MicroBatches: d, Steps: 1, Costs: costs})
	tl, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	busyWant := hardware.Microseconds(d) * (costs.Forward + costs.Backward)
	for dev := 0; dev < d; dev++ {
		if tl.BusyTime(dev) != busyWant {
			t.Fatalf("device %d busy %d, want %d", dev, tl.BusyTime(dev), busyWant)
		}
	}
	wantUtil := float64(d) / float64(2*d-1)
	if got := tl.Utilization(); got < wantUtil-1e-9 || got > wantUtil+1e-9 {
		t.Fatalf("GPipe util %.4f, want %.4f", got, wantUtil)
	}
}

func TestMultiStepStepTimes(t *testing.T) {
	s, err := BuildGPipe(BuildConfig{Stages: 4, MicroBatches: 4, Steps: 3, Costs: unitCosts(), IncludeOptimizerWork: true})
	if err != nil {
		t.Fatal(err)
	}
	tl, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.StepEnd) != 3 {
		t.Fatalf("expected 3 step ends, got %d", len(tl.StepEnd))
	}
	// Steady-state steps have equal duration.
	if tl.StepTime(1) != tl.StepTime(2) {
		t.Fatalf("steady steps differ: %d vs %d", tl.StepTime(1), tl.StepTime(2))
	}
}

func TestDataParallelWidthCreatesReplicas(t *testing.T) {
	costs := unitCosts()
	costs.SyncGrad = 4
	s, err := BuildGPipe(BuildConfig{
		Stages: 4, MicroBatches: 4, Steps: 1, Costs: costs,
		DataParallelWidth: 2, IncludeOptimizerWork: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Devices != 8 {
		t.Fatalf("W=2 must double devices, got %d", s.Devices)
	}
	tl, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	syncs := tl.EventsOfKind(SyncGrad)
	if len(syncs) != 8 {
		t.Fatalf("expected 8 sync-grad events, got %d", len(syncs))
	}
	// Sync must start only after both replicas of the stage finished all
	// backwards.
	for _, sy := range syncs {
		stage := sy.Op.Stage
		for d := 0; d < tl.Devices; d++ {
			for _, e := range tl.Events[d] {
				if e.Op.Kind == Backward && e.Op.Stage == stage && sy.Start < e.End {
					t.Fatalf("sync-grad of stage %d starts before a backward ends", stage)
				}
			}
		}
	}
}

func TestChimeraRequiresEvenStagesAndMicroBatches(t *testing.T) {
	if _, err := BuildChimera(BuildConfig{Stages: 3, MicroBatches: 4, Costs: unitCosts()}); err == nil {
		t.Fatal("expected error for odd stages")
	}
	if _, err := BuildChimera(BuildConfig{Stages: 4, MicroBatches: 3, Costs: unitCosts()}); err == nil {
		t.Fatal("expected error for odd micro-batches")
	}
}

func TestBuildConfigValidation(t *testing.T) {
	if _, err := BuildGPipe(BuildConfig{Stages: 0, MicroBatches: 4, Costs: unitCosts()}); err == nil {
		t.Fatal("expected error for zero stages")
	}
	if _, err := BuildGPipe(BuildConfig{Stages: 4, MicroBatches: 0, Costs: unitCosts()}); err == nil {
		t.Fatal("expected error for zero micro-batches")
	}
	if _, err := BuildGPipe(BuildConfig{Stages: 4, MicroBatches: 4}); err == nil {
		t.Fatal("expected error for zero costs")
	}
}

func TestCostsForBERTBaseP100(t *testing.T) {
	costs, err := CostsFor(CostConfig{
		Arch: arch.BERTBase, BlocksPerStage: 3, MicroBatch: 32, GPU: hardware.P100,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Shape constraints from the paper's profiles (Figure 3): backward
	// about 2x forward; curvature comparable to forward; inversion
	// independent of micro-batch; precondition small relative to a step.
	ratio := float64(costs.Backward) / float64(costs.Forward)
	if ratio < 1.7 || ratio > 2.5 {
		t.Fatalf("backward/forward ratio %.2f outside [1.7, 2.5]", ratio)
	}
	if costs.CurvaturePerMicroBatch <= 0 || costs.Precondition <= 0 {
		t.Fatal("curvature and precondition must be positive")
	}
	if len(costs.InversionUnits) != 3*12 {
		t.Fatalf("expected 36 inversion units (12 factors x 3 blocks), got %d", len(costs.InversionUnits))
	}
	// The profiled step time regime: forward for 3 BERT-Base blocks at
	// B_micro=32, S=128 on P100 is tens of milliseconds.
	if costs.Forward < 10_000 || costs.Forward > 120_000 {
		t.Fatalf("forward %d us outside plausible P100 range", costs.Forward)
	}
}

func TestCostsForInversionIndependentOfMicroBatch(t *testing.T) {
	c8, err := CostsFor(CostConfig{Arch: arch.BERTBase, BlocksPerStage: 1, MicroBatch: 8, GPU: hardware.P100})
	if err != nil {
		t.Fatal(err)
	}
	c64, err := CostsFor(CostConfig{Arch: arch.BERTBase, BlocksPerStage: 1, MicroBatch: 64, GPU: hardware.P100})
	if err != nil {
		t.Fatal(err)
	}
	if c8.InversionTotal() != c64.InversionTotal() {
		t.Fatal("inversion time must not depend on micro-batch size")
	}
	if c64.CurvaturePerMicroBatch <= c8.CurvaturePerMicroBatch {
		t.Fatal("curvature time must grow with micro-batch size")
	}
}

func TestCostsForRecompute(t *testing.T) {
	plain, err := CostsFor(CostConfig{Arch: arch.BERTBase, BlocksPerStage: 1, MicroBatch: 8, GPU: hardware.P100})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := CostsFor(CostConfig{Arch: arch.BERTBase, BlocksPerStage: 1, MicroBatch: 8, GPU: hardware.P100, Recompute: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Backward != plain.Backward+plain.Forward {
		t.Fatalf("recompute backward %d, want %d", rec.Backward, plain.Backward+plain.Forward)
	}
}

func TestCostsForValidation(t *testing.T) {
	if _, err := CostsFor(CostConfig{Arch: arch.BERTBase, BlocksPerStage: 0, MicroBatch: 8, GPU: hardware.P100}); err == nil {
		t.Fatal("expected error for zero blocks per stage")
	}
	if _, err := CostsFor(CostConfig{Arch: arch.BERTBase, BlocksPerStage: 1, MicroBatch: 0, GPU: hardware.P100}); err == nil {
		t.Fatal("expected error for zero micro-batch")
	}
}

func TestCostsForDataParallelCollectives(t *testing.T) {
	single, _ := CostsFor(CostConfig{Arch: arch.BERTBase, BlocksPerStage: 3, MicroBatch: 32, GPU: hardware.P100})
	if single.SyncGrad != 0 || single.SyncCurvature != 0 {
		t.Fatal("W=1 must have zero collective costs")
	}
	dp, _ := CostsFor(CostConfig{Arch: arch.BERTBase, BlocksPerStage: 3, MicroBatch: 32, GPU: hardware.P100, DataParallelWidth: 2})
	if dp.SyncGrad <= 0 || dp.SyncCurvature <= 0 {
		t.Fatal("W=2 must have positive collective costs")
	}
}

// Property: for any valid (D, N), GPipe and 1F1B have identical makespan
// with N >= 1 (same flush critical path), and utilization is in (0, 1].
func TestSchedulePropertyInvariants(t *testing.T) {
	f := func(dRaw, nRaw uint8) bool {
		d := 2 + int(dRaw%6)
		n := 1 + int(nRaw%8)
		costs := unitCosts()
		g, err := BuildGPipe(BuildConfig{Stages: d, MicroBatches: n, Steps: 1, Costs: costs})
		if err != nil {
			return false
		}
		o, err := Build1F1B(BuildConfig{Stages: d, MicroBatches: n, Steps: 1, Costs: costs})
		if err != nil {
			return false
		}
		gt, err := Run(g)
		if err != nil {
			return false
		}
		ot, err := Run(o)
		if err != nil {
			return false
		}
		if gt.Makespan != ot.Makespan {
			return false
		}
		u := gt.Utilization()
		return u > 0 && u <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Chimera timelines respect all dependencies for random sizes.
func TestChimeraDependencyProperty(t *testing.T) {
	f := func(dRaw, nRaw uint8) bool {
		d := 2 * (1 + int(dRaw%4)) // 2,4,6,8
		n := 2 * (1 + int(nRaw%4))
		s, err := BuildChimera(BuildConfig{Stages: d, MicroBatches: n, Steps: 2, Costs: unitCosts(), IncludeOptimizerWork: true})
		if err != nil {
			return false
		}
		tl, err := Run(s)
		if err != nil {
			return false
		}
		end := make(map[int]hardware.Microseconds)
		start := make(map[int]hardware.Microseconds)
		for dev := 0; dev < tl.Devices; dev++ {
			for _, e := range tl.Events[dev] {
				end[e.Op.ID] = e.End
				start[e.Op.ID] = e.Start
			}
		}
		for _, op := range s.Ops {
			for _, dep := range op.Deps {
				if start[op.ID] < end[dep] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestChimeraDataParallelWidthReplicatesPairs(t *testing.T) {
	// W = 2 Chimera replicates the whole bidirectional pair: 2*D devices,
	// each replica carrying its own N micro-batches, coupled by a
	// cross-replica sync-grad in the step tail.
	costs := unitCosts()
	costs.SyncGrad = 4
	s, err := BuildChimera(BuildConfig{
		Stages: 4, MicroBatches: 4, Steps: 1, Costs: costs,
		DataParallelWidth: 2, IncludeOptimizerWork: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Devices != 8 {
		t.Fatalf("W=2 Chimera must double devices, got %d", s.Devices)
	}
	tl, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	// Replica r occupies devices [r*D, (r+1)*D); every op is tagged.
	for d := 0; d < tl.Devices; d++ {
		for _, e := range tl.Events[d] {
			if e.Op.Replica != d/4 {
				t.Fatalf("device %d event %s tagged replica %d, want %d", d, e.Op.Label(), e.Op.Replica, d/4)
			}
		}
	}
	// The sync-grad of any device starts only after every replica's
	// backwards of the device's two stages finished.
	syncs := tl.EventsOfKind(SyncGrad)
	if len(syncs) != 8 {
		t.Fatalf("expected 8 sync-grad events, got %d", len(syncs))
	}
	for _, sy := range syncs {
		stages := map[int]bool{sy.Op.Stage: true, 3 - sy.Op.Stage: true}
		for d := 0; d < tl.Devices; d++ {
			for _, e := range tl.Events[d] {
				if e.Op.Kind == Backward && stages[e.Op.Stage] && sy.Start < e.End {
					t.Fatalf("sync-grad of stage %d starts before a replica-%d backward of stage %d ends",
						sy.Op.Stage, e.Op.Replica, e.Op.Stage)
				}
			}
		}
	}
	// A replica's forward/backward dataflow stays within the replica: the
	// W=1 schedule shape is preserved per replica (same per-replica op
	// count).
	perReplica := map[int]int{}
	for _, op := range s.Ops {
		if op.Kind == Forward || op.Kind == Backward {
			perReplica[op.Replica]++
		}
	}
	if perReplica[0] != perReplica[1] || perReplica[0] != 2*4*4 {
		t.Fatalf("per-replica F/B op counts %v, want 32 each", perReplica)
	}
}
