package pipeline

import (
	"fmt"
	"testing"

	"repro/internal/arch"
	"repro/internal/hardware"
)

func BenchmarkBuildAndRun(b *testing.B) {
	costs := unitCosts()
	builders := map[string]func(BuildConfig) (*Schedule, error){
		"gpipe":     BuildGPipe,
		"1f1b":      Build1F1B,
		"chimera":   BuildChimera,
		"pipedream": BuildPipeDream,
	}
	for name, build := range builders {
		for _, d := range []int{4, 16} {
			n := d
			if name == "pipedream" {
				n = 4 * d
			}
			b.Run(fmt.Sprintf("%s/D=%d", name, d), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					s, err := build(BuildConfig{Stages: d, MicroBatches: n, Steps: 2, Costs: costs})
					if err != nil {
						b.Fatal(err)
					}
					if _, err := Run(s); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkCostsFor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := CostsFor(CostConfig{
			Arch: arch.BERTLarge, BlocksPerStage: 3, MicroBatch: 32,
			GPU: hardware.P100, DataParallelWidth: 2,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGapExtraction(b *testing.B) {
	s, err := BuildGPipe(BuildConfig{Stages: 8, MicroBatches: 8, Steps: 4, Costs: unitCosts()})
	if err != nil {
		b.Fatal(err)
	}
	tl, err := Run(s)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for d := 0; d < tl.Devices; d++ {
			tl.Gaps(d, 0, tl.Makespan)
		}
	}
}
