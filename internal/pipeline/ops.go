// Package pipeline is a discrete-event simulator for synchronous
// pipeline-parallel training schedules: GPipe, 1F1B, and Chimera, with
// optional data parallelism. It substitutes for the paper's GPU cluster:
// the same dependency structure (stage order for forwards, reverse order
// for backwards, micro-batch queues per device, bidirectional pipelines for
// Chimera) is executed over modeled durations, producing per-device
// timelines whose gaps are exactly the pipeline bubbles PipeFisher fills.
package pipeline

import (
	"fmt"

	"repro/internal/hardware"
)

// WorkKind enumerates the kinds of work that occupy accelerator time,
// matching the legend of Figures 1, 3 and 4.
type WorkKind int

// Work kinds in figure-legend order.
const (
	Forward WorkKind = iota
	Backward
	Curvature
	Inversion
	Precondition
	SyncGrad
	SyncCurvature
	OptStep
	// Recompute is the activation-recomputation portion of a backward pass
	// (the paper's "R" configuration). The timing builders fold it into
	// Backward durations; the real execution engine records it as its own
	// events so executed timelines show where recomputation time goes.
	Recompute
	// Degraded is a zero-duration marker event the execution engine emits
	// when a refresh round's K-FAC work fails past its retry budget and the
	// round falls back to stale inverses or unpreconditioned SGD (the
	// paper's §3.1 staleness rule extended across failures). Schedules
	// never contain Degraded ops; only executed timelines do.
	Degraded
	// Membership is a zero-duration marker event the execution engine
	// emits on the first round after an elastic membership change (a rank
	// failure shrank the group, or a supervised rejoin restored it).
	// Schedules never contain Membership ops; only executed timelines do.
	Membership
)

// String returns the legend label of the kind.
func (k WorkKind) String() string {
	switch k {
	case Forward:
		return "forward"
	case Backward:
		return "backward"
	case Curvature:
		return "curvature"
	case Inversion:
		return "inverse"
	case Precondition:
		return "precondition"
	case SyncGrad:
		return "sync-grad"
	case SyncCurvature:
		return "sync-curvature"
	case OptStep:
		return "opt-step"
	case Recompute:
		return "recompute"
	case Degraded:
		return "degraded"
	case Membership:
		return "membership"
	}
	return fmt.Sprintf("WorkKind(%d)", int(k))
}

// Op is one unit of device work in a schedule.
type Op struct {
	// ID is the op's index in Schedule.Ops.
	ID int
	// Kind classifies the work.
	Kind WorkKind
	// Device is the executing device (0-based).
	Device int
	// Stage is the pipeline stage the op belongs to (0-based).
	Stage int
	// Replica is the data-parallel replica the op belongs to (0-based;
	// 0 when W = 1). For GPipe/1F1B replica r of stage s runs on device
	// s*W + r; for Chimera replica r is one bidirectional pipeline pair
	// occupying devices [r*D, (r+1)*D). The execution engine uses it to
	// route an op to the replica's parameter copy and to derive the op's
	// global micro-batch index (replica*N + MicroBatch).
	Replica int
	// MicroBatch is the micro-batch index, or -1 when not applicable.
	MicroBatch int
	// Factor is the K-FAC Kronecker-factor index within the op's stage
	// (A factors even, B factors odd, matching StageCosts.InversionUnits
	// order), or -1 when the op is not factor-granular. Only the Curvature
	// and Inversion ops emitted by the schedule package carry a factor.
	Factor int
	// Step is the training-step index the op belongs to (0-based). In a
	// multi-step executable refresh round every op carries the step whose
	// slot it occupies: forwards/backwards/tails their own training step,
	// and K-FAC curvature/inversion ops the step of the refresh window
	// whose bubbles the packer assigned them to — which is how a step's
	// Precondition knows exactly which inversions precede it, and how
	// executed timelines render round-internal step boundaries.
	Step int
	// Generation is the refresh op's statistics-generation lag relative to
	// the window executing it: 0 means the op works on the generation whose
	// statistics the window itself collects (the only value serialized
	// rounds use); g >= 1 marks an op *carried* across g refresh windows
	// under overlapped rounds (schedule.Config.Overlap, depth bounded by
	// schedule.Config.CarryDepth) — refresh work that did not fit its own
	// window's bubbles and executes in a later window's early bubbles
	// instead, reading the pooled statistics of the generation collected g
	// windows earlier. Non-refresh ops always carry 0.
	Generation int
	// Pipeline is 0 for the down pipeline, 1 for Chimera's up pipeline.
	Pipeline int
	// Duration is the modeled execution time.
	Duration hardware.Microseconds
	// Deps lists op IDs that must complete before this op starts.
	Deps []int
}

// Label renders a compact identifier like "F[s2,m1]".
func (o *Op) Label() string {
	letter := "?"
	switch o.Kind {
	case Forward:
		letter = "F"
	case Backward:
		letter = "B"
	case Curvature:
		letter = "C"
	case Inversion:
		letter = "I"
	case Precondition:
		letter = "P"
	case SyncGrad:
		letter = "G"
	case SyncCurvature:
		letter = "S"
	case OptStep:
		letter = "O"
	case Recompute:
		letter = "R"
	case Degraded:
		letter = "D"
	case Membership:
		letter = "M"
	}
	return fmt.Sprintf("%s[s%d,m%d]", letter, o.Stage, o.MicroBatch)
}

// Schedule is a set of ops with a fixed per-device execution order, as a
// static pipeline schedule prescribes.
type Schedule struct {
	// Name identifies the schedule ("GPipe", "1F1B", "Chimera").
	Name string
	// Devices is the number of devices.
	Devices int
	// Stages is the number of pipeline stages.
	Stages int
	// MicroBatches is N_micro, the micro-batches per device per step.
	MicroBatches int
	// Steps is the number of consecutive training steps in the schedule.
	Steps int
	// Ops holds every op, indexed by ID.
	Ops []*Op
	// Order[d] is the execution order (op IDs) for device d.
	Order [][]int
}

// addOp appends an op, assigns its ID, and registers it in the device
// order.
func (s *Schedule) addOp(op *Op) *Op {
	op.ID = len(s.Ops)
	s.Ops = append(s.Ops, op)
	s.Order[op.Device] = append(s.Order[op.Device], op.ID)
	return op
}

// Validate checks structural invariants: device indices in range, deps
// acyclic with respect to some topological order, and every op present in
// exactly one device order.
func (s *Schedule) Validate() error {
	seen := make(map[int]bool, len(s.Ops))
	for d, order := range s.Order {
		for _, id := range order {
			if id < 0 || id >= len(s.Ops) {
				return fmt.Errorf("pipeline: device %d references unknown op %d", d, id)
			}
			if seen[id] {
				return fmt.Errorf("pipeline: op %d appears in more than one position", id)
			}
			seen[id] = true
			if s.Ops[id].Device != d {
				return fmt.Errorf("pipeline: op %d has device %d but is ordered on device %d", id, s.Ops[id].Device, d)
			}
		}
	}
	if len(seen) != len(s.Ops) {
		return fmt.Errorf("pipeline: %d ops but %d ordered", len(s.Ops), len(seen))
	}
	for _, op := range s.Ops {
		for _, dep := range op.Deps {
			if dep < 0 || dep >= len(s.Ops) {
				return fmt.Errorf("pipeline: op %d has unknown dep %d", op.ID, dep)
			}
		}
		if op.Duration <= 0 {
			return fmt.Errorf("pipeline: op %d has non-positive duration %d", op.ID, op.Duration)
		}
	}
	return nil
}
