package schedule

import (
	"fmt"
	"testing"

	"repro/internal/hardware"
	"repro/internal/pipeline"
)

// partialSpillConfig is a configuration where curvature alone overflows the
// window's bubbles (so at depth 2 the carried generation's curvature
// capacity-starves and gates every inversion into the end-of-round block)
// while the inversions are small enough to fit bubbles once decoupled —
// the regime where a carry depth of 3 pays.
func partialSpillConfig(method string, k int) Config {
	cfg := execTestConfig(method)
	cfg.RefreshSteps = k
	cfg.Overlap = true
	cfg.Costs.CurvaturePerMicroBatch = 0
	for i := range cfg.Costs.CurvatureUnits {
		cfg.Costs.CurvatureUnits[i] = 240
		cfg.Costs.CurvaturePerMicroBatch += 240
		cfg.Costs.InversionUnits[i] = 100
	}
	return cfg
}

// A zero CarryDepth must resolve to the classic depth-2 overlap: byte-level
// schedule equality, so every committed depth-2 schedule (and the engine
// runs replaying them) is untouched by the deep-carry machinery.
func TestDeepCarryDefaultDepthTwoIdentical(t *testing.T) {
	for _, method := range []string{"gpipe", "1f1b", "chimera"} {
		for _, k := range []int{1, 2} {
			t.Run(fmt.Sprintf("%s/K%d", method, k), func(t *testing.T) {
				cfg := spillConfig(method, k)
				cfg.Overlap = true
				def, err := Executable(cfg)
				if err != nil {
					t.Fatal(err)
				}
				cfg.CarryDepth = 2
				expl, err := Executable(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if len(def.Ops) != len(expl.Ops) {
					t.Fatalf("op counts differ: default %d, explicit 2 %d", len(def.Ops), len(expl.Ops))
				}
				for i := range def.Ops {
					a, b := def.Ops[i], expl.Ops[i]
					if a.Kind != b.Kind || a.Device != b.Device || a.Stage != b.Stage ||
						a.MicroBatch != b.MicroBatch || a.Factor != b.Factor ||
						a.Step != b.Step || a.Generation != b.Generation {
						t.Fatalf("op %d differs: default %+v, explicit %+v", i, a, b)
					}
				}
				for d := range def.Order {
					for i := range def.Order[d] {
						if def.Order[d][i] != expl.Order[d][i] {
							t.Fatalf("device %d order differs at %d", d, i)
						}
					}
				}
			})
		}
	}
}

// Depth 3 must decouple: with curvature capacity-starved at generation 1,
// the inversions it gates promote to generation 2, land in bubbles instead
// of the end-of-round serialization, and the modeled makespan improves.
// Generations stay below the depth, the schedule still runs, degraded-mode
// safety holds, and the per-layer fold order is wired as cross-generation
// inversion edges.
func TestDeepCarryDecouplesBlockedInversions(t *testing.T) {
	for _, method := range []string{"gpipe", "1f1b"} {
		t.Run(method, func(t *testing.T) {
			cfg := partialSpillConfig(method, 1)
			shallow, err := Executable(cfg)
			if err != nil {
				t.Fatal(err)
			}
			tlShallow, err := pipeline.Run(shallow)
			if err != nil {
				t.Fatal(err)
			}
			cfg.CarryDepth = 3
			deep, err := Executable(cfg)
			if err != nil {
				t.Fatal(err)
			}
			tlDeep, err := pipeline.Run(deep)
			if err != nil {
				t.Fatal(err)
			}
			if err := ValidateDegradedSafety(deep); err != nil {
				t.Fatalf("degraded safety: %v", err)
			}

			var sawGen2Inv bool
			ops := make(map[int]*pipeline.Op, len(deep.Ops))
			for _, op := range deep.Ops {
				ops[op.ID] = op
				switch op.Kind {
				case pipeline.Curvature, pipeline.Inversion, pipeline.SyncCurvature:
					if op.Generation >= 3 {
						t.Fatalf("generation %d exceeds depth 3: %+v", op.Generation, op)
					}
					if op.Kind == pipeline.Curvature && op.Generation > 1 {
						t.Fatalf("capacity-starved curvature ratcheted deep: %+v", op)
					}
					if op.Kind == pipeline.Inversion && op.Generation == 2 {
						sawGen2Inv = true
					}
				}
			}
			if !sawGen2Inv {
				t.Fatal("no inversion promoted to generation 2 — decoupling did not engage")
			}
			if tlDeep.Makespan >= tlShallow.Makespan {
				t.Fatalf("depth 3 makespan %d did not beat depth 2's %d",
					tlDeep.Makespan, tlShallow.Makespan)
			}
			// Fold order: a generation-g inversion must depend on every
			// deeper-generation inversion of its layer pair.
			for _, op := range deep.Ops {
				if op.Kind != pipeline.Inversion {
					continue
				}
				deps := make(map[int]bool, len(op.Deps))
				for _, id := range op.Deps {
					deps[id] = true
				}
				for _, other := range deep.Ops {
					if other.Kind != pipeline.Inversion || other.Stage != op.Stage ||
						other.Generation <= op.Generation {
						continue
					}
					if other.Factor != op.Factor && other.Factor != pairFactor(op.Factor) {
						continue
					}
					if !deps[other.ID] {
						t.Fatalf("inversion %+v missing fold-order edge on deeper %+v", op, other)
					}
				}
			}
		})
	}
}

// Extra depth beyond what decoupling uses must be inert: items that merely
// lack bubble capacity stay at their generation instead of ratcheting to
// the cap, so depth 4 reproduces depth 3's generation histogram and
// makespan on the partial-spill configuration.
func TestDeepCarryExtraDepthInert(t *testing.T) {
	hist := func(depth int) (map[int]int, hardware.Microseconds) {
		cfg := partialSpillConfig("1f1b", 1)
		cfg.CarryDepth = depth
		s, err := Executable(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tl, err := pipeline.Run(s)
		if err != nil {
			t.Fatal(err)
		}
		h := make(map[int]int)
		for _, op := range s.Ops {
			switch op.Kind {
			case pipeline.Curvature, pipeline.Inversion, pipeline.SyncCurvature:
				h[op.Generation]++
			}
		}
		return h, tl.Makespan
	}
	h3, m3 := hist(3)
	h4, m4 := hist(4)
	if len(h3) != len(h4) || m3 != m4 {
		t.Fatalf("depth 4 diverged: gens %v (%d) vs depth 3 %v (%d)", h4, m4, h3, m3)
	}
	for g, n := range h3 {
		if h4[g] != n {
			t.Fatalf("generation %d count differs: depth 3 %d, depth 4 %d", g, n, h4[g])
		}
	}
}

// CarryDepth validation: negative and 1 are rejected, as is any carry
// depth without Overlap.
func TestDeepCarryConfigValidation(t *testing.T) {
	base := execTestConfig("1f1b")
	for _, tc := range []struct {
		depth   int
		overlap bool
	}{
		{depth: -1, overlap: true},
		{depth: 1, overlap: true},
		{depth: 3, overlap: false},
	} {
		cfg := base
		cfg.Overlap = tc.overlap
		cfg.CarryDepth = tc.depth
		if _, err := Executable(cfg); err == nil {
			t.Fatalf("CarryDepth %d overlap=%v accepted", tc.depth, tc.overlap)
		}
	}
}
