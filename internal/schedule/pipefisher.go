// Package schedule implements PipeFisher's automatic work assignment
// (§3.1 of the paper): given a profiled timeline of a standard pipeline
// schedule, it packs the K-FAC curvature and inversion work into the
// pipeline bubbles according to the paper's dependency rules, measures how
// many pipeline steps one curvature/inverse refresh takes, and reports the
// resulting accelerator utilization.
//
// The three assignment rules (§3.1):
//
//  1. Curvature work for A_l (resp. B_l) of a micro-batch is assigned to a
//     bubble after the forward (resp. backward) of that micro-batch on the
//     layer's stage.
//  2. Inversion work for a factor is assigned after the curvature work of
//     that factor for all micro-batches.
//  3. Precondition work runs after the backward of all layers in a stage
//     and before the next pipeline step (inserted into the schedule itself
//     via pipeline.BuildConfig.IncludePrecondition — it is the only
//     per-step overhead).
//
// Work whose duration exceeds a bubble spills into subsequent bubbles,
// exactly as the paper describes ("otherwise, subsequent bubbles are
// utilized").
package schedule

import (
	"fmt"
	"sort"

	"repro/internal/hardware"
	"repro/internal/pipeline"
)

// FactorKind distinguishes the two Kronecker factors of a layer.
type FactorKind int

// Factor kinds.
const (
	FactorA FactorKind = iota // A_l = ⟨a a^T⟩, ready after forward
	FactorB                   // B_l = ⟨e e^T⟩, ready after backward
)

// Config controls the PipeFisher assignment.
type Config struct {
	// Method selects the base pipeline schedule: "gpipe", "1f1b",
	// "chimera".
	Method string
	// Stages, MicroBatches mirror pipeline.BuildConfig.
	Stages       int
	MicroBatches int
	// Costs provides all work durations.
	Costs pipeline.StageCosts
	// DataParallelWidth is W, the data-parallel replica count: replica
	// streams per stage for gpipe/1f1b, whole bidirectional pipeline
	// pairs for chimera.
	DataParallelWidth int
	// InversionParallel splits each stage's inversion units across the
	// devices holding that stage (the replica group for gpipe/1f1b, the
	// bidirectional pair for chimera) and adds sync-curvature collectives.
	InversionParallel bool
	// InversionCostMultiplier scales the per-factor inversion durations
	// (default 1). Shampoo-style extra work (§5) uses this to model
	// eigendecompositions, which cost an order of magnitude more than a
	// Cholesky inversion of the same matrix; the packer splits such long
	// items across multiple bubbles automatically.
	InversionCostMultiplier float64
	// RefreshSteps is the round length K of the *executable* form: Executable
	// lays out K consecutive pipeline steps and packs one curvature/inversion
	// refresh into the bubbles of the whole window, the paper's multi-step
	// refresh rounds (§3.1 reports 1-4 steps per refresh). 0 or 1 yields the
	// degenerate one-step round. Assign ignores it: Assign *measures* how
	// many steps a refresh needs, Executable *takes* the round length as
	// given.
	RefreshSteps int
	// FrontLoadRefresh pins every item of the refresh to the window's first
	// step: packed into that step's bubbles where they fit, spilled right
	// before its tail otherwise — the legacy skip-cadence placement
	// expressed as a round (steps 1..K-1 of the window run fully stale with
	// the just-refreshed inverses). The default (false) spreads the refresh
	// across the whole window's bubbles, the paper's multi-step schedule
	// shape, in which each step preconditions with the freshest inverses
	// completed by that step. Front-loaded rounds are bit-identical to the
	// skip cadence at the same refresh interval, which the engine's
	// round-vs-skip identity tests exploit.
	FrontLoadRefresh bool
	// Overlap lets consecutive refresh windows overlap (Executable only):
	// refresh work that does not fit its own window's bubbles is not
	// serialized before the window's tail but *carried* — emitted as
	// generation-lagged ops (pipeline.Op.Generation = 1) that execute in
	// the early bubbles of the window, operating on the PREVIOUS window's
	// statistics generation, exactly where a serialized round would idle
	// (the first steps' bubbles open before the window's own statistics
	// exist). The carry set is computed as a fixed point so the steady-state
	// window is self-consistent: what spills out of this window is what the
	// next window's early bubbles absorb. When everything fits, the overlap
	// schedule is identical to the serialized one. Incompatible with
	// FrontLoadRefresh.
	Overlap bool
	// CarryDepth bounds how many consecutive windows one refresh may
	// pipeline across under Overlap: Op.Generation values run
	// 0..CarryDepth-1, where generation g ops execute g windows after
	// their statistics were collected. 0 defaults to 2 — the classic
	// overlap shape (own window plus one carried window). Depths > 2 give
	// the packer headroom when a refresh exceeds two windows' bubbles:
	// work that would otherwise serialize before the round's tail keeps
	// pipelining into the following windows' early bubbles instead. The
	// per-window work is unchanged — deeper carry only adds placement
	// freedom. Ignored without Overlap.
	CarryDepth int
	// MaxSteps bounds the number of pipeline steps one refresh round may
	// span (a safety net; realistic configurations need 1-10).
	MaxSteps int
	// NoSplit disables spilling a work item across multiple bubbles
	// (every item must fit one bubble whole). The paper's rule —
	// "otherwise, subsequent bubbles are utilized" — corresponds to
	// NoSplit=false; the ablation bench quantifies what splitting buys.
	NoSplit bool
}

func (c Config) normalize() (Config, error) {
	switch c.Method {
	case "gpipe", "1f1b", "chimera":
	default:
		return c, fmt.Errorf("schedule: unknown method %q (want gpipe, 1f1b or chimera)", c.Method)
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 32
	}
	if c.RefreshSteps <= 0 {
		c.RefreshSteps = 1
	}
	if c.RefreshSteps > c.MaxSteps {
		return c, fmt.Errorf("schedule: RefreshSteps %d exceeds MaxSteps %d", c.RefreshSteps, c.MaxSteps)
	}
	if c.Overlap && c.FrontLoadRefresh {
		return c, fmt.Errorf("schedule: Overlap and FrontLoadRefresh are mutually exclusive (front-loading pins the whole refresh to the window's first step; overlap carries spill into the next window)")
	}
	if c.CarryDepth < 0 {
		return c, fmt.Errorf("schedule: CarryDepth %d is negative", c.CarryDepth)
	}
	if c.CarryDepth == 1 {
		return c, fmt.Errorf("schedule: CarryDepth 1 means no carry — use Overlap=false, or CarryDepth >= 2")
	}
	if c.CarryDepth > 1 && !c.Overlap {
		return c, fmt.Errorf("schedule: CarryDepth needs Overlap")
	}
	if c.Overlap && c.CarryDepth == 0 {
		c.CarryDepth = 2
	}
	if c.DataParallelWidth <= 0 {
		c.DataParallelWidth = 1
	}
	if c.InversionCostMultiplier <= 0 {
		c.InversionCostMultiplier = 1
	}
	if c.InversionCostMultiplier != 1 {
		scaled := make([]hardware.Microseconds, len(c.Costs.InversionUnits))
		for i, u := range c.Costs.InversionUnits {
			scaled[i] = hardware.Microseconds(float64(u) * c.InversionCostMultiplier)
		}
		c.Costs.InversionUnits = scaled
	}
	return c, nil
}

// Result reports the outcome of a PipeFisher assignment.
type Result struct {
	// Timeline is the augmented timeline: the base schedule (including
	// per-step precondition work) plus the K-FAC events packed into its
	// bubbles.
	Timeline *pipeline.Timeline
	// VanillaTimeline is the base schedule without any K-FAC work, for
	// comparison (the "w/ Adam" rows of Figures 3 and 4).
	VanillaTimeline *pipeline.Timeline
	// RefreshSteps is the number of pipeline steps needed to refresh the
	// curvature and inverse matrices once (per stage, the max over
	// stages). The paper reports 1-4 for its configurations.
	RefreshSteps int
	// RefreshStepsPerStage breaks RefreshSteps down by stage.
	RefreshStepsPerStage []int
	// StepTime is the steady-state step time with PipeFisher (precondition
	// included); VanillaStepTime is the base schedule's.
	StepTime        hardware.Microseconds
	VanillaStepTime hardware.Microseconds
	// Utilization counts all colored work over the refresh window;
	// VanillaUtilization is the base schedule's over its own window.
	Utilization        float64
	VanillaUtilization float64
	// KFACWorkTime is the total curvature+inversion(+sync) time packed.
	KFACWorkTime hardware.Microseconds
	// Unassigned counts work items that did not fit within MaxSteps
	// (0 for all realistic configurations).
	Unassigned int
}

// workItem is one schedulable unit of K-FAC work.
type workItem struct {
	kind     pipeline.WorkKind
	stage    int
	device   int
	replica  int // data-parallel replica owning the device
	factor   int // index into Costs.InversionUnits / CurvatureUnits
	micro    int // micro-batch for curvature, -1 otherwise
	duration hardware.Microseconds
	readyAt  hardware.Microseconds
	// placedEnd records the end of the item's last placed piece; placed
	// marks whether placement succeeded, and placedStart records the start
	// of the first piece (used by Executable to order real execution).
	placedEnd   hardware.Microseconds
	placedStart hardware.Microseconds
	placed      bool
	// blocked distinguishes WHY an overlap placement pass left the item
	// unplaced: true means a scheduling gate (the generation's curvature or
	// sync spilled, or a deeper inversion of the layer pair did) deferred
	// it, false means it simply found no bubble. Deep-carry promotion only
	// moves blocked items past generation 1 — lagging a capacity-starved
	// item deeper buys nothing (it is already ready at window start), but a
	// gated item one lag deeper decouples from the spilled gate and becomes
	// placeable. Reset every placement pass.
	blocked bool
	// wstep is the step of the refresh window the item executes in
	// (0-based; set by assignWindowSteps for the executable form).
	wstep int
	// gen is the item's generation lag in the overlapped executable form:
	// 0 = the window's own statistics generation; 1 = carried from the
	// previous window (the item spilled out of its own window's bubbles and
	// executes in the next window's early bubbles instead). Always 0 for
	// Assign and for serialized rounds.
	gen int
}

// Assign builds the base schedule, inserts the per-step precondition work,
// simulates enough steps for one refresh round, and packs the curvature and
// inversion work into the bubbles according to the paper's rules.
func Assign(cfg Config) (*Result, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	// Estimate the number of steps a refresh round needs from the
	// (curvature+inversion)/bubble ratio, then simulate a couple extra.
	oneStep, err := buildBase(cfg, 1, false)
	if err != nil {
		return nil, err
	}
	oneTL, err := pipeline.Run(oneStep)
	if err != nil {
		return nil, err
	}
	ratio := estimateRatio(cfg, oneTL)
	steps := int(ratio) + 2
	if steps > cfg.MaxSteps {
		steps = cfg.MaxSteps
	}

	vanillaSched, err := buildBase(cfg, steps, false)
	if err != nil {
		return nil, err
	}
	vanillaTL, err := pipeline.Run(vanillaSched)
	if err != nil {
		return nil, err
	}
	baseSched, err := buildBase(cfg, steps, true)
	if err != nil {
		return nil, err
	}
	baseTL, err := pipeline.Run(baseSched)
	if err != nil {
		return nil, err
	}

	items := buildWorkQueue(cfg, baseSched, baseTL)
	packed, unassigned := pack(items, baseTL, cfg)

	res := &Result{
		Timeline:        packed,
		VanillaTimeline: vanillaTL,
		Unassigned:      unassigned,
	}
	res.VanillaStepTime = steadyStepTime(vanillaTL)
	res.StepTime = steadyStepTime(baseTL)
	res.VanillaUtilization = vanillaTL.Utilization()
	res.refreshFromItems(items, baseTL, cfg)
	for _, it := range items {
		res.KFACWorkTime += it.duration
	}
	res.Utilization = packed.UtilizationOver(0, windowEnd(res, baseTL))
	return res, nil
}

// windowEnd picks the utilization window: the end of the refresh round
// (whole steps), so repeated rounds tile the timeline.
func windowEnd(res *Result, tl *pipeline.Timeline) hardware.Microseconds {
	k := res.RefreshSteps
	if k < 1 {
		k = 1
	}
	if k > len(tl.StepEnd) {
		k = len(tl.StepEnd)
	}
	return tl.StepEnd[k-1]
}

func buildBase(cfg Config, steps int, precondition bool) (*pipeline.Schedule, error) {
	bc := pipeline.BuildConfig{
		Stages:               cfg.Stages,
		MicroBatches:         cfg.MicroBatches,
		Steps:                steps,
		Costs:                cfg.Costs,
		DataParallelWidth:    cfg.DataParallelWidth,
		IncludeOptimizerWork: true,
		IncludePrecondition:  precondition,
	}
	switch cfg.Method {
	case "gpipe":
		return pipeline.BuildGPipe(bc)
	case "1f1b":
		return pipeline.Build1F1B(bc)
	case "chimera":
		return pipeline.BuildChimera(bc)
	}
	return nil, fmt.Errorf("schedule: unknown method %q", cfg.Method)
}

// estimateRatio computes (curvature+inversion)/bubble per step: the paper's
// key quantity predicting the refresh interval (§3.3).
func estimateRatio(cfg Config, oneStep *pipeline.Timeline) float64 {
	var kfacWork float64
	perStageCurv := float64(cfg.Costs.CurvaturePerMicroBatch) * float64(cfg.MicroBatches)
	perStageInv := float64(cfg.Costs.InversionTotal())
	// Chimera devices hold two stages each; every replica group (the W
	// replica streams of gpipe/1f1b, the W bidirectional pairs of chimera)
	// computes curvature for its own micro-batches, and replicas duplicate
	// the inversion work unless InversionParallel shards it.
	w := cfg.DataParallelWidth
	kfacWork = float64(cfg.Stages*w)*perStageCurv + float64(cfg.Stages)*perStageInv
	if !cfg.InversionParallel && w > 1 {
		kfacWork += float64(cfg.Stages*(w-1)) * perStageInv
	}
	bubble := float64(oneStep.TotalBubble())
	if bubble <= 0 {
		return float64(cfg.MaxSteps)
	}
	return kfacWork / bubble
}

func devicesFor(cfg Config) int {
	return cfg.Stages * cfg.DataParallelWidth
}

// stageOwners returns the devices that hold a stage's parameters and their
// local micro-batch ranges, replica-major. For gpipe/1f1b, each of the W
// replicas owns all N micro-batches of its own replica stream; for chimera,
// each replica contributes a device pair — the down device owning local
// micro-batches [0, N/2) and the up device [N/2, N).
type owner struct {
	device  int
	replica int
	microLo int
	microHi int // exclusive
}

func stageOwners(cfg Config, stage int) []owner {
	w := cfg.DataParallelWidth
	if cfg.Method == "chimera" {
		half := cfg.MicroBatches / 2
		owners := make([]owner, 0, 2*w)
		for r := 0; r < w; r++ {
			owners = append(owners,
				owner{device: r*cfg.Stages + stage, replica: r, microLo: 0, microHi: half},
				owner{device: r*cfg.Stages + cfg.Stages - 1 - stage, replica: r, microLo: half, microHi: cfg.MicroBatches},
			)
		}
		return owners
	}
	owners := make([]owner, w)
	for r := 0; r < w; r++ {
		owners[r] = owner{device: stage*w + r, replica: r, microLo: 0, microHi: cfg.MicroBatches}
	}
	return owners
}

// buildWorkQueue creates the K-FAC work items of one refresh round with
// their ready times taken from the profiled timeline (rules 1 and 2).
func buildWorkQueue(cfg Config, sched *pipeline.Schedule, tl *pipeline.Timeline) []*workItem {
	var items []*workItem
	nFactors := len(cfg.Costs.InversionUnits)
	for stage := 0; stage < cfg.Stages; stage++ {
		owners := stageOwners(cfg, stage)
		// Curvature: one item per (owner device, micro-batch, factor).
		// Factor readiness: A factors (even index) after the forward of
		// the micro-batch at this stage; B factors (odd) after backward.
		curvEnd := make(map[[2]int]hardware.Microseconds) // (device, factor) -> latest curvature ready bound
		for _, ow := range owners {
			for m := ow.microLo; m < ow.microHi; m++ {
				fEv, okF := findStepEvent(tl, pipeline.Forward, stage, m, ow.device)
				bEv, okB := findStepEvent(tl, pipeline.Backward, stage, m, ow.device)
				if !okF || !okB {
					continue
				}
				for f := 0; f < nFactors; f++ {
					ready := fEv.End
					if factorKindOf(f) == FactorB {
						ready = bEv.End
					}
					items = append(items, &workItem{
						kind: pipeline.Curvature, stage: stage, device: ow.device,
						replica: ow.replica, factor: f, micro: m,
						duration: cfg.Costs.CurvatureUnits[f],
						readyAt:  ready,
					})
					key := [2]int{ow.device, f}
					if ready > curvEnd[key] {
						curvEnd[key] = ready
					}
				}
			}
		}
		// Sync-curvature collectives when factors are split across owners.
		// Created before the inversion items: inversions depend on their
		// stage's sync ops, and work that does not fit the bubbles keeps
		// its creation order at the end of the device's pre-tail op list —
		// a sync created after the inversions would be ordered after ops
		// that wait on it, deadlocking the executable form.
		if cfg.InversionParallel && len(owners) > 1 && cfg.Costs.SyncCurvature > 0 {
			for _, ow := range owners {
				items = append(items, &workItem{
					kind: pipeline.SyncCurvature, stage: stage, device: ow.device,
					replica: ow.replica, factor: -1, micro: -1,
					duration: cfg.Costs.SyncCurvature,
					readyAt:  0, // after the stage's curvature; set in pack
				})
			}
		}
		// Inversion: one item per factor, split round-robin across the
		// stage's owner group (the replica group for gpipe/1f1b, the W
		// bidirectional pairs for chimera) when inversion parallelism is
		// on — each owner inverts its shard, then broadcasts; otherwise
		// every replica duplicates the whole stage's inversion work
		// (chimera puts each replica's units on its down device).
		addInv := func(ow owner, f int) {
			items = append(items, &workItem{
				kind: pipeline.Inversion, stage: stage, device: ow.device,
				replica: ow.replica, factor: f, micro: -1,
				duration: cfg.Costs.InversionUnits[f],
				// Actual readiness (after all curvature for this factor is
				// *placed*) is enforced during packing; this is the lower
				// bound from rule 2's data dependency.
				readyAt: 0,
			})
		}
		if cfg.InversionParallel && len(owners) > 1 {
			for f := 0; f < nFactors; f++ {
				addInv(owners[f%len(owners)], f)
			}
		} else if cfg.Method == "chimera" {
			for r := 0; r < cfg.DataParallelWidth; r++ {
				for f := 0; f < nFactors; f++ {
					addInv(owners[2*r], f)
				}
			}
		} else {
			for _, ow := range owners {
				for f := 0; f < nFactors; f++ {
					addInv(ow, f)
				}
			}
		}
	}
	return items
}

// factorKindOf maps a factor index to A (even) or B (odd), matching
// arch.FactorDims order (A then B per layer).
func factorKindOf(f int) FactorKind {
	if f%2 == 0 {
		return FactorA
	}
	return FactorB
}

// findStepEvent locates the step-0 event of the given kind/stage/micro on a
// device.
func findStepEvent(tl *pipeline.Timeline, kind pipeline.WorkKind, stage, micro, device int) (pipeline.Event, bool) {
	for _, e := range tl.Events[device] {
		if e.Op.Kind == kind && e.Op.Stage == stage && e.Op.MicroBatch == micro && e.Op.Step == 0 {
			return e, true
		}
	}
	return pipeline.Event{}, false
}

// freeList tracks the remaining bubble intervals of one device.
type freeList struct {
	gaps []pipeline.Gap
}

// place books dur units of work at or after ready, possibly split across
// gaps. It returns the placed pieces and the end of the last piece; ok is
// false when the free list is exhausted first.
func (fl *freeList) place(ready hardware.Microseconds, dur hardware.Microseconds) (pieces []pipeline.Gap, end hardware.Microseconds, ok bool) {
	return fl.placeImpl(ready, dur, false)
}

// placeWhole books dur units into a single bubble that fits it entirely
// (the NoSplit ablation).
func (fl *freeList) placeWhole(ready hardware.Microseconds, dur hardware.Microseconds) (pieces []pipeline.Gap, end hardware.Microseconds, ok bool) {
	return fl.placeImpl(ready, dur, true)
}

func (fl *freeList) placeImpl(ready hardware.Microseconds, dur hardware.Microseconds, whole bool) (pieces []pipeline.Gap, end hardware.Microseconds, ok bool) {
	remaining := dur
	for i := 0; i < len(fl.gaps) && remaining > 0; i++ {
		g := fl.gaps[i]
		start := g.Start
		if ready > start {
			start = ready
		}
		if start >= g.End {
			continue
		}
		avail := g.End - start
		if whole && avail < remaining {
			continue
		}
		take := remaining
		if take > avail {
			take = avail
		}
		pieces = append(pieces, pipeline.Gap{Device: g.Device, Start: start, End: start + take})
		remaining -= take
		end = start + take
		// Shrink the gap: [g.Start, start) stays free; [start+take, g.End)
		// stays free.
		var repl []pipeline.Gap
		if start > g.Start {
			repl = append(repl, pipeline.Gap{Device: g.Device, Start: g.Start, End: start})
		}
		if start+take < g.End {
			repl = append(repl, pipeline.Gap{Device: g.Device, Start: start + take, End: g.End})
		}
		fl.gaps = append(fl.gaps[:i], append(repl, fl.gaps[i+1:]...)...)
		i += len(repl) - 1
	}
	return pieces, end, remaining == 0
}

// pack assigns every work item to bubbles (rule order: curvature sorted by
// readiness, then sync-curvature, then inversions once their factor's
// curvature is fully placed). It returns the augmented timeline and the
// number of items that did not fit.
func pack(items []*workItem, base *pipeline.Timeline, cfg Config) (*pipeline.Timeline, int) {
	out := &pipeline.Timeline{
		Name:     base.Name + "+PipeFisher",
		Devices:  base.Devices,
		Steps:    base.Steps,
		Events:   make([][]pipeline.Event, base.Devices),
		Makespan: base.Makespan,
		StepEnd:  append([]hardware.Microseconds(nil), base.StepEnd...),
	}
	for d := 0; d < base.Devices; d++ {
		out.Events[d] = append([]pipeline.Event(nil), base.Events[d]...)
	}
	free := make([]*freeList, base.Devices)
	for d := 0; d < base.Devices; d++ {
		free[d] = &freeList{gaps: base.Gaps(d, 0, base.Makespan)}
	}

	var curv, syncs, invs []*workItem
	for _, it := range items {
		switch it.kind {
		case pipeline.Curvature:
			curv = append(curv, it)
		case pipeline.SyncCurvature:
			syncs = append(syncs, it)
		default:
			invs = append(invs, it)
		}
	}
	sort.SliceStable(curv, func(i, j int) bool { return curv[i].readyAt < curv[j].readyAt })

	unassigned := 0
	// curvDone[(device, stage, factor)] tracks the latest end of placed
	// curvature pieces, which gates inversion (rule 2).
	curvDone := make(map[[3]int]hardware.Microseconds)
	stageCurvDone := make(map[[2]int]hardware.Microseconds) // (device, stage)
	placeItem := func(it *workItem) bool {
		var pieces []pipeline.Gap
		var end hardware.Microseconds
		var ok bool
		if cfg.NoSplit {
			pieces, end, ok = free[it.device].placeWhole(it.readyAt, it.duration)
		} else {
			pieces, end, ok = free[it.device].place(it.readyAt, it.duration)
		}
		if !ok {
			unassigned++
			return false
		}
		for _, p := range pieces {
			op := &pipeline.Op{
				Kind: it.kind, Device: it.device, Stage: it.stage, Replica: it.replica,
				MicroBatch: it.micro, Step: -1, Duration: p.End - p.Start,
			}
			out.Events[it.device] = append(out.Events[it.device], pipeline.Event{Op: op, Start: p.Start, End: p.End})
		}
		it.placedEnd = end
		return true
	}
	for _, it := range curv {
		if !placeItem(it) {
			continue
		}
		key := [3]int{it.device, it.stage, it.factor}
		if it.placedEnd > curvDone[key] {
			curvDone[key] = it.placedEnd
		}
		skey := [2]int{it.device, it.stage}
		if it.placedEnd > stageCurvDone[skey] {
			stageCurvDone[skey] = it.placedEnd
		}
	}
	// Sync-curvature: after all curvature of the stage on the owning
	// devices.
	for _, it := range syncs {
		var ready hardware.Microseconds
		for _, ow := range stageOwners(cfg, it.stage) {
			if t := stageCurvDone[[2]int{ow.device, it.stage}]; t > ready {
				ready = t
			}
		}
		it.readyAt = ready
		if placeItem(it) {
			skey := [2]int{it.device, it.stage}
			if it.placedEnd > stageCurvDone[skey] {
				stageCurvDone[skey] = it.placedEnd
			}
		}
	}
	// Inversions: ready when the factor's curvature is done on all owners
	// (plus sync when present).
	sort.SliceStable(invs, func(i, j int) bool {
		ri := invReady(invs[i], cfg, curvDone, stageCurvDone)
		rj := invReady(invs[j], cfg, curvDone, stageCurvDone)
		return ri < rj
	})
	for _, it := range invs {
		it.readyAt = invReady(it, cfg, curvDone, stageCurvDone)
		placeItem(it)
	}
	for d := range out.Events {
		sort.Slice(out.Events[d], func(i, j int) bool { return out.Events[d][i].Start < out.Events[d][j].Start })
	}
	return out, unassigned
}

func invReady(it *workItem, cfg Config, curvDone map[[3]int]hardware.Microseconds, stageCurvDone map[[2]int]hardware.Microseconds) hardware.Microseconds {
	var ready hardware.Microseconds
	owners := stageOwners(cfg, it.stage)
	split := cfg.InversionParallel && len(owners) > 1
	for _, ow := range owners {
		var t hardware.Microseconds
		if split {
			// With sync-curvature, the factor is available everywhere once
			// the stage's curvature (and sync) completed on each owner.
			t = stageCurvDone[[2]int{ow.device, it.stage}]
		} else if ow.device == it.device {
			t = curvDone[[3]int{ow.device, it.stage, it.factor}]
		}
		if t > ready {
			ready = t
		}
	}
	return ready
}

// refreshFromItems derives the per-stage refresh interval: the number of
// pipeline steps spanned until the stage's last K-FAC item completes.
func (r *Result) refreshFromItems(items []*workItem, tl *pipeline.Timeline, cfg Config) {
	r.RefreshStepsPerStage = make([]int, cfg.Stages)
	for _, it := range items {
		if it.placedEnd == 0 {
			continue
		}
		step := stepOf(it.placedEnd, tl.StepEnd)
		if step+1 > r.RefreshStepsPerStage[it.stage] {
			r.RefreshStepsPerStage[it.stage] = step + 1
		}
	}
	for _, s := range r.RefreshStepsPerStage {
		if s > r.RefreshSteps {
			r.RefreshSteps = s
		}
	}
	if r.RefreshSteps == 0 {
		r.RefreshSteps = 1
	}
}

func stepOf(t hardware.Microseconds, stepEnd []hardware.Microseconds) int {
	for k, end := range stepEnd {
		if t <= end {
			return k
		}
	}
	return len(stepEnd) - 1
}

// steadyStepTime returns the duration of a steady-state step (the second
// step when available, else the first).
func steadyStepTime(tl *pipeline.Timeline) hardware.Microseconds {
	if len(tl.StepEnd) >= 2 {
		return tl.StepEnd[1] - tl.StepEnd[0]
	}
	if len(tl.StepEnd) == 1 {
		return tl.StepEnd[0]
	}
	return tl.Makespan
}
