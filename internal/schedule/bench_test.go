package schedule

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/hardware"
	"repro/internal/pipeline"
)

func benchCosts(b *testing.B, a arch.Transformer, blocks, micro, dp int) pipeline.StageCosts {
	b.Helper()
	costs, err := pipeline.CostsFor(pipeline.CostConfig{
		Arch: a, BlocksPerStage: blocks, MicroBatch: micro,
		GPU: hardware.P100, DataParallelWidth: dp,
	})
	if err != nil {
		b.Fatal(err)
	}
	return costs
}

func BenchmarkAssignGPipe(b *testing.B) {
	costs := benchCosts(b, arch.BERTBase, 3, 32, 1)
	for i := 0; i < b.N; i++ {
		if _, err := Assign(Config{Method: "gpipe", Stages: 4, MicroBatches: 4, Costs: costs}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAssignChimeraLarge(b *testing.B) {
	costs := benchCosts(b, arch.BERTLarge, 3, 32, 2)
	for i := 0; i < b.N; i++ {
		if _, err := Assign(Config{
			Method: "chimera", Stages: 8, MicroBatches: 8, Costs: costs,
			InversionParallel: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAssignSAM(b *testing.B) {
	costs := benchCosts(b, arch.BERTBase, 3, 32, 1)
	for i := 0; i < b.N; i++ {
		if _, err := AssignSAM(Config{Method: "gpipe", Stages: 4, MicroBatches: 4, Costs: costs}); err != nil {
			b.Fatal(err)
		}
	}
}
