package schedule

import (
	"fmt"
	"sort"

	"repro/internal/hardware"
	"repro/internal/pipeline"
)

// Candidate is one point of the auto-tuner's schedule search space: the
// knobs that change how one refresh packs into pipeline bubbles without
// changing the math — schedule family, round length K, overlapped vs
// serialized rounds (with carry depth), and inversion sharding. The fixed
// dimensions (stage count, micro-batches, data-parallel width) are the
// machine topology; a running engine cannot swap those at a round boundary.
type Candidate struct {
	Method            string
	RefreshSteps      int
	Overlap           bool
	InversionParallel bool
	// CarryDepth is the overlap carry depth (0 = the default of 2);
	// meaningful only with Overlap.
	CarryDepth int
}

// String renders the candidate the way run headers and tuner decisions
// print it, e.g. "1f1b/K2+overlap" or "chimera/K4+overlap@3+invpar".
func (c Candidate) String() string {
	s := fmt.Sprintf("%s/K%d", c.Method, c.RefreshSteps)
	if c.Overlap {
		s += "+overlap"
		if c.CarryDepth > 2 {
			s += fmt.Sprintf("@%d", c.CarryDepth)
		}
	}
	if c.InversionParallel {
		s += "+invpar"
	}
	return s
}

// Space bounds the candidate enumeration.
type Space struct {
	// Methods lists the schedule families to consider (default: gpipe,
	// 1f1b, chimera — chimera is dropped automatically when the fixed
	// topology violates its evenness constraints).
	Methods []string
	// MaxRefreshSteps bounds the round length K; candidates run K =
	// 1..MaxRefreshSteps (default 4, the paper's largest refresh window).
	MaxRefreshSteps int
	// MaxCarryDepth bounds the overlap carry depth. Depths 3..MaxCarryDepth
	// are enumerated as extra overlap variants; values below 3 (default)
	// enumerate only the classic depth-2 overlap.
	MaxCarryDepth int
	// Stages, MicroBatches, DataParallelWidth fix the machine topology the
	// candidates must run on.
	Stages            int
	MicroBatches      int
	DataParallelWidth int
}

// Enumerate lists the valid candidates of a search space. Invalid
// combinations are filtered here, not at prediction time: chimera needs
// even stages and micro-batches, inversion sharding needs a stage device
// group wider than one (the data-parallel group for gpipe/1f1b, the
// bidirectional pair for chimera), and carry depth only applies to
// overlapped candidates.
func Enumerate(sp Space) []Candidate {
	methods := sp.Methods
	if len(methods) == 0 {
		methods = []string{"gpipe", "1f1b", "chimera"}
	}
	maxK := sp.MaxRefreshSteps
	if maxK <= 0 {
		maxK = 4
	}
	w := sp.DataParallelWidth
	if w <= 0 {
		w = 1
	}
	var out []Candidate
	for _, m := range methods {
		switch m {
		case "gpipe", "1f1b", "chimera":
		default:
			continue
		}
		if m == "chimera" && (sp.Stages%2 != 0 || sp.MicroBatches%2 != 0) {
			continue
		}
		invpars := []bool{false}
		if w > 1 || m == "chimera" {
			invpars = append(invpars, true)
		}
		for k := 1; k <= maxK; k++ {
			for _, inv := range invpars {
				out = append(out, Candidate{Method: m, RefreshSteps: k, InversionParallel: inv})
				out = append(out, Candidate{Method: m, RefreshSteps: k, InversionParallel: inv, Overlap: true})
				for d := 3; d <= sp.MaxCarryDepth; d++ {
					out = append(out, Candidate{Method: m, RefreshSteps: k, InversionParallel: inv, Overlap: true, CarryDepth: d})
				}
			}
		}
	}
	return out
}

// Prediction is one ranked candidate: the modeled steady-state cost of
// running it, derived by building the candidate's executable schedule
// against the (fitted) cost model and timing it in the simulator — the
// same op-list form the engine would execute, so the prediction and the
// execution share every packing decision.
type Prediction struct {
	Candidate Candidate
	// RoundMakespan is the simulated makespan of one full refresh round
	// (K steps with one refresh packed into the window's bubbles).
	RoundMakespan hardware.Microseconds
	// StepTime is RoundMakespan / K: the per-training-step cost that makes
	// candidates of different round lengths comparable — the ranking key.
	StepTime hardware.Microseconds
}

// Predict times one candidate under the base configuration's cost model.
// base supplies the fixed topology and Costs; the candidate's knobs
// override the corresponding fields.
func Predict(base Config, c Candidate) (Prediction, error) {
	cfg := base
	cfg.Method = c.Method
	cfg.RefreshSteps = c.RefreshSteps
	cfg.Overlap = c.Overlap
	cfg.CarryDepth = c.CarryDepth
	cfg.InversionParallel = c.InversionParallel
	cfg.FrontLoadRefresh = false
	s, err := Executable(cfg)
	if err != nil {
		return Prediction{}, err
	}
	tl, err := pipeline.Run(s)
	if err != nil {
		return Prediction{}, err
	}
	k := c.RefreshSteps
	if k < 1 {
		k = 1
	}
	return Prediction{
		Candidate:     c,
		RoundMakespan: tl.Makespan,
		StepTime:      (tl.Makespan + hardware.Microseconds(k) - 1) / hardware.Microseconds(k),
	}, nil
}

// RankCandidates predicts every candidate and returns them sorted by
// ascending per-step time. Candidates whose schedule fails to build are
// skipped (an empty result means none built). Ties break toward the
// simpler configuration — serialized before overlapped, shallower carry,
// smaller K, no inversion sharding, then method name — so the tuner never
// trades determinism-equivalent complexity for nothing: a measured-cost
// regime where overlap stops paying (the K=2 crossover in the committed
// engine baseline) ranks the serialized round first on equal predictions.
func RankCandidates(base Config, cands []Candidate) []Prediction {
	preds := make([]Prediction, 0, len(cands))
	for _, c := range cands {
		p, err := Predict(base, c)
		if err != nil {
			continue
		}
		preds = append(preds, p)
	}
	sort.SliceStable(preds, func(i, j int) bool {
		a, b := preds[i], preds[j]
		if a.StepTime != b.StepTime {
			return a.StepTime < b.StepTime
		}
		if a.Candidate.Overlap != b.Candidate.Overlap {
			return !a.Candidate.Overlap
		}
		if a.Candidate.CarryDepth != b.Candidate.CarryDepth {
			return a.Candidate.CarryDepth < b.Candidate.CarryDepth
		}
		if a.Candidate.RefreshSteps != b.Candidate.RefreshSteps {
			return a.Candidate.RefreshSteps < b.Candidate.RefreshSteps
		}
		if a.Candidate.InversionParallel != b.Candidate.InversionParallel {
			return !a.Candidate.InversionParallel
		}
		return a.Candidate.Method < b.Candidate.Method
	})
	return preds
}
