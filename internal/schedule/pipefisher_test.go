package schedule

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/hardware"
	"repro/internal/pipeline"
)

// paperCosts builds the Figure 3 configuration: BERT-Base, 4 stages of 3
// blocks, B_micro = 32, sequence 128, P100.
func paperCosts(t *testing.T, blocks, micro int, a arch.Transformer, w int) pipeline.StageCosts {
	t.Helper()
	costs, err := pipeline.CostsFor(pipeline.CostConfig{
		Arch: a, BlocksPerStage: blocks, MicroBatch: micro,
		GPU: hardware.P100, DataParallelWidth: w,
	})
	if err != nil {
		t.Fatal(err)
	}
	return costs
}

func TestAssignGPipeBERTBase(t *testing.T) {
	// Figure 3 (left): GPipe, BERT-Base, 4 stages x 3 blocks, N=4, B=32.
	// Paper: utilization rises from 41.7% to 89.0%; curvature+inverse
	// refresh within <= 2 steps.
	costs := paperCosts(t, 3, 32, arch.BERTBase, 1)
	res, err := Assign(Config{
		Method: "gpipe", Stages: 4, MicroBatches: 4, Costs: costs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unassigned != 0 {
		t.Fatalf("%d K-FAC items unassigned", res.Unassigned)
	}
	if res.VanillaUtilization > 0.70 {
		t.Fatalf("vanilla GPipe utilization %.3f unexpectedly high", res.VanillaUtilization)
	}
	if res.Utilization < res.VanillaUtilization+0.15 {
		t.Fatalf("PipeFisher must lift utilization substantially: %.3f -> %.3f",
			res.VanillaUtilization, res.Utilization)
	}
	if res.Utilization < 0.75 || res.Utilization > 1.0 {
		t.Fatalf("PipeFisher utilization %.3f outside [0.75, 1.0]", res.Utilization)
	}
	if res.RefreshSteps < 1 || res.RefreshSteps > 4 {
		t.Fatalf("refresh interval %d steps, paper regime is 1-4", res.RefreshSteps)
	}
	// Precondition is the only per-step overhead, and it is small (<15%).
	overhead := float64(res.StepTime-res.VanillaStepTime) / float64(res.VanillaStepTime)
	if overhead < 0 || overhead > 0.15 {
		t.Fatalf("per-step overhead %.3f outside [0, 0.15]", overhead)
	}
}

func TestAssign1F1BBERTBase(t *testing.T) {
	costs := paperCosts(t, 3, 32, arch.BERTBase, 1)
	res, err := Assign(Config{
		Method: "1f1b", Stages: 4, MicroBatches: 4, Costs: costs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unassigned != 0 {
		t.Fatalf("%d items unassigned", res.Unassigned)
	}
	if res.Utilization < res.VanillaUtilization+0.15 {
		t.Fatalf("1F1B w/ PipeFisher utilization %.3f vs vanilla %.3f",
			res.Utilization, res.VanillaUtilization)
	}
}

func TestAssignChimeraBERTLarge(t *testing.T) {
	// Figure 4: Chimera, BERT-Large, 8 stages x 3 blocks, N=8, B=32.
	// Paper: utilization 59.8% -> 97.6% with data & inversion parallelism;
	// refresh within 2-4 steps.
	costs := paperCosts(t, 3, 32, arch.BERTLarge, 2)
	res, err := Assign(Config{
		Method: "chimera", Stages: 8, MicroBatches: 8, Costs: costs,
		InversionParallel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unassigned != 0 {
		t.Fatalf("%d items unassigned", res.Unassigned)
	}
	if res.VanillaUtilization < 0.45 || res.VanillaUtilization > 0.85 {
		t.Fatalf("vanilla Chimera utilization %.3f outside plausible range", res.VanillaUtilization)
	}
	if res.Utilization < res.VanillaUtilization+0.10 {
		t.Fatalf("Chimera w/ PipeFisher %.3f vs vanilla %.3f",
			res.Utilization, res.VanillaUtilization)
	}
	if res.RefreshSteps < 1 || res.RefreshSteps > 6 {
		t.Fatalf("refresh interval %d steps, paper regime is 2-4", res.RefreshSteps)
	}
}

func TestAssignedEventsStayInBubbles(t *testing.T) {
	// The K-FAC events must not overlap the base schedule's events — they
	// live strictly inside the bubbles.
	costs := paperCosts(t, 3, 32, arch.BERTBase, 1)
	res, err := Assign(Config{Method: "gpipe", Stages: 4, MicroBatches: 4, Costs: costs})
	if err != nil {
		t.Fatal(err)
	}
	tl := res.Timeline
	for d := 0; d < tl.Devices; d++ {
		evs := tl.Events[d]
		for i := 1; i < len(evs); i++ {
			if evs[i].Start < evs[i-1].End {
				t.Fatalf("device %d: event %q [%d,%d) overlaps %q [%d,%d)",
					d, evs[i].Op.Kind, evs[i].Start, evs[i].End,
					evs[i-1].Op.Kind, evs[i-1].Start, evs[i-1].End)
			}
		}
	}
}

func TestRule1CurvatureAfterForwardBackward(t *testing.T) {
	costs := paperCosts(t, 3, 32, arch.BERTBase, 1)
	res, err := Assign(Config{Method: "gpipe", Stages: 4, MicroBatches: 4, Costs: costs})
	if err != nil {
		t.Fatal(err)
	}
	tl := res.Timeline
	// Every curvature event for (stage, micro) must start at or after the
	// forward of that (stage, micro) in step 0 (A factors) — we check the
	// weaker bound that holds for both kinds: not before the forward.
	for d := 0; d < tl.Devices; d++ {
		for _, e := range tl.Events[d] {
			if e.Op.Kind != pipeline.Curvature {
				continue
			}
			fEv, ok := tl.FindEvent(func(op *pipeline.Op) bool {
				return op.Kind == pipeline.Forward && op.Stage == e.Op.Stage &&
					op.MicroBatch == e.Op.MicroBatch && op.Step == 0 && op.Device == d
			})
			if !ok {
				t.Fatalf("no forward found for curvature event stage %d micro %d", e.Op.Stage, e.Op.MicroBatch)
			}
			if e.Start < fEv.End {
				t.Fatalf("curvature for (s%d,m%d) starts %d before forward end %d",
					e.Op.Stage, e.Op.MicroBatch, e.Start, fEv.End)
			}
		}
	}
}

func TestRule2InversionAfterCurvature(t *testing.T) {
	costs := paperCosts(t, 3, 32, arch.BERTBase, 1)
	res, err := Assign(Config{Method: "gpipe", Stages: 4, MicroBatches: 4, Costs: costs})
	if err != nil {
		t.Fatal(err)
	}
	tl := res.Timeline
	for d := 0; d < tl.Devices; d++ {
		var lastCurv, firstInv hardware.Microseconds
		firstInv = tl.Makespan + 1
		for _, e := range tl.Events[d] {
			switch e.Op.Kind {
			case pipeline.Curvature:
				if e.End > lastCurv {
					lastCurv = e.End
				}
			case pipeline.Inversion:
				if e.Start < firstInv {
					firstInv = e.Start
				}
			}
		}
		// Device-level sanity: some inversion may interleave with later
		// curvature of other factors, but no inversion may precede ALL
		// curvature on the device.
		var firstCurv hardware.Microseconds = tl.Makespan + 1
		for _, e := range tl.Events[d] {
			if e.Op.Kind == pipeline.Curvature && e.Start < firstCurv {
				firstCurv = e.Start
			}
		}
		if firstInv <= firstCurv && firstInv <= tl.Makespan {
			t.Fatalf("device %d: inversion at %d before any curvature at %d", d, firstInv, firstCurv)
		}
	}
}

func TestPreconditionEveryStep(t *testing.T) {
	costs := paperCosts(t, 3, 32, arch.BERTBase, 1)
	res, err := Assign(Config{Method: "gpipe", Stages: 4, MicroBatches: 4, Costs: costs})
	if err != nil {
		t.Fatal(err)
	}
	precs := res.Timeline.EventsOfKind(pipeline.Precondition)
	want := res.Timeline.Devices * res.Timeline.Steps
	if len(precs) != want {
		t.Fatalf("expected %d precondition events (one per device per step), got %d", want, len(precs))
	}
}

func TestInversionParallelSpreadsWork(t *testing.T) {
	costs := paperCosts(t, 3, 32, arch.BERTLarge, 2)
	single, err := Assign(Config{
		Method: "chimera", Stages: 8, MicroBatches: 8, Costs: costs,
	})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Assign(Config{
		Method: "chimera", Stages: 8, MicroBatches: 8, Costs: costs,
		InversionParallel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With splitting, the refresh should be no slower (usually faster).
	if parallel.RefreshSteps > single.RefreshSteps {
		t.Fatalf("inversion parallelism slowed refresh: %d vs %d steps",
			parallel.RefreshSteps, single.RefreshSteps)
	}
	// And sync-curvature events must appear.
	if n := len(parallel.Timeline.EventsOfKind(pipeline.SyncCurvature)); n == 0 {
		t.Fatal("expected sync-curvature events with inversion parallelism")
	}
}

func TestDataInversionParallelGPipe(t *testing.T) {
	// Figure 3 (bottom): GPipe w/ PipeFisher w/ data & inversion
	// parallelism on 8 GPUs (W=2).
	costs := paperCosts(t, 3, 32, arch.BERTBase, 2)
	res, err := Assign(Config{
		Method: "gpipe", Stages: 4, MicroBatches: 4, Costs: costs,
		DataParallelWidth: 2, InversionParallel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline.Devices != 8 {
		t.Fatalf("expected 8 devices, got %d", res.Timeline.Devices)
	}
	if res.Unassigned != 0 {
		t.Fatalf("%d items unassigned", res.Unassigned)
	}
	if res.Utilization < res.VanillaUtilization {
		t.Fatalf("utilization fell: %.3f -> %.3f", res.VanillaUtilization, res.Utilization)
	}
}

func TestUnknownMethod(t *testing.T) {
	if _, err := Assign(Config{Method: "ring", Stages: 4, MicroBatches: 4}); err == nil {
		t.Fatal("expected error for unknown method")
	}
}

func TestRefreshIntervalGrowsWithMicroBatches(t *testing.T) {
	// More micro-batches shrink the bubbles (the paper's observation:
	// "as the number of micro-batches is increased, the ratio increases").
	costs := paperCosts(t, 1, 8, arch.BERTBase, 1)
	few, err := Assign(Config{Method: "gpipe", Stages: 8, MicroBatches: 8, Costs: costs})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Assign(Config{Method: "gpipe", Stages: 8, MicroBatches: 24, Costs: costs})
	if err != nil {
		t.Fatal(err)
	}
	if many.RefreshSteps < few.RefreshSteps {
		t.Fatalf("refresh must not shrink with more micro-batches: %d (N=8) vs %d (N=24)",
			few.RefreshSteps, many.RefreshSteps)
	}
}

// Property: for random valid configurations, assignment terminates, packs
// all work somewhere (or reports leftovers), never overlaps events, and
// never lowers utilization below vanilla.
func TestAssignInvariantsProperty(t *testing.T) {
	costs, err := pipeline.CostsFor(pipeline.CostConfig{
		Arch: arch.BERTBase, BlocksPerStage: 1, MicroBatch: 8, GPU: hardware.P100,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := func(methodRaw, dRaw, nRaw uint8) bool {
		methods := []string{"gpipe", "1f1b", "chimera"}
		method := methods[int(methodRaw)%3]
		d := 2 * (1 + int(dRaw%3)) // 2, 4, 6
		n := 2 * (1 + int(nRaw%3))
		res, err := Assign(Config{Method: method, Stages: d, MicroBatches: n, Costs: costs})
		if err != nil {
			return false
		}
		tl := res.Timeline
		for dev := 0; dev < tl.Devices; dev++ {
			for i := 1; i < len(tl.Events[dev]); i++ {
				if tl.Events[dev][i].Start < tl.Events[dev][i-1].End {
					return false
				}
			}
		}
		return res.Utilization >= res.VanillaUtilization-0.02 && res.RefreshSteps >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
