package schedule

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/pipeline"
)

func TestAssignShampooSlowerRefreshThanKFAC(t *testing.T) {
	// Eigendecompositions cost ~an order of magnitude more than Cholesky
	// inversions, so Shampoo's refresh interval must be at least K-FAC's.
	costs := paperCosts(t, 3, 32, arch.BERTBase, 1)
	kf, err := Assign(Config{Method: "gpipe", Stages: 4, MicroBatches: 4, Costs: costs})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := AssignShampoo(Config{Method: "gpipe", Stages: 4, MicroBatches: 4, Costs: costs})
	if err != nil {
		t.Fatal(err)
	}
	if sh.RefreshSteps < kf.RefreshSteps {
		t.Fatalf("Shampoo refresh %d must be >= K-FAC %d", sh.RefreshSteps, kf.RefreshSteps)
	}
	// The eigen work still lands inside bubbles: no overlaps.
	tl := sh.Timeline
	for d := 0; d < tl.Devices; d++ {
		for i := 1; i < len(tl.Events[d]); i++ {
			if tl.Events[d][i].Start < tl.Events[d][i-1].End {
				t.Fatalf("device %d: Shampoo events overlap", d)
			}
		}
	}
	// And the packer split the long eigen items: at least one factor's
	// inversion appears as multiple events on some device.
	var invEvents int
	for d := 0; d < tl.Devices; d++ {
		for _, e := range tl.Events[d] {
			if e.Op.Kind == pipeline.Inversion {
				invEvents++
			}
		}
	}
	if invEvents == 0 {
		t.Fatal("no eigendecomposition events packed")
	}
}

func TestAssignShampooCustomMultiplier(t *testing.T) {
	costs := paperCosts(t, 3, 32, arch.BERTBase, 1)
	mild, err := AssignShampoo(Config{
		Method: "gpipe", Stages: 4, MicroBatches: 4, Costs: costs,
		InversionCostMultiplier: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	harsh, err := AssignShampoo(Config{
		Method: "gpipe", Stages: 4, MicroBatches: 4, Costs: costs,
		InversionCostMultiplier: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if harsh.KFACWorkTime <= mild.KFACWorkTime {
		t.Fatal("higher eigen cost must increase total packed work")
	}
	if harsh.RefreshSteps < mild.RefreshSteps {
		t.Fatalf("harsher eigen cost cannot speed up refresh: %d vs %d",
			harsh.RefreshSteps, mild.RefreshSteps)
	}
}

func TestAssignSAMHidesWorkInBubbles(t *testing.T) {
	// §5: SAM doubles the work of SGD and thus can potentially double
	// accelerator utilization. With GPipe's large bubbles (43% idle), a
	// sizeable share of the extra pass must hide.
	costs := paperCosts(t, 3, 32, arch.BERTBase, 1)
	res, err := AssignSAM(Config{Method: "gpipe", Stages: 4, MicroBatches: 4, Costs: costs})
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization <= res.VanillaUtilization {
		t.Fatalf("SAM packing must raise utilization: %.3f -> %.3f",
			res.VanillaUtilization, res.Utilization)
	}
	if res.HiddenFraction <= 0.2 {
		t.Fatalf("hidden fraction %.3f too small for GPipe bubbles", res.HiddenFraction)
	}
	if res.HiddenFraction > 1 {
		t.Fatalf("hidden fraction %.3f exceeds 1", res.HiddenFraction)
	}
	// Extra events never overlap base work.
	tl := res.Timeline
	for d := 0; d < tl.Devices; d++ {
		for i := 1; i < len(tl.Events[d]); i++ {
			if tl.Events[d][i].Start < tl.Events[d][i-1].End {
				t.Fatalf("device %d: SAM events overlap", d)
			}
		}
	}
}

func TestAssignSAMDependencies(t *testing.T) {
	// The extra forward of stage s for micro-batch m may not start before
	// the first-pass backward of (s, m).
	costs := paperCosts(t, 3, 32, arch.BERTBase, 1)
	res, err := AssignSAM(Config{Method: "1f1b", Stages: 4, MicroBatches: 4, Costs: costs})
	if err != nil {
		t.Fatal(err)
	}
	tl := res.Timeline
	for d := 0; d < tl.Devices; d++ {
		// Partition events: base backward ends per (stage, micro), and
		// extra forward starts (Step == -1).
		bEnd := make(map[[2]int]int64)
		for _, e := range tl.Events[d] {
			if e.Op.Kind == pipeline.Backward && e.Op.Step == 0 {
				bEnd[[2]int{e.Op.Stage, e.Op.MicroBatch}] = int64(e.End)
			}
		}
		for _, e := range tl.Events[d] {
			if e.Op.Step == -1 && e.Op.Kind == pipeline.Forward {
				if end, ok := bEnd[[2]int{e.Op.Stage, e.Op.MicroBatch}]; ok {
					if int64(e.Start) < end {
						t.Fatalf("extra forward (s%d,m%d) starts %d before first-pass backward end %d",
							e.Op.Stage, e.Op.MicroBatch, e.Start, end)
					}
				}
			}
		}
	}
}

func TestAssignSAMChimeraUnsupported(t *testing.T) {
	costs := paperCosts(t, 3, 32, arch.BERTBase, 1)
	if _, err := AssignSAM(Config{Method: "chimera", Stages: 4, MicroBatches: 4, Costs: costs}); err == nil {
		t.Fatal("expected error for chimera SAM")
	}
}
