package schedule

import (
	"testing"

	"repro/internal/hardware"
	"repro/internal/pipeline"
)

func tunerCosts(nFactors int) pipeline.StageCosts {
	c := pipeline.StageCosts{Forward: 100, Backward: 200, Precondition: 25, OptStep: 10}
	for i := 0; i < nFactors; i++ {
		c.CurvatureUnits = append(c.CurvatureUnits, 6)
		c.CurvaturePerMicroBatch += 6
		c.InversionUnits = append(c.InversionUnits, 10)
	}
	return c
}

func TestEnumerateFiltersInvalidCandidates(t *testing.T) {
	cands := Enumerate(Space{Stages: 3, MicroBatches: 4, DataParallelWidth: 1, MaxRefreshSteps: 2})
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for _, c := range cands {
		if c.Method == "chimera" {
			t.Fatalf("chimera enumerated for odd stage count: %v", c)
		}
		if c.InversionParallel {
			t.Fatalf("inversion sharding enumerated for W=1 gpipe/1f1b: %v", c)
		}
		if c.RefreshSteps < 1 || c.RefreshSteps > 2 {
			t.Fatalf("K out of range: %v", c)
		}
		if !c.Overlap && c.CarryDepth != 0 {
			t.Fatalf("carry depth on serialized candidate: %v", c)
		}
	}
	// gpipe + 1f1b, K in {1,2}, overlap in {false,true} = 8.
	if len(cands) != 8 {
		t.Fatalf("len = %d, want 8: %v", len(cands), cands)
	}
}

func TestEnumerateChimeraAndInvparAndDepth(t *testing.T) {
	cands := Enumerate(Space{Stages: 4, MicroBatches: 4, DataParallelWidth: 2, MaxRefreshSteps: 1, MaxCarryDepth: 3})
	var sawChimera, sawInvpar, sawDeep bool
	for _, c := range cands {
		if c.Method == "chimera" {
			sawChimera = true
		}
		if c.InversionParallel {
			sawInvpar = true
		}
		if c.CarryDepth == 3 {
			if !c.Overlap {
				t.Fatalf("deep carry without overlap: %v", c)
			}
			sawDeep = true
		}
	}
	if !sawChimera || !sawInvpar || !sawDeep {
		t.Fatalf("missing variants (chimera=%v invpar=%v deep=%v): %v", sawChimera, sawInvpar, sawDeep, cands)
	}
}

func TestRankCandidatesOrdersByStepTime(t *testing.T) {
	base := Config{Stages: 2, MicroBatches: 4, Costs: tunerCosts(4), DataParallelWidth: 1}
	cands := Enumerate(Space{Stages: 2, MicroBatches: 4, DataParallelWidth: 1, MaxRefreshSteps: 4})
	preds := RankCandidates(base, cands)
	if len(preds) != len(cands) {
		t.Fatalf("predictions dropped: %d of %d", len(preds), len(cands))
	}
	for i := 1; i < len(preds); i++ {
		if preds[i].StepTime < preds[i-1].StepTime {
			t.Fatalf("not sorted at %d: %v then %v", i, preds[i-1], preds[i])
		}
	}
	// 1f1b's bubble fraction beats gpipe's for any K on this topology; the
	// best candidate must not be a gpipe round.
	if best := preds[0].Candidate; best.Method == "gpipe" {
		t.Fatalf("gpipe ranked best: %v (predictions %v)", best, preds[:3])
	}
	// Predictions must be consistent with direct Predict calls.
	p, err := Predict(base, preds[0].Candidate)
	if err != nil {
		t.Fatal(err)
	}
	if p.StepTime != preds[0].StepTime {
		t.Fatalf("Predict disagrees with RankCandidates: %d vs %d", p.StepTime, preds[0].StepTime)
	}
}

func TestRankCandidatesTieBreaksTowardSerialized(t *testing.T) {
	// With every duration 1, schedules are tiny and many candidates tie;
	// the serialized variant must rank ahead of its overlapped twin.
	costs := pipeline.StageCosts{Forward: 1, Backward: 1, Precondition: 1, OptStep: 1,
		CurvatureUnits: []hardware.Microseconds{1, 1}, CurvaturePerMicroBatch: 2,
		InversionUnits: []hardware.Microseconds{1, 1}}
	base := Config{Stages: 2, MicroBatches: 2, Costs: costs, DataParallelWidth: 1}
	preds := RankCandidates(base, []Candidate{
		{Method: "1f1b", RefreshSteps: 2, Overlap: true},
		{Method: "1f1b", RefreshSteps: 2},
	})
	if len(preds) != 2 {
		t.Fatalf("predictions dropped: %v", preds)
	}
	if preds[0].StepTime == preds[1].StepTime && preds[0].Candidate.Overlap {
		t.Fatalf("tie broke toward overlap: %v", preds)
	}
}
