package schedule

import (
	"fmt"
	"testing"

	"repro/internal/hardware"
	"repro/internal/pipeline"
)

// spillConfig is a configuration whose refresh work cannot fit one window's
// bubbles (the costs of TestExecutableRoundDistributesWork, which overflow
// even a K = 2 window), so the overlap carry set is non-empty.
func spillConfig(method string, k int) Config {
	cfg := execTestConfig(method)
	// Scale the refresh work with the window length so it overflows the
	// window's bubbles at every K under test.
	for i := range cfg.Costs.CurvatureUnits {
		cfg.Costs.CurvatureUnits[i] = hardware.Microseconds(60 * k)
		cfg.Costs.InversionUnits[i] = hardware.Microseconds(80 * k)
	}
	cfg.Costs.CurvaturePerMicroBatch = hardware.Microseconds(4 * 60 * k)
	cfg.RefreshSteps = k
	return cfg
}

// kfacOpCounts tallies refresh ops by (kind, generation).
func kfacOpCounts(s *pipeline.Schedule) (curv, inv, carriedCurv, carriedInv int) {
	for _, op := range s.Ops {
		switch op.Kind {
		case pipeline.Curvature:
			curv++
			if op.Generation == 1 {
				carriedCurv++
			}
		case pipeline.Inversion:
			inv++
			if op.Generation == 1 {
				carriedInv++
			}
		}
	}
	return
}

// Overlap must be invisible when the window holds the whole refresh: with
// bubbles large enough for every item, the overlapped schedule carries
// nothing and is op-for-op identical to the serialized one.
func TestOverlapNoSpillIdenticalToSerialized(t *testing.T) {
	for _, method := range []string{"gpipe", "1f1b", "chimera"} {
		t.Run(method, func(t *testing.T) {
			cfg := execTestConfig(method)
			cfg.RefreshSteps = 2
			serial, err := Executable(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Overlap = true
			over, err := Executable(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(over.Ops) != len(serial.Ops) {
				t.Fatalf("overlap emitted %d ops, serialized %d", len(over.Ops), len(serial.Ops))
			}
			for i := range serial.Ops {
				a, b := serial.Ops[i], over.Ops[i]
				if a.Kind != b.Kind || a.Device != b.Device || a.Stage != b.Stage ||
					a.MicroBatch != b.MicroBatch || a.Factor != b.Factor || a.Step != b.Step ||
					b.Generation != 0 {
					t.Fatalf("op %d differs: serialized %+v, overlap %+v", i, a, b)
				}
			}
			for d := range serial.Order {
				if len(serial.Order[d]) != len(over.Order[d]) {
					t.Fatalf("device %d order length differs", d)
				}
				for i := range serial.Order[d] {
					if serial.Order[d][i] != over.Order[d][i] {
						t.Fatalf("device %d order differs at %d: %d vs %d",
							d, i, serial.Order[d][i], over.Order[d][i])
					}
				}
			}
		})
	}
}

// With spilling work, the overlapped schedule must carry part of the
// refresh as generation-1 ops, stay runnable, keep the op population of
// exactly one refresh, and honor the generation contract: carried
// curvature has no in-window forward/backward dependency, own-generation
// inversions of a layer depend on the layer's carried inversions (fold
// order), and preconditions cover both generations' inversions up to their
// step.
func TestOverlapCarriesSpillAndStaysRunnable(t *testing.T) {
	for _, method := range []string{"gpipe", "1f1b", "chimera"} {
		for _, k := range []int{1, 2} {
			t.Run(fmt.Sprintf("%s/K%d", method, k), func(t *testing.T) {
				cfg := spillConfig(method, k)
				serial, err := Executable(cfg)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Overlap = true
				over, err := Executable(cfg)
				if err != nil {
					t.Fatal(err)
				}
				tl, err := pipeline.Run(over)
				if err != nil {
					t.Fatalf("overlapped schedule stalls: %v", err)
				}
				sCurv, sInv, _, _ := kfacOpCounts(serial)
				oCurv, oInv, carriedCurv, carriedInv := kfacOpCounts(over)
				if oCurv != sCurv || oInv != sInv {
					t.Fatalf("overlap changed the refresh op population: %d/%d curv, %d/%d inv",
						oCurv, sCurv, oInv, sInv)
				}
				if carriedCurv+carriedInv == 0 {
					t.Fatal("spilling configuration carried nothing: overlap had no effect")
				}
				for _, op := range over.Ops {
					switch {
					case op.Kind == pipeline.Curvature && op.Generation == 1:
						for _, dep := range op.Deps {
							d := over.Ops[dep]
							if d.Kind == pipeline.Forward || d.Kind == pipeline.Backward {
								t.Fatalf("carried curvature op %d depends on in-window %v", op.ID, d.Kind)
							}
						}
					case op.Kind == pipeline.Inversion && op.Generation == 0:
						// Must depend on every carried inversion of its layer pair.
						deps := map[int]bool{}
						for _, dep := range op.Deps {
							deps[dep] = true
						}
						for _, other := range over.Ops {
							if other.Kind == pipeline.Inversion && other.Generation == 1 &&
								other.Stage == op.Stage &&
								(other.Factor == op.Factor || other.Factor == pairFactor(op.Factor)) &&
								!deps[other.ID] {
								t.Fatalf("own-generation inversion %d misses fold-order dep on carried inversion %d",
									op.ID, other.ID)
							}
						}
					case op.Kind == pipeline.Precondition:
						deps := map[int]bool{}
						for _, dep := range op.Deps {
							deps[dep] = true
						}
						for _, other := range over.Ops {
							if other.Kind == pipeline.Inversion && other.Stage == op.Stage &&
								other.Step <= op.Step && !deps[other.ID] {
								t.Fatalf("step-%d precondition of stage %d misses gen-%d inversion %d of step %d",
									op.Step, op.Stage, other.Generation, other.ID, other.Step)
							}
						}
					}
				}
				// The throughput claim at the modeled level: the overlapped
				// steady-state window never takes longer than the serialized
				// one (the spill no longer extends the pre-tail block).
				stl, err := pipeline.Run(serial)
				if err != nil {
					t.Fatal(err)
				}
				if tl.Makespan > stl.Makespan {
					t.Fatalf("overlapped window makespan %d exceeds serialized %d", tl.Makespan, stl.Makespan)
				}
			})
		}
	}
}

// Overlap and FrontLoadRefresh are mutually exclusive.
func TestOverlapRejectsFrontLoad(t *testing.T) {
	cfg := execTestConfig("gpipe")
	cfg.Overlap = true
	cfg.FrontLoadRefresh = true
	if _, err := Executable(cfg); err == nil {
		t.Fatal("Overlap + FrontLoadRefresh must be rejected")
	}
}

// AdaptiveRoundLength returns Assign's measured refresh window: at least 1,
// larger for configurations whose refresh work overflows one step's
// bubbles, and consistent with Assign's own report.
func TestAdaptiveRoundLength(t *testing.T) {
	small := execTestConfig("gpipe")
	k, err := AdaptiveRoundLength(small)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Assign(small)
	if err != nil {
		t.Fatal(err)
	}
	if k != res.RefreshSteps {
		t.Fatalf("adaptive K %d != Assign's measured refresh steps %d", k, res.RefreshSteps)
	}
	big := spillConfig("gpipe", 4)
	kBig, err := AdaptiveRoundLength(big)
	if err != nil {
		t.Fatal(err)
	}
	if kBig < 2 {
		t.Fatalf("heavy refresh work must need a multi-step window, got K=%d", kBig)
	}
	if kBig < k {
		t.Fatalf("adaptive K not monotone in refresh work: heavy %d < light %d", kBig, k)
	}
}
