package schedule

import (
	"fmt"

	"repro/internal/pipeline"
)

// refreshKind reports whether the kind is K-FAC refresh work — the
// side-path ops the engine's degradation ladder may treat as succeeded
// after their retries are exhausted (the paper's §3.1 staleness rule
// extended across failures: serving an older generation's inverses is
// by-design acceptable).
func refreshKind(k pipeline.WorkKind) bool {
	switch k {
	case pipeline.Curvature, pipeline.Inversion, pipeline.SyncCurvature:
		return true
	}
	return false
}

// ValidateDegradedSafety proves a schedule is safe to execute under the
// engine's degraded mode: a refresh op that failed past its retry budget is
// treated as complete (its dependents proceed), which is only sound when no
// base-path op consumes a refresh op's *output*. Concretely, no
// non-refresh op may depend on a refresh op — with one deliberate
// exception: Precondition may depend on Inversion, because preconditioning
// tolerates absent or stale inverses by construction (layers without usable
// inverses fall back to the unpreconditioned gradient).
//
// The builders uphold this by shape — refresh ops feed only other refresh
// ops and the steps' Precondition anchors — so a violation means a schedule
// construction bug, caught here once per rebuild rather than as silent
// wrong math under faults.
func ValidateDegradedSafety(s *pipeline.Schedule) error {
	for _, op := range s.Ops {
		if refreshKind(op.Kind) {
			continue
		}
		for _, dep := range op.Deps {
			dk := s.Ops[dep].Kind
			if !refreshKind(dk) {
				continue
			}
			if op.Kind == pipeline.Precondition && dk == pipeline.Inversion {
				continue
			}
			return fmt.Errorf("schedule %q not degraded-safe: base-path op %s (%s) depends on refresh op %s (%s); degrading the refresh would leave the dependent reading undelivered output",
				s.Name, op.Label(), op.Kind, s.Ops[dep].Label(), dk)
		}
	}
	return nil
}
