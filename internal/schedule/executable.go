package schedule

import (
	"fmt"
	"sort"

	"repro/internal/hardware"
	"repro/internal/pipeline"
)

// Executable builds the *executable* form of one K-FAC refresh round: the
// base pipeline schedule laid out over Config.RefreshSteps consecutive
// pipeline steps (each with its own per-step precondition and optimizer
// tail) with the curvature and inversion work of ONE refresh inserted into
// the devices' op orders at the bubble positions the PipeFisher packing
// chose — across all of the round's steps, exactly the paper's 2-4-step
// refresh windows — and with real dependency edges wired so the op list can
// be *executed*: by the timing simulator and by internal/engine's real
// training executor alike. This is the single schedule form the simulator
// and the execution engine share; RefreshSteps = 1 is the degenerate
// one-step round (the historical form).
//
// Dependency edges follow the paper's rules, tightened where real math
// needs it:
//
//   - Curvature of (stage, micro, factor) depends on the forward (A
//     factors) or backward (B factors) of that micro-batch on the owning
//     device in the round's FIRST step (rule 1): a round folds the
//     statistics of the window's first batch, and spills the compute into
//     whichever later bubbles the packer found.
//   - Inversion of a factor depends on every curvature op of its *layer
//     pair* (A and B of the same layer, across all owning devices): the
//     factored Tikhonov damping couples the pair through their traces, so
//     real inversion needs both factors final (a strict superset of rule 2).
//   - Sync-curvature (when present) depends on all curvature of its stage;
//     inversions additionally depend on their stage's sync ops.
//   - The Precondition op of step j additionally depends on the inversion
//     ops of its stage that the packer assigned to steps <= j, so each step
//     deterministically preconditions with the freshest inverses that have
//     completed by that step — and with the previous refresh's (stale)
//     inverses for factors whose inversion lands in a later bubble of the
//     window, the staleness discipline of §3.1. The round's LAST step
//     depends on every inversion of the stage, so one round always
//     completes one full refresh.
//
// Work that does not fit the round's bubbles is appended at the end of the
// last step's pre-tail order (execution can always complete; only the
// timing degrades), and inversion work whose curvature spilled is deferred
// the same way so cross-device waits can never cycle.
//
// With Config.Overlap the spill is not serialized but *carried*: the
// schedule describes the steady state of overlapping windows, in which the
// refresh work that cannot fit its own window executes in FOLLOWING
// windows' early bubbles as generation-lagged ops (Op.Generation = g means
// the op runs g windows after its statistics were collected, g up to
// Config.CarryDepth-1) operating on a previous window's statistics pool.
// Carried ops are packed FIRST, deepest lag leading (they are ready the
// moment the window starts — their inputs completed in earlier windows),
// then the window's own curvature collection fills what is left — so the
// early bubbles that a serialized round must leave idle (the window's own
// statistics do not exist yet) absorb the queued refresh work instead.
// A generation's inversions of a layer additionally depend on that layer's
// deeper-lagged inversions, keeping the per-layer EMA fold order sequential
// across generations.
func Executable(cfg Config) (*pipeline.Schedule, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	k := cfg.RefreshSteps
	base, err := buildBase(cfg, k, true)
	if err != nil {
		return nil, err
	}
	tl, err := pipeline.Run(base)
	if err != nil {
		return nil, err
	}
	items := buildWorkQueue(cfg, base, tl)
	if cfg.Overlap {
		packOverlapped(items, tl, cfg)
	} else {
		packForExec(items, tl, cfg)
	}
	assignWindowSteps(items, tl, cfg)

	s := &pipeline.Schedule{
		Name:         base.Name + "+PipeFisher",
		Devices:      base.Devices,
		Stages:       base.Stages,
		MicroBatches: base.MicroBatches,
		Steps:        k,
		Ops:          append([]*pipeline.Op(nil), base.Ops...),
		Order:        make([][]int, base.Devices),
	}

	// Lookup of the FIRST step's forward/backward ops by (kind, stage,
	// micro, device) — the statistics sources of the round's curvature.
	baseID := make(map[[4]int]int, len(base.Ops))
	for _, op := range base.Ops {
		if op.Step == 0 && (op.Kind == pipeline.Forward || op.Kind == pipeline.Backward) {
			baseID[[4]int{int(op.Kind), op.Stage, op.MicroBatch, op.Device}] = op.ID
		}
	}

	// Create the K-FAC ops. Curvature first so inversion/sync deps can
	// reference them. All data-dependency maps are keyed by generation:
	// edges only bind ops of the same generation (a carried op's same-
	// generation peers that already ran did so in the previous window), plus
	// the explicit cross-generation fold-order edges on inversions.
	itemOp := make(map[*workItem]*pipeline.Op, len(items))
	curvIDs := make(map[[3]int][]int)            // (gen, stage, factor) -> curvature op ids
	stageCurvIDs := make(map[[2]int][]int)       // (gen, stage)
	syncIDs := make(map[[2]int][]int)            // (gen, stage)
	invOps := make(map[int][]*pipeline.Op)       // stage -> inversion ops, both generations
	invGenOps := make(map[[3]int][]*pipeline.Op) // (gen, stage, factor)
	newOp := func(it *workItem) *pipeline.Op {
		op := &pipeline.Op{
			ID: len(s.Ops), Kind: it.kind, Device: it.device, Stage: it.stage,
			Replica: it.replica, MicroBatch: it.micro, Factor: it.factor, Step: it.wstep,
			Generation: it.gen, Duration: maxDur(it.duration, 1),
		}
		s.Ops = append(s.Ops, op)
		itemOp[it] = op
		return op
	}
	for _, it := range items {
		if it.kind != pipeline.Curvature {
			continue
		}
		op := newOp(it)
		if it.gen == 0 {
			depKind := pipeline.Forward
			if factorKindOf(it.factor) == FactorB {
				depKind = pipeline.Backward
			}
			if id, ok := baseID[[4]int{int(depKind), it.stage, it.micro, it.device}]; ok {
				op.Deps = append(op.Deps, id)
			} else {
				return nil, fmt.Errorf("schedule: no %v op for stage %d micro %d device %d",
					depKind, it.stage, it.micro, it.device)
			}
		}
		// Carried curvature (gen 1) reads the previous window's pooled
		// statistics snapshots, complete before this window began: no
		// in-window data dependency, schedulable from the first bubble.
		curvIDs[[3]int{it.gen, it.stage, it.factor}] = append(curvIDs[[3]int{it.gen, it.stage, it.factor}], op.ID)
		stageCurvIDs[[2]int{it.gen, it.stage}] = append(stageCurvIDs[[2]int{it.gen, it.stage}], op.ID)
	}
	for _, it := range items {
		if it.kind != pipeline.SyncCurvature {
			continue
		}
		op := newOp(it)
		op.Deps = append(op.Deps, stageCurvIDs[[2]int{it.gen, it.stage}]...)
		syncIDs[[2]int{it.gen, it.stage}] = append(syncIDs[[2]int{it.gen, it.stage}], op.ID)
	}
	// Carried inversions first, deepest generation leading: shallower
	// inversions of a layer pair take cross-generation edges on every
	// deeper one (per-layer EMA fold order: an older generation folds and
	// swaps before a newer one folds on top — §3.1's freshest-completed
	// rule stays monotone in generations).
	maxGen := 0
	for _, it := range items {
		if it.gen > maxGen {
			maxGen = it.gen
		}
	}
	for gen := maxGen; gen >= 0; gen-- {
		for _, it := range items {
			if it.kind != pipeline.Inversion || it.gen != gen {
				continue
			}
			op := newOp(it)
			op.Deps = append(op.Deps, curvIDs[[3]int{gen, it.stage, it.factor}]...)
			op.Deps = append(op.Deps, curvIDs[[3]int{gen, it.stage, pairFactor(it.factor)}]...)
			op.Deps = append(op.Deps, syncIDs[[2]int{gen, it.stage}]...)
			for g2 := gen + 1; g2 <= maxGen; g2++ {
				for _, f := range []int{it.factor, pairFactor(it.factor)} {
					for _, prev := range invGenOps[[3]int{g2, it.stage, f}] {
						op.Deps = append(op.Deps, prev.ID)
					}
				}
			}
			op.Deps = dedup(op.Deps)
			invOps[op.Stage] = append(invOps[op.Stage], op)
			invGenOps[[3]int{gen, it.stage, it.factor}] = append(invGenOps[[3]int{gen, it.stage, it.factor}], op)
		}
	}
	// Each step's Precondition uses the freshest inverses completed by that
	// step: it depends on the stage's inversions packed into steps <= its
	// own. The last step depends on all of them (wstep is clamped to the
	// round), closing the refresh within the round.
	for _, op := range s.Ops {
		if op.Kind == pipeline.Precondition {
			for _, inv := range invOps[op.Stage] {
				if inv.Step <= op.Step {
					op.Deps = append(op.Deps, inv.ID)
				}
			}
		}
	}

	assembleExecOrders(s, tl, items, itemOp)
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("schedule: executable form invalid: %w", err)
	}
	return s, nil
}

// pairFactor returns the other Kronecker factor of the same layer
// (A at 2l, B at 2l+1).
func pairFactor(f int) int { return f ^ 1 }

func maxDur(a, b hardware.Microseconds) hardware.Microseconds {
	if a > b {
		return a
	}
	return b
}

func dedup(ids []int) []int {
	seen := make(map[int]bool, len(ids))
	var out []int
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// packForExec places the work items into the base timeline's bubbles the
// same way Assign's packer does — the round's bubbles span all
// RefreshSteps steps of the window — but with execution-consistent
// readiness: an inversion is ready only once *both* factors of its layer
// have complete curvature on every owning device (and the stage's
// sync-curvature, when present, has run) — matching the dependency edges
// Executable wires, so the packed per-device positions can never contradict
// the deps.
func packForExec(items []*workItem, base *pipeline.Timeline, cfg Config) {
	packOwnWindow(items, freshFree(base), cfg, nil, nil, nil)
}

// freshFree builds per-device free lists over the base timeline's bubbles.
func freshFree(base *pipeline.Timeline) []*freeList {
	free := make([]*freeList, base.Devices)
	for d := 0; d < base.Devices; d++ {
		free[d] = &freeList{gaps: base.Gaps(d, 0, base.Makespan)}
	}
	return free
}

// packOwnWindow packs the window's own-generation work items into the free
// bubbles. carried items (nil-safe) are skipped — the overlap path placed
// them already — and carryInvEnd/carryInvBlocked feed the cross-generation
// inversion constraint: an own-generation inversion must start after (or,
// when the carried one found no bubble at all, be deferred behind) the
// carried inversions of its layer pair, so the per-layer fold order the
// dependency edges prescribe is realizable on every device order.
func packOwnWindow(items []*workItem, free []*freeList, cfg Config,
	carried map[*workItem]bool, carryInvEnd map[[2]int]hardware.Microseconds, carryInvBlocked map[[2]int]bool) {
	var curv, syncs, invs []*workItem
	for _, it := range items {
		if carried[it] {
			continue
		}
		switch it.kind {
		case pipeline.Curvature:
			curv = append(curv, it)
		case pipeline.SyncCurvature:
			syncs = append(syncs, it)
		default:
			invs = append(invs, it)
		}
	}
	sort.SliceStable(curv, func(i, j int) bool { return curv[i].readyAt < curv[j].readyAt })

	curvDone := make(map[[3]int]hardware.Microseconds)      // (device, stage, factor)
	stageCurvDone := make(map[[2]int]hardware.Microseconds) // (device, stage)
	place := func(it *workItem) {
		pieces, end, ok := free[it.device].place(it.readyAt, it.duration)
		if !ok {
			it.placed = false
			return
		}
		it.placed = true
		it.placedStart = pieces[0].Start
		it.placedEnd = end
	}
	allCurvPlaced := func(stage int) bool {
		for _, it := range curv {
			if it.stage == stage && !it.placed {
				return false
			}
		}
		return true
	}
	// allPlaced gates inversions: they additionally depend on the stage's
	// sync-curvature ops, so those must have found slots too.
	allPlaced := func(stage int) bool {
		if !allCurvPlaced(stage) {
			return false
		}
		for _, it := range syncs {
			if it.stage == stage && !it.placed {
				return false
			}
		}
		return true
	}
	for _, it := range curv {
		place(it)
		if !it.placed {
			continue
		}
		key := [3]int{it.device, it.stage, it.factor}
		if it.placedEnd > curvDone[key] {
			curvDone[key] = it.placedEnd
		}
		skey := [2]int{it.device, it.stage}
		if it.placedEnd > stageCurvDone[skey] {
			stageCurvDone[skey] = it.placedEnd
		}
	}
	syncStageDone := make(map[int]hardware.Microseconds)
	for _, it := range syncs {
		// A sync is placeable once the stage's *curvature* is placed —
		// checking the sync items themselves here would see the item
		// under consideration (still unplaced) and refuse every sync,
		// deferring all of the stage's inversions out of the bubbles.
		if !allCurvPlaced(it.stage) {
			it.placed = false
			continue
		}
		for _, ow := range stageOwners(cfg, it.stage) {
			if t := stageCurvDone[[2]int{ow.device, it.stage}]; t > it.readyAt {
				it.readyAt = t
			}
		}
		place(it)
		if it.placed && it.placedEnd > syncStageDone[it.stage] {
			syncStageDone[it.stage] = it.placedEnd
		}
	}
	for _, it := range invs {
		if !allPlaced(it.stage) {
			// Curvature spilled out of the bubbles: defer the inversion to
			// the end-of-round position too, so waits can't cycle.
			it.placed = false
			continue
		}
		if carryInvBlocked[[2]int{it.stage, it.factor}] || carryInvBlocked[[2]int{it.stage, pairFactor(it.factor)}] {
			// A carried inversion of the layer pair found no bubble: this
			// inversion must order after it, i.e. in the end-of-round
			// deferred block too.
			it.placed = false
			continue
		}
		for _, ow := range stageOwners(cfg, it.stage) {
			for _, f := range []int{it.factor, pairFactor(it.factor)} {
				if t := curvDone[[3]int{ow.device, it.stage, f}]; t > it.readyAt {
					it.readyAt = t
				}
			}
		}
		if t := syncStageDone[it.stage]; t > it.readyAt {
			it.readyAt = t
		}
		for _, f := range []int{it.factor, pairFactor(it.factor)} {
			if t := carryInvEnd[[2]int{it.stage, f}]; t > it.readyAt {
				it.readyAt = t
			}
		}
		place(it)
	}
}

// packOverlapped computes the overlapped-window steady state: the carry set
// — the refresh work that executes lagged, in the following windows' early
// bubbles — is grown to a fixed point so the schedule is self-consistent
// (what spills out of the window is exactly what the window absorbs as
// carried work from its predecessors; every window of the steady state is
// identical). Each iteration places the current generation assignment
// (deepest generations first — they have been queued longest and gate the
// fold order) and promotes one generation deeper, up to
// Config.CarryDepth-1, closed over the lag-monotonicity constraints of
// carryClosure. Promotion is targeted:
//
//   - Every unplaced generation-0 item promotes (classic depth-2 carry:
//     lagging makes it ready at window start instead of after its
//     statistics sources, which is what lets it use the early bubbles).
//   - A carried item promotes only when it was BLOCKED — deferred behind
//     its generation's spilled curvature/sync or a spilled deeper
//     inversion of its layer pair — because one more lag decouples it
//     from the spilled gate (the gate's pool work completes in an earlier
//     window) and it becomes bubble-placeable. A carried item that merely
//     found no free bubble stays: it is already ready at window start, so
//     deeper lag cannot improve its placement, only its staleness.
//
// Items that hit the depth cap and still do not fit stay at the deepest
// generation and serialize before that window's tail, exactly like the
// serialized packer's spill. The loop terminates because generations only
// grow and are bounded by the depth; when nothing spills on the first
// iteration, the result is identical to the serialized packing, and at
// CarryDepth 2 the targeted rule degenerates to promoting every unplaced
// generation-0 item — the committed depth-2 behavior, unchanged.
func packOverlapped(items []*workItem, base *pipeline.Timeline, cfg Config) {
	depth := cfg.CarryDepth
	if depth < 2 {
		depth = 2
	}
	for {
		placeOverlapRound(items, base, cfg)
		grew := false
		for _, it := range items {
			if it.placed || it.gen >= depth-1 {
				continue
			}
			if it.gen == 0 || it.blocked {
				it.gen++
				grew = true
			}
		}
		if !grew {
			break
		}
		carryClosure(items)
	}
}

// carryClosure restores lag-monotonicity within one statistics generation
// after promotions: a sync-curvature depends on ALL the stage's curvature,
// so its lag must be at least the stage's deepest curvature lag; an
// inversion depends on its layer pair's curvature and the stage's syncs, so
// its lag must cover both. (Ops at lag g execute g windows after the
// statistics were collected; a consumer at a lag below its producer would
// run in an earlier window than its inputs.) Curvature carries individually
// — each micro-batch term folds into the generation's pooled partials
// independently — and deeper-lag work of OTHER statistics generations never
// constrains this one: cross-generation order is enforced by round
// sequencing, not edges.
func carryClosure(items []*workItem) {
	curvGen := make(map[[2]int]int) // (stage, factor) -> max curvature gen
	stageCurvGen := make(map[int]int)
	for _, it := range items {
		if it.kind != pipeline.Curvature {
			continue
		}
		key := [2]int{it.stage, it.factor}
		if it.gen > curvGen[key] {
			curvGen[key] = it.gen
		}
		if it.gen > stageCurvGen[it.stage] {
			stageCurvGen[it.stage] = it.gen
		}
	}
	syncGen := make(map[int]int) // stage -> max sync gen
	for _, it := range items {
		if it.kind != pipeline.SyncCurvature {
			continue
		}
		if g := stageCurvGen[it.stage]; g > it.gen {
			it.gen = g
		}
		if it.gen > syncGen[it.stage] {
			syncGen[it.stage] = it.gen
		}
	}
	for _, it := range items {
		if it.kind != pipeline.Inversion {
			continue
		}
		for _, f := range []int{it.factor, pairFactor(it.factor)} {
			if g := curvGen[[2]int{it.stage, f}]; g > it.gen {
				it.gen = g
			}
		}
		if g := syncGen[it.stage]; g > it.gen {
			it.gen = g
		}
	}
}

// placeOverlapRound performs one placement pass of the overlapped steady
// state: carried generations first, deepest lag first — each generation's
// curvature is ready at window start (its statistics are a previous
// window's pooled snapshots, complete before this window began) and its
// syncs and inversions chain off same-generation placements only, exactly
// mirroring the dependency edges (same-generation edges bind ops of the
// same statistics pool within the window; shallower lags of that pool ran
// in earlier windows). Then the window's own generation fills the remaining
// bubbles. Inversion ends/blocks accumulate across generations so that a
// shallower inversion of the same layer pair always orders after the deeper
// ones — the per-layer EMA fold order.
func placeOverlapRound(items []*workItem, base *pipeline.Timeline, cfg Config) {
	free := freshFree(base)
	maxGen := 0
	for _, it := range items {
		it.placed = false
		it.placedStart = 0
		it.placedEnd = 0
		it.blocked = false
		// Sync and inversion readiness is derived during packing; carried
		// curvature is ready at window start. Own-window curvature keeps
		// its buildWorkQueue readiness. An item's generation never
		// decreases, so overwriting its readiness is safe across
		// fixed-point iterations.
		if it.kind != pipeline.Curvature || it.gen > 0 {
			it.readyAt = 0
		}
		if it.gen > maxGen {
			maxGen = it.gen
		}
	}
	place := func(it *workItem) {
		pieces, end, ok := free[it.device].place(it.readyAt, it.duration)
		if !ok {
			it.placed = false
			return
		}
		it.placed = true
		it.placedStart = pieces[0].Start
		it.placedEnd = end
	}
	carried := make(map[*workItem]bool)
	for _, it := range items {
		if it.gen > 0 {
			carried[it] = true
		}
	}
	// carryInvEnd/carryInvBlocked see only strictly DEEPER generations than
	// the one being placed (genInvEnd/genInvBlocked buffer the current one):
	// the fold-order constraint is cross-generation; same-generation
	// inversions of a layer pair share one statistics pool and carry no
	// ordering edges.
	carryInvEnd := make(map[[2]int]hardware.Microseconds) // (stage, factor)
	carryInvBlocked := make(map[[2]int]bool)
	for gen := maxGen; gen >= 1; gen-- {
		genInvEnd := make(map[[2]int]hardware.Microseconds)
		genInvBlocked := make(map[[2]int]bool)
		curvDone := make(map[[2]int]hardware.Microseconds) // (device, stage)
		pairDone := make(map[[3]int]hardware.Microseconds) // (device, stage, factor)
		curvUnplaced := make(map[int]bool)                 // stage
		for _, it := range items {
			if it.gen != gen || it.kind != pipeline.Curvature {
				continue
			}
			place(it)
			if !it.placed {
				curvUnplaced[it.stage] = true
				continue
			}
			key := [3]int{it.device, it.stage, it.factor}
			if it.placedEnd > pairDone[key] {
				pairDone[key] = it.placedEnd
			}
			skey := [2]int{it.device, it.stage}
			if it.placedEnd > curvDone[skey] {
				curvDone[skey] = it.placedEnd
			}
		}
		syncDone := make(map[int]hardware.Microseconds)
		syncUnplaced := make(map[int]bool)
		for _, it := range items {
			if it.gen != gen || it.kind != pipeline.SyncCurvature {
				continue
			}
			if curvUnplaced[it.stage] {
				it.placed = false
				it.blocked = true
				syncUnplaced[it.stage] = true
				continue
			}
			for _, ow := range stageOwners(cfg, it.stage) {
				if t := curvDone[[2]int{ow.device, it.stage}]; t > it.readyAt {
					it.readyAt = t
				}
			}
			place(it)
			if !it.placed {
				syncUnplaced[it.stage] = true
				continue
			}
			if it.placedEnd > syncDone[it.stage] {
				syncDone[it.stage] = it.placedEnd
			}
		}
		for _, it := range items {
			if it.gen != gen || it.kind != pipeline.Inversion {
				continue
			}
			key := [2]int{it.stage, it.factor}
			if curvUnplaced[it.stage] || syncUnplaced[it.stage] ||
				carryInvBlocked[key] || carryInvBlocked[[2]int{it.stage, pairFactor(it.factor)}] {
				it.placed = false
				it.blocked = true
				genInvBlocked[key] = true
				continue
			}
			for _, ow := range stageOwners(cfg, it.stage) {
				for _, f := range []int{it.factor, pairFactor(it.factor)} {
					if t := pairDone[[3]int{ow.device, it.stage, f}]; t > it.readyAt {
						it.readyAt = t
					}
				}
			}
			if t := syncDone[it.stage]; t > it.readyAt {
				it.readyAt = t
			}
			for _, f := range []int{it.factor, pairFactor(it.factor)} {
				if t := carryInvEnd[[2]int{it.stage, f}]; t > it.readyAt {
					it.readyAt = t
				}
			}
			place(it)
			if !it.placed {
				genInvBlocked[key] = true
				continue
			}
			if it.placedEnd > genInvEnd[key] {
				genInvEnd[key] = it.placedEnd
			}
		}
		for key, end := range genInvEnd {
			if end > carryInvEnd[key] {
				carryInvEnd[key] = end
			}
		}
		for key := range genInvBlocked {
			carryInvBlocked[key] = true
		}
	}
	packOwnWindow(items, free, cfg, carried, carryInvEnd, carryInvBlocked)
}

// assignWindowSteps maps every packed work item to the step of the refresh
// window it executes in (workItem.wstep): the step era its placed start
// falls into *on its own device*, where the era boundary of step j is the
// start of the device's earliest step-j tail op (sync-grad / precondition /
// opt-step) in the base timeline — items at or past a boundary belong to
// the next step's bubbles. Unplaced items go to the last step. Two
// monotonic clamps keep the assignment consistent with the dependency
// edges across devices (a dependent op can never be assigned an earlier
// step than its dependencies, which is what makes the per-step precondition
// edges acyclic): sync-curvature is clamped to its stage's curvature,
// inversion to its factor pair's curvature and its stage's syncs.
func assignWindowSteps(items []*workItem, base *pipeline.Timeline, cfg Config) {
	if cfg.FrontLoadRefresh {
		// Skip-cadence placement: the whole refresh belongs to the window's
		// first step (ordered ahead of its tail), steps 1..K-1 run stale.
		for _, it := range items {
			it.wstep = 0
		}
		return
	}
	k := cfg.RefreshSteps
	last := k - 1
	// tailStart[d][j]: start of device d's earliest step-j tail op.
	const never = hardware.Microseconds(1) << 62
	tailStart := make([][]hardware.Microseconds, base.Devices)
	for d := range tailStart {
		tailStart[d] = make([]hardware.Microseconds, k)
		for j := range tailStart[d] {
			tailStart[d][j] = never
		}
		for _, e := range base.Events[d] {
			switch e.Op.Kind {
			case pipeline.SyncGrad, pipeline.Precondition, pipeline.OptStep:
				if j := e.Op.Step; j >= 0 && j < k && e.Start < tailStart[d][j] {
					tailStart[d][j] = e.Start
				}
			}
		}
	}
	eraOf := func(it *workItem) int {
		if !it.placed {
			return last
		}
		era := 0
		for j := 0; j < last; j++ {
			if it.placedStart >= tailStart[it.device][j] {
				era = j + 1
			}
		}
		return era
	}
	// The clamp maps are keyed by generation: dependency edges only bind
	// same-generation ops, except the cross-generation fold-order edge from
	// a layer's carried inversions to the window's own — clamped last.
	curvStep := make(map[[3]int]int) // (gen, stage, factor) -> max curvature wstep
	for _, it := range items {
		if it.kind != pipeline.Curvature {
			continue
		}
		it.wstep = eraOf(it)
		key := [3]int{it.gen, it.stage, it.factor}
		if it.wstep > curvStep[key] {
			curvStep[key] = it.wstep
		}
	}
	stageCurvStep := make(map[[2]int]int) // (gen, stage)
	for key, w := range curvStep {
		skey := [2]int{key[0], key[1]}
		if w > stageCurvStep[skey] {
			stageCurvStep[skey] = w
		}
	}
	syncStep := make(map[[2]int]int) // (gen, stage) -> max sync wstep
	for _, it := range items {
		if it.kind != pipeline.SyncCurvature {
			continue
		}
		it.wstep = eraOf(it)
		if w := stageCurvStep[[2]int{it.gen, it.stage}]; w > it.wstep {
			it.wstep = w
		}
		if it.wstep > syncStep[[2]int{it.gen, it.stage}] {
			syncStep[[2]int{it.gen, it.stage}] = it.wstep
		}
	}
	maxGen := 0
	for _, it := range items {
		if it.gen > maxGen {
			maxGen = it.gen
		}
	}
	invStep := make(map[[3]int]int) // (gen, stage, factor) -> max inversion wstep
	for gen := maxGen; gen >= 0; gen-- {
		for _, it := range items {
			if it.kind != pipeline.Inversion || it.gen != gen {
				continue
			}
			it.wstep = eraOf(it)
			for _, f := range []int{it.factor, pairFactor(it.factor)} {
				if w := curvStep[[3]int{gen, it.stage, f}]; w > it.wstep {
					it.wstep = w
				}
				// Fold order: a generation's inversion of a layer runs after
				// the layer's deeper-lagged (older) inversions.
				for g2 := gen + 1; g2 <= maxGen; g2++ {
					if w := invStep[[3]int{g2, it.stage, f}]; w > it.wstep {
						it.wstep = w
					}
				}
			}
			if w := syncStep[[2]int{gen, it.stage}]; w > it.wstep {
				it.wstep = w
			}
			key := [3]int{gen, it.stage, it.factor}
			if it.wstep > invStep[key] {
				invStep[key] = it.wstep
			}
		}
	}
}

// assembleExecOrders builds each device's execution order, step by step of
// the round: the step's base forward/backward ops merged with the K-FAC
// items the packer assigned to that step by start time, followed by the
// step's tail (sync-grad, precondition, optimizer). K-FAC work that did not
// pack goes right before the last step's tail, preserving every dependency
// edge — and items assigned to step j always order before step j's tail,
// which is exactly what the per-step precondition edges assume.
func assembleExecOrders(s *pipeline.Schedule, tl *pipeline.Timeline, items []*workItem, itemOp map[*workItem]*pipeline.Op) {
	type entry struct {
		start hardware.Microseconds
		seq   int
		opID  int
	}
	const never = hardware.Microseconds(1) << 62
	k := s.Steps
	for d := 0; d < s.Devices; d++ {
		heads := make([][]entry, k)
		tails := make([][]int, k)
		seq := 0
		clamp := func(j int) int {
			if j < 0 {
				return 0
			}
			if j >= k {
				return k - 1
			}
			return j
		}
		for _, e := range tl.Events[d] {
			j := clamp(e.Op.Step)
			switch e.Op.Kind {
			case pipeline.SyncGrad, pipeline.Precondition, pipeline.OptStep:
				tails[j] = append(tails[j], e.Op.ID)
			default:
				heads[j] = append(heads[j], entry{start: e.Start, seq: seq, opID: e.Op.ID})
				seq++
			}
		}
		// Carried items take earlier sequence numbers than the window's
		// own, deepest generation first: among deferred items sharing the
		// end-of-round position, a layer's deeper-lagged inversion must
		// order before the shallower inversion that depends on it.
		maxGen := 0
		for _, it := range items {
			if it.gen > maxGen {
				maxGen = it.gen
			}
		}
		for gen := maxGen; gen >= 0; gen-- {
			for _, it := range items {
				if it.device != d || it.gen != gen {
					continue
				}
				op := itemOp[it]
				if op == nil {
					continue
				}
				start := never
				if it.placed {
					start = it.placedStart
				}
				j := clamp(it.wstep)
				heads[j] = append(heads[j], entry{start: start, seq: seq, opID: op.ID})
				seq++
			}
		}
		for j := 0; j < k; j++ {
			h := heads[j]
			sort.SliceStable(h, func(a, b int) bool {
				if h[a].start != h[b].start {
					return h[a].start < h[b].start
				}
				return h[a].seq < h[b].seq
			})
			for _, en := range h {
				s.Order[d] = append(s.Order[d], en.opID)
			}
			s.Order[d] = append(s.Order[d], tails[j]...)
		}
	}
}
