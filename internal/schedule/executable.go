package schedule

import (
	"fmt"
	"sort"

	"repro/internal/hardware"
	"repro/internal/pipeline"
)

// Executable builds a one-step *executable* schedule: the base pipeline
// schedule (including the per-step precondition and optimizer tail) with
// the K-FAC curvature and inversion work inserted into each device's op
// order at the bubble positions the PipeFisher packing chose, and with real
// dependency edges wired so the op list can be *executed* — by the timing
// simulator and by internal/engine's real training executor alike. This is
// the single schedule form the simulator and the execution engine share.
//
// Dependency edges follow the paper's rules, tightened where real math
// needs it:
//
//   - Curvature of (stage, micro, factor) depends on the forward (A
//     factors) or backward (B factors) of that micro-batch on the owning
//     device (rule 1).
//   - Inversion of a factor depends on every curvature op of its *layer
//     pair* (A and B of the same layer, across all owning devices): the
//     factored Tikhonov damping couples the pair through their traces, so
//     real inversion needs both factors final (a strict superset of rule 2).
//   - Sync-curvature (when present) depends on all curvature of its stage;
//     inversions additionally depend on their stage's sync ops.
//   - The per-step Precondition op additionally depends on its stage's
//     inversion ops, so a refresh step deterministically preconditions with
//     the freshly inverted factors.
//
// Work that does not fit the step's bubbles is appended at the end of the
// device's pre-tail order (execution can always complete; only the timing
// degrades), and inversion work whose curvature spilled is deferred the
// same way so cross-device waits can never cycle.
func Executable(cfg Config) (*pipeline.Schedule, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	base, err := buildBase(cfg, 1, true)
	if err != nil {
		return nil, err
	}
	tl, err := pipeline.Run(base)
	if err != nil {
		return nil, err
	}
	items := buildWorkQueue(cfg, base, tl)
	packForExec(items, tl, cfg)

	s := &pipeline.Schedule{
		Name:         base.Name + "+PipeFisher",
		Devices:      base.Devices,
		Stages:       base.Stages,
		MicroBatches: base.MicroBatches,
		Steps:        1,
		Ops:          append([]*pipeline.Op(nil), base.Ops...),
		Order:        make([][]int, base.Devices),
	}

	// Lookup of base forward/backward ops by (kind, stage, micro, device).
	baseID := make(map[[4]int]int, len(base.Ops))
	for _, op := range base.Ops {
		if op.Kind == pipeline.Forward || op.Kind == pipeline.Backward {
			baseID[[4]int{int(op.Kind), op.Stage, op.MicroBatch, op.Device}] = op.ID
		}
	}

	// Create the K-FAC ops. Curvature first so inversion/sync deps can
	// reference them.
	itemOp := make(map[*workItem]*pipeline.Op, len(items))
	curvIDs := make(map[[2]int][]int) // (stage, factor) -> curvature op ids
	stageCurvIDs := make(map[int][]int)
	syncIDs := make(map[int][]int)
	invIDs := make(map[int][]int)
	newOp := func(it *workItem) *pipeline.Op {
		op := &pipeline.Op{
			ID: len(s.Ops), Kind: it.kind, Device: it.device, Stage: it.stage,
			Replica: it.replica, MicroBatch: it.micro, Factor: it.factor, Step: 0,
			Duration: maxDur(it.duration, 1),
		}
		s.Ops = append(s.Ops, op)
		itemOp[it] = op
		return op
	}
	for _, it := range items {
		if it.kind != pipeline.Curvature {
			continue
		}
		op := newOp(it)
		depKind := pipeline.Forward
		if factorKindOf(it.factor) == FactorB {
			depKind = pipeline.Backward
		}
		if id, ok := baseID[[4]int{int(depKind), it.stage, it.micro, it.device}]; ok {
			op.Deps = append(op.Deps, id)
		} else {
			return nil, fmt.Errorf("schedule: no %v op for stage %d micro %d device %d",
				depKind, it.stage, it.micro, it.device)
		}
		curvIDs[[2]int{it.stage, it.factor}] = append(curvIDs[[2]int{it.stage, it.factor}], op.ID)
		stageCurvIDs[it.stage] = append(stageCurvIDs[it.stage], op.ID)
	}
	for _, it := range items {
		if it.kind != pipeline.SyncCurvature {
			continue
		}
		op := newOp(it)
		op.Deps = append(op.Deps, stageCurvIDs[it.stage]...)
		syncIDs[it.stage] = append(syncIDs[it.stage], op.ID)
	}
	for _, it := range items {
		if it.kind != pipeline.Inversion {
			continue
		}
		op := newOp(it)
		op.Deps = append(op.Deps, curvIDs[[2]int{it.stage, it.factor}]...)
		op.Deps = append(op.Deps, curvIDs[[2]int{it.stage, pairFactor(it.factor)}]...)
		op.Deps = append(op.Deps, syncIDs[it.stage]...)
		op.Deps = dedup(op.Deps)
		invIDs[it.stage] = append(invIDs[it.stage], op.ID)
	}
	// Precondition deterministically uses this step's fresh inverses.
	for _, op := range s.Ops {
		if op.Kind == pipeline.Precondition {
			op.Deps = append(op.Deps, invIDs[op.Stage]...)
		}
	}

	assembleExecOrders(s, tl, items, itemOp)
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("schedule: executable form invalid: %w", err)
	}
	return s, nil
}

// pairFactor returns the other Kronecker factor of the same layer
// (A at 2l, B at 2l+1).
func pairFactor(f int) int { return f ^ 1 }

func maxDur(a, b hardware.Microseconds) hardware.Microseconds {
	if a > b {
		return a
	}
	return b
}

func dedup(ids []int) []int {
	seen := make(map[int]bool, len(ids))
	var out []int
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// packForExec places the work items into the base timeline's bubbles the
// same way Assign's packer does, but with execution-consistent readiness:
// an inversion is ready only once *both* factors of its layer have complete
// curvature on every owning device (and the stage's sync-curvature, when
// present, has run) — matching the dependency edges Executable wires, so
// the packed per-device positions can never contradict the deps.
func packForExec(items []*workItem, base *pipeline.Timeline, cfg Config) {
	free := make([]*freeList, base.Devices)
	for d := 0; d < base.Devices; d++ {
		free[d] = &freeList{gaps: base.Gaps(d, 0, base.Makespan)}
	}
	var curv, syncs, invs []*workItem
	for _, it := range items {
		switch it.kind {
		case pipeline.Curvature:
			curv = append(curv, it)
		case pipeline.SyncCurvature:
			syncs = append(syncs, it)
		default:
			invs = append(invs, it)
		}
	}
	sort.SliceStable(curv, func(i, j int) bool { return curv[i].readyAt < curv[j].readyAt })

	curvDone := make(map[[3]int]hardware.Microseconds)      // (device, stage, factor)
	stageCurvDone := make(map[[2]int]hardware.Microseconds) // (device, stage)
	place := func(it *workItem) {
		pieces, end, ok := free[it.device].place(it.readyAt, it.duration)
		if !ok {
			it.placed = false
			return
		}
		it.placed = true
		it.placedStart = pieces[0].Start
		it.placedEnd = end
	}
	allCurvPlaced := func(stage int) bool {
		for _, it := range curv {
			if it.stage == stage && !it.placed {
				return false
			}
		}
		return true
	}
	// allPlaced gates inversions: they additionally depend on the stage's
	// sync-curvature ops, so those must have found slots too.
	allPlaced := func(stage int) bool {
		if !allCurvPlaced(stage) {
			return false
		}
		for _, it := range syncs {
			if it.stage == stage && !it.placed {
				return false
			}
		}
		return true
	}
	for _, it := range curv {
		place(it)
		if !it.placed {
			continue
		}
		key := [3]int{it.device, it.stage, it.factor}
		if it.placedEnd > curvDone[key] {
			curvDone[key] = it.placedEnd
		}
		skey := [2]int{it.device, it.stage}
		if it.placedEnd > stageCurvDone[skey] {
			stageCurvDone[skey] = it.placedEnd
		}
	}
	syncStageDone := make(map[int]hardware.Microseconds)
	for _, it := range syncs {
		// A sync is placeable once the stage's *curvature* is placed —
		// checking the sync items themselves here would see the item
		// under consideration (still unplaced) and refuse every sync,
		// deferring all of the stage's inversions out of the bubbles.
		if !allCurvPlaced(it.stage) {
			it.placed = false
			continue
		}
		for _, ow := range stageOwners(cfg, it.stage) {
			if t := stageCurvDone[[2]int{ow.device, it.stage}]; t > it.readyAt {
				it.readyAt = t
			}
		}
		place(it)
		if it.placed && it.placedEnd > syncStageDone[it.stage] {
			syncStageDone[it.stage] = it.placedEnd
		}
	}
	for _, it := range invs {
		if !allPlaced(it.stage) {
			// Curvature spilled out of the bubbles: defer the inversion to
			// the end-of-head position too, so waits can't cycle.
			it.placed = false
			continue
		}
		for _, ow := range stageOwners(cfg, it.stage) {
			for _, f := range []int{it.factor, pairFactor(it.factor)} {
				if t := curvDone[[3]int{ow.device, it.stage, f}]; t > it.readyAt {
					it.readyAt = t
				}
			}
		}
		if t := syncStageDone[it.stage]; t > it.readyAt {
			it.readyAt = t
		}
		place(it)
	}
}

// assembleExecOrders builds each device's execution order: the base
// schedule's forward/backward ops merged with the packed K-FAC ops by start
// time, followed by the step tail (sync-grad, precondition, optimizer) —
// K-FAC work that did not pack goes right before the tail, preserving every
// dependency edge.
func assembleExecOrders(s *pipeline.Schedule, tl *pipeline.Timeline, items []*workItem, itemOp map[*workItem]*pipeline.Op) {
	type entry struct {
		start hardware.Microseconds
		seq   int
		opID  int
	}
	const never = hardware.Microseconds(1) << 62
	for d := 0; d < s.Devices; d++ {
		var head []entry
		var tail []int
		for _, e := range tl.Events[d] {
			switch e.Op.Kind {
			case pipeline.SyncGrad, pipeline.Precondition, pipeline.OptStep:
				tail = append(tail, e.Op.ID)
			default:
				head = append(head, entry{start: e.Start, seq: len(head), opID: e.Op.ID})
			}
		}
		for _, it := range items {
			if it.device != d {
				continue
			}
			op := itemOp[it]
			if op == nil {
				continue
			}
			start := never
			if it.placed {
				start = it.placedStart
			}
			head = append(head, entry{start: start, seq: len(head), opID: op.ID})
		}
		sort.SliceStable(head, func(i, j int) bool {
			if head[i].start != head[j].start {
				return head[i].start < head[j].start
			}
			return head[i].seq < head[j].seq
		})
		for _, en := range head {
			s.Order[d] = append(s.Order[d], en.opID)
		}
		s.Order[d] = append(s.Order[d], tail...)
	}
}
