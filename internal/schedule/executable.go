package schedule

import (
	"fmt"
	"sort"

	"repro/internal/hardware"
	"repro/internal/pipeline"
)

// Executable builds the *executable* form of one K-FAC refresh round: the
// base pipeline schedule laid out over Config.RefreshSteps consecutive
// pipeline steps (each with its own per-step precondition and optimizer
// tail) with the curvature and inversion work of ONE refresh inserted into
// the devices' op orders at the bubble positions the PipeFisher packing
// chose — across all of the round's steps, exactly the paper's 2-4-step
// refresh windows — and with real dependency edges wired so the op list can
// be *executed*: by the timing simulator and by internal/engine's real
// training executor alike. This is the single schedule form the simulator
// and the execution engine share; RefreshSteps = 1 is the degenerate
// one-step round (the historical form).
//
// Dependency edges follow the paper's rules, tightened where real math
// needs it:
//
//   - Curvature of (stage, micro, factor) depends on the forward (A
//     factors) or backward (B factors) of that micro-batch on the owning
//     device in the round's FIRST step (rule 1): a round folds the
//     statistics of the window's first batch, and spills the compute into
//     whichever later bubbles the packer found.
//   - Inversion of a factor depends on every curvature op of its *layer
//     pair* (A and B of the same layer, across all owning devices): the
//     factored Tikhonov damping couples the pair through their traces, so
//     real inversion needs both factors final (a strict superset of rule 2).
//   - Sync-curvature (when present) depends on all curvature of its stage;
//     inversions additionally depend on their stage's sync ops.
//   - The Precondition op of step j additionally depends on the inversion
//     ops of its stage that the packer assigned to steps <= j, so each step
//     deterministically preconditions with the freshest inverses that have
//     completed by that step — and with the previous refresh's (stale)
//     inverses for factors whose inversion lands in a later bubble of the
//     window, the staleness discipline of §3.1. The round's LAST step
//     depends on every inversion of the stage, so one round always
//     completes one full refresh.
//
// Work that does not fit the round's bubbles is appended at the end of the
// last step's pre-tail order (execution can always complete; only the
// timing degrades), and inversion work whose curvature spilled is deferred
// the same way so cross-device waits can never cycle.
//
// With Config.Overlap the spill is not serialized but *carried*: the
// schedule describes the steady state of overlapping windows, in which the
// refresh work that cannot fit its own window executes in the NEXT window's
// early bubbles as generation-lagged ops (Op.Generation = 1) operating on
// the previous window's statistics. Carried ops are packed FIRST (they are
// ready the moment the window starts — their inputs completed last window),
// then the window's own curvature collection fills what is left — so the
// early bubbles that a serialized round must leave idle (the window's own
// statistics do not exist yet) absorb the queued refresh work instead.
// Generation-0 inversions of a layer additionally depend on that layer's
// carried inversions, keeping the per-layer EMA fold order sequential
// across generations.
func Executable(cfg Config) (*pipeline.Schedule, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	k := cfg.RefreshSteps
	base, err := buildBase(cfg, k, true)
	if err != nil {
		return nil, err
	}
	tl, err := pipeline.Run(base)
	if err != nil {
		return nil, err
	}
	items := buildWorkQueue(cfg, base, tl)
	if cfg.Overlap {
		packOverlapped(items, tl, cfg)
	} else {
		packForExec(items, tl, cfg)
	}
	assignWindowSteps(items, tl, cfg)

	s := &pipeline.Schedule{
		Name:         base.Name + "+PipeFisher",
		Devices:      base.Devices,
		Stages:       base.Stages,
		MicroBatches: base.MicroBatches,
		Steps:        k,
		Ops:          append([]*pipeline.Op(nil), base.Ops...),
		Order:        make([][]int, base.Devices),
	}

	// Lookup of the FIRST step's forward/backward ops by (kind, stage,
	// micro, device) — the statistics sources of the round's curvature.
	baseID := make(map[[4]int]int, len(base.Ops))
	for _, op := range base.Ops {
		if op.Step == 0 && (op.Kind == pipeline.Forward || op.Kind == pipeline.Backward) {
			baseID[[4]int{int(op.Kind), op.Stage, op.MicroBatch, op.Device}] = op.ID
		}
	}

	// Create the K-FAC ops. Curvature first so inversion/sync deps can
	// reference them. All data-dependency maps are keyed by generation:
	// edges only bind ops of the same generation (a carried op's same-
	// generation peers that already ran did so in the previous window), plus
	// the explicit cross-generation fold-order edges on inversions.
	itemOp := make(map[*workItem]*pipeline.Op, len(items))
	curvIDs := make(map[[3]int][]int)            // (gen, stage, factor) -> curvature op ids
	stageCurvIDs := make(map[[2]int][]int)       // (gen, stage)
	syncIDs := make(map[[2]int][]int)            // (gen, stage)
	invOps := make(map[int][]*pipeline.Op)       // stage -> inversion ops, both generations
	invGenOps := make(map[[3]int][]*pipeline.Op) // (gen, stage, factor)
	newOp := func(it *workItem) *pipeline.Op {
		op := &pipeline.Op{
			ID: len(s.Ops), Kind: it.kind, Device: it.device, Stage: it.stage,
			Replica: it.replica, MicroBatch: it.micro, Factor: it.factor, Step: it.wstep,
			Generation: it.gen, Duration: maxDur(it.duration, 1),
		}
		s.Ops = append(s.Ops, op)
		itemOp[it] = op
		return op
	}
	for _, it := range items {
		if it.kind != pipeline.Curvature {
			continue
		}
		op := newOp(it)
		if it.gen == 0 {
			depKind := pipeline.Forward
			if factorKindOf(it.factor) == FactorB {
				depKind = pipeline.Backward
			}
			if id, ok := baseID[[4]int{int(depKind), it.stage, it.micro, it.device}]; ok {
				op.Deps = append(op.Deps, id)
			} else {
				return nil, fmt.Errorf("schedule: no %v op for stage %d micro %d device %d",
					depKind, it.stage, it.micro, it.device)
			}
		}
		// Carried curvature (gen 1) reads the previous window's pooled
		// statistics snapshots, complete before this window began: no
		// in-window data dependency, schedulable from the first bubble.
		curvIDs[[3]int{it.gen, it.stage, it.factor}] = append(curvIDs[[3]int{it.gen, it.stage, it.factor}], op.ID)
		stageCurvIDs[[2]int{it.gen, it.stage}] = append(stageCurvIDs[[2]int{it.gen, it.stage}], op.ID)
	}
	for _, it := range items {
		if it.kind != pipeline.SyncCurvature {
			continue
		}
		op := newOp(it)
		op.Deps = append(op.Deps, stageCurvIDs[[2]int{it.gen, it.stage}]...)
		syncIDs[[2]int{it.gen, it.stage}] = append(syncIDs[[2]int{it.gen, it.stage}], op.ID)
	}
	// Carried inversions first: the window's own inversions take
	// cross-generation edges on them (per-layer EMA fold order: the carried
	// generation folds and swaps before this window's generation folds on
	// top — §3.1's freshest-completed rule stays monotone in generations).
	for _, gen := range []int{1, 0} {
		for _, it := range items {
			if it.kind != pipeline.Inversion || it.gen != gen {
				continue
			}
			op := newOp(it)
			op.Deps = append(op.Deps, curvIDs[[3]int{gen, it.stage, it.factor}]...)
			op.Deps = append(op.Deps, curvIDs[[3]int{gen, it.stage, pairFactor(it.factor)}]...)
			op.Deps = append(op.Deps, syncIDs[[2]int{gen, it.stage}]...)
			if gen == 0 {
				for _, f := range []int{it.factor, pairFactor(it.factor)} {
					for _, prev := range invGenOps[[3]int{1, it.stage, f}] {
						op.Deps = append(op.Deps, prev.ID)
					}
				}
			}
			op.Deps = dedup(op.Deps)
			invOps[op.Stage] = append(invOps[op.Stage], op)
			invGenOps[[3]int{gen, it.stage, it.factor}] = append(invGenOps[[3]int{gen, it.stage, it.factor}], op)
		}
	}
	// Each step's Precondition uses the freshest inverses completed by that
	// step: it depends on the stage's inversions packed into steps <= its
	// own. The last step depends on all of them (wstep is clamped to the
	// round), closing the refresh within the round.
	for _, op := range s.Ops {
		if op.Kind == pipeline.Precondition {
			for _, inv := range invOps[op.Stage] {
				if inv.Step <= op.Step {
					op.Deps = append(op.Deps, inv.ID)
				}
			}
		}
	}

	assembleExecOrders(s, tl, items, itemOp)
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("schedule: executable form invalid: %w", err)
	}
	return s, nil
}

// pairFactor returns the other Kronecker factor of the same layer
// (A at 2l, B at 2l+1).
func pairFactor(f int) int { return f ^ 1 }

func maxDur(a, b hardware.Microseconds) hardware.Microseconds {
	if a > b {
		return a
	}
	return b
}

func dedup(ids []int) []int {
	seen := make(map[int]bool, len(ids))
	var out []int
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// packForExec places the work items into the base timeline's bubbles the
// same way Assign's packer does — the round's bubbles span all
// RefreshSteps steps of the window — but with execution-consistent
// readiness: an inversion is ready only once *both* factors of its layer
// have complete curvature on every owning device (and the stage's
// sync-curvature, when present, has run) — matching the dependency edges
// Executable wires, so the packed per-device positions can never contradict
// the deps.
func packForExec(items []*workItem, base *pipeline.Timeline, cfg Config) {
	packOwnWindow(items, freshFree(base), cfg, nil, nil, nil)
}

// freshFree builds per-device free lists over the base timeline's bubbles.
func freshFree(base *pipeline.Timeline) []*freeList {
	free := make([]*freeList, base.Devices)
	for d := 0; d < base.Devices; d++ {
		free[d] = &freeList{gaps: base.Gaps(d, 0, base.Makespan)}
	}
	return free
}

// packOwnWindow packs the window's own-generation work items into the free
// bubbles. carried items (nil-safe) are skipped — the overlap path placed
// them already — and carryInvEnd/carryInvBlocked feed the cross-generation
// inversion constraint: an own-generation inversion must start after (or,
// when the carried one found no bubble at all, be deferred behind) the
// carried inversions of its layer pair, so the per-layer fold order the
// dependency edges prescribe is realizable on every device order.
func packOwnWindow(items []*workItem, free []*freeList, cfg Config,
	carried map[*workItem]bool, carryInvEnd map[[2]int]hardware.Microseconds, carryInvBlocked map[[2]int]bool) {
	var curv, syncs, invs []*workItem
	for _, it := range items {
		if carried[it] {
			continue
		}
		switch it.kind {
		case pipeline.Curvature:
			curv = append(curv, it)
		case pipeline.SyncCurvature:
			syncs = append(syncs, it)
		default:
			invs = append(invs, it)
		}
	}
	sort.SliceStable(curv, func(i, j int) bool { return curv[i].readyAt < curv[j].readyAt })

	curvDone := make(map[[3]int]hardware.Microseconds)      // (device, stage, factor)
	stageCurvDone := make(map[[2]int]hardware.Microseconds) // (device, stage)
	place := func(it *workItem) {
		pieces, end, ok := free[it.device].place(it.readyAt, it.duration)
		if !ok {
			it.placed = false
			return
		}
		it.placed = true
		it.placedStart = pieces[0].Start
		it.placedEnd = end
	}
	allCurvPlaced := func(stage int) bool {
		for _, it := range curv {
			if it.stage == stage && !it.placed {
				return false
			}
		}
		return true
	}
	// allPlaced gates inversions: they additionally depend on the stage's
	// sync-curvature ops, so those must have found slots too.
	allPlaced := func(stage int) bool {
		if !allCurvPlaced(stage) {
			return false
		}
		for _, it := range syncs {
			if it.stage == stage && !it.placed {
				return false
			}
		}
		return true
	}
	for _, it := range curv {
		place(it)
		if !it.placed {
			continue
		}
		key := [3]int{it.device, it.stage, it.factor}
		if it.placedEnd > curvDone[key] {
			curvDone[key] = it.placedEnd
		}
		skey := [2]int{it.device, it.stage}
		if it.placedEnd > stageCurvDone[skey] {
			stageCurvDone[skey] = it.placedEnd
		}
	}
	syncStageDone := make(map[int]hardware.Microseconds)
	for _, it := range syncs {
		// A sync is placeable once the stage's *curvature* is placed —
		// checking the sync items themselves here would see the item
		// under consideration (still unplaced) and refuse every sync,
		// deferring all of the stage's inversions out of the bubbles.
		if !allCurvPlaced(it.stage) {
			it.placed = false
			continue
		}
		for _, ow := range stageOwners(cfg, it.stage) {
			if t := stageCurvDone[[2]int{ow.device, it.stage}]; t > it.readyAt {
				it.readyAt = t
			}
		}
		place(it)
		if it.placed && it.placedEnd > syncStageDone[it.stage] {
			syncStageDone[it.stage] = it.placedEnd
		}
	}
	for _, it := range invs {
		if !allPlaced(it.stage) {
			// Curvature spilled out of the bubbles: defer the inversion to
			// the end-of-round position too, so waits can't cycle.
			it.placed = false
			continue
		}
		if carryInvBlocked[[2]int{it.stage, it.factor}] || carryInvBlocked[[2]int{it.stage, pairFactor(it.factor)}] {
			// A carried inversion of the layer pair found no bubble: this
			// inversion must order after it, i.e. in the end-of-round
			// deferred block too.
			it.placed = false
			continue
		}
		for _, ow := range stageOwners(cfg, it.stage) {
			for _, f := range []int{it.factor, pairFactor(it.factor)} {
				if t := curvDone[[3]int{ow.device, it.stage, f}]; t > it.readyAt {
					it.readyAt = t
				}
			}
		}
		if t := syncStageDone[it.stage]; t > it.readyAt {
			it.readyAt = t
		}
		for _, f := range []int{it.factor, pairFactor(it.factor)} {
			if t := carryInvEnd[[2]int{it.stage, f}]; t > it.readyAt {
				it.readyAt = t
			}
		}
		place(it)
	}
}

// packOverlapped computes the overlapped-window steady state: the carry set
// — the refresh work that executes one window late, in the next window's
// early bubbles — is grown to a fixed point so the schedule is
// self-consistent (what spills out of the window is exactly what the window
// absorbs as carried work from its predecessor; every window of the steady
// state is identical). Each iteration places the current carry set first
// (ready at window start) and the window's own work into the remaining
// bubbles; whatever still does not fit joins the carry set, closed over the
// same-generation dependency chains. The loop terminates because the carry
// set only grows and is bounded by the item count; when nothing spills on
// the first iteration, the result is identical to the serialized packing.
func packOverlapped(items []*workItem, base *pipeline.Timeline, cfg Config) {
	carried := make(map[*workItem]bool)
	for {
		placeOverlapRound(items, base, cfg, carried)
		grew := false
		for _, it := range items {
			if !it.placed && !carried[it] {
				carried[it] = true
				grew = true
			}
		}
		if !grew {
			break
		}
		carryClosure(items, carried)
	}
	for _, it := range items {
		if carried[it] {
			it.gen = 1
		}
	}
}

// carryClosure extends the carry set along same-generation dependency
// chains: a stage with carried curvature cannot run its sync-curvature (it
// depends on ALL the stage's curvature) or inversions in their own window,
// and a carried sync drags the stage's inversions with it. Inversions may
// carry individually without forcing anything else.
func carryClosure(items []*workItem, carried map[*workItem]bool) {
	curvCarried := make(map[int]bool)
	syncCarried := make(map[int]bool)
	for _, it := range items {
		if !carried[it] {
			continue
		}
		switch it.kind {
		case pipeline.Curvature:
			curvCarried[it.stage] = true
		case pipeline.SyncCurvature:
			syncCarried[it.stage] = true
		}
	}
	for _, it := range items {
		if it.kind == pipeline.SyncCurvature && curvCarried[it.stage] && !carried[it] {
			carried[it] = true
			syncCarried[it.stage] = true
		}
	}
	for _, it := range items {
		if it.kind == pipeline.Inversion && (curvCarried[it.stage] || syncCarried[it.stage]) {
			carried[it] = true
		}
	}
}

// placeOverlapRound performs one placement pass of the overlapped steady
// state: carried items first — all ready at window start, since their
// inputs (the previous window's statistics pools, and for inversions the
// previous window's curvature partials) completed before the window began —
// in the same curvature / sync / inversion phase order as the serialized
// packer, then the window's own generation into the remaining bubbles.
func placeOverlapRound(items []*workItem, base *pipeline.Timeline, cfg Config, carried map[*workItem]bool) {
	free := freshFree(base)
	for _, it := range items {
		it.placed = false
		it.placedStart = 0
		it.placedEnd = 0
		// Sync and inversion readiness is derived during packing; carried
		// curvature is ready at window start (its statistics are the
		// previous window's pooled snapshots). Own-window curvature keeps
		// its buildWorkQueue readiness. An item, once carried, stays
		// carried, so overwriting its readiness is safe across iterations.
		if it.kind != pipeline.Curvature || carried[it] {
			it.readyAt = 0
		}
	}
	place := func(it *workItem) {
		pieces, end, ok := free[it.device].place(it.readyAt, it.duration)
		if !ok {
			it.placed = false
			return
		}
		it.placed = true
		it.placedStart = pieces[0].Start
		it.placedEnd = end
	}
	carriedCurvDone := make(map[[2]int]hardware.Microseconds) // (device, stage)
	carriedPairDone := make(map[[3]int]hardware.Microseconds) // (device, stage, factor)
	carriedCurvUnplaced := make(map[int]bool)                 // stage
	for _, it := range items {
		if !carried[it] || it.kind != pipeline.Curvature {
			continue
		}
		place(it)
		if !it.placed {
			carriedCurvUnplaced[it.stage] = true
			continue
		}
		key := [3]int{it.device, it.stage, it.factor}
		if it.placedEnd > carriedPairDone[key] {
			carriedPairDone[key] = it.placedEnd
		}
		skey := [2]int{it.device, it.stage}
		if it.placedEnd > carriedCurvDone[skey] {
			carriedCurvDone[skey] = it.placedEnd
		}
	}
	carriedSyncDone := make(map[int]hardware.Microseconds)
	carriedSyncUnplaced := make(map[int]bool)
	for _, it := range items {
		if !carried[it] || it.kind != pipeline.SyncCurvature {
			continue
		}
		if carriedCurvUnplaced[it.stage] {
			it.placed = false
			carriedSyncUnplaced[it.stage] = true
			continue
		}
		for _, ow := range stageOwners(cfg, it.stage) {
			if t := carriedCurvDone[[2]int{ow.device, it.stage}]; t > it.readyAt {
				it.readyAt = t
			}
		}
		place(it)
		if !it.placed {
			carriedSyncUnplaced[it.stage] = true
			continue
		}
		if it.placedEnd > carriedSyncDone[it.stage] {
			carriedSyncDone[it.stage] = it.placedEnd
		}
	}
	carryInvEnd := make(map[[2]int]hardware.Microseconds) // (stage, factor)
	carryInvBlocked := make(map[[2]int]bool)
	for _, it := range items {
		if !carried[it] || it.kind != pipeline.Inversion {
			continue
		}
		key := [2]int{it.stage, it.factor}
		if carriedCurvUnplaced[it.stage] || carriedSyncUnplaced[it.stage] {
			it.placed = false
			carryInvBlocked[key] = true
			continue
		}
		for _, ow := range stageOwners(cfg, it.stage) {
			for _, f := range []int{it.factor, pairFactor(it.factor)} {
				if t := carriedPairDone[[3]int{ow.device, it.stage, f}]; t > it.readyAt {
					it.readyAt = t
				}
			}
		}
		if t := carriedSyncDone[it.stage]; t > it.readyAt {
			it.readyAt = t
		}
		place(it)
		if !it.placed {
			carryInvBlocked[key] = true
			continue
		}
		if it.placedEnd > carryInvEnd[key] {
			carryInvEnd[key] = it.placedEnd
		}
	}
	packOwnWindow(items, free, cfg, carried, carryInvEnd, carryInvBlocked)
}

// assignWindowSteps maps every packed work item to the step of the refresh
// window it executes in (workItem.wstep): the step era its placed start
// falls into *on its own device*, where the era boundary of step j is the
// start of the device's earliest step-j tail op (sync-grad / precondition /
// opt-step) in the base timeline — items at or past a boundary belong to
// the next step's bubbles. Unplaced items go to the last step. Two
// monotonic clamps keep the assignment consistent with the dependency
// edges across devices (a dependent op can never be assigned an earlier
// step than its dependencies, which is what makes the per-step precondition
// edges acyclic): sync-curvature is clamped to its stage's curvature,
// inversion to its factor pair's curvature and its stage's syncs.
func assignWindowSteps(items []*workItem, base *pipeline.Timeline, cfg Config) {
	if cfg.FrontLoadRefresh {
		// Skip-cadence placement: the whole refresh belongs to the window's
		// first step (ordered ahead of its tail), steps 1..K-1 run stale.
		for _, it := range items {
			it.wstep = 0
		}
		return
	}
	k := cfg.RefreshSteps
	last := k - 1
	// tailStart[d][j]: start of device d's earliest step-j tail op.
	const never = hardware.Microseconds(1) << 62
	tailStart := make([][]hardware.Microseconds, base.Devices)
	for d := range tailStart {
		tailStart[d] = make([]hardware.Microseconds, k)
		for j := range tailStart[d] {
			tailStart[d][j] = never
		}
		for _, e := range base.Events[d] {
			switch e.Op.Kind {
			case pipeline.SyncGrad, pipeline.Precondition, pipeline.OptStep:
				if j := e.Op.Step; j >= 0 && j < k && e.Start < tailStart[d][j] {
					tailStart[d][j] = e.Start
				}
			}
		}
	}
	eraOf := func(it *workItem) int {
		if !it.placed {
			return last
		}
		era := 0
		for j := 0; j < last; j++ {
			if it.placedStart >= tailStart[it.device][j] {
				era = j + 1
			}
		}
		return era
	}
	// The clamp maps are keyed by generation: dependency edges only bind
	// same-generation ops, except the cross-generation fold-order edge from
	// a layer's carried inversions to the window's own — clamped last.
	curvStep := make(map[[3]int]int) // (gen, stage, factor) -> max curvature wstep
	for _, it := range items {
		if it.kind != pipeline.Curvature {
			continue
		}
		it.wstep = eraOf(it)
		key := [3]int{it.gen, it.stage, it.factor}
		if it.wstep > curvStep[key] {
			curvStep[key] = it.wstep
		}
	}
	stageCurvStep := make(map[[2]int]int) // (gen, stage)
	for key, w := range curvStep {
		skey := [2]int{key[0], key[1]}
		if w > stageCurvStep[skey] {
			stageCurvStep[skey] = w
		}
	}
	syncStep := make(map[[2]int]int) // (gen, stage) -> max sync wstep
	for _, it := range items {
		if it.kind != pipeline.SyncCurvature {
			continue
		}
		it.wstep = eraOf(it)
		if w := stageCurvStep[[2]int{it.gen, it.stage}]; w > it.wstep {
			it.wstep = w
		}
		if it.wstep > syncStep[[2]int{it.gen, it.stage}] {
			syncStep[[2]int{it.gen, it.stage}] = it.wstep
		}
	}
	invStep := make(map[[3]int]int) // (gen, stage, factor) -> max inversion wstep
	for _, gen := range []int{1, 0} {
		for _, it := range items {
			if it.kind != pipeline.Inversion || it.gen != gen {
				continue
			}
			it.wstep = eraOf(it)
			for _, f := range []int{it.factor, pairFactor(it.factor)} {
				if w := curvStep[[3]int{gen, it.stage, f}]; w > it.wstep {
					it.wstep = w
				}
				if gen == 0 {
					// Fold order: the window's own inversion of a layer runs
					// after the layer's carried inversions.
					if w := invStep[[3]int{1, it.stage, f}]; w > it.wstep {
						it.wstep = w
					}
				}
			}
			if w := syncStep[[2]int{gen, it.stage}]; w > it.wstep {
				it.wstep = w
			}
			key := [3]int{gen, it.stage, it.factor}
			if it.wstep > invStep[key] {
				invStep[key] = it.wstep
			}
		}
	}
}

// assembleExecOrders builds each device's execution order, step by step of
// the round: the step's base forward/backward ops merged with the K-FAC
// items the packer assigned to that step by start time, followed by the
// step's tail (sync-grad, precondition, optimizer). K-FAC work that did not
// pack goes right before the last step's tail, preserving every dependency
// edge — and items assigned to step j always order before step j's tail,
// which is exactly what the per-step precondition edges assume.
func assembleExecOrders(s *pipeline.Schedule, tl *pipeline.Timeline, items []*workItem, itemOp map[*workItem]*pipeline.Op) {
	type entry struct {
		start hardware.Microseconds
		seq   int
		opID  int
	}
	const never = hardware.Microseconds(1) << 62
	k := s.Steps
	for d := 0; d < s.Devices; d++ {
		heads := make([][]entry, k)
		tails := make([][]int, k)
		seq := 0
		clamp := func(j int) int {
			if j < 0 {
				return 0
			}
			if j >= k {
				return k - 1
			}
			return j
		}
		for _, e := range tl.Events[d] {
			j := clamp(e.Op.Step)
			switch e.Op.Kind {
			case pipeline.SyncGrad, pipeline.Precondition, pipeline.OptStep:
				tails[j] = append(tails[j], e.Op.ID)
			default:
				heads[j] = append(heads[j], entry{start: e.Start, seq: seq, opID: e.Op.ID})
				seq++
			}
		}
		// Carried (gen 1) items take earlier sequence numbers than the
		// window's own: among deferred items sharing the end-of-round
		// position, a layer's carried inversion must order before the own-
		// generation inversion that depends on it.
		for _, gen := range []int{1, 0} {
			for _, it := range items {
				if it.device != d || it.gen != gen {
					continue
				}
				op := itemOp[it]
				if op == nil {
					continue
				}
				start := never
				if it.placed {
					start = it.placedStart
				}
				j := clamp(it.wstep)
				heads[j] = append(heads[j], entry{start: start, seq: seq, opID: op.ID})
				seq++
			}
		}
		for j := 0; j < k; j++ {
			h := heads[j]
			sort.SliceStable(h, func(a, b int) bool {
				if h[a].start != h[b].start {
					return h[a].start < h[b].start
				}
				return h[a].seq < h[b].seq
			})
			for _, en := range h {
				s.Order[d] = append(s.Order[d], en.opID)
			}
			s.Order[d] = append(s.Order[d], tails[j]...)
		}
	}
}
