package schedule

import (
	"fmt"
	"testing"

	"repro/internal/hardware"
	"repro/internal/pipeline"
)

func execTestConfig(method string) Config {
	costs := pipeline.StageCosts{
		Forward: 100, Backward: 200, Precondition: 25, OptStep: 10,
	}
	const nFactors = 4
	for i := 0; i < nFactors; i++ {
		costs.CurvatureUnits = append(costs.CurvatureUnits, 6)
		costs.CurvaturePerMicroBatch += 6
		costs.InversionUnits = append(costs.InversionUnits, 10)
	}
	return Config{Method: method, Stages: 4, MicroBatches: 4, Costs: costs}
}

// The executable form must be a valid, runnable schedule for every method:
// running it through the simulator proves the merged per-device orders and
// the wired dependency edges cannot deadlock an executor.
func TestExecutableRunsForAllMethods(t *testing.T) {
	for _, method := range []string{"gpipe", "1f1b", "chimera"} {
		t.Run(method, func(t *testing.T) {
			cfg := execTestConfig(method)
			s, err := Executable(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if s.Steps != 1 {
				t.Fatalf("executable schedule has %d steps, want 1", s.Steps)
			}
			tl, err := pipeline.Run(s)
			if err != nil {
				t.Fatalf("executable schedule stalls: %v", err)
			}
			if tl.Makespan <= 0 {
				t.Fatal("empty timeline")
			}
			nFactors := len(cfg.Costs.InversionUnits)
			var curv, inv, prec int
			for _, op := range s.Ops {
				switch op.Kind {
				case pipeline.Curvature:
					curv++
				case pipeline.Inversion:
					inv++
				case pipeline.Precondition:
					prec++
				}
			}
			if want := cfg.Stages * cfg.MicroBatches * nFactors; curv != want {
				t.Fatalf("%d curvature ops, want %d", curv, want)
			}
			if want := cfg.Stages * nFactors; inv != want {
				t.Fatalf("%d inversion ops, want %d", inv, want)
			}
			if prec != s.Devices {
				t.Fatalf("%d precondition ops, want one per device (%d)", prec, s.Devices)
			}
		})
	}
}

// Dependency edges follow the paper's rules: curvature after the matching
// forward (A) or backward (B) of its micro-batch, inversion after the full
// curvature of its layer pair, precondition after the stage's inversions.
func TestExecutableDependencyRules(t *testing.T) {
	for _, method := range []string{"gpipe", "chimera"} {
		t.Run(method, func(t *testing.T) {
			s, err := Executable(execTestConfig(method))
			if err != nil {
				t.Fatal(err)
			}
			for _, op := range s.Ops {
				switch op.Kind {
				case pipeline.Curvature:
					wantKind := pipeline.Forward
					if factorKindOf(op.Factor) == FactorB {
						wantKind = pipeline.Backward
					}
					var ok bool
					for _, dep := range op.Deps {
						d := s.Ops[dep]
						if d.Kind == wantKind && d.Stage == op.Stage && d.MicroBatch == op.MicroBatch {
							ok = true
						}
					}
					if !ok {
						t.Fatalf("curvature op %d (stage %d micro %d factor %d) lacks its %v dependency",
							op.ID, op.Stage, op.MicroBatch, op.Factor, wantKind)
					}
				case pipeline.Inversion:
					// Both factors of the layer pair, all micro-batches.
					got := map[[2]int]int{} // (factor, micro) -> count
					for _, dep := range op.Deps {
						d := s.Ops[dep]
						if d.Kind == pipeline.Curvature && d.Stage == op.Stage {
							got[[2]int{d.Factor, d.MicroBatch}]++
						}
					}
					for _, f := range []int{op.Factor, pairFactor(op.Factor)} {
						for m := 0; m < s.MicroBatches; m++ {
							if got[[2]int{f, m}] == 0 {
								t.Fatalf("inversion op %d (stage %d factor %d) misses curvature of factor %d micro %d",
									op.ID, op.Stage, op.Factor, f, m)
							}
						}
					}
				case pipeline.Precondition:
					var invDeps int
					for _, dep := range op.Deps {
						if s.Ops[dep].Kind == pipeline.Inversion && s.Ops[dep].Stage == op.Stage {
							invDeps++
						}
					}
					if invDeps == 0 {
						t.Fatalf("precondition op %d (stage %d) has no inversion dependency", op.ID, op.Stage)
					}
				}
			}
		})
	}
}

// K-FAC work must actually land inside the base schedule's bubbles: the
// executable timeline's curvature events overlap the vanilla timeline's
// idle gaps rather than extending the step.
func TestExecutablePacksIntoBubbles(t *testing.T) {
	cfg := execTestConfig("gpipe")
	s, err := Executable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := pipeline.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	events := tl.EventsOfKind(pipeline.Curvature)
	if len(events) == 0 {
		t.Fatal("no curvature events")
	}
	// The last stage's device has no post-backward bubble before the tail,
	// but earlier devices do: at least one curvature event must start
	// before the last forward of its device finishes its backward phase —
	// i.e. strictly inside the F/B span, not appended after it.
	var inside bool
	for _, ev := range events {
		d := ev.Op.Device
		var lastBackwardEnd hardware.Microseconds
		for _, be := range tl.Events[d] {
			if be.Op.Kind == pipeline.Backward && be.End > lastBackwardEnd {
				lastBackwardEnd = be.End
			}
		}
		if ev.Start < lastBackwardEnd {
			inside = true
			break
		}
	}
	if !inside {
		t.Fatal("no curvature work packed inside the pipeline's forward/backward span (bubbles unused)")
	}
}

// A K > 1 round lays out K pipeline steps and packs exactly ONE refresh
// into the whole window: per-step tails (precondition + optimizer) repeat K
// times, the K-FAC op population does not grow with K, every K-FAC op is
// assigned a step inside the window, and each step's precondition depends
// only on the inversions the packer assigned to steps up to its own — the
// last step's on all of them (one round = one complete refresh).
func TestExecutableRoundSpansSteps(t *testing.T) {
	for _, method := range []string{"gpipe", "1f1b", "chimera"} {
		for _, k := range []int{2, 4} {
			t.Run(fmt.Sprintf("%s/K%d", method, k), func(t *testing.T) {
				cfg := execTestConfig(method)
				cfg.RefreshSteps = k
				s, err := Executable(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if s.Steps != k {
					t.Fatalf("executable round has %d steps, want %d", s.Steps, k)
				}
				if _, err := pipeline.Run(s); err != nil {
					t.Fatalf("executable round stalls: %v", err)
				}
				nFactors := len(cfg.Costs.InversionUnits)
				var curv, inv, prec, opt int
				invByStage := map[int][]*pipeline.Op{}
				for _, op := range s.Ops {
					switch op.Kind {
					case pipeline.Curvature:
						curv++
					case pipeline.Inversion:
						inv++
						invByStage[op.Stage] = append(invByStage[op.Stage], op)
					case pipeline.Precondition:
						prec++
					case pipeline.OptStep:
						opt++
					}
					if op.Kind == pipeline.Curvature || op.Kind == pipeline.Inversion {
						if op.Step < 0 || op.Step >= k {
							t.Fatalf("%v op %d assigned step %d outside round [0,%d)", op.Kind, op.ID, op.Step, k)
						}
					}
				}
				if want := cfg.Stages * cfg.MicroBatches * nFactors; curv != want {
					t.Fatalf("round has %d curvature ops, want %d (one refresh, not %d per step)", curv, want, want)
				}
				if want := cfg.Stages * nFactors; inv != want {
					t.Fatalf("round has %d inversion ops, want %d", inv, want)
				}
				if want := k * s.Devices; prec != want || opt != want {
					t.Fatalf("round has %d precondition / %d opt ops, want %d each (one per device per step)", prec, opt, want)
				}
				for _, op := range s.Ops {
					if op.Kind != pipeline.Precondition {
						continue
					}
					deps := map[int]bool{}
					for _, dep := range op.Deps {
						deps[dep] = true
					}
					for _, iv := range invByStage[op.Stage] {
						if iv.Step <= op.Step && !deps[iv.ID] {
							t.Fatalf("step-%d precondition of stage %d misses inversion %d assigned to step %d",
								op.Step, op.Stage, iv.ID, iv.Step)
						}
						if iv.Step > op.Step && deps[iv.ID] {
							t.Fatalf("step-%d precondition of stage %d depends on inversion %d of LATER step %d",
								op.Step, op.Stage, iv.ID, iv.Step)
						}
					}
					if op.Step == k-1 {
						for _, iv := range invByStage[op.Stage] {
							if !deps[iv.ID] {
								t.Fatalf("last-step precondition of stage %d misses inversion %d: round would not complete the refresh",
									op.Stage, iv.ID)
							}
						}
					}
				}
			})
		}
	}
}

// When one step's bubbles cannot hold a whole refresh, a K = 2 round must
// spread the work across both steps' bubbles — the paper's multi-step
// refresh window, executed rather than merely modeled.
func TestExecutableRoundDistributesWork(t *testing.T) {
	cfg := execTestConfig("gpipe")
	// GPipe with 4 stages / F=100 / B=200 idles each device for roughly
	// (D-1)*(F+B) = 900us per step; 4 factors x 4 micros x 60us = 960us of
	// curvature (plus inversions) cannot fit one step's bubbles.
	for i := range cfg.Costs.CurvatureUnits {
		cfg.Costs.CurvatureUnits[i] = 60
		cfg.Costs.InversionUnits[i] = 80
	}
	cfg.Costs.CurvaturePerMicroBatch = 4 * 60
	cfg.RefreshSteps = 2
	s, err := Executable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipeline.Run(s); err != nil {
		t.Fatalf("distributed round stalls: %v", err)
	}
	perStep := map[int]int{}
	for _, op := range s.Ops {
		if op.Kind == pipeline.Curvature || op.Kind == pipeline.Inversion {
			perStep[op.Step]++
		}
	}
	if perStep[0] == 0 || perStep[1] == 0 {
		t.Fatalf("refresh work not distributed across the window: per-step K-FAC op counts %v", perStep)
	}
}

// When the bubbles cannot hold the K-FAC work, Executable must still emit a
// complete, runnable schedule (work spills to the end of the device order
// rather than being dropped).
func TestExecutableOverflowStillRuns(t *testing.T) {
	cfg := execTestConfig("gpipe")
	for i := range cfg.Costs.InversionUnits {
		cfg.Costs.InversionUnits[i] = 100000
		cfg.Costs.CurvatureUnits[i] = 100000
	}
	s, err := Executable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipeline.Run(s); err != nil {
		t.Fatalf("overflowing executable schedule stalls: %v", err)
	}
	nFactors := len(cfg.Costs.InversionUnits)
	var curv int
	for _, op := range s.Ops {
		if op.Kind == pipeline.Curvature {
			curv++
		}
	}
	if want := cfg.Stages * cfg.MicroBatches * nFactors; curv != want {
		t.Fatalf("overflow dropped curvature ops: %d, want %d", curv, want)
	}
}
