package schedule

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/pipeline"
)

// TestNoSplitAblation quantifies the paper's spilling rule ("otherwise,
// subsequent bubbles are utilized"): forbidding splits must never speed up
// the refresh and typically strands work or delays it.
func TestNoSplitAblation(t *testing.T) {
	costs := paperCosts(t, 3, 32, arch.BERTBase, 1)
	split, err := Assign(Config{Method: "gpipe", Stages: 4, MicroBatches: 4, Costs: costs})
	if err != nil {
		t.Fatal(err)
	}
	whole, err := Assign(Config{Method: "gpipe", Stages: 4, MicroBatches: 4, Costs: costs, NoSplit: true})
	if err != nil {
		t.Fatal(err)
	}
	if split.Unassigned != 0 {
		t.Fatalf("splitting packer stranded %d items", split.Unassigned)
	}
	// Either the refresh is slower or some items no longer fit.
	if whole.RefreshSteps < split.RefreshSteps && whole.Unassigned == 0 {
		t.Fatalf("NoSplit cannot be strictly better: refresh %d vs %d, unassigned %d",
			whole.RefreshSteps, split.RefreshSteps, whole.Unassigned)
	}
	// NoSplit events still never overlap.
	tl := whole.Timeline
	for d := 0; d < tl.Devices; d++ {
		for i := 1; i < len(tl.Events[d]); i++ {
			if tl.Events[d][i].Start < tl.Events[d][i-1].End {
				t.Fatalf("device %d: NoSplit events overlap", d)
			}
		}
	}
}

// TestNoSplitEventsAreWhole verifies that with NoSplit every K-FAC event
// carries its item's full duration (no fragments).
func TestNoSplitEventsAreWhole(t *testing.T) {
	costs := paperCosts(t, 3, 32, arch.BERTBase, 1)
	res, err := Assign(Config{Method: "gpipe", Stages: 4, MicroBatches: 4, Costs: costs, NoSplit: true})
	if err != nil {
		t.Fatal(err)
	}
	// Collect the set of allowed whole durations.
	allowed := map[int64]bool{}
	for _, u := range costs.CurvatureUnits {
		allowed[int64(u)] = true
	}
	for _, u := range costs.InversionUnits {
		allowed[int64(u)] = true
	}
	tl := res.Timeline
	for d := 0; d < tl.Devices; d++ {
		for _, e := range tl.Events[d] {
			if e.Op.Step != -1 {
				continue // base schedule event
			}
			if e.Op.Kind != pipeline.Curvature && e.Op.Kind != pipeline.Inversion {
				continue
			}
			if !allowed[int64(e.Duration())] {
				t.Fatalf("NoSplit produced a fragment of %d us (kind %s)", e.Duration(), e.Op.Kind)
			}
		}
	}
}
