package schedule

import (
	"fmt"
	"sort"

	"repro/internal/hardware"
	"repro/internal/pipeline"
)

// This file implements the paper's §5 generalization: "the application of
// the idea of assigning extra work to bubbles in pipelines for auxiliary
// benefits is not limited to K-FAC". Two of the paper's proposed
// directions are implemented:
//
//   - Shampoo (Gupta et al., 2018): identical Kronecker-factor shapes to
//     K-FAC, but each factor needs an eigendecomposition instead of a
//     Cholesky inversion. AssignShampoo reuses the K-FAC assignment with
//     inversion units scaled up and split across bubbles, exactly the
//     "divide the work for a single matrix into multiple pieces" strategy
//     §5 calls for.
//
//   - SAM (Foret et al., 2021): one extra forward and backward per
//     micro-batch per step to estimate sharpness, i.e. potentially twice
//     the work of SGD. AssignSAM packs the extra passes into bubbles,
//     respecting the pipeline dependencies of the second pass.

// ShampooEigenCostFactor is the default cost ratio of an eigendecomposition
// to a Cholesky inversion of the same matrix (a QR-iteration
// eigendecomposition costs roughly an order of magnitude more).
const ShampooEigenCostFactor = 12

// AssignShampoo runs the PipeFisher work assignment for Shampoo-style
// extra work: second-moment (curvature-shaped) statistics per micro-batch
// plus per-factor eigendecompositions. The returned Result's
// RefreshSteps is the preconditioner refresh interval.
func AssignShampoo(cfg Config) (*Result, error) {
	if cfg.InversionCostMultiplier == 0 {
		cfg.InversionCostMultiplier = ShampooEigenCostFactor
	}
	return Assign(cfg)
}

// SAMResult reports the outcome of packing SAM's extra passes.
type SAMResult struct {
	// Timeline is the augmented timeline with the extra passes packed.
	Timeline *pipeline.Timeline
	// VanillaTimeline is the base schedule.
	VanillaTimeline *pipeline.Timeline
	// Utilization and VanillaUtilization compare colored time.
	Utilization        float64
	VanillaUtilization float64
	// HiddenFraction is the share of one step's extra work that fits into
	// one step's bubbles (1.0 = SAM is free, the "double the utilization"
	// best case of §5).
	HiddenFraction float64
	// ExtraWorkTime is one step's extra forward+backward time per device
	// stage.
	ExtraWorkTime hardware.Microseconds
	// Unassigned counts extra-pass pieces that did not fit in the window.
	Unassigned int
}

// AssignSAM packs SAM's second forward/backward pass into the bubbles of
// one pipeline step (spilling into following steps when they do not fit —
// in that case SAM is not fully hidden and HiddenFraction < 1).
func AssignSAM(cfg Config) (*SAMResult, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if cfg.Method == "chimera" {
		return nil, fmt.Errorf("schedule: AssignSAM currently supports gpipe and 1f1b only")
	}
	const steps = 3
	vanillaSched, err := buildBase(cfg, steps, false)
	if err != nil {
		return nil, err
	}
	base, err := pipeline.Run(vanillaSched)
	if err != nil {
		return nil, err
	}

	out := &pipeline.Timeline{
		Name:     base.Name + "+SAM",
		Devices:  base.Devices,
		Steps:    base.Steps,
		Events:   make([][]pipeline.Event, base.Devices),
		Makespan: base.Makespan,
		StepEnd:  append([]hardware.Microseconds(nil), base.StepEnd...),
	}
	for d := 0; d < base.Devices; d++ {
		out.Events[d] = append([]pipeline.Event(nil), base.Events[d]...)
	}
	free := make([]*freeList, base.Devices)
	for d := 0; d < base.Devices; d++ {
		free[d] = &freeList{gaps: base.Gaps(d, 0, base.Makespan)}
	}

	w := cfg.DataParallelWidth
	// The second pass runs after the first pass's gradient exists: extra
	// forward of (stage, micro) needs the first-pass backward of that
	// micro-batch at that stage AND the extra forward of the previous
	// stage; the extra backward mirrors the usual reverse dependencies.
	type key struct{ r, stage, m int }
	placedEnd := make(map[key]hardware.Microseconds)  // extra forward ends
	placedBEnd := make(map[key]hardware.Microseconds) // extra backward ends
	unassigned := 0
	var extraTotal hardware.Microseconds
	place := func(dev int, kind pipeline.WorkKind, stage, m int, ready, dur hardware.Microseconds) (hardware.Microseconds, bool) {
		pieces, end, ok := free[dev].place(ready, dur)
		if !ok {
			unassigned++
			return 0, false
		}
		for _, p := range pieces {
			op := &pipeline.Op{
				Kind: kind, Device: dev, Stage: stage, MicroBatch: m,
				Step: -1, Duration: p.End - p.Start,
			}
			out.Events[dev] = append(out.Events[dev], pipeline.Event{Op: op, Start: p.Start, End: p.End})
		}
		return end, true
	}
	// Forwards in stage order, then backwards in reverse stage order.
	for r := 0; r < w; r++ {
		for stage := 0; stage < cfg.Stages; stage++ {
			dev := stage*w + r
			for m := 0; m < cfg.MicroBatches; m++ {
				bEv, ok := findStepEvent(base, pipeline.Backward, stage, m, dev)
				if !ok {
					continue
				}
				ready := bEv.End
				if stage > 0 {
					if prev, ok := placedEnd[key{r, stage - 1, m}]; ok && prev > ready {
						ready = prev
					}
				}
				if end, ok := place(dev, pipeline.Forward, stage, m, ready, cfg.Costs.Forward); ok {
					placedEnd[key{r, stage, m}] = end
					extraTotal += cfg.Costs.Forward
				}
			}
		}
		for stage := cfg.Stages - 1; stage >= 0; stage-- {
			dev := stage*w + r
			for m := 0; m < cfg.MicroBatches; m++ {
				fEnd, ok := placedEnd[key{r, stage, m}]
				if !ok {
					continue
				}
				ready := fEnd
				if stage < cfg.Stages-1 {
					if next, ok := placedBEnd[key{r, stage + 1, m}]; ok && next > ready {
						ready = next
					}
				}
				if end, ok := place(dev, pipeline.Backward, stage, m, ready, cfg.Costs.Backward); ok {
					placedBEnd[key{r, stage, m}] = end
					extraTotal += cfg.Costs.Backward
				}
			}
		}
	}
	for d := range out.Events {
		sort.Slice(out.Events[d], func(i, j int) bool { return out.Events[d][i].Start < out.Events[d][j].Start })
	}

	res := &SAMResult{
		Timeline:        out,
		VanillaTimeline: base,
		Unassigned:      unassigned,
		ExtraWorkTime:   hardware.Microseconds(cfg.MicroBatches) * (cfg.Costs.Forward + cfg.Costs.Backward),
	}
	res.VanillaUtilization = base.Utilization()
	res.Utilization = out.Utilization()
	// Hidden fraction: the second pass for step 0's gradients becomes
	// ready only as step 0's backwards finish, so in steady state it hides
	// in the bubbles of the *following* step. Count the extra work that
	// completed within one extra step window (by the end of step 1): if
	// everything fits there, SAM adds no wall-clock time.
	var hiddenInWindow hardware.Microseconds
	window := base.StepEnd[0]
	if len(base.StepEnd) > 1 {
		window = base.StepEnd[1]
	}
	for d := 0; d < out.Devices; d++ {
		for _, e := range out.Events[d] {
			if e.Op.Step == -1 && e.Start < window {
				end := e.End
				if end > window {
					end = window
				}
				hiddenInWindow += end - e.Start
			}
		}
	}
	perStepExtra := res.ExtraWorkTime * hardware.Microseconds(cfg.Stages*w)
	if perStepExtra > 0 {
		res.HiddenFraction = float64(hiddenInWindow) / float64(perStepExtra)
		if res.HiddenFraction > 1 {
			res.HiddenFraction = 1
		}
	}
	return res, nil
}
