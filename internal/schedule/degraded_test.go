package schedule

import (
	"strings"
	"testing"

	"repro/internal/pipeline"
)

// Every real executable schedule — all methods, multi-step rounds,
// data-parallel widths, inversion-parallel splitting, overlapped carry —
// must be degraded-safe: the engine validates this on every rebuild, so a
// builder emitting an unsafe edge would brick fault-tolerant execution.
func TestExecutableSchedulesAreDegradedSafe(t *testing.T) {
	type variant struct {
		name string
		mut  func(*Config)
	}
	variants := []variant{
		{"plain", func(c *Config) {}},
		{"round-k2", func(c *Config) { c.RefreshSteps = 2 }},
		{"w2", func(c *Config) { c.DataParallelWidth = 2 }},
		{"w2-invpar", func(c *Config) { c.DataParallelWidth = 2; c.InversionParallel = true }},
		{"overlap-k2", func(c *Config) {
			c.RefreshSteps = 2
			c.Overlap = true
			// Inflate refresh costs so the overlap carry set is non-empty
			// and carried (Generation 1) refresh edges are exercised too.
			for i := range c.Costs.CurvatureUnits {
				c.Costs.CurvatureUnits[i] = 120
				c.Costs.InversionUnits[i] = 160
			}
			c.Costs.CurvaturePerMicroBatch = 4 * 120
		}},
	}
	for _, method := range []string{"gpipe", "1f1b", "chimera"} {
		for _, v := range variants {
			t.Run(method+"/"+v.name, func(t *testing.T) {
				cfg := execTestConfig(method)
				v.mut(&cfg)
				s, err := Executable(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := ValidateDegradedSafety(s); err != nil {
					t.Fatalf("executable schedule not degraded-safe: %v", err)
				}
			})
		}
	}
}

// A hand-built schedule with a base-path op consuming refresh output must be
// rejected, and the error must name both ops so the construction bug is
// attributable.
func TestValidateDegradedSafetyRejectsBadEdge(t *testing.T) {
	s := &pipeline.Schedule{Name: "bad", Devices: 1, Stages: 1, MicroBatches: 1, Steps: 1}
	curv := &pipeline.Op{ID: 0, Kind: pipeline.Curvature, Stage: 0}
	fwd := &pipeline.Op{ID: 1, Kind: pipeline.Forward, Stage: 0, Deps: []int{0}}
	s.Ops = []*pipeline.Op{curv, fwd}
	s.Order = [][]int{{0, 1}}
	err := ValidateDegradedSafety(s)
	if err == nil {
		t.Fatal("forward-depends-on-curvature schedule accepted")
	}
	for _, want := range []string{"forward", "curvature", "not degraded-safe"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

// The one licensed exception: Precondition consuming Inversion output is
// safe by construction (absent inverses fall back to the unpreconditioned
// gradient), so the validator must not flag it.
func TestValidateDegradedSafetyAllowsPreconditionOnInversion(t *testing.T) {
	s := &pipeline.Schedule{Name: "ok", Devices: 1, Stages: 1, MicroBatches: 1, Steps: 1}
	inv := &pipeline.Op{ID: 0, Kind: pipeline.Inversion, Stage: 0}
	prec := &pipeline.Op{ID: 1, Kind: pipeline.Precondition, Stage: 0, Deps: []int{0}}
	s.Ops = []*pipeline.Op{inv, prec}
	s.Order = [][]int{{0, 1}}
	if err := ValidateDegradedSafety(s); err != nil {
		t.Fatalf("precondition-on-inversion flagged: %v", err)
	}
}
