package schedule

// AdaptiveRoundLength derives the executable round length K from measured
// work instead of a hand-picked flag: it runs Assign — the timing-analysis
// entry point — on the configuration and returns the number of pipeline
// steps one curvature/inversion refresh actually needs, i.e. the smallest
// window whose bubbles hold the refresh under the paper's packing rules
// (§3.1 reports 1-4 steps for its configurations). The engine calls this at
// EnableKFAC time when Config.RefreshSteps asks for adaptive sizing, so the
// round length tracks the measured refresh-work-to-bubble ratio of the
// actual schedule, model shape, and replica topology.
//
// RefreshSteps and FrontLoadRefresh are ignored (Assign measures the window
// rather than taking it as given); the result is clamped to [1, MaxSteps].
func AdaptiveRoundLength(cfg Config) (int, error) {
	cfg.RefreshSteps = 0
	cfg.FrontLoadRefresh = false
	cfg.Overlap = false
	res, err := Assign(cfg)
	if err != nil {
		return 0, err
	}
	k := res.RefreshSteps
	if k < 1 {
		k = 1
	}
	norm, err := cfg.normalize()
	if err != nil {
		return 0, err
	}
	if k > norm.MaxSteps {
		k = norm.MaxSteps
	}
	return k, nil
}
