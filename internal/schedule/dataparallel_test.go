package schedule

import (
	"testing"

	"repro/internal/pipeline"
)

// dataParallelConfig is execTestConfig plus the collective costs a W > 1
// replica group needs.
func dataParallelConfig(method string, w int, invParallel bool) Config {
	cfg := execTestConfig(method)
	cfg.DataParallelWidth = w
	cfg.InversionParallel = invParallel
	cfg.Costs.SyncGrad = 60
	cfg.Costs.SyncCurvature = 20
	return cfg
}

// Executable must emit valid, runnable W > 1 op lists for every method —
// the combination (DataParallelWidth > 1, InversionParallel) included,
// which the executor now supports end to end. Regression: sync-curvature
// items created after the inversion items used to end up *after* them in
// the per-device order whenever the bubbles could not hold them, and since
// inversions depend on their stage's sync ops, the executable form
// deadlocked.
func TestExecutableDataParallel(t *testing.T) {
	for _, method := range []string{"gpipe", "1f1b", "chimera"} {
		for _, invParallel := range []bool{false, true} {
			cfg := dataParallelConfig(method, 2, invParallel)
			s, err := Executable(cfg)
			if err != nil {
				t.Fatalf("%s invparallel=%v: %v", method, invParallel, err)
			}
			if want := cfg.Stages * 2; s.Devices != want {
				t.Fatalf("%s: W=2 executable spans %d devices, want %d", method, s.Devices, want)
			}
			tl, err := pipeline.Run(s)
			if err != nil {
				t.Fatalf("%s invparallel=%v: executable schedule stalls: %v", method, invParallel, err)
			}
			if got := len(tl.EventsOfKind(pipeline.SyncGrad)); got != s.Devices {
				t.Fatalf("%s: %d sync-grad ops, want one per device (%d)", method, got, s.Devices)
			}
			syncCurv := len(tl.EventsOfKind(pipeline.SyncCurvature))
			if invParallel && syncCurv == 0 {
				t.Fatalf("%s: InversionParallel with W=2 must emit sync-curvature collectives", method)
			}
			if !invParallel && syncCurv != 0 {
				t.Fatalf("%s: %d sync-curvature ops without InversionParallel, want 0", method, syncCurv)
			}
		}
	}
}

// InversionParallel with W > 1 assigns each stage's inversion units
// round-robin across the replica group: every owner device inverts a
// strict, non-empty subset of the factors (each replica inverts its shard,
// then broadcasts).
func TestExecutableInversionRoundRobinAcrossReplicas(t *testing.T) {
	cfg := dataParallelConfig("gpipe", 2, true)
	s, err := Executable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nFactors := len(cfg.Costs.InversionUnits)
	for stage := 0; stage < cfg.Stages; stage++ {
		perDevice := map[int]int{}
		seen := map[int]bool{}
		for _, op := range s.Ops {
			if op.Kind != pipeline.Inversion || op.Stage != stage {
				continue
			}
			if seen[op.Factor] {
				t.Fatalf("stage %d factor %d inverted more than once under InversionParallel", stage, op.Factor)
			}
			seen[op.Factor] = true
			perDevice[op.Device]++
			if wantDev := stage*2 + op.Factor%2; op.Device != wantDev {
				t.Fatalf("stage %d factor %d on device %d, want round-robin device %d",
					stage, op.Factor, op.Device, wantDev)
			}
			if op.Replica != op.Factor%2 {
				t.Fatalf("stage %d factor %d tagged replica %d, want %d", stage, op.Factor, op.Replica, op.Factor%2)
			}
		}
		if len(seen) != nFactors {
			t.Fatalf("stage %d has %d inversion ops, want %d", stage, len(seen), nFactors)
		}
		if len(perDevice) != 2 {
			t.Fatalf("stage %d inversion work on %d devices, want both replicas", stage, len(perDevice))
		}
	}
	// Without InversionParallel every replica duplicates the stage's
	// inversion work instead.
	cfg = dataParallelConfig("gpipe", 2, false)
	s, err = Executable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, op := range s.Ops {
		if op.Kind == pipeline.Inversion && op.Stage == 0 {
			count++
		}
	}
	if count != 2*nFactors {
		t.Fatalf("without InversionParallel stage 0 has %d inversion ops, want %d (duplicated per replica)",
			count, 2*nFactors)
	}
}

// Assign (the timing-analysis path) accepts the same W > 1 combinations.
func TestAssignDataParallelInversionParallel(t *testing.T) {
	for _, method := range []string{"gpipe", "1f1b", "chimera"} {
		res, err := Assign(dataParallelConfig(method, 2, true))
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if res.RefreshSteps < 1 {
			t.Fatalf("%s: refresh steps %d", method, res.RefreshSteps)
		}
	}
}

// Regression: the executable packer must actually *place* sync-curvature
// items (and therefore the inversions gated on them) into the bubbles when
// the stage's curvature packed. The placement check used to include the
// sync items themselves, so the item under consideration always reported
// itself unplaced, every sync was refused, and all inversion work silently
// spilled out of the bubbles to the end of the pre-tail order.
func TestPackForExecPlacesSyncAndInversions(t *testing.T) {
	cfg, err := dataParallelConfig("1f1b", 2, true).normalize()
	if err != nil {
		t.Fatal(err)
	}
	base, err := buildBase(cfg, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := pipeline.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	items := buildWorkQueue(cfg, base, tl)
	packForExec(items, tl, cfg)

	placedByKind := map[pipeline.WorkKind][2]int{} // kind -> {placed, total}
	for _, it := range items {
		c := placedByKind[it.kind]
		if it.placed {
			c[0]++
		}
		c[1]++
		placedByKind[it.kind] = c
	}
	for _, kind := range []pipeline.WorkKind{pipeline.Curvature, pipeline.SyncCurvature, pipeline.Inversion} {
		c := placedByKind[kind]
		if c[1] == 0 {
			t.Fatalf("no %v items in the work queue", kind)
		}
		if c[0] == 0 {
			t.Fatalf("no %v item was placed into a bubble (%d candidates)", kind, c[1])
		}
	}
}
