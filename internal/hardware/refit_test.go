package hardware

import "testing"

func TestFitWarmupDropsEarlyRounds(t *testing.T) {
	f := NewFit(2)
	f.BeginRound()
	f.Observe(1, 1000) // warm-up round 1: dropped
	f.BeginRound()
	f.Observe(1, 1000) // warm-up round 2: dropped
	if f.Warm() {
		t.Fatal("fit reported warm during warm-up")
	}
	if f.Count(1) != 0 {
		t.Fatalf("warm-up samples retained: %d", f.Count(1))
	}
	f.BeginRound()
	if !f.Warm() {
		t.Fatal("fit not warm after warm-up rounds")
	}
	f.Observe(1, 10)
	if got := f.Count(1); got != 1 {
		t.Fatalf("Count = %d, want 1", got)
	}
	if m, ok := f.Estimate(1); !ok || m != 10 {
		t.Fatalf("Estimate = %d,%v; want 10,true — warm-up outliers must not leak into the fit", m, ok)
	}
}

func TestFitMedianRobustToOutliers(t *testing.T) {
	f := NewFit(0)
	f.BeginRound()
	for i := 0; i < 20; i++ {
		f.Observe(7, 100)
	}
	f.Observe(7, 100000) // one preempted op
	m, ok := f.Estimate(7)
	if !ok || m != 100 {
		t.Fatalf("Estimate = %d,%v; want 100,true (median must shrug off the outlier)", m, ok)
	}
}

func TestFitEvenMedianAndFloor(t *testing.T) {
	f := NewFit(0)
	f.BeginRound()
	f.Observe(3, 10)
	f.Observe(3, 20)
	if m, _ := f.Estimate(3); m != 15 {
		t.Fatalf("even-count median = %d, want 15", m)
	}
	if _, ok := f.Estimate(99); ok {
		t.Fatal("Estimate reported ok for a class with no samples")
	}
	f.Observe(4, 0)  // degraded placeholder: ignored
	f.Observe(4, -5) // nonsense: ignored
	if f.Count(4) != 0 {
		t.Fatalf("non-positive durations retained: %d", f.Count(4))
	}
}

func TestFitRingBounded(t *testing.T) {
	f := NewFit(0)
	f.BeginRound()
	for i := 0; i < 2000; i++ {
		f.Observe(1, 50)
	}
	if got := f.Count(1); got != 512 {
		t.Fatalf("ring size = %d, want 512", got)
	}
	// Drift: newer samples overwrite oldest, so the estimate follows.
	for i := 0; i < 600; i++ {
		f.Observe(1, 90)
	}
	if m, _ := f.Estimate(1); m != 90 {
		t.Fatalf("post-drift median = %d, want 90", m)
	}
}

func TestFitRelError(t *testing.T) {
	f := NewFit(0)
	f.BeginRound()
	f.Observe(2, 100)
	if e, ok := f.RelError(2, 150); !ok || e != 0.5 {
		t.Fatalf("RelError = %v,%v; want 0.5,true", e, ok)
	}
	if e, ok := f.RelError(2, 50); !ok || e != 0.5 {
		t.Fatalf("RelError (under) = %v,%v; want 0.5,true", e, ok)
	}
	if _, ok := f.RelError(42, 10); ok {
		t.Fatal("RelError ok for unobserved class")
	}
}
