// Package hardware models accelerator performance for the PipeFisher
// reproduction. The paper measures CUDA-kernel times on NVIDIA P100, V100
// and RTX 3090 GPUs; this repo has no GPUs, so the same quantities are
// produced by a roofline cost model: an operation takes
//
//	time = max(flops / (peakFLOPs * efficiency), bytes / bandwidth) + overhead
//
// which preserves the relative-cost structure the paper's performance model
// depends on (GEMM-heavy forward/backward/curvature scale with token count,
// inversion scales with factor size only, small ops are launch-bound).
//
// All times are expressed in integer microseconds so the discrete-event
// pipeline simulator is exactly reproducible.
package hardware

import "fmt"

// Microseconds is the simulator's time unit.
type Microseconds int64

// GPU describes one accelerator model.
type GPU struct {
	// Name identifies the device ("P100", "V100", "RTX3090").
	Name string
	// PeakFLOPs is the peak single-precision throughput in FLOP/s.
	PeakFLOPs float64
	// MemBandwidth is the device memory bandwidth in bytes/s.
	MemBandwidth float64
	// MemBytes is the device memory capacity in bytes.
	MemBytes float64
	// GemmEfficiency is the fraction of peak achieved by large GEMMs.
	GemmEfficiency float64
	// SmallOpEfficiency is the fraction of peak achieved by small or
	// skinny kernels (layer norm, bias, softmax, small factors).
	SmallOpEfficiency float64
	// KernelOverhead is the fixed per-kernel launch cost.
	KernelOverhead Microseconds
}

// Predefined device profiles. Peak numbers follow the vendor datasheets for
// the boards the paper uses; efficiencies are the usual 40-60% GEMM
// achievable fractions.
var (
	P100 = GPU{
		Name:              "P100",
		PeakFLOPs:         9.3e12,
		MemBandwidth:      732e9,
		MemBytes:          16e9,
		GemmEfficiency:    0.45,
		SmallOpEfficiency: 0.10,
		KernelOverhead:    5,
	}
	V100 = GPU{
		Name:              "V100",
		PeakFLOPs:         14.0e12,
		MemBandwidth:      900e9,
		MemBytes:          32e9,
		GemmEfficiency:    0.50,
		SmallOpEfficiency: 0.10,
		KernelOverhead:    5,
	}
	RTX3090 = GPU{
		Name:              "RTX3090",
		PeakFLOPs:         35.6e12,
		MemBandwidth:      936e9,
		MemBytes:          24e9,
		GemmEfficiency:    0.40,
		SmallOpEfficiency: 0.08,
		KernelOverhead:    4,
	}
)

// ByName returns the named profile ("P100", "V100", "RTX3090").
func ByName(name string) (GPU, error) {
	switch name {
	case "P100":
		return P100, nil
	case "V100":
		return V100, nil
	case "RTX3090":
		return RTX3090, nil
	}
	return GPU{}, fmt.Errorf("hardware: unknown GPU %q", name)
}

// All lists the predefined profiles in the order the paper plots them.
func All() []GPU { return []GPU{P100, V100, RTX3090} }

// Op is a single accelerator operation characterized by its arithmetic and
// memory traffic.
type Op struct {
	// FLOPs is the floating-point operation count.
	FLOPs float64
	// Bytes is the total device-memory traffic in bytes.
	Bytes float64
	// Kernels is the number of kernel launches the op maps to (>= 1).
	Kernels int
	// GEMMLike selects the GEMM efficiency instead of the small-op one.
	GEMMLike bool
}

// Time returns the modeled execution time of op on g.
func (g GPU) Time(op Op) Microseconds {
	eff := g.SmallOpEfficiency
	if op.GEMMLike {
		eff = g.GemmEfficiency
	}
	compute := op.FLOPs / (g.PeakFLOPs * eff)
	memory := op.Bytes / g.MemBandwidth
	seconds := compute
	if memory > seconds {
		seconds = memory
	}
	t := Microseconds(seconds * 1e6)
	kernels := op.Kernels
	if kernels < 1 {
		kernels = 1
	}
	t += Microseconds(kernels) * g.KernelOverhead
	if t < 1 {
		t = 1
	}
	return t
}

// GemmTime is a convenience wrapper: time of an m x k x n matrix multiply
// (C = A B with A m x k, B k x n) including the write of C.
func (g GPU) GemmTime(m, k, n int) Microseconds {
	flops := 2 * float64(m) * float64(k) * float64(n)
	bytes := 4 * (float64(m)*float64(k) + float64(k)*float64(n) + float64(m)*float64(n))
	return g.Time(Op{FLOPs: flops, Bytes: bytes, Kernels: 1, GEMMLike: true})
}

// Interconnect models the cluster fabric for collective communication. The
// paper reports that P2P costs are negligible and models collectives only as
// measured overheads; we keep a simple alpha-beta model so sync-grad and
// sync-curvature have realistic, size-dependent costs.
type Interconnect struct {
	// LatencyUS is the per-message latency (alpha) in microseconds.
	LatencyUS Microseconds
	// Bandwidth is the link bandwidth in bytes/s (beta^-1).
	Bandwidth float64
}

// DefaultInterconnect approximates the NVLink/IB fabric of the paper's
// cluster.
var DefaultInterconnect = Interconnect{LatencyUS: 10, Bandwidth: 10e9}

// AllReduceTime returns the modeled time of a ring all-reduce of size bytes
// across n participants (2(n-1)/n data movement factor).
func (ic Interconnect) AllReduceTime(bytes float64, n int) Microseconds {
	if n <= 1 {
		return 0
	}
	factor := 2 * float64(n-1) / float64(n)
	t := Microseconds(factor * bytes / ic.Bandwidth * 1e6)
	return t + ic.LatencyUS*Microseconds(n-1)
}

// P2PTime returns the modeled point-to-point send/recv time for a message of
// the given size.
func (ic Interconnect) P2PTime(bytes float64) Microseconds {
	return ic.LatencyUS + Microseconds(bytes/ic.Bandwidth*1e6)
}

// ChainAllReduceCost models the chunked chain all-reduce the wire transport
// runs: a reduce pass rank 0 -> W-1 followed by a distribution pass, each
// crossing W-1 links, with the payload cut into chunks so link transfers of
// one chunk pipeline against the fold of the next. The pipelined transfer
// time is (2(W-1) + chunks - 1) chunk slots at bytes/chunks each, plus the
// per-hop message latency; more chunks amortize the serialization until the
// per-chunk latency dominates.
func ChainAllReduceCost(bytes int64, ranks, chunks int, ic Interconnect) Microseconds {
	if ranks <= 1 || bytes <= 0 {
		return 0
	}
	if chunks < 1 {
		chunks = 1
	}
	hops := 2 * (ranks - 1)
	chunkBytes := float64(bytes) / float64(chunks)
	transfer := Microseconds(float64(hops+chunks-1) * chunkBytes / ic.Bandwidth * 1e6)
	return transfer + ic.LatencyUS*Microseconds(hops)
}
