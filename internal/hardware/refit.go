package hardware

import "sort"

// Fit accumulates measured durations of executed work, grouped by an
// opaque integer class (callers key it however they slice their work —
// the schedule layer uses op kinds), and produces robust per-class
// estimates for refitting a cost model against the machine the work
// actually ran on: the closed-loop counterpart of the roofline model
// above, which predicts; Fit measures.
//
// Robustness choices, matched to executed-timeline data:
//
//   - The first WarmupRounds observation rounds are dropped entirely:
//     cold caches, first-touch allocations and scheduler ramp-up make
//     early rounds unrepresentative.
//   - Estimates are medians, not means: a single preempted op (shared
//     CI runners) or a retried/degraded op's tail must not drag the
//     model. Callers additionally exclude retried and degraded events
//     before observing — the median guards what filtering misses.
//   - Samples live in a bounded ring per class (maxSamples, oldest
//     overwritten): the fit tracks drift instead of averaging over the
//     whole history.
//
// Fit is not safe for concurrent use; drive it from the loop that owns
// the engine.
type Fit struct {
	warmup     int
	rounds     int
	maxSamples int
	samples    map[int][]float64
	next       map[int]int // ring write position per class
	full       map[int]bool
	// scale inflates a class's Estimate by an externally observed factor —
	// the straggler headroom: heartbeat-derived per-rank slowness makes a
	// peer's collectives arrive late in a way this rank's own measured
	// durations cannot see, so the tuner prices synchronization classes up
	// by the group's slowest/own round-time ratio (SetScale).
	scale map[int]float64
}

// NewFit creates a Fit that ignores the first warmupRounds rounds.
func NewFit(warmupRounds int) *Fit {
	if warmupRounds < 0 {
		warmupRounds = 0
	}
	return &Fit{
		warmup:     warmupRounds,
		maxSamples: 512,
		samples:    make(map[int][]float64),
		next:       make(map[int]int),
		full:       make(map[int]bool),
		scale:      make(map[int]float64),
	}
}

// SetScale installs (or, at factor <= 1, clears) a multiplicative
// inflation on a class's Estimate. The samples themselves stay raw — the
// scale reflects a condition external to this rank's measurements (a
// straggling peer) that can lift or clear between rounds.
func (f *Fit) SetScale(class int, factor float64) {
	if factor <= 1 {
		delete(f.scale, class)
		return
	}
	f.scale[class] = factor
}

// Scale reports the active inflation factor for a class (1 when none).
func (f *Fit) Scale(class int) float64 {
	if s, ok := f.scale[class]; ok {
		return s
	}
	return 1
}

// BeginRound marks the start of one observation round (one executed
// timeline). Observations before the warm-up rounds have passed are
// discarded.
func (f *Fit) BeginRound() { f.rounds++ }

// Rounds reports how many rounds have begun, including warm-up.
func (f *Fit) Rounds() int { return f.rounds }

// Warm reports whether the warm-up window has passed and observations are
// being recorded.
func (f *Fit) Warm() bool { return f.rounds > f.warmup }

// Observe records one measured duration for a class. Ignored during
// warm-up and for non-positive durations (a zero-duration event is a
// degraded placeholder, not a measurement).
func (f *Fit) Observe(class int, d Microseconds) {
	if !f.Warm() || d <= 0 {
		return
	}
	s := f.samples[class]
	if len(s) < f.maxSamples {
		f.samples[class] = append(s, float64(d))
		return
	}
	s[f.next[class]] = float64(d)
	f.next[class] = (f.next[class] + 1) % f.maxSamples
	f.full[class] = true
}

// Count returns the number of retained samples for a class.
func (f *Fit) Count(class int) int { return len(f.samples[class]) }

// Estimate returns the median measured duration of a class (minimum 1 —
// cost models treat 0 as absent) and whether any samples exist.
func (f *Fit) Estimate(class int) (Microseconds, bool) {
	s := f.samples[class]
	if len(s) == 0 {
		return 0, false
	}
	tmp := append([]float64(nil), s...)
	sort.Float64s(tmp)
	var med float64
	if n := len(tmp); n%2 == 1 {
		med = tmp[n/2]
	} else {
		med = (tmp[n/2-1] + tmp[n/2]) / 2
	}
	if med < 1 {
		med = 1
	}
	if s, ok := f.scale[class]; ok {
		med *= s
	}
	return Microseconds(med + 0.5), true
}

// RelError returns |modeled-measured|/measured for a class against the
// current median estimate, and whether an estimate exists.
func (f *Fit) RelError(class int, modeled Microseconds) (float64, bool) {
	m, ok := f.Estimate(class)
	if !ok {
		return 0, false
	}
	diff := float64(modeled - m)
	if diff < 0 {
		diff = -diff
	}
	return diff / float64(m), true
}
