package hardware

import (
	"testing"
	"testing/quick"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"P100", "V100", "RTX3090"} {
		g, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if g.Name != name {
			t.Fatalf("ByName(%q) returned %q", name, g.Name)
		}
	}
	if _, err := ByName("H100"); err == nil {
		t.Fatal("expected error for unknown GPU")
	}
}

func TestAllOrder(t *testing.T) {
	all := All()
	if len(all) != 3 || all[0].Name != "P100" || all[1].Name != "V100" || all[2].Name != "RTX3090" {
		t.Fatalf("All() wrong: %v", all)
	}
}

func TestTimeComputeBound(t *testing.T) {
	// A huge GEMM is compute bound: time ≈ flops / (peak * eff).
	g := P100
	op := Op{FLOPs: 1e12, Bytes: 1e6, Kernels: 1, GEMMLike: true}
	got := g.Time(op)
	want := Microseconds(1e12 / (g.PeakFLOPs * g.GemmEfficiency) * 1e6)
	if diff := got - want - g.KernelOverhead; diff < -1 || diff > 1 {
		t.Fatalf("compute-bound time: got %d, want about %d", got, want+g.KernelOverhead)
	}
}

func TestTimeMemoryBound(t *testing.T) {
	// A pure copy is memory bound: time ≈ bytes / bandwidth.
	g := V100
	op := Op{FLOPs: 1, Bytes: 9e8, Kernels: 1}
	got := g.Time(op)
	want := Microseconds(9e8/g.MemBandwidth*1e6) + g.KernelOverhead
	if diff := got - want; diff < -1 || diff > 1 {
		t.Fatalf("memory-bound time: got %d, want about %d", got, want)
	}
}

func TestTimeMinimumOneMicrosecond(t *testing.T) {
	g := RTX3090
	if got := g.Time(Op{FLOPs: 1, Bytes: 1, Kernels: 0}); got < 1 {
		t.Fatalf("Time must be at least 1us, got %d", got)
	}
}

func TestFasterGPUIsFaster(t *testing.T) {
	op := Op{FLOPs: 1e12, Bytes: 1e8, Kernels: 1, GEMMLike: true}
	tP, tV, tR := P100.Time(op), V100.Time(op), RTX3090.Time(op)
	if !(tR < tV && tV < tP) {
		t.Fatalf("expected RTX3090 < V100 < P100 on a big GEMM, got %d %d %d", tP, tV, tR)
	}
}

func TestGemmTimeScalesWithSize(t *testing.T) {
	g := P100
	small := g.GemmTime(256, 256, 256)
	big := g.GemmTime(1024, 1024, 1024)
	if big <= small {
		t.Fatalf("bigger GEMM must take longer: %d vs %d", small, big)
	}
}

func TestAllReduceTime(t *testing.T) {
	ic := DefaultInterconnect
	if got := ic.AllReduceTime(1e9, 1); got != 0 {
		t.Fatalf("single participant all-reduce must be free, got %d", got)
	}
	t2 := ic.AllReduceTime(1e9, 2)
	t8 := ic.AllReduceTime(1e9, 8)
	if t2 <= 0 || t8 <= t2 {
		t.Fatalf("all-reduce times not monotone: n=2 %d, n=8 %d", t2, t8)
	}
}

// The chunked chain all-reduce must demonstrably pipeline: at gradient
// bucket scale the chunked form (transport default: 64 KiB chunks) beats
// the single-message chain by at least 1.3x for every ring size, and the
// advantage grows with the payload (more chunks to overlap) until per-chunk
// latency takes over. Wall-clock confirmation needs a multi-core host
// (BenchmarkAllReduce); this pins the model the scheduler and auto-tuner
// rank transports with.
func TestChainAllReduceChunkingPipelines(t *testing.T) {
	ic := DefaultInterconnect
	const chunkBytes = 8192 * 8 // transport.DefaultChunkFloats float64s
	for _, ranks := range []int{2, 4, 8} {
		for _, mb := range []int64{1, 4, 16} {
			bytes := mb << 20
			chunks := int(bytes / chunkBytes)
			chunked := ChainAllReduceCost(bytes, ranks, chunks, ic)
			single := ChainAllReduceCost(bytes, ranks, 1, ic)
			if chunked <= 0 || single <= 0 {
				t.Fatalf("W=%d %dMiB: non-positive cost (chunked %d, single %d)", ranks, mb, chunked, single)
			}
			if ratio := float64(single) / float64(chunked); ratio < 1.3 {
				t.Fatalf("W=%d %dMiB: chunked %dus vs single-message %dus — only %.2fx, want >= 1.3x",
					ranks, mb, chunked, single, ratio)
			}
		}
	}
	// Degenerate inputs stay sane: one rank or nothing to send costs nothing.
	if got := ChainAllReduceCost(1<<20, 1, 16, ic); got != 0 {
		t.Fatalf("single-rank all-reduce must be free, got %d", got)
	}
	if got := ChainAllReduceCost(0, 4, 16, ic); got != 0 {
		t.Fatalf("empty all-reduce must be free, got %d", got)
	}
}

func TestP2PTime(t *testing.T) {
	ic := DefaultInterconnect
	small := ic.P2PTime(1e3)
	large := ic.P2PTime(1e9)
	if small < ic.LatencyUS {
		t.Fatalf("P2P must include latency, got %d", small)
	}
	if large <= small {
		t.Fatal("larger P2P message must take longer")
	}
}

// Property: time is monotone in FLOPs and bytes.
func TestTimeMonotoneProperty(t *testing.T) {
	f := func(flopsExp, bytesExp uint8) bool {
		f1 := float64(uint64(1) << (flopsExp % 40))
		b1 := float64(uint64(1) << (bytesExp % 30))
		op1 := Op{FLOPs: f1, Bytes: b1, Kernels: 1, GEMMLike: true}
		op2 := Op{FLOPs: f1 * 2, Bytes: b1 * 2, Kernels: 1, GEMMLike: true}
		return P100.Time(op2) >= P100.Time(op1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
