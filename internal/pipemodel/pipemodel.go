// Package pipemodel defines the contract between stageable models and the
// pipeline execution engine. Any model that exposes an embedding path, a
// list of transformer blocks (the partitionable middle), and a head/loss
// path can be trained by internal/engine under any pipeline schedule —
// GPipe, 1F1B, Chimera, or the PipeFisher-augmented forms — without the
// engine knowing the architecture. Both internal/bert (encoder, masked-LM +
// NSP objective) and internal/gpt (decoder, next-token objective) implement
// Model, mirroring the paper's claim that the scheduling machinery is
// architecture-agnostic across the BERT and OPT families it evaluates.
//
// Micro-batch loss scaling: pipelined training splits a mini-batch into
// micro-batches whose losses must aggregate exactly as a full-batch step
// would. The global averaging denominators (total loss-bearing tokens,
// total sequences) are known after data loading and before any backward, so
// the engine computes Totals once per step and passes them to every
// HeadLoss/HeadGradient call; implementations rescale their micro-batch
// means by local/global counts to reproduce the full-batch mean bit-for-bit.
package pipemodel

import (
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Totals carries the global loss denominators of one training step.
type Totals struct {
	// Tokens is the number of loss-bearing positions in the full mini-batch
	// (masked positions for BERT, predicted positions for GPT).
	Tokens int
	// Seqs is the number of sequences in the full mini-batch.
	Seqs int
}

// Loss is one (micro-)batch's loss contribution, already scaled to the
// global denominators so contributions sum to the full-batch loss.
type Loss struct {
	// Total is the scalar training objective.
	Total float64
	// Components breaks Total down by named objective ("mlm"/"nsp" for
	// BERT, "lm" for GPT). Invariant: Total equals the components' sum.
	Components map[string]float64
	// Tokens echoes the number of loss-bearing positions contributing.
	Tokens int
}

// Add accumulates another contribution into l.
func (l *Loss) Add(o Loss) {
	l.Total += o.Total
	l.Tokens += o.Tokens
	if len(o.Components) > 0 && l.Components == nil {
		l.Components = make(map[string]float64, len(o.Components))
	}
	for k, v := range o.Components {
		l.Components[k] += v
	}
}

// Model is a stageable network: embedding on stage 0, a partitionable block
// stack in the middle, and head+loss on the last stage.
//
// Implementations need not be safe for concurrent use; the engine
// serializes all access to a stage's modules (including the embedding and
// head paths) with a per-stage lock, which is what makes bidirectional
// schedules like Chimera — where two devices host the same stage — execute
// correctly against one shared set of parameters.
//
// Buffer ownership: matrices returned by EmbedForward and HeadGradient may
// be model-retained buffers that the next call to the same method
// overwrites (the zero-alloc hot-path contract). The engine therefore
// copies anything that must outlive the producing op — cross-stage
// activations and error signals go through pooled clones — and recomputes
// the embedding immediately before each micro-batch's backward.
type Model interface {
	// PipelineBlocks returns the transformer blocks, in forward order, that
	// the engine partitions into contiguous pipeline stages.
	PipelineBlocks() []*nn.TransformerBlock
	// SeqLen returns the fixed sequence length batches must have.
	SeqLen() int
	// EmbedForward produces the stage-0 block input for a micro-batch.
	EmbedForward(mb *data.Batch) *tensor.Matrix
	// EmbedBackward backpropagates the stage-0 block-input gradient into
	// the embedding tables. It must be called directly after an
	// EmbedForward of the same micro-batch (the recomputation discipline).
	EmbedBackward(grad *tensor.Matrix)
	// BatchTokenCount returns the number of loss-bearing positions in a
	// (micro-)batch, the per-batch numerator of the loss scaling.
	BatchTokenCount(mb *data.Batch) int
	// HeadLoss evaluates the head and loss on the last stage's block output
	// y, scaled by the micro-batch's share of the global denominators. It
	// must not produce gradients.
	HeadLoss(mb *data.Batch, y *tensor.Matrix, t Totals) (Loss, error)
	// HeadGradient returns the globally-scaled loss gradient with respect
	// to y, accumulating head-parameter gradients along the way.
	HeadGradient(mb *data.Batch, y *tensor.Matrix, t Totals) (*tensor.Matrix, error)
	// KFACLossScale returns the loss-averaging count M the K-FAC B-factor
	// rescales by (see kfac.UpdateCurvature), given the step's totals.
	KFACLossScale(t Totals) float64
	// Params returns every trainable parameter of the model in a
	// deterministic order, congruent across Replicate copies — the unit
	// of the engine's per-step parameter broadcast.
	Params() []*nn.Param
	// EmbedParams returns the parameters of the stage-0 embedding path
	// (everything EmbedForward/EmbedBackward touches), in a deterministic
	// order. The engine uses it to attribute embedding gradients to stage
	// 0's per-micro-batch reduction segments.
	EmbedParams() []*nn.Param
	// HeadParams returns the parameters of the last-stage head path
	// (everything HeadLoss/HeadGradient touches), in a deterministic
	// order, for the last stage's reduction segments.
	HeadParams() []*nn.Param
	// Replicate builds an independent copy of the model — same
	// configuration, parameter values copied, no shared mutable state —
	// for one data-parallel replica. Replicas are stepped by the engine
	// only; their gradients are engine-owned and their parameters are
	// re-broadcast from the primary model at every step.
	Replicate() (Model, error)
}
