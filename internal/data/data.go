// Package data generates the synthetic pretraining corpus used in place of
// the paper's 14 GB English Wikipedia (which this environment cannot
// download). Token frequencies follow a Zipf distribution with short-range
// bigram structure, which preserves the properties the convergence
// experiment depends on: a heavy-tailed unigram distribution (fast early
// loss reduction on head tokens, slow tail learning) and learnable local
// structure (so better optimizers genuinely converge faster). Masking
// follows BERT exactly: 15% of positions, of which 80% become [MASK], 10% a
// random token, and 10% stay unchanged.
package data

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Special token ids, mirroring BERT's vocabulary layout.
const (
	PadID  = 0
	ClsID  = 1
	SepID  = 2
	MaskID = 3
	// FirstWordID is the first ordinary vocabulary id.
	FirstWordID = 4
)

// Corpus is a synthetic token-stream generator.
type Corpus struct {
	// VocabSize is the total vocabulary size including specials.
	VocabSize int
	// Zipf exponent controlling the head/tail imbalance (~1 for text).
	Exponent float64

	cdf []float64
	rng *tensor.RNG
	// bigramShift adds deterministic local structure: the distribution of
	// token t+1 is the unigram distribution rotated by a function of
	// token t, giving the model something learnable beyond frequencies.
	bigramMix float64
}

// NewCorpus builds a corpus with the given vocabulary size (must exceed the
// special tokens), Zipf exponent, and seed.
func NewCorpus(vocabSize int, exponent float64, seed uint64) (*Corpus, error) {
	if vocabSize <= FirstWordID+1 {
		return nil, fmt.Errorf("data: vocab size %d too small (need > %d)", vocabSize, FirstWordID+1)
	}
	if exponent <= 0 {
		return nil, fmt.Errorf("data: Zipf exponent must be positive, got %g", exponent)
	}
	c := &Corpus{
		VocabSize: vocabSize,
		Exponent:  exponent,
		rng:       tensor.NewRNG(seed),
		bigramMix: 0.5,
	}
	words := vocabSize - FirstWordID
	c.cdf = make([]float64, words)
	var total float64
	for i := 0; i < words; i++ {
		total += 1 / math.Pow(float64(i+1), exponent)
		c.cdf[i] = total
	}
	for i := range c.cdf {
		c.cdf[i] /= total
	}
	return c, nil
}

// sampleUnigram draws a word id from the Zipf unigram distribution.
func (c *Corpus) sampleUnigram() int {
	u := c.rng.Float64()
	lo, hi := 0, len(c.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return FirstWordID + lo
}

// NextToken draws the next token given the previous one, mixing the unigram
// draw with a deterministic bigram successor.
func (c *Corpus) NextToken(prev int) int {
	if prev >= FirstWordID && c.rng.Float64() < c.bigramMix {
		// Deterministic successor: rank r maps to rank (2r+1) mod words,
		// a fixed permutation the model can learn.
		words := c.VocabSize - FirstWordID
		r := prev - FirstWordID
		return FirstWordID + (2*r+1)%words
	}
	return c.sampleUnigram()
}

// Sentence generates a token sequence of the given length.
func (c *Corpus) Sentence(length int) []int {
	out := make([]int, length)
	prev := c.sampleUnigram()
	for i := range out {
		tok := c.NextToken(prev)
		out[i] = tok
		prev = tok
	}
	return out
}

// Example is one masked-LM training example.
type Example struct {
	// Tokens is the input sequence after masking, length SeqLen.
	Tokens []int
	// Targets holds the original token at masked positions and
	// nn.IgnoreIndex (-1) elsewhere.
	Targets []int
	// IsNext is the next-sentence-prediction label (true = consecutive).
	IsNext bool
}

// MaskedCount returns the number of prediction positions.
func (e *Example) MaskedCount() int {
	var n int
	for _, t := range e.Targets {
		if t >= 0 {
			n++
		}
	}
	return n
}

// BatchConfig controls masked-batch generation.
type BatchConfig struct {
	// SeqLen is the example length (including [CLS] and [SEP]).
	SeqLen int
	// MaskProb is the fraction of maskable positions selected (0.15 in
	// BERT).
	MaskProb float64
}

// DefaultBatchConfig returns BERT Phase-1-style settings at a reduced
// sequence length.
func DefaultBatchConfig(seqLen int) BatchConfig {
	return BatchConfig{SeqLen: seqLen, MaskProb: 0.15}
}

// MakeExample builds one masked example: [CLS] sentA [SEP] sentB with the
// BERT 80/10/10 masking scheme, where sentB is consecutive (IsNext) or a
// fresh sample half the time.
func (c *Corpus) MakeExample(cfg BatchConfig) Example {
	if cfg.SeqLen < 8 {
		panic(fmt.Sprintf("data: SeqLen %d too short", cfg.SeqLen))
	}
	body := cfg.SeqLen - 3 // [CLS] ... [SEP] ... [SEP]
	lenA := body / 2
	lenB := body - lenA
	sentA := c.Sentence(lenA)
	isNext := c.rng.Float64() < 0.5
	var sentB []int
	if isNext {
		// Continue from sentA's last token.
		sentB = make([]int, lenB)
		prev := sentA[len(sentA)-1]
		for i := range sentB {
			prev = c.NextToken(prev)
			sentB[i] = prev
		}
	} else {
		sentB = c.Sentence(lenB)
	}
	tokens := make([]int, 0, cfg.SeqLen)
	tokens = append(tokens, ClsID)
	tokens = append(tokens, sentA...)
	tokens = append(tokens, SepID)
	tokens = append(tokens, sentB...)
	tokens = append(tokens, SepID)

	targets := make([]int, len(tokens))
	for i := range targets {
		targets[i] = -1
	}
	for i, tok := range tokens {
		if tok < FirstWordID {
			continue // never mask specials
		}
		if c.rng.Float64() >= cfg.MaskProb {
			continue
		}
		targets[i] = tok
		switch r := c.rng.Float64(); {
		case r < 0.8:
			tokens[i] = MaskID
		case r < 0.9:
			tokens[i] = FirstWordID + c.rng.Intn(c.VocabSize-FirstWordID)
		default:
			// keep the original token
		}
	}
	return Example{Tokens: tokens, Targets: targets, IsNext: isNext}
}

// Batch is a set of examples flattened for the model: token ids and targets
// concatenated example-major ((batch*seq) positions).
type Batch struct {
	BatchSize int
	SeqLen    int
	Tokens    []int
	Targets   []int
	IsNext    []bool
}

// MaskedCount returns the number of prediction positions in the batch.
func (b *Batch) MaskedCount() int {
	var n int
	for _, t := range b.Targets {
		if t >= 0 {
			n++
		}
	}
	return n
}

// MakeBatch builds a batch of masked examples.
func (c *Corpus) MakeBatch(batchSize int, cfg BatchConfig) *Batch {
	if batchSize <= 0 {
		panic(fmt.Sprintf("data: batch size %d must be positive", batchSize))
	}
	b := &Batch{
		BatchSize: batchSize,
		SeqLen:    cfg.SeqLen,
		Tokens:    make([]int, 0, batchSize*cfg.SeqLen),
		Targets:   make([]int, 0, batchSize*cfg.SeqLen),
		IsNext:    make([]bool, 0, batchSize),
	}
	for i := 0; i < batchSize; i++ {
		ex := c.MakeExample(cfg)
		b.Tokens = append(b.Tokens, ex.Tokens...)
		b.Targets = append(b.Targets, ex.Targets...)
		b.IsNext = append(b.IsNext, ex.IsNext)
	}
	return b
}
