package data

import (
	"math"
	"testing"
)

func TestNewCorpusValidation(t *testing.T) {
	if _, err := NewCorpus(3, 1, 1); err == nil {
		t.Fatal("expected error for tiny vocab")
	}
	if _, err := NewCorpus(100, 0, 1); err == nil {
		t.Fatal("expected error for zero exponent")
	}
	if _, err := NewCorpus(100, 1.0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestZipfHeadDominates(t *testing.T) {
	c, err := NewCorpus(1000, 1.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[c.sampleUnigram()]++
	}
	// The most frequent word should be the rank-0 word, and the head
	// should be far more frequent than deep-tail words.
	head := counts[FirstWordID]
	tail := counts[FirstWordID+800]
	if head < 20*tail+1 {
		t.Fatalf("Zipf head (%d) must dominate tail (%d)", head, tail)
	}
	// Empirical frequency of rank 1 roughly half of rank 0 (s=1).
	second := counts[FirstWordID+1]
	ratio := float64(head) / float64(second+1)
	if ratio < 1.5 || ratio > 3.0 {
		t.Fatalf("rank0/rank1 ratio %.2f outside [1.5, 3.0]", ratio)
	}
}

func TestSentenceTokensInRange(t *testing.T) {
	c, _ := NewCorpus(200, 1.1, 3)
	s := c.Sentence(500)
	if len(s) != 500 {
		t.Fatalf("sentence length %d", len(s))
	}
	for _, tok := range s {
		if tok < FirstWordID || tok >= 200 {
			t.Fatalf("token %d out of word range", tok)
		}
	}
}

func TestMakeExampleStructure(t *testing.T) {
	c, _ := NewCorpus(300, 1.0, 11)
	cfg := DefaultBatchConfig(32)
	ex := c.MakeExample(cfg)
	if len(ex.Tokens) != 32 || len(ex.Targets) != 32 {
		t.Fatalf("example length %d/%d, want 32", len(ex.Tokens), len(ex.Targets))
	}
	if ex.Tokens[0] != ClsID {
		t.Fatal("example must start with [CLS]")
	}
	if ex.Tokens[31] != SepID {
		t.Fatal("example must end with [SEP]")
	}
	// Masked positions must have valid original tokens as targets.
	for i, tgt := range ex.Targets {
		if tgt == -1 {
			continue
		}
		if tgt < FirstWordID || tgt >= 300 {
			t.Fatalf("target %d at %d out of range", tgt, i)
		}
	}
}

func TestMaskingRate(t *testing.T) {
	c, _ := NewCorpus(500, 1.0, 13)
	cfg := DefaultBatchConfig(64)
	var masked, maskTok, total int
	const examples = 2000
	for i := 0; i < examples; i++ {
		ex := c.MakeExample(cfg)
		for j, tgt := range ex.Targets {
			if ex.Tokens[j] >= FirstWordID || ex.Tokens[j] == MaskID {
				total++
			}
			if tgt >= 0 {
				masked++
				if ex.Tokens[j] == MaskID {
					maskTok++
				}
			}
		}
	}
	rate := float64(masked) / float64(total)
	if math.Abs(rate-0.15) > 0.02 {
		t.Fatalf("masking rate %.3f, want ~0.15", rate)
	}
	// 80% of masked positions carry [MASK].
	maskFrac := float64(maskTok) / float64(masked)
	if math.Abs(maskFrac-0.8) > 0.03 {
		t.Fatalf("[MASK] fraction %.3f, want ~0.8", maskFrac)
	}
}

func TestSpecialsNeverMasked(t *testing.T) {
	c, _ := NewCorpus(100, 1.0, 17)
	cfg := DefaultBatchConfig(16)
	for i := 0; i < 500; i++ {
		ex := c.MakeExample(cfg)
		if ex.Targets[0] != -1 {
			t.Fatal("[CLS] position must never be a target")
		}
	}
}

func TestNextSentenceBalance(t *testing.T) {
	c, _ := NewCorpus(100, 1.0, 19)
	cfg := DefaultBatchConfig(16)
	var next int
	const n = 4000
	for i := 0; i < n; i++ {
		if c.MakeExample(cfg).IsNext {
			next++
		}
	}
	frac := float64(next) / n
	if math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("IsNext fraction %.3f, want ~0.5", frac)
	}
}

func TestMakeBatch(t *testing.T) {
	c, _ := NewCorpus(200, 1.0, 23)
	cfg := DefaultBatchConfig(16)
	b := c.MakeBatch(8, cfg)
	if b.BatchSize != 8 || b.SeqLen != 16 {
		t.Fatalf("batch shape %d x %d", b.BatchSize, b.SeqLen)
	}
	if len(b.Tokens) != 128 || len(b.Targets) != 128 || len(b.IsNext) != 8 {
		t.Fatalf("flattened lengths wrong: %d %d %d", len(b.Tokens), len(b.Targets), len(b.IsNext))
	}
	if b.MaskedCount() == 0 {
		t.Fatal("batch should contain masked positions")
	}
}

func TestDeterminism(t *testing.T) {
	c1, _ := NewCorpus(200, 1.0, 42)
	c2, _ := NewCorpus(200, 1.0, 42)
	b1 := c1.MakeBatch(4, DefaultBatchConfig(16))
	b2 := c2.MakeBatch(4, DefaultBatchConfig(16))
	for i := range b1.Tokens {
		if b1.Tokens[i] != b2.Tokens[i] || b1.Targets[i] != b2.Targets[i] {
			t.Fatal("same seed must produce identical batches")
		}
	}
}

func TestMakeBatchPanics(t *testing.T) {
	c, _ := NewCorpus(200, 1.0, 29)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for zero batch")
			}
		}()
		c.MakeBatch(0, DefaultBatchConfig(16))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for tiny seq len")
			}
		}()
		c.MakeExample(BatchConfig{SeqLen: 4, MaskProb: 0.15})
	}()
}

func TestBigramStructureIsLearnable(t *testing.T) {
	// The deterministic successor must appear far more often after its
	// predecessor than chance.
	c, _ := NewCorpus(104, 1.0, 31)
	words := 100
	succ := FirstWordID + (2*0+1)%words // successor of rank-0 word
	var after0, total0 int
	prev := c.sampleUnigram()
	for i := 0; i < 100000; i++ {
		tok := c.NextToken(prev)
		if prev == FirstWordID {
			total0++
			if tok == succ {
				after0++
			}
		}
		prev = tok
	}
	if total0 < 100 {
		t.Skip("rank-0 word too rare in this draw")
	}
	frac := float64(after0) / float64(total0)
	if frac < 0.3 {
		t.Fatalf("bigram successor fraction %.3f, want >= 0.3 (mix 0.5)", frac)
	}
}
