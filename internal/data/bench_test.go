package data

import "testing"

func BenchmarkMakeBatch(b *testing.B) {
	c, err := NewCorpus(30522, 1.0, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultBatchConfig(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.MakeBatch(32, cfg)
	}
}

func BenchmarkSentence(b *testing.B) {
	c, err := NewCorpus(30522, 1.0, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Sentence(512)
	}
}
