package engine

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/bert"
	"repro/internal/data"
	"repro/internal/faults"
	"repro/internal/gpt"
	"repro/internal/kfac"
	"repro/internal/optim"
	"repro/internal/pipeline"
	"repro/internal/pipemodel"
	"repro/internal/tensor"
)

// faultKFACOpts mirrors runRounds' K-FAC options so fault-path runs stay
// comparable to the fault-free baselines bit for bit.
func faultKFACOpts() kfac.Options {
	return kfac.Options{Damping: 1e-2, StatDecay: 0.9, UsePiDamping: true}
}

func mustParsePlan(t *testing.T, spec string) *faults.Plan {
	t.Helper()
	p, err := faults.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// cloneInverses snapshots every layer's cached inverse matrices, keyed so a
// degraded round's "served inverses unchanged" claim is checkable exactly.
func cloneInverses(e *Engine) map[string][2]*tensor.Matrix {
	out := map[string][2]*tensor.Matrix{}
	for s := 0; s < e.Stages(); s++ {
		for _, ls := range e.KFACStates(s).States() {
			if !ls.HasInverses() {
				continue
			}
			key := fmt.Sprintf("s%d/%s", s, ls.Layer.Name)
			out[key] = [2]*tensor.Matrix{ls.AInv.Clone(), ls.BInv.Clone()}
		}
	}
	return out
}

func inversesEqual(e *Engine, snap map[string][2]*tensor.Matrix) bool {
	n := 0
	for s := 0; s < e.Stages(); s++ {
		for _, ls := range e.KFACStates(s).States() {
			if !ls.HasInverses() {
				continue
			}
			n++
			key := fmt.Sprintf("s%d/%s", s, ls.Layer.Name)
			prev, ok := snap[key]
			if !ok || !ls.AInv.Equal(prev[0]) || !ls.BInv.Equal(prev[1]) {
				return false
			}
		}
	}
	return n == len(snap)
}

// Every op kind the executor runs must abort with the root cause attributed
// to its device and op when it fails without any resilience configured —
// never as a bare round-abort marker. W = 2 with inversion-parallel
// sharding and a K-FAC refresh round puts every kind in the schedule,
// collectives included.
func TestAbortAttributionEveryOpKind(t *testing.T) {
	cfg := Config{
		Method: "gpipe", Stages: 2, MicroBatches: 2, Replicas: 2,
		InversionParallel: true, RefreshSteps: 2,
	}
	m, _ := newModelAndCorpus(t)
	probe, err := NewWithConfig(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.EnableKFAC(faultKFACOpts(), 2); err != nil {
		t.Fatal(err)
	}
	kindSet := map[pipeline.WorkKind]bool{}
	for _, op := range probe.Schedule().Ops {
		kindSet[op.Kind] = true
	}
	var kinds []pipeline.WorkKind
	for k := range kindSet {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	if len(kinds) < 6 {
		t.Fatalf("probe schedule has only %d op kinds (%v); sweep would not cover the executor", len(kinds), kinds)
	}

	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			m, c := newModelAndCorpus(t)
			e, err := NewWithConfig(m, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := e.EnableKFAC(faultKFACOpts(), 2); err != nil {
				t.Fatal(err)
			}
			opt := optim.NewLAMB(m.Params(), 0.01)
			e.SetOptimizer(func(step int) error { opt.Step(5e-3); return nil })
			mk := func() []*data.Batch {
				out := make([]*data.Batch, 2)
				for j := range out {
					out[j] = c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen))
				}
				return out
			}
			marker := fmt.Sprintf("injected %s fault", kind)
			e.failOp = func(op *pipeline.Op) error {
				if op.Kind == kind {
					return fmt.Errorf("%s", marker)
				}
				return nil
			}
			_, err = e.TrainRound(mk())
			if err == nil {
				t.Fatalf("%s failure did not abort the round", kind)
			}
			if !strings.Contains(err.Error(), marker) {
				t.Fatalf("root cause lost: %v does not contain %q", err, marker)
			}
			if !strings.Contains(err.Error(), "device ") {
				t.Fatalf("error %v does not attribute a device", err)
			}
			e.failOp = nil
			if _, err := e.TrainRound(mk()); err != nil {
				t.Fatalf("engine unusable after %s abort: %v", kind, err)
			}
		})
	}
}

// An injector-driven failure must name the full injection point — step,
// device, op kind, micro-batch — in the surfaced error, so a chaos run's
// abort is attributable to the plan entry that caused it.
func TestInjectedFaultNamesInjectionPoint(t *testing.T) {
	m, c := newModelAndCorpus(t)
	e, err := NewWithConfig(m, Config{
		Method: "gpipe", Stages: 2, MicroBatches: 2, RefreshSteps: 2,
		FaultPlan: mustParsePlan(t, "fail:step=1,op=backward,count=1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := optim.NewLAMB(m.Params(), 0.01)
	e.SetOptimizer(func(step int) error { opt.Step(5e-3); return nil })
	mk := func() []*data.Batch {
		return []*data.Batch{
			c.MakeBatch(4, data.DefaultBatchConfig(m.Config.SeqLen)),
			c.MakeBatch(4, data.DefaultBatchConfig(m.Config.SeqLen)),
		}
	}
	_, err = e.TrainRound(mk())
	if err == nil {
		t.Fatal("injected backward failure did not abort")
	}
	for _, want := range []string{"step 1", "op backward", "device", "injected failure"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not name %q", err, want)
		}
	}
	// The count-limited fault is consumed: the engine recovers cleanly.
	if _, err := e.TrainRound(mk()); err != nil {
		t.Fatalf("engine unusable after injected abort: %v", err)
	}
}

// The degradation ladder's middle rung: a refresh whose curvature ops fail
// past the retry budget degrades instead of aborting — the round commits,
// the previous generation's inverses keep serving unchanged (§3.1 staleness
// extended across failures), the generation counter does not advance, and
// the next round re-runs a full refresh that delivers.
func TestDegradedRefreshServesStaleAndRecovers(t *testing.T) {
	m, c := newModelAndCorpus(t)
	// Absolute steps 2 and 3 are round 1: its whole refresh fails.
	plan := mustParsePlan(t, "fail:step=2,op=curvature;fail:step=3,op=curvature")
	e, err := NewWithConfig(m, Config{
		Method: "gpipe", Stages: 2, MicroBatches: 2, RefreshSteps: 2,
		FaultPlan: plan, OpRetries: 1, RetryBackoff: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EnableKFAC(faultKFACOpts(), 2); err != nil {
		t.Fatal(err)
	}
	opt := optim.NewLAMB(m.Params(), 0.01)
	e.SetOptimizer(func(step int) error { opt.Step(5e-3); return nil })
	mk := func() []*data.Batch {
		return []*data.Batch{
			c.MakeBatch(4, data.DefaultBatchConfig(m.Config.SeqLen)),
			c.MakeBatch(4, data.DefaultBatchConfig(m.Config.SeqLen)),
		}
	}

	// Round 0: clean refresh delivers generation 1.
	res, err := e.TrainRound(mk())
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Degraded || !res[0].Refreshed {
		t.Fatalf("clean round misreported: %+v", res[0])
	}
	gen0 := e.kfacGen
	snap := cloneInverses(e)
	if len(snap) == 0 {
		t.Fatal("no inverses delivered by the clean refresh")
	}

	// Round 1: every curvature op fails past its retry; the round degrades
	// but commits.
	res, err = e.TrainRound(mk())
	if err != nil {
		t.Fatalf("degraded round must commit, got %v", err)
	}
	if !res[0].Degraded {
		t.Fatal("round with failed refresh not marked degraded")
	}
	if !strings.Contains(res[0].DegradedReason, "curvature") {
		t.Fatalf("degraded reason %q does not name the failed op kind", res[0].DegradedReason)
	}
	if !strings.Contains(res[0].DegradedReason, "device") {
		t.Fatalf("degraded reason %q does not attribute a device", res[0].DegradedReason)
	}
	if e.kfacGen != gen0 {
		t.Fatalf("degraded refresh advanced the generation: %d -> %d", gen0, e.kfacGen)
	}
	if !inversesEqual(e, snap) {
		t.Fatal("degraded round changed the served inverses; it must keep the stale generation")
	}

	// Round 2: the plan is exhausted; the re-run refresh delivers a new
	// generation.
	res, err = e.TrainRound(mk())
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Degraded {
		t.Fatalf("recovery round degraded: %s", res[0].DegradedReason)
	}
	if e.kfacGen != gen0+1 {
		t.Fatalf("recovery refresh did not advance the generation: %d -> %d", gen0, e.kfacGen)
	}
	if inversesEqual(e, snap) {
		t.Fatal("recovery refresh did not update the inverses")
	}
}

// The ladder's bottom rung: when no generation was ever delivered (the very
// first refresh degrades), preconditioning falls back to the raw gradient —
// the degraded K-FAC engine's parameters match a plain (no K-FAC) engine
// bit for bit.
func TestDegradedFirstRefreshRunsUnpreconditioned(t *testing.T) {
	batches := bertBatches(t, 2, 4)
	mk := func() (*bert.Model, error) { return bert.New(bert.TinyConfig(), 123) }

	mA, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewWithConfig(mA, Config{
		Method: "gpipe", Stages: 2, MicroBatches: 2, RefreshSteps: 2,
		FaultPlan: mustParsePlan(t, "fail:op=curvature"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EnableKFAC(faultKFACOpts(), 2); err != nil {
		t.Fatal(err)
	}
	optA := optim.NewLAMB(mA.Params(), 0.01)
	e.SetOptimizer(func(step int) error { optA.Step(5e-3); return nil })
	res, err := e.TrainRound(batches)
	if err != nil {
		t.Fatalf("fully degraded refresh must still commit, got %v", err)
	}
	if !res[0].Degraded {
		t.Fatal("round with no delivered generation not marked degraded")
	}
	for s := 0; s < e.Stages(); s++ {
		for _, ls := range e.KFACStates(s).States() {
			if ls.HasInverses() {
				t.Fatalf("stage %d layer %q has inverses despite the degraded refresh", s, ls.Layer.Name)
			}
		}
	}

	mB, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	runRounds(t, mB, batches, Config{Method: "gpipe", Stages: 2, MicroBatches: 2, RefreshSteps: 2}, 0)
	requireParamsBitEqual(t, mA.Params(), mB.Params(), "degraded K-FAC vs plain SGD path")
}

// A transient side-path failure inside the retry budget is absorbed
// entirely: the round commits undegraded, and the executed timeline records
// the retry count on the recovered op.
func TestTransientFaultRetriesAndRecords(t *testing.T) {
	m, c := newModelAndCorpus(t)
	e, err := NewWithConfig(m, Config{
		Method: "gpipe", Stages: 2, MicroBatches: 2, RefreshSteps: 2,
		FaultPlan: mustParsePlan(t, "fail:op=curvature,count=1"),
		OpRetries: 2, RetryBackoff: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EnableKFAC(faultKFACOpts(), 2); err != nil {
		t.Fatal(err)
	}
	opt := optim.NewLAMB(m.Params(), 0.01)
	e.SetOptimizer(func(step int) error { opt.Step(5e-3); return nil })
	res, err := e.TrainRound([]*data.Batch{
		c.MakeBatch(4, data.DefaultBatchConfig(m.Config.SeqLen)),
		c.MakeBatch(4, data.DefaultBatchConfig(m.Config.SeqLen)),
	})
	if err != nil {
		t.Fatalf("transient fault within the retry budget aborted the round: %v", err)
	}
	if res[0].Degraded {
		t.Fatalf("transient fault degraded the round: %s", res[0].DegradedReason)
	}
	if !res[0].Refreshed {
		t.Fatal("refresh round did not deliver despite the successful retry")
	}
	tl := e.LastTimeline()
	retried := 0
	for d := 0; d < tl.Devices; d++ {
		for _, ev := range tl.Events[d] {
			if ev.Retries > 0 {
				if ev.Op.Kind != pipeline.Curvature {
					t.Fatalf("retry recorded on %s, want curvature", ev.Op.Kind)
				}
				retried++
			}
		}
	}
	if retried != 1 {
		t.Fatalf("%d events carry a retry count, want exactly 1", retried)
	}
}

// The watchdog converts a silent stall into an attributed failure: a device
// sleeping far past the op deadline is failed with the stalled device and
// op named, the abort unparks everyone, and the engine stays usable.
func TestWatchdogConvertsStallIntoAttributedAbort(t *testing.T) {
	m, c := newModelAndCorpus(t)
	e, err := NewWithConfig(m, Config{
		Method: "gpipe", Stages: 2, MicroBatches: 2, RefreshSteps: 2,
		FaultPlan: mustParsePlan(t, "stall:step=0,op=forward,micro=0,delay=2s,count=1"),
		OpTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := optim.NewLAMB(m.Params(), 0.01)
	e.SetOptimizer(func(step int) error { opt.Step(5e-3); return nil })
	mk := func() []*data.Batch {
		return []*data.Batch{
			c.MakeBatch(4, data.DefaultBatchConfig(m.Config.SeqLen)),
			c.MakeBatch(4, data.DefaultBatchConfig(m.Config.SeqLen)),
		}
	}
	start := time.Now()
	_, err = e.TrainRound(mk())
	if err == nil {
		t.Fatal("stalled round did not abort")
	}
	if !strings.Contains(err.Error(), "watchdog") || !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("stall not attributed by the watchdog: %v", err)
	}
	// The abort-aware stall unparks on the watchdog abort: the round must
	// return well before the injected 2s delay elapses.
	if elapsed := time.Since(start); elapsed > 1500*time.Millisecond {
		t.Fatalf("watchdog abort took %v; the stalled wait did not unpark", elapsed)
	}
	if _, err := e.TrainRound(mk()); err != nil {
		t.Fatalf("engine unusable after watchdog abort: %v", err)
	}
}

// Injected numeric corruption must never commit: the pre-commit health scan
// converts the poisoned step into an attributed abort, and checkpoint
// replay recovers a clean, fault-free state.
func TestCorruptionCaughtBeforeCommit(t *testing.T) {
	for _, spec := range []string{
		"corrupt:step=0,op=backward,count=1",
		"corrupt:step=0,op=forward,count=1",
	} {
		t.Run(spec, func(t *testing.T) {
			m, c := newModelAndCorpus(t)
			e, err := NewWithConfig(m, Config{
				Method: "gpipe", Stages: 2, MicroBatches: 2, RefreshSteps: 2,
				FaultPlan: mustParsePlan(t, spec), Checkpoint: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := e.EnableKFAC(faultKFACOpts(), 2); err != nil {
				t.Fatal(err)
			}
			opt := optim.NewLAMB(m.Params(), 0.01)
			e.SetOptimizer(func(step int) error { opt.Step(5e-3); return nil })
			e.AttachOptimizerState(opt)
			mk := func() []*data.Batch {
				return []*data.Batch{
					c.MakeBatch(4, data.DefaultBatchConfig(m.Config.SeqLen)),
					c.MakeBatch(4, data.DefaultBatchConfig(m.Config.SeqLen)),
				}
			}
			batches := mk()
			_, err = e.TrainRound(batches)
			if err == nil {
				t.Fatal("corrupted step committed")
			}
			if !strings.Contains(err.Error(), "must not commit") {
				t.Fatalf("corruption not caught by the health scan: %v", err)
			}
			if _, rerr := e.RestoreCheckpoint(); rerr != nil {
				t.Fatal(rerr)
			}
			if _, err := e.TrainRound(batches); err != nil {
				t.Fatalf("replay after corruption abort failed: %v", err)
			}
			for _, p := range m.Params() {
				if p.Value.HasNaN() {
					t.Fatalf("parameter %s poisoned despite the health scan", p.Name)
				}
			}
		})
	}
}

// Corrupted curvature statistics must never reach the preconditioner's
// EMA: the pre-fold guard fails the inversion before SetFactors, the retry
// re-sums the still-poisoned partials, and the refresh degrades — stale
// inverses keep serving, long-lived K-FAC state stays clean.
func TestCorruptCurvatureDegradesBeforeFold(t *testing.T) {
	m, c := newModelAndCorpus(t)
	e, err := NewWithConfig(m, Config{
		Method: "gpipe", Stages: 2, MicroBatches: 2, RefreshSteps: 2,
		FaultPlan: mustParsePlan(t, "corrupt:op=curvature,count=1"),
		OpRetries: 1, RetryBackoff: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EnableKFAC(faultKFACOpts(), 2); err != nil {
		t.Fatal(err)
	}
	opt := optim.NewLAMB(m.Params(), 0.01)
	e.SetOptimizer(func(step int) error { opt.Step(5e-3); return nil })
	res, err := e.TrainRound([]*data.Batch{
		c.MakeBatch(4, data.DefaultBatchConfig(m.Config.SeqLen)),
		c.MakeBatch(4, data.DefaultBatchConfig(m.Config.SeqLen)),
	})
	if err != nil {
		t.Fatalf("corrupt curvature must degrade, not abort: %v", err)
	}
	if !res[0].Degraded {
		t.Fatal("round with corrupted curvature statistics not marked degraded")
	}
	if !strings.Contains(res[0].DegradedReason, "NaN/Inf in folded curvature factors") {
		t.Fatalf("degraded reason %q does not name the pre-fold guard", res[0].DegradedReason)
	}
	// Nothing poisoned escaped into long-lived state: the EMA was never
	// touched, so the re-run refresh delivers finite inverses.
	res, err = e.TrainRound([]*data.Batch{
		c.MakeBatch(4, data.DefaultBatchConfig(m.Config.SeqLen)),
		c.MakeBatch(4, data.DefaultBatchConfig(m.Config.SeqLen)),
	})
	if err != nil || res[0].Degraded {
		t.Fatalf("recovery round failed: err=%v degraded=%v", err, res[0].Degraded)
	}
	for s := 0; s < e.Stages(); s++ {
		for _, ls := range e.KFACStates(s).States() {
			if ls.HasInverses() && (ls.AInv.HasNaN() || ls.BInv.HasNaN()) {
				t.Fatalf("stage %d layer %q: poisoned inverse escaped the pre-fold guard", s, ls.Layer.Name)
			}
		}
	}
}

// The acceptance property of round checkpoint/replay: after an injected
// base-path abort, restore-and-replay reproduces the fault-free run's
// parameters bit-identically — for BERT and GPT, every schedule method,
// W in {1, 2}, with K-FAC refresh rounds. Replaying rewinds the aborted
// round's committed steps too: the checkpoint is the round's start.
func TestCheckpointReplayBitIdentity(t *testing.T) {
	type modelCase struct {
		name    string
		make    func() (pipemodel.Model, error)
		batches func(t *testing.T, n, size int) []*data.Batch
	}
	cases := []modelCase{
		{"bert", func() (pipemodel.Model, error) { return bert.New(bert.TinyConfig(), 123) }, bertBatches},
		{"gpt", func() (pipemodel.Model, error) { return gpt.New(gpt.TinyConfig(), 99) }, gptBatches},
	}
	for _, mc := range cases {
		for _, method := range []string{"gpipe", "1f1b", "chimera"} {
			for _, w := range []int{1, 2} {
				t.Run(fmt.Sprintf("%s/%s/W%d", mc.name, method, w), func(t *testing.T) {
					micro := 4 / w
					if method == "chimera" {
						micro = 4
					}
					batches := mc.batches(t, 4, 2*micro*w)
					base := Config{Method: method, Stages: 2, MicroBatches: micro, Replicas: w, RefreshSteps: 2}

					mRef, err := mc.make()
					if err != nil {
						t.Fatal(err)
					}
					runRounds(t, mRef, batches, base, 2)

					mF, err := mc.make()
					if err != nil {
						t.Fatal(err)
					}
					cfg := base
					// Absolute step 3 is the second round's second step: the
					// round commits step 2, then aborts — replay must rewind
					// the committed step too.
					cfg.FaultPlan = mustParsePlan(t, "fail:step=3,op=backward,count=1")
					cfg.Checkpoint = true
					e, err := NewWithConfig(mF, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if err := e.EnableKFAC(faultKFACOpts(), 2); err != nil {
						t.Fatal(err)
					}
					opt := optim.NewLAMB(mF.Params(), 0.01)
					e.SetOptimizer(func(step int) error { opt.Step(5e-3); return nil })
					e.AttachOptimizerState(opt)

					if _, err := e.TrainRound(batches[:2]); err != nil {
						t.Fatalf("fault-free first round failed: %v", err)
					}
					if _, err := e.TrainRound(batches[2:]); err == nil {
						t.Fatal("injected abort did not surface")
					}
					replayFrom, err := e.RestoreCheckpoint()
					if err != nil {
						t.Fatal(err)
					}
					if replayFrom != 2 {
						t.Fatalf("restore rewound to step %d, want 2 (the aborted round's start)", replayFrom)
					}
					if _, err := e.TrainRound(batches[2:]); err != nil {
						t.Fatalf("replay failed: %v", err)
					}
					requireParamsBitEqual(t, mF.Params(), mRef.Params(), "checkpoint replay vs fault-free")
				})
			}
		}
	}
}

// RestoreCheckpoint's preconditions are explicit errors, not silent
// misbehavior: it needs Config.Checkpoint, a saved checkpoint, and —
// when an optimizer is attached — its state registered before the round.
func TestCheckpointPreconditions(t *testing.T) {
	m, c := newModelAndCorpus(t)
	e, err := NewWithConfig(m, Config{Method: "gpipe", Stages: 2, MicroBatches: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RestoreCheckpoint(); err == nil || !strings.Contains(err.Error(), "Config.Checkpoint") {
		t.Fatalf("restore without Checkpoint must fail clearly, got %v", err)
	}

	e2, err := NewWithConfig(m, Config{Method: "gpipe", Stages: 2, MicroBatches: 2, Checkpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.RestoreCheckpoint(); err == nil || !strings.Contains(err.Error(), "no round checkpoint") {
		t.Fatalf("restore before any round must fail clearly, got %v", err)
	}
	opt := optim.NewLAMB(m.Params(), 0.01)
	e2.SetOptimizer(func(step int) error { opt.Step(5e-3); return nil })
	// Optimizer attached but its state not registered: the round must refuse
	// rather than checkpoint a state it cannot restore.
	if _, err := e2.TrainRound([]*data.Batch{c.MakeBatch(4, data.DefaultBatchConfig(m.Config.SeqLen))}); err == nil ||
		!strings.Contains(err.Error(), "AttachOptimizerState") {
		t.Fatalf("Checkpoint without AttachOptimizerState must fail clearly, got %v", err)
	}
}

// Aborts anywhere in the round must leak nothing from the workspace pool:
// with the audit on, the live-buffer count between rounds returns to its
// steady-state baseline after an abort at every (step, op kind) present in
// the schedule. W = 2 + inversion-parallel + K-FAC puts every op kind and
// both rollback paths (clones, carried generations, partial folds) in play.
func TestPoolAuditNoLeakOnAbortAnywhere(t *testing.T) {
	m, c := newModelAndCorpus(t)
	e, err := NewWithConfig(m, Config{
		Method: "gpipe", Stages: 2, MicroBatches: 2, Replicas: 2,
		InversionParallel: true, RefreshSteps: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EnableKFAC(faultKFACOpts(), 2); err != nil {
		t.Fatal(err)
	}
	opt := optim.NewLAMB(m.Params(), 0.01)
	e.SetOptimizer(func(step int) error { opt.Step(5e-3); return nil })
	mk := func() []*data.Batch {
		out := make([]*data.Batch, 2)
		for j := range out {
			out[j] = c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen))
		}
		return out
	}

	tensor.SetPoolAudit(true)
	defer tensor.SetPoolAudit(false)

	// Two clean rounds reach the steady state; a third proves the baseline
	// is stable before any fault is injected.
	for i := 0; i < 2; i++ {
		if _, err := e.TrainRound(mk()); err != nil {
			t.Fatal(err)
		}
	}
	base := tensor.PoolLive()
	if _, err := e.TrainRound(mk()); err != nil {
		t.Fatal(err)
	}
	if live := tensor.PoolLive(); live != base {
		t.Fatalf("steady-state live count drifted between clean rounds: %d -> %d", base, live)
	}

	type point struct {
		step int
		kind pipeline.WorkKind
	}
	seen := map[point]bool{}
	var points []point
	for _, op := range e.Schedule().Ops {
		p := point{op.Step, op.Kind}
		if !seen[p] {
			seen[p] = true
			points = append(points, p)
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].step != points[j].step {
			return points[i].step < points[j].step
		}
		return points[i].kind < points[j].kind
	})

	for _, p := range points {
		p := p
		e.failOp = func(op *pipeline.Op) error {
			if op.Kind == p.kind && op.Step == p.step {
				return fmt.Errorf("injected abort at step %d kind %s", p.step, p.kind)
			}
			return nil
		}
		if _, err := e.TrainRound(mk()); err == nil {
			t.Fatalf("abort at step %d kind %s did not surface", p.step, p.kind)
		}
		if live := tensor.PoolLive(); live != base {
			t.Fatalf("pool leak after abort at step %d kind %s: %d live buffers, baseline %d",
				p.step, p.kind, live, base)
		}
	}
	e.failOp = nil
	if _, err := e.TrainRound(mk()); err != nil {
		t.Fatalf("engine unusable after the abort sweep: %v", err)
	}
	if live := tensor.PoolLive(); live != base {
		t.Fatalf("pool leak after the recovery round: %d live, baseline %d", live, base)
	}
}

// Seeded chaos soak: randomized fault plans (failures, stalls, drops,
// corruption at random points) against every schedule method, W in {1, 2},
// overlap on and off, with the full resilience stack enabled — retries,
// watchdog, degradation, checkpoint replay. Every round must either commit
// or recover via replay, and the parameters must stay finite. Runs under
// -race in CI's chaos job; skipped with -short.
func TestRandomFaultPlanSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	configs := []struct {
		method  string
		w       int
		overlap bool
	}{
		{"gpipe", 1, false},
		{"gpipe", 2, true},
		{"1f1b", 2, false},
		{"1f1b", 1, true},
		{"chimera", 1, true},
		{"chimera", 2, false},
	}
	for i, tc := range configs {
		t.Run(fmt.Sprintf("%s/W%d/overlap=%v", tc.method, tc.w, tc.overlap), func(t *testing.T) {
			micro := 4 / tc.w
			if tc.method == "chimera" {
				micro = 4
			}
			m, err := bert.New(bert.TinyConfig(), 123)
			if err != nil {
				t.Fatal(err)
			}
			c, err := data.NewCorpus(bert.TinyConfig().VocabSize, 1.0, 321)
			if err != nil {
				t.Fatal(err)
			}
			plan := faults.Random(int64(1000+i), 4, 6, 2*tc.w)
			e, err := NewWithConfig(m, Config{
				Method: tc.method, Stages: 2, MicroBatches: micro, Replicas: tc.w,
				InversionParallel: tc.w > 1, RefreshSteps: 2, OverlapRounds: tc.overlap,
				FaultPlan: plan, OpRetries: 1, RetryBackoff: 200 * time.Microsecond,
				OpTimeout: 5 * time.Second, Checkpoint: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := e.EnableKFAC(faultKFACOpts(), 2); err != nil {
				t.Fatal(err)
			}
			opt := optim.NewLAMB(m.Params(), 0.01)
			e.SetOptimizer(func(step int) error { opt.Step(5e-3); return nil })
			e.AttachOptimizerState(opt)
			for round := 0; round < 3; round++ {
				batches := make([]*data.Batch, 2)
				for j := range batches {
					batches[j] = c.MakeBatch(2*micro*tc.w, data.DefaultBatchConfig(m.Config.SeqLen))
				}
				_, err := e.TrainRound(batches)
				for attempt := 0; err != nil && attempt < 5; attempt++ {
					if _, rerr := e.RestoreCheckpoint(); rerr != nil {
						t.Fatalf("round %d: restore failed: %v (after %v)", round, rerr, err)
					}
					_, err = e.TrainRound(batches)
				}
				if err != nil {
					t.Fatalf("round %d never recovered: %v", round, err)
				}
			}
			for _, p := range m.Params() {
				if p.Value.HasNaN() {
					t.Fatalf("parameter %s not finite after the soak", p.Name)
				}
			}
		})
	}
}
