package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bert"
	"repro/internal/data"
	"repro/internal/kfac"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/pipeline"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// newRankBERTBatches is newRankBERT for multi-step runs: the corpus is
// seeded identically on every rank, so rank-local batch generation yields
// the same global batch sequence everywhere — exactly what a separate
// process would materialize.
func newRankBERTBatches(t *testing.T, batchSize, n int) (*bert.Model, []*data.Batch) {
	t.Helper()
	m, err := bert.New(bert.TinyConfig(), 123)
	if err != nil {
		t.Fatal(err)
	}
	c, err := data.NewCorpus(bert.TinyConfig().VocabSize, 1.0, 321)
	if err != nil {
		t.Fatal(err)
	}
	batches := make([]*data.Batch, n)
	for i := range batches {
		batches[i] = c.MakeBatch(batchSize, data.DefaultBatchConfig(m.Config.SeqLen))
	}
	return m, batches
}

// engState is the transplantable training state of an engine — what run B
// of the shrink identity test seeds from run A's restored checkpoint.
type engState struct {
	params         [][]float64
	opt            []float64
	step, round    int
	gen            int
	refreshPending bool
	kfacSnaps      []*kfac.Snapshot
}

func captureEngState(e *Engine) *engState {
	s := &engState{step: e.stepIndex, round: e.roundIndex, gen: e.kfacGen, refreshPending: e.refreshPending}
	for _, p := range e.reps[0].params {
		s.params = append(s.params, append([]float64(nil), p.Value.Data...))
	}
	if e.optState != nil {
		s.opt = make([]float64, e.optState.StateLen())
		e.optState.SaveState(s.opt)
	}
	for _, pre := range e.kfacPre {
		snap := &kfac.Snapshot{}
		snap.Save(pre)
		s.kfacSnaps = append(s.kfacSnaps, snap)
	}
	return s
}

func implantEngState(e *Engine, s *engState) error {
	for i, p := range e.reps[0].params {
		copy(p.Value.Data, s.params[i])
		p.Grad.Zero()
	}
	if e.optState != nil && len(s.opt) > 0 {
		e.optState.LoadState(s.opt)
	}
	for i, pre := range e.kfacPre {
		if err := s.kfacSnaps[i].Restore(pre); err != nil {
			return err
		}
	}
	e.stepIndex, e.roundIndex, e.kfacGen, e.refreshPending = s.step, s.round, s.gen, s.refreshPending
	return e.broadcastParams()
}

// elasticResult is one rank's journey through an elastic test run. losses
// is keyed by step index: commit is not atomic across ranks, so a survivor
// may have aborted a step a peer committed — per-step keying keeps the
// records comparable regardless.
type elasticResult struct {
	losses map[int]float64
	params []*tensor.Matrix
	ckpt   *engState
	killed bool
	err    error
}

func newElasticResult() elasticResult { return elasticResult{losses: map[int]float64{}} }

// The tentpole identity property: a 3-rank ring hit by a deterministic
// rank-2 kill mid-training regroups — survivors reform a 2-rank ring, swap
// the engine onto it, and rewind to the round checkpoint — and from that
// point every per-step loss is bit-identical to a fresh 2-rank run seeded
// from the same checkpoint. Shrinking the group is exactly "restore this
// checkpoint at the surviving width". Runs once without K-FAC and once with
// (the checkpoint then also carries factor EMAs and inverses).
func TestRingEngineShrinkBitIdentity(t *testing.T) {
	for _, useKFAC := range []bool{false, true} {
		name := "plain"
		if useKFAC {
			name = "kfac"
		}
		t.Run(name, func(t *testing.T) {
			const nSteps = 4
			opts := transport.RingOptions{HeartbeatInterval: 20 * time.Millisecond}
			rings, addrs, cleanup, err := transport.NewLocalRingOpts(3, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer cleanup()
			plan := mustParsePlan(t, "kill:rank=2,step=1")

			build := func(g transport.Group, withPlan bool) (*Engine, *bert.Model, []*data.Batch, error) {
				// Batch size 12 splits evenly at both widths: 6 global
				// micro-batches of 2 at W=3, 4 of 3 at W=2.
				m, batches := newRankBERTBatches(t, 12, nSteps)
				cfg := Config{Method: "gpipe", Stages: 2, MicroBatches: 2, Transport: g, Checkpoint: true}
				if withPlan {
					cfg.FaultPlan = plan
				}
				eng, err := NewWithConfig(m, cfg)
				if err != nil {
					return nil, nil, nil, err
				}
				if useKFAC {
					if err := eng.EnableKFAC(kfac.Options{Damping: 1e-2, StatDecay: 0.9}, 1); err != nil {
						return nil, nil, nil, err
					}
				}
				opt := optim.NewSGD(m.Params(), 0.9, 0)
				eng.SetOptimizer(func(step int) error { opt.Step(0.05); return nil })
				eng.AttachOptimizerState(opt)
				nn.ZeroGrads(m.Params())
				return eng, m, batches, nil
			}

			// Run A: 3 ranks, rank 2 killed at step 1, survivors regroup.
			var outA [3]elasticResult
			var wg sync.WaitGroup
			// Ranks that finish cleanly park here before closing their ring:
			// a rank can owe forwarding writes to a peer even after that peer
			// completed the same collective, so closing immediately on
			// completion can break a slower peer's final step. (Failed ranks
			// skip the barrier — severing the ring is then the point.)
			var finish sync.WaitGroup
			finish.Add(len(rings))
			for rank := range rings {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					ring := rings[rank]
					eng, m, batches, err := build(ring, true)
					if err != nil {
						finish.Done()
						outA[rank] = elasticResult{err: err}
						return
					}
					eng.SetKillHook(func() { ring.Close() })
					var group transport.Group = ring
					defer func() { group.Close() }()
					defer func() {
						finish.Done()
						if outA[rank].err == nil {
							finish.Wait()
						}
					}()
					res := newElasticResult()
					for i := 0; i < nSteps; {
						sr, err := eng.TrainStep(batches[i])
						if err == nil {
							res.losses[i] = sr.Loss.Total
							i++
							continue
						}
						if rank == 2 {
							res.killed = true
							outA[rank] = res
							return
						}
						rf, ok := transport.AsRankFailure(err)
						if !ok {
							outA[rank] = elasticResult{err: fmt.Errorf("step %d: want RankFailure, got %v", i, err)}
							return
						}
						if rf.Rank != 2 {
							outA[rank] = elasticResult{err: fmt.Errorf("failure attributed to rank %d, want 2 (%v)", rf.Rank, rf)}
							return
						}
						// Close the old ring only once the survivor ring has
						// formed: every survivor inside Reform has already
						// observed the failure, so no one is still mid-write
						// into a connection this close would break.
						g2, err := transport.Reform(addrs, []int{0, 1}, rank, 1, opts)
						if err != nil {
							outA[rank] = elasticResult{err: fmt.Errorf("reform: %w", err)}
							return
						}
						group.Close()
						group = g2
						if err := eng.Reconnect(g2, false); err != nil {
							outA[rank] = elasticResult{err: err}
							return
						}
						step, err := eng.RegroupRestore()
						if err != nil {
							outA[rank] = elasticResult{err: err}
							return
						}
						i = step
						res.ckpt = captureEngState(eng)
					}
					res.params = cloneParams(m.Params())
					outA[rank] = res
				}(rank)
			}
			wg.Wait()
			for rank, r := range outA {
				if r.err != nil {
					t.Errorf("run A rank %d: %v", rank, r.err)
				}
			}
			if !outA[2].killed {
				t.Fatal("rank 2 was never killed")
			}
			// Rank 0's inbound data for step 0 fully landed before the kill
			// (rank 2 only dies after committing step 0), so rank 0 commits
			// every step; rank 1 may have aborted step 0 mid-write and
			// adopted rank 0's checkpoint during reconciliation instead.
			if len(outA[0].losses) != nSteps {
				t.Fatalf("survivor committed %d steps, want %d", len(outA[0].losses), nSteps)
			}
			for i, l := range outA[1].losses {
				if l != outA[0].losses[i] {
					t.Fatalf("survivors disagree on loss of step %d: %.17g vs %.17g", i, outA[0].losses[i], l)
				}
			}
			if outA[0].ckpt == nil || outA[0].ckpt.step != 1 {
				t.Fatalf("regroup restored to step %v, want 1", outA[0].ckpt)
			}

			// Run B: a fresh 2-rank group seeded from run A's restored
			// checkpoint replays steps 1..3.
			rings2, _, cleanup2, err := transport.NewLocalRingOpts(2, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer cleanup2()
			var outB [2]elasticResult
			// Same close discipline as run A: clean finishers park until both
			// ranks are done before closing, so a fast rank's teardown cannot
			// break the slower rank's final in-flight frames.
			var finishB sync.WaitGroup
			finishB.Add(2)
			for rank := range rings2 {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					defer rings2[rank].Close()
					defer func() {
						finishB.Done()
						if outB[rank].err == nil {
							finishB.Wait()
						}
					}()
					eng, m, batches, err := build(rings2[rank], false)
					if err != nil {
						outB[rank] = elasticResult{err: err}
						return
					}
					if err := implantEngState(eng, outA[0].ckpt); err != nil {
						outB[rank] = elasticResult{err: err}
						return
					}
					res := newElasticResult()
					for i := eng.StepsDone(); i < nSteps; i++ {
						sr, err := eng.TrainStep(batches[i])
						if err != nil {
							outB[rank] = elasticResult{err: fmt.Errorf("step %d: %w", i, err)}
							return
						}
						res.losses[i] = sr.Loss.Total
					}
					res.params = cloneParams(m.Params())
					outB[rank] = res
				}(rank)
			}
			wg.Wait()
			for rank, r := range outB {
				if r.err != nil {
					t.Fatalf("run B rank %d: %v", rank, r.err)
				}
			}
			// Post-shrink steps 1..3 of run A vs the same steps of run B.
			for i := 1; i < nSteps; i++ {
				if got, want := outA[0].losses[i], outB[0].losses[i]; got != want {
					t.Fatalf("%s: post-shrink loss of step %d is %.17g, fresh-2-rank run has %.17g", name, i, got, want)
				}
			}
			requireRankGradsBitEqual(t, outA[0].params, outB[0].params, "post-shrink params vs fresh 2-rank run")
			requireRankGradsBitEqual(t, outA[1].params, outB[1].params, "post-shrink params vs fresh 2-rank run (rank 1)")
		})
	}
}

// cloneParams deep-copies parameter values (cloneGrads's value-side twin).
func cloneParams(params []*nn.Param) []*tensor.Matrix {
	out := make([]*tensor.Matrix, len(params))
	for i, p := range params {
		out[i] = p.Value.Clone()
	}
	return out
}

// Supervised rejoin: after the shrink, a restarted rank 2 and the two
// survivors dial the full-width ring under the next membership view; the
// rejoiner (a fresh process: new model, new engine, empty optimizer)
// reconnects with resync=true and receives rank 0's parameters, optimizer
// state and step counters over the ordinary broadcast. Training continues
// at restored width with every rank in lockstep, and the first post-rejoin
// timeline carries the membership view and marker span.
func TestRingEngineRejoinRestoresWidth(t *testing.T) {
	const nSteps = 6
	opts := transport.RingOptions{HeartbeatInterval: 20 * time.Millisecond}
	rings, addrs, cleanup, err := transport.NewLocalRingOpts(3, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	plan := mustParsePlan(t, "kill:rank=2,step=1")

	build := func(g transport.Group, withPlan bool) (*Engine, *bert.Model, []*data.Batch, error) {
		m, batches := newRankBERTBatches(t, 12, nSteps)
		cfg := Config{Method: "gpipe", Stages: 2, MicroBatches: 2, Transport: g, Checkpoint: true}
		if withPlan {
			cfg.FaultPlan = plan
		}
		eng, err := NewWithConfig(m, cfg)
		if err != nil {
			return nil, nil, nil, err
		}
		opt := optim.NewSGD(m.Params(), 0.9, 0)
		eng.SetOptimizer(func(step int) error { opt.Step(0.05); return nil })
		eng.AttachOptimizerState(opt)
		nn.ZeroGrads(m.Params())
		return eng, m, batches, nil
	}
	rejoinOpts := opts
	rejoinOpts.View = 2
	// The supervisor's round-boundary gate: the restarted rank may only dial
	// the full-width ring once both survivors reached the agreed boundary
	// (otherwise its silent half-dialed connection confuses their regroup).
	var boundary sync.WaitGroup
	boundary.Add(2)

	var out [3]elasticResult
	var views [3]int
	var wg sync.WaitGroup
	// Clean finishers park before closing the final full-width ring: a rank
	// can owe forwarding writes to a peer even after that peer completed the
	// collective, so an early close breaks a slower peer's last step.
	var finish sync.WaitGroup
	finish.Add(3)
	for rank := range rings {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			var eng *Engine
			var m *bert.Model
			var batches []*data.Batch
			var group transport.Group
			var err error // shadows the test-level err: rank goroutines must not share one
			defer func() {
				if group != nil {
					group.Close()
				}
			}()
			defer func() {
				finish.Done()
				if out[rank].err == nil {
					finish.Wait()
				}
			}()
			res := newElasticResult()
			if rank == 2 {
				// Original incarnation: train until killed.
				engA, _, batchesA, err := build(rings[2], true)
				if err != nil {
					out[rank] = elasticResult{err: err}
					return
				}
				engA.SetKillHook(func() { rings[2].Close() })
				for i := 0; ; i++ {
					sr, err := engA.TrainStep(batchesA[i])
					if err != nil {
						break // killed
					}
					res.losses[i] = sr.Loss.Total
				}
				// Restarted incarnation: fresh model and engine built on
				// Loopback (no construction-time collectives), then dialed
				// into the full-width view-2 ring and resynced.
				eng, m, batches, err = build(nil, false)
				if err != nil {
					out[rank] = elasticResult{err: err}
					return
				}
				boundary.Wait()
			} else {
				eng, m, batches, err = build(rings[rank], true)
				if err != nil {
					out[rank] = elasticResult{err: err}
					return
				}
				group = rings[rank]
				// Survive the kill: regroup at W=2, replay, and run through
				// step 2 before the agreed rejoin boundary.
				for i := 0; i < 3; {
					sr, err := eng.TrainStep(batches[i])
					if err == nil {
						res.losses[i] = sr.Loss.Total
						i++
						continue
					}
					rf, ok := transport.AsRankFailure(err)
					if !ok || rf.Rank != 2 {
						out[rank] = elasticResult{err: fmt.Errorf("want rank-2 RankFailure, got %v", err)}
						return
					}
					g2, err := transport.Reform(addrs, []int{0, 1}, rank, 1, opts)
					if err != nil {
						out[rank] = elasticResult{err: err}
						return
					}
					group.Close()
					group = g2
					if err := eng.Reconnect(g2, false); err != nil {
						out[rank] = elasticResult{err: err}
						return
					}
					if i, err = eng.RegroupRestore(); err != nil {
						out[rank] = elasticResult{err: err}
						return
					}
				}
				group.Close()
				boundary.Done()
			}
			// Rejoin boundary: everyone dials the full-width view-2 ring.
			g3, err := transport.DialRing(addrs, rank, rejoinOpts)
			if err != nil {
				out[rank] = elasticResult{err: fmt.Errorf("rejoin dial: %w", err)}
				return
			}
			group = g3
			if err := eng.Reconnect(g3, true); err != nil {
				out[rank] = elasticResult{err: fmt.Errorf("rejoin resync: %w", err)}
				return
			}
			if got := eng.StepsDone(); got != 3 {
				out[rank] = elasticResult{err: fmt.Errorf("rejoined at step %d, want 3", got)}
				return
			}
			for i := eng.StepsDone(); i < nSteps; i++ {
				sr, err := eng.TrainStep(batches[i])
				if err != nil {
					out[rank] = elasticResult{err: fmt.Errorf("post-rejoin step %d: %w", i, err)}
					return
				}
				res.losses[i] = sr.Loss.Total
			}
			views[rank] = eng.MemberView()
			if rank == 0 {
				tl := eng.LastTimeline()
				if tl == nil || tl.Events[0][0].Membership != 2 {
					out[rank] = elasticResult{err: fmt.Errorf("post-rejoin timeline not stamped with view 2")}
					return
				}
			}
			res.params = cloneParams(m.Params())
			out[rank] = res
		}(rank)
	}
	wg.Wait()
	for rank, r := range out {
		if r.err != nil {
			t.Errorf("rank %d: %v", rank, r.err)
		}
	}
	for rank := range views {
		if views[rank] != 2 {
			t.Fatalf("rank %d ended at membership view %d, want 2", rank, views[rank])
		}
	}
	// Rank 0 committed every step (its inbound data always lands; see the
	// shrink test); rank 1 may have adopted rank 0's checkpoint for a step
	// it aborted, so only its recorded steps are compared.
	if len(out[0].losses) != nSteps {
		t.Fatalf("rank 0 committed %d steps, want %d", len(out[0].losses), nSteps)
	}
	for i, l := range out[1].losses {
		if l != out[0].losses[i] {
			t.Fatalf("survivors disagree on loss of step %d", i)
		}
	}
	// The rejoiner re-ran steps 3..5 in lockstep with the survivors.
	for i := 3; i < nSteps; i++ {
		if out[2].losses[i] != out[0].losses[i] {
			t.Fatalf("rejoiner loss of step %d is %.17g, survivors have %.17g", i, out[2].losses[i], out[0].losses[i])
		}
	}
	requireRankGradsBitEqual(t, out[2].params, out[0].params, "rejoined rank params vs rank 0")
}

// The first executed round after a membership change carries a
// zero-duration Membership marker and stamps every event with the new view;
// subsequent rounds keep the stamp but not the marker.
func TestTimelineMembershipStamp(t *testing.T) {
	m, batches := newRankBERTBatches(t, 4, 2)
	eng, err := NewWithConfig(m, Config{Stages: 2, MicroBatches: 2})
	if err != nil {
		t.Fatal(err)
	}
	nn.ZeroGrads(m.Params())
	if _, err := eng.TrainStep(batches[0]); err != nil {
		t.Fatal(err)
	}
	for _, ev := range eng.LastTimeline().Events[0] {
		if ev.Membership != 0 || ev.Op.Kind == pipeline.Membership {
			t.Fatal("pre-change timeline must carry view 0 and no marker")
		}
	}
	if err := eng.Reconnect(transport.Loopback{}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.TrainStep(batches[1]); err != nil {
		t.Fatal(err)
	}
	tl := eng.LastTimeline()
	if tl.Events[0][0].Op.Kind != pipeline.Membership {
		t.Fatalf("first post-change event is %v, want a Membership marker", tl.Events[0][0].Op.Kind)
	}
	for d := range tl.Events {
		for _, ev := range tl.Events[d] {
			if ev.Membership != 1 {
				t.Fatalf("post-change event %v stamped with view %d, want 1", ev.Op.Kind, ev.Membership)
			}
		}
	}
	if _, err := eng.TrainStep(batches[0]); err != nil {
		t.Fatal(err)
	}
	if eng.LastTimeline().Events[0][0].Op.Kind == pipeline.Membership {
		t.Fatal("marker must appear only on the first round after the change")
	}
}

// Kill faults are rank-projected: a plan targeting another rank costs this
// rank nothing (nil injector, fault-free fast path), and a plan targeting
// this rank fires the registered kill hook exactly once per matched op.
func TestKillHookAndRankProjection(t *testing.T) {
	m, batches := newRankBERTBatches(t, 4, 1)
	eng, err := NewWithConfig(m, Config{
		Stages: 2, MicroBatches: 2,
		FaultPlan: mustParsePlan(t, "kill:rank=1,step=0"),
	})
	if err != nil {
		t.Fatal(err)
	}
	nn.ZeroGrads(m.Params())
	if eng.inj != nil {
		t.Fatal("rank-1-targeted plan must leave rank 0's injector nil")
	}
	if _, err := eng.TrainStep(batches[0]); err != nil {
		t.Fatalf("rank-1-targeted kill fired on rank 0: %v", err)
	}

	m2, batches2 := newRankBERTBatches(t, 4, 1)
	eng2, err := NewWithConfig(m2, Config{
		Stages: 2, MicroBatches: 2,
		FaultPlan: mustParsePlan(t, "kill:rank=0,step=0,count=1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	nn.ZeroGrads(m2.Params())
	var fired atomic.Int32
	eng2.SetKillHook(func() { fired.Add(1) })
	_, err = eng2.TrainStep(batches2[0])
	if err == nil {
		t.Fatal("kill fault must abort the round when the hook leaves the process alive")
	}
	if !contains(err.Error(), "killed") {
		t.Fatalf("kill abort not attributed: %v", err)
	}
	if got := fired.Load(); got != 1 {
		t.Fatalf("kill hook fired %d times, want 1", got)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
