package engine

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/bert"
	"repro/internal/data"
	"repro/internal/gpt"
	"repro/internal/kfac"
	"repro/internal/optim"
	"repro/internal/pipemodel"
)

// newSwapEngine builds an engine with K-FAC and an owned optimizer, the
// shape every hot-swap test drives.
func newSwapEngine(t *testing.T, m pipemodel.Model, cfg Config, kfacEvery int) *Engine {
	t.Helper()
	e, err := NewWithConfig(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EnableKFAC(kfac.Options{Damping: 1e-2, StatDecay: 0.9, UsePiDamping: true}, kfacEvery); err != nil {
		t.Fatal(err)
	}
	opt := optim.NewLAMB(m.Params(), 0.01)
	e.SetOptimizer(func(step int) error { opt.Step(5e-3); return nil })
	e.AttachOptimizerState(opt)
	return e
}

// A hot-swap to the engine's *current* configuration must be invisible:
// the rebuilt schedule is deterministic and identical, no refresh state is
// touched, and training after the swap is bit-identical to never swapping
// — for BERT and GPT, all three schedule families, W in {1, 2}, through
// an overlapped refresh round (so generation pools and the carry queue
// are live across the swap point).
func TestReconfigureSameConfigBitIdentity(t *testing.T) {
	type modelCase struct {
		name    string
		make    func(blocks int) (pipemodel.Model, error)
		batches func(t *testing.T, n, size int) []*data.Batch
	}
	cases := []modelCase{
		{"bert", func(blocks int) (pipemodel.Model, error) {
			cfg := bert.TinyConfig()
			cfg.Blocks = blocks
			return bert.New(cfg, 123)
		}, bertBatches},
		{"gpt", func(blocks int) (pipemodel.Model, error) {
			cfg := gpt.TinyConfig()
			cfg.Blocks = blocks
			return gpt.New(cfg, 99)
		}, gptBatches},
	}
	for _, mc := range cases {
		for _, method := range []string{"gpipe", "1f1b", "chimera"} {
			for _, w := range []int{1, 2} {
				t.Run(fmt.Sprintf("%s/%s/W%d", mc.name, method, w), func(t *testing.T) {
					stages, micro, blocks := 2, 4/w, 2
					if method == "chimera" {
						stages, micro, blocks = 4, 4, 4
					}
					batches := mc.batches(t, 4, 2*micro*w)
					cfg := Config{
						Method: method, Stages: stages, MicroBatches: micro,
						Replicas: w, InversionParallel: w > 1, RefreshSteps: 2,
						OverlapRounds: true,
					}

					mRef, err := mc.make(blocks)
					if err != nil {
						t.Fatal(err)
					}
					runRounds(t, mRef, batches, cfg, 2)

					mSwap, err := mc.make(blocks)
					if err != nil {
						t.Fatal(err)
					}
					e := newSwapEngine(t, mSwap, cfg, 2)
					if _, err := e.TrainRound(batches[:2]); err != nil {
						t.Fatal(err)
					}
					if err := e.Reconfigure(SwapConfig{
						Overlap:           true,
						InversionParallel: cfg.InversionParallel,
					}); err != nil {
						t.Fatalf("same-config swap failed: %v", err)
					}
					if e.refreshPending {
						t.Fatal("same-config swap forced a refresh")
					}
					if _, err := e.TrainRound(batches[2:]); err != nil {
						t.Fatal(err)
					}
					requireParamsBitEqual(t, mSwap.Params(), mRef.Params(), "same-config swap vs no swap")
				})
			}
		}
	}
}

// A swap that changes the schedule shape must discard in-flight refresh
// state (the pools and carried generations belong to the old schedule's
// carry structure) and force a full refresh, while parameters, optimizer
// state and counters survive and training continues.
func TestReconfigureChangedSwapForcesRefresh(t *testing.T) {
	m, err := bert.New(bert.TinyConfig(), 123)
	if err != nil {
		t.Fatal(err)
	}
	batches := bertBatches(t, 6, 8)
	cfg := Config{Method: "1f1b", Stages: 2, MicroBatches: 4, RefreshSteps: 2, OverlapRounds: true}
	e := newSwapEngine(t, m, cfg, 2)
	if _, err := e.TrainRound(batches[:2]); err != nil {
		t.Fatal(err)
	}
	if err := e.Reconfigure(SwapConfig{RefreshSteps: 1}); err != nil {
		t.Fatal(err)
	}
	if e.RoundSteps() != 1 {
		t.Fatalf("RoundSteps = %d after swap to K=1", e.RoundSteps())
	}
	if !e.refreshPending {
		t.Fatal("changed swap did not force a refresh")
	}
	if e.carryPending() {
		t.Fatal("changed swap kept carried generations of the old schedule")
	}
	// The cadence rounds up to a multiple of the new K and the engine
	// keeps training.
	if re := e.RefreshEvery(); re%e.RoundSteps() != 0 {
		t.Fatalf("refresh cadence %d not a multiple of K=%d", re, e.RoundSteps())
	}
	for i := 2; i < len(batches); i++ {
		if _, err := e.TrainRound(batches[i : i+1]); err != nil {
			t.Fatalf("round after swap failed: %v", err)
		}
	}
}

// Invalid swaps are errors and leave the engine unchanged and running.
func TestReconfigureInvalidLeavesEngineIntact(t *testing.T) {
	m, err := bert.New(bert.TinyConfig(), 123)
	if err != nil {
		t.Fatal(err)
	}
	batches := bertBatches(t, 4, 8)
	cfg := Config{Method: "1f1b", Stages: 2, MicroBatches: 4, RefreshSteps: 2}
	e := newSwapEngine(t, m, cfg, 2)
	if _, err := e.TrainRound(batches[:2]); err != nil {
		t.Fatal(err)
	}
	for name, sc := range map[string]SwapConfig{
		"negative K":            {RefreshSteps: -1},
		"carry without overlap": {CarryDepth: 3},
		"unknown method":        {Method: "bogus"},
	} {
		if err := e.Reconfigure(sc); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	if e.Method() != "1f1b" || e.RoundSteps() != 2 {
		t.Fatalf("failed swap mutated the engine: %s K=%d", e.Method(), e.RoundSteps())
	}
	if _, err := e.TrainRound(batches[2:]); err != nil {
		t.Fatalf("engine broken after rejected swaps: %v", err)
	}
}

// A round that aborts right after a swap rolls back through the round
// checkpoint: restore rewinds to the round boundary the swap happened at,
// and the replay — running the new schedule — lands bit-identical to a
// fault-free run that swapped at the same boundary.
func TestReconfigureAbortedRoundRollsBack(t *testing.T) {
	batches := bertBatches(t, 4, 8)
	swap := SwapConfig{Overlap: true} // serialized -> overlapped at the boundary

	mRef, err := bert.New(bert.TinyConfig(), 123)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Method: "1f1b", Stages: 2, MicroBatches: 4, RefreshSteps: 2, Checkpoint: true}
	ref := newSwapEngine(t, mRef, cfg, 2)
	if _, err := ref.TrainRound(batches[:2]); err != nil {
		t.Fatal(err)
	}
	if err := ref.Reconfigure(swap); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.TrainRound(batches[2:]); err != nil {
		t.Fatal(err)
	}

	mF, err := bert.New(bert.TinyConfig(), 123)
	if err != nil {
		t.Fatal(err)
	}
	fcfg := cfg
	// Absolute step 3 is the post-swap round's second step: the swapped
	// schedule runs, commits its first step, then aborts mid-round.
	fcfg.FaultPlan = mustParsePlan(t, "fail:step=3,op=backward,count=1")
	e := newSwapEngine(t, mF, fcfg, 2)
	if _, err := e.TrainRound(batches[:2]); err != nil {
		t.Fatal(err)
	}
	if err := e.Reconfigure(swap); err != nil {
		t.Fatal(err)
	}
	if _, err := e.TrainRound(batches[2:]); err == nil {
		t.Fatal("injected abort did not surface")
	}
	replayFrom, err := e.RestoreCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if replayFrom != 2 {
		t.Fatalf("restore rewound to step %d, want 2 (the swap boundary)", replayFrom)
	}
	if _, err := e.TrainRound(batches[2:]); err != nil {
		t.Fatalf("replay failed: %v", err)
	}
	requireParamsBitEqual(t, mF.Params(), mRef.Params(), "aborted swap round replay vs fault-free swap")
}

// Deep carry end to end: with a cost model that starves the carried
// generation's curvature, CarryDepth 3 produces generation-2 ops, the
// engine sizes its pool set and carry queue for them, trains through
// several refresh rounds, and drains carried generations without leaking.
func TestEngineDeepCarryTrains(t *testing.T) {
	m, err := bert.New(bert.TinyConfig(), 123)
	if err != nil {
		t.Fatal(err)
	}
	batches := bertBatches(t, 8, 8)
	cfg := Config{
		Method: "1f1b", Stages: 2, MicroBatches: 4, RefreshSteps: 1,
		OverlapRounds: true, CarryDepth: 3,
	}
	e := newSwapEngine(t, m, cfg, 1)
	costs := e.ModeledCosts()
	costs.CurvaturePerMicroBatch = 0
	for i := range costs.CurvatureUnits {
		costs.CurvatureUnits[i] *= 40
		costs.CurvaturePerMicroBatch += costs.CurvatureUnits[i]
		costs.InversionUnits[i] *= 10
	}
	if err := e.SetCostModel(&costs); err != nil {
		t.Fatal(err)
	}
	maxGen := 0
	for _, op := range e.Schedule().Ops {
		if op.Generation > maxGen {
			maxGen = op.Generation
		}
	}
	if maxGen != 2 {
		t.Fatalf("max generation = %d, want 2 (deep carry engaged)", maxGen)
	}
	if e.maxCarryGen != 2 || len(e.carryQ) != 2 || len(e.kfacPools) < 3 {
		t.Fatalf("carry bookkeeping wrong: maxCarryGen=%d len(carryQ)=%d pools=%d",
			e.maxCarryGen, len(e.carryQ), len(e.kfacPools))
	}
	var sawCarry bool
	for i := range batches {
		res, err := e.TrainRound(batches[i : i+1])
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		for _, r := range res {
			if r.Loss.Total != r.Loss.Total {
				t.Fatalf("round %d: loss went NaN", i)
			}
		}
		if e.carryPending() {
			sawCarry = true
		}
	}
	if !sawCarry {
		t.Fatal("no generation was ever carried across rounds")
	}
	for _, p := range m.Params() {
		if v := p.Value.MaxAbs(); v != v {
			t.Fatalf("parameter %s went NaN under deep carry", p.Name)
		}
	}
}

// The swap surface rejects front-load/overlap contradictions through the
// normalize path with a readable error.
func TestReconfigureErrorText(t *testing.T) {
	m, err := bert.New(bert.TinyConfig(), 123)
	if err != nil {
		t.Fatal(err)
	}
	e := newSwapEngine(t, m, Config{Method: "1f1b", Stages: 2, MicroBatches: 4, RefreshSteps: 1}, 1)
	if err := e.Reconfigure(SwapConfig{Overlap: true, CarryDepth: 1}); err == nil ||
		!strings.Contains(err.Error(), "CarryDepth") {
		t.Fatalf("CarryDepth 1 not rejected usefully: %v", err)
	}
}
