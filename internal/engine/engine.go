// Package engine executes real pipeline-parallel training of any stageable
// model (pipemodel.Model — implemented by both internal/bert and
// internal/gpt) under a schedule-driven executor: the same executable
// op-list form that internal/pipeline's builders and internal/schedule's
// PipeFisher assignment produce for the timing simulator is *executed for
// real* here. Each device runs as its own goroutine walking its per-device
// op order; op dependency edges are realized as completion signals,
// micro-batch activations and error signals flow between stages exactly
// along the Forward/Backward edges (the P2P sends/recvs of Figure 2(iii)),
// backward uses activation recomputation (the paper's "R" configuration),
// and — with K-FAC enabled — the curvature and inversion work runs in the
// very slots the PipeFisher packer placed it: inside the pipeline bubbles
// (§3.1), with per-stage factor storage (§3(i)) and factor-granular
// inversion parallelism (§3(ii)).
//
// # Data parallelism
//
// With Config.Replicas = W > 1 the engine executes the paper's hybrid
// configuration — pipeline stages × data-parallel replicas — on a
// (replica, stage) device topology: replica r holds its own full copy of
// the model's parameters (pipemodel.Model.Replicate; re-broadcast from the
// primary at every step), processes its own MicroBatches micro-batches of
// the step's batch, and joins the per-stage SyncGrad/SyncCurvature
// collectives. The collectives are realized in-process (collective.go)
// with a fixed reduction order at micro-batch granularity: every backward
// snapshots its micro-batch's gradient contribution into pooled buffers,
// and the stage's SyncGrad folds the contributions into the primary
// replica's accumulators in ascending global micro-batch order. Because
// that order depends on neither the schedule, the replica count, nor the
// worker count, gradients are bit-identical across all of them. K-FAC
// curvature partials are indexed the same way, so factors — and therefore
// inverses and preconditioned gradients — inherit the guarantee, and
// InversionParallel shards each stage's inversion units round-robin across
// the stage's replica group (each replica inverts its shard; the shared
// per-stage preconditioner makes the broadcast implicit).
//
// Because the simulator and this executor share one schedule
// representation, any schedule the simulator can lay out — GPipe, 1F1B,
// Chimera, their data-parallel W > 1 forms, or their PipeFisher-augmented
// forms — trains for real, and a step's executed timeline (LastTimeline)
// can be rendered side by side with the simulated one.
package engine

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/data"
	"repro/internal/faults"
	"repro/internal/hardware"
	"repro/internal/kfac"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/pipemodel"
	"repro/internal/schedule"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// AdaptiveRefreshSteps, assigned to Config.RefreshSteps, asks the engine to
// derive the round length K at EnableKFAC time from measured work — the
// number of pipeline steps one refresh actually needs under the PipeFisher
// packing rules (schedule.AdaptiveRoundLength) — instead of requiring a
// hand-picked value. Until K-FAC is enabled the engine runs one-step
// rounds; query RoundSteps after EnableKFAC for the chosen K.
const AdaptiveRefreshSteps = -1

// Config selects the pipeline schedule the engine executes.
type Config struct {
	// Method is the schedule family: "gpipe" (default), "1f1b", "chimera".
	Method string
	// Stages is the pipeline depth; the model's blocks are partitioned into
	// this many contiguous stages (embedding on stage 0, head on the last).
	Stages int
	// MicroBatches is the number of micro-batches per replica per training
	// step; one step consumes Replicas*MicroBatches micro-batches.
	MicroBatches int
	// Replicas is the data-parallel width W (0 or 1 disables data
	// parallelism). Each replica beyond the first is an independent copy
	// of the model (built via pipemodel.Model.Replicate) whose parameters
	// are re-broadcast from the primary at every step and whose gradient
	// contributions join the per-stage SyncGrad collective.
	Replicas int
	// Transport is the collective group every reduction routes through
	// (nil = the in-process transport.Loopback). A multi-rank group — e.g.
	// a transport.Ring over sockets — extends data parallelism across
	// processes: the global width is group size x Replicas, every rank
	// receives the full global batch and trains its contiguous slice of
	// each step's micro-batches, and gradients / K-FAC factors / losses
	// fold across ranks in the same fixed ascending-global-micro order as
	// in-process, so results stay bit-identical to a single-process run of
	// the same global width. All ranks must build identical models and
	// engines (verified by a shape handshake at construction) and feed
	// identical batches.
	Transport transport.Group
	// ShardParams enables ZeRO-style parameter sharding across the
	// in-process replica axis: each secondary replica keeps resident only
	// the contiguous-stage parameters it owns (greedy 1/W split by size)
	// and gathers the rest from the primary on use — at forward/backward
	// entry of each stage, released when the op exits — cutting a
	// secondary replica's resident parameter bytes by roughly (W-1)/W.
	// The primary replica stays full: it is the gather source, the
	// optimizer's target, and the checkpoint subject, so the training
	// math (and its bit-identity guarantees) is unchanged. Requires
	// Replicas >= 2.
	ShardParams bool
	// InversionParallel shards each stage's K-FAC inversion units
	// round-robin across the stage's device group — the replica group for
	// gpipe/1f1b, the bidirectional pairs for chimera — instead of every
	// replica duplicating the whole stage's inversions.
	InversionParallel bool
	// RefreshSteps is the round length K: the executable schedule spans K
	// consecutive pipeline steps and — with K-FAC enabled — one
	// curvature/inversion refresh is packed into the bubbles of the whole
	// K-step window (the paper's multi-step refresh rounds). The engine
	// executes rounds atomically: TrainRound consumes K batches, fires the
	// optimizer callback (SetOptimizer) once per step at the round-internal
	// step barriers, and each step preconditions with the freshest inverses
	// completed by that step. 0 or 1 is the degenerate one-step round
	// (TrainStep's historical behavior); AdaptiveRefreshSteps derives K from
	// the measured refresh work at EnableKFAC time.
	RefreshSteps int
	// OverlapRounds lets consecutive refresh windows overlap: refresh work
	// that does not fit its own window's bubbles is *carried* into the next
	// round's early bubbles as generation-lagged ops (schedule.Config.
	// Overlap) instead of serializing before the window's tail. The engine
	// executes carried ops against double-buffered, generation-tagged
	// statistics pools, so a new window's snapshots never clobber factors
	// of the previous generation still being folded or inverted; each
	// step's precondition keeps the §3.1 freshest-completed rule across the
	// window boundary. When the refresh fits its window, overlapped
	// execution is bit-identical to serialized rounds. Incompatible with
	// FrontLoadRefresh.
	OverlapRounds bool
	// CarryDepth bounds how many consecutive rounds one refresh may
	// pipeline across under OverlapRounds (schedule.Config.CarryDepth):
	// generation-lagged ops run up to CarryDepth-1 rounds after their
	// statistics were collected, against a queue of generation-tagged
	// pools. 0 defaults to 2 (the classic overlap: own round plus one
	// carried round); deeper values keep refreshes larger than two
	// windows' bubbles pipelined instead of serializing the spill before
	// the round's tail. Ignored without OverlapRounds.
	CarryDepth int
	// FrontLoadRefresh pins the refresh work of a RefreshSteps > 1 round to
	// the window's first step instead of spreading it across the window's
	// bubbles: the skip-cadence semantics expressed as a round, bit-identical
	// to a RefreshSteps = 1 engine at the same refresh interval (the
	// round-vs-skip identity tests run on this). The default spreads the
	// refresh across the whole window — the paper's multi-step schedule
	// shape — with each step preconditioning on the freshest completed
	// inverses.
	FrontLoadRefresh bool
	// Workers is the intra-op kernel worker budget shared by all device
	// goroutines (0 = tensor.Parallelism(); values above the pool size
	// are capped at it, since the pool is all kernels can recruit). Each
	// device's kernels are capped to a fair share, Workers / devices, so
	// concurrent stages split the cores instead of each oversubscribing
	// the whole pool. The budget is re-resolved against the pool at every
	// TrainStep and recorded in the executed Timeline.
	Workers int
	// FaultPlan, when non-nil, injects the plan's deterministic faults —
	// op failures, stalls, collective drops, NaN corruption — at their
	// named (step, device, op-kind) points (package faults). The whole
	// fault/resilience layer is bypassed when FaultPlan is nil and
	// OpTimeout/OpRetries are zero: the executor takes the exact pre-fault
	// code path, with no extra allocations or per-op overhead.
	FaultPlan *faults.Plan
	// OpTimeout, when positive, arms a watchdog over every executing op: an
	// op that has not completed within the deadline is treated as a hung
	// device and the round aborts with an error naming the stalled device
	// and op. The watchdog converts silent hangs into attributed failures;
	// it cannot preempt a genuinely stuck kernel (goroutines are not
	// killable), so the round's join still waits for the op to return —
	// injected stalls are abort-aware and return promptly.
	OpTimeout time.Duration
	// OpRetries bounds retry-with-backoff for transient failures of
	// side-path ops — curvature capture, inversion, sync-curvature: work
	// whose failure the K-FAC staleness discipline (§3.1) can absorb. A
	// side-path op is retried up to OpRetries times before the round
	// degrades (stale inverses, then unpreconditioned SGD). Base-path ops
	// (forward, backward, gradient collectives, optimizer steps) never
	// retry: their failure aborts the round.
	OpRetries int
	// RetryBackoff is the base delay between retry attempts, doubled per
	// attempt (0 = immediate retry). The backoff sleep is abort-aware.
	RetryBackoff time.Duration
	// Checkpoint enables round checkpoint/replay: TrainRound snapshots
	// parameters, gradient accumulators, attached optimizer state
	// (AttachOptimizerState), and the K-FAC refresh phase at every round
	// start — equivalently, at the previous round's commit — into retained
	// buffers (zero steady-state allocations). After an aborted round,
	// RestoreCheckpoint rewinds to that snapshot so replaying the same
	// batches reproduces the fault-free run bit-identically.
	Checkpoint bool
}

func (c Config) normalize() (Config, error) {
	if c.Method == "" {
		c.Method = "gpipe"
	}
	switch c.Method {
	case "gpipe", "1f1b", "chimera":
	default:
		return c, fmt.Errorf("engine: unknown method %q (want gpipe, 1f1b or chimera)", c.Method)
	}
	if c.Stages <= 0 {
		return c, fmt.Errorf("engine: Stages must be positive, got %d", c.Stages)
	}
	if c.MicroBatches <= 0 {
		return c, fmt.Errorf("engine: MicroBatches must be positive, got %d", c.MicroBatches)
	}
	if c.Replicas < 0 {
		return c, fmt.Errorf("engine: Replicas must be non-negative, got %d", c.Replicas)
	}
	if c.Replicas == 0 {
		c.Replicas = 1
	}
	if c.ShardParams && c.Replicas < 2 {
		return c, fmt.Errorf("engine: ShardParams shards across the replica axis and needs Replicas >= 2, got %d", c.Replicas)
	}
	if c.Workers < 0 {
		return c, fmt.Errorf("engine: Workers must be non-negative, got %d", c.Workers)
	}
	if c.RefreshSteps < 0 && c.RefreshSteps != AdaptiveRefreshSteps {
		return c, fmt.Errorf("engine: RefreshSteps must be non-negative or AdaptiveRefreshSteps, got %d", c.RefreshSteps)
	}
	if c.RefreshSteps == 0 {
		c.RefreshSteps = 1
	}
	if c.OverlapRounds && c.FrontLoadRefresh {
		return c, fmt.Errorf("engine: OverlapRounds and FrontLoadRefresh are mutually exclusive")
	}
	if c.CarryDepth < 0 {
		return c, fmt.Errorf("engine: CarryDepth must be non-negative, got %d", c.CarryDepth)
	}
	if c.CarryDepth == 1 {
		return c, fmt.Errorf("engine: CarryDepth 1 means no carry — use OverlapRounds=false, or CarryDepth >= 2")
	}
	if c.CarryDepth > 1 && !c.OverlapRounds {
		return c, fmt.Errorf("engine: CarryDepth needs OverlapRounds")
	}
	if c.OpTimeout < 0 {
		return c, fmt.Errorf("engine: OpTimeout must be non-negative, got %v", c.OpTimeout)
	}
	if c.OpRetries < 0 {
		return c, fmt.Errorf("engine: OpRetries must be non-negative, got %d", c.OpRetries)
	}
	if c.RetryBackoff < 0 {
		return c, fmt.Errorf("engine: RetryBackoff must be non-negative, got %v", c.RetryBackoff)
	}
	if c.Method == "chimera" {
		if c.Stages%2 != 0 {
			return c, fmt.Errorf("engine: chimera requires an even number of stages, got %d", c.Stages)
		}
		if c.MicroBatches%2 != 0 {
			return c, fmt.Errorf("engine: chimera requires an even number of micro-batches, got %d", c.MicroBatches)
		}
	}
	return c, nil
}

// replica is one data-parallel copy of the model, partitioned into stages.
// Replica 0 wraps the caller's model (the primary — the copy the caller's
// optimizer updates); the others are engine-owned clones.
type replica struct {
	model  pipemodel.Model
	stages []*stage
	// params caches model.Params() in the model's canonical order, for the
	// per-step parameter broadcast.
	params []*nn.Param
	// stageParams[s] lists the parameters stage s's ops touch — embedding
	// params first (stage 0 only), then the stage's block params, then
	// head params (last stage only) — in an order shared by all replicas,
	// so per-micro-batch gradient deltas align across the group.
	stageParams [][]*nn.Param
}

// Engine drives pipeline-parallel training steps of a stageable model.
type Engine struct {
	cfg  Config
	reps []*replica
	// stageMu[r][s] serializes all access to replica r's stage-s modules.
	// For gpipe/1f1b each (replica, stage) belongs to exactly one device
	// goroutine; for Chimera two devices (one per pipeline direction)
	// share each replica's stage parameters, and the lock is what stands
	// in for the per-direction weights sharing of the real system.
	stageMu [][]sync.Mutex
	// layerMu[s][li] guards the primary preconditioner's per-layer factor
	// state — the curvature fold (SetFactors) and inversion refreshes — so
	// different devices of a stage's replica group can invert different
	// layers concurrently under InversionParallel.
	layerMu [][]sync.Mutex

	// group is the collective transport every reduction routes through:
	// Config.Transport, or the zero-cost in-process Loopback when none was
	// configured (collective.go). multiRank caches group.Size() > 1 — the
	// flag that turns on the cross-rank batch slicing, the per-step loss
	// collective, and the initial parameter broadcast.
	group     transport.Group
	multiRank bool
	// foldScratch[s] is the reusable part-view slice of stage s's gradient
	// collective (one slot per local micro-batch of a step) and
	// foldNames[s][k] the precomputed collective name of the stage's k-th
	// parameter — preallocated so the loopback steady state allocates
	// nothing. Safe per stage: one stage's gradient folds are serialized
	// by the step-commit barriers, and concurrent folds (chimera's mirror
	// stage, different stages) use different slots.
	foldScratch [][][]float64
	foldNames   [][]string
	// kfacFold[s][li] is the factor collective's reusable scratch
	// (collective.go), allocated at EnableKFAC. A-then-B folds of one
	// layer run sequentially under layerMu[s][li] and share the scratch.
	kfacFold [][]*kfacFoldScratch
	// shard is the ZeRO-style parameter-sharding state (shard.go), nil
	// unless Config.ShardParams.
	shard *shardState

	sched *pipeline.Schedule

	// workers is the resolved intra-op kernel worker budget and opShare
	// each device goroutine's per-kernel cap (workers / devices, min 1) —
	// fair sharing of the tensor worker pool across concurrent stages.
	workers int
	opShare int

	// roundLen is the resolved round length K: Config.RefreshSteps, or —
	// with AdaptiveRefreshSteps — the measured refresh window derived at
	// EnableKFAC time (1 until then).
	roundLen int

	kfacPre      []*kfac.Preconditioner // per stage, nil until EnableKFAC
	kfacOpts     kfac.Options
	refreshEvery int
	stepIndex    int // completed (committed) training steps
	roundIndex   int // rounds with at least one committed step: the refresh cadence counter
	// refreshPending is set when a refresh round aborts mid-window: some
	// layers may have folded fresh factors or swapped inverses while
	// others kept the previous generation, so the next round re-runs the
	// refresh instead of preconditioning on mixed-generation state until
	// the cadence comes around again.
	refreshPending bool

	// kfacPools buffers the statistics generations of the refresh pipeline
	// (allocated at EnableKFAC, maxCarryGen+1 pools, minimum two): a
	// collect round writes pool kfacGen%len(kfacPools) while carried ops
	// of older generations — overlapped rounds only — drain the others.
	// carryQ is the pending-generation queue: slot i points at the pool of
	// the generation collected i+1 rounds ago whose carried ops have not
	// all executed yet (nil when that round did not collect, or carried
	// nothing). Its length is maxCarryGen, the deepest Op.Generation in
	// the executable schedule (0 when the schedule carries nothing): a
	// pool retires — is scrubbed and becomes reusable — after its deepest
	// lag has run.
	kfacPools   []*kfacGenPool
	carryQ      []*kfacGenPool
	kfacGen     int
	maxCarryGen int

	// costModel, when set (SetCostModel / Reconfigure with fitted costs),
	// replaces the static execCosts shape the schedule builders pack with:
	// the auto-tuner feeds measured per-kind durations back so the packer
	// lays bubbles out against the hardware's real proportions. Execution
	// follows the resulting order only, so swapping cost models never
	// changes the math.
	costModel *pipeline.StageCosts

	// optApply, when set (SetOptimizer), is the caller's parameter update,
	// fired exactly once per training step at the round-internal step
	// barrier (after the step's gradients are fully reduced and
	// preconditioned, before any next-step op starts). Required for
	// RefreshSteps > 1; optional for one-step rounds, where the caller may
	// instead apply the optimizer between TrainStep calls as before.
	optApply func(step int) error

	lastTimeline *pipeline.Timeline

	// failOp, when set (tests only), is consulted before every op; a
	// non-nil return aborts the step as if the op itself had failed.
	failOp func(op *pipeline.Op) error

	// inj evaluates Config.FaultPlan at every op when non-nil; the
	// resilience layer (resilience.go) is active only when inj is set or
	// OpTimeout/OpRetries are configured.
	inj *faults.Injector
	// memberView counts the elastic membership changes this engine has lived
	// through (0 until the first Reconnect); executed timeline events are
	// stamped with it, and memberChanged marks the first round after a
	// change so its timeline carries a Membership marker span (elastic.go).
	memberView    int
	memberChanged bool
	// killHook, when set (SetKillHook), fires when the fault injector
	// delivers a Kill outcome on this rank — before the op's failure aborts
	// the round. The CLI exits the process here; tests sever the transport.
	killHook func()
	// optState is the optimizer state attached via AttachOptimizerState,
	// snapshotted and restored by the round checkpoint.
	optState OptimizerState
	// ckpt is the retained round checkpoint (checkpoint.go); its buffers
	// are reused across saves so steady-state checkpointing allocates
	// nothing.
	ckpt roundCheckpoint
}

// New partitions the model's blocks into nStages contiguous stages and
// prepares a GPipe schedule — the legacy constructor, equivalent to
// NewWithConfig with Method "gpipe".
func New(model pipemodel.Model, nStages, microBatches int) (*Engine, error) {
	return NewWithConfig(model, Config{Stages: nStages, MicroBatches: microBatches})
}

// NewWithConfig builds an engine executing the configured schedule. The
// number of blocks must be divisible by the stage count, and each
// TrainStep's batch size must be divisible by Replicas*MicroBatches.
func NewWithConfig(model pipemodel.Model, cfg Config) (*Engine, error) {
	if model == nil {
		return nil, fmt.Errorf("engine: nil model")
	}
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if len(model.PipelineBlocks()) == 0 {
		return nil, fmt.Errorf("engine: model has no pipeline blocks")
	}
	e := &Engine{cfg: cfg, roundLen: cfg.RefreshSteps}
	if cfg.RefreshSteps == AdaptiveRefreshSteps {
		e.roundLen = 1 // resolved from measured work at EnableKFAC
	}
	prim, err := buildReplica(model, cfg)
	if err != nil {
		return nil, err
	}
	e.reps = append(e.reps, prim)
	for r := 1; r < cfg.Replicas; r++ {
		clone, err := model.Replicate()
		if err != nil {
			return nil, fmt.Errorf("engine: replicating model for replica %d: %w", r, err)
		}
		rep, err := buildReplica(clone, cfg)
		if err != nil {
			return nil, fmt.Errorf("engine: replica %d: %w", r, err)
		}
		if len(rep.params) != len(prim.params) {
			return nil, fmt.Errorf("engine: replica %d has %d params, primary has %d (Replicate must preserve structure)",
				r, len(rep.params), len(prim.params))
		}
		e.reps = append(e.reps, rep)
	}
	e.stageMu = make([][]sync.Mutex, cfg.Replicas)
	for r := range e.stageMu {
		e.stageMu[r] = make([]sync.Mutex, cfg.Stages)
	}
	e.initCollectives()
	// The fault plan is projected onto this member's transport rank, so a
	// rank-targeted fault (kill:rank=2) costs every other rank nothing —
	// their injector stays nil and the fault-free fast path stays intact.
	e.inj = faults.NewInjector(cfg.FaultPlan.ForRank(e.group.Rank()))
	if e.multiRank {
		if err := e.syncInitialParams(); err != nil {
			return nil, err
		}
	}
	if cfg.ShardParams {
		e.initShards()
	}
	if err := e.rebuildSchedule(); err != nil {
		return nil, err
	}
	return e, nil
}

// buildReplica partitions one model copy into stages and derives the
// per-stage parameter lists the gradient collective reduces over.
func buildReplica(model pipemodel.Model, cfg Config) (*replica, error) {
	blocks := model.PipelineBlocks()
	if len(blocks)%cfg.Stages != 0 {
		return nil, fmt.Errorf("engine: %d blocks not divisible by %d stages", len(blocks), cfg.Stages)
	}
	rep := &replica{model: model, params: model.Params()}
	per := len(blocks) / cfg.Stages
	for s := 0; s < cfg.Stages; s++ {
		st := &stage{
			index:  s,
			first:  s == 0,
			last:   s == cfg.Stages-1,
			blocks: blocks[s*per : (s+1)*per],
		}
		for _, b := range st.blocks {
			st.layers = append(st.layers, b.DenseLayers()...)
		}
		rep.stages = append(rep.stages, st)

		var params []*nn.Param
		if st.first {
			params = append(params, model.EmbedParams()...)
		}
		for _, b := range st.blocks {
			params = append(params, b.Params()...)
		}
		if st.last {
			params = append(params, model.HeadParams()...)
		}
		rep.stageParams = append(rep.stageParams, params)
	}
	return rep, nil
}

// rebuildSchedule derives the executable round schedule for the current
// configuration — RefreshSteps consecutive steps, one step being the
// degenerate round: the plain pipeline (with its per-step optimizer tail —
// the anchor ops for the gradient collective and the step-commit barrier)
// when K-FAC is off, the PipeFisher-packed form — one refresh spread over
// the whole window's bubbles — when it is on. The schedule is validated by
// running it through the timing simulator, which proves the per-device
// orders and dependency edges cannot deadlock the executor.
func (e *Engine) rebuildSchedule() error {
	costs := e.execCosts()
	var sched *pipeline.Schedule
	var err error
	if e.kfacPre != nil {
		sched, err = schedule.Executable(schedule.Config{
			Method:            e.cfg.Method,
			Stages:            e.cfg.Stages,
			MicroBatches:      e.cfg.MicroBatches,
			Costs:             costs,
			DataParallelWidth: e.cfg.Replicas,
			InversionParallel: e.cfg.InversionParallel,
			RefreshSteps:      e.roundLen,
			FrontLoadRefresh:  e.cfg.FrontLoadRefresh,
			Overlap:           e.cfg.OverlapRounds,
			CarryDepth:        e.cfg.CarryDepth,
		})
	} else {
		bc := pipeline.BuildConfig{
			Stages:               e.cfg.Stages,
			MicroBatches:         e.cfg.MicroBatches,
			Steps:                e.roundLen,
			Costs:                costs,
			DataParallelWidth:    e.cfg.Replicas,
			IncludeOptimizerWork: true,
		}
		switch e.cfg.Method {
		case "gpipe":
			sched, err = pipeline.BuildGPipe(bc)
		case "1f1b":
			sched, err = pipeline.Build1F1B(bc)
		case "chimera":
			sched, err = pipeline.BuildChimera(bc)
		}
	}
	if err != nil {
		return err
	}
	if _, err := pipeline.Run(sched); err != nil {
		return fmt.Errorf("engine: schedule not executable: %w", err)
	}
	if e.kfacPre != nil {
		// The degradation ladder treats a failed refresh op as a success
		// (stale inverses serve instead); that is only sound when no
		// base-path op consumes a refresh op's output. Prove it per
		// schedule, once, here.
		if err := schedule.ValidateDegradedSafety(sched); err != nil {
			return fmt.Errorf("engine: %w", err)
		}
	}
	e.sched = sched
	return nil
}

// resolveParallelism fixes the step's intra-op budget against the worker
// pool as it is sized right now: the configured Workers (capped at the
// pool, which is all the kernels can actually recruit — the recorded
// Timeline values must reflect reality), split evenly across the device
// goroutines so no device oversubscribes the shared pool.
func (e *Engine) resolveParallelism() {
	w := e.cfg.Workers
	if p := tensor.Parallelism(); w == 0 || w > p {
		w = p
	}
	e.workers = w
	e.opShare = w / e.sched.Devices
	if e.opShare < 1 {
		e.opShare = 1
	}
}

// execCosts supplies the relative work durations the builders and the
// PipeFisher packer need to lay out op orders. Real execution follows the
// resulting *order*, not the modeled times, so only the proportions matter;
// these mirror the profiled shape of the paper's workloads (backward ≈ 2×
// forward, curvature and inversion each well under a bubble, collectives
// comparable to a forward).
func (e *Engine) execCosts() pipeline.StageCosts {
	if e.costModel != nil {
		return *e.costModel
	}
	nFactors := 2 * len(e.reps[0].stages[0].layers)
	c := pipeline.StageCosts{
		Forward:      100,
		Backward:     200,
		Precondition: 25,
		OptStep:      10,
	}
	if e.cfg.Replicas > 1 {
		c.SyncGrad = 60
		if e.multiRank {
			// Cross-rank gradient folds go over a wire: model the widest
			// stage's all-reduce with the chunked-chain cost (floored at the
			// in-process estimate) so the packer sees the real proportions.
			var maxFloats int
			for _, params := range e.reps[0].stageParams {
				var n int
				for _, p := range params {
					n += p.NumElements()
				}
				if n > maxFloats {
					maxFloats = n
				}
			}
			chunks := (maxFloats + transport.DefaultChunkFloats - 1) / transport.DefaultChunkFloats
			if t := hardware.ChainAllReduceCost(int64(maxFloats)*8, e.group.Size(), chunks, hardware.DefaultInterconnect); t > c.SyncGrad {
				c.SyncGrad = t
			}
		}
	}
	if e.cfg.Replicas > 1 || e.cfg.InversionParallel {
		c.SyncCurvature = 20
	}
	for i := 0; i < nFactors; i++ {
		c.CurvatureUnits = append(c.CurvatureUnits, 6)
		c.CurvaturePerMicroBatch += 6
		c.InversionUnits = append(c.InversionUnits, 10)
	}
	return c
}

// Stages returns the number of pipeline stages.
func (e *Engine) Stages() int { return e.cfg.Stages }

// RoundSteps returns the round length K (the number of training steps one
// TrainRound executes): Config.RefreshSteps, or — under AdaptiveRefreshSteps
// — the measured window derived at EnableKFAC time (1 before K-FAC is
// enabled).
func (e *Engine) RoundSteps() int { return e.roundLen }

// SetOptimizer registers the caller's parameter update, fired exactly once
// per training step at the round-internal step barrier: all of the step's
// gradient collectives and preconditions have completed, no op of the next
// step has started, and every other device goroutine is parked — the
// callback has exclusive access to the primary's parameters (the engine
// re-broadcasts them to the replicas afterwards). The argument is the
// global step index. The engine zeroes the primary's gradient accumulators
// after the callback returns, exactly like the manual
// ZeroGrads-TrainStep-Step loop the callback replaces. Required before
// TrainRound on engines with RefreshSteps > 1.
//
// The callback must be atomic: either update every parameter or return an
// error having touched none. A callback that errors out half way leaves
// the model in a state the engine cannot roll back (the step is counted
// uncommitted, but parameter writes are the caller's); optimizers whose
// failure mode is detected mid-loop should validate first, then apply.
func (e *Engine) SetOptimizer(apply func(step int) error) { e.optApply = apply }

// Replicas returns the data-parallel width W.
func (e *Engine) Replicas() int { return e.cfg.Replicas }

// Method returns the schedule family the engine executes.
func (e *Engine) Method() string { return e.cfg.Method }

// Schedule exposes the executable schedule (op lists + per-device orders)
// the engine walks each step.
func (e *Engine) Schedule() *pipeline.Schedule { return e.sched }

// StageLayers returns the K-FAC-eligible dense layers of one stage (the
// primary replica's copy — the one the preconditioners are attached to).
func (e *Engine) StageLayers(s int) []*nn.Dense { return e.reps[0].stages[s].layers }

// LastTimeline returns the executed timeline of the most recent round
// (wall-clock microseconds, one event per executed op with its step index,
// per-step boundaries in StepEnd, recomputation shown separately), or nil
// before the first step. Render it with the trace package next to a
// simulated timeline of the same schedule to compare real execution
// against the model.
func (e *Engine) LastTimeline() *pipeline.Timeline { return e.lastTimeline }

// EnableKFAC attaches one K-FAC preconditioner per stage, covering exactly
// that stage's fully-connected layers — PipeFisher's memory layout: "each
// accelerator only needs to store the ... curvature matrices for the
// layers in the assigned pipeline stage" (§3(i)) — and switches the
// executable schedule to the PipeFisher-packed form: curvature and
// inversion ops placed in the pipeline bubbles, a precondition op per stage
// at the end of each step. Curvature/inversion ops execute every
// refreshEvery steps (1 = every step); preconditioning runs every step with
// the (possibly stale) cached inverses, exactly the staleness discipline of
// §3.1. The preconditioners attach to the primary replica's layers;
// replicas contribute curvature statistics from their own micro-batches
// and — under InversionParallel — invert their round-robin shard of each
// stage's factors.
// With Config.RefreshSteps = K > 1 the refresh work is not skipped but
// *spread*: the executable schedule spans K steps and one refresh packs
// into the bubbles of the whole window, so refreshEvery = K realizes the
// same cadence as the historical skip-based refreshEvery on a one-step
// schedule — by round shape instead of by skipping — and refreshEvery = nK
// skips whole rounds between refreshes. refreshEvery must be a multiple of
// K (a refresh window cannot straddle a round boundary); 0 defaults to K.
// With Config.RefreshSteps = AdaptiveRefreshSteps the round length K is
// resolved here, from measured work: schedule.AdaptiveRoundLength reports
// how many steps' bubbles one refresh needs under the engine's cost shape,
// and that window becomes the executable round (RoundSteps reports it).
func (e *Engine) EnableKFAC(opts kfac.Options, refreshEvery int) error {
	k := e.cfg.RefreshSteps
	adaptive := k == AdaptiveRefreshSteps
	if adaptive {
		var err error
		k, err = schedule.AdaptiveRoundLength(schedule.Config{
			Method:            e.cfg.Method,
			Stages:            e.cfg.Stages,
			MicroBatches:      e.cfg.MicroBatches,
			Costs:             e.execCosts(),
			DataParallelWidth: e.cfg.Replicas,
			InversionParallel: e.cfg.InversionParallel,
		})
		if err != nil {
			return fmt.Errorf("engine: deriving adaptive round length: %w", err)
		}
	}
	if refreshEvery <= 0 {
		refreshEvery = k
	}
	if refreshEvery%k != 0 {
		if adaptive {
			return fmt.Errorf("engine: refreshEvery %d must be a multiple of the round length K=%d, which was derived adaptively from the measured refresh work (Config.RefreshSteps = AdaptiveRefreshSteps) — pass refreshEvery 0 to refresh every round, or query RoundSteps after EnableKFAC",
				refreshEvery, k)
		}
		return fmt.Errorf("engine: refreshEvery %d must be a multiple of the round length RefreshSteps %d",
			refreshEvery, k)
	}
	prevLen := e.roundLen
	e.roundLen = k
	e.kfacPre = make([]*kfac.Preconditioner, e.cfg.Stages)
	e.layerMu = make([][]sync.Mutex, e.cfg.Stages)
	for s, st := range e.reps[0].stages {
		e.kfacPre[s] = kfac.NewPreconditioner(st.layers, opts)
		e.layerMu[s] = make([]sync.Mutex, len(st.layers))
	}
	e.initKFACFold()
	// Replica layers capture the same statistics as the primary's: their
	// micro-batches contribute to the shared per-stage factors.
	for _, rep := range e.reps[1:] {
		for _, st := range rep.stages {
			for _, l := range st.layers {
				l.CaptureKFAC = true
			}
		}
	}
	e.kfacOpts = opts
	e.refreshEvery = refreshEvery
	e.stepIndex = 0 // restart the refresh cadence: the next round refreshes
	e.roundIndex = 0
	if err := e.rebuildSchedule(); err != nil {
		e.kfacPre = nil
		e.roundLen = prevLen
		return err
	}
	// Generation pools for the refresh pipeline (see kfacGenPool): one per
	// concurrent generation (the collecting one plus every carried lag),
	// so overlapped rounds can collect a generation while the carried ops
	// of older ones drain.
	e.maxCarryGen = maxScheduleGen(e.sched)
	for _, p := range e.kfacPools {
		p.reset() // re-enabling K-FAC must not inherit stale pool state
	}
	e.ensureGenPools()
	e.carryQ = make([]*kfacGenPool, e.maxCarryGen)
	e.kfacGen = 0
	e.refreshPending = false
	return nil
}

// maxScheduleGen reports the deepest Op.Generation in the schedule: 0 for
// serialized rounds, up to CarryDepth-1 for overlapped ones with carry.
func maxScheduleGen(s *pipeline.Schedule) int {
	m := 0
	for _, op := range s.Ops {
		if op.Generation > m {
			m = op.Generation
		}
	}
	return m
}

// ensureGenPools grows kfacPools to cover every concurrent generation of
// the current schedule (maxCarryGen carried lags plus the collecting one,
// minimum two), reusing existing pools — their buffers are shape-stable
// across schedule swaps, which keep Stages/MicroBatches/Replicas fixed.
func (e *Engine) ensureGenPools() {
	n := e.maxCarryGen + 1
	if n < 2 {
		n = 2
	}
	perStep := e.cfg.MicroBatches * e.cfg.Replicas
	nLayers := len(e.reps[0].stages[0].layers)
	for len(e.kfacPools) < n {
		e.kfacPools = append(e.kfacPools, newKFACGenPool(e.cfg.Stages, perStep, nLayers))
	}
}

// carryPending reports whether any collected generation still has carried
// refresh ops waiting to execute in a later round.
func (e *Engine) carryPending() bool {
	for _, p := range e.carryQ {
		if p != nil {
			return true
		}
	}
	return false
}

// KFACStates exposes the per-stage preconditioner (nil-safe; used by tests
// and trainers to inspect refresh counters and staleness).
func (e *Engine) KFACStates(s int) *kfac.Preconditioner {
	if e.kfacPre == nil {
		return nil
	}
	return e.kfacPre[s]
}

// StepResult reports one pipelined training step.
type StepResult struct {
	// Loss aggregates the micro-batch losses exactly as a full-batch step
	// would (each micro-batch contribution is pre-scaled by its share of
	// the global loss denominators).
	Loss pipemodel.Loss
	// DeviceBusy records each device's measured compute seconds — a
	// coarse realization of the profiles in Figure 3 (wall-clock based,
	// so values are only meaningful comparatively).
	DeviceBusy []float64
	// Refreshed reports whether this step belonged to a refresh window:
	// its round collected the refresh's statistics and executed the packed
	// curvature/inversion ops (spread over the window's bubbles for
	// RefreshSteps > 1). Steps of non-refresh rounds precondition with
	// stale inverses and report false — including, under OverlapRounds, a
	// round that only drains the previous window's carried refresh work.
	Refreshed bool
	// Degraded reports that the step's round ran in degraded mode: some
	// K-FAC refresh work failed past its retry budget and the round served
	// the previous generation's inverses instead (or unpreconditioned SGD
	// when no generation was ever delivered) — the §3.1 staleness rule
	// extended across failures. The engine re-runs a full refresh on the
	// next round. DegradedReason carries the first failure that triggered
	// the degradation.
	Degraded       bool
	DegradedReason string
}

// TrainStep runs one training step — the degenerate one-step round. It is
// only valid on engines with RefreshSteps <= 1; multi-step rounds are
// atomic and must go through TrainRound. Gradients are reduced across
// micro-batches and replicas in the fixed collective order and accumulate
// into the primary model's parameters; unless SetOptimizer was called, the
// caller zeroes them and applies the optimizer between steps.
func (e *Engine) TrainStep(batch *data.Batch) (*StepResult, error) {
	if e.roundLen > 1 {
		return nil, fmt.Errorf("engine: RefreshSteps=%d executes multi-step rounds; call TrainRound with %d batches",
			e.roundLen, e.roundLen)
	}
	res, err := e.TrainRound([]*data.Batch{batch})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// TrainRound runs one refresh round — RefreshSteps consecutive training
// steps, one batch per step — as a single executable schedule: persistent
// per-device goroutines walk all K steps' ops without teardown,
// micro-batched forwards and backwards follow the schedule's per-device op
// order (each replica processing its own shard of each step's batch), and
// — with K-FAC enabled on a refresh round — the curvature and inversion
// work of ONE refresh executes in the bubbles of the whole window, each
// step preconditioning with the freshest inverses completed by that step.
// Gradient collectives and the optimizer callback fire once per step at
// the round-internal step barriers (the collectives in the fixed
// bit-identical ascending-global-micro order). On an error the round
// aborts; steps whose optimizer already fired stay committed — their
// StepResults are returned alongside the error and the engine's step
// counter advances past them only — and an aborted *refresh* round (or one
// with a carried generation in flight) forces the next round to refresh
// again rather than serving half-delivered factors as a stale generation.
//
// With OverlapRounds, a collect round whose refresh spills keeps its
// statistics generation pending and the NEXT round executes the carried
// ops — filling its early bubbles with the queued inversions — whatever
// that round's own refresh status; preconditions see each factor's
// freshest completed inverse across the window boundary.
func (e *Engine) TrainRound(batches []*data.Batch) ([]*StepResult, error) {
	r := e.roundLen
	if len(batches) != r {
		return nil, fmt.Errorf("engine: a round is %d steps (RefreshSteps), got %d batches", r, len(batches))
	}
	if r > 1 && e.optApply == nil {
		return nil, fmt.Errorf("engine: multi-step rounds need SetOptimizer: the update fires once per step inside the round")
	}
	// Every rank of a multi-rank group receives the full global batch and
	// trains its contiguous slice of the step's micro-batches — rank g of
	// W_g ranks running R replicas owns global micros [g*R*M, (g+1)*R*M).
	// Loss denominators (and K-FAC totals) are computed over ALL global
	// micro-batches, so every rank scales its contributions exactly as the
	// single-process run of the same global width does.
	nLocal := e.cfg.MicroBatches * e.cfg.Replicas
	n := nLocal * e.group.Size()
	rank := e.group.Rank()
	micro := make([][]*data.Batch, r)
	totals := make([]pipemodel.Totals, r)
	for j, batch := range batches {
		if batch.BatchSize%n != 0 {
			return nil, fmt.Errorf("engine: batch size %d not divisible by %d micro-batches (%d per replica x %d replicas x %d ranks)",
				batch.BatchSize, n, e.cfg.MicroBatches, e.cfg.Replicas, e.group.Size())
		}
		if batch.SeqLen != e.reps[0].model.SeqLen() {
			return nil, fmt.Errorf("engine: batch seq len %d != model %d", batch.SeqLen, e.reps[0].model.SeqLen())
		}
		all := splitBatch(batch, n)
		// Each step's global loss denominators must be known before any of
		// its backwards starts (they are known after data loading: masking
		// is part of the batch).
		totals[j] = pipemodel.Totals{Seqs: batch.BatchSize}
		for _, mb := range all {
			totals[j].Tokens += e.reps[0].model.BatchTokenCount(mb)
		}
		micro[j] = all[rank*nLocal : (rank+1)*nLocal]
	}
	// The round checkpoint is taken before anything mutates state — at
	// this point the engine is exactly as the previous round's commit left
	// it, so saving here is saving at round commit.
	if e.cfg.Checkpoint {
		if e.optApply != nil && e.optState == nil {
			return nil, fmt.Errorf("engine: Checkpoint with SetOptimizer needs AttachOptimizerState: replaying a round must rewind the optimizer's internal state too")
		}
		e.saveCheckpoint()
	}
	// Cadence is counted in rounds (refreshEvery is a validated multiple of
	// the round length), so a partially committed round cannot desync the
	// refresh phase: a refresh fires on every (refreshEvery/K)-th round —
	// and again right away after an aborted refresh round, whose
	// half-delivered factor state must not serve as a stale generation.
	refresh := e.kfacPre != nil && (e.refreshPending || e.roundIndex%(e.refreshEvery/r) == 0)
	// Generation pools: a collect round writes kfacGen's rotation buffer;
	// pending carried generations (overlapped rounds) drain out of the
	// others, each Generation-g op reading the pool collected g rounds ago
	// (carryQ slot g-1). All can be live in the same round — that is the
	// overlap.
	var cur *kfacGenPool
	var pending []*kfacGenPool
	if refresh {
		cur = e.kfacPools[e.kfacGen%len(e.kfacPools)]
		cur.reset()
		cur.totals = totals[0]
	}
	if e.kfacPre != nil {
		pending = e.carryQ
	}

	// Open a fresh transport epoch: clears any abort of a previous failed
	// round so a checkpoint replay's collectives run clean (every rank
	// calls TrainRound in lockstep, so epochs stay aligned group-wide).
	e.group.BeginRound()

	// Broadcast the primary's parameters to every replica: the round's
	// first step starts from identical weights (later steps re-broadcast
	// at the step-commit barrier, after the optimizer updated the primary).
	if err := e.broadcastParams(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}

	// Cap each device goroutine's kernels to its fair share of the
	// intra-op worker pool for the duration of the round, restoring the
	// caller's cap afterwards. The cap is a process-global knob: running
	// rounds on two Engine instances concurrently would clobber each
	// other's share (and the restored value) — step engines one at a
	// time per process, as every entry point here does.
	e.resolveParallelism()
	prevCap := tensor.OpParallelism()
	tensor.SetOpParallelism(e.opShare)
	defer tensor.SetOpParallelism(prevCap)
	roundStart := time.Now()
	res, committed, err := e.runRound(micro, totals, refresh, cur, pending)
	if err == nil {
		// Feed the round's wall time to the transport's liveness layer:
		// heartbeats carry it to every peer, where it surfaces as the
		// per-rank pace RankStats reports and the autotuner's straggler
		// inflation consumes.
		if ob, ok := e.group.(interface{ ObserveRoundDuration(time.Duration) }); ok {
			ob.ObserveRoundDuration(time.Since(roundStart))
		}
	}
	e.stepIndex += committed
	if committed > 0 {
		e.roundIndex++
	}
	if err != nil {
		// A half-collected generation (this round's) or half-delivered
		// ones (the carried) must not survive the abort: scrub every pool
		// and force the next round to run a full refresh.
		if refresh || e.carryPending() {
			e.refreshPending = true
		}
		for _, p := range e.kfacPools {
			if p != nil {
				p.reset()
			}
		}
		for i := range e.carryQ {
			e.carryQ[i] = nil
		}
		return res, err
	}
	// Advance the carry queue: the oldest pending generation's deepest-
	// lagged ops ran this round, so its pool retires (reset makes it
	// reusable) — unless it degraded, in which case the preconditioner may
	// hold a mix of its factors and older ones: force a full refresh next
	// round. Shallower pending generations age one lag.
	oldDegraded := false
	if n := len(e.carryQ); n > 0 {
		if old := e.carryQ[n-1]; old != nil {
			oldDegraded = old.failed.Load()
			old.reset()
		}
		copy(e.carryQ[1:], e.carryQ[:n-1])
		e.carryQ[0] = nil
	}
	if refresh {
		if cur.failed.Load() {
			// The collected generation degraded: some of its factors never
			// folded or inverted. Scrub it — a poisoned generation is never
			// served as a stale one or carried forward — and refresh again
			// next round.
			cur.reset()
			e.refreshPending = true
		} else {
			e.refreshPending = oldDegraded
			e.kfacGen++
			if e.maxCarryGen > 0 {
				// The spilled part of this generation executes over the next
				// maxCarryGen rounds as the carried ops: keep its
				// snapshots/partials pending.
				e.carryQ[0] = cur
			} else {
				cur.reset()
			}
		}
	} else if oldDegraded {
		e.refreshPending = true
	}
	return res, err
}

// broadcastParams copies the primary's parameters to every replica — the
// start-of-step weight broadcast of the data-parallel group, used by the
// round prologue and the step-commit barrier alike. Under ShardParams only
// a secondary replica's resident (owned) parameters are copied; the rest
// have no storage until gathered on use, and the gather reads the primary
// directly, which this broadcast keeps authoritative.
func (e *Engine) broadcastParams() error {
	cp := nn.CopyParams
	if e.shard != nil {
		cp = nn.CopyParamsResident
	}
	for rep := 1; rep < len(e.reps); rep++ {
		if err := cp(e.reps[rep].params, e.reps[0].params); err != nil {
			return fmt.Errorf("broadcasting params to replica %d: %w", rep, err)
		}
	}
	return nil
}

// splitBatch cuts a batch into n equal micro-batches.
func splitBatch(b *data.Batch, n int) []*data.Batch {
	per := b.BatchSize / n
	out := make([]*data.Batch, n)
	for i := 0; i < n; i++ {
		lo, hi := i*per*b.SeqLen, (i+1)*per*b.SeqLen
		out[i] = &data.Batch{
			BatchSize: per,
			SeqLen:    b.SeqLen,
			Tokens:    b.Tokens[lo:hi],
			Targets:   b.Targets[lo:hi],
			IsNext:    b.IsNext[i*per : (i+1)*per],
		}
	}
	return out
}

// MeasuredCosts derives StageCosts from an executed timeline (mean measured
// duration per work kind, recomputation folded into backward the way the
// cost model folds it; measured collective times fill SyncGrad and
// SyncCurvature when the timeline contains those events). Feeding these
// into the builders yields a simulated timeline calibrated to the real
// execution, for side-by-side rendering — including real-vs-modeled
// collective costs on data-parallel schedules.
func MeasuredCosts(tl *pipeline.Timeline, nFactors int) pipeline.StageCosts {
	sum := make(map[pipeline.WorkKind]int64)
	cnt := make(map[pipeline.WorkKind]int64)
	for d := 0; d < tl.Devices; d++ {
		for _, ev := range tl.Events[d] {
			sum[ev.Op.Kind] += int64(ev.Duration())
			cnt[ev.Op.Kind]++
		}
	}
	avg := func(k pipeline.WorkKind) hardware.Microseconds {
		if cnt[k] == 0 {
			return 1
		}
		v := sum[k] / cnt[k]
		if v < 1 {
			v = 1
		}
		return hardware.Microseconds(v)
	}
	c := pipeline.StageCosts{
		Forward:      avg(pipeline.Forward),
		Backward:     avg(pipeline.Backward) + avg(pipeline.Recompute),
		Precondition: avg(pipeline.Precondition),
		OptStep:      1,
	}
	if cnt[pipeline.SyncGrad] > 0 {
		c.SyncGrad = avg(pipeline.SyncGrad)
	}
	if cnt[pipeline.SyncCurvature] > 0 {
		c.SyncCurvature = avg(pipeline.SyncCurvature)
	}
	for i := 0; i < nFactors; i++ {
		c.CurvatureUnits = append(c.CurvatureUnits, avg(pipeline.Curvature))
		c.CurvaturePerMicroBatch += avg(pipeline.Curvature)
		c.InversionUnits = append(c.InversionUnits, avg(pipeline.Inversion))
	}
	return c
}
