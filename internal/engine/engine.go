// Package engine executes real pipeline-parallel training of the bert
// model: the transformer blocks are partitioned into stages, each stage
// runs as its own goroutine ("device"), micro-batch activations and error
// signals flow through channels (the P2P sends/recvs of Figure 2(iii)),
// and the backward pass uses activation recomputation (the paper's "R"
// configuration) so stages can keep many micro-batches in flight with
// per-layer caches only for the micro-batch currently being differentiated.
//
// Where package pipeline simulates the *timing* of pipeline schedules,
// this package executes their *math*: a GPipe step over N micro-batches
// produces bit-identical losses and gradients to a single-device step over
// the full mini-batch (asserted in the tests), and per-stage K-FAC
// preconditioners realize PipeFisher's layout — each device holds only the
// factors of its own stage, and inversion work is parallel across stages
// with no collective communication (§3, advantages (i) and (ii)).
package engine

import (
	"fmt"
	"sync"

	"repro/internal/bert"
	"repro/internal/data"
	"repro/internal/kfac"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Engine drives pipeline-parallel training steps of a bert.Model.
type Engine struct {
	model  *bert.Model
	stages []*stage
	// MicroBatches is the number of micro-batches per training step.
	MicroBatches int

	kfacPre []*kfac.Preconditioner // per stage, nil until EnableKFAC
}

// New partitions the model's blocks into nStages contiguous stages. The
// embedding lives on stage 0 and the MLM/NSP heads on the last stage, as
// in standard pipeline partitionings of BERT. The number of blocks must be
// divisible by nStages, and the per-step mini-batches must be divisible by
// microBatches.
func New(model *bert.Model, nStages, microBatches int) (*Engine, error) {
	if nStages <= 0 {
		return nil, fmt.Errorf("engine: nStages must be positive, got %d", nStages)
	}
	if microBatches <= 0 {
		return nil, fmt.Errorf("engine: microBatches must be positive, got %d", microBatches)
	}
	if len(model.Blocks)%nStages != 0 {
		return nil, fmt.Errorf("engine: %d blocks not divisible by %d stages", len(model.Blocks), nStages)
	}
	e := &Engine{model: model, MicroBatches: microBatches}
	per := len(model.Blocks) / nStages
	for s := 0; s < nStages; s++ {
		st := &stage{
			index:  s,
			first:  s == 0,
			last:   s == nStages-1,
			model:  model,
			blocks: model.Blocks[s*per : (s+1)*per],
		}
		e.stages = append(e.stages, st)
	}
	return e, nil
}

// Stages returns the number of pipeline stages.
func (e *Engine) Stages() int { return len(e.stages) }

// StageLayers returns the K-FAC-eligible dense layers of one stage.
func (e *Engine) StageLayers(s int) []*nn.Dense {
	var out []*nn.Dense
	for _, b := range e.stages[s].blocks {
		out = append(out, b.DenseLayers()...)
	}
	return out
}

// StepResult reports one pipelined training step.
type StepResult struct {
	// Loss aggregates the micro-batch losses exactly as a full-batch step
	// would (masked-count-weighted MLM, batch-weighted NSP).
	Loss bert.LossBreakdown
	// StageBusy records each stage's compute time share of the step, a
	// coarse realization of the profiles in Figure 3 (wall-clock based,
	// so values are only meaningful comparatively).
	StageBusy []float64
}

// TrainStep runs one GPipe-style step: micro-batched pipelined forwards,
// then pipelined backwards in reverse micro-batch order with activation
// recomputation. Gradients accumulate into the model parameters; the
// caller zeroes them and applies the optimizer.
func (e *Engine) TrainStep(batch *data.Batch) (*StepResult, error) {
	n := e.MicroBatches
	if batch.BatchSize%n != 0 {
		return nil, fmt.Errorf("engine: batch size %d not divisible by %d micro-batches", batch.BatchSize, n)
	}
	if batch.SeqLen != e.model.Config.SeqLen {
		return nil, fmt.Errorf("engine: batch seq len %d != model %d", batch.SeqLen, e.model.Config.SeqLen)
	}
	micro := splitBatch(batch, n)

	// Global loss denominators must be known before any backward starts
	// (they are known after data loading: masking is part of the batch).
	var totalMasked, totalSeqs int
	for _, mb := range micro {
		totalMasked += mb.MaskedCount()
		totalSeqs += mb.BatchSize
	}

	for _, st := range e.stages {
		st.beginStep(n, micro[0].BatchSize, batch.SeqLen, totalMasked, totalSeqs)
	}

	// Forward phase: one goroutine per stage, activations flow through
	// channels; stage s receives micro-batch activations from stage s-1.
	nStages := len(e.stages)
	fwd := make([]chan *tensor.Matrix, nStages+1)
	for i := range fwd {
		fwd[i] = make(chan *tensor.Matrix, n)
	}
	var wg sync.WaitGroup
	errs := make([]error, nStages)
	for s, st := range e.stages {
		wg.Add(1)
		go func(s int, st *stage) {
			defer wg.Done()
			for m := 0; m < n; m++ {
				var x *tensor.Matrix
				if !st.first {
					x = <-fwd[s]
				}
				y, err := st.forward(m, micro[m], x)
				if err != nil {
					errs[s] = err
					// Keep the pipe flowing so peers do not deadlock.
					y = x
				}
				if !st.last {
					fwd[s+1] <- y
				}
			}
		}(s, st)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Backward phase: reverse micro-batch order (GPipe), error signals
	// flow from the last stage toward the first. bwd[s] carries the
	// gradient arriving INTO stage s from stage s+1.
	bwd := make([]chan *tensor.Matrix, nStages)
	for i := range bwd {
		bwd[i] = make(chan *tensor.Matrix, n)
	}
	for s, st := range e.stages {
		wg.Add(1)
		go func(s int, st *stage) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				m := n - 1 - i
				var gradIn *tensor.Matrix
				if !st.last {
					gradIn = <-bwd[s]
				}
				gradOut, err := st.backward(m, micro[m], gradIn)
				if err != nil {
					errs[s] = err
					gradOut = gradIn
				}
				if !st.first {
					bwd[s-1] <- gradOut
				}
			}
		}(s, st)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &StepResult{StageBusy: make([]float64, nStages)}
	for s, st := range e.stages {
		res.StageBusy[s] = st.busySeconds
		if st.last {
			res.Loss = st.lossTotal
		}
	}
	return res, nil
}

// splitBatch cuts a batch into n equal micro-batches.
func splitBatch(b *data.Batch, n int) []*data.Batch {
	per := b.BatchSize / n
	out := make([]*data.Batch, n)
	for i := 0; i < n; i++ {
		lo, hi := i*per*b.SeqLen, (i+1)*per*b.SeqLen
		out[i] = &data.Batch{
			BatchSize: per,
			SeqLen:    b.SeqLen,
			Tokens:    b.Tokens[lo:hi],
			Targets:   b.Targets[lo:hi],
			IsNext:    b.IsNext[i*per : (i+1)*per],
		}
	}
	return out
}

// EnableKFAC attaches one K-FAC preconditioner per stage, covering exactly
// that stage's fully-connected layers — PipeFisher's memory layout: "each
// accelerator only needs to store the ... curvature matrices for the
// layers in the assigned pipeline stage" (§3(i)).
func (e *Engine) EnableKFAC(opts kfac.Options) {
	e.kfacPre = make([]*kfac.Preconditioner, len(e.stages))
	for s := range e.stages {
		e.kfacPre[s] = kfac.NewPreconditioner(e.StageLayers(s), opts)
	}
}

// KFACRefresh recomputes curvature and inverses on every stage in
// parallel, one goroutine per stage — the inversion parallelism of §3(ii):
// "the inverse work are split among multiple accelerators without
// collective communication".
func (e *Engine) KFACRefresh(lossScale float64) error {
	if e.kfacPre == nil {
		return fmt.Errorf("engine: KFAC not enabled")
	}
	errs := make([]error, len(e.stages))
	var wg sync.WaitGroup
	for s := range e.stages {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			if err := e.kfacPre[s].UpdateCurvature(lossScale); err != nil {
				errs[s] = err
				return
			}
			errs[s] = e.kfacPre[s].UpdateInverses()
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return fmt.Errorf("engine: stage %d K-FAC refresh: %w", s, err)
		}
	}
	return nil
}

// KFACPrecondition preconditions every stage's gradients with its cached
// (possibly stale) inverses, in parallel. It returns the number of layers
// preconditioned.
func (e *Engine) KFACPrecondition() int {
	if e.kfacPre == nil {
		return 0
	}
	counts := make([]int, len(e.stages))
	var wg sync.WaitGroup
	for s := range e.stages {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			counts[s] = e.kfacPre[s].Precondition()
		}(s)
	}
	wg.Wait()
	var total int
	for _, c := range counts {
		total += c
	}
	return total
}
