package engine

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/pipeline"
)

// This file is the engine's fault-tolerance layer, active only when the
// round's runState.resilient flag is set (a fault plan, an op deadline, or a
// retry budget is configured — see Config.FaultPlan/OpTimeout/OpRetries).
// The default engine never enters any of these paths: the device loop
// branches straight to runState.exec, so fault tolerance costs the
// fault-free configuration nothing (bench-gated).
//
// The layer implements a degradation ladder grounded in the paper's §3.1
// staleness rule — stale inverses are by-design acceptable, so refresh work
// is the part of the schedule whose failure training can absorb:
//
//  1. transient side-path failures (curvature capture, inversion,
//     sync-curvature) retry with exponential backoff, OpRetries times;
//  2. past the retry budget the op *degrades*: its statistics generation is
//     marked failed, the round keeps serving the previous generation's
//     inverses (or runs unpreconditioned when none was ever delivered), and
//     the next round re-runs a full refresh;
//  3. base-path failures (forward, backward, collectives, optimizer) abort
//     the round with the root cause attributed — the case round
//     checkpoint/replay (checkpoint.go) recovers from.

// sidePath reports whether a failed op of this kind may degrade instead of
// aborting: exactly the K-FAC refresh work, whose absence the §3.1
// staleness discipline absorbs. Precondition is deliberately base-path —
// it anchors the step's gradient collective, so its failure is a gradient
// failure.
func sidePath(k pipeline.WorkKind) bool {
	switch k {
	case pipeline.Curvature, pipeline.Inversion, pipeline.SyncCurvature:
		return true
	}
	return false
}

// execResilient runs one op under the fault layer: watchdog-armed,
// injector-consulted, retried within the side-path budget, degraded past
// it. Base-path errors and round aborts propagate to the caller (the device
// loop), which aborts the round.
func (st *runState) execResilient(d int, op *pipeline.Op) error {
	e := st.e
	t0 := time.Since(st.start)
	retries := 0
	if sidePath(op.Kind) {
		retries = e.cfg.OpRetries
	}
	var err error
	for attempt := 0; ; attempt++ {
		st.armWatchdog(d, op)
		err = st.execFaulty(d, op)
		st.disarmWatchdog(d)
		if err == nil {
			if attempt > 0 {
				st.noteRetries(d, op, attempt)
			}
			return nil
		}
		// A round abort is not this op's failure: never retry it, never
		// degrade over it.
		if errors.Is(err, errRoundAborted) || st.failed.Load() || attempt >= retries {
			break
		}
		if b := e.cfg.RetryBackoff; b > 0 {
			select {
			case <-time.After(b << attempt):
			case <-st.abortC:
				return err
			}
		}
	}
	if sidePath(op.Kind) && !errors.Is(err, errRoundAborted) && !st.failed.Load() {
		st.noteDegraded(d, op, t0, err)
		return nil
	}
	return err
}

// execFaulty consults the fault injector around the real op execution:
// stalls delay (abort-aware), injected failures and drops replace the op,
// and corruption poisons the op's output after it ran.
func (st *runState) execFaulty(d int, op *pipeline.Op) error {
	e := st.e
	if e.inj == nil {
		return st.exec(d, op)
	}
	out := e.inj.At(e.stepIndex+op.Step, d, op.Kind, op.MicroBatch)
	if out.Delay > 0 {
		// An injected stall models a straggling or hung device. The sleep
		// is abort-aware so a watchdog abort (or any peer failure) unparks
		// it promptly — the injected analog of a kernel that CAN be
		// interrupted; a genuinely stuck kernel still blocks the join.
		select {
		case <-time.After(out.Delay):
		case <-st.abortC:
			return errRoundAborted
		}
	}
	if out.Kill {
		// A kill fault models this rank dying, not an op failing: the
		// registered hook does the dying (the CLI exits the process; tests
		// sever the transport so peers observe a real rank death), and the
		// error below only matters when the hook leaves the process alive —
		// it aborts the round base-path, which the severed transport turns
		// into the peers' attributed RankFailure.
		if h := e.killHook; h != nil {
			h()
		}
		return fmt.Errorf("faults: rank %d killed at step %d (%s op on device %d)",
			e.group.Rank(), e.stepIndex+op.Step, op.Kind, d)
	}
	if out.Err != nil {
		return out.Err
	}
	err := st.exec(d, op)
	if err == nil && out.Corrupt {
		st.corruptOutput(op)
	}
	return err
}

// noteRetries annotates the op's recorded timeline event with how many
// failed attempts preceded it.
func (st *runState) noteRetries(d int, op *pipeline.Op, attempts int) {
	evs := st.events[d]
	if n := len(evs); n > 0 && evs[n-1].Op == op {
		evs[n-1].Retries = attempts
	}
}

// noteDegraded downgrades the round after a side-path failure exhausted its
// retries: the op's statistics generation is marked failed (never served
// stale, never carried), the first cause is kept for the StepResults, and a
// Degraded span covering the attempts is recorded in the timeline.
func (st *runState) noteDegraded(d int, op *pipeline.Op, t0 time.Duration, cause error) {
	if pool := st.genPool(op); pool != nil {
		pool.failed.Store(true)
	}
	st.degMu.Lock()
	if !st.degraded {
		st.degraded = true
		st.degradedReason = fmt.Sprintf("device %d op %s (%s): %v", d, op.Label(), op.Kind, cause)
	}
	st.degMu.Unlock()
	st.recordKind(d, pipeline.Degraded, op, t0, time.Since(st.start))
}

// corruptOutput poisons the value the op just produced with NaN — the
// fault model for silent numeric corruption. Every target is either caught
// by the pre-fold factor guard (inversion) or by the pre-commit health scan
// (scanStepHealth), so corruption converts to an attributed failure instead
// of silently destroying training state. Writes happen before the op's
// done-channel closes, so no consumer can be reading concurrently.
func (st *runState) corruptOutput(op *pipeline.Op) {
	nan := math.NaN()
	switch op.Kind {
	case pipeline.Forward:
		if buf := st.stageOut[op.Stage][st.flat(op)]; buf != nil && len(buf.Data) > 0 {
			buf.Data[0] = nan
			return
		}
		// Last stage publishes a loss, not an activation.
		st.lossParts[op.Step][st.gmicro(op)].Total = nan
	case pipeline.Backward:
		for _, delta := range st.deltas[op.Step][op.Stage][st.gmicro(op)] {
			if delta != nil && len(delta.Data) > 0 {
				delta.Data[0] = nan
				return
			}
		}
	case pipeline.Curvature:
		pool := st.genPool(op)
		if pool == nil {
			return
		}
		stg := st.e.reps[op.Replica].stages[op.Stage]
		li, factorB, err := stg.layerOf(op.Factor)
		if err != nil {
			return
		}
		parts := pool.curvA[op.Stage][li]
		if factorB {
			parts = pool.curvB[op.Stage][li]
		}
		if p := parts[st.gmicro(op)]; p != nil && len(p.Data) > 0 {
			p.Data[0] = nan
		}
	case pipeline.Inversion:
		if st.e.kfacPre == nil {
			return
		}
		stg := st.e.reps[op.Replica].stages[op.Stage]
		li, factorB, err := stg.layerOf(op.Factor)
		if err != nil {
			return
		}
		st.e.layerMu[op.Stage][li].Lock()
		defer st.e.layerMu[op.Stage][li].Unlock()
		s := st.e.kfacPre[op.Stage].States()[li]
		inv := s.AInv
		if factorB {
			inv = s.BInv
		}
		if inv != nil && len(inv.Data) > 0 {
			inv.Data[0] = nan
		}
	default:
		// Collectives, preconditions, optimizer anchors: poison the
		// primary's reduced gradient accumulators of the op's stage.
		if ps := st.e.reps[0].stageParams[op.Stage]; len(ps) > 0 && len(ps[0].Grad.Data) > 0 {
			ps[0].Grad.Data[0] = nan
		}
	}
}

// scanStepHealth verifies the step's losses and reduced gradients are
// finite before the optimizer commits them — the guard that turns injected
// NaN corruption into an attributed, replayable abort instead of silently
// poisoned parameters. Only called when a fault injector is active.
func (st *runState) scanStepHealth(j int) error {
	for m, part := range st.lossParts[j] {
		if math.IsNaN(part.Total) || math.IsInf(part.Total, 0) {
			return fmt.Errorf("NaN/Inf loss in micro-batch %d of step %d: corrupted step must not commit", m, j)
		}
	}
	for s, params := range st.e.reps[0].stageParams {
		for _, p := range params {
			if p.Grad.HasNaN() {
				return fmt.Errorf("NaN/Inf in reduced gradients of stage %d at step %d: corrupted step must not commit", s, j)
			}
		}
	}
	return nil
}

// watchdog converts silent hangs into attributed failures: each device's
// currently executing op is published in a packed atomic slot (op ID and
// start time), and a monitor goroutine fails any device whose op exceeds
// the configured deadline, naming the stalled device and op. It cannot
// preempt the hung op — goroutines are not killable — but the attributed
// abort unparks every *other* device, and abort-aware waits (injected
// stalls, barrier parks, dependency waits) return promptly.
//
// The deadline covers an op's full execution, including collective
// rendezvous time on SyncGrad/OptStep anchors; configure OpTimeout above
// the expected step time, not the expected op compute time. Devices parked
// at the step-commit barrier disarm their slot while parked, so a long
// legitimate barrier wait is not misattributed as that device's stall.
type watchdog struct {
	slots []atomic.Uint64 // per device: (opID+1)<<32 | start-µs, 0 = idle
	stop  chan struct{}
	done  chan struct{}
}

const wdTimeMask = (uint64(1) << 32) - 1

// startWatchdog arms the monitor for this round.
func (st *runState) startWatchdog(timeout time.Duration) {
	wd := &watchdog{
		slots: make([]atomic.Uint64, st.e.sched.Devices),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	st.wd = wd
	interval := timeout / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	go func() {
		defer close(wd.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-wd.stop:
				return
			case <-tick.C:
			}
			now := time.Since(st.start).Microseconds()
			// Flag only the longest-stalled device per tick: when one hang
			// makes several devices exceed the deadline together (barrier
			// and fold waits count toward their ops' deadlines), the oldest
			// armed op is the best root-cause candidate; the abort unparks
			// the rest.
			worst, worstElapsed := -1, int64(-1)
			for d := range wd.slots {
				v := wd.slots[d].Load()
				if v == 0 {
					continue
				}
				elapsed := now - int64(v&wdTimeMask)
				if elapsed > timeout.Microseconds() && elapsed > worstElapsed {
					worst, worstElapsed = d, elapsed
				}
			}
			if worst >= 0 {
				v := wd.slots[worst].Load()
				if v != 0 {
					op := st.e.sched.Ops[int(v>>32)-1]
					st.fail(worst, fmt.Errorf("engine: watchdog: device %d op %s (%s) stalled past the %v op deadline", worst, op.Label(), op.Kind, timeout))
				}
			}
		}
	}()
}

// stopAndJoin shuts the monitor down; called after every device joined.
func (wd *watchdog) stopAndJoin() {
	close(wd.stop)
	<-wd.done
}

// armWatchdog publishes the op a device is about to execute.
func (st *runState) armWatchdog(d int, op *pipeline.Op) {
	if st.wd == nil {
		return
	}
	us := uint64(time.Since(st.start).Microseconds()) & wdTimeMask
	st.wd.slots[d].Store(uint64(op.ID+1)<<32 | us)
}

// disarmWatchdog clears the device's slot once its op returned (or while it
// parks at the step-commit barrier).
func (st *runState) disarmWatchdog(d int) {
	if st.wd == nil {
		return
	}
	st.wd.slots[d].Store(0)
}
