package engine

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/kfac"
	"repro/internal/transport"
)

// Elastic membership: surviving a rank failure and rejoining after one.
//
// The engine's determinism contract makes membership changes cheap: rank g
// of a W_g-rank group owns global micro-batches [g*R*M, (g+1)*R*M) of each
// step, and TrainRound re-derives that slice from the group's Size/Rank on
// every call. Swapping in a smaller (or restored) group via Reconnect
// therefore re-shards the global batch automatically — no schedule surgery,
// no state migration. Two flows build on it:
//
//   - Shrink (rank failure): every survivor sees the same attributed
//     transport.RankFailure, closes the dead group, dials a replacement
//     (transport.Reform), calls Reconnect(g, false), and rewinds to its own
//     round checkpoint. No cross-rank state transfer is needed because the
//     per-step loss collective is a barrier: every rank commits the same
//     steps, so every rank's checkpoint holds the same (bit-identical)
//     state. Training continues at reduced width, bit-identical to a fresh
//     run at that width restored from the same checkpoint.
//
//   - Rejoin (width restore): a restarted rank dials the full-width ring
//     together with the survivors, then calls Reconnect(g, true): the
//     resync re-broadcasts rank 0's parameters, optimizer state, and step
//     counters over the ordinary Broadcast collective, and resets K-FAC
//     state symmetrically on every rank so the group's preconditioners
//     evolve in lockstep from the next refresh.

// Reconnect swaps the engine onto a new transport group after a membership
// change — a survivors-only group from transport.Reform (shrink) or a
// restored full-width group (rejoin). The engine re-derives its global
// batch shard from the new group's Size/Rank, re-prices the schedule's
// collective costs for the new width, and advances its membership view
// (stamped on subsequent executed timelines). With resync, rank 0's
// parameters, optimizer state, and counters are re-broadcast so a fresh
// process joins mid-training — every rank of the new group must call
// Reconnect(..., true) together, since the resync is a collective.
//
// The rank-targeted fault plan is re-projected onto the new rank, so
// rank-selector faults keep addressing ORIGINAL ranks only if the caller
// re-derives the plan; by default the engine re-projects the configured
// plan onto the new group rank (matching how the CLI numbers ranks after a
// reform).
func (e *Engine) Reconnect(g transport.Group, resync bool) error {
	if g == nil {
		return fmt.Errorf("engine: Reconnect needs a transport group (use transport.Loopback{} for W=1)")
	}
	e.cfg.Transport = g
	e.group = g
	e.multiRank = g.Size() > 1
	// Keep the engine's membership view aligned with the transport's when
	// the group carries one (a reformed Ring does); otherwise just count.
	if v, ok := g.(interface{ View() int64 }); ok && int(v.View()) > e.memberView {
		e.memberView = int(v.View())
	} else {
		e.memberView++
	}
	e.memberChanged = true
	e.inj = faults.NewInjector(e.cfg.FaultPlan.ForRank(g.Rank()))
	// Collective cost estimates depend on the group width; re-deriving the
	// schedule keeps the packer's layout honest at the new size.
	if err := e.rebuildSchedule(); err != nil {
		return fmt.Errorf("engine: rebuilding schedule after membership change: %w", err)
	}
	if resync && e.multiRank {
		return e.resyncFrom(0)
	}
	return nil
}

// RegroupRestore rewinds the survivors of a shrink to a common training
// state. Committing a step is not atomic across ranks: the per-step loss
// collective is a barrier, but a rank failure can strike while one survivor
// has already completed it (and committed the step) and another was still
// writing its final frames (and aborted the round). The survivors'
// checkpoints then name different steps, and restoring each rank to its own
// would silently fork the group's state. The survivors therefore gather
// every rank's checkpointed step over the new group, agree on the MAXIMUM —
// a committed step's state is causally complete on the rank that committed
// it, because the reduction it consumed already contained every peer's
// contribution — and the lowest-ranked owner of that maximum broadcasts its
// restored state to the ranks that were behind. In the common case all
// candidates are equal and each rank restores purely locally, bit-identical
// to its own checkpoint; only a divergent commit pays the broadcast (and,
// under K-FAC, a symmetric preconditioner reset per the §3.1 staleness
// discipline).
//
// Returns the agreed step index training resumes from. Call it after
// Reconnect on every survivor together — the reconciliation is a
// collective.
func (e *Engine) RegroupRestore() (int, error) {
	if !e.multiRank {
		return e.RestoreCheckpoint()
	}
	cand := 0
	if e.ckpt.valid {
		cand = e.ckpt.stepIndex
	}
	// A one-hot sum is a gather under the ring's deterministic fold.
	w := e.group.Size()
	vec := make([]float64, w)
	part := make([]float64, w)
	part[e.group.Rank()] = float64(cand)
	if _, err := e.group.AllReduce("regroup/step", vec, nil, [][]float64{part}); err != nil {
		return 0, fmt.Errorf("engine: regroup step reconciliation: %w", err)
	}
	agreed, owner, equal := 0, 0, true
	for r := 0; r < w; r++ {
		if int(vec[r]) > agreed {
			agreed, owner = int(vec[r]), r
		}
	}
	for r := 0; r < w; r++ {
		if int(vec[r]) != agreed {
			equal = false
		}
	}
	if cand == agreed && e.ckpt.valid {
		if _, err := e.RestoreCheckpoint(); err != nil {
			return 0, err
		}
	}
	if !equal {
		if err := e.resyncFrom(owner); err != nil {
			return 0, err
		}
	}
	return e.stepIndex, nil
}

// resyncFrom aligns the group on the root rank's training state: the shape
// handshake and parameter broadcast of initial construction, followed by
// the optimizer's flattened state and the engine's step counters. K-FAC
// preconditioner state is NOT broadcast — factor EMAs are large and a
// rejoiner's are empty — so instead every rank resets its preconditioners
// symmetrically and forces a refresh on the next round: the group
// re-derives identical factors together, which keeps ranks in lockstep at
// the cost of one curvature rebuild.
func (e *Engine) resyncFrom(root int) error {
	if err := e.syncParamsFrom(root); err != nil {
		return err
	}
	if e.optState != nil {
		buf := make([]float64, e.optState.StateLen())
		if e.group.Rank() == root {
			e.optState.SaveState(buf)
		}
		if _, err := e.group.Broadcast("resync/opt", root, buf); err != nil {
			return fmt.Errorf("engine: optimizer state resync: %w", err)
		}
		if e.group.Rank() != root {
			e.optState.LoadState(buf)
		}
	}
	ctr := []float64{float64(e.stepIndex), float64(e.roundIndex), float64(e.kfacGen)}
	if _, err := e.group.Broadcast("resync/ctr", root, ctr); err != nil {
		return fmt.Errorf("engine: step counter resync: %w", err)
	}
	e.stepIndex, e.roundIndex, e.kfacGen = int(ctr[0]), int(ctr[1]), int(ctr[2])
	// Gradient accumulators restart clean on every rank (a rejoiner has
	// none; survivors' pre-abort accumulators are stale).
	for _, rep := range e.reps {
		for _, p := range rep.params {
			p.Grad.Zero()
		}
	}
	if e.kfacPre != nil {
		for s, st := range e.reps[0].stages {
			e.kfacPre[s] = kfac.NewPreconditioner(st.layers, e.kfacOpts)
		}
		for _, p := range e.kfacPools {
			if p != nil {
				p.reset()
			}
		}
		for i := range e.carryQ {
			e.carryQ[i] = nil
		}
		e.refreshPending = true
	}
	// The pre-resync round checkpoint described a state (and possibly a
	// width) that no longer exists; the next TrainRound saves a fresh one.
	e.ckpt.valid = false
	return e.broadcastParams()
}

// StepsDone returns the number of committed training steps — what a
// supervisor needs to know where a rejoined member resumes.
func (e *Engine) StepsDone() int { return e.stepIndex }

// MemberView returns the engine's current elastic membership view (0 until
// the first Reconnect).
func (e *Engine) MemberView() int { return e.memberView }

// SetKillHook registers the action a Kill fault outcome triggers on this
// rank (before the op's failure aborts the round): the CLI exits the
// process, tests sever the transport so peers observe a real rank death.
func (e *Engine) SetKillHook(h func()) { e.killHook = h }

// RankSlowness reports how much slower the group's slowest member paces
// rounds than this rank, as a ratio >= 1 derived from heartbeat-carried
// round durations (transport.RankStats). 1 means no straggler is visible —
// including on groups without heartbeat liveness. The autotuner feeds the
// ratio into hardware.Fit to inflate collective cost estimates when
// re-planning around a straggler.
func (e *Engine) RankSlowness() float64 {
	s, ok := e.group.(interface{ RankStats() []transport.RankStat })
	if !ok {
		return 1
	}
	stats := s.RankStats()
	var own, slowest uint32
	for _, st := range stats {
		if !st.Alive || st.RoundMicros == 0 {
			continue
		}
		if st.Rank == e.group.Rank() {
			own = st.RoundMicros
		}
		if st.RoundMicros > slowest {
			slowest = st.RoundMicros
		}
	}
	if own == 0 || slowest <= own {
		return 1
	}
	return float64(slowest) / float64(own)
}
