package engine

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// This file implements the engine's in-process gradient collective: the
// real-execution counterpart of the SyncGrad all-reduce the simulator
// models for data-parallel replica groups.
//
// Determinism contract: the reduction runs at micro-batch granularity in a
// single fixed order — ascending global micro-batch index — regardless of
// how micro-batches were sharded across replicas, which schedule produced
// them, or how many kernel workers computed them. Per-micro-batch
// contributions are therefore bit-identical inputs in a bit-identical
// order, and the reduced gradients are bit-identical for any replica
// count W (and match the W = 1 run of the same global batch).
//
// Buffer ownership: the per-micro-batch delta buffers and the carried
// pre-step accumulators are pooled matrices (tensor.Get/GetClone) owned by
// the run state. reduceGrads consumes (Puts and nils) the deltas it folds,
// but leaves the carried buffers alone: they are the rollback state of an
// aborted step, released by the run state only once the whole step
// succeeded. The steady-state collective path allocates nothing either
// way.

// reduceGrads folds one stage's gradient contributions into the primary
// replica's accumulators: for each parameter, the pre-step carried value
// (the caller's accumulate-semantics state) plus every micro-batch's delta
// in ascending global micro-batch order. carried[k] and deltas[m][k] align
// with params[k]; delta buffers are returned to the pool and their slots
// nilled, carried buffers stay with the caller (rollback state). A nil
// delta means a backward never snapshotted its contribution — a
// scheduling bug surfaced as an error.
func reduceGrads(params []*nn.Param, carried []*tensor.Matrix, deltas [][]*tensor.Matrix) error {
	for k, p := range params {
		g := p.Grad
		if carried[k] == nil {
			return fmt.Errorf("missing carried gradient state for %s", p.Name)
		}
		g.CopyFrom(carried[k])
		for m := range deltas {
			d := deltas[m][k]
			if d == nil {
				return fmt.Errorf("missing micro-batch %d gradient contribution for %s", m, p.Name)
			}
			g.AddInPlace(d)
			tensor.Put(d)
			deltas[m][k] = nil
		}
	}
	return nil
}

// snapshotGradDeltas moves one micro-batch's accumulated gradients out of
// the stage's parameters into pooled delta buffers (zeroing the
// accumulators for the next micro-batch) — the per-participant send buffer
// of the gradient collective. Must run under the (replica, stage) lock,
// immediately after the micro-batch's backward finished accumulating.
func snapshotGradDeltas(params []*nn.Param, dst []*tensor.Matrix) {
	for k, p := range params {
		dst[k] = tensor.GetClone(p.Grad)
		p.Grad.Zero()
	}
}
